// ertsim — run any single experiment from the command line.
//
//   ertsim [options]
//     --protocol  base|ns|vs|ert-a|ert-f|ert-af   (default ert-af)
//     --substrate cycloid|chord|pastry|can|kademlia|d1ht  (default cycloid)
//     --nodes N          (default 2048)
//     --lookups N        (default 3000)
//     --rate R           lookups per second (default 16)
//     --seed S           (default 1)
//     --seeds K          average over K seeds (default 1)
//     --threads T        worker threads for the seed fan-out (default: all
//                        cores; the result is identical for any T)
//     --sim-threads N    shards for the parallel in-run engine
//                        (docs/PDES.md). 1 (default) = the serial engine,
//                        bit-identical to every prior release; N > 1 =
//                        statistically equivalent sharded run (fixed
//                        (seed, N) stays bit-identical whatever the core
//                        count). Unsupported workloads (VS, impulse,
//                        scenarios, dup faults, tiny networks) fall back
//                        to the serial engine
//     --churn T          mean join/leave interarrival seconds (0 = off)
//     --impulse N:K      skewed workload: N source nodes, K hot keys
//     --zipf N:S         Zipf workload: N-key catalog, exponent S
//     --zipf-drift T     reshuffle popularity ranks every T seconds
//     --service L:H      light/heavy service seconds (default 0.2:1.0)
//     --queue-cap N      per-node ingress queue bound; arrivals beyond it
//                        are shed as overload drops (0 = unbounded, the
//                        default outside --scale)
//     --alpha A          indegree per unit capacity (default dimension+3)
//     --beta B, --mu M, --gamma-l G, --poll B
//     --data-forwarding  responses retrace the query path
//     --probe-cost C     seconds charged per load probe
//     --bytes            serialize every protocol message through the
//                        binary wire format (docs/WIRE.md) and report
//                        byte-accurate bandwidth accounting: per-type
//                        message sizes, the control-vs-query byte split,
//                        and the per-link token-bucket queueing picture.
//                        Strictly observational — every simulation metric
//                        is bit-identical with or without it
//     --link-rate R      egress bytes/second per node for --bytes
//                        token buckets (default 1e6)
//     --link-burst B     token-bucket depth in bytes (default 65536)
//     --csv FILE         append one CSV row (with header if new file)
//     --audit            run the invariant auditor every adaptation period
//     --audit-sample K   audit a seeded K-subset of nodes per sweep instead
//                        of all of them (implies --audit); keeps continuous
//                        auditing affordable at --scale node counts and
//                        never perturbs simulation results
//     --scale            end-to-end scale preset: Chord substrate, 2^17
//                        nodes, 1M lookups, workload clock compressed 8x
//                        (rate 128*n/2048 lookups/s, Table-2 service
//                        times / 8), churn 1.0 s, adaptation period 8 s,
//                        queue cap 64, full ERT pipeline; flags given
//                        alongside override any preset value. Prints wall
//                        time, queries/s and peak RSS after the normal
//                        report
//     --scale-json FILE  write the scale figures as one JSON object
//                        (schema in docs/PERFORMANCE.md)
//     --faults SPEC      inject faults; SPEC is comma-separated key=value:
//                          drop=P delay=P dup=P       per-message probs
//                          crash=T:N                  N nodes crash at T s
//                                                     (repeatable)
//                          timeout=S retries=K backoff=B   loss recovery
//                        e.g. --faults drop=0.01,crash=5:32
//     --audit-log FILE   write one violation record per line to FILE
//     --trace FILE       write the structured event trace as JSON lines
//                        (docs/TRACING.md); deterministic for a fixed seed
//                        whatever --threads is
//     --trace-cats LIST  comma-separated category filter for --trace:
//                        run,query,hop,overload,adapt,link,fault,churn,all
//                        (default all)
//     --trace-cap N      trace ring capacity in records (default 2^18);
//                        when full the oldest records are evicted
//     --build-only       construct the network, print build wall-clock time,
//                        peak RSS and node/slot counts, then exit 0 without
//                        issuing any lookups (scale smoke checks)
//     --model-check      run a churn-free base-protocol experiment and
//                        compare the empirical hop-count CDF against the
//                        substrate's closed-form model (chord, kademlia,
//                        d1ht; see docs/SUBSTRATES.md); exit 4 on mismatch
//     --model-check-json FILE  also write the comparison as one JSON
//                        object (implies --model-check)
//     --scenario FILE    declarative workload scenario (docs/SCENARIOS.md);
//                        repeatable. Any --scenario switches to matrix
//                        mode: every listed protocol runs every scenario
//                        (audit always on), and a comparative report —
//                        p99 latency, the overload/fault drop split,
//                        adaptation counts, auditor verdict per cell — is
//                        printed as a table. Exit 3 if any cell failed its
//                        audit.
//     --protocols LIST   comma-separated protocol axis for the scenario
//                        matrix (default: the --protocol value)
//     --scenario-json FILE  write the comparative report as JSON
//                        (schema ert.scenario.report.v1; tools/scenariocat
//                        pretty-prints, validates, and diffs it)
//
// Exit code 0 on success, 3 when --audit (or a scenario matrix) found
// invariant violations, 4 when --model-check found a model mismatch;
// prints a one-screen report.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rss.h"
#include "harness/experiment.h"
#include "harness/model_check.h"
#include "harness/pdes_engine.h"
#include "scenario/parser.h"
#include "scenario/report.h"
#include "trace/jsonl.h"
#include "wire/wire.h"

namespace {

using ert::harness::Protocol;
using ert::harness::SubstrateKind;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ertsim: %s\n", msg);
  std::fprintf(stderr,
               "usage: ertsim [--protocol P] [--substrate S] [--nodes N]\n"
               "              [--lookups N] [--rate R] [--seed S] [--seeds K]\n"
               "              [--threads T] [--sim-threads N]\n"
               "              [--churn T] [--impulse N:K] [--service L:H]\n"
               "              [--queue-cap N]\n"
               "              [--alpha A] [--beta B] [--mu M] [--gamma-l G]\n"
               "              [--poll B] [--data-forwarding] [--probe-cost C]\n"
               "              [--bytes] [--link-rate R] [--link-burst B]\n"
               "              [--csv FILE] [--audit] [--audit-sample K]\n"
               "              [--faults SPEC]\n"
               "              [--audit-log FILE] [--trace FILE]\n"
               "              [--trace-cats LIST] [--trace-cap N]\n"
               "              [--build-only] [--scale] [--scale-json FILE]\n"
               "              [--model-check] [--model-check-json FILE]\n"
               "              [--scenario FILE]... [--protocols LIST]\n"
               "              [--scenario-json FILE]\n");
  std::exit(2);
}

/// Parses "drop=0.01,dup=0.005,crash=5:32,crash=20:16,retries=4".
ert::harness::FaultPlan parse_faults(const std::string& spec) {
  ert::harness::FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) usage("--faults token wants key=value");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "drop") plan.drop_prob = std::strtod(val.c_str(), nullptr);
    else if (key == "delay") plan.delay_prob = std::strtod(val.c_str(), nullptr);
    else if (key == "dup") plan.dup_prob = std::strtod(val.c_str(), nullptr);
    else if (key == "timeout") plan.retry_timeout = std::strtod(val.c_str(), nullptr);
    else if (key == "retries") plan.max_retries = std::atoi(val.c_str());
    else if (key == "backoff") plan.retry_backoff = std::strtod(val.c_str(), nullptr);
    else if (key == "crash") {
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos) usage("--faults crash wants T:N");
      ert::harness::CrashWave wave;
      wave.time = std::strtod(val.c_str(), nullptr);
      wave.count = std::strtoul(val.c_str() + colon + 1, nullptr, 10);
      plan.crash_waves.push_back(wave);
    } else {
      usage(("unknown --faults key " + key).c_str());
    }
  }
  return plan;
}

Protocol parse_protocol(const std::string& s) {
  if (s == "base") return Protocol::kBase;
  if (s == "ns") return Protocol::kNS;
  if (s == "vs") return Protocol::kVS;
  if (s == "ert-a") return Protocol::kErtA;
  if (s == "ert-f") return Protocol::kErtF;
  if (s == "ert-af") return Protocol::kErtAF;
  usage("unknown protocol");
}

SubstrateKind parse_substrate(const std::string& s) {
  if (s == "cycloid") return SubstrateKind::kCycloid;
  if (s == "chord") return SubstrateKind::kChord;
  if (s == "pastry") return SubstrateKind::kPastry;
  if (s == "can") return SubstrateKind::kCan;
  if (s == "kademlia") return SubstrateKind::kKademlia;
  if (s == "d1ht") return SubstrateKind::kD1ht;
  usage("unknown substrate");
}

std::vector<Protocol> parse_protocol_list(const std::string& spec) {
  std::vector<Protocol> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(parse_protocol(tok));
    pos = comma + 1;
  }
  if (out.empty()) usage("--protocols wants a comma-separated list");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ert::SimParams p;
  p.lookup_rate = 16.0;
  Protocol proto = Protocol::kErtAF;
  SubstrateKind kind = SubstrateKind::kCycloid;
  int seeds = 1;
  int threads = 0;
  bool build_only = false;
  bool model_check = false;
  bool scale = false;
  bool nodes_set = false, lookups_set = false, rate_set = false,
       churn_set = false, queue_cap_set = false, service_set = false,
       substrate_set = false;
  std::string scale_json;
  std::string model_check_json_file;
  std::string csv;
  std::string audit_log;
  std::string trace_file;
  std::string scenario_json;
  std::vector<ert::scenario::Scenario> scenarios;
  std::vector<Protocol> protocols;
  ert::harness::ExperimentOptions options;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--protocol") proto = parse_protocol(need(i));
    else if (a == "--substrate") {
      kind = parse_substrate(need(i));
      substrate_set = true;
    }
    else if (a == "--nodes") {
      p.num_nodes = std::strtoul(need(i), nullptr, 10);
      nodes_set = true;
    }
    else if (a == "--lookups") {
      p.num_lookups = std::strtoul(need(i), nullptr, 10);
      lookups_set = true;
    }
    else if (a == "--rate") {
      p.lookup_rate = std::strtod(need(i), nullptr);
      rate_set = true;
    }
    else if (a == "--seed") p.seed = std::strtoull(need(i), nullptr, 10);
    else if (a == "--seeds") seeds = std::atoi(need(i));
    else if (a == "--threads") threads = std::atoi(need(i));
    else if (a == "--sim-threads") {
      p.sim_threads = std::atoi(need(i));
      if (p.sim_threads < 1) usage("--sim-threads wants N >= 1");
    }
    else if (a == "--churn") {
      p.churn_interarrival = std::strtod(need(i), nullptr);
      churn_set = true;
    }
    else if (a == "--impulse") {
      const char* v = need(i);
      const char* colon = std::strchr(v, ':');
      if (!colon) usage("--impulse wants N:K");
      p.impulse_nodes = std::strtoul(v, nullptr, 10);
      p.impulse_keys = std::strtoul(colon + 1, nullptr, 10);
    } else if (a == "--service") {
      const char* v = need(i);
      const char* colon = std::strchr(v, ':');
      if (!colon) usage("--service wants L:H");
      p.light_service_time = std::strtod(v, nullptr);
      p.heavy_service_time = std::strtod(colon + 1, nullptr);
      service_set = true;
    }
    else if (a == "--queue-cap") {
      p.queue_cap = std::strtoul(need(i), nullptr, 10);
      queue_cap_set = true;
    }
    else if (a == "--alpha") p.alpha_override = std::strtod(need(i), nullptr);
    else if (a == "--beta") p.beta = std::strtod(need(i), nullptr);
    else if (a == "--mu") p.mu = std::strtod(need(i), nullptr);
    else if (a == "--gamma-l") p.gamma_l = std::strtod(need(i), nullptr);
    else if (a == "--poll") p.poll_size = std::atoi(need(i));
    else if (a == "--zipf") {
      const char* v = need(i);
      const char* colon = std::strchr(v, ':');
      p.zipf_catalog = std::strtoul(v, nullptr, 10);
      p.zipf_exponent = colon ? std::strtod(colon + 1, nullptr) : 1.0;
    }
    else if (a == "--zipf-drift") p.zipf_drift_period = std::strtod(need(i), nullptr);
    else if (a == "--data-forwarding") p.data_forwarding = true;
    else if (a == "--probe-cost") p.probe_cost = std::strtod(need(i), nullptr);
    else if (a == "--bytes") options.wire.bytes = true;
    else if (a == "--link-rate") {
      options.wire.link_rate = std::strtod(need(i), nullptr);
      if (options.wire.link_rate <= 0) usage("--link-rate wants R > 0");
    }
    else if (a == "--link-burst") {
      options.wire.link_burst = std::strtod(need(i), nullptr);
      if (options.wire.link_burst <= 0) usage("--link-burst wants B > 0");
    }
    else if (a == "--csv") csv = need(i);
    else if (a == "--audit") options.audit.enabled = true;
    else if (a == "--audit-sample") {
      options.audit.sample = std::strtoul(need(i), nullptr, 10);
      if (options.audit.sample == 0) usage("--audit-sample wants K >= 1");
      options.audit.enabled = true;
    }
    else if (a == "--scale") scale = true;
    else if (a == "--scale-json") scale_json = need(i);
    else if (a == "--faults") options.faults = parse_faults(need(i));
    else if (a == "--audit-log") audit_log = need(i);
    else if (a == "--trace") {
      trace_file = need(i);
      options.trace.enabled = true;
    } else if (a == "--trace-cats") {
      if (!ert::trace::parse_categories(need(i), &options.trace.categories))
        usage("--trace-cats wants run,query,hop,overload,adapt,link,fault,"
              "churn or all");
    } else if (a == "--trace-cap") {
      options.trace.capacity = std::strtoul(need(i), nullptr, 10);
      if (options.trace.capacity == 0) usage("--trace-cap wants N >= 1");
    }
    else if (a == "--scenario") {
      const char* file = need(i);
      const auto parsed = ert::scenario::parse_file(file);
      if (!parsed.ok) usage(parsed.message(file).c_str());
      ert::scenario::Scenario s = parsed.scenario;
      if (s.name.empty()) s.name = file;
      scenarios.push_back(std::move(s));
    }
    else if (a == "--protocols") protocols = parse_protocol_list(need(i));
    else if (a == "--scenario-json") scenario_json = need(i);
    else if (a == "--build-only") build_only = true;
    else if (a == "--model-check") model_check = true;
    else if (a == "--model-check-json") {
      model_check_json_file = need(i);
      model_check = true;
    }
    else if (a == "--help" || a == "-h") usage();
    else usage(("unknown option " + a).c_str());
  }
  if (scale) {
    // Figure-mode preset: the full pipeline (Poisson queries + overload
    // probing + shed/grow adaptation + churn) at end-to-end scale. The
    // workload clock is compressed 8x relative to the calibrated
    // 2048-node figures: the arrival rate scales as 128 * n / 2048 and
    // the Table-2 service times shrink by the same factor, so per-node
    // utilization stays at calibrated parity while 1M queries inject in
    // ~2 sim-minutes. The adaptation period stretches to T = 8 s so the
    // management plane (one shed/grow decision per node per period, the
    // cost that dominates at this n) stays a bounded fraction of the
    // run, and a 64-query ingress cap bounds the drain tail at the
    // statistically inevitable unstable nodes. The preset substrate is
    // Chord: its uniform ring keeps the figure run drop-free, whereas a
    // partial Cycloid (any n that is not d * 2^d leaves the upper
    // levels empty) funnels traffic through boundary hub nodes that
    // shed a large arrival fraction even at low mean utilization —
    // pass --substrate cycloid to study that regime. Explicit flags
    // win over the preset.
    if (!substrate_set) kind = SubstrateKind::kChord;
    if (!nodes_set) p.num_nodes = std::size_t{1} << 17;
    if (!lookups_set)
      p.num_lookups = std::max<std::size_t>(p.num_lookups, 1'000'000);
    if (!rate_set)
      p.lookup_rate =
          128.0 * static_cast<double>(p.num_nodes) / 2048.0;
    if (!service_set) {
      p.light_service_time = 0.2 / 8.0;
      p.heavy_service_time = 1.0 / 8.0;
    }
    if (!churn_set) p.churn_interarrival = 1.0;
    if (!queue_cap_set) p.queue_cap = 64;
    p.adapt_period = 8.0;
  }
  p.dimension = std::max(p.dimension, ert::harness::fit_dimension(p.num_nodes));
  if (proto == Protocol::kVS && kind != SubstrateKind::kCycloid)
    usage("VS requires the cycloid substrate");
  if (proto == Protocol::kNS && kind != SubstrateKind::kCycloid &&
      kind != SubstrateKind::kKademlia)
    usage("NS needs neighbor selection freedom (cycloid or kademlia)");
  if (kind == SubstrateKind::kCycloid) {
    const std::size_t full = static_cast<std::size_t>(p.dimension)
                             << p.dimension;
    if (p.num_nodes != full)
      std::fprintf(
          stderr,
          "ertsim: warning: %zu nodes is a partial Cycloid (the full d*2^d "
          "network at d=%d holds %zu): the empty upper cycles funnel traffic "
          "through boundary hub nodes, which shed a large arrival fraction "
          "even at low mean utilization. Use --substrate chord for a uniform "
          "ring at this n, or pick n = d*2^d to study the complete topology "
          "(see docs/SUBSTRATES.md).\n",
          p.num_nodes, p.dimension, full);
  }

  if (!protocols.empty() && scenarios.empty())
    usage("--protocols only makes sense with --scenario");

  if (!scenarios.empty()) {
    // Matrix mode: every protocol runs every scenario on the one chosen
    // substrate, with the invariant auditor always on so each cell carries
    // a verdict. The (protocol, scenario, seed) units fan out through
    // run_sweep, so the report is bit-identical for any --threads.
    if (protocols.empty()) protocols.push_back(proto);
    for (Protocol pr : protocols) {
      if (pr == Protocol::kVS && kind != SubstrateKind::kCycloid)
        usage("VS requires the cycloid substrate");
      if (pr == Protocol::kNS && kind != SubstrateKind::kCycloid &&
          kind != SubstrateKind::kKademlia)
        usage("NS needs neighbor selection freedom (cycloid or kademlia)");
    }
    options.audit.enabled = true;
    std::vector<ert::harness::SweepJob> jobs;
    for (Protocol pr : protocols) {
      for (const auto& scen : scenarios) {
        ert::harness::SweepJob job;
        job.params = p;
        job.protocol = pr;
        job.substrate = kind;
        job.seeds = seeds;
        job.options = options;
        job.options.scenario = scen;
        jobs.push_back(std::move(job));
      }
    }
    const auto results = ert::harness::run_sweep(jobs, threads);
    ert::scenario::Report report;
    bool any_fail = false;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto& r = results[j];
      ert::scenario::Cell cell;
      cell.protocol = std::string(ert::harness::to_string(jobs[j].protocol));
      cell.substrate = ert::harness::to_string(kind);
      cell.scenario = jobs[j].options.scenario.name;
      cell.mean_latency = r.lookup_time.mean;
      cell.p99_latency = r.lookup_time.p99;
      cell.completed = r.completed_lookups;
      cell.dropped_overload = r.dropped_overload;
      cell.dropped_fault = r.dropped_fault;
      cell.adapt_sheds = r.adapt_sheds;
      cell.adapt_grows = r.adapt_grows;
      cell.bytes_control = r.bytes.control_bytes;
      cell.bytes_query = r.bytes.query_bytes;
      cell.audit_sweeps = r.audit_sweeps;
      cell.audit_waived_sweeps = r.audit_waived_sweeps;
      cell.audit_violations = r.audit_violations;
      cell.verdict = r.audit_violations == 0 ? "pass" : "fail";
      if (r.audit_violations > 0) any_fail = true;
      report.cells.push_back(std::move(cell));
    }
    std::printf("scenario matrix    %zu protocols x %zu scenarios on %s "
                "(%d seed%s each)\n\n",
                protocols.size(), scenarios.size(),
                ert::harness::to_string(kind), seeds, seeds == 1 ? "" : "s");
    std::printf("%s", ert::scenario::to_table(report).c_str());
    if (!scenario_json.empty()) {
      FILE* f = std::fopen(scenario_json.c_str(), "w");
      if (!f) {
        std::perror("ertsim: --scenario-json open");
        return 1;
      }
      const std::string j = ert::scenario::to_json(report);
      std::fwrite(j.data(), 1, j.size(), f);
      std::fclose(f);
      std::printf("\nscenario json      %s\n", scenario_json.c_str());
    }
    return any_fail ? 3 : 0;
  }

  if (model_check) {
    if (kind != SubstrateKind::kChord && kind != SubstrateKind::kKademlia &&
        kind != SubstrateKind::kD1ht)
      usage("--model-check has closed-form models for chord, kademlia, d1ht");
    if (p.churn_interarrival > 0.0)
      usage("--model-check assumes a churn-free run (drop --churn)");
    const auto mc = ert::harness::model_check(kind, p);
    std::printf("model check        %s, %zu nodes, %zu lookups\n",
                ert::harness::to_string(mc.kind), mc.nodes, mc.lookups);
    std::printf("hop CDF deviation  %.4f  (tolerance %.2f)\n",
                mc.sup_deviation, mc.tolerance);
    std::printf("mean hops          %.3f empirical vs %.3f predicted\n",
                mc.mean_hops_empirical, mc.mean_hops_predicted);
    std::printf("one-hop fraction   %.4f\n", mc.one_hop_fraction);
    std::printf("per-node load      mean %.2f, max %.0f, cv %.3f\n",
                mc.load_mean, mc.load_max, mc.load_cv);
    std::printf("verdict            %s\n", mc.pass ? "PASS" : "MISMATCH");
    if (!model_check_json_file.empty()) {
      FILE* f = std::fopen(model_check_json_file.c_str(), "w");
      if (!f) {
        std::perror("ertsim: --model-check-json open");
        return 1;
      }
      const std::string j = ert::harness::model_check_json(mc);
      std::fprintf(f, "%s\n", j.c_str());
      std::fclose(f);
      std::printf("model check json   %s\n", model_check_json_file.c_str());
    }
    return mc.pass ? 0 : 4;
  }

  if (build_only) {
    const auto b = ert::harness::run_build_only(p, proto, kind);
    std::printf("protocol           %s on %s\n",
                std::string(ert::harness::to_string(proto)).c_str(),
                ert::harness::to_string(kind));
    std::printf("nodes              %zu real, %zu overlay slots\n",
                b.real_nodes, b.overlay_slots);
    std::printf("build time         %.3f s\n", b.build_seconds);
    std::printf("peak RSS           %.1f MiB\n",
                static_cast<double>(b.peak_rss_kb) / 1024.0);
    return 0;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const auto r =
      seeds > 1
          ? ert::harness::run_averaged(p, proto, seeds, kind, threads, options)
          : ert::harness::run_experiment(p, proto, kind, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::printf("protocol           %s on %s\n",
              std::string(ert::harness::to_string(proto)).c_str(),
              ert::harness::to_string(kind));
  std::printf("network            %zu nodes, %zu lookups at %.1f/s\n",
              p.num_nodes, p.num_lookups, p.lookup_rate);
  if (p.sim_threads > 1) {
    const bool sharded =
        ert::harness::pdes_supported(p, proto, kind, options);
    std::printf("sim threads        %d shards (%s)\n", p.sim_threads,
                sharded ? "conservative PDES"
                        : "unsupported workload, serial fallback");
  }
  std::printf("completed          %zu (+%zu dropped), sim time %.1f s\n",
              r.completed_lookups, r.dropped_lookups, r.sim_duration);
  std::printf("p99 max congestion %.3f   (mean %.3f, min-cap node %.3f)\n",
              r.p99_max_congestion, r.mean_max_congestion,
              r.min_cap_node_congestion);
  std::printf("p99 share          %.3f\n", r.p99_share);
  std::printf("heavy encounters   %zu\n", r.heavy_encounters);
  std::printf("path length        %.2f hops\n", r.avg_path_length);
  std::printf("lookup time        %.3f s  (p1 %.3f, p99 %.3f)\n",
              r.lookup_time.mean, r.lookup_time.p01, r.lookup_time.p99);
  std::printf("timeouts/lookup    %.3f\n", r.avg_timeouts);
  std::printf("max indegree       %.1f  (p1 %.0f, p99 %.0f)\n",
              r.max_indegree.mean, r.max_indegree.p01, r.max_indegree.p99);
  std::printf("max outdegree      %.1f  (p1 %.0f, p99 %.0f)\n",
              r.max_outdegree.mean, r.max_outdegree.p01, r.max_outdegree.p99);
  if (options.wire.bytes) {
    const auto& b = r.bytes;
    const auto ull = [](std::uint64_t v) {
      return static_cast<unsigned long long>(v);
    };
    std::printf("wire bytes         %llu total in %llu msgs\n",
                ull(b.total_bytes()), ull(b.total_msgs()));
    std::printf("  control          %llu bytes in %llu msgs\n",
                ull(b.control_bytes), ull(b.control_msgs));
    std::printf("  query            %llu bytes in %llu msgs\n",
                ull(b.query_bytes), ull(b.query_msgs));
    for (std::size_t t = 0; t < ert::wire::kNumMsgTypes; ++t) {
      if (b.msg_count[t] == 0) continue;
      std::printf("  %-16s %llu bytes in %llu msgs (%.1f B/msg)\n",
                  ert::wire::to_string(static_cast<ert::wire::MsgType>(t)),
                  ull(b.msg_bytes[t]), ull(b.msg_count[t]),
                  static_cast<double>(b.msg_bytes[t]) /
                      static_cast<double>(b.msg_count[t]));
    }
    std::printf("link model         rate %g B/s, burst %g B: %llu delayed "
                "msgs, mean queueing %.4f s\n",
                options.wire.link_rate, options.wire.link_burst,
                ull(b.delayed_msgs),
                b.delayed_msgs
                    ? b.queueing_delay_sum / static_cast<double>(b.delayed_msgs)
                    : 0.0);
    std::printf("peaks              backlog %.0f B on one link, %llu B of "
                "query frames in flight\n",
                b.peak_backlog_bytes, ull(b.peak_in_flight_bytes));
  }
  if (options.faults.enabled()) {
    std::printf("faults             %zu timed out, %zu retried, %zu recovered, "
                "%zu crashed\n",
                r.faults.timed_out, r.faults.retried, r.faults.recovered,
                r.faults.crashed_nodes);
    std::printf("dropped split      %zu overload, %zu fault\n",
                r.dropped_overload, r.dropped_fault);
  }
  if (options.audit.enabled) {
    std::printf("audit              %zu sweeps, %zu violations%s\n",
                r.audit_sweeps, r.audit_violations,
                r.audit_violations == 0 ? " (clean)" : "");
    for (const auto& v : r.audit_records)
      std::printf("  %s\n", ert::harness::to_string(v).c_str());
    if (!audit_log.empty()) {
      FILE* f = std::fopen(audit_log.c_str(), "w");
      if (!f) {
        std::perror("ertsim: --audit-log open");
        return 1;
      }
      for (const auto& v : r.audit_records)
        std::fprintf(f, "%s\n", ert::harness::to_string(v).c_str());
      std::fclose(f);
    }
  }

  if (!trace_file.empty()) {
    if (!ert::trace::write_jsonl_file(trace_file, r.trace_records)) {
      std::perror("ertsim: --trace open");
      return 1;
    }
    std::printf("trace              %zu records to %s (%zu emitted, %zu "
                "evicted by ring wrap)\n",
                r.trace_records.size(), trace_file.c_str(), r.trace_emitted,
                r.trace_dropped);
  }

  if (!csv.empty()) {
    FILE* f = std::fopen(csv.c_str(), "a");
    if (!f) {
      std::perror("ertsim: --csv open");
      return 1;
    }
    if (std::ftell(f) == 0) {
      std::fprintf(f,
                   "protocol,substrate,nodes,lookups,rate,seed,churn,"
                   "impulse_nodes,impulse_keys,p99_max_congestion,p99_share,"
                   "heavy,path,latency_mean,latency_p99,timeouts,"
                   "max_indegree_p99,max_outdegree_p99\n");
    }
    std::fprintf(f, "%s,%s,%zu,%zu,%g,%llu,%g,%zu,%zu,%g,%g,%zu,%g,%g,%g,%g,%g,%g\n",
                 std::string(ert::harness::to_string(proto)).c_str(),
                 ert::harness::to_string(kind), p.num_nodes, p.num_lookups,
                 p.lookup_rate, static_cast<unsigned long long>(p.seed),
                 p.churn_interarrival, p.impulse_nodes, p.impulse_keys,
                 r.p99_max_congestion, r.p99_share, r.heavy_encounters,
                 r.avg_path_length, r.lookup_time.mean, r.lookup_time.p99,
                 r.avg_timeouts, r.max_indegree.p99, r.max_outdegree.p99);
    std::fclose(f);
  }
  if (scale || !scale_json.empty()) {
    const std::size_t settled = r.completed_lookups + r.dropped_lookups;
    const double qps =
        wall_seconds > 0 ? static_cast<double>(settled) / wall_seconds : 0.0;
    const std::size_t rss_kb = ert::peak_rss_kb();
    std::printf("scale              wall %.1f s, %.0f queries/s, peak RSS "
                "%.1f MiB\n",
                wall_seconds, qps, static_cast<double>(rss_kb) / 1024.0);
    if (!scale_json.empty()) {
      FILE* f = std::fopen(scale_json.c_str(), "w");
      if (!f) {
        std::perror("ertsim: --scale-json open");
        return 1;
      }
      std::fprintf(
          f,
          "{\n"
          "  \"protocol\": \"%s\",\n"
          "  \"substrate\": \"%s\",\n"
          "  \"nodes\": %zu,\n"
          "  \"lookups\": %zu,\n"
          "  \"rate\": %g,\n"
          "  \"seed\": %llu,\n"
          "  \"sim_threads\": %d,\n"
          "  \"churn_interarrival\": %g,\n"
          "  \"completed\": %zu,\n"
          "  \"dropped\": %zu,\n"
          "  \"sim_duration\": %g,\n"
          "  \"wall_seconds\": %g,\n"
          "  \"queries_per_sec\": %g,\n"
          "  \"peak_rss_kb\": %zu,\n"
          "  \"lookup_time_mean\": %g,\n"
          "  \"lookup_time_p99\": %g,\n"
          "  \"avg_path_length\": %g\n"
          "}\n",
          std::string(ert::harness::to_string(proto)).c_str(),
          ert::harness::to_string(kind), p.num_nodes, p.num_lookups,
          p.lookup_rate, static_cast<unsigned long long>(p.seed),
          p.sim_threads, p.churn_interarrival, r.completed_lookups,
          r.dropped_lookups,
          r.sim_duration, wall_seconds, qps, rss_kb, r.lookup_time.mean,
          r.lookup_time.p99, r.avg_path_length);
      std::fclose(f);
      std::printf("scale json         %s\n", scale_json.c_str());
    }
  }
  if (options.audit.enabled && r.audit_violations > 0) return 3;
  return 0;
}
