// tracecat — summarize and validate structured trace files (docs/TRACING.md).
//
//   tracecat [options] FILE
//     --validate   strict schema check: exit 1 on the first malformed line
//     --query N    print the full event chain of query id N
//     --node N     print the adaptation / link / churn history of node N
//     --top K      list length for the summary's top-K tables (default 5)
//
// FILE is a JSON-lines trace written by `ertsim --trace` ("-" reads stdin).
// The default report shows per-event-type counts, the longest query hop
// chains, the most-adapted nodes, the top congestion offenders (the
// nodes queries most often met overloaded), and a reconstructed wire-size
// table: each traced hop / adaptation / link / membership event maps to
// its binary frame (docs/WIRE.md), whose encoded size is a pure function
// of the record's fields, giving per-message-type byte counts and the
// control-vs-query split without rerunning the simulation. The
// reconstruction approximates `ertsim --bytes` rather than matching it:
// load probes, probe replies, and timeout retransmissions are engine-side
// only (never traced), while construction-time link adopts are traced but
// never billed (the meter attaches after the network is built).
// Multi-seed traces concatenate per-seed streams (run.begin marks each
// seed), so query ids are qualified by their run; node tallies aggregate
// across runs by overlay index.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace/jsonl.h"
#include "trace/trace.h"
#include "wire/wire.h"

namespace {

using ert::trace::EventType;
using ert::trace::Record;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "tracecat: %s\n", msg);
  std::fprintf(stderr,
               "usage: tracecat [--validate] [--query N] [--node N]\n"
               "                [--top K] FILE\n");
  std::exit(2);
}

/// fault.delay / fault.dup use the query field as a message index, not a
/// query id — keep them out of per-query chains.
bool query_scoped(EventType t) {
  switch (t) {
    case EventType::kQueryBegin:
    case EventType::kQueryHop:
    case EventType::kQueryOverload:
    case EventType::kQueryTimeout:
    case EventType::kQueryEnd:
    case EventType::kQueryDrop:
    case EventType::kFaultTimeout:
    case EventType::kFaultRetry:
      return true;
    default:
      return false;
  }
}

/// One human line per record, spelling out the per-type field semantics.
std::string describe(const Record& r) {
  char buf[160];
  switch (r.type) {
    case EventType::kRunBegin:
      std::snprintf(buf, sizeof buf, "seed=%llu nodes=%llu proto=%lld sub=%lld",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a, (long long)r.b);
      break;
    case EventType::kRunEnd:
      std::snprintf(buf, sizeof buf, "seed=%llu completed=%lld dropped=%lld",
                    (unsigned long long)r.query, (long long)r.a,
                    (long long)r.b);
      break;
    case EventType::kQueryBegin:
      std::snprintf(buf, sizeof buf, "q=%llu source=%llu key=%lld",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a);
      break;
    case EventType::kQueryHop:
      std::snprintf(buf, sizeof buf, "q=%llu %llu -> %lld (cands=%u aset=%lld)",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a, r.aux, (long long)r.b);
      break;
    case EventType::kQueryOverload:
      std::snprintf(buf, sizeof buf, "q=%llu heavy node=%llu queue=%lld g=%.3f",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a, (double)r.b / 1000.0);
      break;
    case EventType::kQueryTimeout:
      std::snprintf(buf, sizeof buf, "q=%llu dead node=%llu site=%u",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    r.aux);
      break;
    case EventType::kQueryEnd:
      std::snprintf(buf, sizeof buf, "q=%llu owner=%llu hops=%lld heavy=%lld",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a, (long long)r.b);
      break;
    case EventType::kQueryDrop:
      std::snprintf(buf, sizeof buf, "q=%llu at=%llu hops=%lld cause=%s",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a, r.aux == 0 ? "overload" : "fault");
      break;
    case EventType::kAdaptShed:
    case EventType::kAdaptGrow:
      std::snprintf(buf, sizeof buf, "node=%llu indegree %lld -> %lld (want %u)",
                    (unsigned long long)r.node, (long long)r.a, (long long)r.b,
                    r.aux);
      break;
    case EventType::kLinkAdopt:
    case EventType::kLinkShed:
      std::snprintf(buf, sizeof buf, "node=%llu host=%lld indegree=%lld",
                    (unsigned long long)r.node, (long long)r.a, (long long)r.b);
      break;
    case EventType::kFaultTimeout:
    case EventType::kFaultRetry:
      std::snprintf(buf, sizeof buf, "q=%llu dest=%llu attempt=%lld",
                    (unsigned long long)r.query, (unsigned long long)r.node,
                    (long long)r.a);
      break;
    case EventType::kFaultDelay:
    case EventType::kFaultDup:
      std::snprintf(buf, sizeof buf, "msg=%llu extra=%lldus",
                    (unsigned long long)r.query, (long long)r.a);
      break;
    case EventType::kChurnJoin:
      std::snprintf(buf, sizeof buf, "real=%llu overlay=%lld%s",
                    (unsigned long long)r.node, (long long)r.a,
                    r.a < 0 ? " (rejected)" : "");
      break;
    case EventType::kChurnDepart:
    case EventType::kCrash:
      std::snprintf(buf, sizeof buf, "real=%llu", (unsigned long long)r.node);
      break;
  }
  char out[200];
  std::snprintf(out, sizeof out, "%12.6f  %-14s %s", r.time,
                ert::trace::to_string(r.type), buf);
  return out;
}

struct QueryTally {
  std::size_t hops = 0;
  std::size_t overloads = 0;
  std::size_t timeouts = 0;
  double begin_time = 0.0;
  double end_time = -1.0;  ///< < 0 while unfinished.
  bool dropped = false;
  std::uint64_t key = 0;  ///< lookup key (query.begin), for Forward frames.
};

/// Reconstructed wire traffic: every traced event that corresponds to a
/// protocol message contributes its exact encoded frame size (the Forward
/// size needs only |A|, carried by the hop record, not the set members).
struct WireTally {
  std::uint64_t count[ert::wire::kNumMsgTypes] = {};
  std::uint64_t bytes[ert::wire::kNumMsgTypes] = {};

  void add(ert::wire::MsgType t, std::size_t size) {
    ++count[static_cast<std::size_t>(t)];
    bytes[static_cast<std::size_t>(t)] += size;
  }
};

struct NodeTally {
  std::size_t sheds = 0;
  std::size_t grows = 0;
  std::size_t overload_hits = 0;  ///< times queries met this node heavy.
};

template <typename Map, typename Score>
void print_top(const Map& m, std::size_t k, Score score, const char* fmt) {
  using Entry = typename Map::value_type;
  std::vector<const Entry*> order;
  order.reserve(m.size());
  for (const auto& e : m) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [&](const Entry* x, const Entry* y) {
                     return score(x->second) > score(y->second);
                   });
  for (std::size_t i = 0; i < order.size() && i < k; ++i) {
    if (score(order[i]->second) == 0) break;
    std::printf(fmt, (unsigned long long)order[i]->first.second,
                (unsigned long long)score(order[i]->second),
                order[i]->first.first);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  bool want_query = false, want_node = false;
  std::uint64_t query_id = 0, node_id = 0;
  std::size_t top_k = 5;
  std::string path;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--validate") validate = true;
    else if (a == "--query") { want_query = true; query_id = std::strtoull(need(i), nullptr, 10); }
    else if (a == "--node") { want_node = true; node_id = std::strtoull(need(i), nullptr, 10); }
    else if (a == "--top") top_k = std::strtoul(need(i), nullptr, 10);
    else if (a == "--help" || a == "-h") usage();
    else if (!a.empty() && a[0] == '-' && a != "-") usage(("unknown option " + a).c_str());
    else if (path.empty()) path = a;
    else usage("more than one FILE");
  }
  if (path.empty()) usage("missing FILE");

  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "tracecat: cannot open %s\n", path.c_str());
      return 1;
    }
    in = &file;
  }

  // key = (run index, query id): query ids restart per seed in a
  // concatenated multi-seed trace.
  std::map<std::pair<std::uint32_t, std::uint64_t>, QueryTally> queries;
  std::map<std::pair<std::uint32_t, std::uint64_t>, NodeTally> nodes;
  WireTally wires;
  std::size_t counts[ert::trace::kNumEventTypes] = {};
  std::size_t total = 0, bad = 0, lineno = 0;
  std::uint32_t run = 0;
  bool partial_cycloid = false;
  std::string line;
  while (std::getline(*in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Record r;
    std::string err;
    if (!ert::trace::parse_jsonl_line(line, &r, &err)) {
      if (validate) {
        std::fprintf(stderr, "tracecat: %s:%zu: %s\n", path.c_str(), lineno,
                     err.c_str());
        return 1;
      }
      ++bad;
      continue;
    }
    ++total;
    ++counts[static_cast<std::size_t>(r.type)];
    if (r.type == EventType::kRunBegin) {
      ++run;
      // run.begin: node = num_nodes, b = substrate id (0 = Cycloid). A
      // Cycloid run whose n is not d * 2^d leaves upper cycles empty, so
      // its congestion-offender table is expected to concentrate on the
      // boundary hub nodes.
      if (r.b == 0) {
        bool full = false;
        for (std::uint64_t d = 1; d <= 26; ++d)
          if ((d << d) == r.node) full = true;
        if (!full) partial_cycloid = true;
      }
    }
    const std::uint32_t cur_run = run > 0 ? run - 1 : 0;

    if (want_query && query_scoped(r.type) && r.query == query_id)
      std::printf("%s\n", describe(r).c_str());
    if (want_node && !query_scoped(r.type) && r.type != EventType::kRunBegin &&
        r.type != EventType::kRunEnd && r.node == node_id)
      std::printf("%s\n", describe(r).c_str());

    if (query_scoped(r.type)) {
      QueryTally& q = queries[{cur_run, r.query}];
      switch (r.type) {
        case EventType::kQueryBegin:
          q.begin_time = r.time;
          q.key = static_cast<std::uint64_t>(r.a);
          break;
        case EventType::kQueryHop: ++q.hops; break;
        case EventType::kQueryOverload: ++q.overloads; break;
        case EventType::kQueryTimeout: ++q.timeouts; break;
        case EventType::kQueryEnd: q.end_time = r.time; break;
        case EventType::kQueryDrop: q.dropped = true; q.end_time = r.time; break;
        default: break;
      }
    }
    switch (r.type) {
      case EventType::kQueryOverload:
        ++nodes[{cur_run, r.node}].overload_hits;
        break;
      case EventType::kAdaptShed:
        ++nodes[{cur_run, r.node}].sheds;
        break;
      case EventType::kAdaptGrow:
        ++nodes[{cur_run, r.node}].grows;
        break;
      default:
        break;
    }

    // Frame-size reconstruction (docs/WIRE.md): map the record back to the
    // message it stands for. The engine emits the hop record after
    // incrementing the hop counter, so the tally (just updated above) holds
    // the frame's hops field; |A| rides in the record's b field.
    switch (r.type) {
      case EventType::kQueryHop: {
        const QueryTally& q = queries[{cur_run, r.query}];
        ert::wire::Forward m;
        m.qid = r.query;
        m.key = q.key;
        m.from = r.node;
        m.to = static_cast<std::uint64_t>(r.a);
        m.hops = q.hops;
        m.aset_len = static_cast<std::uint32_t>(r.b);
        wires.add(ert::wire::MsgType::kForward, ert::wire::encoded_size(m));
        break;
      }
      case EventType::kAdaptShed:
        wires.add(ert::wire::MsgType::kAdaptShed,
                  ert::wire::encoded_size(ert::wire::AdaptShed{r.node, r.aux}));
        break;
      case EventType::kAdaptGrow:
        wires.add(ert::wire::MsgType::kAdaptGrow,
                  ert::wire::encoded_size(ert::wire::AdaptGrow{r.node, r.aux}));
        break;
      case EventType::kLinkAdopt:
        wires.add(ert::wire::MsgType::kBackwardAdd,
                  ert::wire::encoded_size(ert::wire::BackwardAdd{
                      r.node, static_cast<std::uint64_t>(r.a),
                      static_cast<std::uint64_t>(r.b)}));
        break;
      case EventType::kLinkShed:
        wires.add(ert::wire::MsgType::kBackwardDrop,
                  ert::wire::encoded_size(ert::wire::BackwardDrop{
                      r.node, static_cast<std::uint64_t>(r.a),
                      static_cast<std::uint64_t>(r.b)}));
        break;
      case EventType::kChurnJoin:
        // A rejected join (overlay slot -1) never made it onto the wire.
        if (r.a >= 0)
          wires.add(ert::wire::MsgType::kJoin,
                    ert::wire::encoded_size(ert::wire::Join{
                        r.node, static_cast<std::uint64_t>(r.a)}));
        break;
      case EventType::kChurnDepart:
        // Crashes are silent; only graceful departures announce themselves.
        wires.add(ert::wire::MsgType::kLeave,
                  ert::wire::encoded_size(ert::wire::Leave{r.node}));
        break;
      default:
        break;
    }
  }

  if (validate) {
    std::printf("%zu records valid\n", total);
    return 0;
  }
  if (want_query || want_node) return 0;

  std::printf("%zu records", total);
  if (bad > 0) std::printf(" (%zu malformed lines skipped)", bad);
  std::printf(", %u run%s\n\n", run, run == 1 ? "" : "s");

  std::printf("event counts\n");
  for (std::size_t t = 0; t < ert::trace::kNumEventTypes; ++t) {
    if (counts[t] == 0) continue;
    std::printf("  %-16s %zu\n",
                ert::trace::to_string(static_cast<EventType>(t)), counts[t]);
  }

  std::uint64_t wire_total_bytes = 0, wire_total_msgs = 0;
  std::uint64_t wire_query_bytes = 0, wire_query_msgs = 0;
  for (std::size_t t = 0; t < ert::wire::kNumMsgTypes; ++t) {
    wire_total_bytes += wires.bytes[t];
    wire_total_msgs += wires.count[t];
    if (ert::wire::is_query(static_cast<ert::wire::MsgType>(t))) {
      wire_query_bytes += wires.bytes[t];
      wire_query_msgs += wires.count[t];
    }
  }
  if (wire_total_msgs > 0) {
    std::printf("\nwire sizes (reconstructed; docs/WIRE.md)\n");
    for (std::size_t t = 0; t < ert::wire::kNumMsgTypes; ++t) {
      if (wires.count[t] == 0) continue;
      std::printf("  %-16s %llu bytes in %llu msgs (%.1f B/msg)\n",
                  ert::wire::to_string(static_cast<ert::wire::MsgType>(t)),
                  (unsigned long long)wires.bytes[t],
                  (unsigned long long)wires.count[t],
                  (double)wires.bytes[t] / (double)wires.count[t]);
    }
    std::printf("  control %llu bytes in %llu msgs, query %llu bytes in "
                "%llu msgs\n",
                (unsigned long long)(wire_total_bytes - wire_query_bytes),
                (unsigned long long)(wire_total_msgs - wire_query_msgs),
                (unsigned long long)wire_query_bytes,
                (unsigned long long)wire_query_msgs);
    std::printf("  (probes, probe replies and timeout retransmissions are "
                "engine-side only: `ertsim --bytes` counts them, traces "
                "cannot)\n");
  }

  std::size_t done = 0, dropped = 0;
  for (const auto& [key, q] : queries) {
    if (q.end_time >= 0.0 && !q.dropped) ++done;
    if (q.dropped) ++dropped;
  }
  if (!queries.empty()) {
    std::printf("\nqueries: %zu seen, %zu completed, %zu dropped\n",
                queries.size(), done, dropped);
    std::printf("longest hop chains (hops, query, run)\n");
    print_top(queries, top_k,
              [](const QueryTally& q) { return q.hops; },
              "  q=%-10llu %llu hops (run %u)\n");
    std::printf("slowest queries (latency)\n");
    std::vector<std::pair<double, std::pair<std::uint32_t, std::uint64_t>>> lat;
    for (const auto& [key, q] : queries)
      if (q.end_time >= 0.0) lat.push_back({q.end_time - q.begin_time, key});
    std::stable_sort(lat.begin(), lat.end(),
                     [](const auto& x, const auto& y) { return x.first > y.first; });
    for (std::size_t i = 0; i < lat.size() && i < top_k; ++i)
      std::printf("  q=%-10llu %.3f s (run %u)\n",
                  (unsigned long long)lat[i].second.second, lat[i].first,
                  lat[i].second.first);
  }
  if (!nodes.empty()) {
    std::printf("\ntop congestion offenders (overload encounters)\n");
    print_top(nodes, top_k,
              [](const NodeTally& n) { return n.overload_hits; },
              "  node=%-8llu %llu encounters (run %u)\n");
    std::printf("most-adapted nodes (sheds + grows)\n");
    print_top(nodes, top_k,
              [](const NodeTally& n) { return n.sheds + n.grows; },
              "  node=%-8llu %llu adaptations (run %u)\n");
  }
  if (partial_cycloid)
    std::printf(
        "\nnote: this trace is from a partial Cycloid (n != d*2^d), whose "
        "empty upper cycles funnel traffic through boundary hub nodes — "
        "concentrated offenders above are the expected topology effect, not "
        "a protocol regression (see docs/SUBSTRATES.md)\n");
  return 0;
}
