// scenariocat — inspect scenario-matrix reports (and scenario files).
//
//   scenariocat REPORT.json              pretty-print the comparative table
//   scenariocat --validate REPORT.json   parse + schema-check, exit 0/1
//   scenariocat --diff A.json B.json     compare two reports cell by cell;
//                                        exit 1 and list differing cells
//                                        (thread-invariance / regression
//                                        checks in CI)
//   scenariocat --check-scenario FILE    parse + validate a scenario file,
//                                        echo its canonical form, exit 0/1
//
// Reads the ert.scenario.report.v1 JSON emitted by `ertsim --scenario-json`
// (docs/SCENARIOS.md has the schema).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/parser.h"
#include "scenario/report.h"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "scenariocat: %s\n", msg);
  std::fprintf(stderr,
               "usage: scenariocat REPORT.json\n"
               "       scenariocat --validate REPORT.json\n"
               "       scenariocat --diff A.json B.json\n"
               "       scenariocat --check-scenario FILE\n");
  std::exit(2);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool load_report(const std::string& path, ert::scenario::Report* report) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "scenariocat: cannot open %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!ert::scenario::from_json(text, report, &err)) {
    std::fprintf(stderr, "scenariocat: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

std::string cell_key(const ert::scenario::Cell& c) {
  return c.protocol + " / " + c.substrate + " / " + c.scenario;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string a1 = argv[1];

  if (a1 == "--validate") {
    if (argc != 3) usage("--validate wants one report file");
    ert::scenario::Report report;
    if (!load_report(argv[2], &report)) return 1;
    std::printf("%s: valid (%zu cells)\n", argv[2], report.cells.size());
    return 0;
  }

  if (a1 == "--diff") {
    if (argc != 4) usage("--diff wants two report files");
    ert::scenario::Report a, b;
    if (!load_report(argv[2], &a) || !load_report(argv[3], &b)) return 1;
    if (a == b) {
      std::printf("reports identical (%zu cells)\n", a.cells.size());
      return 0;
    }
    if (a.cells.size() != b.cells.size()) {
      std::printf("cell counts differ: %zu vs %zu\n", a.cells.size(),
                  b.cells.size());
      return 1;
    }
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
      if (a.cells[i] == b.cells[i]) continue;
      std::printf("cell %zu differs: %s\n", i, cell_key(a.cells[i]).c_str());
      ert::scenario::Report one;
      one.cells = {a.cells[i], b.cells[i]};
      std::printf("%s", ert::scenario::to_table(one).c_str());
    }
    return 1;
  }

  if (a1 == "--check-scenario") {
    if (argc != 3) usage("--check-scenario wants one scenario file");
    const auto parsed = ert::scenario::parse_file(argv[2]);
    if (!parsed.ok) {
      std::fprintf(stderr, "scenariocat: %s\n",
                   parsed.message(argv[2]).c_str());
      return 1;
    }
    std::printf("%s", ert::scenario::serialize(parsed.scenario).c_str());
    return 0;
  }

  if (a1.rfind("--", 0) == 0) usage(("unknown option " + a1).c_str());
  if (argc != 2) usage();
  ert::scenario::Report report;
  if (!load_report(a1, &report)) return 1;
  std::printf("%s", ert::scenario::to_table(report).c_str());
  return 0;
}
