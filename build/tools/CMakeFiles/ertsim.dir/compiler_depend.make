# Empty compiler generated dependencies file for ertsim.
# This may be replaced when dependencies are built.
