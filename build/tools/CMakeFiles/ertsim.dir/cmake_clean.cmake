file(REMOVE_RECURSE
  "CMakeFiles/ertsim.dir/ertsim.cpp.o"
  "CMakeFiles/ertsim.dir/ertsim.cpp.o.d"
  "ertsim"
  "ertsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ertsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
