file(REMOVE_RECURSE
  "CMakeFiles/multi_substrate.dir/multi_substrate.cpp.o"
  "CMakeFiles/multi_substrate.dir/multi_substrate.cpp.o.d"
  "multi_substrate"
  "multi_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
