# Empty compiler generated dependencies file for multi_substrate.
# This may be replaced when dependencies are built.
