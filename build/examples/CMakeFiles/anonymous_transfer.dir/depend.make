# Empty dependencies file for anonymous_transfer.
# This may be replaced when dependencies are built.
