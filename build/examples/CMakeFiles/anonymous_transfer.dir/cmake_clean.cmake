file(REMOVE_RECURSE
  "CMakeFiles/anonymous_transfer.dir/anonymous_transfer.cpp.o"
  "CMakeFiles/anonymous_transfer.dir/anonymous_transfer.cpp.o.d"
  "anonymous_transfer"
  "anonymous_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
