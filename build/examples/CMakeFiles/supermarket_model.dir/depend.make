# Empty dependencies file for supermarket_model.
# This may be replaced when dependencies are built.
