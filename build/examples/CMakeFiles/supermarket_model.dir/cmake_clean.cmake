file(REMOVE_RECURSE
  "CMakeFiles/supermarket_model.dir/supermarket_model.cpp.o"
  "CMakeFiles/supermarket_model.dir/supermarket_model.cpp.o.d"
  "supermarket_model"
  "supermarket_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supermarket_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
