file(REMOVE_RECURSE
  "libert_chord.a"
)
