file(REMOVE_RECURSE
  "CMakeFiles/ert_chord.dir/overlay.cpp.o"
  "CMakeFiles/ert_chord.dir/overlay.cpp.o.d"
  "libert_chord.a"
  "libert_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
