# Empty compiler generated dependencies file for ert_chord.
# This may be replaced when dependencies are built.
