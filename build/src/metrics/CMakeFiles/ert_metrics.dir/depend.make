# Empty dependencies file for ert_metrics.
# This may be replaced when dependencies are built.
