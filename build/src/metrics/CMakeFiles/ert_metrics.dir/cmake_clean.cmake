file(REMOVE_RECURSE
  "CMakeFiles/ert_metrics.dir/metrics.cpp.o"
  "CMakeFiles/ert_metrics.dir/metrics.cpp.o.d"
  "libert_metrics.a"
  "libert_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
