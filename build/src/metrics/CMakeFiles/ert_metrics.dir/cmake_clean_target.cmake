file(REMOVE_RECURSE
  "libert_metrics.a"
)
