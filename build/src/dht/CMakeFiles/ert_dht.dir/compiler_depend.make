# Empty compiler generated dependencies file for ert_dht.
# This may be replaced when dependencies are built.
