
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/ring.cpp" "src/dht/CMakeFiles/ert_dht.dir/ring.cpp.o" "gcc" "src/dht/CMakeFiles/ert_dht.dir/ring.cpp.o.d"
  "/root/repo/src/dht/routing_entry.cpp" "src/dht/CMakeFiles/ert_dht.dir/routing_entry.cpp.o" "gcc" "src/dht/CMakeFiles/ert_dht.dir/routing_entry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
