file(REMOVE_RECURSE
  "libert_dht.a"
)
