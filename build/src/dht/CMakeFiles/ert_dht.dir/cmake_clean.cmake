file(REMOVE_RECURSE
  "CMakeFiles/ert_dht.dir/ring.cpp.o"
  "CMakeFiles/ert_dht.dir/ring.cpp.o.d"
  "CMakeFiles/ert_dht.dir/routing_entry.cpp.o"
  "CMakeFiles/ert_dht.dir/routing_entry.cpp.o.d"
  "libert_dht.a"
  "libert_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
