file(REMOVE_RECURSE
  "libert_pastry.a"
)
