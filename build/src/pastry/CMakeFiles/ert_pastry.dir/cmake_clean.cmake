file(REMOVE_RECURSE
  "CMakeFiles/ert_pastry.dir/overlay.cpp.o"
  "CMakeFiles/ert_pastry.dir/overlay.cpp.o.d"
  "libert_pastry.a"
  "libert_pastry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
