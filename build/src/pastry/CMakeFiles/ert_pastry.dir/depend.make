# Empty dependencies file for ert_pastry.
# This may be replaced when dependencies are built.
