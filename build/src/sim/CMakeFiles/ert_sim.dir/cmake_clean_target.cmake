file(REMOVE_RECURSE
  "libert_sim.a"
)
