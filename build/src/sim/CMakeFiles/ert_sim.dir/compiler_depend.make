# Empty compiler generated dependencies file for ert_sim.
# This may be replaced when dependencies are built.
