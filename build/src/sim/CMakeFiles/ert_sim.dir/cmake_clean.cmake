file(REMOVE_RECURSE
  "CMakeFiles/ert_sim.dir/simulator.cpp.o"
  "CMakeFiles/ert_sim.dir/simulator.cpp.o.d"
  "libert_sim.a"
  "libert_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
