file(REMOVE_RECURSE
  "CMakeFiles/ert_baselines.dir/virtual_servers.cpp.o"
  "CMakeFiles/ert_baselines.dir/virtual_servers.cpp.o.d"
  "libert_baselines.a"
  "libert_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
