file(REMOVE_RECURSE
  "libert_baselines.a"
)
