# Empty dependencies file for ert_baselines.
# This may be replaced when dependencies are built.
