file(REMOVE_RECURSE
  "libert_workload.a"
)
