file(REMOVE_RECURSE
  "CMakeFiles/ert_workload.dir/workload.cpp.o"
  "CMakeFiles/ert_workload.dir/workload.cpp.o.d"
  "libert_workload.a"
  "libert_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
