# Empty dependencies file for ert_workload.
# This may be replaced when dependencies are built.
