# Empty compiler generated dependencies file for ert_supermarket.
# This may be replaced when dependencies are built.
