file(REMOVE_RECURSE
  "libert_supermarket.a"
)
