file(REMOVE_RECURSE
  "CMakeFiles/ert_supermarket.dir/model.cpp.o"
  "CMakeFiles/ert_supermarket.dir/model.cpp.o.d"
  "libert_supermarket.a"
  "libert_supermarket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_supermarket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
