file(REMOVE_RECURSE
  "CMakeFiles/ert_can.dir/overlay.cpp.o"
  "CMakeFiles/ert_can.dir/overlay.cpp.o.d"
  "libert_can.a"
  "libert_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
