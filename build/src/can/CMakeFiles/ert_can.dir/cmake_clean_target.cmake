file(REMOVE_RECURSE
  "libert_can.a"
)
