
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/overlay.cpp" "src/can/CMakeFiles/ert_can.dir/overlay.cpp.o" "gcc" "src/can/CMakeFiles/ert_can.dir/overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ert_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/ert_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/ert/CMakeFiles/ert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ert_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
