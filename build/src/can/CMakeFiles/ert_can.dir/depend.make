# Empty dependencies file for ert_can.
# This may be replaced when dependencies are built.
