# Empty compiler generated dependencies file for ert_core.
# This may be replaced when dependencies are built.
