file(REMOVE_RECURSE
  "libert_core.a"
)
