file(REMOVE_RECURSE
  "CMakeFiles/ert_core.dir/adaptation.cpp.o"
  "CMakeFiles/ert_core.dir/adaptation.cpp.o.d"
  "CMakeFiles/ert_core.dir/capacity.cpp.o"
  "CMakeFiles/ert_core.dir/capacity.cpp.o.d"
  "CMakeFiles/ert_core.dir/forwarding.cpp.o"
  "CMakeFiles/ert_core.dir/forwarding.cpp.o.d"
  "CMakeFiles/ert_core.dir/indegree.cpp.o"
  "CMakeFiles/ert_core.dir/indegree.cpp.o.d"
  "CMakeFiles/ert_core.dir/load_tracker.cpp.o"
  "CMakeFiles/ert_core.dir/load_tracker.cpp.o.d"
  "libert_core.a"
  "libert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
