
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ert/adaptation.cpp" "src/ert/CMakeFiles/ert_core.dir/adaptation.cpp.o" "gcc" "src/ert/CMakeFiles/ert_core.dir/adaptation.cpp.o.d"
  "/root/repo/src/ert/capacity.cpp" "src/ert/CMakeFiles/ert_core.dir/capacity.cpp.o" "gcc" "src/ert/CMakeFiles/ert_core.dir/capacity.cpp.o.d"
  "/root/repo/src/ert/forwarding.cpp" "src/ert/CMakeFiles/ert_core.dir/forwarding.cpp.o" "gcc" "src/ert/CMakeFiles/ert_core.dir/forwarding.cpp.o.d"
  "/root/repo/src/ert/indegree.cpp" "src/ert/CMakeFiles/ert_core.dir/indegree.cpp.o" "gcc" "src/ert/CMakeFiles/ert_core.dir/indegree.cpp.o.d"
  "/root/repo/src/ert/load_tracker.cpp" "src/ert/CMakeFiles/ert_core.dir/load_tracker.cpp.o" "gcc" "src/ert/CMakeFiles/ert_core.dir/load_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ert_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/ert_dht.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
