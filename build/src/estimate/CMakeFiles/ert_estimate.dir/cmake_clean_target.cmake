file(REMOVE_RECURSE
  "libert_estimate.a"
)
