file(REMOVE_RECURSE
  "CMakeFiles/ert_estimate.dir/size_estimator.cpp.o"
  "CMakeFiles/ert_estimate.dir/size_estimator.cpp.o.d"
  "libert_estimate.a"
  "libert_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
