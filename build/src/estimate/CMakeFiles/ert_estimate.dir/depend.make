# Empty dependencies file for ert_estimate.
# This may be replaced when dependencies are built.
