# Empty dependencies file for ert_net.
# This may be replaced when dependencies are built.
