file(REMOVE_RECURSE
  "CMakeFiles/ert_net.dir/landmark.cpp.o"
  "CMakeFiles/ert_net.dir/landmark.cpp.o.d"
  "CMakeFiles/ert_net.dir/proximity.cpp.o"
  "CMakeFiles/ert_net.dir/proximity.cpp.o.d"
  "libert_net.a"
  "libert_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
