file(REMOVE_RECURSE
  "libert_net.a"
)
