file(REMOVE_RECURSE
  "libert_cycloid.a"
)
