# Empty compiler generated dependencies file for ert_cycloid.
# This may be replaced when dependencies are built.
