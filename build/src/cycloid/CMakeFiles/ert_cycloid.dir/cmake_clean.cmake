file(REMOVE_RECURSE
  "CMakeFiles/ert_cycloid.dir/id.cpp.o"
  "CMakeFiles/ert_cycloid.dir/id.cpp.o.d"
  "CMakeFiles/ert_cycloid.dir/overlay.cpp.o"
  "CMakeFiles/ert_cycloid.dir/overlay.cpp.o.d"
  "libert_cycloid.a"
  "libert_cycloid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_cycloid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
