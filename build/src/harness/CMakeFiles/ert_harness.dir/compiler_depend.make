# Empty compiler generated dependencies file for ert_harness.
# This may be replaced when dependencies are built.
