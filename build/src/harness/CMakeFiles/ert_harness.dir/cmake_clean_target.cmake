file(REMOVE_RECURSE
  "libert_harness.a"
)
