file(REMOVE_RECURSE
  "CMakeFiles/ert_harness.dir/experiment.cpp.o"
  "CMakeFiles/ert_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/ert_harness.dir/substrate.cpp.o"
  "CMakeFiles/ert_harness.dir/substrate.cpp.o.d"
  "libert_harness.a"
  "libert_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
