# Empty compiler generated dependencies file for ert_common.
# This may be replaced when dependencies are built.
