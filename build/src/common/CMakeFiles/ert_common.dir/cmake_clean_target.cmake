file(REMOVE_RECURSE
  "libert_common.a"
)
