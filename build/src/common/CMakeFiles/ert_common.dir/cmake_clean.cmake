file(REMOVE_RECURSE
  "CMakeFiles/ert_common.dir/log.cpp.o"
  "CMakeFiles/ert_common.dir/log.cpp.o.d"
  "CMakeFiles/ert_common.dir/rng.cpp.o"
  "CMakeFiles/ert_common.dir/rng.cpp.o.d"
  "CMakeFiles/ert_common.dir/stats.cpp.o"
  "CMakeFiles/ert_common.dir/stats.cpp.o.d"
  "CMakeFiles/ert_common.dir/table_printer.cpp.o"
  "CMakeFiles/ert_common.dir/table_printer.cpp.o.d"
  "libert_common.a"
  "libert_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ert_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
