file(REMOVE_RECURSE
  "CMakeFiles/churn_fuzz_test.dir/churn_fuzz_test.cpp.o"
  "CMakeFiles/churn_fuzz_test.dir/churn_fuzz_test.cpp.o.d"
  "churn_fuzz_test"
  "churn_fuzz_test.pdb"
  "churn_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
