# Empty dependencies file for churn_fuzz_test.
# This may be replaced when dependencies are built.
