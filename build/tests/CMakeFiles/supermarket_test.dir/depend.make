# Empty dependencies file for supermarket_test.
# This may be replaced when dependencies are built.
