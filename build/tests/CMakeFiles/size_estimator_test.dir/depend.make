# Empty dependencies file for size_estimator_test.
# This may be replaced when dependencies are built.
