file(REMOVE_RECURSE
  "CMakeFiles/size_estimator_test.dir/size_estimator_test.cpp.o"
  "CMakeFiles/size_estimator_test.dir/size_estimator_test.cpp.o.d"
  "size_estimator_test"
  "size_estimator_test.pdb"
  "size_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
