file(REMOVE_RECURSE
  "CMakeFiles/ring_fuzz_test.dir/ring_fuzz_test.cpp.o"
  "CMakeFiles/ring_fuzz_test.dir/ring_fuzz_test.cpp.o.d"
  "ring_fuzz_test"
  "ring_fuzz_test.pdb"
  "ring_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
