file(REMOVE_RECURSE
  "CMakeFiles/routing_entry_test.dir/routing_entry_test.cpp.o"
  "CMakeFiles/routing_entry_test.dir/routing_entry_test.cpp.o.d"
  "routing_entry_test"
  "routing_entry_test.pdb"
  "routing_entry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_entry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
