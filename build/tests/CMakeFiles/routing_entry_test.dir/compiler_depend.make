# Empty compiler generated dependencies file for routing_entry_test.
# This may be replaced when dependencies are built.
