# Empty dependencies file for cycloid_id_test.
# This may be replaced when dependencies are built.
