file(REMOVE_RECURSE
  "CMakeFiles/cycloid_id_test.dir/cycloid_id_test.cpp.o"
  "CMakeFiles/cycloid_id_test.dir/cycloid_id_test.cpp.o.d"
  "cycloid_id_test"
  "cycloid_id_test.pdb"
  "cycloid_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycloid_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
