file(REMOVE_RECURSE
  "CMakeFiles/cycloid_overlay_test.dir/cycloid_overlay_test.cpp.o"
  "CMakeFiles/cycloid_overlay_test.dir/cycloid_overlay_test.cpp.o.d"
  "cycloid_overlay_test"
  "cycloid_overlay_test.pdb"
  "cycloid_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycloid_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
