# Empty compiler generated dependencies file for cycloid_overlay_test.
# This may be replaced when dependencies are built.
