file(REMOVE_RECURSE
  "CMakeFiles/indegree_test.dir/indegree_test.cpp.o"
  "CMakeFiles/indegree_test.dir/indegree_test.cpp.o.d"
  "indegree_test"
  "indegree_test.pdb"
  "indegree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indegree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
