# Empty dependencies file for indegree_test.
# This may be replaced when dependencies are built.
