file(REMOVE_RECURSE
  "CMakeFiles/virtual_servers_test.dir/virtual_servers_test.cpp.o"
  "CMakeFiles/virtual_servers_test.dir/virtual_servers_test.cpp.o.d"
  "virtual_servers_test"
  "virtual_servers_test.pdb"
  "virtual_servers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_servers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
