# Empty compiler generated dependencies file for virtual_servers_test.
# This may be replaced when dependencies are built.
