# Empty compiler generated dependencies file for pastry_test.
# This may be replaced when dependencies are built.
