file(REMOVE_RECURSE
  "CMakeFiles/cycloid_routing_test.dir/cycloid_routing_test.cpp.o"
  "CMakeFiles/cycloid_routing_test.dir/cycloid_routing_test.cpp.o.d"
  "cycloid_routing_test"
  "cycloid_routing_test.pdb"
  "cycloid_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycloid_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
