# Empty compiler generated dependencies file for cycloid_routing_test.
# This may be replaced when dependencies are built.
