# Empty compiler generated dependencies file for bench_timeseries.
# This may be replaced when dependencies are built.
