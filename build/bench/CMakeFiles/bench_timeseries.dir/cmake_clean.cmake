file(REMOVE_RECURSE
  "CMakeFiles/bench_timeseries.dir/bench_timeseries.cpp.o"
  "CMakeFiles/bench_timeseries.dir/bench_timeseries.cpp.o.d"
  "bench_timeseries"
  "bench_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
