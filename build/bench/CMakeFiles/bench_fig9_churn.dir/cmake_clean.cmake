file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_churn.dir/bench_fig9_churn.cpp.o"
  "CMakeFiles/bench_fig9_churn.dir/bench_fig9_churn.cpp.o.d"
  "bench_fig9_churn"
  "bench_fig9_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
