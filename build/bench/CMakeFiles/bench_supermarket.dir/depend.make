# Empty dependencies file for bench_supermarket.
# This may be replaced when dependencies are built.
