# Empty dependencies file for bench_fig8_skew.
# This may be replaced when dependencies are built.
