file(REMOVE_RECURSE
  "CMakeFiles/bench_popularity.dir/bench_popularity.cpp.o"
  "CMakeFiles/bench_popularity.dir/bench_popularity.cpp.o.d"
  "bench_popularity"
  "bench_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
