# Empty dependencies file for bench_popularity.
# This may be replaced when dependencies are built.
