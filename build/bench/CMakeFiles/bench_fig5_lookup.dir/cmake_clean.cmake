file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lookup.dir/bench_fig5_lookup.cpp.o"
  "CMakeFiles/bench_fig5_lookup.dir/bench_fig5_lookup.cpp.o.d"
  "bench_fig5_lookup"
  "bench_fig5_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
