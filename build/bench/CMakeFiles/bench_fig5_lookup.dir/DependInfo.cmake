
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_lookup.cpp" "bench/CMakeFiles/bench_fig5_lookup.dir/bench_fig5_lookup.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_lookup.dir/bench_fig5_lookup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ert_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/supermarket/CMakeFiles/ert_supermarket.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ert_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ert_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ert_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cycloid/CMakeFiles/ert_cycloid.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/ert_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/pastry/CMakeFiles/ert_pastry.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/ert_can.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ert/CMakeFiles/ert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/ert_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ert_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
