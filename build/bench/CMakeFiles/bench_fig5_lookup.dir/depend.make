# Empty dependencies file for bench_fig5_lookup.
# This may be replaced when dependencies are built.
