# Empty dependencies file for bench_fig7_degrees.
# This may be replaced when dependencies are built.
