file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_churn_lookup.dir/bench_fig10_churn_lookup.cpp.o"
  "CMakeFiles/bench_fig10_churn_lookup.dir/bench_fig10_churn_lookup.cpp.o.d"
  "bench_fig10_churn_lookup"
  "bench_fig10_churn_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_churn_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
