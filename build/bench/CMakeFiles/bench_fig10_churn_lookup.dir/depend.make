# Empty dependencies file for bench_fig10_churn_lookup.
# This may be replaced when dependencies are built.
