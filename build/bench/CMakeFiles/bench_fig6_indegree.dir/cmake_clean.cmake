file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_indegree.dir/bench_fig6_indegree.cpp.o"
  "CMakeFiles/bench_fig6_indegree.dir/bench_fig6_indegree.cpp.o.d"
  "bench_fig6_indegree"
  "bench_fig6_indegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_indegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
