# Empty compiler generated dependencies file for bench_fig6_indegree.
# This may be replaced when dependencies are built.
