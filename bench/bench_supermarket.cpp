// Theorem 4.1 / Lemma A.1: the supermarket model behind the forwarding
// analysis (Sec. 4.2).
//
//  (1) Classic power-of-b choices: expected time in system at the fixed
//      point for b = 1, 2, 3 over an arrival-rate sweep — the exponential
//      improvement of two-way choice over random placement.
//  (2) Discrete-event simulation of the threshold supermarket (the paper's
//      QFM analogue) confirming the same gap with actual queues.
//  (3) Lemma A.1's closed-form fixed point vs integrating the paper's
//      differential equations (3)/(4) — they must agree.
#include <cmath>
#include <cstdio>

#include "common/table_printer.h"
#include "supermarket/model.h"

int main() {
  using namespace ert;
  using namespace ert::supermarket;

  std::printf("Theorem 4.1 — randomized forwarding as a supermarket model\n");

  std::printf("\n(1) fixed-point expected time in system, classic model\n");
  TablePrinter t1({"lambda", "b=1 (M/M/1)", "b=2", "b=3", "gain b=2 vs b=1"});
  for (double lam : {0.50, 0.70, 0.90, 0.95, 0.99}) {
    const double t_1 = classic_expected_time(lam, 1);
    const double t_2 = classic_expected_time(lam, 2);
    const double t_3 = classic_expected_time(lam, 3);
    t1.add_row({fmt_num(lam, 2), fmt_num(t_1, 3), fmt_num(t_2, 3),
                fmt_num(t_3, 3), fmt_num(t_1 / t_2, 2) + "x"});
  }
  t1.print();

  std::printf(
      "\n(2) simulated mean time in system (500 servers, threshold T=1)\n");
  TablePrinter t2({"lambda", "b=1 sim", "b=2 sim", "b=3 sim", "b=2 theory"});
  for (double lam : {0.50, 0.70, 0.90, 0.95}) {
    QueueSimParams q;
    q.lambda = lam;
    q.arrivals = 150000;
    double sim_b[4] = {0, 0, 0, 0};
    for (int b = 1; b <= 3; ++b) {
      q.b = b;
      q.seed = 7 + b;
      sim_b[b] = simulate_supermarket(q).mean_system_time;
    }
    t2.add_row({fmt_num(lam, 2), fmt_num(sim_b[1], 3), fmt_num(sim_b[2], 3),
                fmt_num(sim_b[3], 3),
                fmt_num(classic_expected_time(lam, 2), 3)});
  }
  t2.print();

  std::printf(
      "\n(2b) memory-based dispatch (Sec. 4.1 / [22]): the remembered\n"
      "     least-loaded server replaces one fresh random draw\n");
  TablePrinter tm({"lambda", "b=1", "b=2 fresh", "b=2 w/memory",
                   "probes/arrival (memory)"});
  for (double lam : {0.90, 0.95}) {
    QueueSimParams q;
    q.lambda = lam;
    q.arrivals = 150000;
    q.b = 1;
    q.seed = 31;
    const double t1 = simulate_supermarket(q).mean_system_time;
    q.b = 2;
    const double t2 = simulate_supermarket(q).mean_system_time;
    q.use_memory = true;
    const auto rm = simulate_supermarket(q);
    tm.add_row({fmt_num(lam, 2), fmt_num(t1, 3), fmt_num(t2, 3),
                fmt_num(rm.mean_system_time, 3),
                fmt_num(rm.probes_per_arrival, 2)});
  }
  tm.print();

  std::printf(
      "\n(3) threshold model: Lemma A.1 fixed point vs ODE integration\n");
  TablePrinter t3({"lambda", "b", "E[N] closed form", "E[N] ODE", "|diff|"});
  for (double lam : {0.70, 0.90}) {
    for (int b : {1, 2, 3}) {
      ThresholdModel m;
      m.lambda = lam;
      m.b = b;
      m.threshold = 1;
      m.capacity = 1;  // spare-capacity coordinates: 1 = idle server
      m.tail = 60;
      const auto fp = lemma_a1_fixed_point(m);
      const auto ode = integrate_threshold_ode(m, 400.0, 0.02);
      const double en_fp = expected_customers(fp);
      const double en_ode = expected_customers(ode);
      t3.add_row({fmt_num(lam, 2), std::to_string(b), fmt_num(en_fp, 4),
                  fmt_num(en_ode, 4), fmt_num(std::fabs(en_fp - en_ode), 4)});
    }
  }
  t3.print();

  std::printf(
      "\nShape check: the b=1 column explodes as lambda -> 1 while b >= 2\n"
      "stays small — the exponential improvement Theorem 4.1 transfers to\n"
      "ERT's two-way query forwarding. Poll sizes beyond 2 add little.\n");
  return 0;
}
