// Figure 4: effectiveness of congestion controls.
//  (a) 99th percentile maximum congestion vs number of lookups
//  (b) 99th percentile congestion of the minimum-capacity node
//  (c) 99th percentile query-distribution share
// Paper shape: NS above Base on (a) (capacity bias overloads favorites);
// VS and ERT/AF well below Base, with ERT/AF best at high load; ERT/A
// strong alone, ERT/F effective only at light load; NS worst on share.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  print_header("Figure 4", "congestion control effectiveness vs query load");

  ert::TablePrinter a(protocol_headers("lookups"));
  ert::TablePrinter b(protocol_headers("lookups"));
  ert::TablePrinter c(protocol_headers("lookups"));
  for (std::size_t lookups = 1000; lookups <= 5000; lookups += 1000) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = lookups;
    std::vector<double> va, vb, vc;
    for (auto proto : ert::harness::kAllProtocols) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      va.push_back(r.p99_max_congestion);
      vb.push_back(r.min_cap_node_congestion);
      vc.push_back(r.p99_share);
    }
    a.add_row(static_cast<double>(lookups), va);
    b.add_row(static_cast<double>(lookups), vb);
    c.add_row(static_cast<double>(lookups), vc);
  }
  std::printf("\n(a) 99th percentile maximum congestion\n");
  a.print();
  std::printf("\n(b) congestion of the minimum-capacity node (peak)\n");
  b.print();
  std::printf("\n(c) 99th percentile share\n");
  c.print();
  return 0;
}
