// Pre-refactor forwarding hot path, preserved verbatim for bench_route_hop.
//
// This is the topology-aware forwarding implementation (and the allocating
// index sampler it used) exactly as it stood before the allocation-free
// fast path landed: fresh vectors for the usable pool, the polled set, the
// probe results and the light list on every call; an unordered_set in the
// sparse sampling branch; the overloaded set A as a plain vector scanned
// with std::find; and the probe behind a std::function. bench_route_hop
// runs identical workloads through this and through the scratch-based
// implementation in ert/forwarding.h, checks the two pick bit-identical
// hops, and reports the speedup.
//
// Kept out of src/ on purpose: production code must not grow a second
// forwarding implementation, and this copy only changes when the bench's
// baseline is deliberately re-pinned.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "cycloid/overlay.h"
#include "dht/ring.h"
#include "dht/routing_entry.h"
#include "dht/types.h"
#include "ert/forwarding.h"

namespace ertbench::refroute {

using ert::Rng;
using ert::core::ForwardDecision;
using ert::core::ProbeFn;
using ert::core::ProbeResult;
using ert::core::TopoForwardOptions;

/// The seed Rng::sample_indices: allocates its result, an index array in
/// the dense branch, and a hash set in the sparse branch. Consumes the
/// same draw sequence as the current scratch-based sampler.
inline std::vector<std::size_t> sample_indices(Rng& rng, std::size_t n,
                                               std::size_t k) {
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + rng.index(n - i)]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<std::size_t> seen;
  while (out.size() < k) {
    const std::size_t v = rng.index(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// Picks `k` distinct random elements from `v` (order random).
inline std::vector<ert::dht::NodeIndex> pick_random(
    const std::vector<ert::dht::NodeIndex>& v, std::size_t k, Rng& rng) {
  std::vector<std::size_t> idx = sample_indices(rng, v.size(), k);
  std::vector<ert::dht::NodeIndex> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(v[i]);
  return out;
}

/// Algorithm 4 as shipped before the fast path: one probe std::function
/// dispatch per poll, four temporary vectors per call.
inline ForwardDecision forward_topology_aware(
    ert::dht::RoutingEntry& entry,
    const std::vector<ert::dht::NodeIndex>& candidates,
    const std::vector<ert::dht::NodeIndex>& overloaded,
    const TopoForwardOptions& opts, const ProbeFn& probe, Rng& rng) {
  using ert::dht::NodeIndex;
  ForwardDecision d;
  if (candidates.empty()) return d;

  // Step 3 of Algorithm 4: exclude candidates known to be overloaded, unless
  // that leaves us with nothing to route through.
  std::vector<NodeIndex> usable;
  if (opts.track_overloaded && !overloaded.empty()) {
    usable.reserve(candidates.size());
    for (NodeIndex n : candidates) {
      if (std::find(overloaded.begin(), overloaded.end(), n) ==
          overloaded.end())
        usable.push_back(n);
    }
  }
  const std::vector<NodeIndex>& pool = usable.empty() ? candidates : usable;

  // Steps 4-8: with a remembered node, draw only (b - 1) fresh choices;
  // otherwise draw b.
  std::vector<NodeIndex> polled;
  const NodeIndex remembered = entry.memory();
  const bool have_memory =
      opts.use_memory && remembered != ert::dht::kNoNode &&
      std::find(pool.begin(), pool.end(), remembered) != pool.end();
  if (have_memory) {
    polled.push_back(remembered);
    // Avoid drawing the remembered node twice.
    std::vector<NodeIndex> rest;
    rest.reserve(pool.size());
    for (NodeIndex n : pool)
      if (n != remembered) rest.push_back(n);
    const auto extra = pick_random(
        rest, static_cast<std::size_t>(std::max(0, opts.poll_size - 1)), rng);
    polled.insert(polled.end(), extra.begin(), extra.end());
  } else {
    polled = pick_random(pool, static_cast<std::size_t>(opts.poll_size), rng);
  }
  assert(!polled.empty());

  // Step 10: probe the polled candidates.
  std::vector<ProbeResult> results(polled.size());
  for (std::size_t i = 0; i < polled.size(); ++i) {
    results[i] = probe(polled[i]);
    ++d.probes;
  }

  std::vector<std::size_t> light;
  for (std::size_t i = 0; i < polled.size(); ++i)
    if (!results[i].heavy) light.push_back(i);

  std::size_t chosen;
  if (light.empty()) {
    // Steps 11-13: all heavy -> remember them in A, take the least loaded.
    chosen = 0;
    for (std::size_t i = 1; i < polled.size(); ++i)
      if (results[i].load < results[chosen].load) chosen = i;
    if (opts.track_overloaded)
      d.newly_overloaded.assign(polled.begin(), polled.end());
  } else if (light.size() < polled.size()) {
    // Steps 15-17: mixed -> record the heavy ones, choose the best light one.
    chosen = light.front();
    for (std::size_t i : light) {
      if (results[i].logical_distance < results[chosen].logical_distance ||
          (results[i].logical_distance == results[chosen].logical_distance &&
           results[i].physical_distance < results[chosen].physical_distance))
        chosen = i;
    }
    if (opts.track_overloaded) {
      for (std::size_t i = 0; i < polled.size(); ++i)
        if (results[i].heavy) d.newly_overloaded.push_back(polled[i]);
    }
  } else {
    // Steps 19-22: all light -> logically closest to the target, physical
    // proximity breaks ties.
    chosen = 0;
    for (std::size_t i = 1; i < polled.size(); ++i) {
      if (results[i].logical_distance < results[chosen].logical_distance ||
          (results[i].logical_distance == results[chosen].logical_distance &&
           results[i].physical_distance < results[chosen].physical_distance))
        chosen = i;
    }
  }
  d.next = polled[chosen];

  // Memory update [22]: after the chosen node takes one more unit of load,
  // remember the least-loaded of the polled set for the next dispatch.
  if (opts.use_memory) {
    std::size_t least = 0;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const double load_i =
          results[i].load + (i == chosen ? results[i].unit_load : 0.0);
      const double load_least =
          results[least].load +
          (least == chosen ? results[least].unit_load : 0.0);
      if (load_i < load_least) least = i;
    }
    entry.remember(polled[least]);
  }
  return d;
}

/// The seed Cycloid route_step: identical decisions to the current one,
/// but with the seed implementation's allocation profile — a fresh vector
/// per phase, candidate lists copied by value into the sort helper, and
/// std::stable_sort (whose libstdc++ implementation allocates a merge
/// buffer) instead of the in-scratch insertion sort. Rewritten against the
/// Overlay's public accessors only where the original touched private
/// members directly; control flow and comparators are verbatim.
inline ert::cycloid::RouteStep route_step(const ert::cycloid::Overlay& o,
                                          ert::dht::NodeIndex cur,
                                          std::uint64_t key,
                                          ert::cycloid::RouteCtx& ctx) {
  using namespace ert::cycloid;
  using ert::dht::NodeIndex;
  const auto lv = [&](NodeIndex i) {
    return o.space().to_linear(o.node(i).id);
  };
  RouteStep step;
  const NodeIndex owner = o.responsible(key);
  assert(owner != ert::dht::kNoNode);
  if (owner == cur) {
    step.arrived = true;
    return step;
  }
  const auto& cn = o.node(cur);
  const auto& on = o.node(owner);
  assert(cn.alive);
  const CycloidId cid = cn.id;
  const CycloidId oid = on.id;
  const int h = cid.a == oid.a ? -1 : ert::msb_diff(cid.a, oid.a);

  if (ctx.phase == RouteCtx::Phase::kAscend) {
    if (h >= 0 && cid.k < h) {
      for (std::size_t slot : {kInsideLeafEntry, kOutsideLeafEntry}) {
        std::vector<NodeIndex> ups;
        for (const ert::dht::NodeIndex32 c :
             cn.table.entry(slot).candidates(o.arena().cands))
          if (o.node(c).id.k > cid.k) ups.push_back(c);
        if (ups.empty()) continue;
        std::stable_sort(ups.begin(), ups.end(),
                         [&](NodeIndex x, NodeIndex y) {
                           return std::abs(o.node(x).id.k - h) <
                                  std::abs(o.node(y).id.k - h);
                         });
        step.entry_index = slot;
        step.candidates = std::move(ups);
        return step;
      }
    }
    ctx.phase = RouteCtx::Phase::kDescend;
  }

  if (ctx.phase == RouteCtx::Phase::kDescend) {
    auto by_cycle_distance = [&](std::vector<NodeIndex> cands) {
      std::stable_sort(cands.begin(), cands.end(),
                       [&](NodeIndex x, NodeIndex y) {
                         return o.space().cycle_distance(o.node(x).id.a,
                                                         oid.a) <
                                o.space().cycle_distance(o.node(y).id.a,
                                                         oid.a);
                       });
      return cands;
    };
    if (h >= 0 && cid.k >= 1 && cid.k == h &&
        !cn.table.entry(kCubicalEntry).empty()) {
      step.entry_index = kCubicalEntry;
      const auto src = cn.table.entry(kCubicalEntry).candidates(o.arena().cands);
      step.candidates =
          by_cycle_distance(std::vector<NodeIndex>(src.begin(), src.end()));
      return step;
    }
    if (h >= 0 && cid.k >= 1 && cid.k > h &&
        !cn.table.entry(kCyclicEntry).empty()) {
      step.entry_index = kCyclicEntry;
      const auto src = cn.table.entry(kCyclicEntry).candidates(o.arena().cands);
      step.candidates =
          by_cycle_distance(std::vector<NodeIndex>(src.begin(), src.end()));
      return step;
    }
    ctx.phase = RouteCtx::Phase::kWalk;
  }

  const std::uint64_t total = o.space().size();
  const std::size_t my_pos =
      o.directory().position_distance(lv(cur), lv(owner));
  const std::uint64_t my_iddist =
      ert::dht::ring_distance(lv(cur), lv(owner), total);
  auto progress_rank = [&](NodeIndex c) -> std::int64_t {
    if (o.node(c).alive) {
      const std::size_t pos =
          o.directory().position_distance(lv(c), lv(owner));
      if (pos >= my_pos) return -1;
      return static_cast<std::int64_t>(pos);
    }
    const std::uint64_t idd = ert::dht::ring_distance(lv(c), lv(owner), total);
    if (idd >= my_iddist) return -1;
    return static_cast<std::int64_t>(my_pos);  // dead: rank after live ones
  };
  const bool in_owner_cycle = cid.a == oid.a;
  auto usable = [&](NodeIndex c) {
    return !in_owner_cycle || o.node(c).id.a == oid.a;
  };
  for (int relax = 0; relax < 2; ++relax) {
    std::size_t best_slot = kNoEntry;
    std::int64_t best_rank = -1;
    for (std::size_t slot = 0; slot < kNumEntries; ++slot) {
      for (const ert::dht::NodeIndex32 c :
           cn.table.entry(slot).candidates(o.arena().cands)) {
        if (relax == 0 && !usable(c)) continue;
        const std::int64_t r = progress_rank(c);
        if (r >= 0 && (best_rank < 0 || r < best_rank)) {
          best_rank = r;
          best_slot = slot;
        }
      }
    }
    if (best_slot != kNoEntry) {
      std::vector<std::pair<std::int64_t, NodeIndex>> ranked;
      for (const ert::dht::NodeIndex32 c :
           cn.table.entry(best_slot).candidates(o.arena().cands)) {
        if (relax == 0 && !usable(c)) continue;
        const std::int64_t r = progress_rank(c);
        if (r >= 0) ranked.emplace_back(r, c);
      }
      std::stable_sort(ranked.begin(), ranked.end());
      step.entry_index = best_slot;
      step.candidates.reserve(ranked.size());
      for (const auto& [r, c] : ranked) step.candidates.push_back(c);
      return step;
    }
  }
  const std::uint64_t next_id =
      o.directory().step_toward(lv(cur), lv(owner));
  const auto next = o.directory().owner_of(next_id);
  assert(next.has_value());
  step.entry_index = kNoEntry;
  step.candidates = {*next};
  return step;
}

}  // namespace ertbench::refroute
