// Hop-loop microbench: allocation-free fast path vs the pre-refactor one.
//
//   bench_route_hop [output.json]     (default BENCH_route_hop.json)
//
// Drives the schedule-route-forward workload — pick a source and key, route
// hop by hop, run Algorithm 4 at every multi-candidate hop — through two
// identically seeded Cycloid overlays:
//
//   fast        scratch-based route_step + templated forward_topology_aware
//               (ert/forwarding.h): no per-hop heap traffic, sorted
//               small-buffer A set, concrete probe callable.
//   reference   the route_step and forwarding implementations as they
//               shipped before the fast path (reference_routing.h): fresh
//               vectors and stable_sort merge buffers per hop, std::find
//               over a vector A set, std::function probe.
//
// Both consume the identical Rng draw sequence, so their hop streams must
// be bit-identical; the bench checksums every hop and aborts on mismatch,
// making it an equivalence check as well as a stopwatch. A scale section
// runs the fast loop on an n = 65536 overlay to smoke-test large networks.
//
// ERT_BENCH_SMOKE=1 shrinks sizes for CI. Times are best of three
// repetitions (one in smoke mode).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cycloid/overlay.h"
#include "dht/route_scratch.h"
#include "ert/forwarding.h"
#include "json_writer.h"
#include "reference_routing.h"

namespace {

using ert::Rng;
using ert::dht::NodeIndex;

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

/// Smallest Cycloid dimension whose id space holds `ids_needed` ids
/// (mirrors the harness's fit_dimension).
int fit_dimension(std::size_t ids_needed) {
  for (int d = 3; d < 25; ++d)
    if (static_cast<std::size_t>(d) << d >= ids_needed) return d;
  return 25;
}

ert::cycloid::Overlay build_overlay(std::size_t n, std::uint64_t seed) {
  ert::cycloid::OverlayOptions opts;
  opts.dimension = fit_dimension(2 * n);
  // Multi-candidate cyclic/leaf entries so the forwarding policy has real
  // work at most hops (the engine's elastic tables reach similar widths).
  opts.base_fanout = 3;
  ert::cycloid::Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  return o;
}

/// Deterministic synthetic load: both loops must see identical probe
/// results without sharing state. Depends on the probing node `from` the
/// way the engine's probe did (physical distance is measured from the
/// current hop).
ert::core::ProbeResult synth_probe(NodeIndex n, NodeIndex from,
                                   std::uint64_t salt) {
  ert::core::ProbeResult r;
  const std::uint64_t h =
      (static_cast<std::uint64_t>(n) * 2654435761u) ^ (salt * 40503u);
  r.load = static_cast<double>(h % 89) / 16.0;
  r.heavy = (h & 7u) == 0;  // ~12% heavy
  r.logical_distance = (h >> 8) % 4096;
  r.physical_distance =
      static_cast<double>(((h >> 4) ^ static_cast<std::uint64_t>(from)) % 31);
  r.unit_load = 0.25;
  return r;
}

/// Folds a hop into the running checksum (order-sensitive).
void fold(std::uint64_t& sum, NodeIndex next, int probes) {
  sum = sum * 1099511628211ull + static_cast<std::uint64_t>(next) * 31u +
        static_cast<std::uint64_t>(probes);
}

/// The pre-refactor hop loop: legacy route_step (fresh candidate vector per
/// hop), vector A set with linear dedup, std::function probe constructed
/// per forwarding call — exactly what the engine did before this PR.
struct ReferenceLoop {
  ert::cycloid::Overlay o;
  Rng rng;
  std::uint64_t checksum = 0;
  std::uint64_t queries = 0;

  ReferenceLoop(std::size_t n, std::uint64_t build_seed, std::uint64_t run_seed)
      : o(build_overlay(n, build_seed)), rng(run_seed) {}

  std::size_t run(std::size_t lookups) {
    ert::core::TopoForwardOptions opts;
    std::size_t hops = 0;
    std::vector<NodeIndex> overloaded;
    for (std::size_t q = 0; q < lookups; ++q) {
      const std::uint64_t salt = ++queries;
      NodeIndex cur = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.space().size();
      ert::cycloid::RouteCtx ctx;
      overloaded.clear();
      for (int guard = 0; guard < 256; ++guard) {
        const ert::cycloid::RouteStep step =
            ertbench::refroute::route_step(o, cur, key, ctx);
        if (step.arrived) break;
        NodeIndex next = step.candidates.front();
        int probes = 0;
        if (step.entry_index != ert::cycloid::kNoEntry &&
            step.candidates.size() > 1) {
          // The engine's probe closed over the engine, the query, and the
          // current hop — past std::function's inline buffer, so the old
          // loop paid a heap allocation plus type-erased dispatch per hop.
          const ert::core::ProbeFn probe = [this, salt, cur,
                                            key](NodeIndex n) {
            ert::core::ProbeResult r = synth_probe(n, cur, salt);
            r.logical_distance = o.logical_distance_to_key(n, key);
            return r;
          };
          auto& entry = o.mutable_node(cur).table.entry(step.entry_index);
          const auto d = ertbench::refroute::forward_topology_aware(
              entry, step.candidates, overloaded, opts, probe, rng);
          next = d.next;
          probes = d.probes;
          for (NodeIndex ov : d.newly_overloaded) {
            if (overloaded.size() < ert::core::kOverloadedSetCap &&
                std::find(overloaded.begin(), overloaded.end(), ov) ==
                    overloaded.end())
              overloaded.push_back(ov);
          }
        }
        fold(checksum, next, probes);
        cur = next;
        ++hops;
      }
    }
    return hops;
  }
};

/// The allocation-free hop loop this PR introduces: identical decisions,
/// zero steady-state heap traffic.
struct FastLoop {
  ert::cycloid::Overlay o;
  Rng rng;
  ert::dht::RouteScratch route_scratch;
  ert::core::ForwardScratch fwd_scratch;
  ert::core::OverloadedSet overloaded;
  std::uint64_t checksum = 0;
  std::uint64_t queries = 0;

  FastLoop(std::size_t n, std::uint64_t build_seed, std::uint64_t run_seed)
      : o(build_overlay(n, build_seed)), rng(run_seed) {}

  std::size_t run(std::size_t lookups) {
    ert::core::TopoForwardOptions opts;
    std::size_t hops = 0;
    for (std::size_t q = 0; q < lookups; ++q) {
      const std::uint64_t salt = ++queries;
      NodeIndex cur = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.space().size();
      ert::cycloid::RouteCtx ctx;
      overloaded.clear();
      for (int guard = 0; guard < 256; ++guard) {
        const ert::dht::RouteStepInfo step =
            o.route_step(cur, key, ctx, route_scratch);
        if (step.arrived) break;
        const auto& cands = route_scratch.candidates;
        NodeIndex next = cands.front();
        int probes = 0;
        if (step.entry_index != ert::cycloid::kNoEntry && cands.size() > 1) {
          // Same closure as the reference probe, but invoked directly as a
          // template parameter: no std::function, no heap.
          const auto probe = [this, salt, cur, key](NodeIndex n) {
            ert::core::ProbeResult r = synth_probe(n, cur, salt);
            r.logical_distance = o.logical_distance_to_key(n, key);
            return r;
          };
          auto& entry = o.mutable_node(cur).table.entry(step.entry_index);
          const ert::core::ForwardStep d = ert::core::forward_topology_aware(
              entry, std::span<const NodeIndex>(cands), overloaded, opts,
              probe, rng, fwd_scratch);
          next = d.next;
          probes = d.probes;
          for (NodeIndex ov : fwd_scratch.newly_overloaded)
            if (overloaded.size() < ert::core::kOverloadedSetCap)
              overloaded.insert(ov);
        }
        fold(checksum, next, probes);
        cur = next;
        ++hops;
      }
    }
    return hops;
  }
};

template <typename Fn>
double time_best_of(int reps, Fn&& fn, std::size_t& hops) {
  double best = 1e300;
  hops = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    hops += fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  const char* out_path = argc > 1 ? argv[1] : "BENCH_route_hop.json";
  const int reps = smoke ? 1 : 3;
  const std::size_t n = smoke ? 512 : 2048;
  const std::size_t lookups = smoke ? 3000 : 30000;
  const std::size_t scale_n = smoke ? 4096 : 65536;
  const std::size_t scale_lookups = smoke ? 1000 : 10000;

  // Same build seed -> identical overlays; same run seed -> identical draw
  // streams. Any divergence shows up as a checksum mismatch.
  FastLoop fast(n, 1, 2);
  ReferenceLoop ref(n, 1, 2);

  std::size_t fast_hops = 0, ref_hops = 0;
  const double fast_s = time_best_of(reps, [&] { return fast.run(lookups); },
                                     fast_hops);
  const double ref_s = time_best_of(reps, [&] { return ref.run(lookups); },
                                    ref_hops);

  if (fast.checksum != ref.checksum || fast_hops != ref_hops) {
    std::fprintf(stderr,
                 "bench_route_hop: hop streams diverged "
                 "(fast %llx/%zu vs reference %llx/%zu)\n",
                 static_cast<unsigned long long>(fast.checksum), fast_hops,
                 static_cast<unsigned long long>(ref.checksum), ref_hops);
    return 1;
  }

  // Scale smoke: the fast loop on a large overlay (no reference run — the
  // point is that big networks route, not a second stopwatch).
  const auto build0 = std::chrono::steady_clock::now();
  FastLoop scale(scale_n, 3, 4);
  const double scale_build_s = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - build0)
                                   .count();
  std::size_t scale_hops = 0;
  const double scale_s =
      time_best_of(1, [&] { return scale.run(scale_lookups); }, scale_hops);

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_route_hop: open output");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "route_hop");
  w.field("smoke", smoke);
  w.field("repetitions", reps);
  w.key("workloads");
  w.begin_array();
  w.begin_object();
  w.field("name", "schedule_route_forward");
  w.field("substrate", "Cycloid");
  w.field("nodes", static_cast<std::uint64_t>(n));
  w.field("lookups_per_rep", static_cast<std::uint64_t>(lookups));
  w.key("fast");
  w.begin_object();
  w.field("hops", static_cast<std::uint64_t>(fast_hops));
  w.field("seconds", fast_s);
  w.field("hops_per_sec", static_cast<double>(fast_hops) / reps / fast_s);
  w.end_object();
  w.key("reference");
  w.begin_object();
  w.field("hops", static_cast<std::uint64_t>(ref_hops));
  w.field("seconds", ref_s);
  w.field("hops_per_sec", static_cast<double>(ref_hops) / reps / ref_s);
  w.end_object();
  w.field("speedup", ref_s / fast_s);
  w.field("checksum_match", true);
  w.end_object();
  w.end_array();
  w.key("scale");
  w.begin_object();
  w.field("nodes", static_cast<std::uint64_t>(scale_n));
  w.field("lookups", static_cast<std::uint64_t>(scale_lookups));
  w.field("build_seconds", scale_build_s);
  w.field("hops", static_cast<std::uint64_t>(scale_hops));
  w.field("seconds", scale_s);
  w.field("hops_per_sec", static_cast<double>(scale_hops) / scale_s);
  w.end_object();
  w.end_object();
  w.finish();
  std::fclose(f);

  std::printf("schedule_route_forward  fast %8.1f k hops/s   reference %8.1f k hops/s   speedup %.2fx\n",
              static_cast<double>(fast_hops) / reps / fast_s / 1e3,
              static_cast<double>(ref_hops) / reps / ref_s / 1e3,
              ref_s / fast_s);
  std::printf("scale n=%zu              %8.1f k hops/s   (build %.1fs)\n",
              scale_n, static_cast<double>(scale_hops) / scale_s / 1e3,
              scale_build_s);
  std::printf("wrote %s\n", out_path);
  return 0;
}
