// Construction-and-churn scale bench: rank-indexed directory vs the
// pre-refactor sorted-vector directory.
//
//   bench_build [output.json]     (default BENCH_build.json)
//
// Three sections, written to one JSON document (schema in
// docs/PERFORMANCE.md):
//
//   directory      microbench sweep over the RingDirectory alone. For each
//                  n: shuffled incremental inserts, the begin_bulk/end_bulk
//                  batched build, a churn regime of alternating erase/insert
//                  pairs, and a successor-query pass. The identical id and
//                  operation sequence is replayed through the pre-refactor
//                  sorted-vector copy (reference_ring.h) while that stays
//                  affordable (O(n²) inserts cap it at 65536), and a query
//                  checksum asserts the two directories agree.
//   cycloid_build  a full n = 65536 Cycloid overlay built exactly the way
//                  bench_route_hop's scale section builds one (dimension
//                  fit_dimension(2n), base_fanout 3, add_node_random then
//                  build_table per slot). Timed both incrementally and via
//                  the bulk-insert staging path, and compared against the
//                  28.1602 s this same construction took with the
//                  sorted-vector directory (scale.build_seconds recorded in
//                  BENCH_route_hop.json before the refactor).
//   chord_build    the million-node criterion: a full n = 1048576 Chord
//                  network through the harness (run_build_only), reported
//                  with wall-clock seconds and peak RSS. Non-smoke only.
//
// ERT_BENCH_SMOKE=1 shrinks the sweep and skips the million-node build so
// CI finishes in seconds.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/rss.h"
#include "cycloid/overlay.h"
#include "dht/ring.h"
#include "harness/experiment.h"
#include "json_writer.h"
#include "reference_ring.h"

namespace {

using ert::Rng;
using ert::dht::NodeIndex;

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// n distinct shuffled ids below `modulus`, deterministic per seed. The
/// draw-until-fresh loop keeps the sequence order-free of the sorted result,
/// so incremental inserts land at random ranks (the worst case for the
/// sorted-vector baseline, the expected case for joins).
std::vector<std::uint64_t> make_ids(std::size_t n, std::uint64_t modulus,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  std::vector<bool> taken;  // dense dedup: modulus stays within 8x n here.
  taken.assign(modulus, false);
  while (ids.size() < n) {
    const std::uint64_t id = rng.bits() % modulus;
    if (taken[id]) continue;
    taken[id] = true;
    ids.push_back(id);
  }
  return ids;
}

/// Order-sensitive fold of a successor-query pass; both implementations
/// must produce the same sum or the bench aborts.
template <typename Dir>
std::uint64_t query_checksum(const Dir& dir, std::uint64_t modulus,
                             std::size_t queries, std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t sum = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::uint64_t key = rng.bits() % modulus;
    sum = sum * 1099511628211ull + dir.successor_id(key) * 31u +
          dir.predecessor_id(key);
  }
  return sum;
}

/// Churn regime: `ops` erase+reinsert pairs against a built directory, the
/// erase victim and replacement id drawn identically for both directories.
template <typename Dir>
double churn_pass(Dir& dir, std::vector<std::uint64_t> ids,
                  std::uint64_t modulus, std::size_t ops, std::uint64_t seed) {
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t victim = rng.index(ids.size());
    dir.erase(ids[victim]);
    std::uint64_t fresh = rng.bits() % modulus;
    while (dir.contains(fresh)) fresh = (fresh + 1) % modulus;
    dir.insert(fresh, static_cast<NodeIndex>(victim));
    ids[victim] = fresh;
  }
  return seconds_since(t0);
}

struct DirectoryRow {
  std::size_t n = 0;
  double insert_seconds = 0.0;        ///< new directory, one-at-a-time.
  double bulk_seconds = 0.0;          ///< new directory, begin/end_bulk.
  double churn_seconds = 0.0;         ///< new directory, erase+insert pairs.
  std::size_t churn_ops = 0;
  double ref_insert_seconds = -1.0;   ///< sorted-vector baseline; -1 = skipped.
  double ref_churn_seconds = -1.0;
  std::uint64_t checksum = 0;
};

DirectoryRow run_directory_row(std::size_t n, bool with_reference) {
  const std::uint64_t modulus = 8 * static_cast<std::uint64_t>(n);
  const auto ids = make_ids(n, modulus, 0x5eed0 + n);
  const std::size_t churn_ops = std::min<std::size_t>(n, 1 << 16);
  const std::size_t queries = std::min<std::size_t>(n, 1 << 15);

  DirectoryRow row;
  row.n = n;
  row.churn_ops = churn_ops;

  {
    ert::dht::RingDirectory dir(modulus);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i)
      dir.insert(ids[i], static_cast<NodeIndex>(i));
    row.insert_seconds = seconds_since(t0);
    row.churn_seconds = churn_pass(dir, ids, modulus, churn_ops, 0xc4u + n);
  }
  {
    ert::dht::RingDirectory dir(modulus);
    const auto t0 = std::chrono::steady_clock::now();
    dir.begin_bulk(n);
    for (std::size_t i = 0; i < n; ++i)
      dir.insert(ids[i], static_cast<NodeIndex>(i));
    dir.end_bulk();
    row.bulk_seconds = seconds_since(t0);
    row.checksum = query_checksum(dir, modulus, queries, 0xabcd + n);
  }
  if (with_reference) {
    ertbench::refring::RingDirectory ref(modulus);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i)
      ref.insert(ids[i], static_cast<NodeIndex>(i));
    row.ref_insert_seconds = seconds_since(t0);
    const std::uint64_t ref_sum =
        query_checksum(ref, modulus, queries, 0xabcd + n);
    if (ref_sum != row.checksum) {
      std::fprintf(stderr,
                   "bench_build: checksum mismatch at n=%zu "
                   "(new %llu vs reference %llu)\n",
                   n, static_cast<unsigned long long>(row.checksum),
                   static_cast<unsigned long long>(ref_sum));
      std::exit(1);
    }
    row.ref_churn_seconds =
        churn_pass(ref, ids, modulus, churn_ops, 0xc4u + n);
  }
  return row;
}

/// The n = 65536 full-overlay construction bench_route_hop times in its
/// scale section — same dimension fit, fanout, and Rng draw sequence.
int fit_dimension(std::size_t ids_needed) {
  for (int d = 3; d < 25; ++d)
    if (static_cast<std::size_t>(d) << d >= ids_needed) return d;
  return 25;
}

double build_overlay_seconds(std::size_t n, std::uint64_t seed, bool bulk,
                             std::uint64_t* ids_checksum) {
  ert::cycloid::OverlayOptions opts;
  opts.dimension = fit_dimension(2 * n);
  opts.base_fanout = 3;
  ert::cycloid::Overlay o(opts);
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  if (bulk) o.begin_bulk_insert(n);
  for (std::size_t i = 0; i < n; ++i) o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  if (bulk) o.end_bulk_insert();
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  const double s = seconds_since(t0);
  std::uint64_t sum = 0;
  for (const std::uint64_t id : o.directory().ids())
    sum = sum * 1099511628211ull + id;
  *ids_checksum = sum;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_build.json";
  const bool smoke = smoke_mode();

  // The sorted-vector baseline's O(n²) inserts stay affordable to 65536;
  // beyond that only the new directory runs.
  std::vector<std::size_t> sweep;
  std::size_t ref_cap = 0;
  if (smoke) {
    sweep = {1 << 10, 1 << 12};
    ref_cap = 1 << 12;
  } else {
    sweep = {1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20};
    ref_cap = 1 << 16;
  }

  std::vector<DirectoryRow> rows;
  for (const std::size_t n : sweep) {
    rows.push_back(run_directory_row(n, n <= ref_cap));
    const DirectoryRow& r = rows.back();
    std::printf("directory n=%-8zu insert %8.3fs  bulk %8.3fs  churn %8.3fs",
                r.n, r.insert_seconds, r.bulk_seconds, r.churn_seconds);
    if (r.ref_insert_seconds >= 0)
      std::printf("   ref insert %8.3fs (%.1fx)", r.ref_insert_seconds,
                  r.ref_insert_seconds / std::max(1e-9, r.insert_seconds));
    std::printf("\n");
  }

  // Full Cycloid overlay at the bench_route_hop scale-point configuration.
  // kBaselineSeconds is that construction's wall-clock with the pre-refactor
  // directory (BENCH_route_hop.json scale.build_seconds before this change);
  // the acceptance gate is a >= 5x speedup against it.
  const double kBaselineSeconds = 28.1602;
  const std::size_t overlay_n = smoke ? 4096 : 65536;
  std::uint64_t sum_inc = 0;
  std::uint64_t sum_bulk = 0;
  const double overlay_inc_s = build_overlay_seconds(overlay_n, 3, false,
                                                     &sum_inc);
  const double overlay_bulk_s = build_overlay_seconds(overlay_n, 3, true,
                                                      &sum_bulk);
  if (sum_inc != sum_bulk) {
    std::fprintf(stderr,
                 "bench_build: bulk overlay build diverged from incremental "
                 "(ids checksum %llu vs %llu)\n",
                 static_cast<unsigned long long>(sum_bulk),
                 static_cast<unsigned long long>(sum_inc));
    return 1;
  }
  const std::size_t overlay_rss_kb = ert::peak_rss_kb();
  std::printf("cycloid n=%zu            incremental %.3fs  bulk %.3fs",
              overlay_n, overlay_inc_s, overlay_bulk_s);
  if (!smoke)
    std::printf("   (baseline %.1fs, %.1fx)", kBaselineSeconds,
                kBaselineSeconds / std::max(1e-9, overlay_bulk_s));
  std::printf("\n");

  // Million-node criterion: the full harness construction (capacities,
  // proximity coordinates, Chord ring + finger tables) at n = 2^20.
  ert::harness::BuildReport million;
  if (!smoke) {
    ert::SimParams p;
    p.num_nodes = 1u << 20;
    p.seed = 7;
    million = ert::harness::run_build_only(
        p, ert::harness::Protocol::kBase, ert::harness::SubstrateKind::kChord);
    std::printf("chord n=%zu        built in %.1fs, peak RSS %.1f MiB\n",
                million.real_nodes, million.build_seconds,
                static_cast<double>(million.peak_rss_kb) / 1024.0);
  }

  std::FILE* f = std::fopen(out, "w");
  if (!f) {
    std::perror("bench_build: open output");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "build");
  w.field("smoke", smoke);
  w.key("directory");
  w.begin_array();
  for (const DirectoryRow& r : rows) {
    w.begin_object();
    w.field("n", static_cast<std::uint64_t>(r.n));
    w.field("insert_seconds", r.insert_seconds);
    w.field("insert_ops_per_sec",
            static_cast<double>(r.n) / std::max(1e-9, r.insert_seconds));
    w.field("bulk_seconds", r.bulk_seconds);
    w.field("churn_ops", static_cast<std::uint64_t>(r.churn_ops));
    w.field("churn_seconds", r.churn_seconds);
    w.field("churn_ops_per_sec", static_cast<double>(r.churn_ops) /
                                     std::max(1e-9, r.churn_seconds));
    if (r.ref_insert_seconds >= 0) {
      w.field("ref_insert_seconds", r.ref_insert_seconds);
      w.field("ref_churn_seconds", r.ref_churn_seconds);
      w.field("insert_speedup",
              r.ref_insert_seconds / std::max(1e-9, r.insert_seconds));
      w.field("churn_speedup",
              r.ref_churn_seconds / std::max(1e-9, r.churn_seconds));
    }
    w.end_object();
  }
  w.end_array();
  w.key("cycloid_build");
  w.begin_object();
  w.field("nodes", static_cast<std::uint64_t>(overlay_n));
  w.field("incremental_seconds", overlay_inc_s);
  w.field("bulk_seconds", overlay_bulk_s);
  w.field("peak_rss_kb", static_cast<std::uint64_t>(overlay_rss_kb));
  if (!smoke) {
    w.field("baseline_seconds", kBaselineSeconds);
    w.field("speedup_incremental",
            kBaselineSeconds / std::max(1e-9, overlay_inc_s));
    w.field("speedup_bulk", kBaselineSeconds / std::max(1e-9, overlay_bulk_s));
  }
  w.end_object();
  if (!smoke) {
    w.key("chord_build");
    w.begin_object();
    w.field("nodes", static_cast<std::uint64_t>(million.real_nodes));
    w.field("overlay_slots", static_cast<std::uint64_t>(million.overlay_slots));
    w.field("build_seconds", million.build_seconds);
    w.field("peak_rss_kb", static_cast<std::uint64_t>(million.peak_rss_kb));
    w.end_object();
  }
  w.end_object();
  w.finish();
  std::fclose(f);
  std::printf("wrote %s\n", out);
  return 0;
}
