// Theorems 3.1 / 3.2: indegree bounds under assignment and adaptation.
//
// Theorem 3.1: the initial indegree assigned to node i lies within
// [alpha*c_i/gamma_c - O(1), alpha*c_i*gamma_c + O(1)] w.h.p. — verified
// directly on ERT networks built with varying capacity-estimation error.
// Theorem 3.2: under periodic adaptation the indegree stays bounded — we
// run the full simulation and report how node indegrees relate to the
// alpha*c_i scale before and after adaptation.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "cycloid/overlay.h"
#include "ert/capacity.h"

namespace {

struct BoundCheck {
  double within_pct = 0.0;
  double worst_ratio_low = 1.0;
  double worst_ratio_high = 1.0;
};

/// Builds an ERT Cycloid and checks initial indegrees against the
/// Theorem 3.1 band (slack covers the additive O(1)).
BoundCheck check_initial_bounds(double gamma_c, std::uint64_t seed) {
  using namespace ert;
  using namespace ert::cycloid;
  SimParams params;
  params.gamma_c = gamma_c;
  Rng rng(seed);
  auto caps = core::CapacityModel::generate(2048, params, rng);

  OverlayOptions opts;
  opts.dimension = 8;
  opts.policy = NeighborPolicy::kSpareIndegree;
  opts.enforce_indegree_bounds = true;
  Overlay o(opts);
  std::vector<double> true_cap(2048);
  for (std::size_t r = 0; r < 2048; ++r) {
    true_cap[r] = caps.normalized(r);
    const double est = caps.estimated(r, gamma_c, rng);
    o.add_node_random(rng, caps.normalized(r),
                      core::max_indegree(params.alpha(), est), params.beta);
  }
  for (dht::NodeIndex v = 0; v < o.num_slots(); ++v) o.build_table(v, rng);
  std::vector<dht::NodeIndex> order(o.num_slots());
  for (dht::NodeIndex v = 0; v < order.size(); ++v) order[v] = v;
  rng.shuffle(order);
  for (dht::NodeIndex v : order) {
    const auto& b = o.node(v).budget;
    const int want = b.initial_target() - b.indegree();
    if (want > 0) o.expand_indegree(v, want, 256);
  }

  BoundCheck out;
  const double alpha = params.alpha();
  const double slack = 4.0;  // the theorem's O(1)
  std::size_t within = 0;
  for (dht::NodeIndex v = 0; v < o.num_slots(); ++v) {
    const double d = static_cast<double>(o.node(v).budget.indegree());
    const double lo =
        std::max(1.0, params.beta * (alpha * true_cap[v] / gamma_c - slack));
    const double hi = alpha * true_cap[v] * gamma_c + slack;
    if (d >= lo && d <= hi) ++within;
    out.worst_ratio_low = std::min(out.worst_ratio_low, d / std::max(1.0, lo));
    out.worst_ratio_high = std::max(out.worst_ratio_high, d / hi);
  }
  out.within_pct = 100.0 * static_cast<double>(within) /
                   static_cast<double>(o.num_slots());
  return out;
}

}  // namespace

int main() {
  using namespace ertbench;
  std::printf(
      "Theorems 3.1 / 3.2 — indegree bounds under assignment/adaptation\n");

  std::printf("\n(1) Theorem 3.1: initial indegree within the band, by "
              "estimation error gamma_c\n");
  ert::TablePrinter t1(
      {"gamma_c", "nodes within band %", "worst low ratio", "worst high ratio"});
  for (double g : {1.0, 1.5, 2.0}) {
    const auto c = check_initial_bounds(g, 11);
    t1.add_row({ert::fmt_num(g, 1), ert::fmt_num(c.within_pct, 1),
                ert::fmt_num(c.worst_ratio_low, 2),
                ert::fmt_num(c.worst_ratio_high, 2)});
  }
  t1.print();

  std::printf(
      "\n(2) Theorem 3.2: per-node max indegree stays bounded during\n"
      "    adaptation (full simulation, ERT/A)\n");
  ert::TablePrinter t2({"lookups", "p99 max indegree", "mean max indegree",
                        "p99 / (alpha*c) p99 bound factor"});
  for (std::size_t lookups : {1000u, 3000u, 5000u}) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = lookups;
    const auto r =
        ert::harness::run_averaged(p, ert::harness::Protocol::kErtA, 1);
    // alpha * c for the 99th percentile capacity is the natural scale: the
    // Pareto p99 normalized capacity is ~8-10, alpha = 11.
    t2.add_row({std::to_string(lookups), ert::fmt_num(r.max_indegree.p99, 1),
                ert::fmt_num(r.max_indegree.mean, 1),
                ert::fmt_num(r.max_indegree.p99 / (p.alpha() * 10.0), 2)});
  }
  t2.print();
  std::printf(
      "\nIndegrees track alpha*c and stay bounded (no runaway growth even\n"
      "though every light node tries to grow each period).\n");
  return 0;
}
