// Kernel microbench: pooled event kernel vs the seed reference kernel.
//
//   bench_kernel [output.json]     (default BENCH_sim_kernel.json)
//
// Runs identical workloads through ert::sim::Simulator and the pre-pooling
// reference implementation (reference_kernel.h) and records throughput and
// speedup per workload. Workloads:
//
//   schedule_run     N one-shot events at scrambled times, then drain —
//                    the pure scheduling/dispatch path.
//   schedule_cancel  a rolling window of requests, each scheduling a
//                    payload plus a timeout the payload cancels — the
//                    event-dense schedule/cancel pattern the experiment
//                    engine produces under churn (~1/3 of events cancel).
//   cancel_storm     schedule a large horizon, cancel 15/16 of it up
//                    front, then drain — exercises compaction.
//
// ERT_BENCH_SMOKE=1 shrinks sizes for CI smoke runs. Times are the best of
// three repetitions (one in smoke mode).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "json_writer.h"
#include "reference_kernel.h"
#include "sim/simulator.h"

namespace {

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

/// xorshift so both kernels see the same cheap, deterministic time stream.
struct MiniRng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  double delay() { return 0.1 + static_cast<double>(next() % 1024) / 256.0; }
};

/// Events executed by a pure schedule-then-drain workload of n events.
template <typename Sim>
std::size_t workload_schedule_run(std::size_t n) {
  Sim sim;
  MiniRng rng;
  std::size_t sink = 0;
  std::size_t executed = 0;
  // Drain in slices so the heap stays at a realistic working size instead
  // of holding all n events at once.
  const std::size_t slice = 8192;
  for (std::size_t scheduled = 0; scheduled < n;) {
    const std::size_t batch = std::min(slice, n - scheduled);
    for (std::size_t i = 0; i < batch; ++i)
      sim.schedule(rng.delay(), [&sink] { ++sink; });
    scheduled += batch;
    executed += sim.run();
  }
  return executed + (sink ? 0 : 1);
}

/// Rolling request/timeout pattern: each request schedules a payload and a
/// timeout; the payload fires first and cancels the timeout, then spawns
/// the next request. One timeout in 8 "wins" instead, so the cancel path
/// runs from both sides. Returns events executed.
template <typename Sim, typename Handle>
std::size_t workload_schedule_cancel(std::size_t requests) {
  struct Driver {
    Sim sim;
    MiniRng rng;
    std::size_t remaining;
    std::size_t spawned = 0;

    void spawn() {
      if (remaining == 0) return;
      --remaining;
      ++spawned;
      const double d = rng.delay();
      const bool timeout_wins = (rng.next() & 7u) == 0;
      // The losing event is scheduled later and cancelled by the winner.
      Handle loser;
      if (timeout_wins) {
        loser = sim.schedule(d * 4.0, [this] { spawn(); });
        sim.schedule(d * 2.0, [this, loser]() mutable {
          loser.cancel();
          spawn();
        });
      } else {
        loser = sim.schedule(d * 8.0, [this] { spawn(); });
        sim.schedule(d, [this, loser]() mutable {
          loser.cancel();
          spawn();
        });
      }
    }
  };
  Driver drv;
  drv.remaining = requests;
  const std::size_t window = std::min<std::size_t>(1024, requests);
  for (std::size_t i = 0; i < window; ++i) drv.spawn();
  return drv.sim.run();
}

/// Bulk cancellation: fill the heap, cancel 15/16 of it, drain, repeat.
/// The pooled kernel's compaction keeps the drain from wading through
/// stale entries; the reference kernel pays for them at every pop.
template <typename Sim, typename Handle>
std::size_t workload_cancel_storm(std::size_t n) {
  Sim sim;
  MiniRng rng;
  std::size_t sink = 0;
  std::size_t executed = 0;
  const std::size_t round = 1 << 14;
  std::vector<Handle> handles;
  handles.reserve(round);
  for (std::size_t done = 0; done < n;) {
    const std::size_t batch = std::min(round, n - done);
    handles.clear();
    for (std::size_t i = 0; i < batch; ++i)
      handles.push_back(sim.schedule(rng.delay(), [&sink] { ++sink; }));
    for (std::size_t i = 0; i < batch; ++i)
      if (i % 16 != 0) handles[i].cancel();
    executed += sim.run();
    done += batch;
  }
  return executed;
}

double time_best_of(int reps, const std::function<std::size_t()>& fn,
                    std::size_t& executed) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    executed = fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct WorkloadResult {
  const char* name;
  std::size_t events_scheduled;
  std::size_t pooled_executed;
  double pooled_seconds;
  std::size_t ref_executed;
  double ref_seconds;
};

void emit(ertbench::JsonWriter& w, const WorkloadResult& r) {
  w.begin_object();
  w.field("name", r.name);
  w.field("events_scheduled", r.events_scheduled);
  w.key("pooled");
  w.begin_object();
  w.field("events_executed", r.pooled_executed);
  w.field("seconds", r.pooled_seconds);
  w.field("events_per_sec",
          static_cast<double>(r.pooled_executed) / r.pooled_seconds);
  w.end_object();
  w.key("reference");
  w.begin_object();
  w.field("events_executed", r.ref_executed);
  w.field("seconds", r.ref_seconds);
  w.field("events_per_sec",
          static_cast<double>(r.ref_executed) / r.ref_seconds);
  w.end_object();
  w.field("speedup", r.ref_seconds / r.pooled_seconds);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sim_kernel.json";
  const int reps = smoke ? 1 : 3;
  const std::size_t n_run = smoke ? 200'000 : 4'000'000;
  const std::size_t n_cancel = smoke ? 100'000 : 2'000'000;
  const std::size_t n_storm = smoke ? 200'000 : 4'000'000;

  using PooledSim = ert::sim::Simulator;
  using PooledHandle = ert::sim::EventHandle;
  using RefSim = ertbench::refsim::Simulator;
  using RefHandle = ertbench::refsim::EventHandle;

  std::vector<WorkloadResult> results;

  {
    WorkloadResult r{"schedule_run", n_run, 0, 0, 0, 0};
    r.pooled_seconds = time_best_of(
        reps, [&] { return workload_schedule_run<PooledSim>(n_run); },
        r.pooled_executed);
    r.ref_seconds = time_best_of(
        reps, [&] { return workload_schedule_run<RefSim>(n_run); },
        r.ref_executed);
    results.push_back(r);
  }
  {
    // ~3 events per request (payload, timeout, respawn chain).
    WorkloadResult r{"schedule_cancel", 2 * n_cancel, 0, 0, 0, 0};
    r.pooled_seconds = time_best_of(
        reps,
        [&] {
          return workload_schedule_cancel<PooledSim, PooledHandle>(n_cancel);
        },
        r.pooled_executed);
    r.ref_seconds = time_best_of(
        reps,
        [&] { return workload_schedule_cancel<RefSim, RefHandle>(n_cancel); },
        r.ref_executed);
    results.push_back(r);
  }
  {
    WorkloadResult r{"cancel_storm", n_storm, 0, 0, 0, 0};
    r.pooled_seconds = time_best_of(
        reps,
        [&] { return workload_cancel_storm<PooledSim, PooledHandle>(n_storm); },
        r.pooled_executed);
    r.ref_seconds = time_best_of(
        reps,
        [&] { return workload_cancel_storm<RefSim, RefHandle>(n_storm); },
        r.ref_executed);
    results.push_back(r);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_kernel: open output");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "sim_kernel");
  w.field("smoke", smoke);
  w.field("repetitions", reps);
  w.key("workloads");
  w.begin_array();
  for (const auto& r : results) emit(w, r);
  w.end_array();
  w.end_object();
  w.finish();
  std::fclose(f);

  for (const auto& r : results) {
    std::printf("%-16s pooled %8.1f k ev/s   reference %8.1f k ev/s   speedup %.2fx\n",
                r.name,
                static_cast<double>(r.pooled_executed) / r.pooled_seconds / 1e3,
                static_cast<double>(r.ref_executed) / r.ref_seconds / 1e3,
                r.ref_seconds / r.pooled_seconds);
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
