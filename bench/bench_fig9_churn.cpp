// Figure 9: congestion control under churn (Sec. 5.5).
//
// Node join/departure processes are Poisson; the mean interarrival time
// sweeps 0.1..0.9 s (smaller = heavier churn). Departures are silent, so
// stale routing entries cause timeouts until discovered.
//  (a) 99th percentile maximum congestion
//  (b) 99th percentile share
// Paper shape: NS degrades in high churn (can exceed Base); VS and ERT/AF
// stay roughly flat, with ERT/AF keeping congestion lowest.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  print_header("Figure 9", "congestion under churn (interarrival sweep)");

  ert::TablePrinter a(protocol_headers("interarrival"));
  ert::TablePrinter b(protocol_headers("interarrival"));
  for (double gap = 0.1; gap <= 0.95; gap += 0.2) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = 3000;
    p.churn_interarrival = gap;
    std::vector<double> va, vb;
    for (auto proto : ert::harness::kAllProtocols) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      va.push_back(r.p99_max_congestion);
      vb.push_back(r.p99_share);
    }
    a.add_row(gap, va);
    b.add_row(gap, vb);
  }
  std::printf("\n(a) 99th percentile maximum congestion\n");
  a.print();
  std::printf("\n(b) 99th percentile share\n");
  b.print();
  return 0;
}
