// Ablations over the design choices DESIGN.md calls out (Sec. 3.1's
// trade-off discussion and Sec. 4.1's policy knobs), all on ERT/AF:
//   - alpha (indegree per unit capacity): too small starves high-capacity
//     nodes; too large overloads low-capacity ones and costs maintenance.
//   - beta (initial reservation fraction).
//   - mu (adaptation step) and gamma_l (overload threshold).
//   - poll size b (supermarket theory: b = 2 is the knee).
//   - memory-based dispatch and overloaded-set propagation on/off.
#include <cstdio>

#include "bench_common.h"

namespace {

void run_sweep(const char* name,
               const std::vector<std::pair<std::string, ert::SimParams>>& pts) {
  ert::TablePrinter t(
      {name, "p99 max congestion", "p99 share", "heavy met", "lookup time"});
  for (const auto& [label, params] : pts) {
    const auto r = ert::harness::run_averaged(
        params, ert::harness::Protocol::kErtAF, ertbench::bench_seeds());
    t.add_row({label, ert::fmt_num(r.p99_max_congestion, 2),
               ert::fmt_num(r.p99_share, 2),
               std::to_string(r.heavy_encounters),
               ert::fmt_num(r.lookup_time.mean, 2)});
  }
  std::printf("\n%s sweep\n", name);
  t.print();
}

}  // namespace

int main() {
  using namespace ertbench;
  print_header("Ablations", "ERT/AF parameter sensitivity");
  ert::SimParams base = paper_defaults();
  base.num_lookups = 3000;

  {
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    for (int delta : {-6, -3, 0, +6, +16}) {
      ert::SimParams p = base;
      p.alpha_override = p.alpha() + delta;
      pts.emplace_back(
          "alpha=" + std::to_string(static_cast<int>(p.alpha_override)), p);
    }
    run_sweep("alpha", pts);
  }
  {
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    for (double beta : {0.3, 0.5, 0.8, 1.0}) {
      ert::SimParams p = base;
      p.beta = beta;
      pts.emplace_back("beta=" + ert::fmt_num(beta, 1), p);
    }
    run_sweep("beta", pts);
  }
  {
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    for (double mu : {0.25, 0.5, 1.0}) {
      ert::SimParams p = base;
      p.mu = mu;
      pts.emplace_back("mu=" + ert::fmt_num(mu, 2), p);
    }
    run_sweep("mu", pts);
  }
  {
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    for (double gl : {1.0, 1.5, 2.0}) {
      ert::SimParams p = base;
      p.gamma_l = gl;
      pts.emplace_back("gamma_l=" + ert::fmt_num(gl, 1), p);
    }
    run_sweep("gamma_l", pts);
  }
  {
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    for (int b : {1, 2, 3, 4}) {
      ert::SimParams p = base;
      p.poll_size = b;
      pts.emplace_back("b=" + std::to_string(b), p);
    }
    run_sweep("poll size b", pts);
  }
  {
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    {
      ert::SimParams p = base;
      pts.emplace_back("memory+Aset", p);
    }
    {
      ert::SimParams p = base;
      p.use_memory = false;
      pts.emplace_back("no memory", p);
    }
    {
      ert::SimParams p = base;
      p.propagate_overloaded = false;
      pts.emplace_back("no A set", p);
    }
    {
      ert::SimParams p = base;
      p.use_memory = false;
      p.propagate_overloaded = false;
      pts.emplace_back("neither", p);
    }
    run_sweep("forwarding features", pts);
  }
  {
    // Data forwarding (anonymity pattern): responses retrace the query
    // path, roughly doubling per-lookup load — congestion control matters
    // even more.
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    {
      ert::SimParams p = base;
      pts.emplace_back("query only", p);
    }
    {
      ert::SimParams p = base;
      p.data_forwarding = true;
      pts.emplace_back("query+data", p);
    }
    run_sweep("data forwarding", pts);
  }
  {
    // Probe cost: Algorithm 4's polling is "a costly process" (Sec. 4.1);
    // charge each probe a latency and watch the trade-off.
    std::vector<std::pair<std::string, ert::SimParams>> pts;
    for (double c : {0.0, 0.02, 0.05, 0.1}) {
      ert::SimParams p = base;
      p.probe_cost = c;
      pts.emplace_back("probe=" + ert::fmt_num(c, 2) + "s", p);
    }
    run_sweep("probe cost", pts);
  }
  return 0;
}
