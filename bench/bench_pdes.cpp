// Sharded-PDES throughput tracker: single-run wall time vs --sim-threads
// (BENCH_pdes.json).
//
//   bench_pdes [output.json]      (default BENCH_pdes.json)
//
// Runs one full ERT/AF experiment (Chord substrate, scale-preset workload
// clock: rate 128 * n / 2048 lookups/s, Table-2 service times / 8, 64-query
// ingress cap) at n = 2^17 for a shard sweep sim_threads in {1, 2, 4} (and
// the machine's core count when it exceeds 4), recording wall seconds and
// the speedup over the serial engine. Unlike bench_seed_scaling — which
// fans independent seeds over threads — this measures the sharded engine
// inside a SINGLE run, the ISSUE 9 tentpole.
//
// Gates (exit 1 on failure):
//   - every row settles all lookups (completed + dropped == lookups);
//   - the sim_threads=1 row is checksum-identical to a plain serial
//     run_experiment call (the two-tier determinism contract: 1 shard IS
//     the serial engine, bit for bit);
//   - on a machine with >= 4 cores, the 4-shard row reaches >= 2x speedup
//     over serial. On fewer cores (1-core CI) the sweep still runs and
//     validates, but the speedup gate is waived (recorded in the JSON).
//
// ERT_BENCH_SMOKE=1 shrinks to n = 4096 / 20k lookups and additionally
// re-runs the 4-shard row to assert run-to-run checksum determinism.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "harness/experiment.h"
#include "harness/pdes_engine.h"
#include "json_writer.h"

namespace {

using ert::harness::ExperimentResult;
using ert::harness::Protocol;
using ert::harness::SubstrateKind;

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

/// FNV-1a over the bit patterns of every scalar the result carries, so
/// "identical" means identical doubles, not identical printf roundings.
class Checksum {
 public:
  void add(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    add(bits);
  }
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t get() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t result_checksum(const ExperimentResult& r) {
  Checksum c;
  c.add(r.p99_max_congestion);
  c.add(r.mean_max_congestion);
  c.add(r.min_cap_node_congestion);
  c.add(r.p99_share);
  c.add(static_cast<std::uint64_t>(r.heavy_encounters));
  c.add(r.avg_path_length);
  c.add(r.lookup_time.mean);
  c.add(r.lookup_time.p01);
  c.add(r.lookup_time.p99);
  c.add(r.avg_timeouts);
  c.add(r.max_indegree.mean);
  c.add(r.max_indegree.p99);
  c.add(r.max_outdegree.mean);
  c.add(r.max_outdegree.p99);
  c.add(static_cast<std::uint64_t>(r.completed_lookups));
  c.add(static_cast<std::uint64_t>(r.dropped_lookups));
  c.add(r.sim_duration);
  c.add(static_cast<std::uint64_t>(r.final_nodes));
  return c.get();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_pdes.json";
  const bool smoke = smoke_mode();
  const unsigned hw = std::thread::hardware_concurrency();
  const int cores = hw ? static_cast<int>(hw) : 1;

  ert::SimParams p;
  p.seed = 42;
  p.num_nodes = smoke ? 4096 : (std::size_t{1} << 17);
  p.num_lookups = smoke ? 20'000 : 200'000;
  p.lookup_rate = 128.0 * static_cast<double>(p.num_nodes) / 2048.0;
  p.light_service_time = 0.2 / 8.0;
  p.heavy_service_time = 1.0 / 8.0;
  p.queue_cap = 64;
  p.dimension = ert::harness::fit_dimension(p.num_nodes);
  const auto kind = SubstrateKind::kChord;
  const auto proto = Protocol::kErtAF;

  std::vector<int> shard_counts{1, 2, 4};
  if (cores > 4) shard_counts.push_back(cores);

  // Serial reference: default params go down the unsharded code path.
  std::printf("bench_pdes: serial reference n=%zu lookups=%zu ...\n",
              p.num_nodes, p.num_lookups);
  std::fflush(stdout);
  ert::SimParams serial_p = p;
  serial_p.sim_threads = 1;
  const auto st0 = std::chrono::steady_clock::now();
  const auto serial = ert::harness::run_experiment(serial_p, proto, kind);
  const double serial_wall = seconds_since(st0);
  const std::uint64_t serial_sum = result_checksum(serial);

  struct Row {
    int sim_threads;
    double wall;
    std::uint64_t checksum;
    std::size_t completed;
    std::size_t dropped;
    bool settled_ok;
  };
  std::vector<Row> rows;
  rows.push_back(Row{1, serial_wall, serial_sum, serial.completed_lookups,
                     serial.dropped_lookups,
                     serial.completed_lookups + serial.dropped_lookups ==
                         p.num_lookups});

  for (const int st : shard_counts) {
    if (st == 1) continue;
    ert::SimParams sp = p;
    sp.sim_threads = st;
    if (!ert::harness::pdes_supported(sp, proto, kind, {})) {
      std::printf("bench_pdes: sim-threads %d unsupported, skipped\n", st);
      continue;
    }
    std::printf("bench_pdes: sim-threads %d ...\n", st);
    std::fflush(stdout);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = ert::harness::run_experiment(sp, proto, kind);
    rows.push_back(Row{st, seconds_since(t0), result_checksum(r),
                       r.completed_lookups, r.dropped_lookups,
                       r.completed_lookups + r.dropped_lookups ==
                           p.num_lookups});
  }

  // The sim_threads=1 path must BE the serial engine: same dispatch, same
  // bits. Run it again through the explicit field to prove the claim.
  const auto eq = ert::harness::run_experiment(serial_p, proto, kind);
  const bool serial_identical = result_checksum(eq) == serial_sum;

  // Smoke mode is cheap enough to also prove fixed-(seed, shards)
  // determinism of the parallel path by re-running the 4-shard row.
  bool rerun_identical = true;
  if (smoke) {
    ert::SimParams sp = p;
    sp.sim_threads = 4;
    const auto a = ert::harness::run_experiment(sp, proto, kind);
    const auto b = ert::harness::run_experiment(sp, proto, kind);
    rerun_identical = result_checksum(a) == result_checksum(b);
  }

  const bool speedup_gated = !smoke && cores >= 4;
  // When the gate is waived the JSON must say why, or a reader of the
  // artifact can't tell a passing gate from one that never ran.
  const char* speedup_waived_reason =
      speedup_gated ? ""
      : smoke       ? "smoke mode"
                    : "hardware_concurrency < 4";
  double speedup4 = 0.0;
  bool all_settled = true;
  for (const Row& r : rows) {
    all_settled = all_settled && r.settled_ok;
    if (r.sim_threads == 4 && r.wall > 0) speedup4 = serial_wall / r.wall;
  }
  const bool speedup_ok = !speedup_gated || speedup4 >= 2.0;
  const bool pass =
      all_settled && serial_identical && rerun_identical && speedup_ok;

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_pdes: open output");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "pdes");
  w.field("smoke", smoke);
  w.field("substrate", ert::harness::to_string(kind));
  w.field("protocol", "ERT/AF");
  w.field("nodes", static_cast<std::uint64_t>(p.num_nodes));
  w.field("lookups", static_cast<std::uint64_t>(p.num_lookups));
  w.field("rate", p.lookup_rate);
  w.field("hardware_concurrency", cores);
  w.field("speedup_gated", speedup_gated);
  if (!speedup_gated) w.field("speedup_gate_waived_reason", speedup_waived_reason);
  w.field("serial_path_identical", serial_identical);
  w.field("rerun_identical", rerun_identical);
  w.key("rows");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.field("sim_threads", r.sim_threads);
    w.field("wall_seconds", r.wall);
    w.field("speedup", r.wall > 0 ? serial_wall / r.wall : 0.0);
    w.field("completed", static_cast<std::uint64_t>(r.completed));
    w.field("dropped", static_cast<std::uint64_t>(r.dropped));
    char sum[32];
    std::snprintf(sum, sizeof sum, "%016llx",
                  static_cast<unsigned long long>(r.checksum));
    w.field("checksum", sum);
    w.field("settled_ok", r.settled_ok);
    w.end_object();
  }
  w.end_array();
  w.field("pass", pass);
  w.end_object();
  w.finish();
  std::fclose(f);

  for (const Row& r : rows)
    std::printf("sim-threads %2d   %7.2f s   speedup %.2fx   %s\n",
                r.sim_threads, r.wall, serial_wall / r.wall,
                r.settled_ok ? "settled" : "INCOMPLETE");
  std::string gate_note = speedup_gated ? (speedup_ok ? "met" : "MISSED")
                                        : std::string("waived: ") +
                                              speedup_waived_reason;
  std::printf("serial path %s, %s, speedup gate %s -> %s; wrote %s\n",
              serial_identical ? "bit-identical" : "MISMATCH",
              rerun_identical ? "rerun-deterministic" : "RERUN MISMATCH",
              gate_note.c_str(), pass ? "PASS" : "FAIL", out_path);
  return pass ? 0 : 1;
}
