// Figure 10: lookup efficiency under churn (Sec. 5.5).
//  (a) heavy nodes in routings
//  (b) lookup path length
//  (c) query processing time
//  (+) average timeouts per lookup, which the paper reports in the text:
//      ~0 for ERT (entry-mates substitute for departed neighbors), up to
//      ~0.06 for the others.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  print_header("Figure 10", "lookup efficiency under churn");

  ert::TablePrinter a(protocol_headers("interarrival"));
  ert::TablePrinter b(protocol_headers("interarrival"));
  ert::TablePrinter c(protocol_headers("interarrival"));
  ert::TablePrinter t(protocol_headers("interarrival"));
  for (double gap = 0.1; gap <= 0.95; gap += 0.2) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = 3000;
    p.churn_interarrival = gap;
    std::vector<double> va, vb, vc, vt;
    for (auto proto : ert::harness::kAllProtocols) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      va.push_back(static_cast<double>(r.heavy_encounters));
      vb.push_back(r.avg_path_length);
      vc.push_back(r.lookup_time.mean);
      vt.push_back(r.avg_timeouts);
    }
    a.add_row(gap, va, 0);
    b.add_row(gap, vb, 2);
    c.add_row(gap, vc, 1);
    t.add_row(gap, vt, 3);
  }
  std::printf("\n(a) heavy nodes encountered in routings (total)\n");
  a.print();
  std::printf("\n(b) lookup path length\n");
  b.print();
  std::printf("\n(c) average query processing time, seconds\n");
  c.print();
  std::printf("\n(text) average timeouts per lookup\n");
  t.print();
  return 0;
}
