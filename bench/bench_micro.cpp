// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// event queue scheduling, Cycloid route steps, forwarding decisions, and
// indegree expansion probing. These are not paper figures; they guard the
// simulator's performance so the figure benches stay fast.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "cycloid/overlay.h"
#include "dht/ring.h"
#include "ert/forwarding.h"
#include "sim/simulator.h"

namespace {

using namespace ert;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i)
      sim.schedule((i * 7) % 100, [&sink] { ++sink; });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_SimulatorScheduleCancel(benchmark::State& state) {
  // The churn/timeout pattern: most scheduled events are cancelled before
  // they fire. Exercises the slab free list and heap compaction.
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      handles.push_back(sim.schedule((i * 7) % 100, [&sink] { ++sink; }));
    for (int i = 0; i < 1000; ++i)
      if (i % 8 != 0) handles[i].cancel();
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleCancel);

void BM_SimulatorSteadyState(benchmark::State& state) {
  // Rolling horizon in steady state: slots and heap capacity recycle, so
  // per-event cost should be allocation-free.
  sim::Simulator sim;
  int sink = 0;
  for (int i = 0; i < 64; ++i) sim.schedule(1.0 + i, [&sink] { ++sink; });
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sim.step();
      sim.schedule(64.0, [&sink] { ++sink; });
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatorSteadyState);

cycloid::Overlay* full_cycloid(int d) {
  static cycloid::Overlay* o = [] {
    cycloid::OverlayOptions opts;
    opts.dimension = 8;
    auto* ov = new cycloid::Overlay(opts);
    cycloid::IdSpace space(8);
    for (std::uint64_t lv = 0; lv < space.size(); ++lv)
      ov->add_node(space.from_linear(lv), 1.0, 1 << 20, 0.8);
    Rng rng(1);
    for (dht::NodeIndex i = 0; i < ov->num_slots(); ++i)
      ov->build_table(i, rng);
    return ov;
  }();
  (void)d;
  return o;
}

void BM_CycloidRouteStep(benchmark::State& state) {
  auto* o = full_cycloid(8);
  Rng rng(2);
  for (auto _ : state) {
    const auto cur = rng.index(o->num_slots());
    const auto key = rng.bits() % o->space().size();
    cycloid::RouteCtx ctx;
    benchmark::DoNotOptimize(o->route_step(cur, key, ctx));
  }
}
BENCHMARK(BM_CycloidRouteStep);

void BM_CycloidFullLookup(benchmark::State& state) {
  auto* o = full_cycloid(8);
  Rng rng(3);
  std::size_t hops = 0;
  for (auto _ : state) {
    dht::NodeIndex cur = rng.index(o->num_slots());
    const auto key = rng.bits() % o->space().size();
    cycloid::RouteCtx ctx;
    for (;;) {
      const auto step = o->route_step(cur, key, ctx);
      if (step.arrived) break;
      cur = step.candidates.front();
      ++hops;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_CycloidFullLookup);

void BM_ForwardTopologyAware(benchmark::State& state) {
  Rng rng(4);
  dht::CandPool pool;
  dht::RoutingEntry entry(dht::EntryKind::kCubical);
  std::vector<dht::NodeIndex> cands;
  for (dht::NodeIndex n = 0; n < 8; ++n) {
    entry.add(pool, n);
    cands.push_back(n);
  }
  core::TopoForwardOptions opts;
  const auto probe = [](dht::NodeIndex n) {
    core::ProbeResult r;
    r.load = static_cast<double>(n) * 0.3;
    r.heavy = n % 3 == 0;
    r.logical_distance = n * 17 % 5;
    return r;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::forward_topology_aware(entry, cands, {}, opts, probe, rng));
  }
}
BENCHMARK(BM_ForwardTopologyAware);

void BM_ExpansionTargets(benchmark::State& state) {
  auto* o = full_cycloid(8);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        o->expansion_targets(rng.index(o->num_slots()), 64));
  }
}
BENCHMARK(BM_ExpansionTargets);

void BM_RingDirectorySuccessor(benchmark::State& state) {
  dht::RingDirectory dir(1 << 20);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) dir.insert(rng.bits() % (1 << 20), i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.successor(rng.bits() % (1 << 20)));
  }
}
BENCHMARK(BM_RingDirectorySuccessor);

}  // namespace

BENCHMARK_MAIN();
