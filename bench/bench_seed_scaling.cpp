// Seed fan-out scaling bench: run_averaged wall time vs worker threads.
//
//   bench_seed_scaling [output.json]   (default BENCH_seed_scaling.json)
//
// Times run_averaged over 8 seeds of the Table 2 ERT/AF experiment at
// several thread counts and verifies every multi-threaded result is
// bit-identical to the single-threaded one (the harness reduces in seed
// order, so anything else is a bug). ERT_BENCH_SMOKE=1 shrinks the network
// for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "harness/experiment.h"
#include "harness/parallel.h"
#include "json_writer.h"

namespace {

using ert::harness::ExperimentResult;

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Bitwise comparison of every scalar an averaged result carries.
bool identical(const ExperimentResult& a, const ExperimentResult& b) {
  return bits_equal(a.p99_max_congestion, b.p99_max_congestion) &&
         bits_equal(a.mean_max_congestion, b.mean_max_congestion) &&
         bits_equal(a.min_cap_node_congestion, b.min_cap_node_congestion) &&
         bits_equal(a.p99_share, b.p99_share) &&
         a.heavy_encounters == b.heavy_encounters &&
         bits_equal(a.avg_path_length, b.avg_path_length) &&
         bits_equal(a.lookup_time.mean, b.lookup_time.mean) &&
         bits_equal(a.lookup_time.p01, b.lookup_time.p01) &&
         bits_equal(a.lookup_time.p99, b.lookup_time.p99) &&
         bits_equal(a.avg_timeouts, b.avg_timeouts) &&
         bits_equal(a.max_indegree.mean, b.max_indegree.mean) &&
         bits_equal(a.max_indegree.p99, b.max_indegree.p99) &&
         bits_equal(a.max_outdegree.mean, b.max_outdegree.mean) &&
         bits_equal(a.max_outdegree.p99, b.max_outdegree.p99) &&
         a.completed_lookups == b.completed_lookups &&
         a.dropped_lookups == b.dropped_lookups &&
         bits_equal(a.sim_duration, b.sim_duration) &&
         a.final_nodes == b.final_nodes;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  const char* out_path = argc > 1 ? argv[1] : "BENCH_seed_scaling.json";
  const int seeds = 8;

  ert::SimParams p;
  p.seed = 42;
  p.lookup_rate = 16.0;
  if (smoke) {
    p.num_nodes = 256;
    p.dimension = ert::harness::fit_dimension(p.num_nodes);
    p.num_lookups = 400;
  } else {
    p.num_nodes = 1024;
    p.dimension = ert::harness::fit_dimension(p.num_nodes);
    p.num_lookups = 2000;
  }
  const auto proto = ert::harness::Protocol::kErtAF;

  // Two distinct counts: `effective` is what the fan-out will actually use
  // by default (ERT_THREADS overrides it), `cores` is the physical truth.
  // They were previously conflated — default_threads() was recorded under
  // the key "hardware_concurrency", so an ERT_THREADS=2 run on a 64-core
  // box claimed 2 cores.
  const int effective = ert::harness::default_threads();
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int cores = hw_raw ? static_cast<int>(hw_raw) : 1;
  std::vector<int> thread_counts{1, 2, 4};
  if (effective > 4) thread_counts.push_back(effective);

  struct Run {
    int threads;
    double seconds;
    bool identical;
  };
  std::vector<Run> runs;
  ExperimentResult single;
  for (const int t : thread_counts) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = ert::harness::run_averaged(
        p, proto, seeds, ert::harness::SubstrateKind::kCycloid, t);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (t == 1) single = r;
    runs.push_back(Run{t, secs, identical(single, r)});
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_seed_scaling: open output");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "seed_scaling");
  w.field("smoke", smoke);
  w.field("seeds", seeds);
  w.field("effective_threads", effective);
  w.field("hardware_concurrency", cores);
  w.key("params");
  w.begin_object();
  w.field("protocol", "ERT/AF");
  w.field("nodes", p.num_nodes);
  w.field("lookups", p.num_lookups);
  w.field("rate", p.lookup_rate);
  w.end_object();
  w.key("runs");
  w.begin_array();
  for (const Run& r : runs) {
    w.begin_object();
    w.field("threads", r.threads);
    w.field("seconds", r.seconds);
    w.field("speedup", runs.front().seconds / r.seconds);
    w.field("identical_to_single_thread", r.identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
  std::fclose(f);

  bool all_identical = true;
  for (const Run& r : runs) {
    std::printf("threads %2d   %7.2f s   speedup %.2fx   %s\n", r.threads,
                r.seconds, runs.front().seconds / r.seconds,
                r.identical ? "bit-identical" : "MISMATCH");
    all_identical = all_identical && r.identical;
  }
  std::printf("wrote %s\n", out_path);
  return all_identical ? 0 : 1;
}
