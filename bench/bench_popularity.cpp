// Nonuniform and time-varying file popularity — the introduction's
// motivating scenario ("files stored in the system often have different
// popularities and the access patterns to the same file may vary with
// time"), beyond the single impulse of Fig. 8.
//
//  (a) popularity skew sweep: lookups drawn Zipf(s) over a 200-key catalog.
//  (b) drift: the popularity ranking reshuffles every T_d seconds — static
//      assignment cannot follow it, periodic adaptation (Algorithm 3) can.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  using ert::harness::Protocol;
  print_header("Popularity", "Zipf-skewed and drifting key popularity");

  std::printf("\n(a) skew sweep, 200-key catalog, Zipf exponent s\n");
  ert::TablePrinter a({"s", "Base heavy", "ERT/A", "ERT/AF", "Base time",
                       "ERT/A time", "ERT/AF time"});
  for (double s : {0.0, 0.6, 1.0, 1.4}) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = 3000;
    if (s > 0) {
      p.zipf_catalog = 200;
      p.zipf_exponent = s;
    }
    std::vector<std::string> row{s == 0.0 ? std::string("uniform")
                                          : ert::fmt_num(s, 1)};
    std::vector<double> heavy, time;
    for (auto proto : {Protocol::kBase, Protocol::kErtA, Protocol::kErtAF}) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      heavy.push_back(static_cast<double>(r.heavy_encounters));
      time.push_back(r.lookup_time.mean);
    }
    for (double h : heavy) row.push_back(ert::fmt_num(h, 0));
    for (double t : time) row.push_back(ert::fmt_num(t, 1));
    a.add_row(std::move(row));
  }
  a.print();

  std::printf(
      "\n(b) drifting popularity (s = 1.2): ranking reshuffles every T_d\n");
  ert::TablePrinter b({"drift period", "Base heavy", "ERT/A heavy",
                       "ERT/AF heavy", "ERT/AF time"});
  for (double drift : {0.0, 60.0, 20.0}) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = 3000;
    p.zipf_catalog = 200;
    p.zipf_exponent = 1.2;
    p.zipf_drift_period = drift;
    std::vector<std::string> row{
        drift == 0.0 ? std::string("static") : ert::fmt_num(drift, 0) + " s"};
    double ert_af_time = 0;
    for (auto proto : {Protocol::kBase, Protocol::kErtA, Protocol::kErtAF}) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      row.push_back(std::to_string(r.heavy_encounters));
      if (proto == Protocol::kErtAF) ert_af_time = r.lookup_time.mean;
    }
    row.push_back(ert::fmt_num(ert_af_time, 1));
    b.add_row(std::move(row));
  }
  b.print();
  std::printf(
      "\nSkew concentrates load on the hot keys' owners; ERT absorbs it,\n"
      "and because adaptation is periodic it keeps absorbing it when the\n"
      "hot set moves — the scenario static id-space balancing cannot track\n"
      "(the paper's core argument against VS-style approaches).\n");
  return 0;
}
