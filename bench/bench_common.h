// Shared configuration for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper's Sec. 5.
// Parameters follow Table 2 exactly except the lookup arrival rate: the
// paper's stated 1 lookup/s cannot produce any queueing at its own service
// times (see DESIGN.md "Load / congestion model"), so the harness runs at
// 16 lookups/s, which places the simulated network in the congestion
// regime the paper's figures display. Override with ERT_BENCH_RATE.
// ERT_BENCH_SEEDS (default 2) controls how many seeds are averaged.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table_printer.h"
#include "harness/experiment.h"
#include "harness/protocol.h"

namespace ertbench {

inline double bench_rate() {
  if (const char* e = std::getenv("ERT_BENCH_RATE")) return std::atof(e);
  return 16.0;
}

inline int bench_seeds() {
  if (const char* e = std::getenv("ERT_BENCH_SEEDS")) return std::atoi(e);
  return 2;
}

/// Table 2 defaults with the calibrated arrival rate.
inline ert::SimParams paper_defaults() {
  ert::SimParams p;
  p.lookup_rate = bench_rate();
  p.seed = 42;
  return p;
}

inline std::vector<std::string> protocol_headers(const std::string& x_name) {
  std::vector<std::string> h{x_name};
  for (auto proto : ert::harness::kAllProtocols)
    h.emplace_back(ert::harness::to_string(proto));
  return h;
}

/// Runs all six protocols at one sweep point and returns one metric each.
/// The (protocol, seed) grid fans out across the harness thread pool
/// (ERT_THREADS overrides the worker count); results are reduced in seed
/// order, so the numbers match a sequential run bit for bit.
template <typename MetricFn>
std::vector<double> run_all_protocols(const ert::SimParams& params,
                                      MetricFn metric) {
  std::vector<ert::harness::SweepJob> jobs;
  jobs.reserve(ert::harness::kAllProtocols.size());
  for (auto proto : ert::harness::kAllProtocols) {
    ert::harness::SweepJob job;
    job.params = params;
    job.protocol = proto;
    job.seeds = bench_seeds();
    jobs.push_back(job);
  }
  const auto results = ert::harness::run_sweep(jobs);
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(metric(r));
  return out;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(rate %.0f lookups/s, %d seed(s) averaged)\n", bench_rate(),
              bench_seeds());
  std::printf("=====================================================\n");
}

}  // namespace ertbench
