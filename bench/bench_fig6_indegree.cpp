// Figure 6: indegrees of nodes in plain Cycloid by dimension.
//
// The paper observes that base Cycloid tables split nodes into a
// low-indegree group and a high-indegree group (indegree 14..22 as the
// dimension goes 6..10), the high group being 10-15% of nodes — the
// structural query-load imbalance that motivates ERT. This bench builds
// plain (Base) Cycloid overlays and prints the indegree distribution.
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "cycloid/overlay.h"

int main() {
  using namespace ert;
  using namespace ert::cycloid;
  std::printf(
      "Figure 6 — indegree distribution of plain Cycloid routing tables\n\n");

  TablePrinter t({"dim", "nodes", "modal indeg", "max indeg", "p99 indeg",
                  "high-indeg nodes", "high %"});
  for (int d = 6; d <= 10; ++d) {
    OverlayOptions opts;
    opts.dimension = d;
    Overlay o(opts);
    IdSpace space(d);
    // Full Cycloid for d <= 8; the paper holds n at 2048, so larger
    // dimensions are partially occupied.
    const std::size_t n =
        std::min<std::size_t>(2048, static_cast<std::size_t>(space.size()));
    Rng rng(7);
    if (n == space.size()) {
      for (std::uint64_t lv = 0; lv < space.size(); ++lv)
        o.add_node(space.from_linear(lv), 1.0, 1 << 20, 0.8);
    } else {
      for (std::size_t i = 0; i < n; ++i)
        o.add_node_random(rng, 1.0, 1 << 20, 0.8);
    }
    for (dht::NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);

    std::map<std::size_t, std::size_t> hist;
    Percentiles pct;
    for (dht::NodeIndex i = 0; i < o.num_slots(); ++i) {
      const std::size_t indeg = o.node(i).inlinks.size();
      ++hist[indeg];
      pct.add(static_cast<double>(indeg));
    }
    std::size_t modal = 0, modal_count = 0, max_in = 0;
    for (const auto& [k, c] : hist) {
      if (c > modal_count) {
        modal = k;
        modal_count = c;
      }
      max_in = std::max(max_in, k);
    }
    // "High-indegree" nodes: well above the modal group (the paper's
    // second mode). Use 1.5x modal as the split.
    std::size_t high = 0;
    for (const auto& [k, c] : hist)
      if (static_cast<double>(k) > 1.5 * static_cast<double>(modal)) high += c;
    t.add_row({std::to_string(d), std::to_string(n), std::to_string(modal),
               std::to_string(max_in), fmt_num(pct.percentile(99), 0),
               std::to_string(high),
               fmt_num(100.0 * static_cast<double>(high) /
                           static_cast<double>(n),
                       1)});
  }
  t.print();
  std::printf(
      "\nPaper: high-indegree nodes are 10-15%% of the network and their\n"
      "indegree grows with the dimension — the imbalance ERT corrects.\n");
  return 0;
}
