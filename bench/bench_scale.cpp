// End-to-end scale tracker: the full ERT pipeline (Poisson queries +
// overload probing + Algorithm 3 shed/grow + churn) run at figure scale,
// gated on peak memory and throughput (BENCH_scale.json).
//
//   bench_scale [output.json]     (default BENCH_scale.json)
//
// Non-smoke rows:
//   cycloid  n = 2^17, 1M lookups   the partial-cycloid boundary-hub regime
//   chord    n = 2^20, 2M lookups   the million-node criterion
//
// The Cycloid row reports a substantial `dropped` count by design: a
// partial Cycloid (any n that is not d * 2^d leaves upper levels empty)
// funnels traffic through boundary hub nodes that shed against the
// ingress cap even at low mean utilization. Settled (completed +
// dropped) must still equal the lookup count for the row to pass.
//
// Both rows run ERT/AF with churn, the workload clock compressed 8x
// relative to the calibrated 2048-node figure runs: the arrival rate is
// 128 * n / 2048 lookups/s and the Table-2 service times shrink by the
// same factor, so per-node utilization stays at calibrated parity while
// the injection window fits CI. The adaptation period stretches to
// T = 8 s so the management plane stays a bounded fraction of the run,
// and a 64-query ingress queue cap lets the statistically inevitable
// unstable node at this n bound the drain tail by shedding arrivals as
// overload drops instead of queueing O(run length).
// The gates are what the memory-diet refactor promises: process peak RSS
// stays under 6 GiB through the 2^20 run, and sustained end-to-end
// throughput stays above the floor. Exit code 1 when a gate fails, so perf
// regressions fail loudly rather than drifting.
//
// ERT_BENCH_SMOKE=1 shrinks to one 4096-node row with proportionally lenient
// gates so CI finishes in seconds.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rss.h"
#include "harness/experiment.h"
#include "json_writer.h"

namespace {

using ert::harness::Protocol;
using ert::harness::SubstrateKind;

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

struct ScaleRow {
  const char* name;
  SubstrateKind kind;
  std::size_t nodes;
  std::size_t lookups;
  double qps_floor;  ///< settled queries per wall second, sustained.
  /// 1 = serial engine; > 1 = sharded conservative-window PDES
  /// (docs/PDES.md). The chord row runs sharded so the artifact tracks the
  /// single-run million-node configuration, not just seed fan-out.
  int sim_threads;
};

constexpr std::size_t kRssGateKb = 6u * 1024u * 1024u;  // 6 GiB

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_scale.json";
  const bool smoke = smoke_mode();

  std::vector<ScaleRow> rows;
  if (smoke) {
    rows.push_back({"cycloid_smoke", SubstrateKind::kCycloid, 4096, 20'000,
                    /*qps_floor=*/500.0, /*sim_threads=*/1});
    rows.push_back({"chord_smoke_pdes4", SubstrateKind::kChord, 4096, 20'000,
                    /*qps_floor=*/500.0, /*sim_threads=*/4});
  } else {
    rows.push_back({"cycloid_2e17", SubstrateKind::kCycloid,
                    std::size_t{1} << 17, 1'000'000, /*qps_floor=*/1000.0,
                    /*sim_threads=*/1});
    rows.push_back({"chord_2e20_pdes4", SubstrateKind::kChord,
                    std::size_t{1} << 20, 2'000'000, /*qps_floor=*/1000.0,
                    /*sim_threads=*/4});
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_scale: open");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "scale");
  w.field("smoke", smoke);
  w.field("rss_gate_kb", static_cast<std::uint64_t>(kRssGateKb));
  w.key("rows");
  w.begin_array();

  bool all_pass = true;
  for (const ScaleRow& row : rows) {
    ert::SimParams p;
    p.num_nodes = row.nodes;
    p.num_lookups = row.lookups;
    p.lookup_rate = 128.0 * static_cast<double>(row.nodes) / 2048.0;
    p.light_service_time = 0.2 / 8.0;
    p.heavy_service_time = 1.0 / 8.0;
    p.churn_interarrival = 1.0;
    p.adapt_period = 8.0;
    p.queue_cap = 64;
    p.seed = 42;
    p.sim_threads = row.sim_threads;
    p.dimension = ert::harness::fit_dimension(p.num_nodes);

    std::printf("bench_scale: %s n=%zu lookups=%zu rate=%.0f/s ...\n",
                row.name, row.nodes, row.lookups, p.lookup_rate);
    std::fflush(stdout);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r =
        ert::harness::run_experiment(p, Protocol::kErtAF, row.kind);
    const double wall = seconds_since(t0);
    const std::size_t settled = r.completed_lookups + r.dropped_lookups;
    const double qps = wall > 0 ? static_cast<double>(settled) / wall : 0.0;
    const std::size_t rss_kb = ert::peak_rss_kb();
    const bool rss_ok = rss_kb <= kRssGateKb;
    const bool qps_ok = qps >= row.qps_floor;
    const bool complete_ok = settled == row.lookups;
    const bool pass = rss_ok && qps_ok && complete_ok;
    all_pass = all_pass && pass;

    w.begin_object();
    w.field("name", row.name);
    w.field("substrate", ert::harness::to_string(row.kind));
    w.field("protocol", "ERT/AF");
    w.field("nodes", static_cast<std::uint64_t>(row.nodes));
    w.field("lookups", static_cast<std::uint64_t>(row.lookups));
    w.field("rate", p.lookup_rate);
    w.field("sim_threads", row.sim_threads);
    w.field("completed", static_cast<std::uint64_t>(r.completed_lookups));
    w.field("dropped", static_cast<std::uint64_t>(r.dropped_lookups));
    w.field("sim_duration", r.sim_duration);
    w.field("wall_seconds", wall);
    w.field("queries_per_sec", qps);
    w.field("qps_floor", row.qps_floor);
    w.field("peak_rss_kb", static_cast<std::uint64_t>(rss_kb));
    w.field("pass", pass);
    w.end_object();

    std::printf(
        "bench_scale: %s wall %.1f s, %.0f q/s (floor %.0f), peak RSS "
        "%.1f MiB (gate %.0f MiB) -> %s\n",
        row.name, wall, qps, row.qps_floor,
        static_cast<double>(rss_kb) / 1024.0,
        static_cast<double>(kRssGateKb) / 1024.0, pass ? "PASS" : "FAIL");
    std::fflush(stdout);
  }

  w.end_array();
  w.field("peak_rss_kb", static_cast<std::uint64_t>(ert::peak_rss_kb()));
  w.field("pass", all_pass);
  w.end_object();
  w.finish();
  std::fclose(f);
  std::printf("bench_scale: wrote %s\n", out_path);
  return all_pass ? 0 : 1;
}
