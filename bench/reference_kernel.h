// The pre-pooling event kernel, kept verbatim as the benchmark baseline.
//
// This is the seed implementation of ert::sim::Simulator: one
// std::make_shared<bool> per event for cancellation, a type-erased
// std::function callback stored inside the heap entry, and lazy pop-time
// skipping with no compaction. bench_kernel runs identical workloads
// through this and the pooled kernel so BENCH_sim_kernel.json records the
// speedup against a fixed reference rather than against a moving target.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace ertbench::refsim {

using Time = double;
using EventFn = std::function<void()>;

class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_ && *alive_) {
      *alive_ = false;
      if (live_counter_) --*live_counter_;
    }
  }
  bool pending() const { return alive_ && *alive_; }

  EventHandle(std::shared_ptr<bool> alive,
              std::shared_ptr<std::size_t> live_counter)
      : alive_(std::move(alive)), live_counter_(std::move(live_counter)) {}

 private:
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::size_t> live_counter_;
};

class Simulator {
 public:
  Time now() const { return now_; }

  EventHandle schedule(Time delay, EventFn fn) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::move(fn));
  }

  EventHandle schedule_at(Time when, EventFn fn) {
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{when, next_seq_++, std::move(fn), alive});
    ++*live_;
    return EventHandle{std::move(alive), live_};
  }

  std::size_t run() {
    std::size_t executed = 0;
    Event ev;
    while (pop_next(ev)) {
      now_ = ev.when;
      *ev.alive = false;
      ev.fn();
      ++executed;
    }
    return executed;
  }

  bool empty() const { return *live_ == 0; }
  std::size_t pending_events() const { return *live_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Event& out) {
    while (!queue_.empty()) {
      out = queue_.top();
      queue_.pop();
      if (*out.alive) {
        --*live_;
        return true;
      }
    }
    return false;
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_ = std::make_shared<std::size_t>(0);
};

}  // namespace ertbench::refsim
