// Wire-format perf tracker: encode/decode microbench plus the end-to-end
// cost of --bytes accounting (BENCH_wire.json).
//
//   bench_wire [output.json]      (default BENCH_wire.json)
//
// Two layers, matching the docs/WIRE.md perf contract:
//   - microbench: per-type encode and decode throughput on a hot stack
//     buffer. Gates: probe encode and decode >= 5M frames/s; forward with
//     an 8-entry A set >= 2M frames/s (both far below real hardware, so a
//     gate trip means an algorithmic regression, not noise).
//   - end-to-end: a full ERT/AF run with the meter off vs on, best of
//     three walls each. Gates: overhead <= 10%, and every scalar metric
//     bit-identical between the two runs (the observational contract) —
//     checked at n = 2048 always and at the n = 2^17 --scale preset in
//     full mode.
//
// ERT_BENCH_SMOKE=1 shrinks the e2e run and skips the 2^17 row; the
// microbench gates still apply.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "harness/experiment.h"
#include "json_writer.h"
#include "wire/wire.h"

namespace {

using ert::harness::ExperimentResult;
using ert::harness::Protocol;
using ert::harness::SubstrateKind;

bool smoke_mode() {
  const char* e = std::getenv("ERT_BENCH_SMOKE");
  return e && *e && std::string(e) != "0";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over the bit patterns of every scalar the result carries, so
/// "identical" means identical doubles, not identical printf roundings.
class Checksum {
 public:
  void add(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    add(bits);
  }
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t get() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t result_checksum(const ExperimentResult& r) {
  Checksum c;
  c.add(r.p99_max_congestion);
  c.add(r.mean_max_congestion);
  c.add(r.min_cap_node_congestion);
  c.add(r.p99_share);
  c.add(static_cast<std::uint64_t>(r.heavy_encounters));
  c.add(r.avg_path_length);
  c.add(r.lookup_time.mean);
  c.add(r.lookup_time.p01);
  c.add(r.lookup_time.p99);
  c.add(r.avg_timeouts);
  c.add(r.max_indegree.mean);
  c.add(r.max_indegree.p99);
  c.add(r.max_outdegree.mean);
  c.add(r.max_outdegree.p99);
  c.add(static_cast<std::uint64_t>(r.completed_lookups));
  c.add(static_cast<std::uint64_t>(r.dropped_lookups));
  c.add(r.sim_duration);
  c.add(static_cast<std::uint64_t>(r.final_nodes));
  c.add(static_cast<std::uint64_t>(r.adapt_sheds));
  c.add(static_cast<std::uint64_t>(r.adapt_grows));
  return c.get();
}

struct MicroRow {
  const char* name;
  std::size_t frame_bytes;
  double encode_mfps;  ///< million frames per second.
  double decode_mfps;
};

/// Times `iters` encodes and decodes of one message; the varying low field
/// defeats constant folding and the accumulated sizes defeat dead-code
/// elimination.
template <typename M>
MicroRow bench_codec(const char* name, M& msg, std::uint64_t* vary,
                     long iters) {
  std::uint8_t buf[ert::wire::kMaxFrameBytes];
  std::uint64_t sink = 0;

  auto t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; ++i) {
    *vary = static_cast<std::uint64_t>(i) & 0x3FFF;
    sink += ert::wire::encode(msg, buf, sizeof buf);
  }
  const double enc_wall = seconds_since(t0);

  *vary = 0x2A;
  const std::size_t size = ert::wire::encode(msg, buf, sizeof buf);
  t0 = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; ++i) {
    const auto r = ert::wire::decode(buf, size);
    sink += r.consumed + r.msg.f[0];
  }
  const double dec_wall = seconds_since(t0);

  if (sink == 0xdead) std::printf("impossible\n");  // keep `sink` live
  MicroRow row;
  row.name = name;
  row.frame_bytes = size;
  row.encode_mfps = static_cast<double>(iters) / enc_wall / 1e6;
  row.decode_mfps = static_cast<double>(iters) / dec_wall / 1e6;
  std::printf("micro %-12s %3zu B   encode %7.1f M/s   decode %7.1f M/s\n",
              name, size, row.encode_mfps, row.decode_mfps);
  return row;
}

struct E2eRow {
  std::size_t nodes;
  std::size_t lookups;
  double wall_off;
  double wall_on;
  double overhead;  ///< wall_on / wall_off - 1.
  bool metrics_identical;
};

E2eRow bench_e2e(const ert::SimParams& p, int reps) {
  ert::harness::ExperimentOptions off_opts;
  ert::harness::ExperimentOptions on_opts;
  on_opts.wire.bytes = true;

  E2eRow row;
  row.nodes = p.num_nodes;
  row.lookups = p.num_lookups;
  row.wall_off = 1e300;
  row.wall_on = 1e300;
  row.metrics_identical = true;
  // Interleave off/on reps so drift (thermal, cache state) hits both arms;
  // best-of-reps keeps scheduler noise out of a 10% gate.
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    const auto off = ert::harness::run_experiment(p, Protocol::kErtAF,
                                                  SubstrateKind::kChord,
                                                  off_opts);
    row.wall_off = std::min(row.wall_off, seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    const auto on = ert::harness::run_experiment(p, Protocol::kErtAF,
                                                 SubstrateKind::kChord,
                                                 on_opts);
    row.wall_on = std::min(row.wall_on, seconds_since(t0));
    row.metrics_identical = row.metrics_identical &&
                            result_checksum(off) == result_checksum(on) &&
                            on.bytes.total_msgs() > 0;
  }
  row.overhead = row.wall_on / row.wall_off - 1.0;
  std::printf(
      "e2e n=%-7zu off %6.2f s   on %6.2f s   overhead %+5.1f%%   %s\n",
      row.nodes, row.wall_off, row.wall_on, 100.0 * row.overhead,
      row.metrics_identical ? "bit-identical" : "METRIC MISMATCH");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_wire.json";
  const bool smoke = smoke_mode();
  const long iters = smoke ? 400'000 : 4'000'000;

  std::vector<MicroRow> micro;
  {
    ert::wire::Probe probe{7, 1234, 56789, 3};
    micro.push_back(bench_codec("probe", probe, &probe.queue_len, iters));
  }
  {
    ert::wire::ProbeReply reply{7, 56789, 1234, 3};
    micro.push_back(bench_codec("probe-reply", reply, &reply.queue_len, iters));
  }
  std::size_t aset[64];
  for (std::size_t i = 0; i < 64; ++i) aset[i] = 1000 + 37 * i;
  {
    ert::wire::Forward fwd{7, 987654321, 1234, 56789, 5, false, 8, aset};
    micro.push_back(bench_codec("forward-a8", fwd, &fwd.hops, iters));
  }
  {
    ert::wire::Forward fwd{7, 987654321, 1234, 56789, 5, true, 64, aset};
    micro.push_back(bench_codec("forward-a64", fwd, &fwd.hops, iters));
  }
  {
    ert::wire::AdaptShed shed{1234, 2};
    micro.push_back(bench_codec("adapt-shed", shed, &shed.delta, iters));
  }
  {
    ert::wire::BackwardAdd add{1234, 56789, 12};
    micro.push_back(bench_codec("backward-add", add, &add.indegree_after,
                                iters));
  }
  {
    ert::wire::Join join{1234, 567};
    micro.push_back(bench_codec("join", join, &join.overlay, iters));
  }
  {
    ert::wire::Leave leave{1234};
    micro.push_back(bench_codec("leave", leave, &leave.node, iters));
  }

  bool micro_ok = true;
  for (const MicroRow& r : micro) {
    const double floor_mfps =
        std::strncmp(r.name, "forward", 7) == 0 ? 2.0 : 5.0;
    if (r.encode_mfps < floor_mfps || r.decode_mfps < floor_mfps) {
      std::printf("micro gate MISSED on %s (floor %.0f M/s)\n", r.name,
                  floor_mfps);
      micro_ok = false;
    }
  }

  std::vector<E2eRow> e2e;
  {
    ert::SimParams p;  // Table-2 defaults: n = 2048, 3000 lookups.
    p.seed = 42;
    if (smoke) p.num_lookups = 1000;
    e2e.push_back(bench_e2e(p, smoke ? 2 : 3));
  }
  if (!smoke) {
    // The --scale preset at n = 2^17 (bench_pdes workload clock): the
    // overhead gate must hold when the meter charges a million links.
    ert::SimParams p;
    p.seed = 42;
    p.num_nodes = std::size_t{1} << 17;
    p.num_lookups = 200'000;
    p.lookup_rate = 128.0 * static_cast<double>(p.num_nodes) / 2048.0;
    p.light_service_time = 0.2 / 8.0;
    p.heavy_service_time = 1.0 / 8.0;
    p.queue_cap = 64;
    p.dimension = ert::harness::fit_dimension(p.num_nodes);
    e2e.push_back(bench_e2e(p, 2));
  }

  bool e2e_ok = true;
  for (const E2eRow& r : e2e)
    e2e_ok = e2e_ok && r.metrics_identical && r.overhead <= 0.10;
  const bool pass = micro_ok && e2e_ok;

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_wire: open output");
    return 1;
  }
  ertbench::JsonWriter w(f);
  w.begin_object();
  w.field("bench", "wire");
  w.field("smoke", smoke);
  w.field("micro_iters", static_cast<std::uint64_t>(iters));
  w.key("micro");
  w.begin_array();
  for (const MicroRow& r : micro) {
    w.begin_object();
    w.field("message", r.name);
    w.field("frame_bytes", static_cast<std::uint64_t>(r.frame_bytes));
    w.field("encode_mframes_per_sec", r.encode_mfps);
    w.field("decode_mframes_per_sec", r.decode_mfps);
    w.end_object();
  }
  w.end_array();
  w.field("micro_gates_ok", micro_ok);
  w.key("e2e");
  w.begin_array();
  for (const E2eRow& r : e2e) {
    w.begin_object();
    w.field("nodes", static_cast<std::uint64_t>(r.nodes));
    w.field("lookups", static_cast<std::uint64_t>(r.lookups));
    w.field("wall_seconds_bytes_off", r.wall_off);
    w.field("wall_seconds_bytes_on", r.wall_on);
    w.field("bytes_on_overhead", r.overhead);
    w.field("metrics_identical", r.metrics_identical);
    w.end_object();
  }
  w.end_array();
  w.field("overhead_gate", 0.10);
  w.field("e2e_gates_ok", e2e_ok);
  w.field("pass", pass);
  w.end_object();
  w.finish();
  std::fclose(f);

  std::printf("micro gates %s, e2e gates %s -> %s; wrote %s\n",
              micro_ok ? "met" : "MISSED", e2e_ok ? "met" : "MISSED",
              pass ? "PASS" : "FAIL", out_path);
  return pass ? 0 : 1;
}
