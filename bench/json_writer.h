// Minimal streaming JSON writer for the BENCH_*.json perf artifacts.
//
// The benches emit flat, machine-diffable documents (see README.md for the
// schema); this writer only needs objects, arrays, strings, bools, and
// numbers. Commas and indentation are handled by a nesting stack, so the
// emitting code reads like the document it produces.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ertbench {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const char* k) {
    comma();
    indent();
    std::fprintf(f_, "\"%s\": ", k);
    pending_value_ = true;
  }

  void value(double v) { lead(); std::fprintf(f_, "%.6g", v); }
  void value(std::uint64_t v) { lead(); std::fprintf(f_, "%llu", static_cast<unsigned long long>(v)); }
  void value(int v) { lead(); std::fprintf(f_, "%d", v); }
  void value(bool v) { lead(); std::fprintf(f_, "%s", v ? "true" : "false"); }
  void value(const char* s) { lead(); std::fprintf(f_, "\"%s\"", s); }
  void value(const std::string& s) { value(s.c_str()); }

  template <typename T>
  void field(const char* k, T v) {
    key(k);
    value(v);
  }

  void finish() { std::fprintf(f_, "\n"); }

 private:
  void open(char c) {
    lead();
    std::fprintf(f_, "%c", c);
    stack_.push_back(false);
  }

  void close(char c) {
    stack_.pop_back();
    std::fprintf(f_, "\n");
    indent();
    std::fprintf(f_, "%c", c);
  }

  /// Emitted before any value or container: either this is a keyed value
  /// (key() already printed "k": ) or an array element needing comma+indent.
  void lead() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    comma();
    indent();
  }

  void comma() {
    if (stack_.empty()) return;
    if (stack_.back()) std::fprintf(f_, ",");
    stack_.back() = true;
    std::fprintf(f_, "\n");
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) std::fprintf(f_, "  ");
  }

  std::FILE* f_;
  std::vector<bool> stack_;
  bool pending_value_ = false;
};

}  // namespace ertbench
