// Adaptation dynamics over time (Algorithm 3 in motion).
//
// The paper argues the periodic indegree adaptation drives every node's
// congestion toward g ~ 1 ("a node's capacity is fully utilized and it is
// also not overloaded"). This bench traces the network second by second
// under a sustained load and shows the time series for Base (no control),
// ERT/A (adaptation only) and ERT/AF — congestion converging and mean
// indegree settling as Theorem 3.2 predicts.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  using ert::harness::Protocol;
  print_header("Timeline", "adaptation dynamics, one sample per second");

  ert::SimParams p = paper_defaults();
  p.num_lookups = 4000;
  p.trace_timeline = true;

  const Protocol protos[] = {Protocol::kBase, Protocol::kErtA,
                             Protocol::kErtAF};
  std::vector<ert::harness::ExperimentResult> results;
  for (Protocol proto : protos)
    results.push_back(ert::harness::run_experiment(p, proto));

  std::printf("\nheavy nodes now / lookups in flight / ERT mean indegree\n");
  ert::TablePrinter t({"t (s)", "heavy: Base", "ERT/A", "ERT/AF",
                       "in flight: Base", "ERT/AF", "ERT/AF indeg"});
  const std::size_t len = results[0].timeline.size();
  for (std::size_t i = 0; i < len; i += std::max<std::size_t>(1, len / 24)) {
    std::vector<std::string> row{
        ert::fmt_num(results[0].timeline[i].time, 0)};
    for (int j = 0; j < 3; ++j) {
      row.push_back(i < results[j].timeline.size()
                        ? std::to_string(results[j].timeline[i].heavy_nodes)
                        : "-");
    }
    for (int j : {0, 2}) {
      row.push_back(i < results[j].timeline.size()
                        ? std::to_string(results[j].timeline[i].in_flight)
                        : "-");
    }
    row.push_back(i < results[2].timeline.size()
                      ? ert::fmt_num(results[2].timeline[i].mean_indegree, 1)
                      : "-");
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nBase carries a persistently larger backlog (its hot spots serve at\n"
      "the heavy 1 s rate and keep queues pinned), while ERT sheds inlinks\n"
      "at hot nodes and grows them at idle ones: fewer heavy nodes at any\n"
      "instant, a smaller in-flight population, and a mean indegree that\n"
      "decelerates toward the structural expansion limit — the bounded\n"
      "growth Theorem 3.2 describes.\n");
  return 0;
}
