// Pre-refactor ring directory, preserved verbatim for bench_build.
//
// This is dht::RingDirectory exactly as it stood before the counted-B-tree
// rewrite: two parallel sorted vectors, std::lower_bound for every query,
// and O(n) std::vector::insert / erase on every membership change — the
// representation that made network construction O(n²) and every churn join
// O(n). bench_build runs identical insert/erase/query workloads through
// this and through the rank-indexed directory in dht/ring.h and reports
// the speedup at each scale.
//
// Kept out of src/ on purpose: production code must not grow a second
// directory implementation, and this copy only changes when the bench's
// baseline is deliberately re-pinned.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "dht/types.h"

namespace ertbench::refring {

using ert::dht::kNoNode;
using ert::dht::NodeIndex;

/// An ordered, mutable set of occupied ids on a ring, with id -> NodeIndex
/// resolution. Backing store is a sorted vector: the simulator's overlays
/// change membership (churn) far less often than they query successors.
class RingDirectory {
 public:
  explicit RingDirectory(std::uint64_t modulus) : modulus_(modulus) {}

  bool insert(std::uint64_t id, NodeIndex node) {
    assert(modulus_ == 0 || id < modulus_);
    const std::size_t pos = lower_bound(id);
    if (pos < ids_.size() && ids_[pos] == id) return false;
    ids_.insert(ids_.begin() + static_cast<std::ptrdiff_t>(pos), id);
    owners_.insert(owners_.begin() + static_cast<std::ptrdiff_t>(pos), node);
    return true;
  }

  bool erase(std::uint64_t id) {
    const std::size_t pos = lower_bound(id);
    if (pos >= ids_.size() || ids_[pos] != id) return false;
    ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(pos));
    owners_.erase(owners_.begin() + static_cast<std::ptrdiff_t>(pos));
    return true;
  }

  bool contains(std::uint64_t id) const {
    const std::size_t pos = lower_bound(id);
    return pos < ids_.size() && ids_[pos] == id;
  }

  std::optional<NodeIndex> owner_of(std::uint64_t id) const {
    const std::size_t pos = lower_bound(id);
    if (pos < ids_.size() && ids_[pos] == id) return owners_[pos];
    return std::nullopt;
  }

  NodeIndex successor(std::uint64_t key) const {
    if (ids_.empty()) return kNoNode;
    std::size_t pos = lower_bound(key);
    if (pos == ids_.size()) pos = 0;  // wrap
    return owners_[pos];
  }

  std::uint64_t successor_id(std::uint64_t key) const {
    assert(!ids_.empty());
    std::size_t pos = lower_bound(key);
    if (pos == ids_.size()) pos = 0;
    return ids_[pos];
  }

  NodeIndex predecessor(std::uint64_t key) const {
    if (ids_.empty()) return kNoNode;
    std::size_t pos = lower_bound(key);
    pos = (pos == 0 ? ids_.size() : pos) - 1;
    return owners_[pos];
  }

  std::uint64_t predecessor_id(std::uint64_t key) const {
    assert(!ids_.empty());
    std::size_t pos = lower_bound(key);
    pos = (pos == 0 ? ids_.size() : pos) - 1;
    return ids_[pos];
  }

  std::size_t position_distance(std::uint64_t a, std::uint64_t b) const {
    return position_gap(position_of(a), position_of(b));
  }

  std::size_t position_of(std::uint64_t id) const {
    const std::size_t p = lower_bound(id);
    assert(p < ids_.size() && ids_[p] == id);
    return p;
  }

  std::size_t position_gap(std::size_t pa, std::size_t pb) const {
    const std::size_t fwd = pb >= pa ? pb - pa : ids_.size() - pa + pb;
    return std::min(fwd, ids_.size() - fwd);
  }

  std::uint64_t step_toward(std::uint64_t a, std::uint64_t b) const {
    assert(ids_.size() >= 2);
    const std::size_t pa = lower_bound(a);
    const std::size_t pb = lower_bound(b);
    assert(pa < ids_.size() && ids_[pa] == a);
    const std::size_t fwd = pb >= pa ? pb - pa : ids_.size() - pa + pb;
    const bool clockwise_shorter = fwd <= ids_.size() - fwd;
    const std::size_t next =
        clockwise_shorter ? (pa + 1) % ids_.size()
                          : (pa == 0 ? ids_.size() - 1 : pa - 1);
    return ids_[next];
  }

  std::vector<std::uint64_t> ids_in_range(std::uint64_t lo,
                                          std::uint64_t hi) const {
    std::vector<std::uint64_t> out;
    for (std::size_t pos = lower_bound(lo);
         pos < ids_.size() && ids_[pos] < hi; ++pos)
      out.push_back(ids_[pos]);
    return out;
  }

  std::vector<std::uint64_t> successors_of(std::uint64_t key,
                                           std::size_t k) const {
    std::vector<std::uint64_t> out;
    if (ids_.empty()) return out;
    k = std::min(k, ids_.size());
    std::size_t pos = lower_bound(key);
    if (pos < ids_.size() && ids_[pos] == key) ++pos;  // exclude key itself
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      if (pos >= ids_.size()) pos = 0;
      if (ids_[pos] == key) break;  // wrapped all the way around
      out.push_back(ids_[pos]);
      ++pos;
    }
    return out;
  }

  std::vector<std::uint64_t> predecessors_of(std::uint64_t key,
                                             std::size_t k) const {
    std::vector<std::uint64_t> out;
    if (ids_.empty()) return out;
    k = std::min(k, ids_.size());
    std::size_t pos = lower_bound(key);
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      pos = (pos == 0 ? ids_.size() : pos) - 1;
      if (ids_[pos] == key) break;
      out.push_back(ids_[pos]);
    }
    return out;
  }

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  std::uint64_t modulus() const { return modulus_; }
  const std::vector<std::uint64_t>& ids() const { return ids_; }

 private:
  std::size_t lower_bound(std::uint64_t id) const {
    return static_cast<std::size_t>(
        std::lower_bound(ids_.begin(), ids_.end(), id) - ids_.begin());
  }

  std::uint64_t modulus_;
  std::vector<std::uint64_t> ids_;        // sorted
  std::vector<NodeIndex> owners_;         // parallel to ids_
};

}  // namespace ertbench::refring
