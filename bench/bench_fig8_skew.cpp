// Figure 8: effect of skewed lookups (Sec. 5.4).
//
// An "impulse" of 100 nodes with ids in a contiguous interval all query
// the same 50 random keys, while the per-query process time on a light
// node sweeps 0.1..2.1 s (heavy nodes take 5x that).
//  (a) heavy nodes encountered in routings
//  (b) query processing time
//  (c) 99th percentile share
// Paper shape: VS collapses under skew (consecutive virtual servers land
// on the same real node) — worse than Base; ERT/AF handles the skew; NS
// keeps a high share (capacity bias wastes low-capacity nodes).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  print_header("Figure 8", "skewed 'impulse' lookups: 100 nodes -> 50 keys");

  ert::TablePrinter a(protocol_headers("proc time"));
  ert::TablePrinter b(protocol_headers("proc time"));
  ert::TablePrinter c(protocol_headers("proc time"));
  for (double light = 0.1; light <= 2.15; light += 0.5) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = 3000;
    p.impulse_nodes = 100;
    p.impulse_keys = 50;
    p.light_service_time = light;
    p.heavy_service_time = 5.0 * light;
    std::vector<double> va, vb, vc;
    for (auto proto : ert::harness::kAllProtocols) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      va.push_back(static_cast<double>(r.heavy_encounters));
      vb.push_back(r.lookup_time.mean);
      vc.push_back(r.p99_share);
    }
    a.add_row(light, va, 0);
    b.add_row(light, vb, 1);
    c.add_row(light, vc, 2);
  }
  std::printf("\n(a) heavy nodes encountered in routings (total)\n");
  a.print();
  std::printf("\n(b) average query processing time, seconds\n");
  b.print();
  std::printf("\n(c) 99th percentile share\n");
  c.print();
  return 0;
}
