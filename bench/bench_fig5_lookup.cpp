// Figure 5: effectiveness of congestion control on lookup efficiency.
//  (a) heavy nodes encountered in routings vs number of lookups
//  (b) lookup path length vs network size
//  (c) query processing time (avg / 1st / 99th percentile)
// Paper shape: ERT/AF far fewer heavy nodes than Base/NS/VS; VS clearly
// longer paths (virtual-server overlay inflation); ERT/AF lowest lookup
// time with both A and F contributing.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  print_header("Figure 5", "lookup efficiency under congestion control");

  // (a) heavy nodes in routings vs lookups.
  ert::TablePrinter a(protocol_headers("lookups"));
  for (std::size_t lookups = 1000; lookups <= 5000; lookups += 1000) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = lookups;
    a.add_row(static_cast<double>(lookups),
              run_all_protocols(p, [](const ert::harness::ExperimentResult& r) {
                return static_cast<double>(r.heavy_encounters);
              }),
              0);
  }
  std::printf("\n(a) heavy nodes encountered in routings (total)\n");
  a.print();

  // (b) path length vs network size.
  ert::TablePrinter b(protocol_headers("nodes"));
  for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    ert::SimParams p = paper_defaults();
    p.num_nodes = n;
    p.dimension = ert::harness::fit_dimension(n);
    p.num_lookups = 2000;
    b.add_row(static_cast<double>(n),
              run_all_protocols(p, [](const ert::harness::ExperimentResult& r) {
                return r.avg_path_length;
              }),
              2);
  }
  std::printf("\n(b) lookup path length vs network size\n");
  b.print();

  // (c) lookup time avg (p1, p99) vs lookups.
  std::printf("\n(c) query processing time, seconds: avg (p1, p99)\n");
  std::vector<std::string> headers{"lookups"};
  for (auto proto : ert::harness::kAllProtocols)
    headers.emplace_back(ert::harness::to_string(proto));
  ert::TablePrinter c(headers);
  for (std::size_t lookups = 1000; lookups <= 5000; lookups += 2000) {
    ert::SimParams p = paper_defaults();
    p.num_lookups = lookups;
    std::vector<std::string> row{std::to_string(lookups)};
    for (auto proto : ert::harness::kAllProtocols) {
      const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
      row.push_back(ert::fmt_num(r.lookup_time.mean, 1) + " (" +
                    ert::fmt_num(r.lookup_time.p01, 1) + ", " +
                    ert::fmt_num(r.lookup_time.p99, 1) + ")");
    }
    c.add_row(std::move(row));
  }
  c.print();
  return 0;
}
