// ERT across substrates. The paper lists CAN, Chord, Tapestry, Pastry and
// Cycloid as representative DHTs; it evaluates on constant-degree Cycloid
// and remarks that "simulations on other O(log n)-degree networks are
// expected to produce better results" (Sec. 5). This bench runs the same
// workload on Cycloid, Chord (loose fingers, Fig. 1) and Pastry (prefix
// tables, Fig. 3) and compares Base vs ERT/AF on each.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  using ert::harness::Protocol;
  using ert::harness::SubstrateKind;
  print_header("Substrates",
               "protocols across Cycloid / Chord / Pastry / CAN");

  ert::TablePrinter t({"substrate", "protocol", "p99 max congestion",
                       "p99 share", "heavy met", "path len", "lookup time"});
  for (auto kind : {SubstrateKind::kCycloid, SubstrateKind::kChord,
                    SubstrateKind::kPastry, SubstrateKind::kCan}) {
    for (auto proto : {Protocol::kBase, Protocol::kErtA, Protocol::kErtF,
                       Protocol::kErtAF}) {
      ert::SimParams p = paper_defaults();
      p.num_lookups = 3000;
      const auto r =
          ert::harness::run_averaged(p, proto, bench_seeds(), kind);
      t.add_row({std::string(ert::harness::to_string(kind)),
                 std::string(ert::harness::to_string(proto)),
                 ert::fmt_num(r.p99_max_congestion, 2),
                 ert::fmt_num(r.p99_share, 2),
                 std::to_string(r.heavy_encounters),
                 ert::fmt_num(r.avg_path_length, 2),
                 ert::fmt_num(r.lookup_time.mean, 2)});
    }
  }
  t.print();
  std::printf(
      "\nShape: ERT improves share and heavy-node counts on every\n"
      "substrate. The log-degree substrates (Chord, Pastry) route in half\n"
      "the hops and start from a much better-balanced Base — consistent\n"
      "with the paper's remark that log-degree networks 'are expected to\n"
      "produce better results': there is simply less congestion left for\n"
      "ERT to remove there, and forwarding (F) carries most of the gain.\n");
  return 0;
}
