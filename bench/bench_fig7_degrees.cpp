// Figure 7: routing-table degrees under each congestion control protocol.
//  (a) maximum indegree per node: avg (1st, 99th percentile)
//  (b) maximum outdegree per node: avg (1st, 99th percentile)
// Paper shape: Base/NS/VS degrees do not change with load; ERT degrees
// adapt with load; VS degrees are by far the largest (virtual-server
// overlay inflation), so ERT's elasticity costs far less maintenance.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ertbench;
  print_header("Figure 7", "routing table degrees (per-node maxima)");

  for (const bool outdegree : {false, true}) {
    ert::TablePrinter t(protocol_headers("lookups"));
    for (std::size_t lookups = 1000; lookups <= 5000; lookups += 2000) {
      ert::SimParams p = paper_defaults();
      p.num_lookups = lookups;
      std::vector<std::string> row{std::to_string(lookups)};
      for (auto proto : ert::harness::kAllProtocols) {
        const auto r = ert::harness::run_averaged(p, proto, bench_seeds());
        const auto& s = outdegree ? r.max_outdegree : r.max_indegree;
        row.push_back(ert::fmt_num(s.mean, 1) + " (" +
                      ert::fmt_num(s.p01, 0) + ", " + ert::fmt_num(s.p99, 0) +
                      ")");
      }
      t.add_row(std::move(row));
    }
    std::printf("\n(%c) maximum %s: avg (p1, p99)\n", outdegree ? 'b' : 'a',
                outdegree ? "outdegree" : "indegree");
    t.print();
  }
  return 0;
}
