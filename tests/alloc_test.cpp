// Zero-allocation proof for the per-hop fast path (this binary replaces
// the global operator new with a counting hook).
//
// The tentpole claim of the fast-path refactor is that a steady-state
// routing hop — route_step through the substrate adapter plus the
// topology-aware forwarding decision — touches the heap not at all once
// the scratch buffers are warm. These tests pin that claim directly: warm
// a driver on every substrate, flip the counter on, run a window of full
// lookups, and assert the count stayed zero.
//
// ERT_THREADS (the same knob the experiment harness uses for per-seed
// fan-out) also runs that many independent drivers concurrently, each with
// its own substrate and scratch state, proving the fast path needs no
// shared mutable state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "dht/route_scratch.h"
#include "dht/routing_entry.h"
#include "ert/forwarding.h"
#include "harness/substrate.h"
#include "sim/sharded.h"
#include "wire/meter.h"
#include "wire/wire.h"

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  note_alloc();
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) != 0)
    return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ert::harness {
namespace {

using dht::NodeIndex;

/// One self-contained routing world: a substrate plus the scratch state a
/// per-seed engine would own. run_queries drives full lookups through the
/// adapter route_step and the templated forwarding fast path — the exact
/// call pattern of the experiment engine's hop loop, minus queueing.
struct Driver {
  std::unique_ptr<SubstrateOps> sub;
  dht::RouteScratch route_scratch;
  core::ForwardScratch fwd_scratch;
  core::OverloadedSet overloaded;
  Rng rng;
  std::size_t next_qid = 0;
  // Filled during the counting window, checked by gtest afterwards (EXPECT
  // itself allocates, so no asserts inside the window).
  std::size_t completed = 0;
  std::size_t hops = 0;
  bool route_failed = false;

  explicit Driver(SubstrateKind kind, std::uint64_t seed) : rng(seed) {
    SimParams params;
    params.num_nodes = 192;
    sub = make_substrate(kind, params, /*capacity_biased=*/false,
                         /*enforce_bounds=*/false,
                         /*ids_needed=*/2 * params.num_nodes,
                         [](NodeIndex, NodeIndex) { return 1.0; });
    for (std::size_t i = 0; i < params.num_nodes && !sub->id_space_full(); ++i)
      sub->add_node(rng, 1.0, 1 << 20, 0.8);
    for (NodeIndex i = 0; i < sub->num_slots(); ++i) sub->build_table(i, rng);
  }

  /// Pre-sizes every reusable buffer past anything the window can need and
  /// forces the OverloadedSet's one-time spill, so the counting window
  /// starts with warm capacity everywhere.
  void prewarm() {
    route_scratch.candidates.reserve(1024);
    route_scratch.ranked.reserve(1024);
    fwd_scratch.pool.reserve(1024);
    fwd_scratch.polled.reserve(64);
    fwd_scratch.results.reserve(64);
    fwd_scratch.light.reserve(64);
    fwd_scratch.sample.reserve(64);
    fwd_scratch.sample_pool.reserve(1024);
    fwd_scratch.newly_overloaded.reserve(64);
    for (std::size_t i = 0; i < core::kOverloadedSetCap; ++i)
      overloaded.insert(static_cast<NodeIndex>(i));
    overloaded.clear();
    run_queries(40);  // warm the adapter's per-query context storage too
  }

  void run_queries(int count) {
    core::TopoForwardOptions opts;
    opts.poll_size = 2;
    // Synthetic load probe, allocation-free by construction.
    const auto probe = [this](NodeIndex n) {
      core::ProbeResult r;
      const auto h = static_cast<std::uint64_t>(n) * 2654435761u;
      r.load = static_cast<double>(h % 23) / 8.0;
      r.heavy = (h & 7u) == 0;
      r.logical_distance = sub->logical_distance_to_key(n, 0);
      r.physical_distance = 1.0;
      r.unit_load = 0.25;
      return r;
    };
    for (int q = 0; q < count; ++q) {
      const std::size_t qid = next_qid++;
      NodeIndex cur = rng.index(sub->num_slots());
      const std::uint64_t key = rng.bits() % sub->key_space();
      sub->start_query(qid);
      overloaded.clear();
      for (int hop = 0; hop < 128; ++hop) {
        const HopStep step = sub->route_step(qid, cur, key, route_scratch);
        if (step.arrived) {
          ++completed;
          break;
        }
        const auto& cands = route_scratch.candidates;
        if (cands.empty()) {
          route_failed = true;
          break;
        }
        NodeIndex next = cands.front();
        dht::RoutingEntry* entry =
            step.slot != kNoSlot ? sub->entry(cur, step.slot) : nullptr;
        if (entry != nullptr && cands.size() > 1) {
          const core::ForwardStep f = core::forward_topology_aware(
              *entry, std::span<const NodeIndex>(cands), overloaded, opts,
              probe, rng, fwd_scratch);
          if (f.next != dht::kNoNode) next = f.next;
          for (NodeIndex o : fwd_scratch.newly_overloaded)
            if (overloaded.size() < core::kOverloadedSetCap)
              overloaded.insert(o);
        }
        cur = next;
        ++hops;
      }
      sub->finish_query(qid);
    }
  }
};

int thread_count() {
  const char* e = std::getenv("ERT_THREADS");
  if (!e || !*e) return 1;
  const int n = std::atoi(e);
  return n > 0 ? n : 1;
}

class AllocFreeHopLoop : public ::testing::TestWithParam<SubstrateKind> {};

TEST_P(AllocFreeHopLoop, SteadyStateWindowAllocatesNothing) {
  const int threads = thread_count();
  std::vector<std::unique_ptr<Driver>> drivers;
  for (int t = 0; t < threads; ++t) {
    drivers.push_back(
        std::make_unique<Driver>(GetParam(), 100 + static_cast<std::uint64_t>(t)));
    drivers.back()->prewarm();
  }

  // Threads are created (and their stacks allocated) before the counter
  // turns on; a spin flag releases them into the measurement window.
  std::atomic<bool> start{false};
  std::atomic<int> done{0};
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      drivers[static_cast<std::size_t>(t)]->run_queries(150);
      done.fetch_add(1, std::memory_order_release);
    });
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  start.store(true, std::memory_order_release);
  drivers[0]->run_queries(150);
  while (done.load(std::memory_order_acquire) != threads - 1) {}
  g_count_allocs.store(false);
  for (auto& th : pool) th.join();

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "heap allocations leaked into the steady-state hop loop on "
      << to_string(GetParam()) << " with " << threads << " thread(s)";
  for (const auto& d : drivers) {
    EXPECT_FALSE(d->route_failed);
    EXPECT_GT(d->completed, 0u);
    EXPECT_GT(d->hops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, AllocFreeHopLoop,
                         ::testing::Values(SubstrateKind::kCycloid,
                                           SubstrateKind::kChord,
                                           SubstrateKind::kPastry,
                                           SubstrateKind::kCan,
                                           SubstrateKind::kKademlia,
                                           SubstrateKind::kD1ht),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

/// The other steady-state path: the periodic adaptation sweep. Shedding
/// returns candidate/finger blocks to the slabs and growing reacquires
/// them, so once every size class and scratch vector has seen its peak the
/// shed/grow cycle must be heap-quiet too.
struct AdaptDriver {
  std::unique_ptr<SubstrateOps> sub;
  Rng rng;
  std::size_t shed_total = 0;
  std::size_t grown_total = 0;

  explicit AdaptDriver(SubstrateKind kind, std::uint64_t seed) : rng(seed) {
    SimParams params;
    params.num_nodes = 192;
    sub = make_substrate(kind, params, /*capacity_biased=*/false,
                         /*enforce_bounds=*/true,
                         /*ids_needed=*/2 * params.num_nodes,
                         [](NodeIndex, NodeIndex) { return 1.0; });
    for (std::size_t i = 0; i < params.num_nodes && !sub->id_space_full(); ++i)
      sub->add_node(rng, 1.0, /*max_indegree=*/8, 0.8);
    for (NodeIndex i = 0; i < sub->num_slots(); ++i) sub->build_table(i, rng);
  }

  /// One engine-shaped sweep: every node sheds a couple of inlinks (bound
  /// follows, as in Algorithm 3), then raises its bound and regrows.
  void sweep() {
    for (NodeIndex v = 0; v < sub->num_slots(); ++v) {
      if (!sub->alive(v)) continue;
      auto& budget = sub->budget(v);
      const int before = budget.max_indegree();
      budget.lower_bound_by(2);
      const int shed = sub->shed_indegree(v, 2);
      budget.raise_bound_by(std::max(1, before - shed) -
                            budget.max_indegree());
      shed_total += static_cast<std::size_t>(shed);
      budget.raise_bound_by(2);
      const int gained = sub->expand_indegree(v, 2, /*max_probes=*/24);
      if (gained < 2) budget.lower_bound_by(2 - gained);
      grown_total += static_cast<std::size_t>(gained);
    }
  }
};

class AllocFreeAdaptation : public ::testing::TestWithParam<SubstrateKind> {};

TEST_P(AllocFreeAdaptation, SteadyStateSweepsAllocateNothing) {
  const int threads = thread_count();
  std::vector<std::unique_ptr<AdaptDriver>> drivers;
  for (int t = 0; t < threads; ++t) {
    drivers.push_back(std::make_unique<AdaptDriver>(
        GetParam(), 300 + static_cast<std::uint64_t>(t)));
    // Generous warm-up: lets slab size classes, eviction scratch, and the
    // expansion enumerators reach their steady-state footprints.
    for (int s = 0; s < 50; ++s) drivers.back()->sweep();
  }

  std::atomic<bool> start{false};
  std::atomic<int> done{0};
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int s = 0; s < 10; ++s)
        drivers[static_cast<std::size_t>(t)]->sweep();
      done.fetch_add(1, std::memory_order_release);
    });
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  start.store(true, std::memory_order_release);
  for (int s = 0; s < 10; ++s) drivers[0]->sweep();
  while (done.load(std::memory_order_acquire) != threads - 1) {}
  g_count_allocs.store(false);
  for (auto& th : pool) th.join();

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "heap allocations leaked into the adaptation sweep on "
      << to_string(GetParam()) << " with " << threads << " thread(s)";
  for (const auto& d : drivers) {
    EXPECT_GT(d->shed_total, 0u);
    EXPECT_GT(d->grown_total, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, AllocFreeAdaptation,
                         ::testing::Values(SubstrateKind::kCycloid,
                                           SubstrateKind::kChord,
                                           SubstrateKind::kPastry,
                                           SubstrateKind::kCan,
                                           SubstrateKind::kKademlia,
                                           SubstrateKind::kD1ht),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

/// The sharded PDES kernel (docs/PDES.md): per-shard pooled queues, the
/// sender-owned mailbox lanes, and the window barrier exchange. After a
/// warm-up batch has sized every shard's slab/heap, every mailbox lane,
/// and the worker pool, running further event batches — including
/// cross-shard posts every few events — must be heap-silent.
struct ShardedKernelDriver {
  static constexpr sim::Time kLookahead = 0.010;

  sim::ShardedSimulator driver;
  std::vector<std::size_t> remaining;
  std::vector<std::size_t> fired;
  std::vector<std::size_t> received;  ///< cross-shard deliveries per shard.

  explicit ShardedKernelDriver(int shards)
      : driver(shards, kLookahead),
        remaining(static_cast<std::size_t>(shards), 0),
        fired(static_cast<std::size_t>(shards), 0),
        received(static_cast<std::size_t>(shards), 0) {
    driver.reserve_mailboxes(256);
  }

  /// Self-rescheduling per-shard chain; every fourth firing also posts a
  /// cross-shard message at the lookahead horizon (the exact transport
  /// pattern of the sharded engine's send_hop).
  void chain(int s) {
    const auto si = static_cast<std::size_t>(s);
    ++fired[si];
    if (driver.shards() > 1 && (fired[si] & 3u) == 0) {
      const int to = (s + 1) % driver.shards();
      driver.post(s, to, driver.shard(s).now() + kLookahead,
                  [this, to] { ++received[static_cast<std::size_t>(to)]; });
    }
    if (--remaining[si] == 0) return;
    driver.shard(s).schedule(0.004, [this, s] { chain(s); });
  }

  /// Seeds one chain per shard and drives the window loop to quiescence.
  void run_batch(std::size_t events_per_shard) {
    for (int s = 0; s < driver.shards(); ++s) {
      remaining[static_cast<std::size_t>(s)] = events_per_shard;
      driver.shard(s).schedule(0.004, [this, s] { chain(s); });
    }
    driver.run();
  }
};

class AllocFreeShardedKernel : public ::testing::TestWithParam<int> {};

TEST_P(AllocFreeShardedKernel, SteadyStateWindowsAllocateNothing) {
  ShardedKernelDriver d(GetParam());
  // Two warm-up batches: the first sizes slabs, heaps, and lanes; the
  // second proves those footprints are the steady state before counting.
  d.run_batch(300);
  d.run_batch(300);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  d.run_batch(300);
  g_count_allocs.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "heap allocations leaked into the sharded window loop with "
      << GetParam() << " shard(s)";
  for (int s = 0; s < d.driver.shards(); ++s)
    EXPECT_EQ(d.fired[static_cast<std::size_t>(s)], 900u);
  if (d.driver.shards() > 1) {
    std::size_t delivered = 0;
    for (const std::size_t r : d.received) delivered += r;
    EXPECT_GT(delivered, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(SimThreads, AllocFreeShardedKernel,
                         ::testing::Values(1, 4), [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

/// The wire serialize path (docs/WIRE.md): encode into an arena-pooled
/// buffer, account per-type and per-plane totals, and charge the link's
/// token bucket. After reserve_links has pre-created the buckets and the
/// pool, a steady-state window of sends — every message type, including
/// Forward frames carrying a full A set — must be heap-silent. Capture
/// mode is excluded by design: it appends to a growing string and is a
/// golden-test-only configuration.
TEST(AllocFreeWireSerialize, SteadyStateSendsAllocateNothing) {
  constexpr std::size_t kLinks = 64;
  wire::MeterConfig cfg;
  cfg.bytes = true;
  double now = 0.0;
  wire::ByteMeter meter(cfg, [&now] { return now; });
  meter.set_link_map([](std::size_t v) { return v % kLinks; });
  meter.reserve_links(kLinks);

  std::size_t aset[core::kOverloadedSetCap];
  for (std::size_t i = 0; i < core::kOverloadedSetCap; ++i)
    aset[i] = i * 2654435761u;
  Rng rng(41);

  // One warm lap over every type and link, then the counted window runs
  // the same mix — the warm lap proves nothing in it was one-time growth.
  std::uint64_t sent = 0;
  const auto lap = [&](int rounds) {
    for (int it = 0; it < rounds; ++it) {
      const std::uint64_t v = rng.bits();
      const std::size_t link = rng.index(kLinks);
      now += 0.001;
      sent += meter.send(wire::Probe{v, v >> 7, v >> 13, v & 0xFF}, link);
      sent += meter.send(wire::ProbeReply{v, v >> 13, v >> 7, v & 0xFF}, link);
      const auto len =
          static_cast<std::uint32_t>(rng.index(core::kOverloadedSetCap + 1));
      const std::uint32_t size = meter.send(
          wire::Forward{v, v >> 3, v >> 17, v >> 23, v & 0x3F,
                        (v & 1) != 0, len, aset},
          link);
      meter.in_flight_add(size);
      meter.in_flight_sub(size);
      sent += size;
      sent += meter.send(wire::AdaptShed{v >> 5, 2}, link);
      sent += meter.send(wire::AdaptGrow{v >> 5, 3}, link);
      meter.on_backward_add(v >> 9, v >> 11, 7);
      meter.on_backward_drop(v >> 9, v >> 11, 6);
      sent += meter.send(wire::Join{v >> 21, v & 0x7F}, link);
      sent += meter.send(wire::Leave{v >> 21}, link);
    }
  };
  lap(64);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  lap(256);
  g_count_allocs.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "heap allocations leaked into the wire serialize path";
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(meter.totals().total_msgs(), 320u * 9u);
  EXPECT_EQ(meter.totals().in_flight_bytes, 0u);
}

}  // namespace
}  // namespace ert::harness
