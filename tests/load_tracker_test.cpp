// Direct unit tests for LoadTracker's period-peak bookkeeping — the value
// Algorithm 3 adapts on and the invariant auditor reads mid-period.
#include "ert/load_tracker.h"

#include <gtest/gtest.h>

namespace ert::core {
namespace {

TEST(LoadTrackerPeriodPeak, TracksRunningMaximumWithinPeriod) {
  LoadTracker t;
  EXPECT_EQ(t.period_peak(), 0u);
  t.on_enqueue();
  t.on_enqueue();
  EXPECT_EQ(t.period_peak(), 2u);
  t.on_dequeue();
  // Dequeues never lower the peak: the period remembers the worst moment.
  EXPECT_EQ(t.period_peak(), 2u);
  t.on_enqueue();
  t.on_enqueue();
  EXPECT_EQ(t.period_peak(), 3u);
  EXPECT_EQ(t.queue_length(), 3u);
}

TEST(LoadTrackerPeriodPeak, EndPeriodResetsToCurrentQueueLength) {
  LoadTracker t;
  for (int i = 0; i < 5; ++i) t.on_enqueue();
  for (int i = 0; i < 3; ++i) t.on_dequeue();
  EXPECT_EQ(t.end_period(), 5u);
  // The backlog carried into the new period seeds its peak: a node that
  // still holds 2 queries did not drop to an idle peak of 0.
  EXPECT_EQ(t.period_peak(), 2u);
  t.on_dequeue();
  t.on_dequeue();
  EXPECT_EQ(t.queue_length(), 0u);
  EXPECT_EQ(t.period_peak(), 2u);
  EXPECT_EQ(t.end_period(), 2u);
  EXPECT_EQ(t.period_peak(), 0u);
}

TEST(LoadTrackerPeriodPeak, MatchesEndPeriodReturnValue) {
  LoadTracker t;
  t.on_enqueue();
  t.on_enqueue();
  t.on_dequeue();
  // The auditor's mid-period read must equal what end_period will report.
  EXPECT_EQ(t.period_peak(), 2u);
  EXPECT_EQ(t.end_period(), 2u);
}

TEST(LoadTrackerPeriodPeak, PeriodArrivalsResetIndependently) {
  LoadTracker t;
  t.on_enqueue();
  t.on_enqueue();
  EXPECT_EQ(t.period_arrivals(), 2u);
  t.end_period();
  EXPECT_EQ(t.period_arrivals(), 0u);
  // Arrivals reset to zero but the peak seeds from the live queue.
  EXPECT_EQ(t.period_peak(), 2u);
  t.on_enqueue();
  EXPECT_EQ(t.period_arrivals(), 1u);
  EXPECT_EQ(t.period_peak(), 3u);
}

TEST(LoadTrackerPeriodPeak, AllTimePeakSurvivesPeriods) {
  LoadTracker t;
  for (int i = 0; i < 4; ++i) t.on_enqueue();
  for (int i = 0; i < 4; ++i) t.on_dequeue();
  t.end_period();
  t.on_enqueue();
  t.end_period();
  EXPECT_EQ(t.all_time_peak(), 4u);
  EXPECT_EQ(t.period_peak(), 1u);
  EXPECT_EQ(t.cumulative_handled(), 5u);
}

TEST(LoadTrackerPeriodPeak, DequeueOnEmptyIsSafe) {
  LoadTracker t;
  t.on_dequeue();
  EXPECT_EQ(t.queue_length(), 0u);
  EXPECT_EQ(t.period_peak(), 0u);
  EXPECT_EQ(t.end_period(), 0u);
}

}  // namespace
}  // namespace ert::core
