// Analytical-model validation (ISSUE 7 acceptance criteria): the empirical
// hop-count CDF of each substrate must match its closed-form prediction
// within the pinned tolerance — Kademlia against the Roos-style XOR-msb
// recursion at n = 2048 and n = 2^14, Chord against the strict-Chord
// binomial envelope, D1HT against the single-hop guarantee (>= 99% of
// churn-free lookups in <= 1 hop).
#include <gtest/gtest.h>

#include <numeric>

#include "harness/model_check.h"

namespace ert::harness {
namespace {

SimParams check_params(std::size_t nodes, std::size_t lookups,
                       std::uint64_t seed) {
  SimParams p;
  p.num_nodes = nodes;
  p.num_lookups = lookups;
  p.lookup_rate = 64.0;
  p.seed = seed;
  return p;
}

void print_fit(const ModelCheckResult& r) {
  ::testing::Test::RecordProperty("sup_deviation", r.sup_deviation);
  std::printf(
      "[model-check] %s n=%zu: sup_dev=%.4f (tol %.2f), mean hops "
      "emp=%.3f pred=%.3f, one-hop=%.4f, load cv=%.3f\n",
      to_string(r.kind), r.nodes, r.sup_deviation, r.tolerance,
      r.mean_hops_empirical, r.mean_hops_predicted, r.one_hop_fraction,
      r.load_cv);
}

TEST(ModelPmf, KademliaSumsToOne) {
  const auto pmf = kademlia_hop_pmf(2048, 15, 4);
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Mean hops must sit in the O(log n) band: log_2(2048) = 11 is a hard
  // upper bound, and a k=4 bucket walk beats one-bit-per-hop easily.
  double mean = 0.0;
  for (std::size_t h = 0; h < pmf.size(); ++h) mean += double(h) * pmf[h];
  EXPECT_GT(mean, 1.5);
  EXPECT_LT(mean, 11.0);
}

TEST(ModelPmf, ChordIsBinomial) {
  const auto pmf = chord_hop_pmf(2048);
  ASSERT_EQ(pmf.size(), 12u);  // b = 11 -> hops 0..11
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(pmf[0], 1.0 / 2048.0, 1e-12);  // C(11,0)/2^11
  double mean = 0.0;
  for (std::size_t h = 0; h < pmf.size(); ++h) mean += double(h) * pmf[h];
  EXPECT_NEAR(mean, 5.5, 1e-9);
}

TEST(ModelCheck, KademliaMatchesRoosAt2048) {
  const auto r =
      model_check(SubstrateKind::kKademlia, check_params(2048, 20000, 71));
  print_fit(r);
  EXPECT_EQ(r.lookups, 20000u);
  EXPECT_LE(r.sup_deviation, r.tolerance);
  EXPECT_TRUE(r.pass);
}

TEST(ModelCheck, KademliaMatchesRoosAt16k) {
  const auto r = model_check(SubstrateKind::kKademlia,
                             check_params(std::size_t{1} << 14, 20000, 72));
  print_fit(r);
  EXPECT_EQ(r.lookups, 20000u);
  EXPECT_LE(r.sup_deviation, r.tolerance);
  EXPECT_TRUE(r.pass);
}

TEST(ModelCheck, D1htResolvesInOneHop) {
  const auto r =
      model_check(SubstrateKind::kD1ht, check_params(2048, 20000, 73));
  print_fit(r);
  EXPECT_EQ(r.lookups, 20000u);
  EXPECT_GE(r.one_hop_fraction, 0.99);
  EXPECT_TRUE(r.pass);
}

TEST(ModelCheck, ChordWithinBinomialEnvelope) {
  const auto r =
      model_check(SubstrateKind::kChord, check_params(2048, 20000, 74));
  print_fit(r);
  // Loose fingers shorten paths vs strict Chord, so the envelope is wide
  // but the direction is pinned: real paths must not be longer than the
  // strict model's mean.
  EXPECT_LE(r.sup_deviation, r.tolerance);
  EXPECT_LE(r.mean_hops_empirical, r.mean_hops_predicted);
  EXPECT_TRUE(r.pass);
}

TEST(ModelCheck, LoadReconstructionIsConserved) {
  // load_total counts hop-arrival records; pass already requires it to
  // equal the summed hop counts from the query-end records. Re-assert the
  // derived stats are coherent.
  const auto r =
      model_check(SubstrateKind::kKademlia, check_params(1024, 8000, 75));
  EXPECT_TRUE(r.pass);
  EXPECT_NEAR(r.load_mean * 1024.0, static_cast<double>(r.load_total), 1e-6);
  EXPECT_GE(r.load_max, r.load_mean);
  EXPECT_GT(r.load_cv, 0.0);
  // Per-node arrivals concentrate around mean_hops * lookups / n; the tail
  // is heavier than Poisson (ownership regions vary in size) but bounded.
  EXPECT_LT(r.load_max, 40.0 * (r.load_mean + 1.0));
}

TEST(ModelCheck, DeterministicAcrossCalls) {
  const auto a =
      model_check(SubstrateKind::kD1ht, check_params(512, 4000, 76));
  const auto b =
      model_check(SubstrateKind::kD1ht, check_params(512, 4000, 76));
  EXPECT_EQ(a.empirical_cdf, b.empirical_cdf);
  EXPECT_DOUBLE_EQ(a.sup_deviation, b.sup_deviation);
  EXPECT_EQ(model_check_json(a), model_check_json(b));
}

TEST(ModelCheck, JsonRoundsTrips) {
  const auto r =
      model_check(SubstrateKind::kD1ht, check_params(256, 2000, 77));
  const std::string j = model_check_json(r);
  EXPECT_NE(j.find("\"substrate\":\"D1HT\""), std::string::npos);
  EXPECT_NE(j.find("\"nodes\":256"), std::string::npos);
  EXPECT_NE(j.find("\"pass\":true"), std::string::npos);
  EXPECT_NE(j.find("\"empirical_cdf\":["), std::string::npos);
}

}  // namespace
}  // namespace ert::harness
