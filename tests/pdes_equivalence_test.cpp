// Statistical-equivalence gate for the sharded PDES engine (ISSUE 9
// satellite 4). The sharded engine is NOT bit-identical to the serial one
// (per-shard Rng streams replace the single workload stream), so its
// correctness contract is statistical: at --sim-threads 4 the analytical
// model check of ISSUE 7 must still pass with the same pinned Kolmogorov
// tolerances, ERT/AF runs must come through the invariant auditor with
// zero violations, and headline metrics must sit inside pinned delta
// bands of the serial engine's values. Chord and Kademlia, n = 2048 and
// n = 2^14, matching tests/model_check_test.cpp's serial coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "harness/experiment.h"
#include "harness/model_check.h"
#include "harness/pdes_engine.h"

namespace ert::harness {
namespace {

constexpr int kSimThreads = 4;

SimParams sharded_params(std::size_t nodes, std::size_t lookups,
                         std::uint64_t seed) {
  SimParams p;
  p.num_nodes = nodes;
  p.num_lookups = lookups;
  p.lookup_rate = 64.0;
  p.seed = seed;
  p.sim_threads = kSimThreads;
  return p;
}

void expect_model_pass(SubstrateKind kind, std::size_t nodes,
                       std::uint64_t seed) {
  const SimParams p = sharded_params(nodes, 20000, seed);
  ASSERT_TRUE(pdes_supported(p, Protocol::kBase, kind, ExperimentOptions{}))
      << "model check would silently fall back to the serial engine";
  const auto r = model_check(kind, p);
  std::printf(
      "[pdes model-check] %s n=%zu sim-threads=%d: sup_dev=%.4f (tol "
      "%.2f), mean hops emp=%.3f pred=%.3f, load_total=%zu\n",
      to_string(kind), r.nodes, kSimThreads, r.sup_deviation, r.tolerance,
      r.mean_hops_empirical, r.mean_hops_predicted, r.load_total);
  EXPECT_EQ(r.lookups, 20000u);
  EXPECT_LE(r.sup_deviation, r.tolerance);
  EXPECT_TRUE(r.pass);
  // Load conservation: arrivals reconstructed from the concatenated
  // per-shard traces must account for every hop of every lookup.
  EXPECT_NEAR(static_cast<double>(r.load_total),
              r.mean_hops_empirical * 20000.0, 2.0);
}

TEST(PdesModelCheck, ChordAt2048) {
  expect_model_pass(SubstrateKind::kChord, 2048, 91);
}

TEST(PdesModelCheck, ChordAt16k) {
  expect_model_pass(SubstrateKind::kChord, std::size_t{1} << 14, 92);
}

TEST(PdesModelCheck, KademliaAt2048) {
  expect_model_pass(SubstrateKind::kKademlia, 2048, 93);
}

TEST(PdesModelCheck, KademliaAt16k) {
  expect_model_pass(SubstrateKind::kKademlia, std::size_t{1} << 14, 94);
}

void expect_audit_clean(SubstrateKind kind) {
  SimParams p = sharded_params(2048, 6000, 95);
  p.lookup_rate = 16.0;
  ExperimentOptions opt;
  opt.audit.enabled = true;
  ASSERT_TRUE(pdes_supported(p, Protocol::kErtAF, kind, opt));
  const auto r = run_experiment(p, Protocol::kErtAF, kind, opt);
  EXPECT_EQ(r.completed_lookups, 6000u);
  EXPECT_EQ(r.dropped_lookups, 0u);
  EXPECT_GT(r.audit_sweeps, 0u);
  EXPECT_EQ(r.audit_violations, 0u)
      << "sharded ERT/AF run violated a structural invariant on "
      << to_string(kind);
}

TEST(PdesAudit, ErtAfCleanOnChord) {
  expect_audit_clean(SubstrateKind::kChord);
}

TEST(PdesAudit, ErtAfCleanOnKademlia) {
  expect_audit_clean(SubstrateKind::kKademlia);
}

/// |a - b| as a fraction of the serial value.
double rel_delta(double serial, double sharded) {
  if (serial == 0.0) return std::abs(sharded);
  return std::abs(sharded - serial) / std::abs(serial);
}

void expect_metric_bands(SubstrateKind kind) {
  SimParams p = sharded_params(2048, 6000, 96);
  p.lookup_rate = 16.0;
  SimParams serial_p = p;
  serial_p.sim_threads = 1;
  const auto serial = run_experiment(serial_p, Protocol::kErtAF, kind);
  const auto sharded = run_experiment(p, Protocol::kErtAF, kind);
  std::printf(
      "[pdes delta] %s: path %.3f/%.3f cong(p99) %.1f/%.1f cong(mean) "
      "%.1f/%.1f dur %.1f/%.1f\n",
      to_string(kind), serial.avg_path_length, sharded.avg_path_length,
      serial.p99_max_congestion, sharded.p99_max_congestion,
      serial.mean_max_congestion, sharded.mean_max_congestion,
      serial.sim_duration, sharded.sim_duration);

  EXPECT_EQ(sharded.completed_lookups, serial.completed_lookups);
  EXPECT_EQ(sharded.dropped_lookups, 0u);
  // Pinned delta bands, calibrated with ~2x headroom over the deltas
  // observed across seeds (path length differed by ~1%, congestion
  // percentiles by a few percent). A band breach means the sharded engine
  // drifted from the serial semantics, not ordinary sampling noise.
  EXPECT_LE(rel_delta(serial.avg_path_length, sharded.avg_path_length), 0.08);
  EXPECT_LE(
      rel_delta(serial.mean_max_congestion, sharded.mean_max_congestion),
      0.25);
  EXPECT_LE(rel_delta(serial.p99_max_congestion, sharded.p99_max_congestion),
            0.35);
  EXPECT_LE(sharded.avg_timeouts, 1e-9);  // churn-free: no timeouts at all
  // Windowed termination adds at most a few barriers of slack to the
  // measured duration; it must never run shorter than the serial engine
  // by more than the same sampling-noise band.
  EXPECT_LE(rel_delta(serial.sim_duration, sharded.sim_duration), 0.50);
}

TEST(PdesDelta, ErtAfBandsOnChord) {
  expect_metric_bands(SubstrateKind::kChord);
}

TEST(PdesDelta, ErtAfBandsOnKademlia) {
  expect_metric_bands(SubstrateKind::kKademlia);
}

}  // namespace
}  // namespace ert::harness
