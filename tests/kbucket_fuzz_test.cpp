// Differential fuzz for the dynamically-split Kademlia bucket table
// (src/kademlia/kbucket.h), mirroring ring_fuzz_test.cpp: drive the real
// structure and a deliberately naive reference model through the same
// randomized op stream and compare every observable after each step.
//
// The reference exploits the path-shaped bucket tree: after L splits the
// table is exactly L far buckets plus the self-covering remainder, and a
// contact's bucket is determined by min(common-prefix-length(id, self), L).
// So the reference keeps a flat contact list with monotonic recency
// counters and recomputes group membership on demand — no tree, no
// partition bookkeeping, nothing shared with the implementation under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "kademlia/kbucket.h"

namespace ert::kademlia {
namespace {

struct RefContact {
  std::uint64_t id;
  std::uint64_t stamp;  ///< monotonic recency: higher = more recent.
  bool live;
};

class Reference {
 public:
  Reference(std::uint64_t self, int bits, std::size_t k)
      : self_(self), bits_(bits), k_(k) {}

  /// min(common-prefix-length, depth): the index of the bucket holding
  /// `id` in a path-shaped tree split `depth_` times.
  std::size_t group(std::uint64_t id) const {
    const int m = msb_diff(self_, id);
    const std::size_t cp = static_cast<std::size_t>(bits_ - 1 - m);
    return std::min(cp, depth_);
  }

  std::vector<const RefContact*> members(std::size_t g) const {
    std::vector<const RefContact*> out;
    for (const RefContact& c : contacts_)
      if (group(c.id) == g) out.push_back(&c);
    std::sort(out.begin(), out.end(),
              [](const RefContact* a, const RefContact* b) {
                return a->stamp < b->stamp;
              });
    return out;
  }

  bool insert(std::uint64_t id) {
    if (id == self_) return false;
    if (RefContact* c = find(id)) {
      c->stamp = next_stamp_++;
      c->live = true;
      return true;
    }
    // Split the self-covering bucket for as long as it overflows; each
    // split just deepens the path, regrouping falls out of group().
    while (group(id) == depth_ && members(depth_).size() >= k_ &&
           depth_ < static_cast<std::size_t>(bits_))
      ++depth_;
    const std::size_t g = group(id);
    auto in_group = members(g);
    if (in_group.size() < k_) {
      contacts_.push_back({id, next_stamp_++, true});
      return true;
    }
    // Full bucket that can no longer split: evict the oldest dead
    // contact; live long-standing contacts are never displaced.
    for (const RefContact* c : in_group) {
      if (!c->live) {
        erase(c->id);
        contacts_.push_back({id, next_stamp_++, true});
        return true;
      }
    }
    return false;
  }

  bool erase(std::uint64_t id) {
    for (std::size_t i = 0; i < contacts_.size(); ++i) {
      if (contacts_[i].id == id) {
        contacts_.erase(contacts_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool contains(std::uint64_t id) const {
    return const_cast<Reference*>(this)->find(id) != nullptr;
  }

  bool set_live(std::uint64_t id, bool live) {
    if (RefContact* c = find(id)) {
      c->live = live;
      return true;
    }
    return false;
  }

  void closest(std::uint64_t key, std::size_t count,
               std::vector<std::uint64_t>& out) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked;
    for (const RefContact& c : contacts_) ranked.emplace_back(c.id ^ key, c.id);
    std::sort(ranked.begin(), ranked.end());
    out.clear();
    for (std::size_t i = 0; i < std::min(count, ranked.size()); ++i)
      out.push_back(ranked[i].second);
  }

  std::size_t size() const { return contacts_.size(); }
  std::size_t depth() const { return depth_; }

 private:
  RefContact* find(std::uint64_t id) {
    for (RefContact& c : contacts_)
      if (c.id == id) return &c;
    return nullptr;
  }

  std::uint64_t self_;
  int bits_;
  std::size_t k_;
  std::size_t depth_ = 0;
  std::vector<RefContact> contacts_;
  std::uint64_t next_stamp_ = 0;
};

/// Full structural comparison: bucket count matches the split depth, and
/// each bucket holds exactly the reference group's contacts in the same
/// (recency) order with the same liveness flags.
void compare_structure(const KBucketTable& table, const Reference& ref) {
  ASSERT_EQ(table.num_buckets(), ref.depth() + 1);
  ASSERT_EQ(table.size(), ref.size());
  for (const KBucket& b : table.buckets()) {
    // Path tree: the bucket covering self sits at depth L; a far bucket at
    // prefix_len p holds the contacts whose common prefix is exactly p-1.
    const bool covers_self =
        b.prefix_len == 0 ||
        ((table.self() ^ b.prefix) >> (table.bits() - b.prefix_len)) == 0;
    const std::size_t g = covers_self ? ref.depth()
                                      : static_cast<std::size_t>(b.prefix_len) - 1;
    const auto want = ref.members(g);
    ASSERT_EQ(b.contacts.size(), want.size()) << "group " << g;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(b.contacts[i].id, want[i]->id) << "group " << g << " pos " << i;
      EXPECT_EQ(b.contacts[i].live, want[i]->live) << "group " << g;
    }
  }
}

void run_fuzz(std::uint64_t seed, int bits, std::size_t k, int ops) {
  Rng rng(seed);
  const std::uint64_t space_mask = low_mask(bits);
  const std::uint64_t self = rng.bits() & space_mask;
  KBucketTable table(self, bits, k);
  Reference ref(self, bits, k);

  // Ids biased toward long shared prefixes with self, so splits actually
  // trigger; a uniform stream almost never deepens the tree past a few
  // levels.
  const auto gen_id = [&]() -> std::uint64_t {
    const int p = static_cast<int>(rng.index(static_cast<std::size_t>(bits)));
    return (self & ~low_mask(bits - p)) | (rng.bits() & low_mask(bits - p));
  };

  std::vector<std::uint64_t> got, want;
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t id = gen_id();
    switch (rng.index(8)) {
      case 0:
      case 1:
      case 2:
      case 3:
        ASSERT_EQ(table.insert(id), ref.insert(id)) << "op " << op;
        break;
      case 4:
        ASSERT_EQ(table.erase(id), ref.erase(id)) << "op " << op;
        break;
      case 5:
        ASSERT_EQ(table.mark_dead(id), ref.set_live(id, false)) << "op " << op;
        break;
      case 6:
        ASSERT_EQ(table.mark_live(id), ref.set_live(id, true)) << "op " << op;
        break;
      default: {
        const std::uint64_t key = rng.bits() & space_mask;
        const std::size_t count = 1 + rng.index(2 * k);
        table.closest(key, count, got);
        ref.closest(key, count, want);
        ASSERT_EQ(got, want) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(table.contains(id), ref.contains(id)) << "op " << op;
    ASSERT_EQ(table.size(), ref.size()) << "op " << op;
    if (op % 64 == 0) {
      table.check_invariants();
      compare_structure(table, ref);
    }
  }
  table.check_invariants();
  compare_structure(table, ref);
}

TEST(KBucketFuzz, DefaultGeometry) { run_fuzz(1001, 16, 4, 12000); }

TEST(KBucketFuzz, WideBuckets) { run_fuzz(2002, 12, 8, 12000); }

TEST(KBucketFuzz, TinyBucketsDeepSplits) { run_fuzz(3003, 20, 2, 12000); }

TEST(KBucketFuzz, TinySpaceSaturates) {
  // bits = 6 saturates the 64-id space: exercises the cannot-split-anymore
  // eviction path at every level.
  run_fuzz(4004, 6, 3, 8000);
}

}  // namespace
}  // namespace ert::kademlia
