// Structural tests for the counted B+-tree behind dht::RingDirectory.
// check_structure() audits sortedness, subtree size/max annotations, fill
// minima, and the leaf chain after every phase; a sorted std::vector mirror
// checks ordering, ranks, and cursor walks. Sizes are chosen so the tree
// reaches three interior levels (64 * 32 * 32 = 65536 pairs per three-level
// subtree), exercising recursive splits and multi-level underflow repair.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dht/counted_btree.h"

namespace ert::dht {
namespace {

using Pair = std::pair<std::uint64_t, NodeIndex>;

std::vector<Pair> random_pairs(std::size_t n, std::uint64_t modulus,
                               Rng& rng) {
  std::vector<Pair> out;
  out.reserve(n);
  std::vector<bool> taken(modulus, false);
  while (out.size() < n) {
    const std::uint64_t id = rng.bits() % modulus;
    if (taken[id]) continue;
    taken[id] = true;
    out.emplace_back(id, static_cast<NodeIndex>(out.size()));
  }
  return out;
}

/// Walks the leaf chain through cursors and compares against the sorted
/// mirror; then spot-checks select / lower_bound ranks.
void expect_matches(const CountedBTree& tree, std::vector<Pair> mirror,
                    Rng& rng) {
  std::sort(mirror.begin(), mirror.end());
  ASSERT_EQ(tree.size(), mirror.size());
  ASSERT_TRUE(tree.check_structure());

  std::size_t i = 0;
  for (CountedBTree::Cursor c = tree.first(); CountedBTree::valid(c);
       c = CountedBTree::next(c), ++i) {
    ASSERT_LT(i, mirror.size());
    ASSERT_EQ(CountedBTree::key(c), mirror[i].first);
    ASSERT_EQ(CountedBTree::value(c), mirror[i].second);
  }
  ASSERT_EQ(i, mirror.size());

  // Backward walk.
  i = mirror.size();
  for (CountedBTree::Cursor c = tree.last(); CountedBTree::valid(c);
       c = CountedBTree::prev(c)) {
    --i;
    ASSERT_EQ(CountedBTree::key(c), mirror[i].first);
  }
  ASSERT_EQ(i, 0u);

  const std::size_t probes = std::min<std::size_t>(mirror.size(), 512);
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t rank = rng.index(mirror.size());
    const CountedBTree::Cursor c = tree.select(rank);
    ASSERT_TRUE(CountedBTree::valid(c));
    ASSERT_EQ(CountedBTree::key(c), mirror[rank].first);

    const std::uint64_t key = mirror[rank].first;
    const CountedBTree::Locate loc = tree.lower_bound(key);
    ASSERT_EQ(loc.rank, rank);
    ASSERT_TRUE(CountedBTree::valid(loc.cur));
    ASSERT_EQ(CountedBTree::key(loc.cur), key);
    ASSERT_EQ(*tree.find(key), mirror[rank].second);
  }
}

TEST(CountedBTree, RandomInsertEraseCyclesStayConsistent) {
  const std::size_t n = 150000;  // three interior levels
  const std::uint64_t modulus = 1u << 20;
  Rng rng(42);
  auto pairs = random_pairs(n, modulus, rng);

  CountedBTree tree;
  for (const auto& [k, v] : pairs) {
    ASSERT_TRUE(tree.insert(k, v));
    ASSERT_FALSE(tree.insert(k, v));  // duplicate rejected
  }
  expect_matches(tree, pairs, rng);

  // Three shrink/regrow cycles: erase a random half, audit, refill.
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<Pair> survivors;
    for (const auto& pr : pairs) {
      if (rng.bernoulli(0.5)) {
        ASSERT_TRUE(tree.erase(pr.first));
        ASSERT_FALSE(tree.erase(pr.first));  // second erase is a no-op
      } else {
        survivors.push_back(pr);
      }
    }
    expect_matches(tree, survivors, rng);

    pairs = std::move(survivors);
    while (pairs.size() < n / 2) {
      const std::uint64_t id = rng.bits() % modulus;
      if (tree.contains(id)) continue;
      const NodeIndex v = static_cast<NodeIndex>(pairs.size());
      ASSERT_TRUE(tree.insert(id, v));
      pairs.emplace_back(id, v);
    }
    ASSERT_TRUE(tree.check_structure());
  }
}

TEST(CountedBTree, BuildFromSortedMatchesIncremental) {
  Rng rng(7);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{2048}, std::size_t{100000}}) {
    auto pairs = random_pairs(n, std::max<std::uint64_t>(1, 8 * n), rng);
    std::sort(pairs.begin(), pairs.end());

    CountedBTree bulk;
    bulk.build_from_sorted(pairs);
    ASSERT_TRUE(bulk.check_structure()) << "n=" << n;

    CountedBTree inc;
    for (const auto& [k, v] : pairs) ASSERT_TRUE(inc.insert(k, v));

    std::vector<Pair> from_bulk, from_inc;
    bulk.materialize(from_bulk);
    inc.materialize(from_inc);
    ASSERT_EQ(from_bulk, pairs) << "n=" << n;
    ASSERT_EQ(from_inc, pairs) << "n=" << n;
    expect_matches(bulk, pairs, rng);
  }
}

TEST(CountedBTree, EraseToEmptyAndReuse) {
  Rng rng(11);
  CountedBTree tree;
  auto pairs = random_pairs(5000, 1 << 16, rng);
  for (const auto& [k, v] : pairs) ASSERT_TRUE(tree.insert(k, v));

  // Erase in a different order than insertion.
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [k, v] : pairs) ASSERT_TRUE(tree.erase(k));
  ASSERT_TRUE(tree.empty());
  ASSERT_TRUE(tree.check_structure());
  ASSERT_FALSE(CountedBTree::valid(tree.first()));
  ASSERT_FALSE(CountedBTree::valid(tree.last()));

  // The emptied tree must accept a fresh population.
  for (const auto& [k, v] : pairs) ASSERT_TRUE(tree.insert(k, v));
  expect_matches(tree, pairs, rng);

  tree.clear();
  ASSERT_TRUE(tree.empty());
  ASSERT_TRUE(tree.check_structure());
}

TEST(CountedBTree, CopyAndMoveSemantics) {
  Rng rng(13);
  auto pairs = random_pairs(20000, 1 << 18, rng);
  CountedBTree a;
  for (const auto& [k, v] : pairs) a.insert(k, v);

  CountedBTree copy(a);
  expect_matches(copy, pairs, rng);
  // Mutating the copy leaves the original untouched.
  copy.erase(pairs.front().first);
  ASSERT_EQ(copy.size(), pairs.size() - 1);
  ASSERT_TRUE(a.contains(pairs.front().first));

  CountedBTree moved(std::move(a));
  expect_matches(moved, pairs, rng);
  ASSERT_TRUE(a.empty());           // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(a.check_structure()); // moved-from is empty but usable
  ASSERT_TRUE(a.insert(1, 2));

  CountedBTree assigned;
  assigned.insert(99, 1);
  assigned = moved;
  expect_matches(assigned, pairs, rng);

  CountedBTree move_assigned;
  move_assigned = std::move(moved);
  expect_matches(move_assigned, pairs, rng);
}

TEST(CountedBTree, LowerBoundEdgeCases) {
  CountedBTree tree;
  ASSERT_FALSE(CountedBTree::valid(tree.lower_bound(0).cur));
  ASSERT_EQ(tree.lower_bound(0).rank, 0u);

  for (std::uint64_t k = 10; k <= 1000; k += 10)
    tree.insert(k, static_cast<NodeIndex>(k));

  const auto below = tree.lower_bound(0);
  ASSERT_EQ(CountedBTree::key(below.cur), 10u);
  ASSERT_EQ(below.rank, 0u);

  const auto exact = tree.lower_bound(500);
  ASSERT_EQ(CountedBTree::key(exact.cur), 500u);
  ASSERT_EQ(exact.rank, 49u);

  const auto between = tree.lower_bound(501);
  ASSERT_EQ(CountedBTree::key(between.cur), 510u);
  ASSERT_EQ(between.rank, 50u);

  const auto beyond = tree.lower_bound(1001);
  ASSERT_FALSE(CountedBTree::valid(beyond.cur));
  ASSERT_EQ(beyond.rank, tree.size());
}

}  // namespace
}  // namespace ert::dht
