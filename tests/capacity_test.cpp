#include "ert/capacity.h"

#include <gtest/gtest.h>

#include <numeric>

namespace ert::core {
namespace {

SimParams defaults() { return SimParams{}; }

TEST(CapacityModel, NormalizedMeanIsOne) {
  Rng rng(1);
  const auto m = CapacityModel::generate(2048, defaults(), rng);
  double sum = 0;
  for (std::size_t i = 0; i < m.size(); ++i) sum += m.normalized(i);
  EXPECT_NEAR(sum / 2048.0, 1.0, 1e-9);
}

TEST(CapacityModel, RawInParetoRange) {
  Rng rng(2);
  const auto m = CapacityModel::generate(500, defaults(), rng);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.raw(i), 500.0);
    EXPECT_LE(m.raw(i), 50000.0);
  }
}

TEST(CapacityModel, FromRaw) {
  const auto m = CapacityModel::from_raw({100.0, 300.0});
  EXPECT_DOUBLE_EQ(m.normalized(0), 0.5);
  EXPECT_DOUBLE_EQ(m.normalized(1), 1.5);
  EXPECT_DOUBLE_EQ(m.total_raw(), 400.0);
}

TEST(CapacityModel, AddNodeUsesFrozenMean) {
  auto m = CapacityModel::from_raw({100.0, 300.0});  // mean 200
  const std::size_t i = m.add_node(400.0);
  EXPECT_EQ(i, 2u);
  EXPECT_DOUBLE_EQ(m.normalized(2), 2.0);
  // Existing normalizations unchanged (no global renormalization).
  EXPECT_DOUBLE_EQ(m.normalized(0), 0.5);
}

TEST(CapacityModel, EstimatedWithinGamma) {
  auto m = CapacityModel::from_raw({100.0, 100.0});
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const double e = m.estimated(0, 2.0, rng);
    EXPECT_GE(e, 0.5);
    EXPECT_LE(e, 2.0);
  }
  // gamma_c = 1 means exact knowledge.
  EXPECT_DOUBLE_EQ(m.estimated(0, 1.0, rng), 1.0);
}

TEST(MaxIndegree, PaperFormula) {
  // d_inf = floor(0.5 + alpha * c_hat), Table 2: alpha = d + 3 = 11.
  EXPECT_EQ(max_indegree(11.0, 1.0), 11);
  EXPECT_EQ(max_indegree(11.0, 2.0), 22);
  EXPECT_EQ(max_indegree(11.0, 0.5), 6);   // floor(0.5 + 5.5) = 6 (round)
  EXPECT_EQ(max_indegree(11.0, 0.04), 1);  // clamped to 1
}

TEST(MaxIndegree, ScalesLinearly) {
  for (double c : {0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(max_indegree(11.0, c), 11.0 * c, 0.51);
  }
}

TEST(QueueSlots, MatchesMaxIndegree) {
  EXPECT_EQ(queue_slots(11.0, 1.7), max_indegree(11.0, 1.7));
}

TEST(CapacityModel, HeterogeneitySpansOrdersOfMagnitude) {
  Rng rng(5);
  const auto m = CapacityModel::generate(2048, defaults(), rng);
  double lo = 1e18, hi = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    lo = std::min(lo, m.raw(i));
    hi = std::max(hi, m.raw(i));
  }
  EXPECT_GT(hi / lo, 10.0);  // Pareto heterogeneity really present
}

}  // namespace
}  // namespace ert::core
