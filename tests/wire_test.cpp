// Wire-format unit tests (docs/WIRE.md): varint boundary behavior, header
// byte layout, catalog metadata, and two end-to-end cross-checks against
// the engine — (a) on a fault-free churn-free kBase run the metered query
// bytes equal the byte total reconstructed from the kQueryHop trace, and
// (b) every frame in a capture stream decodes and the per-type counts
// match the ByteTotals counters. Plus the observational contract: a
// bytes-on run is bit-identical to a bytes-off run in every metric.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "trace/trace.h"
#include "wire/wire.h"

namespace ert::wire {
namespace {

// --- varints -----------------------------------------------------------------

TEST(Varint, SizeBoundaries) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size((1ULL << 14) - 1), 2u);
  EXPECT_EQ(varint_size(1ULL << 14), 3u);
  EXPECT_EQ(varint_size((1ULL << 63) - 1), 9u);
  EXPECT_EQ(varint_size(1ULL << 63), 10u);
  EXPECT_EQ(varint_size(~0ULL), kMaxVarintBytes);
}

TEST(Varint, PutGetRoundTripAtEveryWidthBoundary) {
  std::vector<std::uint64_t> values = {0, 1, 127, 128, ~0ULL};
  for (int k = 1; k < 10; ++k) {
    values.push_back((1ULL << (7 * k)) - 1);  // last value of width k
    values.push_back(1ULL << (7 * k));        // first value of width k+1
  }
  for (const std::uint64_t v : values) {
    std::uint8_t buf[kMaxVarintBytes];
    const std::size_t n = put_varint(buf, v);
    EXPECT_EQ(n, varint_size(v)) << v;
    std::uint64_t back = 1;
    EXPECT_EQ(get_varint(buf, n, &back), n) << v;
    EXPECT_EQ(back, v);
    // One byte short must fail, not read past the buffer.
    std::uint64_t junk;
    EXPECT_EQ(get_varint(buf, n - 1, &junk), 0u) << v;
  }
}

TEST(Varint, OverflowEncodingRejected) {
  // Ten bytes whose final byte carries bits >= 2^64.
  std::uint8_t buf[kMaxVarintBytes];
  for (int i = 0; i < 9; ++i) buf[i] = 0xFF;
  buf[9] = 0x02;
  std::uint64_t out;
  EXPECT_EQ(get_varint(buf, sizeof buf, &out), 0u);
  buf[9] = 0x01;  // exactly 2^63 in the top position: still representable
  EXPECT_EQ(get_varint(buf, sizeof buf, &out), kMaxVarintBytes);
  EXPECT_EQ(out, ~0ULL);
}

// --- frame layout ------------------------------------------------------------

TEST(WireFrame, HeaderBytesAreTypeFlagsLenLE) {
  std::uint8_t buf[kMaxFrameBytes];
  const Probe m{1, 2, 3, 300};
  const std::size_t size = encode(m, buf, sizeof buf);
  ASSERT_EQ(size, encoded_size(m));
  EXPECT_EQ(buf[0], static_cast<std::uint8_t>(MsgType::kProbe));
  EXPECT_EQ(buf[1], 0);  // no flags on a probe
  const std::size_t payload = buf[2] | (std::size_t{buf[3]} << 8);
  EXPECT_EQ(payload, size - kHeaderSize);
  // qid=1, prober=2, target=3 are one varint byte each; 300 takes two.
  EXPECT_EQ(payload, 5u);
}

TEST(WireFrame, ForwardReturningSetsTheFlagBit) {
  std::uint8_t buf[kMaxFrameBytes];
  Forward m{9, 8, 7, 6, 5, /*returning=*/true, 0, nullptr};
  std::size_t size = encode(m, buf, sizeof buf);
  ASSERT_GT(size, 0u);
  EXPECT_EQ(buf[1], kFlagReturning);
  EXPECT_TRUE(decode_exact(buf, size).msg.returning());
  m.returning = false;
  size = encode(m, buf, sizeof buf);
  EXPECT_EQ(buf[1], 0);
  EXPECT_FALSE(decode_exact(buf, size).msg.returning());
}

TEST(WireFrame, EncodeFailsCleanlyWhenTheBufferIsTooSmall) {
  std::uint8_t buf[kMaxFrameBytes];
  const Leave m{~0ULL};
  const std::size_t size = encode(m, buf, sizeof buf);
  ASSERT_GT(size, 0u);
  for (std::size_t cap = 0; cap < size; ++cap)
    EXPECT_EQ(encode(m, buf, cap), 0u) << cap;
}

TEST(WireCatalog, NamesFieldsAndPlanes) {
  EXPECT_STREQ(to_string(MsgType::kProbe), "probe");
  EXPECT_STREQ(to_string(MsgType::kProbeReply), "probe-reply");
  EXPECT_STREQ(to_string(MsgType::kForward), "forward");
  EXPECT_STREQ(to_string(MsgType::kAdaptShed), "adapt-shed");
  EXPECT_STREQ(to_string(MsgType::kAdaptGrow), "adapt-grow");
  EXPECT_STREQ(to_string(MsgType::kBackwardAdd), "backward-add");
  EXPECT_STREQ(to_string(MsgType::kBackwardDrop), "backward-drop");
  EXPECT_STREQ(to_string(MsgType::kJoin), "join");
  EXPECT_STREQ(to_string(MsgType::kLeave), "leave");
  const std::size_t expected[] = {4, 4, 5, 2, 2, 3, 3, 2, 1};
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
    EXPECT_EQ(num_fields(static_cast<MsgType>(t)), expected[t]);
    EXPECT_EQ(is_query(static_cast<MsgType>(t)), t == 2u)
        << to_string(static_cast<MsgType>(t));
  }
}

// --- engine cross-checks -----------------------------------------------------

SimParams small_params() {
  SimParams p;
  p.num_nodes = 64;
  p.dimension = harness::fit_dimension(p.num_nodes);
  p.num_lookups = 300;
  p.lookup_rate = 25.0;
  p.seed = 7;
  return p;
}

TEST(WireEngine, QueryBytesMatchTraceReconstructionOnBase) {
  // kBase, fault-free, churn-free: the only wire traffic is Forward frames
  // and every transmission has exactly one kQueryHop record, so the meter
  // must agree byte-for-byte with a reconstruction from the trace. kBase
  // also sends no probes and carries an empty A set, which the totals
  // must reflect.
  const SimParams p = small_params();
  harness::ExperimentOptions opts;
  opts.wire.bytes = true;
  opts.trace.enabled = true;
  opts.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                          static_cast<std::uint32_t>(trace::Category::kHop);
  const auto r = harness::run_experiment(p, harness::Protocol::kBase,
                                         harness::SubstrateKind::kChord, opts);
  ASSERT_GT(r.completed_lookups, 0u);
  ASSERT_EQ(r.trace_dropped, 0u);

  std::map<std::uint64_t, std::uint64_t> key_of, hops_of;
  std::uint64_t rebuilt_bytes = 0, rebuilt_msgs = 0;
  for (const trace::Record& rec : r.trace_records) {
    if (rec.type == trace::EventType::kQueryBegin) {
      key_of[rec.query] = static_cast<std::uint64_t>(rec.a);
    } else if (rec.type == trace::EventType::kQueryHop) {
      EXPECT_EQ(rec.b, 0) << "kBase must carry an empty A set";
      const Forward m{rec.query,
                      key_of[rec.query],
                      rec.node,
                      static_cast<std::uint64_t>(rec.a),
                      ++hops_of[rec.query],
                      false,
                      static_cast<std::uint32_t>(rec.b),
                      nullptr};
      rebuilt_bytes += encoded_size(m);
      ++rebuilt_msgs;
    }
  }
  const auto fwd = static_cast<std::size_t>(MsgType::kForward);
  EXPECT_EQ(r.bytes.msg_count[fwd], rebuilt_msgs);
  EXPECT_EQ(r.bytes.query_msgs, rebuilt_msgs);
  EXPECT_EQ(r.bytes.query_bytes, rebuilt_bytes);
  EXPECT_EQ(r.bytes.msg_bytes[fwd], rebuilt_bytes);
  const auto probe = static_cast<std::size_t>(MsgType::kProbe);
  EXPECT_EQ(r.bytes.msg_count[probe], 0u) << "kBase never probes";
  EXPECT_EQ(r.bytes.in_flight_bytes, 0u) << "gauge must drain by run end";
}

TEST(WireEngine, CaptureStreamDecodesAndMatchesTotals) {
  const SimParams p = small_params();
  harness::ExperimentOptions opts;
  opts.wire.bytes = true;
  opts.wire.capture = true;
  const auto r = harness::run_experiment(p, harness::Protocol::kErtAF,
                                         harness::SubstrateKind::kCycloid,
                                         opts);
  ASSERT_FALSE(r.wire_capture.empty());

  std::uint64_t count[kNumMsgTypes] = {};
  std::uint64_t bytes[kNumMsgTypes] = {};
  std::istringstream lines(r.wire_capture);
  std::string name, hex;
  while (lines >> name >> hex) {
    ASSERT_EQ(hex.size() % 2, 0u) << name << " " << hex;
    std::vector<std::uint8_t> frame(hex.size() / 2);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      const auto nib = [&](char c) -> unsigned {
        return c <= '9' ? static_cast<unsigned>(c - '0')
                        : static_cast<unsigned>(c - 'a') + 10;
      };
      frame[i] = static_cast<std::uint8_t>(nib(hex[2 * i]) << 4 |
                                           nib(hex[2 * i + 1]));
    }
    const DecodeResult d = decode_exact(frame.data(), frame.size());
    ASSERT_EQ(d.status, DecodeStatus::kOk) << name << " " << hex;
    EXPECT_STREQ(to_string(d.msg.type), name.c_str());
    count[static_cast<std::size_t>(d.msg.type)] += 1;
    bytes[static_cast<std::size_t>(d.msg.type)] += frame.size();
  }
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
    EXPECT_EQ(count[t], r.bytes.msg_count[t])
        << to_string(static_cast<MsgType>(t));
    EXPECT_EQ(bytes[t], r.bytes.msg_bytes[t])
        << to_string(static_cast<MsgType>(t));
  }
}

TEST(WireEngine, MeteringIsObservational) {
  // The --bytes meter draws no randomness and schedules nothing, so every
  // metric must stay bit-identical to a bytes-off run.
  const SimParams p = small_params();
  const auto off = harness::run_experiment(p, harness::Protocol::kErtAF,
                                           harness::SubstrateKind::kCycloid);
  harness::ExperimentOptions opts;
  opts.wire.bytes = true;
  const auto on = harness::run_experiment(p, harness::Protocol::kErtAF,
                                          harness::SubstrateKind::kCycloid,
                                          opts);
  EXPECT_EQ(off.completed_lookups, on.completed_lookups);
  EXPECT_EQ(off.dropped_lookups, on.dropped_lookups);
  EXPECT_EQ(off.avg_path_length, on.avg_path_length);
  EXPECT_EQ(off.lookup_time.mean, on.lookup_time.mean);
  EXPECT_EQ(off.lookup_time.p99, on.lookup_time.p99);
  EXPECT_EQ(off.p99_max_congestion, on.p99_max_congestion);
  EXPECT_EQ(off.sim_duration, on.sim_duration);
  EXPECT_EQ(off.adapt_sheds, on.adapt_sheds);
  EXPECT_EQ(off.adapt_grows, on.adapt_grows);
  // And the off run carries no byte state at all.
  EXPECT_EQ(off.bytes.total_msgs(), 0u);
  EXPECT_TRUE(off.wire_capture.empty());
  EXPECT_GT(on.bytes.total_msgs(), 0u);
}

}  // namespace
}  // namespace ert::wire
