#include "kademlia/overlay.h"

#include <gtest/gtest.h>

#include "common/bitops.h"

namespace ert::kademlia {
namespace {

using dht::NodeIndex;

Overlay make(std::size_t n, std::uint64_t seed = 1, bool bounds = false,
             int max_indegree = 1 << 20) {
  KademliaOptions opts;
  opts.bits = 16;
  opts.enforce_indegree_bounds = bounds;
  Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    o.add_node_random(rng, 1.0, max_indegree, 0.8);
  Rng build_rng(seed + 1);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, build_rng);
  return o;
}

NodeIndex route(const Overlay& o, NodeIndex src, std::uint64_t key,
                std::size_t max_hops, std::size_t* hops_out = nullptr) {
  dht::RouteScratch scratch;
  NodeIndex cur = src;
  std::size_t hops = 0;
  while (hops < max_hops) {
    const dht::RouteStepInfo step = o.route_step(cur, key, scratch);
    if (step.arrived) {
      if (hops_out) *hops_out = hops;
      return cur;
    }
    EXPECT_FALSE(scratch.candidates.empty());
    cur = scratch.candidates.front();
    ++hops;
  }
  return dht::kNoNode;
}

/// Brute-force XOR-closest alive node — the ownership oracle.
NodeIndex xor_closest_ref(const Overlay& o, std::uint64_t key) {
  NodeIndex best = dht::kNoNode;
  std::uint64_t best_d = ~std::uint64_t{0};
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (!o.node(i).alive) continue;
    const std::uint64_t d = o.node(i).id ^ key;
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

TEST(Kademlia, BuildPopulatesBuckets) {
  Overlay o = make(200);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    // ~log2(200) occupied levels, each with at least one contact.
    EXPECT_GT(o.node(i).table.outdegree(), 6u);
  }
  o.check_invariants();
}

TEST(Kademlia, BucketContactsMatchMsbLevel) {
  Overlay o = make(150, 2);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    const auto& n = o.node(i);
    for (std::size_t slot = 0; slot < n.table.num_entries(); ++slot)
      for (const dht::NodeIndex32 c :
           n.table.entry(slot).candidates(o.arena().cands))
        EXPECT_EQ(msb_diff(n.id, o.node(c).id), static_cast<int>(slot));
  }
}

TEST(Kademlia, ResponsibleIsXorClosest) {
  Overlay o = make(120, 3);
  Rng rng(4);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    EXPECT_EQ(o.responsible(key), xor_closest_ref(o, key));
  }
}

TEST(Kademlia, LookupsArriveLogarithmically) {
  Overlay o = make(500, 5);
  Rng rng(6);
  std::size_t total_hops = 0;
  const int lookups = 300;
  for (int t = 0; t < lookups; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    std::size_t hops = 0;
    ASSERT_EQ(route(o, src, key, 64, &hops), o.responsible(key));
    total_hops += hops;
  }
  // O(log n) with k-redundancy: well under one hop per distance bit.
  EXPECT_LT(static_cast<double>(total_hops) / lookups, 9.0);
}

TEST(Kademlia, RouteStrictlyShrinksXorDistance) {
  Overlay o = make(400, 7);
  Rng rng(8);
  dht::RouteScratch scratch;
  for (int t = 0; t < 200; ++t) {
    NodeIndex cur = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    const NodeIndex owner = o.responsible(key);
    std::size_t guard = 0;
    while (cur != owner) {
      const auto step = o.route_step(cur, key, scratch);
      if (step.arrived) break;
      const std::uint64_t before = o.node(cur).id ^ key;
      // Every listed candidate must make progress, not just the best one —
      // the engine's randomized protocols pick any of them.
      for (const NodeIndex c : scratch.candidates)
        ASSERT_LT(o.node(c).id ^ key, before);
      cur = scratch.candidates.front();
      ASSERT_LT(++guard, 64u);
    }
  }
}

TEST(Kademlia, EligibilityIsTheBucketInterval) {
  Overlay o = make(300, 9);
  Rng rng(10);
  for (int t = 0; t < 300; ++t) {
    const NodeIndex a = rng.index(o.num_slots());
    const NodeIndex b = rng.index(o.num_slots());
    if (a == b) continue;
    const int m = msb_diff(o.node(a).id, o.node(b).id);
    ASSERT_GE(m, 0);
    // b is eligible for a's bucket m and no other; msb symmetry makes the
    // relation mutual.
    EXPECT_TRUE(o.eligible(a, static_cast<std::size_t>(m), b));
    EXPECT_TRUE(o.eligible(b, static_cast<std::size_t>(m), a));
    const std::size_t other = (static_cast<std::size_t>(m) + 1) %
                              static_cast<std::size_t>(o.bits());
    EXPECT_FALSE(o.eligible(a, other, b));
  }
}

TEST(Kademlia, ExpansionRaisesIndegree) {
  // Kademlia's base degree is ~k log n with high variance, so the cap must
  // sit well above it for the budget to have headroom to accept adoptions.
  Overlay o = make(300, 11, true, 4096);
  const NodeIndex i = 42;
  const int before = o.node(i).budget.indegree();
  const int gained = o.expand_indegree(i, 6, 256);
  EXPECT_GT(gained, 0);
  EXPECT_EQ(o.node(i).budget.indegree(), before + gained);
  o.check_invariants();
}

TEST(Kademlia, ShedIndegree) {
  Overlay o = make(300, 12);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() >= 4) {
      const auto before = o.node(i).inlinks.size();
      const int shed = o.shed_indegree(i, 2);
      EXPECT_EQ(shed, 2);
      EXPECT_EQ(o.node(i).inlinks.size(), before - 2);
      o.check_invariants();
      return;
    }
  }
  FAIL();
}

TEST(Kademlia, GracefulLeaveKeepsRouting) {
  Overlay o = make(200, 13);
  Rng rng(14);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      NodeIndex v = rng.index(o.num_slots());
      if (o.node(v).alive && o.alive_count() > 20) o.leave_graceful(v);
    }
    o.check_invariants();
    for (int t = 0; t < 50; ++t) {
      NodeIndex src = rng.index(o.num_slots());
      while (!o.node(src).alive) src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.ring_size();
      ASSERT_EQ(route(o, src, key, 300), o.responsible(key));
    }
  }
}

TEST(Kademlia, PurgeAndRepairRecoverFromSilentFailure) {
  Overlay o = make(200, 15);
  Rng rng(16);
  // Fail a batch silently; stale contacts remain by design.
  std::vector<NodeIndex> dead;
  for (int i = 0; i < 30; ++i) {
    const NodeIndex v = rng.index(o.num_slots());
    if (o.node(v).alive && o.alive_count() > 50) {
      o.fail(v);
      dead.push_back(v);
    }
  }
  // Survivors purge every discovered corpse and repair emptied buckets.
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (!o.node(i).alive) continue;
    for (const NodeIndex v : dead) o.purge_dead(i, v);
    for (std::size_t slot = 0; slot < o.node(i).table.num_entries(); ++slot)
      o.repair_entry(i, slot);
  }
  o.check_invariants();
  for (int t = 0; t < 100; ++t) {
    NodeIndex src = rng.index(o.num_slots());
    while (!o.node(src).alive) src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    ASSERT_EQ(route(o, src, key, 300), o.responsible(key));
  }
}

TEST(Kademlia, IndegreeBoundsRespectedOnErtBuild) {
  Overlay o = make(400, 17, true, 12);
  std::size_t over = 0;
  for (NodeIndex i = 0; i < o.num_slots(); ++i)
    if (o.node(i).budget.indegree() > 12 + 8) ++over;
  // The routability floor can force-link past the bound, but only for a
  // small minority of nodes.
  EXPECT_LT(over, o.num_slots() / 10);
}

}  // namespace
}  // namespace ert::kademlia
