#include "dht/routing_entry.h"

#include <gtest/gtest.h>

namespace ert::dht {
namespace {

TEST(RoutingEntry, AddRemoveContains) {
  CandPool pool;
  RoutingEntry e(EntryKind::kCubical);
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e.add(pool, 3));
  EXPECT_FALSE(e.add(pool, 3));  // duplicate
  EXPECT_TRUE(e.add(pool, 7));
  EXPECT_EQ(e.size(), 2u);
  EXPECT_TRUE(e.contains(pool, 3));
  EXPECT_TRUE(e.remove(pool, 3));
  EXPECT_FALSE(e.remove(pool, 3));
  EXPECT_FALSE(e.contains(pool, 3));
}

TEST(RoutingEntry, MemorySlot) {
  CandPool pool;
  RoutingEntry e(EntryKind::kCyclic);
  EXPECT_EQ(e.memory(), kNoNode);
  e.add(pool, 5);
  e.remember(5);
  EXPECT_EQ(e.memory(), 5u);
  e.forget();
  EXPECT_EQ(e.memory(), kNoNode);
}

TEST(RoutingEntry, RemovingMemberClearsMemory) {
  CandPool pool;
  RoutingEntry e(EntryKind::kFinger);
  e.add(pool, 5);
  e.add(pool, 9);
  e.remember(5);
  e.remove(pool, 5);
  EXPECT_EQ(e.memory(), kNoNode);
  // Removing a non-memory member keeps the memory.
  e.remember(9);
  e.add(pool, 11);
  e.remove(pool, 11);
  EXPECT_EQ(e.memory(), 9u);
}

TEST(ElasticTable, EntriesAndOutdegree) {
  CandPool pool;
  ElasticTable t;
  const std::size_t a = t.add_entry(EntryKind::kCubical);
  const std::size_t b = t.add_entry(EntryKind::kCyclic);
  EXPECT_EQ(t.num_entries(), 2u);
  t.entry(a).add(pool, 1);
  t.entry(a).add(pool, 2);
  t.entry(b).add(pool, 3);
  EXPECT_EQ(t.outdegree(), 3u);
}

TEST(ElasticTable, RemoveEverywhere) {
  CandPool pool;
  ElasticTable t;
  t.add_entry(EntryKind::kCubical);
  t.add_entry(EntryKind::kCyclic);
  t.entry(0).add(pool, 9);
  t.entry(1).add(pool, 9);
  t.entry(1).add(pool, 4);
  EXPECT_TRUE(t.links_to(pool, 9));
  EXPECT_EQ(t.remove_everywhere(pool, 9), 2u);
  EXPECT_FALSE(t.links_to(pool, 9));
  EXPECT_EQ(t.outdegree(), 1u);
  EXPECT_EQ(t.remove_everywhere(pool, 9), 0u);
}

TEST(ElasticTable, KindPreserved) {
  ElasticTable t;
  t.add_entry(EntryKind::kInsideLeaf);
  EXPECT_EQ(t.entry(0).kind(), EntryKind::kInsideLeaf);
}

}  // namespace
}  // namespace ert::dht
