#include "dht/routing_entry.h"

#include <gtest/gtest.h>

namespace ert::dht {
namespace {

TEST(RoutingEntry, AddRemoveContains) {
  RoutingEntry e(EntryKind::kCubical);
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e.add(3));
  EXPECT_FALSE(e.add(3));  // duplicate
  EXPECT_TRUE(e.add(7));
  EXPECT_EQ(e.size(), 2u);
  EXPECT_TRUE(e.contains(3));
  EXPECT_TRUE(e.remove(3));
  EXPECT_FALSE(e.remove(3));
  EXPECT_FALSE(e.contains(3));
}

TEST(RoutingEntry, MemorySlot) {
  RoutingEntry e(EntryKind::kCyclic);
  EXPECT_EQ(e.memory(), kNoNode);
  e.add(5);
  e.remember(5);
  EXPECT_EQ(e.memory(), 5u);
  e.forget();
  EXPECT_EQ(e.memory(), kNoNode);
}

TEST(RoutingEntry, RemovingMemberClearsMemory) {
  RoutingEntry e(EntryKind::kFinger);
  e.add(5);
  e.add(9);
  e.remember(5);
  e.remove(5);
  EXPECT_EQ(e.memory(), kNoNode);
  // Removing a non-memory member keeps the memory.
  e.remember(9);
  e.add(11);
  e.remove(11);
  EXPECT_EQ(e.memory(), 9u);
}

TEST(ElasticTable, EntriesAndOutdegree) {
  ElasticTable t;
  const std::size_t a = t.add_entry(EntryKind::kCubical);
  const std::size_t b = t.add_entry(EntryKind::kCyclic);
  EXPECT_EQ(t.num_entries(), 2u);
  t.entry(a).add(1);
  t.entry(a).add(2);
  t.entry(b).add(3);
  EXPECT_EQ(t.outdegree(), 3u);
}

TEST(ElasticTable, RemoveEverywhere) {
  ElasticTable t;
  t.add_entry(EntryKind::kCubical);
  t.add_entry(EntryKind::kCyclic);
  t.entry(0).add(9);
  t.entry(1).add(9);
  t.entry(1).add(4);
  EXPECT_TRUE(t.links_to(9));
  EXPECT_EQ(t.remove_everywhere(9), 2u);
  EXPECT_FALSE(t.links_to(9));
  EXPECT_EQ(t.outdegree(), 1u);
  EXPECT_EQ(t.remove_everywhere(9), 0u);
}

TEST(ElasticTable, KindPreserved) {
  ElasticTable t;
  t.add_entry(EntryKind::kInsideLeaf);
  EXPECT_EQ(t.entry(0).kind(), EntryKind::kInsideLeaf);
}

}  // namespace
}  // namespace ert::dht
