#include "baselines/virtual_servers.h"

#include <gtest/gtest.h>

namespace ert::baselines {
namespace {

using dht::NodeIndex;

TEST(VirtualServers, CountScalesWithCapacity) {
  // c-hat * log2(n) vnodes, at least 1.
  EXPECT_EQ(VirtualServerMap::vnode_count_for(1.0, 1024), 10u);
  EXPECT_EQ(VirtualServerMap::vnode_count_for(2.0, 1024), 20u);
  EXPECT_EQ(VirtualServerMap::vnode_count_for(0.01, 1024), 1u);
}

class VsFixture : public ::testing::Test {
 protected:
  VsFixture()
      : overlay_(make_opts()),
        rng_(7),
        caps_(core::CapacityModel::from_raw(make_caps())),
        map_(overlay_, caps_, kReal, rng_) {
    for (NodeIndex v = 0; v < overlay_.num_slots(); ++v)
      overlay_.build_table(v, rng_);
  }

  static cycloid::OverlayOptions make_opts() {
    cycloid::OverlayOptions o;
    o.dimension = 10;  // 10 * 1024 ids, plenty for ~64*6 vnodes
    return o;
  }
  static std::vector<double> make_caps() {
    std::vector<double> c(kReal);
    for (std::size_t i = 0; i < kReal; ++i)
      c[i] = (i % 4 == 0) ? 4000.0 : 500.0;
    return c;
  }

  static constexpr std::size_t kReal = 64;
  cycloid::Overlay overlay_;
  Rng rng_;
  core::CapacityModel caps_;
  VirtualServerMap map_;
};

TEST_F(VsFixture, EveryVnodeMapsBack) {
  EXPECT_EQ(map_.real_count(), kReal);
  EXPECT_EQ(map_.vnode_count(), overlay_.num_slots());
  for (std::size_t r = 0; r < kReal; ++r) {
    for (NodeIndex v : map_.vnodes_of(r)) {
      EXPECT_EQ(map_.real_of(v), r);
      EXPECT_TRUE(overlay_.node(v).alive);
    }
  }
}

TEST_F(VsFixture, HighCapacityNodesGetMoreVnodes) {
  const std::size_t hi = map_.vnodes_of(0).size();   // capacity 4000
  const std::size_t lo = map_.vnodes_of(1).size();   // capacity 500
  EXPECT_GT(hi, 3 * lo);
}

TEST_F(VsFixture, VnodeIdsAreConsecutiveIntervals) {
  // The Godfrey-Stoica placement puts one vnode per consecutive interval:
  // a real node's vnode ids must span a small contiguous arc, not the whole
  // ring. Check the arc length against the expected interval footprint.
  const std::uint64_t space = overlay_.space().size();
  for (std::size_t r = 0; r < kReal; ++r) {
    const auto& vs = map_.vnodes_of(r);
    if (vs.size() < 2) continue;
    std::vector<std::uint64_t> lvs;
    for (NodeIndex v : vs)
      lvs.push_back(overlay_.space().to_linear(overlay_.node(v).id));
    std::sort(lvs.begin(), lvs.end());
    // Smallest arc containing all vnodes: complement of the largest gap.
    std::uint64_t largest_gap = lvs.front() + space - lvs.back();
    for (std::size_t i = 1; i < lvs.size(); ++i)
      largest_gap = std::max(largest_gap, lvs[i] - lvs[i - 1]);
    const std::uint64_t arc = space - largest_gap;
    // Expected footprint: vnode-count intervals of ~space/total-vnodes, plus
    // generous probing slack.
    const std::uint64_t expect =
        vs.size() * (space / map_.vnode_count()) * 4 + 64;
    EXPECT_LT(arc, expect) << "real node " << r << " spans too much";
  }
}

TEST_F(VsFixture, RoutingWorksOnVirtualOverlay) {
  Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    NodeIndex cur = rng.index(overlay_.num_slots());
    const std::uint64_t key = rng.bits() % overlay_.space().size();
    cycloid::RouteCtx ctx;
    std::size_t hops = 0;
    for (;;) {
      const auto step = overlay_.route_step(cur, key, ctx);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      cur = step.candidates.front();
      ASSERT_LT(++hops, 200u);
    }
    ASSERT_EQ(cur, overlay_.responsible(key));
  }
}

TEST_F(VsFixture, ChurnJoinAddsVnodes) {
  const std::size_t r = caps_.size();
  caps_.add_node(4000.0);
  const auto added = map_.add_real_node(overlay_, caps_, r, rng_);
  EXPECT_FALSE(added.empty());
  for (NodeIndex v : added) {
    overlay_.build_table(v, rng_);
    EXPECT_EQ(map_.real_of(v), r);
  }
  EXPECT_EQ(map_.real_count(), kReal + 1);
}

}  // namespace
}  // namespace ert::baselines
