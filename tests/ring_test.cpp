#include "dht/ring.h"

#include <gtest/gtest.h>

namespace ert::dht {
namespace {

TEST(RingMath, Clockwise) {
  EXPECT_EQ(clockwise(0, 5, 10), 5u);
  EXPECT_EQ(clockwise(7, 2, 10), 5u);
  EXPECT_EQ(clockwise(3, 3, 10), 0u);
}

TEST(RingMath, RingDistance) {
  EXPECT_EQ(ring_distance(0, 5, 10), 5u);
  EXPECT_EQ(ring_distance(1, 9, 10), 2u);
  EXPECT_EQ(ring_distance(9, 1, 10), 2u);
  EXPECT_EQ(ring_distance(4, 4, 10), 0u);
}

TEST(RingMath, InInterval) {
  EXPECT_TRUE(in_interval(3, 1, 5, 10));
  EXPECT_TRUE(in_interval(5, 1, 5, 10));   // closed at `to`
  EXPECT_FALSE(in_interval(1, 1, 5, 10));  // open at `from`
  EXPECT_TRUE(in_interval(0, 8, 2, 10));   // wrapping interval
  EXPECT_FALSE(in_interval(5, 8, 2, 10));
  EXPECT_TRUE(in_interval(7, 4, 4, 10));   // degenerate = full circle
}

class RingDirectoryTest : public ::testing::Test {
 protected:
  RingDirectoryTest() : dir_(100) {
    for (std::uint64_t id : {10u, 30u, 50u, 70u, 90u})
      EXPECT_TRUE(dir_.insert(id, id / 10));
  }
  RingDirectory dir_;
};

TEST_F(RingDirectoryTest, InsertRejectsDuplicates) {
  EXPECT_FALSE(dir_.insert(30, 99));
  EXPECT_EQ(dir_.size(), 5u);
}

TEST_F(RingDirectoryTest, OwnerLookup) {
  EXPECT_EQ(dir_.owner_of(30).value(), 3u);
  EXPECT_FALSE(dir_.owner_of(31).has_value());
}

TEST_F(RingDirectoryTest, SuccessorAssignsKeys) {
  EXPECT_EQ(dir_.successor(10), 1u);  // exact hit -> that node
  EXPECT_EQ(dir_.successor(11), 3u);
  EXPECT_EQ(dir_.successor(30), 3u);
  EXPECT_EQ(dir_.successor(95), 1u);  // wraps to 10
  EXPECT_EQ(dir_.successor(0), 1u);
}

TEST_F(RingDirectoryTest, Predecessor) {
  EXPECT_EQ(dir_.predecessor(30), 1u);   // strictly before 30 -> 10
  EXPECT_EQ(dir_.predecessor(31), 3u);
  EXPECT_EQ(dir_.predecessor(10), 9u);   // wraps back to 90
  EXPECT_EQ(dir_.predecessor(0), 9u);
}

TEST_F(RingDirectoryTest, SuccessorPredecessorIds) {
  EXPECT_EQ(dir_.successor_id(11), 30u);
  EXPECT_EQ(dir_.successor_id(91), 10u);
  EXPECT_EQ(dir_.predecessor_id(11), 10u);
  EXPECT_EQ(dir_.predecessor_id(10), 90u);
}

TEST_F(RingDirectoryTest, Erase) {
  EXPECT_TRUE(dir_.erase(30));
  EXPECT_FALSE(dir_.erase(30));
  EXPECT_EQ(dir_.successor(11), 5u);
  EXPECT_EQ(dir_.size(), 4u);
}

TEST_F(RingDirectoryTest, SuccessorsOfExcludesSelfAndWraps) {
  const auto s = dir_.successors_of(70, 3);
  EXPECT_EQ(s, (std::vector<std::uint64_t>{90, 10, 30}));
  const auto all = dir_.successors_of(10, 10);
  EXPECT_EQ(all.size(), 4u);  // never returns the key itself
}

TEST_F(RingDirectoryTest, PredecessorsOf) {
  const auto p = dir_.predecessors_of(30, 2);
  EXPECT_EQ(p, (std::vector<std::uint64_t>{10, 90}));
}

TEST_F(RingDirectoryTest, PositionDistance) {
  EXPECT_EQ(dir_.position_distance(10, 10), 0u);
  EXPECT_EQ(dir_.position_distance(10, 30), 1u);
  EXPECT_EQ(dir_.position_distance(10, 90), 1u);  // shorter the other way
  EXPECT_EQ(dir_.position_distance(10, 50), 2u);
  EXPECT_EQ(dir_.position_distance(30, 90), 2u);
}

TEST_F(RingDirectoryTest, StepToward) {
  EXPECT_EQ(dir_.step_toward(10, 50), 30u);
  EXPECT_EQ(dir_.step_toward(10, 90), 90u);  // counter-clockwise is shorter
  EXPECT_EQ(dir_.step_toward(90, 30), 10u);
}

TEST(RingDirectory, StepTowardConvergesFromAnywhere) {
  RingDirectory dir(1000);
  for (std::uint64_t i = 0; i < 50; ++i) dir.insert(i * 17 % 1000, i);
  const std::uint64_t target = 17;  // occupied (i=1)
  for (const std::uint64_t start : dir.ids()) {
    std::uint64_t cur = start;
    std::size_t hops = 0;
    while (cur != target) {
      cur = dir.step_toward(cur, target);
      ASSERT_LE(++hops, dir.size() / 2 + 1);
    }
  }
}

TEST(RingDirectory, FullModulusRing) {
  RingDirectory dir(0);  // 2^64 ring
  dir.insert(~0ull, 1);
  dir.insert(5, 2);
  EXPECT_EQ(dir.successor(6), 1u);
  EXPECT_EQ(dir.successor(0), 2u);
}

}  // namespace
}  // namespace ert::dht
