// Differential fuzz for the binary wire format (docs/WIRE.md): every
// message type round-trips encode -> decode_exact bit-exactly across the
// full varint size spectrum, every truncated prefix is rejected as
// kTruncated, corrupt frames land on the precise DecodeStatus the header
// comment promises (kBadType / kBadLength / kBadVarint), trailing bytes
// are tolerated by decode() and rejected by decode_exact(), and random
// byte soup never crashes the decoder (run under ASan/UBSan in CI's wire
// job).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "wire/wire.h"

namespace ert::wire {
namespace {

/// Draws a u64 whose varint length is uniform-ish over 1..10 bytes, so the
/// fuzz exercises every encoded width (raw bits() almost always needs 10).
std::uint64_t sized_bits(Rng& rng) {
  const std::size_t shift = rng.index(65);  // 0..64
  return shift == 64 ? 0 : rng.bits() >> shift;
}

/// One fuzz-built message of any type, kept in encodable form plus the
/// fields we expect back from the decoder.
struct Built {
  MsgType type;
  std::uint64_t f[5] = {};
  std::size_t nfields = 0;
  bool returning = false;
  std::vector<std::size_t> aset;
  std::size_t size = 0;
  std::uint8_t buf[kMaxFrameBytes] = {};
};

Built build(Rng& rng, MsgType type) {
  Built b;
  b.type = type;
  b.nfields = num_fields(type);
  for (std::size_t i = 0; i < b.nfields; ++i) b.f[i] = sized_bits(rng);
  switch (type) {
    case MsgType::kProbe: {
      const Probe m{b.f[0], b.f[1], b.f[2], b.f[3]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kProbeReply: {
      const ProbeReply m{b.f[0], b.f[1], b.f[2], b.f[3]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kForward: {
      b.returning = rng.bernoulli(0.5);
      b.aset.resize(rng.index(65));  // 0..64, the OverloadedSet cap
      for (auto& v : b.aset)
        v = static_cast<std::uint32_t>(rng.bits());  // node indices < 2^32
      const Forward m{b.f[0],      b.f[1],
                      b.f[2],      b.f[3],
                      b.f[4],      b.returning,
                      static_cast<std::uint32_t>(b.aset.size()),
                      b.aset.data()};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kAdaptShed: {
      const AdaptShed m{b.f[0], b.f[1]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kAdaptGrow: {
      const AdaptGrow m{b.f[0], b.f[1]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kBackwardAdd: {
      const BackwardAdd m{b.f[0], b.f[1], b.f[2]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kBackwardDrop: {
      const BackwardDrop m{b.f[0], b.f[1], b.f[2]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kJoin: {
      const Join m{b.f[0], b.f[1]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
    case MsgType::kLeave: {
      const Leave m{b.f[0]};
      b.size = encode(m, b.buf, sizeof b.buf);
      EXPECT_EQ(b.size, encoded_size(m));
      break;
    }
  }
  EXPECT_GT(b.size, 0u);
  EXPECT_LE(b.size, kMaxFrameBytes);
  return b;
}

void expect_round_trip(const Built& b) {
  const DecodeResult r = decode_exact(b.buf, b.size);
  ASSERT_EQ(r.status, DecodeStatus::kOk) << to_string(b.type);
  EXPECT_EQ(r.consumed, b.size);
  EXPECT_EQ(r.msg.type, b.type);
  EXPECT_EQ(r.msg.nfields, b.nfields);
  for (std::size_t i = 0; i < b.nfields; ++i)
    EXPECT_EQ(r.msg.f[i], b.f[i]) << to_string(b.type) << " field " << i;
  if (b.type == MsgType::kForward) {
    EXPECT_EQ(r.msg.returning(), b.returning);
    ASSERT_EQ(r.msg.aset_len, b.aset.size());
    for (std::size_t i = 0; i < b.aset.size(); ++i)
      EXPECT_EQ(r.msg.aset_at(i), static_cast<std::uint32_t>(b.aset[i]));
  } else {
    EXPECT_EQ(r.msg.flags, 0);
    EXPECT_EQ(r.msg.aset_len, 0u);
  }
}

TEST(WireFuzz, RoundTripsEveryTypeAcrossVarintWidths) {
  Rng rng(0x5eedULL);
  for (int iter = 0; iter < 4000; ++iter) {
    const auto type = static_cast<MsgType>(rng.index(kNumMsgTypes));
    expect_round_trip(build(rng, type));
  }
}

TEST(WireFuzz, EveryTruncatedPrefixIsTruncated) {
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const auto type = static_cast<MsgType>(rng.index(kNumMsgTypes));
    const Built b = build(rng, type);
    for (std::size_t cap = 0; cap < b.size; ++cap) {
      const DecodeResult r = decode(b.buf, cap);
      EXPECT_EQ(r.status, DecodeStatus::kTruncated)
          << to_string(type) << " prefix " << cap << "/" << b.size;
      EXPECT_EQ(r.consumed, 0u);
    }
  }
}

TEST(WireFuzz, BadTypeByteIsBadType) {
  Rng rng(78);
  const Built b = build(rng, MsgType::kProbe);
  std::uint8_t buf[kMaxFrameBytes];
  std::memcpy(buf, b.buf, b.size);
  for (int t = static_cast<int>(kNumMsgTypes); t < 256; t += 13) {
    buf[0] = static_cast<std::uint8_t>(t);
    EXPECT_EQ(decode(buf, b.size).status, DecodeStatus::kBadType) << t;
  }
}

TEST(WireFuzz, PaddedPayloadIsBadLength) {
  // Declare one payload byte more than the content holds; the scalar walk
  // then stops short of the declared end.
  Rng rng(79);
  for (int iter = 0; iter < 100; ++iter) {
    const auto type = static_cast<MsgType>(rng.index(kNumMsgTypes));
    Built b = build(rng, type);
    ASSERT_LT(b.size + 1, sizeof b.buf);
    const std::size_t payload = b.size - kHeaderSize + 1;
    b.buf[2] = static_cast<std::uint8_t>(payload & 0xFF);
    b.buf[3] = static_cast<std::uint8_t>(payload >> 8);
    b.buf[b.size] = 0x00;  // padding byte so the frame is "fully present"
    EXPECT_EQ(decode(b.buf, b.size + 1).status, DecodeStatus::kBadLength)
        << to_string(type);
  }
}

TEST(WireFuzz, VarintCutByPayloadEndIsBadLength) {
  // leave frame whose single field is a lone continuation byte: the varint
  // runs off the declared payload end (< 10 bytes left -> length bug, not
  // overflow).
  const std::uint8_t frame[] = {0x08, 0x00, 0x01, 0x00, 0x80};
  EXPECT_EQ(decode(frame, sizeof frame).status, DecodeStatus::kBadLength);
}

TEST(WireFuzz, TenByteVarintOverflowIsBadVarint) {
  // leave frame with ten continuation-heavy bytes: byte 10 carries bits
  // above 2^64, which is an encoding overflow even though the payload has
  // room for a maximal varint.
  const std::uint8_t frame[] = {0x08, 0x00, 0x0A, 0x00, 0xFF, 0xFF, 0xFF,
                                0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  EXPECT_EQ(decode(frame, sizeof frame).status, DecodeStatus::kBadVarint);
}

TEST(WireFuzz, ForwardAsetOverrunIsBadLength) {
  // forward frame declaring |A| = 3 with zero set bytes behind it.
  std::uint8_t frame[kMaxFrameBytes];
  const Forward m{1, 2, 3, 4, 5, false, 0, nullptr};
  const std::size_t size = encode(m, frame, sizeof frame);
  ASSERT_GT(size, 0u);
  frame[size - 1] = 0x03;  // the trailing |A| varint: claim 3 entries
  EXPECT_EQ(decode(frame, size).status, DecodeStatus::kBadLength);
}

TEST(WireFuzz, TrailingBytesStreamVsDatagram) {
  Rng rng(80);
  for (int iter = 0; iter < 200; ++iter) {
    const auto type = static_cast<MsgType>(rng.index(kNumMsgTypes));
    const Built b = build(rng, type);
    std::vector<std::uint8_t> buf(b.buf, b.buf + b.size);
    const std::size_t extra = 1 + rng.index(16);
    for (std::size_t i = 0; i < extra; ++i)
      buf.push_back(static_cast<std::uint8_t>(rng.bits()));
    // Stream decoding points at the next frame; datagram decoding rejects.
    const DecodeResult s = decode(buf.data(), buf.size());
    EXPECT_EQ(s.status, DecodeStatus::kOk);
    EXPECT_EQ(s.consumed, b.size);
    EXPECT_EQ(decode_exact(buf.data(), buf.size()).status,
              DecodeStatus::kTrailingGarbage);
  }
}

TEST(WireFuzz, BackToBackFramesStreamDecode) {
  // A concatenated capture stream decodes frame by frame via `consumed`.
  Rng rng(81);
  std::vector<std::uint8_t> stream;
  std::vector<Built> frames;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(build(rng, static_cast<MsgType>(rng.index(kNumMsgTypes))));
    stream.insert(stream.end(), frames.back().buf,
                  frames.back().buf + frames.back().size);
  }
  std::size_t pos = 0;
  for (const Built& b : frames) {
    const DecodeResult r = decode(stream.data() + pos, stream.size() - pos);
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    ASSERT_EQ(r.consumed, b.size);
    EXPECT_EQ(r.msg.type, b.type);
    pos += r.consumed;
  }
  EXPECT_EQ(pos, stream.size());
}

TEST(WireFuzz, RandomBytesNeverCrashAndClassify) {
  Rng rng(0xdec0dedULL);
  std::vector<std::uint8_t> buf;
  for (int iter = 0; iter < 20000; ++iter) {
    buf.resize(rng.index(kMaxFrameBytes + 32));
    for (auto& c : buf) c = static_cast<std::uint8_t>(rng.bits());
    const DecodeResult r = decode(buf.data(), buf.size());
    if (r.status == DecodeStatus::kOk) {
      EXPECT_LE(r.consumed, buf.size());
      EXPECT_GE(r.consumed, kHeaderSize);
      // Whatever decoded must re-encode to its own size class: the A set
      // view stays inside the buffer.
      if (r.msg.aset_len > 0) {
        EXPECT_GE(r.msg.aset_bytes, buf.data());
        EXPECT_LE(r.msg.aset_bytes + 4 * r.msg.aset_len,
                  buf.data() + buf.size());
      }
    } else {
      EXPECT_EQ(r.consumed, 0u);
    }
  }
}

TEST(WireFuzz, MutatedValidFramesNeverCrash) {
  Rng rng(0xabad1dea);
  for (int iter = 0; iter < 5000; ++iter) {
    Built b = build(rng, static_cast<MsgType>(rng.index(kNumMsgTypes)));
    const std::size_t flips = 1 + rng.index(4);
    for (std::size_t i = 0; i < flips; ++i)
      b.buf[rng.index(b.size)] ^= static_cast<std::uint8_t>(1 + rng.bits() % 255);
    const std::size_t cap = rng.bernoulli(0.25) ? rng.index(b.size + 1) : b.size;
    (void)decode(b.buf, cap);
    (void)decode_exact(b.buf, cap);
  }
}

}  // namespace
}  // namespace ert::wire
