#include "d1ht/overlay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ert::d1ht {
namespace {

using dht::NodeIndex;

Overlay make(std::size_t n, std::uint64_t seed = 1, bool bounds = false,
             int max_indegree = 1 << 20) {
  D1htOptions opts;
  opts.bits = 16;
  opts.enforce_indegree_bounds = bounds;
  Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    o.add_node_random(rng, 1.0, max_indegree, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i);
  return o;
}

NodeIndex route(const Overlay& o, NodeIndex src, std::uint64_t key,
                std::size_t max_hops, std::size_t* hops_out = nullptr) {
  dht::RouteScratch scratch;
  NodeIndex cur = src;
  std::size_t hops = 0;
  while (hops <= max_hops) {
    const dht::RouteStepInfo step = o.route_step(cur, key, scratch);
    if (step.arrived) {
      if (hops_out) *hops_out = hops;
      return cur;
    }
    EXPECT_FALSE(scratch.candidates.empty());
    cur = scratch.candidates.front();
    ++hops;
  }
  return dht::kNoNode;
}

/// Ring-successor ownership oracle: alive node with the minimal clockwise
/// distance from the key.
NodeIndex successor_ref(const Overlay& o, std::uint64_t key) {
  NodeIndex best = dht::kNoNode;
  std::uint64_t best_d = ~std::uint64_t{0};
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (!o.node(i).alive) continue;
    const std::uint64_t d =
        (o.node(i).id - key) & (o.ring_size() - 1);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

TEST(D1ht, BuildCreatesFullMesh) {
  Overlay o = make(120);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    const auto& n = o.node(i);
    ASSERT_EQ(n.table.entry(kFullTableEntry).size(), o.num_slots() - 1);
    for (NodeIndex j = 0; j < o.num_slots(); ++j) {
      if (j == i) continue;
      EXPECT_TRUE(
          n.table.entry(kFullTableEntry).contains(o.arena().cands, j));
    }
    EXPECT_GE(n.table.entry(kSuccessorEntry).size(), 1u);
  }
  o.check_invariants();
}

TEST(D1ht, ResponsibleIsRingSuccessor) {
  Overlay o = make(150, 2);
  Rng rng(3);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    EXPECT_EQ(o.responsible(key), successor_ref(o, key));
  }
}

TEST(D1ht, EveryLookupResolvesInOneHop) {
  Overlay o = make(200, 4);
  Rng rng(5);
  for (int t = 0; t < 500; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    std::size_t hops = 0;
    ASSERT_EQ(route(o, src, key, 2, &hops), o.responsible(key));
    EXPECT_LE(hops, 1u);
  }
}

TEST(D1ht, JoinAfterBuildRestoresTheMesh) {
  Overlay o = make(80, 6);
  Rng rng(7);
  const NodeIndex j = o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  o.build_table(j);
  o.check_invariants();
  ASSERT_EQ(o.node(j).table.entry(kFullTableEntry).size(), o.num_slots() - 1);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (i == j) continue;
    EXPECT_TRUE(
        o.node(i).table.entry(kFullTableEntry).contains(o.arena().cands, j));
  }
  // The joiner serves one-hop lookups immediately.
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    std::size_t hops = 0;
    ASSERT_EQ(route(o, j, key, 2, &hops), o.responsible(key));
    EXPECT_LE(hops, 1u);
  }
}

TEST(D1ht, GracefulLeaveKeepsOneHopRouting) {
  Overlay o = make(120, 8);
  Rng rng(9);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      NodeIndex v = rng.index(o.num_slots());
      if (o.node(v).alive && o.alive_count() > 20) o.leave_graceful(v);
    }
    o.check_invariants();
    // Nobody keeps a link to a departed node.
    for (NodeIndex i = 0; i < o.num_slots(); ++i) {
      if (!o.node(i).alive) continue;
      for (NodeIndex v = 0; v < o.num_slots(); ++v)
        if (!o.node(v).alive)
          EXPECT_FALSE(o.node(i).table.entry(kFullTableEntry)
                           .contains(o.arena().cands, v));
    }
    for (int t = 0; t < 60; ++t) {
      NodeIndex src = rng.index(o.num_slots());
      while (!o.node(src).alive) src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.ring_size();
      std::size_t hops = 0;
      ASSERT_EQ(route(o, src, key, 2, &hops), o.responsible(key));
      EXPECT_LE(hops, 1u);
    }
  }
}

TEST(D1ht, EligibilityIsTheSuccessorWindow) {
  Overlay o = make(200, 10);
  // Sort alive nodes by id to find ring positions.
  std::vector<NodeIndex> order;
  for (NodeIndex i = 0; i < o.num_slots(); ++i) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](NodeIndex a, NodeIndex b) {
    return o.node(a).id < o.node(b).id;
  });
  D1htOptions defaults;
  for (std::size_t p = 0; p < order.size(); p += 37) {
    const NodeIndex owner = order[p];
    // Immediate successor: always adoptable.
    EXPECT_TRUE(o.eligible(owner, kSuccessorEntry,
                           order[(p + 1) % order.size()]));
    // Far side of the ring: outside the spread window.
    EXPECT_FALSE(o.eligible(
        owner, kSuccessorEntry,
        order[(p + defaults.successor_spread + 50) % order.size()]));
  }
}

TEST(D1ht, ExpansionRaisesIndegree) {
  Overlay o = make(200, 11, true, 64);
  const NodeIndex i = 17;
  const int before = o.node(i).budget.indegree();
  const int gained = o.expand_indegree(i, 4, 256);
  EXPECT_GT(gained, 0);
  EXPECT_EQ(o.node(i).budget.indegree(), before + gained);
  o.check_invariants();
}

TEST(D1ht, ShedIndegree) {
  Overlay o = make(200, 12);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() >= 3) {
      const auto before = o.node(i).inlinks.size();
      const int shed = o.shed_indegree(i, 2);
      EXPECT_EQ(shed, 2);
      EXPECT_EQ(o.node(i).inlinks.size(), before - 2);
      o.check_invariants();
      return;
    }
  }
  FAIL();
}

TEST(D1ht, PurgeAndRepairAfterSilentFailure) {
  Overlay o = make(150, 13);
  Rng rng(14);
  std::vector<NodeIndex> dead;
  for (int i = 0; i < 20; ++i) {
    const NodeIndex v = rng.index(o.num_slots());
    if (o.node(v).alive && o.alive_count() > 40) {
      o.fail(v);
      dead.push_back(v);
    }
  }
  ASSERT_FALSE(dead.empty());
  // Stale full-table entries remain until EDRA detection purges them.
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (!o.node(i).alive) continue;
    for (const NodeIndex v : dead) o.purge_dead(i, v);
    for (std::size_t slot = 0; slot < kNumEntries; ++slot)
      o.repair_entry(i, slot);
  }
  o.check_invariants();
  for (int t = 0; t < 100; ++t) {
    NodeIndex src = rng.index(o.num_slots());
    while (!o.node(src).alive) src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    std::size_t hops = 0;
    ASSERT_EQ(route(o, src, key, 2, &hops), o.responsible(key));
    EXPECT_LE(hops, 1u);
  }
}

TEST(D1ht, DegradedRouteFallsBackToSuccessorList) {
  Overlay o = make(100, 15);
  Rng rng(16);
  dht::RouteScratch scratch;
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    const NodeIndex owner = o.responsible(key);
    NodeIndex src = rng.index(o.num_slots());
    while (src == owner) src = rng.index(o.num_slots());
    // Simulate an undelivered EDRA report: src never learned about owner.
    o.mutable_node(src).table.entry(kFullTableEntry)
        .remove(o.arena().cands, owner);
    const dht::RouteStepInfo step = o.route_step(src, key, scratch);
    ASSERT_FALSE(step.arrived);
    EXPECT_EQ(step.entry_index, kSuccessorEntry);
    // Successor-list hops still land on the owner, just not in one hop.
    ASSERT_EQ(route(o, src, key, o.num_slots()), owner);
    // Restore the mesh for the next iteration.
    o.mutable_node(src).table.entry(kFullTableEntry)
        .add(o.arena().cands, owner);
  }
}

}  // namespace
}  // namespace ert::d1ht
