#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace ert::metrics {
namespace {

TEST(Shares, FairLoadGivesOnes) {
  // Load exactly proportional to capacity -> every share is 1.
  const auto s = compute_shares({10, 20, 30}, {1, 2, 3});
  ASSERT_EQ(s.size(), 3u);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Shares, SkewDetected) {
  // Node 0 handles everything despite having half the capacity.
  const auto s = compute_shares({100, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Shares, ZeroLoadGivesZeros) {
  const auto s = compute_shares({0, 0}, {1, 2});
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Shares, MatchesPaperFormula) {
  // s_i = (l_i / sum l) / (c_i / sum c)
  const std::vector<double> load{5, 15};
  const std::vector<double> cap{4, 1};
  const auto s = compute_shares(load, cap);
  EXPECT_NEAR(s[0], (5.0 / 20.0) / (4.0 / 5.0), 1e-12);
  EXPECT_NEAR(s[1], (15.0 / 20.0) / (1.0 / 5.0), 1e-12);
}

TEST(LookupStats, Aggregation) {
  LookupStats st;
  st.add({1.0, 5, 2, 0});
  st.add({3.0, 7, 0, 1});
  st.add({2.0, 6, 1, 2});
  EXPECT_EQ(st.lookups(), 3u);
  EXPECT_EQ(st.total_heavy_encounters(), 3u);
  EXPECT_DOUBLE_EQ(st.avg_path_length(), 6.0);
  EXPECT_DOUBLE_EQ(st.avg_timeouts(), 1.0);
  const auto sum = st.latency_summary();
  EXPECT_DOUBLE_EQ(sum.mean, 2.0);
  EXPECT_DOUBLE_EQ(sum.p01, 1.0);
  EXPECT_DOUBLE_EQ(sum.p99, 3.0);
}

TEST(LookupStats, Empty) {
  LookupStats st;
  EXPECT_EQ(st.lookups(), 0u);
  EXPECT_DOUBLE_EQ(st.avg_path_length(), 0.0);
  EXPECT_DOUBLE_EQ(st.avg_timeouts(), 0.0);
}

TEST(DegreeTracker, TracksMaxima) {
  DegreeTracker t(3);
  t.observe(0, 5, 7);
  t.observe(0, 3, 9);  // lower indegree, higher outdegree
  t.observe(1, 10, 2);
  t.observe(2, 1, 1);
  const auto in = t.indegree_summary();
  const auto out = t.outdegree_summary();
  EXPECT_DOUBLE_EQ(in.p99, 10.0);
  EXPECT_NEAR(in.mean, (5 + 10 + 1) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.p99, 9.0);
}

TEST(DegreeTracker, GrowsForChurnJoins) {
  DegreeTracker t(1);
  t.observe(5, 4, 4);  // auto-grows
  EXPECT_DOUBLE_EQ(t.indegree_summary().p99, 4.0);
}

}  // namespace
}  // namespace ert::metrics
