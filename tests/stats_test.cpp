#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"

namespace ert {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanVarMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 31; ++i) {
    const double x = i * -1.1 + 9;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_EQ(p.percentile(1), 1.0);
  EXPECT_EQ(p.percentile(50), 50.0);
  EXPECT_EQ(p.percentile(99), 99.0);
  EXPECT_EQ(p.percentile(100), 100.0);
  EXPECT_EQ(p.min(), 1.0);
  EXPECT_EQ(p.max(), 100.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(Percentiles, SingleSample) {
  Percentiles p;
  p.add(7.5);
  EXPECT_EQ(p.percentile(1), 7.5);
  EXPECT_EQ(p.percentile(50), 7.5);
  EXPECT_EQ(p.percentile(99), 7.5);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(10);
  EXPECT_EQ(p.median(), 10.0);
  p.add(1);
  p.add(2);
  EXPECT_EQ(p.median(), 2.0);
}

TEST(Percentiles, Summary) {
  Percentiles p;
  for (int i = 1; i <= 200; ++i) p.add(i);
  const PctSummary s = summarize(p);
  EXPECT_DOUBLE_EQ(s.mean, 100.5);
  EXPECT_EQ(s.p01, 2.0);
  EXPECT_EQ(s.p99, 198.0);
}

// Reference copy of the keep-everything collector the exact path must stay
// bit-identical to: sort + nearest rank, accumulate-in-order mean.
double reference_percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), v.size());
  return v[idx - 1];
}

double reference_mean(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// 2048 lookup-latency-shaped samples: log-uniform across five decades with
/// an exponential tail mixed in, the shape the simulator's latency
/// collectors actually see.
std::vector<double> latency_shaped_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double log_uniform = 1e-3 * std::exp(rng.uniform() * std::log(1e5));
    v.push_back(i % 4 == 0 ? rng.exponential(0.5) + 1e-3 : log_uniform);
  }
  return v;
}

TEST(StreamingPercentiles, ExactPathBitIdenticalBelowLimit) {
  const auto data = latency_shaped_samples(2048, 11);
  Percentiles p;  // default limit 65536: never spills at tier-1 sizes
  for (double x : data) p.add(x);
  ASSERT_FALSE(p.streaming());
  EXPECT_EQ(p.mean(), reference_mean(data));
  for (double q : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(p.percentile(q), reference_percentile(data, q));
}

TEST(StreamingPercentiles, AccuracyWithinHalfPercentAtN2048) {
  const auto data = latency_shaped_samples(2048, 7);
  Percentiles stream(0);  // force the histogram path from the first sample
  for (double x : data) stream.add(x);
  ASSERT_TRUE(stream.streaming());
  EXPECT_EQ(stream.count(), data.size());
  for (double q : {1.0, 99.0}) {
    const double exact = reference_percentile(data, q);
    EXPECT_NEAR(stream.percentile(q), exact, 0.005 * exact)
        << "p" << q << " off by more than 0.5%";
  }
  const double exact_mean = reference_mean(data);
  EXPECT_NEAR(stream.mean(), exact_mean, 0.005 * exact_mean);
}

TEST(StreamingPercentiles, SpillBoundaryPreservesExactAggregates) {
  Percentiles p(64);
  std::vector<double> data;
  for (int i = 0; i < 64; ++i) {
    data.push_back(0.5 + 0.01 * i);
    p.add(data.back());
  }
  ASSERT_FALSE(p.streaming());
  p.add(3.75);  // 65th sample crosses the limit
  data.push_back(3.75);
  ASSERT_TRUE(p.streaming());
  EXPECT_EQ(p.count(), 65u);
  EXPECT_TRUE(p.samples().empty());
  // min/max/mean survive the spill exactly (mean: same left-to-right sum).
  EXPECT_EQ(p.min(), 0.5);
  EXPECT_EQ(p.max(), 3.75);
  EXPECT_DOUBLE_EQ(p.mean(), reference_mean(data));
}

TEST(StreamingPercentiles, ExtremesClampToObservedRange) {
  Percentiles p(0);
  p.add(1e-9);  // below the histogram's 1e-6 floor: underflow bin
  p.add(1.0);
  p.add(1e9);  // above the 1e6 ceiling: overflow bin
  EXPECT_EQ(p.percentile(0.0), 1e-9);
  EXPECT_EQ(p.percentile(1.0), 1e-9);
  EXPECT_EQ(p.percentile(100.0), 1e9);
  EXPECT_EQ(p.percentile(99.0), 1e9);
  // The mid bin's reported value stays within [min, max] by construction.
  const double mid = p.percentile(50.0);
  EXPECT_GE(mid, 1e-9);
  EXPECT_LE(mid, 1e9);
}

TEST(StreamingPercentiles, ClearResetsStreamingState) {
  Percentiles p(2);
  for (double x : {1.0, 2.0, 3.0}) p.add(x);
  ASSERT_TRUE(p.streaming());
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.streaming());
  p.add(5.0);
  EXPECT_EQ(p.median(), 5.0);
}

TEST(RunningMax, Tracks) {
  RunningMax m;
  EXPECT_EQ(m.value(), 0.0);
  m.observe(3);
  m.observe(1);
  EXPECT_EQ(m.value(), 3.0);
  m.reset();
  EXPECT_EQ(m.value(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
}

TEST(TablePrinter, AlignsAndFormats) {
  TablePrinter t({"x", "longheader"});
  t.add_row(2.0, {1.23456});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longheader"), std::string::npos);
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(TablePrinter, FmtNum) {
  EXPECT_EQ(fmt_num(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_num(3.0, 0), "3");
}

}  // namespace
}  // namespace ert
