#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/table_printer.h"

namespace ert {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanVarMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 31; ++i) {
    const double x = i * -1.1 + 9;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_EQ(p.percentile(1), 1.0);
  EXPECT_EQ(p.percentile(50), 50.0);
  EXPECT_EQ(p.percentile(99), 99.0);
  EXPECT_EQ(p.percentile(100), 100.0);
  EXPECT_EQ(p.min(), 1.0);
  EXPECT_EQ(p.max(), 100.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(Percentiles, SingleSample) {
  Percentiles p;
  p.add(7.5);
  EXPECT_EQ(p.percentile(1), 7.5);
  EXPECT_EQ(p.percentile(50), 7.5);
  EXPECT_EQ(p.percentile(99), 7.5);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(10);
  EXPECT_EQ(p.median(), 10.0);
  p.add(1);
  p.add(2);
  EXPECT_EQ(p.median(), 2.0);
}

TEST(Percentiles, Summary) {
  Percentiles p;
  for (int i = 1; i <= 200; ++i) p.add(i);
  const PctSummary s = summarize(p);
  EXPECT_DOUBLE_EQ(s.mean, 100.5);
  EXPECT_EQ(s.p01, 2.0);
  EXPECT_EQ(s.p99, 198.0);
}

TEST(RunningMax, Tracks) {
  RunningMax m;
  EXPECT_EQ(m.value(), 0.0);
  m.observe(3);
  m.observe(1);
  EXPECT_EQ(m.value(), 3.0);
  m.reset();
  EXPECT_EQ(m.value(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
}

TEST(TablePrinter, AlignsAndFormats) {
  TablePrinter t({"x", "longheader"});
  t.add_row(2.0, {1.23456});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longheader"), std::string::npos);
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(TablePrinter, FmtNum) {
  EXPECT_EQ(fmt_num(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_num(3.0, 0), "3");
}

}  // namespace
}  // namespace ert
