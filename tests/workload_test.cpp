#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace ert::workload {
namespace {

TEST(PoissonProcess, MeanGapMatchesRate) {
  PoissonProcess p(4.0);
  Rng rng(1);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += p.next_gap(rng);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Impulse, MakeRespectsSizes) {
  Rng rng(2);
  const auto w = ImpulseWorkload::make(2048, 100, 50, rng);
  EXPECT_TRUE(w.enabled());
  EXPECT_EQ(w.interval_len, 100u);
  EXPECT_EQ(w.hot_keys.size(), 50u);
  EXPECT_LT(w.interval_start, 2048u);
  for (std::uint64_t k : w.hot_keys) EXPECT_LT(k, 2048u);
}

TEST(Impulse, IntervalMembership) {
  ImpulseWorkload w;
  w.space_size = 100;
  w.interval_start = 90;
  w.interval_len = 20;  // wraps: [90, 100) + [0, 10)
  EXPECT_TRUE(w.in_interval(90));
  EXPECT_TRUE(w.in_interval(99));
  EXPECT_TRUE(w.in_interval(0));
  EXPECT_TRUE(w.in_interval(9));
  EXPECT_FALSE(w.in_interval(10));
  EXPECT_FALSE(w.in_interval(89));
}

TEST(Impulse, DisabledByDefault) {
  ImpulseWorkload w;
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.in_interval(0));
}

TEST(Impulse, PickKeyOnlyReturnsHotKeys) {
  Rng rng(3);
  const auto w = ImpulseWorkload::make(2048, 100, 50, rng);
  std::set<std::uint64_t> hot(w.hot_keys.begin(), w.hot_keys.end());
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(hot.count(w.pick_key(rng)));
}

TEST(Impulse, KeysClampToSpace) {
  Rng rng(4);
  const auto w = ImpulseWorkload::make(64, 200, 10, rng);
  EXPECT_EQ(w.interval_len, 64u);  // clamped to the whole space
}

TEST(ZipfKeys, SkewAndCatalog) {
  Rng rng(5);
  ZipfKeys z(1 << 20, 100, 1.0, rng);
  EXPECT_EQ(z.catalog_size(), 100u);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.pick(rng)];
  // The most popular key should dwarf the median key.
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 1500);  // rank-1 under s=1, n=100 gets ~19%
}

TEST(ZipfKeys, ReshuffleChangesHotKey) {
  Rng rng(6);
  ZipfKeys z(1 << 20, 50, 1.2, rng);
  auto hottest = [&](Rng& r) {
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 5000; ++i) ++counts[z.pick(r)];
    std::uint64_t best = 0;
    int bc = -1;
    for (auto& [k, c] : counts)
      if (c > bc) {
        bc = c;
        best = k;
      }
    return best;
  };
  const auto before = hottest(rng);
  z.reshuffle(rng);
  const auto after = hottest(rng);
  // Popularity drifted to (almost surely) another key.
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace ert::workload
