// The experiment engine on Chord and Pastry substrates (the paper: "ERT
// can also be applied to other DHT networks", Sec. 5), plus the
// data-forwarding (anonymity) workload mode.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace ert::harness {
namespace {

SimParams small_params() {
  SimParams p;
  p.num_nodes = 256;
  p.num_lookups = 400;
  p.lookup_rate = 16.0;
  p.seed = 9;
  return p;
}

struct Case {
  SubstrateKind kind;
  Protocol proto;
};

class SubstrateMatrixTest : public ::testing::TestWithParam<Case> {};

TEST_P(SubstrateMatrixTest, CompletesWithSaneMetrics) {
  const auto r =
      run_experiment(small_params(), GetParam().proto, GetParam().kind);
  EXPECT_EQ(r.completed_lookups, 400u);
  EXPECT_EQ(r.dropped_lookups, 0u);
  EXPECT_GT(r.avg_path_length, 0.5);
  EXPECT_GT(r.lookup_time.mean, 0.0);
}

TEST_P(SubstrateMatrixTest, SurvivesChurn) {
  SimParams p = small_params();
  p.churn_interarrival = 0.5;
  const auto r = run_experiment(p, GetParam().proto, GetParam().kind);
  EXPECT_GT(r.completed_lookups, 390u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SubstrateMatrixTest,
    ::testing::Values(Case{SubstrateKind::kChord, Protocol::kBase},
                      Case{SubstrateKind::kChord, Protocol::kErtA},
                      Case{SubstrateKind::kChord, Protocol::kErtF},
                      Case{SubstrateKind::kChord, Protocol::kErtAF},
                      Case{SubstrateKind::kPastry, Protocol::kBase},
                      Case{SubstrateKind::kPastry, Protocol::kErtA},
                      Case{SubstrateKind::kPastry, Protocol::kErtF},
                      Case{SubstrateKind::kPastry, Protocol::kErtAF},
                      Case{SubstrateKind::kCan, Protocol::kBase},
                      Case{SubstrateKind::kCan, Protocol::kErtA},
                      Case{SubstrateKind::kCan, Protocol::kErtF},
                      Case{SubstrateKind::kCan, Protocol::kErtAF},
                      Case{SubstrateKind::kKademlia, Protocol::kBase},
                      Case{SubstrateKind::kKademlia, Protocol::kNS},
                      Case{SubstrateKind::kKademlia, Protocol::kErtA},
                      Case{SubstrateKind::kKademlia, Protocol::kErtF},
                      Case{SubstrateKind::kKademlia, Protocol::kErtAF},
                      Case{SubstrateKind::kD1ht, Protocol::kBase},
                      Case{SubstrateKind::kD1ht, Protocol::kErtA},
                      Case{SubstrateKind::kD1ht, Protocol::kErtF},
                      Case{SubstrateKind::kD1ht, Protocol::kErtAF}),
    [](const auto& info) {
      std::string name{to_string(info.param.kind)};
      name += "_";
      for (char c : to_string(info.param.proto))
        if (c != '/') name.push_back(c);
      return name;
    });

TEST(Substrate, ChordPathsShorterThanCycloid) {
  // O(log n) fingers vs constant-degree CCC: Chord should route in fewer
  // hops at the same size — the reason the paper expects log-degree
  // networks to do even better.
  SimParams p = small_params();
  const auto cyc = run_experiment(p, Protocol::kBase, SubstrateKind::kCycloid);
  const auto cho = run_experiment(p, Protocol::kBase, SubstrateKind::kChord);
  EXPECT_LT(cho.avg_path_length, cyc.avg_path_length);
}

TEST(Substrate, ErtImprovesShareOnChordToo) {
  SimParams p = small_params();
  p.num_lookups = 800;
  const auto base =
      run_averaged(p, Protocol::kBase, 3, SubstrateKind::kChord);
  const auto ert =
      run_averaged(p, Protocol::kErtAF, 3, SubstrateKind::kChord);
  EXPECT_LT(ert.p99_share, base.p99_share);
}

TEST(Substrate, ErtImprovesShareOnPastryToo) {
  SimParams p = small_params();
  p.num_lookups = 800;
  const auto base =
      run_averaged(p, Protocol::kBase, 3, SubstrateKind::kPastry);
  const auto ert =
      run_averaged(p, Protocol::kErtAF, 3, SubstrateKind::kPastry);
  EXPECT_LT(ert.p99_share, base.p99_share);
}

TEST(Substrate, ErtImprovesCongestionOnCan) {
  SimParams p = small_params();
  p.num_lookups = 800;
  const auto base = run_averaged(p, Protocol::kBase, 3, SubstrateKind::kCan);
  const auto ert = run_averaged(p, Protocol::kErtAF, 3, SubstrateKind::kCan);
  EXPECT_LT(ert.p99_max_congestion, base.p99_max_congestion);
  EXPECT_LT(ert.heavy_encounters, base.heavy_encounters);
}

TEST(Substrate, D1htRoutesInOneHop) {
  // The whole point of the full table: churn-free lookups resolve at the
  // first forward (source -> owner), so the mean path length sits at ~1
  // (exactly 1 minus the lookups that start at the owner).
  const auto r =
      run_experiment(small_params(), Protocol::kBase, SubstrateKind::kD1ht);
  EXPECT_EQ(r.completed_lookups, 400u);
  EXPECT_LE(r.avg_path_length, 1.0);
  EXPECT_GT(r.avg_path_length, 0.9);
}

TEST(Substrate, KademliaPathsLogarithmic) {
  // O(log n) buckets: paths comparable to Chord's, far below the
  // constant-degree Cycloid.
  SimParams p = small_params();
  const auto kad =
      run_experiment(p, Protocol::kBase, SubstrateKind::kKademlia);
  const auto cyc = run_experiment(p, Protocol::kBase, SubstrateKind::kCycloid);
  EXPECT_LT(kad.avg_path_length, cyc.avg_path_length);
}

TEST(Substrate, DeterministicPerSubstrate) {
  for (auto kind : {SubstrateKind::kChord, SubstrateKind::kPastry,
                    SubstrateKind::kCan, SubstrateKind::kKademlia,
                    SubstrateKind::kD1ht}) {
    const auto a = run_experiment(small_params(), Protocol::kErtAF, kind);
    const auto b = run_experiment(small_params(), Protocol::kErtAF, kind);
    EXPECT_DOUBLE_EQ(a.lookup_time.mean, b.lookup_time.mean);
  }
}

TEST(DataForwarding, ResponseLegDoublesPathAndLoad) {
  SimParams p = small_params();
  const auto plain = run_experiment(p, Protocol::kErtAF);
  p.data_forwarding = true;
  const auto fwd = run_experiment(p, Protocol::kErtAF);
  EXPECT_EQ(fwd.completed_lookups, 400u);
  // The response retraces the query path: total hops roughly double and
  // end-to-end time grows.
  EXPECT_GT(fwd.avg_path_length, 1.6 * plain.avg_path_length);
  EXPECT_GT(fwd.lookup_time.mean, plain.lookup_time.mean);
}

TEST(DataForwarding, WorksUnderChurn) {
  SimParams p = small_params();
  p.data_forwarding = true;
  p.churn_interarrival = 0.5;
  const auto r = run_experiment(p, Protocol::kErtAF);
  EXPECT_GT(r.completed_lookups, 380u);
}

TEST(DataForwarding, WorksOnChord) {
  SimParams p = small_params();
  p.data_forwarding = true;
  const auto r = run_experiment(p, Protocol::kBase, SubstrateKind::kChord);
  EXPECT_EQ(r.completed_lookups, 400u);
}

}  // namespace
}  // namespace ert::harness
