// Differential fuzz of the sharded conservative-window PDES driver
// (sim/sharded.h) against the plain single-queue kernel. Both sides run
// the same deterministic random event DAG: every event's children are a
// pure function of its id, so execution order cannot change the program,
// only the schedule. Intra-shard children land below the lookahead floor;
// cross-shard children are posted at now + lookahead or later (the
// conservatism contract). The sharded run must execute exactly the same
// (shard, id, time) multiset as the single queue — same events, same
// timestamps to the bit — and per-shard execution order must be identical
// whether the windows run inline or on a worker pool.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/simulator.h"

namespace ert::sim {
namespace {

constexpr Time kLookahead = 0.010;
constexpr int kMaxDepth = 7;

/// splitmix64 finalizer: every event id is hashed into an independent
/// stream, so child generation depends only on the id, never on when or
/// where the parent executed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Rec {
  int shard;
  std::uint64_t id;
  Time when;

  friend bool operator==(const Rec& a, const Rec& b) {
    return a.shard == b.shard && a.id == b.id && a.when == b.when;
  }
  friend bool operator<(const Rec& a, const Rec& b) {
    return std::tie(a.when, a.shard, a.id) < std::tie(b.when, b.shard, b.id);
  }
};

/// One derived child edge of the DAG. `cross` children always sit at
/// >= parent + lookahead; intra-shard children may be arbitrarily close.
struct Child {
  int shard;
  std::uint64_t id;
  Time when;
  bool cross;
};

/// Pure function (parent id, slot k) -> child. Both harnesses call this,
/// so the DAGs are identical by construction.
int derive_children(std::uint64_t id, int shard, int shards, Time t,
                    int depth, Child out[2]) {
  if (depth >= kMaxDepth) return 0;
  const std::uint64_t h = mix(id);
  const int n = static_cast<int>(h % 3);  // 0..2 children, mean 1
  for (int k = 0; k < n; ++k) {
    const std::uint64_t cid = mix(id ^ (0x2545f4914f6cdd1dULL * (k + 1)));
    const double u =
        static_cast<double>((cid >> 16) & 0xffff) / 65535.0;  // [0,1]
    const bool cross = shards > 1 && ((cid >> 8) & 7) == 0;   // ~1/8 edges
    if (cross) {
      const int to =
          (shard + 1 + static_cast<int>(cid % (shards - 1))) % shards;
      out[k] = Child{to, cid, t + kLookahead + u * 0.010, true};
    } else {
      out[k] = Child{shard, cid, t + 0.0005 + u * 0.008, false};
    }
  }
  return n;
}

/// The program's roots, one small burst per shard.
std::vector<Child> derive_roots(std::uint64_t seed, int shards) {
  std::vector<Child> roots;
  for (int s = 0; s < shards; ++s) {
    const std::uint64_t base = mix(seed ^ (0xd1b54a32d192ed03ULL * (s + 1)));
    const int n = 1 + static_cast<int>(base % 3);
    for (int k = 0; k < n; ++k) {
      const std::uint64_t id = mix(base + k);
      const double u = static_cast<double>(id & 0xffff) / 65535.0;
      roots.push_back(Child{s, id, 0.001 + u * 0.020, false});
    }
  }
  return roots;
}

/// Reference: the whole program on one Simulator. Cross-shard sends are
/// ordinary schedule_at calls — a single queue needs no lookahead.
struct SingleQueueRun {
  Simulator sim;
  int shards;
  std::vector<Rec> log;
  std::size_t cross_edges = 0;

  void exec(int shard, std::uint64_t id, Time t, int depth) {
    log.push_back(Rec{shard, id, t});
    Child c[2];
    const int n = derive_children(id, shard, shards, t, depth, c);
    for (int k = 0; k < n; ++k) {
      if (c[k].cross) ++cross_edges;
      const Child ch = c[k];
      sim.schedule_at(ch.when, [this, ch, depth] {
        exec(ch.shard, ch.id, ch.when, depth + 1);
      });
    }
  }

  explicit SingleQueueRun(std::uint64_t seed, int s) : shards(s) {
    for (const Child& r : derive_roots(seed, s)) {
      sim.schedule_at(r.when,
                      [this, r] { exec(r.shard, r.id, r.when, 0); });
    }
    sim.run();
  }
};

/// Sharded: intra-shard children go through the owner's queue, cross-shard
/// children through the mailbox/barrier transport.
struct ShardedRun {
  ShardedSimulator sim;
  std::vector<std::vector<Rec>> logs;  ///< per shard; single-writer each.
  std::size_t executed = 0;

  void exec(int shard, std::uint64_t id, Time t, int depth) {
    logs[static_cast<std::size_t>(shard)].push_back(Rec{shard, id, t});
    Child c[2];
    const int n = derive_children(id, shard, sim.shards(), t, depth, c);
    for (int k = 0; k < n; ++k) {
      const Child ch = c[k];
      if (ch.cross) {
        sim.post(shard, ch.shard, ch.when, [this, ch, depth] {
          exec(ch.shard, ch.id, ch.when, depth + 1);
        });
      } else {
        sim.shard(shard).schedule_at(ch.when, [this, ch, depth] {
          exec(ch.shard, ch.id, ch.when, depth + 1);
        });
      }
    }
  }

  ShardedRun(std::uint64_t seed, int shards, int workers)
      : sim(shards, kLookahead, workers),
        logs(static_cast<std::size_t>(shards)) {
    for (const Child& r : derive_roots(seed, shards)) {
      sim.shard(r.shard).schedule_at(
          r.when, [this, r] { exec(r.shard, r.id, r.when, 0); });
    }
    executed = sim.run();
  }

  std::vector<Rec> merged() const {
    std::vector<Rec> all;
    for (const auto& l : logs) all.insert(all.end(), l.begin(), l.end());
    return all;
  }
};

TEST(PdesFuzz, ShardedMatchesSingleQueueMultiset) {
  std::size_t total_events = 0;
  std::size_t total_cross = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    for (const int shards : {2, 3, 4, 7}) {
      SingleQueueRun ref(seed, shards);
      ShardedRun par(seed, shards, /*workers=*/shards);

      std::vector<Rec> a = ref.log;
      std::vector<Rec> b = par.merged();
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a.size(), b.size())
          << "seed " << seed << " shards " << shards;
      // Bitwise-equal timestamps: both sides compute child times with the
      // same arithmetic from the same parent time, so even the doubles
      // must match exactly, not approximately.
      ASSERT_EQ(a, b) << "seed " << seed << " shards " << shards;
      EXPECT_EQ(par.executed, b.size());

      total_events += a.size();
      total_cross += ref.cross_edges;
    }
  }
  // The fuzz corpus must actually exercise the transport: plenty of
  // events overall and a healthy share of cross-shard barrier traffic.
  EXPECT_GT(total_events, 1000u);
  EXPECT_GT(total_cross, 50u);
}

TEST(PdesFuzz, WorkerPoolDoesNotChangePerShardOrder) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    for (const int shards : {2, 4}) {
      ShardedRun inline_run(seed, shards, /*workers=*/1);
      ShardedRun pooled_run(seed, shards, /*workers=*/shards);
      for (int s = 0; s < shards; ++s) {
        ASSERT_EQ(inline_run.logs[static_cast<std::size_t>(s)],
                  pooled_run.logs[static_cast<std::size_t>(s)])
            << "seed " << seed << " shards " << shards << " shard " << s;
      }
    }
  }
}

TEST(PdesFuzz, CrossShardEdgesRespectLookaheadFloor) {
  // The generator itself must never emit a cross edge below the floor —
  // if it did, ShardedSimulator::post's conservatism assert would fire in
  // the tests above; check the property directly as well.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const std::uint64_t id = mix(seed);
    Child c[2];
    const int n = derive_children(id, 0, 8, /*t=*/1.0, /*depth=*/0, c);
    for (int k = 0; k < n; ++k) {
      if (c[k].cross) EXPECT_GE(c[k].when, 1.0 + kLookahead);
    }
  }
}

}  // namespace
}  // namespace ert::sim
