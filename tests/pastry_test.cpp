#include "pastry/overlay.h"

#include <gtest/gtest.h>

namespace ert::pastry {
namespace {

using dht::NodeIndex;

Overlay make(std::size_t n, std::uint64_t seed = 1, bool bounds = false,
             int max_indegree = 1 << 20) {
  PastryOptions opts;  // 8 rows x 2 bits = 16-bit ids
  opts.enforce_indegree_bounds = bounds;
  Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    o.add_node_random(rng, 1.0, max_indegree, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i);
  return o;
}

NodeIndex route(const Overlay& o, NodeIndex src, std::uint64_t key,
                std::size_t max_hops, std::size_t* hops_out = nullptr) {
  NodeIndex cur = src;
  std::size_t hops = 0;
  while (hops < max_hops) {
    const RouteStep step = o.route_step(cur, key);
    if (step.arrived) {
      if (hops_out) *hops_out = hops;
      return cur;
    }
    EXPECT_FALSE(step.candidates.empty());
    cur = step.candidates.front();
    ++hops;
  }
  return dht::kNoNode;
}

TEST(Pastry, DigitHelpers) {
  PastryOptions opts;
  Overlay o(opts);
  // id 0b10'11'01'00'11'00'01'10: digits 2,3,1,0,3,0,1,2
  const std::uint64_t id = 0b1011010011000110;
  EXPECT_EQ(o.digit_of(id, 0), 2);
  EXPECT_EQ(o.digit_of(id, 1), 3);
  EXPECT_EQ(o.digit_of(id, 7), 2);
  EXPECT_EQ(o.shared_digits(id, id), 8);
  EXPECT_EQ(o.shared_digits(id, id ^ 0b11), 7);
  EXPECT_EQ(o.shared_digits(id, id ^ (0b11ull << 14)), 0);
}

TEST(Pastry, BuildFillsReachableEntries) {
  Overlay o = make(300);
  // Row 0 has 3 non-own columns; with 300 nodes over base 4 each column
  // block holds ~75 nodes, so row 0 must be fully populated.
  for (NodeIndex i = 0; i < std::min<std::size_t>(o.num_slots(), 50); ++i) {
    const int own = o.digit_of(o.node(i).id, 0);
    for (int v = 0; v < o.base(); ++v) {
      if (v == own) continue;
      EXPECT_FALSE(o.node(i).table.entry(o.prefix_slot(0, v)).empty())
          << "node " << i << " row 0 col " << v;
    }
    EXPECT_FALSE(o.node(i).table.entry(o.leaf_entry()).empty());
  }
  o.check_invariants();
}

TEST(Pastry, EntryEligibility) {
  Overlay o = make(100, 2);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    for (int r = 0; r < o.rows(); ++r) {
      for (int v = 0; v < o.base(); ++v) {
        const auto slot = o.prefix_slot(r, v);
        for (const dht::NodeIndex32 c :
             o.node(i).table.entry(slot).candidates(o.arena().cands)) {
          EXPECT_GE(o.shared_digits(o.node(i).id, o.node(c).id), r);
          EXPECT_EQ(o.digit_of(o.node(c).id, r), v);
        }
      }
    }
  }
}

TEST(Pastry, LookupsArriveWithPrefixProgress) {
  Overlay o = make(500, 3);
  Rng rng(4);
  std::size_t total = 0;
  for (int t = 0; t < 300; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    std::size_t hops = 0;
    ASSERT_EQ(route(o, src, key, 64, &hops), o.responsible(key));
    total += hops;
  }
  // log_4(500) ~ 4.5 expected hops.
  EXPECT_LT(static_cast<double>(total) / 300.0, 8.0);
}

TEST(Pastry, ResponsibleIsNumericallyClosest) {
  Overlay o = make(50, 5);
  Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    const NodeIndex r = o.responsible(key);
    const std::uint64_t rd =
        dht::ring_distance(o.node(r).id, key, o.ring_size());
    for (NodeIndex i = 0; i < o.num_slots(); ++i) {
      EXPECT_LE(rd, dht::ring_distance(o.node(i).id, key, o.ring_size()));
    }
  }
}

TEST(Pastry, ExpansionRaisesIndegree) {
  Overlay o = make(400, 7, true, 64);
  const NodeIndex i = 13;
  const int before = o.node(i).budget.indegree();
  const int gained = o.expand_indegree(i, 8, 512);
  EXPECT_GT(gained, 0);
  EXPECT_EQ(o.node(i).budget.indegree(), before + gained);
  o.check_invariants();
}

TEST(Pastry, ExpansionTargetsDivergeAtClaimedRow) {
  Overlay o = make(300, 8);
  const NodeIndex i = 20;
  for (const auto& [host, slot] : o.expansion_targets(i, 128)) {
    if (slot == o.leaf_entry()) continue;
    const int row = static_cast<int>(slot) / o.base();
    const int col = static_cast<int>(slot) % o.base();
    EXPECT_EQ(o.shared_digits(o.node(host).id, o.node(i).id), row);
    EXPECT_EQ(o.digit_of(o.node(i).id, row), col);
  }
}

TEST(Pastry, ShedIndegree) {
  Overlay o = make(300, 9);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() >= 5) {
      const auto before = o.node(i).inlinks.size();
      EXPECT_EQ(o.shed_indegree(i, 3), 3);
      EXPECT_EQ(o.node(i).inlinks.size(), before - 3);
      o.check_invariants();
      return;
    }
  }
  FAIL();
}

TEST(Pastry, SurvivesGracefulChurn) {
  Overlay o = make(250, 10);
  Rng rng(11);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      NodeIndex v = rng.index(o.num_slots());
      if (o.node(v).alive && o.alive_count() > 30) o.leave_graceful(v);
    }
    for (int t = 0; t < 40; ++t) {
      NodeIndex src = rng.index(o.num_slots());
      while (!o.node(src).alive) src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.ring_size();
      ASSERT_EQ(route(o, src, key, 400), o.responsible(key));
    }
  }
}

TEST(Pastry, ProximityNeighborSelectionPrefersClose) {
  PastryOptions opts;
  opts.proximity_neighbor_selection = true;
  std::vector<double> coord;  // 1-D synthetic positions
  Overlay o(opts, [&coord](NodeIndex a, NodeIndex b) {
    return std::abs(coord[a] - coord[b]);
  });
  Rng rng(12);
  for (std::size_t i = 0; i < 300; ++i) {
    coord.push_back(rng.uniform());
    o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  }
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i);
  // Row-0 entries admit ~75 candidates; PNS should pick ones much closer
  // than the 0.25 expected distance of a random pick (1-D uniform on [0,1]
  // with wraparound-free metric: E|x-y| = 1/3; nearest of ~75 is tiny).
  double sum = 0;
  std::size_t cnt = 0;
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    for (int v = 0; v < o.base(); ++v) {
      if (v == o.digit_of(o.node(i).id, 0)) continue;
      for (const dht::NodeIndex32 c :
           o.node(i).table.entry(o.prefix_slot(0, v))
               .candidates(o.arena().cands)) {
        sum += std::abs(coord[i] - coord[c]);
        ++cnt;
      }
    }
  }
  ASSERT_GT(cnt, 0u);
  EXPECT_LT(sum / static_cast<double>(cnt), 0.1);
}

}  // namespace
}  // namespace ert::pastry
