#include "chord/overlay.h"

#include <gtest/gtest.h>

namespace ert::chord {
namespace {

using dht::NodeIndex;

Overlay make(std::size_t n, std::uint64_t seed = 1,
             bool bounds = false, int max_indegree = 1 << 20) {
  ChordOptions opts;
  opts.bits = 16;
  opts.enforce_indegree_bounds = bounds;
  Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    o.add_node_random(rng, 1.0, max_indegree, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i);
  return o;
}

NodeIndex route(const Overlay& o, NodeIndex src, std::uint64_t key,
                std::size_t max_hops, std::size_t* hops_out = nullptr) {
  NodeIndex cur = src;
  std::size_t hops = 0;
  while (hops < max_hops) {
    const RouteStep step = o.route_step(cur, key);
    if (step.arrived) {
      if (hops_out) *hops_out = hops;
      return cur;
    }
    EXPECT_FALSE(step.candidates.empty());
    cur = step.candidates.front();
    ++hops;
  }
  return dht::kNoNode;
}

TEST(Chord, BuildPopulatesFingersAndSuccessors) {
  Overlay o = make(200);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    EXPECT_FALSE(o.node(i).table.entry(o.successor_entry()).empty());
    // At least the high fingers must exist (distinct from successors).
    std::size_t fingers = 0;
    for (int m = 0; m < o.bits(); ++m)
      fingers += o.node(i).table.entry(static_cast<std::size_t>(m)).size();
    EXPECT_GT(fingers, 4u);
  }
  o.check_invariants();
}

TEST(Chord, LookupsArriveLogarithmically) {
  Overlay o = make(500);
  Rng rng(2);
  std::size_t total_hops = 0;
  const int lookups = 300;
  for (int t = 0; t < lookups; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    std::size_t hops = 0;
    ASSERT_EQ(route(o, src, key, 64, &hops), o.responsible(key));
    total_hops += hops;
  }
  // O(log n): ~log2(500) = 9; allow generous slack.
  EXPECT_LT(static_cast<double>(total_hops) / lookups, 14.0);
}

TEST(Chord, ResponsibleIsSuccessor) {
  Overlay o = make(100, 3);
  const auto& ids = o.directory().ids();
  // Key exactly at an occupied id maps to that node.
  for (std::uint64_t id : ids)
    EXPECT_EQ(o.node(o.responsible(id)).id, id);
  // Key one past an id maps to the next.
  EXPECT_EQ(o.node(o.responsible(ids[0] + 1)).id,
            ids.size() > 1 ? ids[1] : ids[0]);
}

TEST(Chord, LooseFingerEligibility) {
  Overlay o = make(300, 4);
  // For a random node and finger level, eligibility holds exactly for the
  // spread-window successors of id + 2^m.
  const NodeIndex i = 17;
  const int m = 10;
  const std::uint64_t start = (o.node(i).id + (1u << m)) & (o.ring_size() - 1);
  const auto window = o.directory().successors_of(
      start == 0 ? o.ring_size() - 1 : start - 1, 4);
  for (std::uint64_t id : window) {
    EXPECT_TRUE(o.eligible(i, static_cast<std::size_t>(m),
                           *o.directory().owner_of(id)));
  }
}

TEST(Chord, ExpansionRaisesIndegree) {
  Overlay o = make(300, 5, true, 64);
  const NodeIndex i = 42;
  const int before = o.node(i).budget.indegree();
  const int gained = o.expand_indegree(i, 6, 256);
  EXPECT_GT(gained, 0);
  EXPECT_EQ(o.node(i).budget.indegree(), before + gained);
  o.check_invariants();
}

TEST(Chord, ExpansionStopsAtBudget) {
  Overlay o = make(300, 6, true, 1 << 20);
  const NodeIndex i = 10;
  auto& n = o.mutable_node(i);
  n.budget.lower_bound_by((1 << 20));  // clamps to 1... then raise to d+2
  n.budget.raise_bound_by(n.budget.indegree() + 2 - n.budget.max_indegree());
  const int gained = o.expand_indegree(i, 100, 1024);
  EXPECT_LE(gained, 2);
}

TEST(Chord, ShedIndegree) {
  Overlay o = make(300, 7);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() >= 4) {
      const auto before = o.node(i).inlinks.size();
      const int shed = o.shed_indegree(i, 2);
      EXPECT_EQ(shed, 2);
      EXPECT_EQ(o.node(i).inlinks.size(), before - 2);
      o.check_invariants();
      return;
    }
  }
  FAIL();
}

TEST(Chord, GracefulLeaveKeepsRouting) {
  Overlay o = make(200, 8);
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      NodeIndex v = rng.index(o.num_slots());
      if (o.node(v).alive && o.alive_count() > 20) o.leave_graceful(v);
    }
    for (int t = 0; t < 50; ++t) {
      NodeIndex src = rng.index(o.num_slots());
      while (!o.node(src).alive) src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.ring_size();
      ASSERT_EQ(route(o, src, key, 300), o.responsible(key));
    }
  }
}

TEST(Chord, RouteNeverOvershoots) {
  // Every hop must land clockwise-closer to the owner: verify the invariant
  // the greedy routing relies on.
  Overlay o = make(400, 10);
  Rng rng(11);
  for (int t = 0; t < 200; ++t) {
    NodeIndex cur = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.ring_size();
    const NodeIndex owner = o.responsible(key);
    const std::uint64_t target = o.node(owner).id;
    std::size_t guard = 0;
    while (cur != owner) {
      const auto step = o.route_step(cur, key);
      if (step.arrived) break;
      const std::uint64_t before =
          dht::clockwise(o.node(cur).id, target, o.ring_size());
      cur = step.candidates.front();
      const std::uint64_t after =
          dht::clockwise(o.node(cur).id, target, o.ring_size());
      ASSERT_LT(after, before);
      ASSERT_LT(++guard, 100u);
    }
  }
}

TEST(Chord, IndegreeBoundsRespectedOnErtBuild) {
  Overlay o = make(400, 12, true, 12);
  std::size_t over = 0;
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).budget.indegree() > 12 + 8) ++over;
  }
  // Forced routability links (successor lists ignore budgets, and a finger
  // whose whole loose window is at capacity takes the strict successor
  // anyway) can exceed the bound, but only for a small minority of nodes.
  EXPECT_LT(over, o.num_slots() / 10);
}

}  // namespace
}  // namespace ert::chord
