// Table 2 fidelity: the defaults in SimParams are the paper's simulation
// parameters. If someone changes a default, this test makes the deviation
// explicit.
#include "common/config.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace ert {
namespace {

TEST(Table2, Defaults) {
  const SimParams p;
  EXPECT_EQ(p.dimension, 8);
  EXPECT_EQ(p.num_nodes, 2048u);  // = d * 2^d, a full Cycloid
  EXPECT_EQ(p.pareto_shape, 2.0);
  EXPECT_EQ(p.capacity_lo, 500.0);
  EXPECT_EQ(p.capacity_hi, 50000.0);
  EXPECT_EQ(p.num_lookups, 3000u);
  EXPECT_EQ(p.gamma_l, 1.0);
  EXPECT_EQ(p.mu, 0.5);
  EXPECT_EQ(p.adapt_period, 1.0);
  EXPECT_EQ(p.alpha(), 11.0);  // dimension + 3
  EXPECT_EQ(p.light_service_time, 0.2);
  EXPECT_EQ(p.heavy_service_time, 1.0);
}

TEST(Table2, AlphaTracksDimension) {
  SimParams p;
  p.dimension = 10;
  EXPECT_EQ(p.alpha(), 13.0);
  p.alpha_override = 7.0;
  EXPECT_EQ(p.alpha(), 7.0);
}

TEST(Table2, WorkloadExtrasOffByDefault) {
  const SimParams p;
  EXPECT_EQ(p.churn_interarrival, 0.0);
  EXPECT_EQ(p.impulse_nodes, 0u);
  EXPECT_FALSE(p.data_forwarding);
  EXPECT_FALSE(p.trace_timeline);
  EXPECT_EQ(p.probe_cost, 0.0);
  EXPECT_EQ(p.poll_size, 2);  // b = 2, the supermarket knee
  EXPECT_TRUE(p.use_memory);
  EXPECT_TRUE(p.propagate_overloaded);
}

TEST(Log, LevelGate) {
  const auto prev = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  // Nothing to assert on output without capturing stderr; the calls must
  // simply be safe at every level.
  log::debug("dropped %d", 1);
  log::info("dropped %s", "x");
  log::warn("dropped");
  log::error("emitted %d", 2);
  log::set_level(prev);
}

}  // namespace
}  // namespace ert
