#include "cycloid/overlay.h"

#include <gtest/gtest.h>

#include <set>

namespace ert::cycloid {
namespace {

using dht::NodeIndex;

/// Builds a full Cycloid (every id occupied) with the given policy.
Overlay full_overlay(int d, NeighborPolicy policy = NeighborPolicy::kNearest,
                     bool bounds = false, int max_indegree = 1000) {
  OverlayOptions opts;
  opts.dimension = d;
  opts.policy = policy;
  opts.enforce_indegree_bounds = bounds;
  Overlay o(opts);
  IdSpace space(d);
  for (std::uint64_t lv = 0; lv < space.size(); ++lv)
    o.add_node(space.from_linear(lv), 1.0, max_indegree, 0.8);
  Rng rng(99);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  return o;
}

TEST(CycloidOverlay, FullBuildPopulatesAllEntries) {
  Overlay o = full_overlay(6);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    const auto& n = o.node(i);
    if (n.id.k >= 1) {
      EXPECT_FALSE(n.table.entry(kCubicalEntry).empty())
          << "node " << o.space().to_string(n.id);
      EXPECT_FALSE(n.table.entry(kCyclicEntry).empty());
    }
    EXPECT_FALSE(n.table.entry(kInsideLeafEntry).empty());
    EXPECT_FALSE(n.table.entry(kOutsideLeafEntry).empty());
  }
  o.check_invariants();
}

TEST(CycloidOverlay, BaseOutdegreeMatchesCycloid) {
  // Original Cycloid: 1 cubical + 2 cyclic + 2 inside leaf + 2 outside
  // leaf = 7 outdegree for k >= 1 nodes. Our build adds the lv-successor /
  // lv-predecessor ring links when the leaf sets do not already cover them
  // (see build_table), so the constant outdegree lands in [7, 9].
  Overlay o = full_overlay(8);
  std::size_t in_range = 0;
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    const auto& n = o.node(i);
    if (n.id.k >= 1 && n.table.outdegree() >= 7 && n.table.outdegree() <= 9)
      ++in_range;
  }
  EXPECT_GT(in_range, o.num_slots() * 7 / 10);
}

TEST(CycloidOverlay, LinkSymmetryInvariant) {
  Overlay o = full_overlay(6);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    const auto& n = o.node(i);
    for (const auto& e : n.table.entries()) {
      for (const dht::NodeIndex32 c : e.candidates(o.arena().cands)) {
        EXPECT_TRUE(o.node(c).inlinks.contains(o.arena().fingers, i));
      }
    }
    EXPECT_EQ(static_cast<std::size_t>(n.budget.indegree()),
              n.inlinks.size());
  }
}

TEST(CycloidOverlay, ResponsibleIsSuccessor) {
  Overlay o = full_overlay(6);
  // Full network: every id occupied, so every key maps to its exact node.
  for (std::uint64_t key = 0; key < o.space().size(); key += 17) {
    const NodeIndex r = o.responsible(key);
    EXPECT_EQ(o.space().to_linear(o.node(r).id), key);
  }
}

TEST(CycloidOverlay, EligibleMatchesIdPredicates) {
  Overlay o = full_overlay(6);
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const NodeIndex a = rng.index(o.num_slots());
    const NodeIndex b = rng.index(o.num_slots());
    if (a == b) continue;
    EXPECT_EQ(o.eligible(a, kCubicalEntry, b),
              o.space().cubical_ok(o.node(a).id, o.node(b).id));
    EXPECT_EQ(o.eligible(a, kCyclicEntry, b),
              o.space().cyclic_ok(o.node(a).id, o.node(b).id));
    EXPECT_EQ(o.eligible(a, kInsideLeafEntry, b),
              o.space().inside_leaf_ok(o.node(a).id, o.node(b).id));
  }
}

TEST(CycloidOverlay, ExpansionRaisesIndegree) {
  Overlay o = full_overlay(6, NeighborPolicy::kSpareIndegree, true, 30);
  // Find a node with room and expand it.
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).budget.indegree() < 10) {
      const int before = o.node(i).budget.indegree();
      const int gained = o.expand_indegree(i, 5, 512);
      EXPECT_GT(gained, 0);
      EXPECT_EQ(o.node(i).budget.indegree(), before + gained);
      o.check_invariants();
      return;
    }
  }
  FAIL() << "no expandable node found";
}

TEST(CycloidOverlay, ExpansionRespectsOwnBudget) {
  Overlay o = full_overlay(6, NeighborPolicy::kSpareIndegree, true, 1000);
  const NodeIndex i = 100;
  auto& n = o.mutable_node(i);
  const int room = n.budget.max_indegree() - n.budget.indegree();
  ASSERT_GT(room, 0);
  // Pin the bound just above the current degree: only 2 more inlinks fit.
  n.budget.lower_bound_by(room - 2);
  const int gained = o.expand_indegree(i, 100, 2048);
  EXPECT_LE(gained, 2);
  EXPECT_TRUE(!o.node(i).budget.can_accept() || gained < 2);
}

TEST(CycloidOverlay, ShedEvictsAndFixesBudget) {
  Overlay o = full_overlay(6, NeighborPolicy::kSpareIndegree, true, 1000);
  // Pick any node with indegree >= 3.
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() >= 3) {
      const int before = o.node(i).budget.indegree();
      // Algorithm 3 order: lower the bound first so the evicted hosts'
      // repairs do not immediately re-adopt the overloaded node.
      auto& budget = o.mutable_node(i).budget;
      budget.lower_bound_by(budget.max_indegree() - (before - 2));
      const int shed = o.shed_indegree(i, 2);
      EXPECT_EQ(shed, 2);
      // Net indegree drops; a host whose only eligible candidate is i may
      // force-relink (routability trumps shedding), so allow one re-add.
      EXPECT_LT(o.node(i).budget.indegree(), before);
      EXPECT_GE(o.node(i).budget.indegree(), before - 2);
      // Evicted pointers no longer link to i.
      for (NodeIndex j = 0; j < o.num_slots(); ++j) {
        if (o.node(j).table.links_to(o.arena().cands, i))
          EXPECT_TRUE(o.node(i).inlinks.contains(o.arena().fingers, j));
      }
      o.check_invariants();
      return;
    }
  }
  FAIL() << "no sheddable node found";
}

TEST(CycloidOverlay, ShedNeverDropsLastInlink) {
  Overlay o = full_overlay(6);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() >= 2) {
      const int shed =
          o.shed_indegree(i, static_cast<int>(o.node(i).inlinks.size()) + 5);
      EXPECT_GE(o.node(i).inlinks.size(), 1u);
      EXPECT_GT(shed, 0);
      return;
    }
  }
  FAIL() << "no suitable node found";
}

TEST(CycloidOverlay, ShedRepairsEvictedHostsEntries) {
  // After shedding, every evicted host must still have a live candidate in
  // each entry that had one before (routability preserved).
  Overlay o = full_overlay(6, NeighborPolicy::kSpareIndegree, true, 1000);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (o.node(i).inlinks.size() < 4) continue;
    std::vector<NodeIndex> hosts;
    for (const auto& f : o.node(i).inlinks.fingers(o.arena().fingers))
      hosts.push_back(f.node);
    // Record which entries were populated before the shed.
    std::vector<std::vector<bool>> had(hosts.size(),
                                       std::vector<bool>(kNumEntries));
    for (std::size_t h = 0; h < hosts.size(); ++h)
      for (std::size_t slot = 0; slot < kNumEntries; ++slot)
        had[h][slot] = !o.node(hosts[h]).table.entry(slot).empty();
    auto& budget = o.mutable_node(i).budget;
    budget.lower_bound_by(budget.max_indegree() - 1);
    o.shed_indegree(i, 3);
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      for (std::size_t slot = 0; slot < kNumEntries; ++slot) {
        if (!had[h][slot]) continue;
        EXPECT_FALSE(o.node(hosts[h]).table.entry(slot).empty())
            << "host " << hosts[h] << " slot " << slot << " emptied by shed";
      }
    }
    return;
  }
  FAIL() << "no suitable node found";
}

TEST(CycloidOverlay, GracefulLeaveCleansAllLinks) {
  Overlay o = full_overlay(6);
  const NodeIndex victim = 123;
  o.leave_graceful(victim);
  EXPECT_FALSE(o.node(victim).alive);
  EXPECT_EQ(o.alive_count(), o.num_slots() - 1);
  for (NodeIndex j = 0; j < o.num_slots(); ++j) {
    if (j == victim) continue;
    EXPECT_FALSE(o.node(j).table.links_to(o.arena().cands, victim));
    EXPECT_FALSE(o.node(j).inlinks.contains(o.arena().fingers, victim));
  }
  o.check_invariants();
}

TEST(CycloidOverlay, FailLeavesStaleLinks) {
  Overlay o = full_overlay(6);
  const NodeIndex victim = 77;
  ASSERT_GT(o.node(victim).inlinks.size(), 0u);
  const NodeIndex pointer =
      o.node(victim).inlinks.fingers(o.arena().fingers).front().node;
  o.fail(victim);
  EXPECT_FALSE(o.node(victim).alive);
  // The pointer still has the stale link (it will discover via timeout).
  EXPECT_TRUE(o.node(pointer).table.links_to(o.arena().cands, victim));
  o.purge_dead(pointer, victim);
  EXPECT_FALSE(o.node(pointer).table.links_to(o.arena().cands, victim));
}

TEST(CycloidOverlay, RepairEntryRefills) {
  Overlay o = full_overlay(6);
  Rng rng(3);
  // Fail every cubical candidate of some node, then repair.
  const NodeIndex i = 200;
  ASSERT_GE(o.node(i).id.k, 1);
  const auto span = o.node(i).table.entry(kCubicalEntry).candidates(
      o.arena().cands);
  const std::vector<NodeIndex> cands(span.begin(), span.end());
  ASSERT_FALSE(cands.empty());
  for (NodeIndex c : cands) {
    o.fail(c);
    o.purge_dead(i, c);
  }
  EXPECT_TRUE(o.node(i).table.entry(kCubicalEntry).empty());
  o.repair_entry(i, kCubicalEntry);
  EXPECT_FALSE(o.node(i).table.entry(kCubicalEntry).empty());
  for (const dht::NodeIndex32 c :
       o.node(i).table.entry(kCubicalEntry).candidates(o.arena().cands))
    EXPECT_TRUE(o.node(c).alive);
}

TEST(CycloidOverlay, NsPolicyPrefersHighCapacity) {
  OverlayOptions opts;
  opts.dimension = 6;
  opts.policy = NeighborPolicy::kCapacityBiased;
  opts.enforce_indegree_bounds = true;
  Overlay o(opts);
  IdSpace space(6);
  Rng rng(11);
  std::vector<double> caps(space.size());
  for (std::uint64_t lv = 0; lv < space.size(); ++lv) {
    // Alternate high/low capacity.
    caps[lv] = (lv % 2 == 0) ? 10.0 : 0.5;
    o.add_node(space.from_linear(lv), caps[lv], 200, 0.8);
  }
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  // High-capacity nodes should hold clearly more inlinks on average.
  double hi = 0, lo = 0;
  std::size_t nh = 0, nl = 0;
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (caps[i] > 1) {
      hi += static_cast<double>(o.node(i).inlinks.size());
      ++nh;
    } else {
      lo += static_cast<double>(o.node(i).inlinks.size());
      ++nl;
    }
  }
  EXPECT_GT(hi / static_cast<double>(nh), 2.0 * lo / static_cast<double>(nl));
}

TEST(CycloidOverlay, ErtPolicyRespectsIndegreeBounds) {
  Overlay o = full_overlay(6, NeighborPolicy::kSpareIndegree, true, 8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) {
    EXPECT_LE(o.node(i).budget.indegree(), 8 + 4)
        << "indegree should stay near the bound (forced links for "
           "routability may exceed it slightly)";
  }
}

TEST(CycloidOverlay, AddNodeRandomFindsFreeIds) {
  OverlayOptions opts;
  opts.dimension = 4;  // 64 ids
  Overlay o(opts);
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 63; ++i) {
    const NodeIndex n = o.add_node_random(rng, 1.0, 100, 0.8);
    const std::uint64_t lv = o.space().to_linear(o.node(n).id);
    EXPECT_TRUE(seen.insert(lv).second) << "duplicate id assigned";
  }
}

TEST(CycloidOverlay, LogicalDistance) {
  Overlay o = full_overlay(4);
  // Adjacent ids are distance 1 apart; the metric wraps.
  const NodeIndex a = o.responsible(0);
  const NodeIndex b = o.responsible(1);
  const NodeIndex last = o.responsible(o.space().size() - 1);
  EXPECT_EQ(o.logical_distance(a, b), 1u);
  EXPECT_EQ(o.logical_distance(a, last), 1u);
  EXPECT_EQ(o.logical_distance(a, a), 0u);
}

}  // namespace
}  // namespace ert::cycloid
