#include "net/landmark.h"

#include <gtest/gtest.h>

namespace ert::net {
namespace {

TEST(Landmark, VectorShape) {
  Rng rng(1);
  LandmarkSpace s(8, rng);
  EXPECT_EQ(s.num_landmarks(), 8u);
  const auto v = s.vector_of({0.3, 0.7});
  EXPECT_EQ(v.size(), 8u);
  for (double d : v) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 0.7071068);
  }
}

TEST(Landmark, IdenticalPointsHaveZeroDistance) {
  Rng rng(2);
  LandmarkSpace s(6, rng);
  EXPECT_DOUBLE_EQ(s.landmark_distance({0.1, 0.2}, {0.1, 0.2}), 0.0);
}

TEST(Landmark, SymmetricMetric) {
  Rng rng(3);
  LandmarkSpace s(6, rng);
  const Coord a{0.1, 0.9}, b{0.6, 0.3};
  EXPECT_DOUBLE_EQ(s.landmark_distance(a, b), s.landmark_distance(b, a));
}

TEST(Landmark, NearbyPointsHaveSmallLandmarkDistance) {
  Rng rng(4);
  LandmarkSpace s(8, rng);
  const Coord a{0.4, 0.4};
  const Coord near{0.41, 0.4};
  const Coord far{0.9, 0.9};
  EXPECT_LT(s.landmark_distance(a, near), s.landmark_distance(a, far));
}

TEST(Landmark, OrderingFidelityHighWithEnoughLandmarks) {
  Rng rng(5);
  LandmarkSpace s(12, rng);
  // The forwarding tie-break only needs relative order; with 12 landmarks
  // the landmark metric must agree with the true metric on the vast
  // majority of comparisons.
  EXPECT_GT(ordering_fidelity(s, 4000, rng), 0.85);
}

TEST(Landmark, MoreLandmarksMoreFidelity) {
  Rng rng(6);
  LandmarkSpace coarse(2, rng);
  LandmarkSpace fine(16, rng);
  Rng r1(7), r2(7);
  const double f_coarse = ordering_fidelity(coarse, 4000, r1);
  const double f_fine = ordering_fidelity(fine, 4000, r2);
  EXPECT_GT(f_fine, f_coarse);
}

}  // namespace
}  // namespace ert::net
