// Differential equivalence pins for the slab-packed routing state.
//
// The memory-diet refactor repacks RoutingEntry candidate sets and
// backward-finger lists into per-overlay slabs with 32-bit node indices.
// The claim is representational only: every overlay operation — candidate
// iteration order, eviction ranking, adaptation decisions — must produce
// the exact same behavior as the vector-of-size_t representation it
// replaces. These tests pin that claim end to end: a full experiment
// (Poisson queries + Algorithm 3 shed/grow + churn) on every substrate,
// with every scalar metric EXPECT_EQ'd against values captured from the
// pre-slab tree. Any change in iteration order, Rng draw sequence, or
// adaptation arithmetic shows up as a metric diff here.
//
// Setting ERT_PRINT_PINS=1 prints the observed values at full precision
// instead of asserting, which is how the pins below were harvested.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.h"
#include "harness/experiment.h"

namespace ert::harness {
namespace {

struct Pins {
  std::size_t completed = 0;
  std::size_t dropped = 0;
  double sim_duration = 0.0;
  double avg_path_length = 0.0;
  double lt_mean = 0.0;
  double lt_p01 = 0.0;
  double lt_p99 = 0.0;
  std::size_t heavy = 0;
  double p99_share = 0.0;
  double max_in_mean = 0.0;
  double max_out_mean = 0.0;
  double avg_timeouts = 0.0;
  std::size_t final_nodes = 0;
};

SimParams make_params() {
  SimParams p;
  p.num_nodes = 512;
  p.num_lookups = 200;
  p.lookup_rate = 16.0;
  p.churn_interarrival = 1.0;
  p.seed = 5;
  return p;
}

Pins observe(SubstrateKind kind) {
  const ExperimentResult r =
      run_experiment(make_params(), Protocol::kErtAF, kind);
  Pins p;
  p.completed = r.completed_lookups;
  p.dropped = r.dropped_lookups;
  p.sim_duration = r.sim_duration;
  p.avg_path_length = r.avg_path_length;
  p.lt_mean = r.lookup_time.mean;
  p.lt_p01 = r.lookup_time.p01;
  p.lt_p99 = r.lookup_time.p99;
  p.heavy = r.heavy_encounters;
  p.p99_share = r.p99_share;
  p.max_in_mean = r.max_indegree.mean;
  p.max_out_mean = r.max_outdegree.mean;
  p.avg_timeouts = r.avg_timeouts;
  p.final_nodes = r.final_nodes;
  return p;
}

void check(SubstrateKind kind, const Pins& want) {
  const Pins got = observe(kind);
  if (std::getenv("ERT_PRINT_PINS")) {
    std::printf(
        "  // %s\n"
        "  want.completed = %zu;\n"
        "  want.dropped = %zu;\n"
        "  want.sim_duration = %.17g;\n"
        "  want.avg_path_length = %.17g;\n"
        "  want.lt_mean = %.17g;\n"
        "  want.lt_p01 = %.17g;\n"
        "  want.lt_p99 = %.17g;\n"
        "  want.heavy = %zu;\n"
        "  want.p99_share = %.17g;\n"
        "  want.max_in_mean = %.17g;\n"
        "  want.max_out_mean = %.17g;\n"
        "  want.avg_timeouts = %.17g;\n"
        "  want.final_nodes = %zu;\n",
        to_string(kind), got.completed, got.dropped, got.sim_duration,
        got.avg_path_length, got.lt_mean, got.lt_p01, got.lt_p99, got.heavy,
        got.p99_share, got.max_in_mean, got.max_out_mean, got.avg_timeouts,
        got.final_nodes);
    return;
  }
  EXPECT_EQ(got.completed, want.completed);
  EXPECT_EQ(got.dropped, want.dropped);
  EXPECT_EQ(got.sim_duration, want.sim_duration);
  EXPECT_EQ(got.avg_path_length, want.avg_path_length);
  EXPECT_EQ(got.lt_mean, want.lt_mean);
  EXPECT_EQ(got.lt_p01, want.lt_p01);
  EXPECT_EQ(got.lt_p99, want.lt_p99);
  EXPECT_EQ(got.heavy, want.heavy);
  EXPECT_EQ(got.p99_share, want.p99_share);
  EXPECT_EQ(got.max_in_mean, want.max_in_mean);
  EXPECT_EQ(got.max_out_mean, want.max_out_mean);
  EXPECT_EQ(got.avg_timeouts, want.avg_timeouts);
  EXPECT_EQ(got.final_nodes, want.final_nodes);
}

TEST(SlabEquivalence, Cycloid) {
  Pins want;
  want.completed = 200;
  want.dropped = 0;
  want.sim_duration = 52.108474911942338;
  want.avg_path_length = 8.6449999999999996;
  want.lt_mean = 11.823330473793378;
  want.lt_p01 = 1.8299907502400075;
  want.lt_p99 = 38.739616279317126;
  want.heavy = 211;
  want.p99_share = 5.2283787660435808;
  want.max_in_mean = 16.74228675136116;
  want.max_out_mean = 16.424682395644282;
  want.avg_timeouts = 0.040000000000000001;
  want.final_nodes = 514;
  check(SubstrateKind::kCycloid, want);
}

TEST(SlabEquivalence, Chord) {
  Pins want;
  want.completed = 200;
  want.dropped = 0;
  want.sim_duration = 27.441417271210305;
  want.avg_path_length = 4.3499999999999996;
  want.lt_mean = 6.1769621058209703;
  want.lt_p01 = 0.52632131045385488;
  want.lt_p99 = 14.739035350579581;
  want.heavy = 108;
  want.p99_share = 4.0465045199365628;
  want.max_in_mean = 15.138376383763838;
  want.max_out_mean = 14.134686346863468;
  want.avg_timeouts = 0.040000000000000001;
  want.final_nodes = 511;
  check(SubstrateKind::kChord, want);
}

TEST(SlabEquivalence, Pastry) {
  Pins want;
  want.completed = 200;
  want.dropped = 0;
  want.sim_duration = 24.259592768357795;
  want.avg_path_length = 3.7749999999999999;
  want.lt_mean = 5.2935189626350088;
  want.lt_p01 = 0.2926487105113087;
  want.lt_p99 = 10.662006927481395;
  want.heavy = 79;
  want.p99_share = 4.414064763427195;
  want.max_in_mean = 19.145522388059703;
  want.max_out_mean = 18.527985074626866;
  want.avg_timeouts = 0.085000000000000006;
  want.final_nodes = 511;
  check(SubstrateKind::kPastry, want);
}

TEST(SlabEquivalence, Can) {
  Pins want;
  want.completed = 200;
  want.dropped = 0;
  want.sim_duration = 29;
  want.avg_path_length = 5.79;
  want.lt_mean = 6.7887062904268873;
  want.lt_p01 = 1.1896028328462371;
  want.lt_p99 = 16.139443745819548;
  want.heavy = 82;
  want.p99_share = 3.1480104455356792;
  want.max_in_mean = 13.964944649446494;
  want.max_out_mean = 12.629151291512915;
  want.avg_timeouts = 0.014999999999999999;
  want.final_nodes = 511;
  check(SubstrateKind::kCan, want);
}

}  // namespace
}  // namespace ert::harness
