#include "can/overlay.h"

#include <gtest/gtest.h>

namespace ert::can {
namespace {

using dht::NodeIndex;

Overlay make(std::size_t n, std::uint64_t seed = 1,
             CanOptions opts = CanOptions{}) {
  Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    o.add_node(rng, rng.uniform(0.3, 4.0), 16, 0.8);
  return o;
}

NodeIndex route(const Overlay& o, NodeIndex src, Point target,
                std::size_t max_hops, std::size_t* hops_out = nullptr) {
  NodeIndex cur = src;
  std::size_t hops = 0;
  while (hops < max_hops) {
    const RouteStep step = o.route_step(cur, target);
    if (step.arrived) {
      if (hops_out) *hops_out = hops;
      return cur;
    }
    EXPECT_FALSE(step.candidates.empty());
    cur = step.candidates.front();
    ++hops;
  }
  return dht::kNoNode;
}

TEST(ZoneMath, Distance) {
  const Zone z{0.25, 0.5, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(zone_distance(z, {0.3, 0.3}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(zone_distance(z, {0.6, 0.3}), 0.1);  // right of
  EXPECT_NEAR(zone_distance(z, {0.6, 0.6}), std::sqrt(0.02), 1e-12);
  // Wraps: x = 0.9 is 0.15 from lo_x = 0.25? no: torus dist to [0.25,0.5):
  // to 0.25 -> 0.35; to 0.5 -> 0.4; min 0.35.
  EXPECT_NEAR(zone_distance(z, {0.9, 0.3}), 0.35, 1e-12);
}

TEST(ZoneMath, Abutment) {
  const Zone a{0.0, 0.5, 0.0, 0.5};
  const Zone b{0.5, 1.0, 0.0, 0.5};  // shares the x = 0.5 face
  const Zone c{0.5, 1.0, 0.5, 1.0};  // corner only
  EXPECT_TRUE(zones_abut(a, b));
  EXPECT_FALSE(zones_abut(a, c));
  // Torus wrap: x = 0 and x = 1 touch.
  const Zone d{0.5, 1.0, 0.0, 0.5};
  const Zone e{0.0, 0.5, 0.0, 0.5};
  EXPECT_TRUE(zones_abut(d, e));  // both the inner and wrap faces
}

TEST(Can, FirstNodeOwnsEverything) {
  Overlay o = make(1);
  EXPECT_EQ(o.alive_count(), 1u);
  EXPECT_DOUBLE_EQ(o.node(0).zone.volume(), 1.0);
  EXPECT_EQ(o.responsible({0.42, 0.87}), 0u);
}

TEST(Can, JoinsPartitionTheSpace) {
  Overlay o = make(64);
  o.check_invariants();
  // Every point maps to exactly one alive node whose zone contains it.
  Rng rng(9);
  for (int t = 0; t < 500; ++t) {
    const Point p{rng.uniform(), rng.uniform()};
    const NodeIndex r = o.responsible(p);
    ASSERT_NE(r, dht::kNoNode);
    EXPECT_TRUE(o.node(r).zone.contains(p));
  }
}

TEST(Can, GreedyRoutingArrives) {
  Overlay o = make(200, 3);
  Rng rng(4);
  std::size_t total = 0;
  for (int t = 0; t < 300; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const Point target{rng.uniform(), rng.uniform()};
    std::size_t hops = 0;
    ASSERT_EQ(route(o, src, target, 200, &hops), o.responsible(target));
    total += hops;
  }
  // CAN diameter is O(sqrt(n)) in 2-d: ~14 for n = 200; allow slack.
  EXPECT_LT(static_cast<double>(total) / 300.0, 18.0);
}

TEST(Can, ShortcutsReducePathLength) {
  Rng rng(5);
  CanOptions opts;
  Overlay plain(opts), elastic(opts);
  for (int i = 0; i < 200; ++i) {
    plain.add_node(rng, 1.0, 16, 0.8);
  }
  Rng rng2(5);
  for (int i = 0; i < 200; ++i) {
    elastic.add_node(rng2, 1.0, 16, 0.8);
  }
  for (NodeIndex i = 0; i < elastic.num_slots(); ++i)
    elastic.expand_indegree(i, 4, 64);
  elastic.check_invariants();
  auto avg_hops = [&](const Overlay& o) {
    Rng r(6);
    std::size_t total = 0;
    for (int t = 0; t < 300; ++t) {
      const NodeIndex src = r.index(o.num_slots());
      const Point target{r.uniform(), r.uniform()};
      std::size_t hops = 0;
      route(o, src, target, 300, &hops);
      total += hops;
    }
    return static_cast<double>(total) / 300.0;
  };
  EXPECT_LT(avg_hops(elastic), avg_hops(plain));
}

TEST(Can, ShortcutBudgetRespected) {
  Overlay o = make(100, 7);
  // Pin one node's budget and try to overfill it.
  const NodeIndex i = 10;
  const int room =
      o.node(i).budget.max_indegree() - o.node(i).budget.indegree();
  ASSERT_GT(room, 0);
  const int gained = o.expand_indegree(i, room + 50, 1000);
  EXPECT_LE(gained, room);
  EXPECT_LE(o.node(i).budget.indegree(), o.node(i).budget.max_indegree());
}

TEST(Can, ShedRemovesShortcuts) {
  Overlay o = make(100, 8);
  const NodeIndex i = 5;
  o.expand_indegree(i, 6, 200);
  const auto before = o.node(i).inlinks.size();
  if (before < 2) GTEST_SKIP() << "not enough shortcut inlinks to shed";
  const int shed = o.shed_indegree(i, 2);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(o.node(i).inlinks.size(), before - 2);
  o.check_invariants();
}

TEST(Can, SiblingMergeOnLeave) {
  // Two nodes: the second leaves; the first gets the whole space back.
  Overlay o = make(2, 11);
  o.leave_graceful(1);
  EXPECT_EQ(o.alive_count(), 1u);
  EXPECT_DOUBLE_EQ(o.node(0).zone.volume(), 1.0);
  o.check_invariants();
}

TEST(Can, TakeoverOnLeave) {
  Overlay o = make(50, 13);
  Rng rng(14);
  for (int round = 0; round < 30; ++round) {
    // Leave someone random (keep a few).
    for (int k = 0; k < 64; ++k) {
      const NodeIndex v = rng.index(o.num_slots());
      if (o.node(v).alive && o.alive_count() > 4) {
        o.leave_graceful(v);
        break;
      }
    }
    o.check_invariants();
  }
  // Space still fully owned and routable.
  for (int t = 0; t < 100; ++t) {
    const Point p{rng.uniform(), rng.uniform()};
    NodeIndex src = rng.index(o.num_slots());
    while (!o.node(src).alive) src = rng.index(o.num_slots());
    ASSERT_EQ(route(o, src, p, 300), o.responsible(p));
  }
}

TEST(Can, ChurnFuzzKeepsInvariants) {
  CanOptions opts;
  Overlay o(opts);
  Rng rng(17);
  for (int i = 0; i < 30; ++i) o.add_node(rng, rng.uniform(0.3, 4.0), 16, 0.8);
  for (int op = 0; op < 400; ++op) {
    switch (rng.index(5)) {
      case 0:
      case 1:
        o.add_node(rng, rng.uniform(0.3, 4.0), 16, 0.8);
        break;
      case 2: {
        for (int k = 0; k < 32; ++k) {
          const NodeIndex v = rng.index(o.num_slots());
          if (o.node(v).alive && o.alive_count() > 4) {
            o.leave_graceful(v);
            break;
          }
        }
        break;
      }
      case 3: {
        const NodeIndex v = rng.index(o.num_slots());
        if (o.node(v).alive) o.expand_indegree(v, 2, 32);
        break;
      }
      default: {
        const NodeIndex v = rng.index(o.num_slots());
        if (o.node(v).alive) o.shed_indegree(v, 1);
        break;
      }
    }
    if (op % 20 == 0) o.check_invariants();
  }
  o.check_invariants();
}

TEST(Can, RouteStepCandidatesAllCloser) {
  Overlay o = make(150, 19);
  Rng rng(20);
  for (int t = 0; t < 200; ++t) {
    const NodeIndex cur = rng.index(o.num_slots());
    const Point target{rng.uniform(), rng.uniform()};
    const RouteStep step = o.route_step(cur, target);
    if (step.arrived || step.entry_index == kNumEntries) continue;
    const double my = zone_distance(o.node(cur).zone, target);
    for (NodeIndex c : step.candidates) {
      EXPECT_LE(zone_distance(o.node(c).zone, target), my);
    }
  }
}

}  // namespace
}  // namespace ert::can
