// Continuous invariant auditing: the full protocol x substrate matrix must
// be violation-free fault-free, the sweep must never perturb results, and
// the auditor must stay clean through injected faults once crashed nodes
// are out of the live set.
#include "harness/auditor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "scenario/scenario.h"

namespace ert::harness {
namespace {

SimParams small_params() {
  SimParams p;
  p.num_nodes = 256;
  p.dimension = fit_dimension(256);
  p.num_lookups = 400;
  p.lookup_rate = 16.0;
  p.seed = 5;
  return p;
}

std::string violations_text(const ExperimentResult& r) {
  std::string out;
  for (const auto& v : r.audit_records) {
    out += to_string(v);
    out += '\n';
  }
  return out;
}

// --- auditor unit behavior ---------------------------------------------------

TEST(InvariantAuditorUnit, ExpectationsRecordViolations) {
  AuditorOptions opts;
  opts.enabled = true;
  InvariantAuditor a(opts);
  a.begin_sweep(3.0);
  a.expect_le("indegree.bound", 7, 5.0, 9.0);   // holds
  a.expect_le("indegree.bound", 7, 12.0, 9.0);  // violated
  a.expect_eq("queue.consistency", 2, 4.0, 4.0);  // holds
  a.expect_eq("queue.consistency", 2, 4.0, 5.0);  // violated
  EXPECT_EQ(a.sweeps(), 1u);
  EXPECT_EQ(a.total_violations(), 2u);
  EXPECT_FALSE(a.clean());
  ASSERT_EQ(a.records().size(), 2u);
  EXPECT_EQ(a.records()[0].invariant, "indegree.bound");
  EXPECT_EQ(a.records()[0].time, 3.0);
  EXPECT_EQ(a.records()[0].node, 7u);
  const std::string s = to_string(a.records()[0]);
  EXPECT_NE(s.find("indegree.bound"), std::string::npos);
  EXPECT_NE(s.find("node=7"), std::string::npos);
}

TEST(InvariantAuditorUnit, RecordCapKeepsCounting) {
  AuditorOptions opts;
  opts.enabled = true;
  opts.max_records = 4;
  InvariantAuditor a(opts);
  a.begin_sweep(0.0);
  for (int i = 0; i < 10; ++i) a.report("theorem3.2", i, 2.0, 1.0);
  EXPECT_EQ(a.records().size(), 4u);
  EXPECT_EQ(a.total_violations(), 10u);
}

// --- sampled auditing (scale mode) -------------------------------------------

TEST(InvariantAuditorUnit, SamplePopulationIsSortedDistinctAndSeeded) {
  AuditorOptions opts;
  opts.enabled = true;
  opts.sample = 8;
  InvariantAuditor a(opts, /*seed=*/7);
  const auto* s = a.sample_population(100);
  ASSERT_NE(s, nullptr);
  const std::vector<std::uint32_t> first = *s;
  EXPECT_EQ(first.size(), 8u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_EQ(std::adjacent_find(first.begin(), first.end()), first.end());
  for (const std::uint32_t v : first) EXPECT_LT(v, 100u);
  // Same seed reproduces the same draw sequence.
  InvariantAuditor b(opts, /*seed=*/7);
  EXPECT_EQ(*b.sample_population(100), first);
  // A fresh call advances the sequence rather than repeating it forever.
  const auto* s2 = a.sample_population(100);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(*s2, *b.sample_population(100));
}

TEST(InvariantAuditorUnit, SamplingOffOrSmallPopulationAuditsEverything) {
  AuditorOptions all;
  all.enabled = true;
  InvariantAuditor a(all);
  EXPECT_EQ(a.sample_population(100), nullptr);  // sample == 0: audit all
  AuditorOptions some;
  some.enabled = true;
  some.sample = 50;
  InvariantAuditor b(some, 1);
  EXPECT_EQ(b.sample_population(50), nullptr);  // k >= population: audit all
  EXPECT_NE(b.sample_population(51), nullptr);
}

TEST(SampledAudit, NeverPerturbsResultsAndStaysClean) {
  ExperimentOptions sampled;
  sampled.audit.enabled = true;
  sampled.audit.sample = 16;
  const auto s = run_experiment(small_params(), Protocol::kErtAF,
                                SubstrateKind::kCycloid, sampled);
  const auto plain =
      run_experiment(small_params(), Protocol::kErtAF, SubstrateKind::kCycloid);
  EXPECT_EQ(s.lookup_time.mean, plain.lookup_time.mean);
  EXPECT_EQ(s.p99_share, plain.p99_share);
  EXPECT_EQ(s.heavy_encounters, plain.heavy_encounters);
  EXPECT_EQ(s.completed_lookups, plain.completed_lookups);
  EXPECT_EQ(s.sim_duration, plain.sim_duration);
  EXPECT_GT(s.audit_sweeps, 10u);
  EXPECT_EQ(s.audit_violations, 0u) << violations_text(s);
}

TEST(SampledAudit, DeterministicAcrossRunsAndThreadCounts) {
  // The sampler draws from its own Rng (never the simulation's), so a
  // sampled audit must reproduce exactly: same sweeps, same violations,
  // same metrics, whatever the worker thread count.
  SimParams p = small_params();
  p.churn_interarrival = 0.5;  // repair paths under sampling
  ExperimentOptions sampled;
  sampled.audit.enabled = true;
  sampled.audit.sample = 8;
  const auto one = run_averaged(p, Protocol::kErtAF, 3,
                                SubstrateKind::kCycloid, /*threads=*/1,
                                sampled);
  const auto four = run_averaged(p, Protocol::kErtAF, 3,
                                 SubstrateKind::kCycloid, /*threads=*/4,
                                 sampled);
  EXPECT_EQ(one.audit_sweeps, four.audit_sweeps);
  EXPECT_EQ(one.audit_violations, four.audit_violations);
  EXPECT_EQ(one.lookup_time.mean, four.lookup_time.mean);
  EXPECT_EQ(one.completed_lookups, four.completed_lookups);
  EXPECT_EQ(violations_text(one), violations_text(four));
  const auto again = run_averaged(p, Protocol::kErtAF, 3,
                                  SubstrateKind::kCycloid, /*threads=*/1,
                                  sampled);
  EXPECT_EQ(one.audit_sweeps, again.audit_sweeps);
  EXPECT_EQ(one.audit_violations, again.audit_violations);
}

// --- full-matrix fault-free sweeps ------------------------------------------

struct Case {
  Protocol protocol;
  SubstrateKind substrate;
};

class AuditMatrixTest : public ::testing::TestWithParam<Case> {};

TEST_P(AuditMatrixTest, FaultFreeRunIsViolationFree) {
  const Case c = GetParam();
  ExperimentOptions opts;
  opts.audit.enabled = true;
  const auto r = run_experiment(small_params(), c.protocol, c.substrate, opts);
  EXPECT_EQ(r.completed_lookups, 400u);
  EXPECT_GT(r.audit_sweeps, 10u);
  EXPECT_EQ(r.audit_violations, 0u) << violations_text(r);
  EXPECT_TRUE(r.audit_records.empty());
}

TEST_P(AuditMatrixTest, AuditingNeverPerturbsResults) {
  // The sweep only reads: an audited run must be bit-identical to the
  // plain run on every metric.
  const Case c = GetParam();
  ExperimentOptions opts;
  opts.audit.enabled = true;
  const auto audited =
      run_experiment(small_params(), c.protocol, c.substrate, opts);
  const auto plain = run_experiment(small_params(), c.protocol, c.substrate);
  EXPECT_EQ(audited.lookup_time.mean, plain.lookup_time.mean);
  EXPECT_EQ(audited.p99_share, plain.p99_share);
  EXPECT_EQ(audited.heavy_encounters, plain.heavy_encounters);
  EXPECT_EQ(audited.p99_max_congestion, plain.p99_max_congestion);
  EXPECT_EQ(audited.completed_lookups, plain.completed_lookups);
  EXPECT_EQ(audited.sim_duration, plain.sim_duration);
}

// The full matrix: every protocol on every substrate it supports (VS is
// Cycloid-only by construction; NS needs neighbor selection freedom, which
// only Cycloid's neighbor sets and Kademlia's bucket contacts provide).
INSTANTIATE_TEST_SUITE_P(
    Matrix, AuditMatrixTest,
    ::testing::Values(
        Case{Protocol::kBase, SubstrateKind::kCycloid},
        Case{Protocol::kNS, SubstrateKind::kCycloid},
        Case{Protocol::kVS, SubstrateKind::kCycloid},
        Case{Protocol::kErtA, SubstrateKind::kCycloid},
        Case{Protocol::kErtF, SubstrateKind::kCycloid},
        Case{Protocol::kErtAF, SubstrateKind::kCycloid},
        Case{Protocol::kBase, SubstrateKind::kChord},
        Case{Protocol::kErtA, SubstrateKind::kChord},
        Case{Protocol::kErtF, SubstrateKind::kChord},
        Case{Protocol::kErtAF, SubstrateKind::kChord},
        Case{Protocol::kBase, SubstrateKind::kPastry},
        Case{Protocol::kErtA, SubstrateKind::kPastry},
        Case{Protocol::kErtF, SubstrateKind::kPastry},
        Case{Protocol::kErtAF, SubstrateKind::kPastry},
        Case{Protocol::kBase, SubstrateKind::kCan},
        Case{Protocol::kErtA, SubstrateKind::kCan},
        Case{Protocol::kErtF, SubstrateKind::kCan},
        Case{Protocol::kErtAF, SubstrateKind::kCan},
        Case{Protocol::kBase, SubstrateKind::kKademlia},
        Case{Protocol::kNS, SubstrateKind::kKademlia},
        Case{Protocol::kErtA, SubstrateKind::kKademlia},
        Case{Protocol::kErtF, SubstrateKind::kKademlia},
        Case{Protocol::kErtAF, SubstrateKind::kKademlia},
        Case{Protocol::kBase, SubstrateKind::kD1ht},
        Case{Protocol::kErtA, SubstrateKind::kD1ht},
        Case{Protocol::kErtF, SubstrateKind::kD1ht},
        Case{Protocol::kErtAF, SubstrateKind::kD1ht}),
    [](const auto& info) {
      std::string name{to_string(info.param.protocol)};
      name += "_";
      name += to_string(info.param.substrate);
      for (char& ch : name)
        if (ch == '/') ch = '_';
      return name;
    });

// --- audited runs under churn and faults -------------------------------------

TEST(AuditUnderStress, ChurnStaysViolationFree) {
  // Joins and silent departures exercise repair paths (including the
  // budget-bypassing emergency links the forced-accept counter covers).
  SimParams p = small_params();
  p.churn_interarrival = 0.5;
  ExperimentOptions opts;
  opts.audit.enabled = true;
  for (const Protocol proto : {Protocol::kErtA, Protocol::kErtAF}) {
    const auto r =
        run_experiment(p, proto, SubstrateKind::kCycloid, opts);
    EXPECT_EQ(r.audit_violations, 0u)
        << to_string(proto) << "\n" << violations_text(r);
  }
}

TEST(AuditUnderStress, ScenarioChurnWavesStayViolationFree) {
  // Capacity-correlated scenario churn (tournament departures) runs a
  // different membership process than SimParams::churn_interarrival, but
  // the Theorem 3.1/3.2 sweep gets no waiver for it: every sweep must
  // pass while weak nodes drain out and joins backfill.
  ExperimentOptions opts;
  opts.audit.enabled = true;
  opts.scenario.name = "churn-waves";
  scenario::Phase wave;
  wave.type = scenario::PhaseType::kChurn;
  wave.start = 1.0;
  wave.end = 20.0;
  wave.interarrival = 0.3;
  wave.bias = 4;
  opts.scenario.phases.push_back(wave);
  for (const Protocol proto : {Protocol::kErtA, Protocol::kErtAF}) {
    const auto r =
        run_experiment(small_params(), proto, SubstrateKind::kCycloid, opts);
    EXPECT_GT(r.audit_sweeps, 10u) << to_string(proto);
    EXPECT_EQ(r.audit_waived_sweeps, 0u) << to_string(proto);
    EXPECT_EQ(r.audit_violations, 0u)
        << to_string(proto) << "\n" << violations_text(r);
  }
}

TEST(AuditUnderStress, PartitionWaveWaivesTheSplitThenAuditsClean) {
  // Half-network partition/rejoin wave. Inside [start, end + settle) the
  // Theorem 3.1/3.2 sweep is explicitly waived — that window is the
  // documented exception where the bounds are out of force (a split
  // membership view breaks the x = n assumption both theorems share; see
  // docs/SCENARIOS.md). Every sweep outside the window must still pass,
  // the waiver must actually fire, and everyone must be back at the end.
  SimParams p = small_params();
  ExperimentOptions opts;
  opts.audit.enabled = true;
  opts.scenario.name = "partition-wave";
  scenario::Phase wave;
  wave.type = scenario::PhaseType::kPartition;
  wave.start = 3.0;
  wave.end = 6.0;
  wave.fraction = 0.5;
  wave.settle = 2.0;
  opts.scenario.phases.push_back(wave);
  for (const Protocol proto : {Protocol::kErtA, Protocol::kErtAF}) {
    const auto r = run_experiment(p, proto, SubstrateKind::kCycloid, opts);
    EXPECT_GT(r.audit_sweeps, 0u) << to_string(proto);
    EXPECT_GT(r.audit_waived_sweeps, 0u) << to_string(proto);
    EXPECT_EQ(r.audit_violations, 0u)
        << to_string(proto) << "\n" << violations_text(r);
    EXPECT_EQ(r.final_nodes, 256u) << to_string(proto);
  }
}

TEST(AuditUnderStress, UnwaivedPartitionAuditIsDeterministic) {
  // With waive_audit = false the sweep keeps running straight through the
  // split. We make no claim that the bounds hold mid-partition (that is
  // exactly what the waiver is for); what must hold is that whatever the
  // auditor reports is reproducible sweep for sweep, so an unwaived run
  // can serve as a regression anchor.
  ExperimentOptions opts;
  opts.audit.enabled = true;
  opts.scenario.name = "unwaived";
  scenario::Phase wave;
  wave.type = scenario::PhaseType::kPartition;
  wave.start = 3.0;
  wave.end = 6.0;
  wave.fraction = 0.4;
  wave.settle = 1.0;
  wave.waive_audit = false;
  opts.scenario.phases.push_back(wave);
  const auto a = run_experiment(small_params(), Protocol::kErtAF,
                                SubstrateKind::kCycloid, opts);
  const auto b = run_experiment(small_params(), Protocol::kErtAF,
                                SubstrateKind::kCycloid, opts);
  EXPECT_EQ(a.audit_waived_sweeps, 0u);
  EXPECT_GT(a.audit_sweeps, 0u);
  EXPECT_EQ(a.audit_sweeps, b.audit_sweeps);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
  EXPECT_EQ(violations_text(a), violations_text(b));
  EXPECT_EQ(a.sim_duration, b.sim_duration);
}

TEST(AuditUnderStress, SeededFaultRunRecoversAndAuditsClean) {
  // The ISSUE's fault scenario: message drops plus a crash wave. ERT/AF
  // must still complete nearly everything, the retry path must fire, and
  // once the crashed nodes have left the live set every sweep must pass.
  ExperimentOptions opts;
  opts.audit.enabled = true;
  opts.faults.drop_prob = 0.01;
  opts.faults.crash_waves.push_back(CrashWave{5.0, 24});
  const auto r = run_experiment(small_params(), Protocol::kErtAF,
                                SubstrateKind::kCycloid, opts);
  EXPECT_EQ(r.faults.crashed_nodes, 24u);
  EXPECT_GT(r.faults.retried, 0u);
  EXPECT_GE(r.completed_lookups, 380u);
  EXPECT_EQ(r.audit_violations, 0u) << violations_text(r);
}

TEST(AuditUnderStress, AveragedRunsSumAuditOutput) {
  SimParams p = small_params();
  p.num_lookups = 200;
  ExperimentOptions opts;
  opts.audit.enabled = true;
  const auto avg =
      run_averaged(p, Protocol::kErtAF, 3, SubstrateKind::kCycloid, 0, opts);
  std::size_t sweeps = 0;
  for (int s = 0; s < 3; ++s) {
    SimParams ps = p;
    ps.seed = p.seed + static_cast<std::uint64_t>(s);
    sweeps += run_experiment(ps, Protocol::kErtAF, SubstrateKind::kCycloid,
                             opts)
                  .audit_sweeps;
  }
  EXPECT_EQ(avg.audit_sweeps, sweeps);
  EXPECT_EQ(avg.audit_violations, 0u);
}

TEST(AuditUnderStress, CustomSweepPeriodChangesCadenceOnly) {
  ExperimentOptions fast;
  fast.audit.enabled = true;
  fast.audit.period = 0.25;
  ExperimentOptions slow;
  slow.audit.enabled = true;
  slow.audit.period = 4.0;
  const auto rf = run_experiment(small_params(), Protocol::kErtAF,
                                 SubstrateKind::kCycloid, fast);
  const auto rs = run_experiment(small_params(), Protocol::kErtAF,
                                 SubstrateKind::kCycloid, slow);
  EXPECT_GT(rf.audit_sweeps, rs.audit_sweeps);
  EXPECT_EQ(rf.audit_violations, 0u);
  EXPECT_EQ(rs.audit_violations, 0u);
  EXPECT_EQ(rf.lookup_time.mean, rs.lookup_time.mean);
}

}  // namespace
}  // namespace ert::harness
