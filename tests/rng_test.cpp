#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ert {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.bits() == b.bits()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, IndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, UniformRealMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);  // mean = 1/rate
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.bounded_pareto(2.0, 500.0, 50000.0);
    EXPECT_GE(v, 500.0);
    EXPECT_LE(v, 50000.0);
  }
}

TEST(Rng, BoundedParetoIsSkewedLow) {
  // Shape-2 Pareto concentrates mass near the lower bound: the median must
  // be far below the midpoint of [500, 50000].
  Rng rng(19);
  std::vector<double> v(10001);
  for (auto& x : v) x = rng.bounded_pareto(2.0, 500.0, 50000.0);
  std::nth_element(v.begin(), v.begin() + 5000, v.end());
  EXPECT_LT(v[5000], 1200.0);
  EXPECT_GT(v[5000], 500.0);
}

TEST(Rng, BoundedParetoMeanMatchesTheory) {
  // E[X] for bounded Pareto(k, L, H) = L^k/(1-(L/H)^k) * k/(k-1) *
  //   (1/L^{k-1} - 1/H^{k-1}).
  const double k = 2.0, L = 500.0, H = 50000.0;
  const double expect = std::pow(L, k) / (1 - std::pow(L / H, k)) *
                        (k / (k - 1)) * (1 / L - 1 / H);
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.bounded_pareto(k, L, H);
  EXPECT_NEAR(sum / n, expect, expect * 0.05);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(29);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t r = rng.zipf(100, 1.0);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  // Rank 0 must dominate rank 50 heavily under s = 1.
  EXPECT_GT(counts[0], counts[50] * 10);
  EXPECT_GT(counts[0], 0);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(31);
  for (std::size_t k : {0u, 1u, 5u, 99u, 100u, 150u}) {
    const auto s = rng.sample_indices(100, k);
    EXPECT_EQ(s.size(), std::min<std::size_t>(k, 100));
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), s.size());
    for (auto v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng b = a.fork();
  // The fork must not replay the parent's stream.
  Rng a2(5);
  (void)a2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.bits() == b.bits()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, PoissonMean) {
  Rng rng(37);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

}  // namespace
}  // namespace ert
