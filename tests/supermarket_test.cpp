#include "supermarket/model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ert::supermarket {
namespace {

TEST(ClassicFixedPoint, MM1Geometric) {
  // d = 1 is an M/M/1 queue: s_i = lambda^i, E[T] = 1/(1-lambda).
  const auto s = classic_fixed_point(0.8, 1, 50);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(s[i], std::pow(0.8, static_cast<double>(i)), 1e-12);
  EXPECT_NEAR(classic_expected_time(0.8, 1), 5.0, 1e-6);
}

TEST(ClassicFixedPoint, PowerOfTwoDoublyExponential) {
  const auto s = classic_fixed_point(0.9, 2, 20);
  EXPECT_NEAR(s[1], 0.9, 1e-12);
  EXPECT_NEAR(s[2], std::pow(0.9, 3.0), 1e-12);
  EXPECT_NEAR(s[3], std::pow(0.9, 7.0), 1e-12);
  // Tail collapses much faster than geometric.
  EXPECT_LT(s[6], std::pow(0.9, 30.0));
}

TEST(ClassicExpectedTime, ExponentialImprovement) {
  // Theorem 4.1's headline: two choices beat one by an exponential margin,
  // growing without bound as lambda -> 1.
  const double g90 = classic_expected_time(0.90, 1) / classic_expected_time(0.90, 2);
  const double g99 = classic_expected_time(0.99, 1) / classic_expected_time(0.99, 2);
  EXPECT_GT(g90, 3.0);
  EXPECT_GT(g99, 15.0);
  EXPECT_GT(g99, g90);
  // b = 3 helps less over b = 2 than b = 2 over b = 1 ("poll size larger
  // than two gains much less substantial extra improvement").
  const double gain32 =
      classic_expected_time(0.99, 2) / classic_expected_time(0.99, 3);
  EXPECT_LT(gain32, g99 / 3);
}

TEST(ThresholdFixedPoint, MatchesOdeIntegration) {
  for (const int b : {1, 2, 3}) {
    ThresholdModel m;
    m.lambda = 0.7;
    m.b = b;
    m.threshold = 1;
    m.capacity = 1;
    m.tail = 50;
    const auto fp = lemma_a1_fixed_point(m);
    const auto ode = integrate_threshold_ode(m, 300.0, 0.02);
    EXPECT_NEAR(expected_customers(fp), expected_customers(ode), 0.05)
        << "b=" << b;
  }
}

TEST(ThresholdFixedPoint, MonotoneTail) {
  ThresholdModel m;
  m.lambda = 0.9;
  m.b = 2;
  const auto fp = lemma_a1_fixed_point(m);
  for (std::size_t i = 1; i < fp.s.size(); ++i)
    EXPECT_LE(fp.s[i], fp.s[i - 1] + 1e-12);
  EXPECT_DOUBLE_EQ(fp.s[0], 1.0);
}

TEST(ThresholdFixedPoint, MoreChoicesShorterQueues) {
  double prev = 1e18;
  for (int b : {1, 2, 3}) {
    ThresholdModel m;
    m.lambda = 0.9;
    m.b = b;
    const double en = expected_customers(lemma_a1_fixed_point(m));
    EXPECT_LT(en, prev);
    prev = en;
  }
}

TEST(QueueSim, MM1SanityAgainstTheory) {
  QueueSimParams p;
  p.lambda = 0.7;
  p.b = 1;
  p.arrivals = 120000;
  p.servers = 300;
  const auto r = simulate_supermarket(p);
  // M/M/1: E[T] = 1/(1 - lambda) = 3.33.
  EXPECT_NEAR(r.mean_system_time, 1.0 / 0.3, 0.35);
}

TEST(QueueSim, TwoChoicesMatchTheory) {
  QueueSimParams p;
  p.lambda = 0.9;
  p.b = 2;
  p.arrivals = 120000;
  p.servers = 300;
  const auto r = simulate_supermarket(p);
  EXPECT_NEAR(r.mean_system_time, classic_expected_time(0.9, 2), 0.3);
}

TEST(QueueSim, ImprovementVisibleInSimulation) {
  QueueSimParams p;
  p.lambda = 0.93;
  p.arrivals = 80000;
  p.servers = 300;
  p.b = 1;
  const double t1 = simulate_supermarket(p).mean_system_time;
  p.b = 2;
  p.seed = 2;
  const double t2 = simulate_supermarket(p).mean_system_time;
  EXPECT_GT(t1, 2.0 * t2);
}

TEST(QueueSim, MaxQueueShrinksWithChoices) {
  QueueSimParams p;
  p.lambda = 0.9;
  p.arrivals = 60000;
  p.servers = 200;
  p.b = 1;
  const auto r1 = simulate_supermarket(p);
  p.b = 2;
  const auto r2 = simulate_supermarket(p);
  EXPECT_LT(r2.max_queue, r1.max_queue);
}

TEST(QueueSim, MemoryDispatchSitsBetweenOneAndTwoChoices) {
  // The ERT adaptation of [22] (one fresh draw + the remembered server)
  // keeps most of the two-choice gain over random placement: far below
  // b = 1, somewhat above two fresh choices. (The memory server still
  // gets probed, so the saving is one random draw, not one probe.)
  QueueSimParams p;
  p.lambda = 0.9;
  p.arrivals = 100000;
  p.servers = 300;
  p.b = 1;
  const double t1 = simulate_supermarket(p).mean_system_time;
  p.b = 2;
  const auto fresh = simulate_supermarket(p);
  p.use_memory = true;
  const auto mem = simulate_supermarket(p);
  EXPECT_LT(mem.mean_system_time, 0.7 * t1);
  EXPECT_GT(mem.mean_system_time, 0.9 * fresh.mean_system_time);
}

TEST(QueueSim, ProbeAccounting) {
  QueueSimParams p;
  p.lambda = 0.5;
  p.arrivals = 20000;
  p.threshold = 0;  // never breaks early: always polls exactly b
  p.b = 3;
  const auto r = simulate_supermarket(p);
  EXPECT_NEAR(r.probes_per_arrival, 3.0, 1e-9);
}

TEST(QueueSim, DeterministicForSeed) {
  QueueSimParams p;
  p.arrivals = 5000;
  const auto a = simulate_supermarket(p);
  const auto b = simulate_supermarket(p);
  EXPECT_DOUBLE_EQ(a.mean_system_time, b.mean_system_time);
}

}  // namespace
}  // namespace ert::supermarket
