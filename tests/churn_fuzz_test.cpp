// Fuzz: random interleavings of join / graceful-leave / silent-fail /
// expand / shed / purge / repair / lookup on each substrate, with the
// structural invariants re-checked throughout — including nodes crashing
// *while* a lookup is routing through them (the query hands off to a live
// node and must still converge without touching stale state; run under
// ASan/UBSan in CI). Seeds are fixed so failures reproduce.
#include <gtest/gtest.h>

#include "chord/overlay.h"
#include "cycloid/overlay.h"
#include "d1ht/overlay.h"
#include "kademlia/overlay.h"
#include "pastry/overlay.h"

namespace ert {
namespace {

using dht::NodeIndex;

template <typename Overlay>
NodeIndex pick_alive(const Overlay& o, Rng& rng) {
  for (int t = 0; t < 256; ++t) {
    const NodeIndex v = rng.index(o.num_slots());
    if (o.node(v).alive) return v;
  }
  return dht::kNoNode;
}

/// Drives one fuzz round; `route` runs a full lookup and returns the final
/// node, `join` adds and wires one node.
template <typename Overlay, typename JoinFn, typename RouteFn>
void fuzz(Overlay& o, Rng& rng, JoinFn join, RouteFn route, int ops) {
  for (int op = 0; op < ops; ++op) {
    switch (rng.index(10)) {
      case 0:
      case 1:
        join();
        break;
      case 2: {
        if (o.alive_count() > 32) {
          const NodeIndex v = pick_alive(o, rng);
          if (v != dht::kNoNode) o.leave_graceful(v);
        }
        break;
      }
      case 3: {
        if (o.alive_count() > 32) {
          const NodeIndex v = pick_alive(o, rng);
          if (v != dht::kNoNode) o.fail(v);
        }
        break;
      }
      case 4: {
        const NodeIndex v = pick_alive(o, rng);
        if (v != dht::kNoNode)
          o.expand_indegree(v, 1 + static_cast<int>(rng.index(4)), 64);
        break;
      }
      case 5: {
        const NodeIndex v = pick_alive(o, rng);
        if (v != dht::kNoNode)
          o.shed_indegree(v, 1 + static_cast<int>(rng.index(3)));
        break;
      }
      case 6: {
        // Purge stale links the way the runtime would on a timeout.
        const NodeIndex v = pick_alive(o, rng);
        if (v == dht::kNoNode) break;
        for (const auto& e : o.node(v).table.entries()) {
          const auto span = e.candidates(o.arena().cands);
          const std::vector<NodeIndex> cands(span.begin(), span.end());
          for (NodeIndex c : cands)
            if (!o.node(c).alive) o.purge_dead(v, c);
        }
        for (std::size_t slot = 0; slot < o.node(v).table.num_entries();
             ++slot)
          o.repair_entry(v, slot);
        break;
      }
      default: {
        // Lookup correctness under whatever state we are in.
        const NodeIndex src = pick_alive(o, rng);
        if (src == dht::kNoNode) break;
        route(src);
        break;
      }
    }
  }
  o.check_invariants();
}

TEST(ChurnFuzz, Cycloid) {
  cycloid::OverlayOptions opts;
  opts.dimension = 7;
  opts.policy = cycloid::NeighborPolicy::kSpareIndegree;
  opts.enforce_indegree_bounds = true;
  cycloid::Overlay o(opts);
  Rng rng(101);
  auto join = [&] {
    if (o.directory().size() + 8 >= o.space().size()) return;
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v, rng);
    o.expand_indegree(v, 4, 64);
  };
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.space().size();
    cycloid::RouteCtx ctx;
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      // Crash-during-routing: with the network above its floor, fail a
      // random node mid-lookup (sometimes cur itself) and keep routing —
      // ASan/UBSan then prove no stale NodeIndex is dereferenced.
      if (o.alive_count() > 48 && rng.index(8) == 0) {
        const NodeIndex victim = pick_alive(o, rng);
        if (victim != dht::kNoNode) o.fail(victim);
      }
      if (!o.node(cur).alive) {
        // The node holding the query died: hand off to a live node the
        // way the engine routes displaced queries, and count the hop.
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after mid-route crashes";
        continue;
      }
      const auto step = o.route_step(cur, key, ctx);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      // Follow the first LIVE candidate, purging stale ones like the
      // runtime does.
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : step.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        if (step.entry_index < cycloid::kNoEntry)
          o.repair_entry(cur, step.entry_index);
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };
  for (int i = 0; i < 150; ++i) join();
  fuzz(o, rng, join, route, 800);
}

TEST(ChurnFuzz, CycloidPartitionWave) {
  // The scenario engine's partition phase at the overlay level: half of
  // the alive set silent-fails in one burst (the reachable side's view of
  // a network split), lookups keep routing through the wreckage with
  // timeout-driven purge/repair, then a rejoin wave brings the population
  // back. Invariants are re-checked after every stage, and the whole
  // thing runs under ASan/UBSan in CI.
  cycloid::OverlayOptions opts;
  opts.dimension = 7;
  opts.policy = cycloid::NeighborPolicy::kSpareIndegree;
  opts.enforce_indegree_bounds = true;
  cycloid::Overlay o(opts);
  Rng rng(707);
  auto join = [&] {
    if (o.directory().size() + 8 >= o.space().size()) return;
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v, rng);
    o.expand_indegree(v, 4, 64);
  };
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.space().size();
    cycloid::RouteCtx ctx;
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      if (!o.node(cur).alive) {
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after the partition wave";
        continue;
      }
      const auto step = o.route_step(cur, key, ctx);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : step.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        if (step.entry_index < cycloid::kNoEntry)
          o.repair_entry(cur, step.entry_index);
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };

  for (int i = 0; i < 150; ++i) join();
  o.check_invariants();
  const std::size_t before = o.alive_count();

  for (int wave = 0; wave < 2; ++wave) {
    // Burst-fail half of the alive set in one go: no repair runs between
    // victims, which is what separates a partition from gradual churn.
    std::vector<NodeIndex> victims;
    for (NodeIndex v = 0; v < o.num_slots(); ++v)
      if (o.node(v).alive && rng.bernoulli(0.5)) victims.push_back(v);
    // Keep a floor so routing always has somewhere to hand off to.
    while (o.alive_count() - victims.size() < 24) victims.pop_back();
    for (NodeIndex v : victims) o.fail(v);
    o.check_invariants();

    // The surviving side must still resolve lookups while purging the
    // dead half out of its tables.
    for (int i = 0; i < 120; ++i) {
      const NodeIndex src = pick_alive(o, rng);
      ASSERT_NE(src, dht::kNoNode);
      route(src);
    }
    // Sweep repairs like the runtime's timeout path would.
    for (NodeIndex v = 0; v < o.num_slots(); ++v) {
      if (!o.node(v).alive) continue;
      for (std::size_t slot = 0; slot < o.node(v).table.num_entries(); ++slot)
        o.repair_entry(v, slot);
    }
    o.check_invariants();

    // Rejoin wave: the departed population's worth of fresh joins.
    for (std::size_t i = 0; i < victims.size(); ++i) join();
    o.check_invariants();
    for (int i = 0; i < 120; ++i) {
      const NodeIndex src = pick_alive(o, rng);
      ASSERT_NE(src, dht::kNoNode);
      route(src);
    }
  }
  o.check_invariants();
  EXPECT_GE(o.alive_count(), before / 2);
}

TEST(ChurnFuzz, ChordPartitionWave) {
  // Same wave shape on Chord: successor-list and finger repair have to
  // absorb a burst of silent failures rather than one death at a time.
  chord::ChordOptions opts;
  opts.bits = 14;
  opts.enforce_indegree_bounds = true;
  chord::Overlay o(opts);
  Rng rng(808);
  auto join = [&] {
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v);
    o.expand_indegree(v, 4, 64);
  };
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      if (!o.node(cur).alive) {
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after the partition wave";
        continue;
      }
      const auto step = o.route_step(cur, key);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : step.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };

  for (int i = 0; i < 150; ++i) join();
  o.check_invariants();

  std::vector<NodeIndex> victims;
  for (NodeIndex v = 0; v < o.num_slots(); ++v)
    if (o.node(v).alive && rng.bernoulli(0.5)) victims.push_back(v);
  while (o.alive_count() - victims.size() < 24) victims.pop_back();
  for (NodeIndex v : victims) o.fail(v);
  o.check_invariants();
  for (int i = 0; i < 120; ++i) {
    const NodeIndex src = pick_alive(o, rng);
    ASSERT_NE(src, dht::kNoNode);
    route(src);
  }
  for (std::size_t i = 0; i < victims.size(); ++i) join();
  o.check_invariants();
  for (int i = 0; i < 120; ++i) {
    const NodeIndex src = pick_alive(o, rng);
    ASSERT_NE(src, dht::kNoNode);
    route(src);
  }
  o.check_invariants();
}

TEST(ChurnFuzz, Chord) {
  chord::ChordOptions opts;
  opts.bits = 14;
  opts.enforce_indegree_bounds = true;
  chord::Overlay o(opts);
  Rng rng(202);
  auto join = [&] {
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v);
    o.expand_indegree(v, 4, 64);
  };
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      // Crash-during-routing: with the network above its floor, fail a
      // random node mid-lookup (sometimes cur itself) and keep routing —
      // ASan/UBSan then prove no stale NodeIndex is dereferenced.
      if (o.alive_count() > 48 && rng.index(8) == 0) {
        const NodeIndex victim = pick_alive(o, rng);
        if (victim != dht::kNoNode) o.fail(victim);
      }
      if (!o.node(cur).alive) {
        // The node holding the query died: hand off to a live node the
        // way the engine routes displaced queries, and count the hop.
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after mid-route crashes";
        continue;
      }
      const auto step = o.route_step(cur, key);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : step.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };
  for (int i = 0; i < 150; ++i) join();
  fuzz(o, rng, join, route, 800);
}

TEST(ChurnFuzz, Pastry) {
  pastry::PastryOptions opts;
  opts.enforce_indegree_bounds = true;
  pastry::Overlay o(opts);
  Rng rng(303);
  auto join = [&] {
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v);
    o.expand_indegree(v, 4, 64);
  };
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      // Crash-during-routing: with the network above its floor, fail a
      // random node mid-lookup (sometimes cur itself) and keep routing —
      // ASan/UBSan then prove no stale NodeIndex is dereferenced.
      if (o.alive_count() > 48 && rng.index(8) == 0) {
        const NodeIndex victim = pick_alive(o, rng);
        if (victim != dht::kNoNode) o.fail(victim);
      }
      if (!o.node(cur).alive) {
        // The node holding the query died: hand off to a live node the
        // way the engine routes displaced queries, and count the hop.
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after mid-route crashes";
        continue;
      }
      const auto step = o.route_step(cur, key);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : step.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };
  for (int i = 0; i < 150; ++i) join();
  fuzz(o, rng, join, route, 800);
}

TEST(ChurnFuzz, Kademlia) {
  kademlia::KademliaOptions opts;
  opts.bits = 14;
  opts.enforce_indegree_bounds = true;
  kademlia::Overlay o(opts);
  Rng rng(404);
  auto join = [&] {
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v, rng);
    o.expand_indegree(v, 4, 64);
  };
  dht::RouteScratch scratch;
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      // Crash-during-routing: with the network above its floor, fail a
      // random node mid-lookup (sometimes cur itself) and keep routing —
      // ASan/UBSan then prove no stale NodeIndex is dereferenced.
      if (o.alive_count() > 48 && rng.index(8) == 0) {
        const NodeIndex victim = pick_alive(o, rng);
        if (victim != dht::kNoNode) o.fail(victim);
      }
      if (!o.node(cur).alive) {
        // The node holding the query died: hand off to a live node the
        // way the engine routes displaced queries, and count the hop.
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after mid-route crashes";
        continue;
      }
      const auto step = o.route_step(cur, key, scratch);
      if (step.arrived) break;
      ASSERT_FALSE(scratch.candidates.empty());
      // Follow the first LIVE candidate, purging stale ones like the
      // runtime does (Kademlia's timeout-driven lazy eviction).
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : scratch.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };
  for (int i = 0; i < 150; ++i) join();
  fuzz(o, rng, join, route, 800);
}

TEST(ChurnFuzz, D1ht) {
  d1ht::D1htOptions opts;
  opts.bits = 14;
  opts.enforce_indegree_bounds = true;
  d1ht::Overlay o(opts);
  Rng rng(505);
  auto join = [&] {
    const NodeIndex v = o.add_node_random(rng, rng.uniform(0.3, 4.0), 40, 0.8);
    o.build_table(v);
    o.expand_indegree(v, 4, 64);
  };
  dht::RouteScratch scratch;
  auto route = [&](NodeIndex src) {
    const std::uint64_t key = rng.bits() % o.ring_size();
    NodeIndex cur = src;
    std::size_t hops = 0;
    for (;;) {
      // Crash-during-routing: with the network above its floor, fail a
      // random node mid-lookup (sometimes cur itself) and keep routing —
      // ASan/UBSan then prove no stale NodeIndex is dereferenced.
      if (o.alive_count() > 48 && rng.index(8) == 0) {
        const NodeIndex victim = pick_alive(o, rng);
        if (victim != dht::kNoNode) o.fail(victim);
      }
      if (!o.node(cur).alive) {
        // The node holding the query died: hand off to a live node the
        // way the engine routes displaced queries, and count the hop.
        cur = pick_alive(o, rng);
        if (cur == dht::kNoNode) return;
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck after mid-route crashes";
        continue;
      }
      const auto step = o.route_step(cur, key, scratch);
      if (step.arrived) break;
      ASSERT_FALSE(scratch.candidates.empty());
      // Follow the first LIVE candidate, purging stale ones like EDRA's
      // detection timeouts would.
      NodeIndex next = dht::kNoNode;
      for (NodeIndex c : scratch.candidates) {
        if (o.node(c).alive) {
          next = c;
          break;
        }
        o.purge_dead(cur, c);
      }
      if (next == dht::kNoNode) {
        ++hops;
        if (hops > 600) FAIL() << "lookup stuck on stale entries";
        continue;
      }
      cur = next;
      ASSERT_LT(++hops, 600u);
    }
    ASSERT_EQ(cur, o.responsible(key));
  };
  for (int i = 0; i < 150; ++i) join();
  fuzz(o, rng, join, route, 800);
}

}  // namespace
}  // namespace ert
