#include "ert/indegree.h"

#include <gtest/gtest.h>

namespace ert::core {
namespace {

TEST(IndegreeBudget, InitialTarget) {
  IndegreeBudget b(10, 0.8);
  EXPECT_EQ(b.initial_target(), 8);
  IndegreeBudget small(1, 0.5);
  EXPECT_EQ(small.initial_target(), 1);  // at least 1
}

TEST(IndegreeBudget, AcceptanceRule) {
  IndegreeBudget b(2, 1.0);
  EXPECT_TRUE(b.can_accept());
  b.on_inlink_added();
  EXPECT_TRUE(b.can_accept());
  b.on_inlink_added();
  EXPECT_FALSE(b.can_accept());  // d_inf - d == 0
  b.on_inlink_removed();
  EXPECT_TRUE(b.can_accept());
}

TEST(IndegreeBudget, WantsMoreUntilWatermark) {
  IndegreeBudget b(10, 0.8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(b.wants_more());
    b.on_inlink_added();
  }
  EXPECT_FALSE(b.wants_more());
}

TEST(IndegreeBudget, BoundAdjustment) {
  IndegreeBudget b(5, 0.8);
  b.raise_bound_by(3);
  EXPECT_EQ(b.max_indegree(), 8);
  b.lower_bound_by(10);
  EXPECT_EQ(b.max_indegree(), 1);  // never below 1
}

TEST(IndegreeBudget, RemoveBelowZeroClamped) {
  IndegreeBudget b(5, 0.8);
  b.on_inlink_removed();
  EXPECT_EQ(b.indegree(), 0);
}

TEST(BackwardFingerList, AddRemoveContains) {
  BackwardFingerList l;
  EXPECT_TRUE(l.add({1, 100, 0.5}));
  EXPECT_FALSE(l.add({1, 100, 0.5}));  // duplicate node
  EXPECT_TRUE(l.add({2, 50, 0.1}));
  EXPECT_EQ(l.size(), 2u);
  EXPECT_TRUE(l.contains(1));
  EXPECT_TRUE(l.remove(1));
  EXPECT_FALSE(l.remove(1));
  EXPECT_FALSE(l.contains(1));
}

TEST(BackwardFingerList, EvictionOrderLogicalThenPhysical) {
  BackwardFingerList l;
  l.add({1, 100, 0.1});
  l.add({2, 300, 0.2});
  l.add({3, 300, 0.9});  // same logical as 2, farther physically
  l.add({4, 50, 0.5});
  const auto ev = l.pick_evictions(3);
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0], 3u);  // longest logical, longest physical
  EXPECT_EQ(ev[1], 2u);
  EXPECT_EQ(ev[2], 1u);
}

TEST(BackwardFingerList, EvictionsClampToSize) {
  BackwardFingerList l;
  l.add({1, 10, 0.0});
  EXPECT_EQ(l.pick_evictions(5).size(), 1u);
  EXPECT_EQ(l.pick_evictions(0).size(), 0u);
}

TEST(BackwardFingerList, Clear) {
  BackwardFingerList l;
  l.add({1, 1, 1});
  l.clear();
  EXPECT_TRUE(l.empty());
}

}  // namespace
}  // namespace ert::core
