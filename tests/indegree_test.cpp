#include "ert/indegree.h"

#include <gtest/gtest.h>

namespace ert::core {
namespace {

TEST(IndegreeBudget, InitialTarget) {
  IndegreeBudget b(10, 0.8);
  EXPECT_EQ(b.initial_target(), 8);
  IndegreeBudget small(1, 0.5);
  EXPECT_EQ(small.initial_target(), 1);  // at least 1
}

TEST(IndegreeBudget, AcceptanceRule) {
  IndegreeBudget b(2, 1.0);
  EXPECT_TRUE(b.can_accept());
  b.on_inlink_added();
  EXPECT_TRUE(b.can_accept());
  b.on_inlink_added();
  EXPECT_FALSE(b.can_accept());  // d_inf - d == 0
  b.on_inlink_removed();
  EXPECT_TRUE(b.can_accept());
}

TEST(IndegreeBudget, WantsMoreUntilWatermark) {
  IndegreeBudget b(10, 0.8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(b.wants_more());
    b.on_inlink_added();
  }
  EXPECT_FALSE(b.wants_more());
}

TEST(IndegreeBudget, BoundAdjustment) {
  IndegreeBudget b(5, 0.8);
  b.raise_bound_by(3);
  EXPECT_EQ(b.max_indegree(), 8);
  b.lower_bound_by(10);
  EXPECT_EQ(b.max_indegree(), 1);  // never below 1
}

TEST(IndegreeBudget, RemoveBelowZeroClamped) {
  IndegreeBudget b(5, 0.8);
  b.on_inlink_removed();
  EXPECT_EQ(b.indegree(), 0);
}

TEST(BackwardFingerList, AddRemoveContains) {
  FingerPool pool;
  BackwardFingerList l;
  EXPECT_TRUE(l.add(pool, {1, 100, 0.5}));
  EXPECT_FALSE(l.add(pool, {1, 100, 0.5}));  // duplicate node
  EXPECT_TRUE(l.add(pool, {2, 50, 0.1}));
  EXPECT_EQ(l.size(), 2u);
  EXPECT_TRUE(l.contains(pool, 1));
  EXPECT_TRUE(l.remove(pool, 1));
  EXPECT_FALSE(l.remove(pool, 1));
  EXPECT_FALSE(l.contains(pool, 1));
}

TEST(BackwardFingerList, EvictionOrderLogicalThenPhysical) {
  FingerPool pool;
  BackwardFingerList l;
  l.add(pool, {1, 100, 0.1});
  l.add(pool, {2, 300, 0.2});
  l.add(pool, {3, 300, 0.9});  // same logical as 2, farther physically
  l.add(pool, {4, 50, 0.5});
  std::vector<BackwardFinger> scratch;
  std::vector<dht::NodeIndex> ev;
  l.pick_evictions(pool, 3, scratch, ev);
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0], 3u);  // longest logical, longest physical
  EXPECT_EQ(ev[1], 2u);
  EXPECT_EQ(ev[2], 1u);
}

TEST(BackwardFingerList, EvictionsClampToSize) {
  FingerPool pool;
  BackwardFingerList l;
  l.add(pool, {1, 10, 0.0});
  std::vector<BackwardFinger> scratch;
  std::vector<dht::NodeIndex> ev;
  l.pick_evictions(pool, 5, scratch, ev);
  EXPECT_EQ(ev.size(), 1u);
  l.pick_evictions(pool, 0, scratch, ev);
  EXPECT_EQ(ev.size(), 0u);
}

TEST(BackwardFingerList, Clear) {
  FingerPool pool;
  BackwardFingerList l;
  l.add(pool, {1, 1, 1});
  l.clear(pool);
  EXPECT_TRUE(l.empty());
}

}  // namespace
}  // namespace ert::core
