// Scenario-file parser tests: canonical round-trips (parse → serialize →
// parse identity, serialize fixed point), line-numbered rejection of every
// malformed-input class, and a deterministic fuzz loop over a token-soup
// generator (run under ASan/UBSan in CI). Also covers the report JSON
// reader/writer round-trip, since it shares the no-dependency policy.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "scenario/parser.h"
#include "scenario/report.h"
#include "scenario/scenario.h"

namespace ert::scenario {
namespace {

Scenario sample_scenario() {
  Scenario s;
  s.name = "kitchen-sink";
  Phase flash;
  flash.type = PhaseType::kFlash;
  flash.start = 0.5;
  flash.end = 12.25;
  flash.multiplier = 7.75;
  flash.ramp = 0.125;
  Phase diurnal;
  diurnal.type = PhaseType::kDiurnal;
  diurnal.start = 0.0;
  diurnal.end = 100.0;
  diurnal.period = 8.1;
  diurnal.amplitude = 0.3333333333333333;  // needs full precision
  Phase hotspot;
  hotspot.type = PhaseType::kHotspot;
  hotspot.start = 2.0;
  hotspot.end = 9.0;
  hotspot.catalog = 64;
  hotspot.exponent = 1.1;
  hotspot.rotate = 0.7;
  Phase churn;
  churn.type = PhaseType::kChurn;
  churn.start = 1.0;
  churn.end = 50.0;
  churn.interarrival = 0.05;
  churn.bias = 5;
  Phase partition;
  partition.type = PhaseType::kPartition;
  partition.start = 20.0;
  partition.end = 30.0;
  partition.fraction = 0.45;
  partition.settle = 2.5;
  partition.waive_audit = false;
  s.phases = {flash, diurnal, hotspot, churn, partition};
  return s;
}

// --- round trips -------------------------------------------------------------

TEST(ScenarioParser, SerializeParseIdentityAcrossAllPhaseTypes) {
  const Scenario s = sample_scenario();
  const std::string text = serialize(s);
  const ParseResult back = parse(text);
  ASSERT_TRUE(back.ok) << back.message();
  EXPECT_EQ(back.scenario, s);
  // Canonical form is a fixed point: serializing again changes nothing.
  EXPECT_EQ(serialize(back.scenario), text);
}

TEST(ScenarioParser, ParsesHandWrittenFileWithCommentsAndSpacing) {
  const std::string text =
      "# a flash crowd over a rotating hot set\n"
      "name = demo\n"
      "\n"
      "[phase]\n"
      "type = flash\n"
      "  start=1\n"
      "end   =  4\n"
      "multiplier = 6   # inline comments are not supported; this is a key\n";
  // The trailing text after 6 is part of the value and must be rejected:
  const ParseResult strict = parse(text);
  EXPECT_FALSE(strict.ok);
  EXPECT_EQ(strict.line, 8);

  const std::string clean =
      "# a flash crowd\n"
      "name = demo\n"
      "\n"
      "[phase]\n"
      "type = flash\n"
      "  start=1\n"
      "end   =  4\n"
      "multiplier = 6\n";
  const ParseResult r = parse(clean);
  ASSERT_TRUE(r.ok) << r.message();
  EXPECT_EQ(r.scenario.name, "demo");
  ASSERT_EQ(r.scenario.phases.size(), 1u);
  EXPECT_EQ(r.scenario.phases[0].multiplier, 6.0);
}

TEST(ScenarioParser, KeysBeforeTypeAreBufferedAndApplied) {
  const std::string text =
      "[phase]\n"
      "start = 2\n"
      "end = 5\n"
      "type = flash\n"
      "multiplier = 3\n";
  const ParseResult r = parse(text);
  ASSERT_TRUE(r.ok) << r.message();
  EXPECT_EQ(r.scenario.phases[0].start, 2.0);
  EXPECT_EQ(r.scenario.phases[0].multiplier, 3.0);
}

TEST(ScenarioParser, EmptyTextIsAnEmptyScenario) {
  const ParseResult r = parse("");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.scenario.inert());
  EXPECT_TRUE(r.scenario.phases.empty());
}

// --- line-numbered rejection -------------------------------------------------

struct BadCase {
  const char* label;
  std::string text;
  int line;
};

TEST(ScenarioParser, RejectsMalformedInputWithTheRightLine) {
  const std::vector<BadCase> cases = {
      {"unknown key", "[phase]\ntype = flash\nbogus = 1\n", 3},
      {"wrong-phase key", "[phase]\ntype = flash\ncatalog = 8\n", 3},
      {"buffered wrong-phase key (reports the buffered line)",
       "[phase]\ncatalog = 8\ntype = flash\n", 2},
      {"bad number", "[phase]\ntype = flash\nstart = abc\n", 3},
      {"trailing junk in number", "[phase]\ntype = flash\nstart = 1x\n", 3},
      {"nan rejected", "[phase]\ntype = flash\nstart = nan\n", 3},
      {"missing type", "[phase]\nstart = 1\n", 2},
      {"unknown type", "[phase]\ntype = gravity\n", 2},
      {"duplicate type", "[phase]\ntype = flash\ntype = churn\n", 3},
      {"unknown section", "[banana]\n", 1},
      {"key before first [phase]", "start = 1\n", 1},
      {"unknown header key", "colour = red\n[phase]\ntype = flash\n", 1},
      {"no equals sign", "[phase]\ntype = flash\nstart\n", 3},
      {"empty value", "[phase]\ntype = flash\nstart =\n", 3},
      {"negative count", "[phase]\ntype = hotspot\ncatalog = -4\n", 3},
      {"fractional count", "[phase]\ntype = hotspot\ncatalog = 3.5\n", 3},
      {"bad bool", "[phase]\ntype = partition\nwaive_audit = maybe\n", 3},
  };
  for (const auto& c : cases) {
    const ParseResult r = parse(c.text);
    EXPECT_FALSE(r.ok) << c.label;
    if (!r.ok) {
      EXPECT_EQ(r.line, c.line) << c.label << ": " << r.error;
      EXPECT_FALSE(r.error.empty()) << c.label;
    }
  }
}

TEST(ScenarioParser, ValidationFailuresNameThePhase) {
  // Parses fine, fails range validation: multiplier must be > 0.
  const ParseResult r = parse(
      "[phase]\ntype = flash\nstart = 0\nend = 5\nmultiplier = -2\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("phase 1"), std::string::npos) << r.error;
}

TEST(ScenarioParser, MissingFileReportsLineZero) {
  const ParseResult r = parse_file("/nonexistent/scenario.scn");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.line, 0);
  EXPECT_NE(r.message("x.scn").find("x.scn"), std::string::npos);
}

// --- deterministic fuzz ------------------------------------------------------

// Token-soup generator: assembles lines from the parser's own vocabulary
// plus junk, so a good fraction of inputs exercise deep paths rather than
// dying on line 1. Seeded Rng => reproducible corpus.
std::string fuzz_input(Rng& rng) {
  static const char* kTokens[] = {
      "[phase]", "[banana]", "name", "type", "start", "end", "multiplier",
      "ramp", "period", "amplitude", "catalog", "exponent", "rotate",
      "interarrival", "bias", "fraction", "settle", "waive_audit", "flash",
      "diurnal", "hotspot", "churn", "partition", "=", "0", "1", "2.5",
      "1e3", "-1", "true", "false", "#x", "nan", "1x", "", "\t", " "};
  constexpr std::size_t kNumTokens = sizeof(kTokens) / sizeof(kTokens[0]);
  std::string out;
  const int lines = 1 + static_cast<int>(rng.index(12));
  for (int l = 0; l < lines; ++l) {
    const int toks = static_cast<int>(rng.index(6));
    for (int t = 0; t < toks; ++t) {
      out += kTokens[rng.index(kNumTokens)];
      if (rng.bernoulli(0.7)) out += ' ';
    }
    out += '\n';
  }
  return out;
}

TEST(ScenarioParserFuzz, NeverCrashesAndSurvivorsRoundTrip) {
  Rng rng(0xf022);
  int survivors = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::string input = fuzz_input(rng);
    const ParseResult r = parse(input);  // must not crash / UB
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "input:\n" << input;
      continue;
    }
    ++survivors;
    // Anything accepted must round-trip through the canonical form.
    const ParseResult back = parse(serialize(r.scenario));
    ASSERT_TRUE(back.ok) << "canonical form rejected for input:\n" << input;
    EXPECT_EQ(back.scenario, r.scenario) << "input:\n" << input;
  }
  // The soup should produce at least a few valid scenarios; if not, the
  // generator rotted and the test lost its teeth.
  EXPECT_GT(survivors, 10) << "fuzz generator no longer reaches valid parses";
}

TEST(ScenarioParserFuzz, RandomBytesNeverCrash) {
  Rng rng(0xbeef);
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const std::size_t len = rng.index(160);
    input.reserve(len);
    for (std::size_t j = 0; j < len; ++j)
      input += static_cast<char>(rng.index(256));
    const ParseResult r = parse(input);  // exercise raw-byte robustness
    if (!r.ok) EXPECT_GT(r.line, 0);
  }
}

// --- report JSON -------------------------------------------------------------

Report sample_report() {
  Report rep;
  Cell a;
  a.protocol = "ert-af";
  a.substrate = "cycloid";
  a.scenario = "flash";
  a.mean_latency = 0.012345678901234567;
  a.p99_latency = 0.5;
  a.completed = 400;
  a.dropped_overload = 7;
  a.dropped_fault = 1;
  a.adapt_sheds = 123;
  a.adapt_grows = 45;
  a.bytes_control = 98765;
  a.bytes_query = 1234567;
  a.audit_sweeps = 30;
  a.audit_waived_sweeps = 3;
  a.audit_violations = 0;
  a.verdict = "pass";
  Cell b;
  b.protocol = "base";
  b.substrate = "chord";
  b.scenario = "waves \"quoted\"\\slash";  // escaping must round-trip
  b.verdict = "off";
  rep.cells = {a, b};
  return rep;
}

TEST(ReportJson, RoundTripsExactly) {
  const Report rep = sample_report();
  const std::string json = to_json(rep);
  Report back;
  std::string err;
  ASSERT_TRUE(from_json(json, &back, &err)) << err;
  EXPECT_EQ(back, rep);
  EXPECT_EQ(to_json(back), json);
}

TEST(ReportJson, RejectsMalformedAndUnknownFields) {
  Report out;
  std::string err;
  EXPECT_FALSE(from_json("", &out, &err));
  EXPECT_FALSE(from_json("{", &out, &err));
  EXPECT_FALSE(from_json("[]", &out, &err));
  EXPECT_FALSE(from_json("{\"cells\": []}", &out, &err));  // missing schema
  EXPECT_FALSE(from_json(
      "{\"schema\": \"ert.scenario.report.v0\", \"cells\": []}", &out, &err));
  // Unknown cell field must be rejected, not ignored.
  std::string json = to_json(sample_report());
  const auto pos = json.find("\"protocol\"");
  ASSERT_NE(pos, std::string::npos);
  json.insert(pos, "\"surprise\": 1, ");
  EXPECT_FALSE(from_json(json, &out, &err));
  EXPECT_NE(err.find("surprise"), std::string::npos) << err;
  // Trailing garbage after the document must be rejected.
  EXPECT_FALSE(from_json(to_json(sample_report()) + "x", &out, &err));
}

TEST(ReportJson, TableHasOneRowPerCell) {
  const std::string table = to_table(sample_report());
  EXPECT_NE(table.find("ert-af"), std::string::npos);
  EXPECT_NE(table.find("chord"), std::string::npos);
  EXPECT_NE(table.find("pass"), std::string::npos);
}

}  // namespace
}  // namespace ert::scenario
