#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ert::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule(0.0, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(1.0, [&] {
    sim.schedule(-5.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 1.0); });
  });
  sim.run();
}

TEST(Simulator, PendingEventCount) {
  Simulator sim;
  EXPECT_TRUE(sim.empty());
  auto h = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  // After an event fires, its slot returns to the free list and the next
  // schedule reuses it. The old handle holds a stale generation, so
  // cancelling through it must not touch the new occupant.
  Simulator sim;
  int first = 0, second = 0;
  EventHandle h1 = sim.schedule(1.0, [&] { ++first; });
  sim.run();
  EXPECT_EQ(first, 1);
  EventHandle h2 = sim.schedule(1.0, [&] { ++second; });
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  h1.cancel();  // stale: must be a no-op
  EXPECT_TRUE(h2.pending());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(second, 1);
}

TEST(Simulator, StaleHandleAfterCancelAndReuse) {
  Simulator sim;
  int fired = 0;
  EventHandle h1 = sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  h1.cancel();
  sim.run();  // reclaims h1's slot
  EXPECT_EQ(fired, 1);
  EventHandle h2 = sim.schedule(1.0, [&] { ++fired; });
  h1.cancel();  // doubly stale
  EXPECT_TRUE(h2.pending());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, HandleCopiesShareCancellation) {
  Simulator sim;
  int fired = 0;
  EventHandle a = sim.schedule(1.0, [&] { ++fired; });
  EventHandle b = a;
  a.cancel();
  EXPECT_FALSE(b.pending());
  b.cancel();  // second cancel via the copy: no-op, no double-count
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CompactionPrunesCancelledEntries) {
  // Cancel nearly everything: once stale entries outnumber live ones (past
  // the 64-entry floor), the heap must shrink without being popped.
  Simulator sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i)
    handles.push_back(sim.schedule(1.0 + i, [&] { ++fired; }));
  for (int i = 0; i < 1000; ++i)
    if (i % 100 != 0) handles[i].cancel();
  EXPECT_EQ(sim.pending_events(), 10u);
  EXPECT_LT(sim.heap_size(), 200u);  // lazy-only would still hold ~1000
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, SlotReuseKeepsSchedulingAllocationFree) {
  // Steady-state rolling horizon: the slab and heap stop growing once the
  // window is warm, so heap_size never exceeds the in-flight window.
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 32; ++i) sim.schedule(1.0 + i, [&] { ++fired; });
  for (int round = 0; round < 1000; ++round) {
    sim.step();
    sim.schedule(40.0, [&] { ++fired; });
    EXPECT_LE(sim.heap_size(), 33u);
  }
  sim.run();
  EXPECT_EQ(fired, 1032);
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator sim;
  double last = -1.0;
  std::size_t count = 0;
  for (int i = 0; i < 10000; ++i) {
    const double t = (i * 7919) % 1000;  // scrambled times
    sim.schedule(t, [&, t] {
      EXPECT_LE(last, sim.now());
      EXPECT_DOUBLE_EQ(sim.now(), t);
      last = sim.now();
      ++count;
    });
  }
  sim.run();
  EXPECT_EQ(count, 10000u);
}

}  // namespace
}  // namespace ert::sim
