// Integration tests: the full experiment engine across all protocols and
// workloads, on small networks so the suite stays fast.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ert::harness {
namespace {

SimParams small_params() {
  SimParams p;
  p.num_nodes = 256;
  p.dimension = fit_dimension(256);  // 6 -> 384 ids
  p.num_lookups = 400;
  p.lookup_rate = 16.0;
  p.seed = 5;
  return p;
}

class AllProtocolsTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(AllProtocolsTest, CompletesAllLookupsWithSaneMetrics) {
  const auto r = run_experiment(small_params(), GetParam());
  EXPECT_EQ(r.completed_lookups, 400u);
  EXPECT_EQ(r.dropped_lookups, 0u);
  // The drop split is a partition of dropped_lookups, and fault-free runs
  // never touch the fault counters.
  EXPECT_EQ(r.dropped_overload, 0u);
  EXPECT_EQ(r.dropped_fault, 0u);
  EXPECT_EQ(r.faults.timed_out, 0u);
  EXPECT_EQ(r.faults.retried, 0u);
  EXPECT_EQ(r.faults.recovered, 0u);
  EXPECT_EQ(r.faults.crashed_nodes, 0u);
  EXPECT_EQ(r.audit_sweeps, 0u);  // auditor off by default
  EXPECT_GT(r.avg_path_length, 1.0);
  EXPECT_LT(r.avg_path_length, 40.0);
  EXPECT_GT(r.lookup_time.mean, 0.0);
  EXPECT_GE(r.lookup_time.p99, r.lookup_time.p01);
  EXPECT_GT(r.p99_share, 0.0);
  EXPECT_GE(r.p99_max_congestion, 0.0);
  EXPECT_GT(r.max_outdegree.mean, 0.0);
  EXPECT_EQ(r.final_nodes, 256u);
}

TEST_P(AllProtocolsTest, DeterministicForSeed) {
  const auto a = run_experiment(small_params(), GetParam());
  const auto b = run_experiment(small_params(), GetParam());
  EXPECT_DOUBLE_EQ(a.lookup_time.mean, b.lookup_time.mean);
  EXPECT_EQ(a.heavy_encounters, b.heavy_encounters);
  EXPECT_DOUBLE_EQ(a.p99_share, b.p99_share);
}

TEST_P(AllProtocolsTest, SurvivesChurn) {
  SimParams p = small_params();
  p.churn_interarrival = 0.5;
  const auto r = run_experiment(p, GetParam());
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
  // The vast majority of lookups must complete despite churn.
  EXPECT_GT(r.completed_lookups, 390u);
  // Churn losses are routing-capacity drops, never fault-layer ones.
  EXPECT_EQ(r.dropped_overload + r.dropped_fault, r.dropped_lookups);
  EXPECT_EQ(r.dropped_fault, 0u);
}

TEST_P(AllProtocolsTest, SurvivesSkewedImpulse) {
  SimParams p = small_params();
  p.impulse_nodes = 20;
  p.impulse_keys = 10;
  const auto r = run_experiment(p, GetParam());
  EXPECT_EQ(r.completed_lookups, 400u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocolsTest,
    ::testing::Values(Protocol::kBase, Protocol::kNS, Protocol::kVS,
                      Protocol::kErtA, Protocol::kErtF, Protocol::kErtAF),
    [](const auto& info) {
      std::string name{to_string(info.param)};
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

TEST(Experiment, FitDimension) {
  EXPECT_EQ(fit_dimension(1), 3);
  EXPECT_EQ(fit_dimension(24), 3);      // 3 * 8 = 24
  EXPECT_EQ(fit_dimension(25), 4);      // 4 * 16 = 64
  EXPECT_EQ(fit_dimension(2048), 8);    // the paper's network
  EXPECT_EQ(fit_dimension(2049), 9);
}

TEST(Experiment, ErtReducesShareSkewVsBase) {
  // The paper's central load-balance claim, on the small network.
  SimParams p = small_params();
  p.num_lookups = 800;
  const auto base = run_averaged(p, Protocol::kBase, 3);
  const auto ert = run_averaged(p, Protocol::kErtAF, 3);
  EXPECT_LT(ert.p99_share, base.p99_share);
}

TEST(Experiment, ErtReducesHeavyEncountersVsBase) {
  SimParams p = small_params();
  p.num_lookups = 800;
  const auto base = run_averaged(p, Protocol::kBase, 3);
  const auto ert = run_averaged(p, Protocol::kErtAF, 3);
  EXPECT_LE(ert.heavy_encounters, base.heavy_encounters);
}

TEST(Experiment, VsHasLongerPathsThanBase) {
  // Godfrey-Stoica virtual servers inflate the overlay (Fig. 5b).
  SimParams p = small_params();
  const auto base = run_experiment(p, Protocol::kBase);
  const auto vs = run_experiment(p, Protocol::kVS);
  EXPECT_GT(vs.avg_path_length, base.avg_path_length);
}

TEST(Experiment, VsHasLargerDegreesThanErt) {
  // Fig. 7: VS pays much more maintenance than ERT.
  SimParams p = small_params();
  const auto vs = run_experiment(p, Protocol::kVS);
  const auto ert = run_experiment(p, Protocol::kErtAF);
  EXPECT_GT(vs.max_outdegree.p99, ert.max_outdegree.p99);
}

TEST(Experiment, ErtTimeoutsLowerUnderChurn) {
  // Sec. 5.5: elastic entries substitute for departed neighbors.
  SimParams p = small_params();
  p.churn_interarrival = 0.4;
  p.num_lookups = 800;
  const auto base = run_averaged(p, Protocol::kBase, 3);
  const auto ert = run_averaged(p, Protocol::kErtAF, 3);
  EXPECT_LT(ert.avg_timeouts, base.avg_timeouts);
}

TEST(Experiment, RunAveragedAveragesScalars) {
  SimParams p = small_params();
  p.num_lookups = 200;
  const auto one = run_experiment(p, Protocol::kBase);
  SimParams p2 = p;
  p2.seed = p.seed + 1;
  const auto two = run_experiment(p2, Protocol::kBase);
  const auto avg = run_averaged(p, Protocol::kBase, 2);
  EXPECT_NEAR(avg.p99_share, (one.p99_share + two.p99_share) / 2, 1e-9);
  EXPECT_NEAR(avg.lookup_time.mean,
              (one.lookup_time.mean + two.lookup_time.mean) / 2, 1e-9);
}

TEST(Experiment, RunAveragedBitIdenticalAcrossThreadCounts) {
  // The seed fan-out reduces sequentially in seed order after all runs
  // finish, so the thread count must not change a single bit of the
  // aggregate (even oversubscribed on one core).
  SimParams p = small_params();
  p.num_lookups = 200;
  const auto one =
      run_averaged(p, Protocol::kErtAF, 4, SubstrateKind::kCycloid, 1);
  const auto four =
      run_averaged(p, Protocol::kErtAF, 4, SubstrateKind::kCycloid, 4);
  EXPECT_EQ(one.p99_max_congestion, four.p99_max_congestion);
  EXPECT_EQ(one.mean_max_congestion, four.mean_max_congestion);
  EXPECT_EQ(one.p99_share, four.p99_share);
  EXPECT_EQ(one.heavy_encounters, four.heavy_encounters);
  EXPECT_EQ(one.avg_path_length, four.avg_path_length);
  EXPECT_EQ(one.lookup_time.mean, four.lookup_time.mean);
  EXPECT_EQ(one.lookup_time.p01, four.lookup_time.p01);
  EXPECT_EQ(one.lookup_time.p99, four.lookup_time.p99);
  EXPECT_EQ(one.avg_timeouts, four.avg_timeouts);
  EXPECT_EQ(one.max_indegree.mean, four.max_indegree.mean);
  EXPECT_EQ(one.max_outdegree.p99, four.max_outdegree.p99);
  EXPECT_EQ(one.completed_lookups, four.completed_lookups);
  EXPECT_EQ(one.dropped_lookups, four.dropped_lookups);
  EXPECT_EQ(one.sim_duration, four.sim_duration);
  EXPECT_EQ(one.final_nodes, four.final_nodes);
}

TEST(Experiment, RunAveragedRoundsCountersOnce) {
  // Counters accumulate in double and round at the end: three seeds of
  // 200 completed lookups each must average to exactly 200, not the
  // 66*3 = 198 that per-seed integer division produced.
  SimParams p = small_params();
  p.num_lookups = 200;
  const auto avg = run_averaged(p, Protocol::kBase, 3);
  EXPECT_EQ(avg.completed_lookups, 200u);
  double heavy = 0.0;
  for (int s = 0; s < 3; ++s) {
    SimParams ps = p;
    ps.seed = p.seed + static_cast<std::uint64_t>(s);
    heavy += static_cast<double>(
        run_experiment(ps, Protocol::kBase).heavy_encounters);
  }
  EXPECT_EQ(avg.heavy_encounters,
            static_cast<std::size_t>(std::llround(heavy / 3.0)));
}

TEST(Experiment, RunSweepMatchesRunAveragedPerJob) {
  SimParams p = small_params();
  p.num_lookups = 200;
  std::vector<SweepJob> jobs(2);
  jobs[0].params = p;
  jobs[0].protocol = Protocol::kBase;
  jobs[0].seeds = 2;
  jobs[1].params = p;
  jobs[1].protocol = Protocol::kErtAF;
  jobs[1].seeds = 2;
  const auto sweep = run_sweep(jobs);
  ASSERT_EQ(sweep.size(), 2u);
  const auto base = run_averaged(p, Protocol::kBase, 2);
  const auto ert = run_averaged(p, Protocol::kErtAF, 2);
  EXPECT_EQ(sweep[0].p99_share, base.p99_share);
  EXPECT_EQ(sweep[0].heavy_encounters, base.heavy_encounters);
  EXPECT_EQ(sweep[1].p99_share, ert.p99_share);
  EXPECT_EQ(sweep[1].lookup_time.mean, ert.lookup_time.mean);
}

TEST(Experiment, ProbeCostChargedForForwarding) {
  SimParams p = small_params();
  p.probe_cost = 0.05;
  const auto with = run_experiment(p, Protocol::kErtAF);
  p.probe_cost = 0.0;
  const auto without = run_experiment(p, Protocol::kErtAF);
  EXPECT_GT(with.lookup_time.mean, without.lookup_time.mean);
}

TEST(Experiment, ZipfWorkloadRuns) {
  SimParams p = small_params();
  p.zipf_catalog = 50;
  p.zipf_exponent = 1.0;
  const auto r = run_experiment(p, Protocol::kErtAF);
  EXPECT_EQ(r.completed_lookups, 400u);
  // Skewed keys concentrate load: share skew must exceed uniform's.
  SimParams u = small_params();
  const auto uni = run_experiment(u, Protocol::kErtAF);
  EXPECT_GT(r.p99_share, uni.p99_share);
}

TEST(Experiment, ZipfDriftReshufflesHotSet) {
  SimParams p = small_params();
  p.num_lookups = 600;
  p.zipf_catalog = 50;
  p.zipf_exponent = 1.2;
  p.zipf_drift_period = 5.0;
  const auto r = run_experiment(p, Protocol::kErtA);
  EXPECT_EQ(r.completed_lookups, 600u);
}

TEST(Experiment, TimelineTracing) {
  SimParams p = small_params();
  p.trace_timeline = true;
  const auto r = run_experiment(p, Protocol::kErtA);
  ASSERT_FALSE(r.timeline.empty());
  // One sample per adaptation period, covering the issue window (400
  // lookups at 16/s ~ 25 s) plus drain.
  EXPECT_GT(r.timeline.size(), 10u);
  double prev = 0.0;
  for (const auto& s : r.timeline) {
    EXPECT_GT(s.time, prev);
    prev = s.time;
    // Note p99 can sit below the mean when fewer than 1% of nodes carry
    // all the queueing (nearest-rank percentile vs heavy-tailed mean).
    EXPECT_GE(s.p99_congestion, 0.0);
    EXPECT_GE(s.mean_congestion, 0.0);
    EXPECT_GT(s.mean_indegree, 0.0);
  }
  // Tracing off -> no samples.
  p.trace_timeline = false;
  EXPECT_TRUE(run_experiment(p, Protocol::kErtA).timeline.empty());
}

TEST(Experiment, TimelineSamplingDoesNotExtendSimDuration) {
  // The timeline chain's pending sample is cancelled when the workload
  // settles (like the auditor's pending sweep), so turning the sampler on
  // must not push the simulated clock past the last workload event. Base
  // has no other periodic chain, so any extension would show here.
  for (const auto proto : {Protocol::kBase, Protocol::kVS, Protocol::kErtAF}) {
    SimParams p = small_params();
    p.trace_timeline = false;
    const auto off = run_experiment(p, proto);
    p.trace_timeline = true;
    const auto on = run_experiment(p, proto);
    EXPECT_EQ(off.sim_duration, on.sim_duration) << to_string(proto);
    EXPECT_EQ(off.lookup_time.mean, on.lookup_time.mean) << to_string(proto);
    EXPECT_EQ(off.completed_lookups, on.completed_lookups);
    EXPECT_FALSE(on.timeline.empty());
  }
}

TEST(Experiment, StructuredTracerOnOffBitIdentical) {
  // ExperimentOptions::trace observes only: every scalar in the result —
  // sim_duration included — must match the tracer-off run exactly, on a
  // churned and faulted run where any extra event or Rng draw would skew.
  SimParams p = small_params();
  p.num_lookups = 200;
  p.churn_interarrival = 1.0;
  ExperimentOptions off;
  off.faults.drop_prob = 0.01;
  ExperimentOptions on = off;
  on.trace.enabled = true;
  const auto a = run_experiment(p, Protocol::kErtAF,
                                SubstrateKind::kCycloid, off);
  const auto b = run_experiment(p, Protocol::kErtAF,
                                SubstrateKind::kCycloid, on);
  EXPECT_EQ(a.p99_max_congestion, b.p99_max_congestion);
  EXPECT_EQ(a.p99_share, b.p99_share);
  EXPECT_EQ(a.heavy_encounters, b.heavy_encounters);
  EXPECT_EQ(a.avg_path_length, b.avg_path_length);
  EXPECT_EQ(a.lookup_time.mean, b.lookup_time.mean);
  EXPECT_EQ(a.avg_timeouts, b.avg_timeouts);
  EXPECT_EQ(a.completed_lookups, b.completed_lookups);
  EXPECT_EQ(a.dropped_lookups, b.dropped_lookups);
  EXPECT_EQ(a.faults.timed_out, b.faults.timed_out);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.final_nodes, b.final_nodes);
  EXPECT_EQ(a.trace_emitted, 0u);
  EXPECT_GT(b.trace_emitted, 0u);
}

TEST(Experiment, QueueCapShedsOverloadAndSettlesEverything) {
  // A tight ingress cap under a burst: arrivals beyond the cap are shed
  // as overload drops, every issued lookup still settles, and the drop
  // split stays clean (no fault-layer losses on a fault-free run).
  SimParams p = small_params();
  p.lookup_rate = 4000.0;  // the whole workload injects in ~0.1 s
  p.queue_cap = 2;
  const auto r = run_experiment(p, Protocol::kErtAF);
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
  EXPECT_GT(r.dropped_lookups, 0u);
  EXPECT_EQ(r.dropped_overload, r.dropped_lookups);
  EXPECT_EQ(r.dropped_fault, 0u);
}

TEST(Experiment, QueueCapLooseEnoughIsBitIdenticalToUnbounded) {
  // The cap check consumes no randomness and fires only when a queue
  // actually reaches the bound, so a cap no queue ever hits must leave
  // every result scalar untouched — the guarantee that lets every
  // calibrated (uncapped) figure config stay bit-identical.
  SimParams p = small_params();
  p.churn_interarrival = 0.5;
  const auto unbounded = run_experiment(p, Protocol::kErtAF);
  p.queue_cap = std::size_t{1} << 30;
  const auto capped = run_experiment(p, Protocol::kErtAF);
  EXPECT_EQ(unbounded.completed_lookups, capped.completed_lookups);
  EXPECT_EQ(unbounded.dropped_lookups, capped.dropped_lookups);
  EXPECT_EQ(unbounded.heavy_encounters, capped.heavy_encounters);
  EXPECT_EQ(unbounded.lookup_time.mean, capped.lookup_time.mean);
  EXPECT_EQ(unbounded.p99_max_congestion, capped.p99_max_congestion);
  EXPECT_EQ(unbounded.p99_share, capped.p99_share);
  EXPECT_EQ(unbounded.sim_duration, capped.sim_duration);
}

TEST(Experiment, AdaptationGrowsIndegreesOverTime) {
  SimParams p = small_params();
  p.trace_timeline = true;
  p.num_lookups = 800;
  const auto r = run_experiment(p, Protocol::kErtA);
  ASSERT_GT(r.timeline.size(), 4u);
  // Underloaded nodes keep inviting load: mean indegree rises from the
  // initial beta*d_inf assignment toward the structural limit.
  EXPECT_GT(r.timeline.back().mean_indegree,
            r.timeline.front().mean_indegree);
}

TEST(Experiment, PollSizeOneDegradesForwarding) {
  SimParams p = small_params();
  p.num_lookups = 800;
  p.poll_size = 1;
  const auto b1 = run_averaged(p, Protocol::kErtAF, 3);
  p.poll_size = 2;
  const auto b2 = run_averaged(p, Protocol::kErtAF, 3);
  // b=1 cannot react to load at all; b=2 must not be worse on heavy hits.
  EXPECT_LE(b2.heavy_encounters, b1.heavy_encounters + 5);
}

}  // namespace
}  // namespace ert::harness
