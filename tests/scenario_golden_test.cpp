// Golden scenario traces: two checked-in scenarios (a flash crowd over a
// rotating hot set, and churn waves under a partition/rejoin cycle) run on
// three substrates and must reproduce their event streams byte for byte —
// the scenario layer's Rng consumption, phase scheduling, and key
// overrides are all pinned. Also pins the zero-intensity contract (an
// all-inert scenario is bit-identical to a plain run in every metric,
// sim_duration included) and thread-count invariance of scenario runs.
//
// To regenerate after an intentional behavior change:
//   ERT_REGEN_GOLDEN=1 ./scenario_golden_test
// then review the diff of tests/golden/scenario_*.jsonl.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "harness/experiment.h"
#include "scenario/parser.h"
#include "trace/jsonl.h"
#include "trace/trace.h"

namespace ert::harness {
namespace {

using GoldenCase = std::tuple<const char*, SubstrateKind>;

SimParams golden_params() {
  SimParams p;
  p.num_nodes = 40;
  p.dimension = fit_dimension(40);
  p.num_lookups = 24;
  p.lookup_rate = 8.0;
  p.seed = 11;
  return p;
}

scenario::Scenario load_scenario(const std::string& name) {
  const std::string path =
      std::string(ERT_SCENARIO_DIR) + "/" + name + ".scn";
  const auto parsed = scenario::parse_file(path);
  EXPECT_TRUE(parsed.ok) << parsed.message(path);
  return parsed.scenario;
}

std::string substrate_slug(SubstrateKind k) {
  std::string s = to_string(k);
  for (auto& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

ExperimentOptions scenario_options(const std::string& name) {
  ExperimentOptions o;
  o.scenario = load_scenario(name);
  o.trace.enabled = true;
  // Query spans, hops, adaptation, and churn: the streams a scenario can
  // legally perturb. Membership events make partition waves visible.
  o.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                       static_cast<std::uint32_t>(trace::Category::kHop) |
                       static_cast<std::uint32_t>(trace::Category::kAdapt) |
                       static_cast<std::uint32_t>(trace::Category::kChurn);
  return o;
}

class GoldenScenarioTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenScenarioTest, MatchesCheckedInTrace) {
  const auto [name, kind] = GetParam();
  const auto opts = scenario_options(name);
  ASSERT_FALSE(opts.scenario.inert()) << "scenario file lost its phases";
  const auto r =
      run_experiment(golden_params(), Protocol::kErtAF, kind, opts);
  ASSERT_EQ(r.trace_dropped, 0u)
      << "golden run must fit the ring; raise o.trace.capacity";
  ASSERT_GT(r.trace_records.size(), 0u);
  const std::string got = trace::to_jsonl(r.trace_records);

  const std::string path = std::string(ERT_GOLDEN_DIR) + "/scenario_" +
                           std::string(name) + "_" + substrate_slug(kind) +
                           ".jsonl";
  if (std::getenv("ERT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with ERT_REGEN_GOLDEN=1 to create it)";
  std::ostringstream want;
  want << in.rdbuf();
  const std::string want_str = want.str();
  EXPECT_EQ(got.size(), want_str.size());
  if (got != want_str) {
    std::istringstream ga(got), wa(want_str);
    std::string gl, wl;
    std::size_t lineno = 0;
    while (true) {
      const bool gok = static_cast<bool>(std::getline(ga, gl));
      const bool wok = static_cast<bool>(std::getline(wa, wl));
      ++lineno;
      if (!gok && !wok) break;
      ASSERT_EQ(gok, wok) << "trace length differs at line " << lineno;
      ASSERT_EQ(gl, wl) << "first divergence at line " << lineno;
    }
  }
}

TEST_P(GoldenScenarioTest, ScenarioRunIsThreadCountInvariant) {
  const auto [name, kind] = GetParam();
  const auto opts = scenario_options(name);
  const auto one =
      run_averaged(golden_params(), Protocol::kErtAF, 2, kind, 1, opts);
  const auto four =
      run_averaged(golden_params(), Protocol::kErtAF, 2, kind, 4, opts);
  EXPECT_EQ(trace::to_jsonl(one.trace_records),
            trace::to_jsonl(four.trace_records));
  EXPECT_EQ(one.lookup_time.mean, four.lookup_time.mean);
  EXPECT_EQ(one.lookup_time.p99, four.lookup_time.p99);
  EXPECT_EQ(one.sim_duration, four.sim_duration);
  EXPECT_EQ(one.adapt_sheds, four.adapt_sheds);
  EXPECT_EQ(one.adapt_grows, four.adapt_grows);
  EXPECT_EQ(one.final_nodes, four.final_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    ScenarioMatrix, GoldenScenarioTest,
    ::testing::Values(
        std::make_tuple("flash", SubstrateKind::kCycloid),
        std::make_tuple("flash", SubstrateKind::kChord),
        std::make_tuple("flash", SubstrateKind::kKademlia),
        std::make_tuple("waves", SubstrateKind::kCycloid),
        std::make_tuple("waves", SubstrateKind::kChord),
        std::make_tuple("waves", SubstrateKind::kKademlia)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             substrate_slug(std::get<1>(info.param));
    });

// --- the zero-intensity contract, end to end ---------------------------------

// A scenario whose phases all sit at their neutral values must leave the
// run bit-identical to a plain run: same metrics, same sim_duration, same
// trace bytes. This is what makes every scenario knob safe to wire through
// the hot path — the plain runs (and all existing goldens) cannot drift.
TEST(ZeroIntensityScenario, BitIdenticalToPlainRunOnEverySubstrate) {
  scenario::Scenario zero;
  zero.name = "zero";
  scenario::Phase flash;
  flash.type = scenario::PhaseType::kFlash;
  flash.start = 0.0;
  flash.end = 1e9;  // active the whole run, multiplier 1.0
  scenario::Phase hot;
  hot.type = scenario::PhaseType::kHotspot;
  hot.start = 0.0;
  hot.end = 1e9;  // catalog 0
  scenario::Phase churn;
  churn.type = scenario::PhaseType::kChurn;
  churn.start = 0.0;
  churn.end = 1e9;  // interarrival 0
  zero.phases = {flash, hot, churn};
  ASSERT_TRUE(zero.inert());

  for (SubstrateKind kind :
       {SubstrateKind::kCycloid, SubstrateKind::kChord,
        SubstrateKind::kKademlia}) {
    ExperimentOptions plain_opts;
    plain_opts.trace.enabled = true;
    plain_opts.audit.enabled = true;
    ExperimentOptions zero_opts = plain_opts;
    zero_opts.scenario = zero;

    const auto plain =
        run_experiment(golden_params(), Protocol::kErtAF, kind, plain_opts);
    const auto z =
        run_experiment(golden_params(), Protocol::kErtAF, kind, zero_opts);

    const char* where = to_string(kind);
    EXPECT_EQ(z.sim_duration, plain.sim_duration) << where;
    EXPECT_EQ(z.completed_lookups, plain.completed_lookups) << where;
    EXPECT_EQ(z.dropped_lookups, plain.dropped_lookups) << where;
    EXPECT_EQ(z.dropped_overload, plain.dropped_overload) << where;
    EXPECT_EQ(z.dropped_fault, plain.dropped_fault) << where;
    EXPECT_EQ(z.lookup_time.mean, plain.lookup_time.mean) << where;
    EXPECT_EQ(z.lookup_time.p01, plain.lookup_time.p01) << where;
    EXPECT_EQ(z.lookup_time.p99, plain.lookup_time.p99) << where;
    EXPECT_EQ(z.p99_max_congestion, plain.p99_max_congestion) << where;
    EXPECT_EQ(z.mean_max_congestion, plain.mean_max_congestion) << where;
    EXPECT_EQ(z.p99_share, plain.p99_share) << where;
    EXPECT_EQ(z.avg_path_length, plain.avg_path_length) << where;
    EXPECT_EQ(z.heavy_encounters, plain.heavy_encounters) << where;
    EXPECT_EQ(z.adapt_sheds, plain.adapt_sheds) << where;
    EXPECT_EQ(z.adapt_grows, plain.adapt_grows) << where;
    EXPECT_EQ(z.final_nodes, plain.final_nodes) << where;
    EXPECT_EQ(z.audit_sweeps, plain.audit_sweeps) << where;
    EXPECT_EQ(z.audit_waived_sweeps, plain.audit_waived_sweeps) << where;
    EXPECT_EQ(z.audit_violations, plain.audit_violations) << where;
    EXPECT_EQ(trace::to_jsonl(z.trace_records),
              trace::to_jsonl(plain.trace_records))
        << where;
  }
}

// The same contract through the threaded averaged path, for any ERT_THREADS.
TEST(ZeroIntensityScenario, AveragedPathStaysBitIdentical) {
  scenario::Scenario zero;
  scenario::Phase flash;
  flash.type = scenario::PhaseType::kFlash;
  flash.start = 0.0;
  flash.end = 1e9;
  zero.phases = {flash};
  ASSERT_TRUE(zero.inert());

  ExperimentOptions plain_opts;
  ExperimentOptions zero_opts;
  zero_opts.scenario = zero;
  for (int threads : {1, 4}) {
    const auto plain = run_averaged(golden_params(), Protocol::kErtAF, 3,
                                    SubstrateKind::kCycloid, threads,
                                    plain_opts);
    const auto z = run_averaged(golden_params(), Protocol::kErtAF, 3,
                                SubstrateKind::kCycloid, threads, zero_opts);
    EXPECT_EQ(z.sim_duration, plain.sim_duration) << threads << " threads";
    EXPECT_EQ(z.lookup_time.mean, plain.lookup_time.mean)
        << threads << " threads";
    EXPECT_EQ(z.completed_lookups, plain.completed_lookups)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace ert::harness
