#include "ert/adaptation.h"

#include <gtest/gtest.h>

#include "ert/load_tracker.h"

namespace ert::core {
namespace {

TEST(Adaptation, NoActionInsideBand) {
  // gamma_l = 2: the acceptable band is [c/2, 2c].
  EXPECT_EQ(decide_adaptation(10, 10, 2.0, 0.5).action, AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(19, 10, 2.0, 0.5).action, AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(6, 10, 2.0, 0.5).action, AdaptAction::kNone);
}

TEST(Adaptation, ShedWhenOverloaded) {
  const auto d = decide_adaptation(30, 10, 2.0, 0.5);
  EXPECT_EQ(d.action, AdaptAction::kShed);
  EXPECT_EQ(d.delta, 10);  // mu * (l - c) = 0.5 * 20
}

TEST(Adaptation, GrowWhenUnderloaded) {
  const auto d = decide_adaptation(2, 10, 2.0, 0.5);
  EXPECT_EQ(d.action, AdaptAction::kGrow);
  EXPECT_EQ(d.delta, 4);  // mu * (c - l) = 0.5 * 8
}

TEST(Adaptation, DeltaAtLeastOne) {
  const auto d = decide_adaptation(10.4, 10, 1.0, 0.5);
  EXPECT_EQ(d.action, AdaptAction::kShed);
  EXPECT_EQ(d.delta, 1);
  const auto g = decide_adaptation(9.8, 10, 1.0, 0.5);
  EXPECT_EQ(g.action, AdaptAction::kGrow);
  EXPECT_EQ(g.delta, 1);
}

TEST(Adaptation, GammaOneBoundary) {
  // gamma_l = 1 (Table 2 default): exactly-at-capacity takes no action.
  EXPECT_EQ(decide_adaptation(10, 10, 1.0, 0.5).action, AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(11, 10, 1.0, 0.5).action, AdaptAction::kShed);
  EXPECT_EQ(decide_adaptation(9, 10, 1.0, 0.5).action, AdaptAction::kGrow);
}

TEST(Adaptation, ConvergesToBand) {
  // Iterating load ~ nu * d with adaptation must settle into the band,
  // mirroring the Theorem 3.2 argument.
  const double nu = 0.5, c = 20, gamma = 1.5, mu = 0.5;
  double d = 100;  // start far too high
  for (int i = 0; i < 100; ++i) {
    const double load = nu * d;
    const auto dec = decide_adaptation(load, c, gamma, mu);
    if (dec.action == AdaptAction::kShed) d -= dec.delta;
    if (dec.action == AdaptAction::kGrow) d += dec.delta;
    ASSERT_GT(d, 0);
  }
  const double g = nu * d / c;
  EXPECT_LE(g, gamma + 0.1);
  EXPECT_GE(g, 1.0 / gamma - 0.1);
}

TEST(LoadTracker, QueueAccounting) {
  LoadTracker t;
  t.on_enqueue();
  t.on_enqueue();
  t.on_enqueue();
  EXPECT_EQ(t.queue_length(), 3u);
  t.on_dequeue();
  EXPECT_EQ(t.queue_length(), 2u);
  EXPECT_EQ(t.cumulative_handled(), 3u);
  EXPECT_EQ(t.all_time_peak(), 3u);
}

TEST(AdaptationThresholds, WindowMatchesDecisionBoundaries) {
  // The exposed window [c/gamma, gamma*c] must be exactly where
  // decide_adaptation flips: the auditor states Theorem 3.2 with these.
  const auto th = adaptation_thresholds(10.0, 2.0);
  EXPECT_DOUBLE_EQ(th.shed_above, 20.0);
  EXPECT_DOUBLE_EQ(th.grow_below, 5.0);
  EXPECT_EQ(decide_adaptation(th.shed_above, 10.0, 2.0, 0.5).action,
            AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(th.shed_above + 0.5, 10.0, 2.0, 0.5).action,
            AdaptAction::kShed);
  EXPECT_EQ(decide_adaptation(th.grow_below, 10.0, 2.0, 0.5).action,
            AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(th.grow_below - 0.5, 10.0, 2.0, 0.5).action,
            AdaptAction::kGrow);
}

TEST(AdaptationThresholds, GammaOneCollapsesToCapacity) {
  // Table 2's default gamma_l = 1: the window degenerates to the single
  // point l = c.
  const auto th = adaptation_thresholds(7.0, 1.0);
  EXPECT_DOUBLE_EQ(th.shed_above, 7.0);
  EXPECT_DOUBLE_EQ(th.grow_below, 7.0);
  EXPECT_LE(th.grow_below, th.shed_above);
}

TEST(AdaptationThresholds, WindowScalesLinearlyWithCapacity) {
  const auto a = adaptation_thresholds(4.0, 1.5);
  const auto b = adaptation_thresholds(8.0, 1.5);
  EXPECT_DOUBLE_EQ(b.shed_above, 2.0 * a.shed_above);
  EXPECT_DOUBLE_EQ(b.grow_below, 2.0 * a.grow_below);
  // gamma >= 1 keeps the window nonempty for any capacity.
  EXPECT_LT(a.grow_below, a.shed_above);
}

TEST(LoadTracker, PeriodPeakResets) {
  LoadTracker t;
  t.on_enqueue();
  t.on_enqueue();
  t.on_dequeue();
  t.on_dequeue();
  EXPECT_EQ(t.end_period(), 2u);
  // New period starts from the current queue length (0 here).
  t.on_enqueue();
  EXPECT_EQ(t.end_period(), 1u);
  EXPECT_EQ(t.all_time_peak(), 2u);  // all-time survives periods
}

TEST(LoadTracker, PeriodPeakSeedsFromCarryover) {
  LoadTracker t;
  for (int i = 0; i < 5; ++i) t.on_enqueue();
  t.end_period();
  // Queue still holds 5; the next period's peak starts there.
  EXPECT_EQ(t.end_period(), 5u);
}

TEST(LoadTracker, Congestion) {
  LoadTracker t;
  for (int i = 0; i < 6; ++i) t.on_enqueue();
  EXPECT_DOUBLE_EQ(t.congestion(4), 1.5);
  t.on_dequeue();
  EXPECT_DOUBLE_EQ(t.congestion(4), 1.25);
  EXPECT_DOUBLE_EQ(t.max_congestion(4), 1.5);
}

TEST(LoadTracker, DequeueOnEmptyIsSafe) {
  LoadTracker t;
  t.on_dequeue();
  EXPECT_EQ(t.queue_length(), 0u);
}

}  // namespace
}  // namespace ert::core
