#include "ert/adaptation.h"

#include <gtest/gtest.h>

#include "ert/load_tracker.h"

namespace ert::core {
namespace {

TEST(Adaptation, NoActionInsideBand) {
  // gamma_l = 2: the acceptable band is [c/2, 2c].
  EXPECT_EQ(decide_adaptation(10, 10, 2.0, 0.5).action, AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(19, 10, 2.0, 0.5).action, AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(6, 10, 2.0, 0.5).action, AdaptAction::kNone);
}

TEST(Adaptation, ShedWhenOverloaded) {
  const auto d = decide_adaptation(30, 10, 2.0, 0.5);
  EXPECT_EQ(d.action, AdaptAction::kShed);
  EXPECT_EQ(d.delta, 10);  // mu * (l - c) = 0.5 * 20
}

TEST(Adaptation, GrowWhenUnderloaded) {
  const auto d = decide_adaptation(2, 10, 2.0, 0.5);
  EXPECT_EQ(d.action, AdaptAction::kGrow);
  EXPECT_EQ(d.delta, 4);  // mu * (c - l) = 0.5 * 8
}

TEST(Adaptation, DeltaAtLeastOne) {
  const auto d = decide_adaptation(10.4, 10, 1.0, 0.5);
  EXPECT_EQ(d.action, AdaptAction::kShed);
  EXPECT_EQ(d.delta, 1);
  const auto g = decide_adaptation(9.8, 10, 1.0, 0.5);
  EXPECT_EQ(g.action, AdaptAction::kGrow);
  EXPECT_EQ(g.delta, 1);
}

TEST(Adaptation, GammaOneBoundary) {
  // gamma_l = 1 (Table 2 default): exactly-at-capacity takes no action.
  EXPECT_EQ(decide_adaptation(10, 10, 1.0, 0.5).action, AdaptAction::kNone);
  EXPECT_EQ(decide_adaptation(11, 10, 1.0, 0.5).action, AdaptAction::kShed);
  EXPECT_EQ(decide_adaptation(9, 10, 1.0, 0.5).action, AdaptAction::kGrow);
}

TEST(Adaptation, ConvergesToBand) {
  // Iterating load ~ nu * d with adaptation must settle into the band,
  // mirroring the Theorem 3.2 argument.
  const double nu = 0.5, c = 20, gamma = 1.5, mu = 0.5;
  double d = 100;  // start far too high
  for (int i = 0; i < 100; ++i) {
    const double load = nu * d;
    const auto dec = decide_adaptation(load, c, gamma, mu);
    if (dec.action == AdaptAction::kShed) d -= dec.delta;
    if (dec.action == AdaptAction::kGrow) d += dec.delta;
    ASSERT_GT(d, 0);
  }
  const double g = nu * d / c;
  EXPECT_LE(g, gamma + 0.1);
  EXPECT_GE(g, 1.0 / gamma - 0.1);
}

TEST(LoadTracker, QueueAccounting) {
  LoadTracker t;
  t.on_enqueue();
  t.on_enqueue();
  t.on_enqueue();
  EXPECT_EQ(t.queue_length(), 3u);
  t.on_dequeue();
  EXPECT_EQ(t.queue_length(), 2u);
  EXPECT_EQ(t.cumulative_handled(), 3u);
  EXPECT_EQ(t.all_time_peak(), 3u);
}

TEST(LoadTracker, PeriodPeakResets) {
  LoadTracker t;
  t.on_enqueue();
  t.on_enqueue();
  t.on_dequeue();
  t.on_dequeue();
  EXPECT_EQ(t.end_period(), 2u);
  // New period starts from the current queue length (0 here).
  t.on_enqueue();
  EXPECT_EQ(t.end_period(), 1u);
  EXPECT_EQ(t.all_time_peak(), 2u);  // all-time survives periods
}

TEST(LoadTracker, PeriodPeakSeedsFromCarryover) {
  LoadTracker t;
  for (int i = 0; i < 5; ++i) t.on_enqueue();
  t.end_period();
  // Queue still holds 5; the next period's peak starts there.
  EXPECT_EQ(t.end_period(), 5u);
}

TEST(LoadTracker, Congestion) {
  LoadTracker t;
  for (int i = 0; i < 6; ++i) t.on_enqueue();
  EXPECT_DOUBLE_EQ(t.congestion(4), 1.5);
  t.on_dequeue();
  EXPECT_DOUBLE_EQ(t.congestion(4), 1.25);
  EXPECT_DOUBLE_EQ(t.max_congestion(4), 1.5);
}

TEST(LoadTracker, DequeueOnEmptyIsSafe) {
  LoadTracker t;
  t.on_dequeue();
  EXPECT_EQ(t.queue_length(), 0u);
}

}  // namespace
}  // namespace ert::core
