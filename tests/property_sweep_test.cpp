// Parameterized property sweeps over the protocol's parameter space:
// Algorithm 3's convergence band for every (gamma_l, mu) pair, forwarding
// distribution properties for every poll size, and the indegree/capacity
// proportionality of the initial assignment across alpha values.
#include <gtest/gtest.h>

#include <map>

#include "cycloid/overlay.h"
#include "ert/adaptation.h"
#include "ert/capacity.h"
#include "ert/forwarding.h"

namespace ert {
namespace {

// --- Algorithm 3 convergence across the (gamma_l, mu) grid -------------------

using AdaptParam = std::tuple<double, double>;  // gamma_l, mu

class AdaptationSweep : public ::testing::TestWithParam<AdaptParam> {};

TEST_P(AdaptationSweep, LoadConvergesIntoBand) {
  const auto [gamma, mu] = GetParam();
  // Deterministic feedback model from the Theorem 3.2 proof: load = nu * d,
  // adaptation step d <- d -+ mu * |nu*d - c|. The loop's gain is mu * nu:
  // it contracts toward the band iff mu * nu < 2 (why Table 2 picks
  // mu = 1/2: stable for any per-inlink rate nu < 4). At mu * nu >= 2 the
  // iteration oscillates; the clamps keep it bounded but not convergent.
  for (double nu : {0.1, 0.5, 1.0, 2.5}) {
    for (double c : {1.0, 8.0, 40.0}) {
      double d = 200.0;  // start far off
      for (int i = 0; i < 400; ++i) {
        const auto dec = core::decide_adaptation(nu * d, c, gamma, mu);
        if (dec.action == core::AdaptAction::kShed) {
          // Mirror shed_indegree's clamp: a node never drops below 1 inlink.
          d -= std::min<double>(dec.delta, d - 1.0);
        }
        if (dec.action == core::AdaptAction::kGrow) d += dec.delta;
        ASSERT_GE(d, 1.0) << "indegree collapsed";
      }
      const double g = nu * d / c;
      if (mu * nu < 1.9) {
        // Stable regime: lands inside the band up to the one-link
        // quantization.
        EXPECT_LE(g, gamma + nu / c + 0.6) << "nu=" << nu << " c=" << c;
        EXPECT_GE(g, 1.0 / gamma - nu / c - 0.6) << "nu=" << nu << " c=" << c;
      } else {
        // Unstable gain: bounded oscillation (the overshoot is at most one
        // full correction of the whole band).
        EXPECT_LE(g, (gamma + nu / c + 0.6) * (1.0 + mu * nu))
            << "nu=" << nu << " c=" << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdaptationSweep,
    ::testing::Combine(::testing::Values(1.0, 1.5, 2.0, 3.0),
                       ::testing::Values(0.25, 0.5, 1.0)));

// --- forwarding distribution properties across poll sizes --------------------

class PollSweep : public ::testing::TestWithParam<int> {};

TEST_P(PollSweep, AllLightCandidatesGetTraffic) {
  // Under uniform light load every candidate must receive a nontrivial
  // share (the randomized policy must not starve anyone).
  const int b = GetParam();
  Rng rng(100 + b);
  dht::CandPool pool;
  dht::RoutingEntry entry(dht::EntryKind::kCyclic);
  std::vector<dht::NodeIndex> cands;
  for (dht::NodeIndex n = 0; n < 6; ++n) {
    entry.add(pool, n);
    cands.push_back(n);
  }
  core::TopoForwardOptions opts;
  opts.poll_size = b;
  opts.use_memory = false;
  const auto probe = [](dht::NodeIndex) {
    return core::ProbeResult{0.1, false, 5, 0.5, 1.0};
  };
  std::map<dht::NodeIndex, int> hits;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t)
    ++hits[core::forward_topology_aware(entry, cands, {}, opts, probe, rng)
               .next];
  for (dht::NodeIndex n = 0; n < 6; ++n)
    EXPECT_GT(hits[n], trials / 30) << "candidate " << n << " starved (b=" << b
                                    << ")";
}

TEST_P(PollSweep, HeavyCandidatesAvoidedWhenLightExists) {
  const int b = GetParam();
  Rng rng(200 + b);
  dht::CandPool pool;
  dht::RoutingEntry entry(dht::EntryKind::kCyclic);
  std::vector<dht::NodeIndex> cands;
  for (dht::NodeIndex n = 0; n < 6; ++n) {
    entry.add(pool, n);
    cands.push_back(n);
  }
  core::TopoForwardOptions opts;
  opts.poll_size = b;
  opts.use_memory = false;
  // Node 0 is massively overloaded; the rest are light.
  const auto probe = [](dht::NodeIndex n) {
    core::ProbeResult r{0.1, false, 5, 0.5, 1.0};
    if (n == 0) {
      r.load = 50.0;
      r.heavy = true;
    }
    return r;
  };
  int to_heavy = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    if (core::forward_topology_aware(entry, cands, {}, opts, probe, rng)
            .next == 0)
      ++to_heavy;
  }
  // With b >= 2, the heavy node is only chosen when BOTH polls land on it —
  // impossible here (choices are distinct), so it gets (almost) nothing.
  EXPECT_LT(to_heavy, trials / 50);
}

INSTANTIATE_TEST_SUITE_P(PollSizes, PollSweep, ::testing::Values(2, 3, 4));

// --- initial assignment proportionality across alpha --------------------------

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, IndegreeTracksCapacity) {
  const double alpha = GetParam();
  cycloid::OverlayOptions opts;
  opts.dimension = 7;
  opts.policy = cycloid::NeighborPolicy::kSpareIndegree;
  opts.enforce_indegree_bounds = true;
  cycloid::Overlay o(opts);
  Rng rng(300);
  std::vector<double> caps(cycloid::IdSpace(7).size());
  for (std::uint64_t lv = 0; lv < caps.size(); ++lv) {
    caps[lv] = lv % 2 == 0 ? 0.5 : 3.0;
    o.add_node(o.space().from_linear(lv), caps[lv],
               core::max_indegree(alpha, caps[lv]), 0.8);
  }
  for (dht::NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  for (dht::NodeIndex i = 0; i < o.num_slots(); ++i) {
    const auto& b = o.node(i).budget;
    if (b.initial_target() > b.indegree())
      o.expand_indegree(i, b.initial_target() - b.indegree(), 128);
  }
  double lo = 0, hi = 0;
  std::size_t nl = 0, nh = 0;
  for (dht::NodeIndex i = 0; i < o.num_slots(); ++i) {
    if (caps[i] < 1) {
      lo += static_cast<double>(o.node(i).inlinks.size());
      ++nl;
    } else {
      hi += static_cast<double>(o.node(i).inlinks.size());
      ++nh;
    }
  }
  // Capacity ratio is 6x; the indegree ratio must clearly follow.
  EXPECT_GT(hi / static_cast<double>(nh), 2.0 * lo / static_cast<double>(nl))
      << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(6.0, 10.0, 14.0));

}  // namespace
}  // namespace ert
