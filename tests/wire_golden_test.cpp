// Golden wire traces: two scenario runs (the flash crowd on Cycloid and
// the churn waves on Chord) with --bytes capture on must reproduce their
// serialized message streams byte for byte — every frame the send path
// emits, in order, as "<type> <hex>" lines. This pins the wire encoding,
// the send-path accounting points, and their ordering all at once: a
// change to any of them shows up as a reviewable golden diff.
//
// To regenerate after an intentional format or accounting change:
//   ERT_REGEN_GOLDEN=1 ./wire_golden_test
// then review the diff of tests/golden/wire_*.txt.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "harness/experiment.h"
#include "scenario/parser.h"
#include "wire/wire.h"

namespace ert::harness {
namespace {

using GoldenCase = std::tuple<const char*, SubstrateKind>;

SimParams golden_params() {
  SimParams p;
  p.num_nodes = 40;
  p.dimension = fit_dimension(40);
  p.num_lookups = 24;
  p.lookup_rate = 8.0;
  p.seed = 11;
  return p;
}

scenario::Scenario load_scenario(const std::string& name) {
  const std::string path =
      std::string(ERT_SCENARIO_DIR) + "/" + name + ".scn";
  const auto parsed = scenario::parse_file(path);
  EXPECT_TRUE(parsed.ok) << parsed.message(path);
  return parsed.scenario;
}

std::string substrate_slug(SubstrateKind k) {
  std::string s = to_string(k);
  for (auto& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

ExperimentOptions wire_options(const std::string& name) {
  ExperimentOptions o;
  o.scenario = load_scenario(name);
  o.wire.bytes = true;
  o.wire.capture = true;
  return o;
}

class GoldenWireTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenWireTest, MatchesCheckedInCapture) {
  const auto [name, kind] = GetParam();
  const auto opts = wire_options(name);
  ASSERT_FALSE(opts.scenario.inert()) << "scenario file lost its phases";
  const auto r =
      run_experiment(golden_params(), Protocol::kErtAF, kind, opts);
  ASSERT_FALSE(r.wire_capture.empty());
  const std::string& got = r.wire_capture;

  const std::string path = std::string(ERT_GOLDEN_DIR) + "/wire_" +
                           std::string(name) + "_" + substrate_slug(kind) +
                           ".txt";
  if (std::getenv("ERT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with ERT_REGEN_GOLDEN=1 to create it)";
  std::ostringstream want;
  want << in.rdbuf();
  const std::string want_str = want.str();
  EXPECT_EQ(got.size(), want_str.size());
  if (got != want_str) {
    std::istringstream ga(got), wa(want_str);
    std::string gl, wl;
    std::size_t lineno = 0;
    while (true) {
      const bool gok = static_cast<bool>(std::getline(ga, gl));
      const bool wok = static_cast<bool>(std::getline(wa, wl));
      ++lineno;
      if (!gok && !wok) break;
      ASSERT_EQ(gok, wok) << "capture length differs at line " << lineno;
      ASSERT_EQ(gl, wl) << "first divergence at line " << lineno;
    }
  }
}

TEST_P(GoldenWireTest, CaptureAgreesWithByteTotals) {
  // The capture stream is the totals, spelled out: decoding every line and
  // tallying must land exactly on the ByteTotals counters, so the golden
  // file also pins the accounting.
  const auto [name, kind] = GetParam();
  const auto r = run_experiment(golden_params(), Protocol::kErtAF, kind,
                                wire_options(name));
  std::uint64_t msgs = 0, bytes = 0;
  std::istringstream lines(r.wire_capture);
  std::string type, hex;
  while (lines >> type >> hex) {
    ++msgs;
    bytes += hex.size() / 2;
  }
  EXPECT_EQ(msgs, r.bytes.total_msgs());
  EXPECT_EQ(bytes, r.bytes.total_bytes());
}

TEST_P(GoldenWireTest, CaptureIsThreadCountInvariant) {
  // Seed fan-out threads (ERT_THREADS analog) must not reorder the
  // per-seed capture streams.
  const auto [name, kind] = GetParam();
  const auto opts = wire_options(name);
  const auto one =
      run_averaged(golden_params(), Protocol::kErtAF, 2, kind, 1, opts);
  const auto four =
      run_averaged(golden_params(), Protocol::kErtAF, 2, kind, 4, opts);
  ASSERT_FALSE(one.wire_capture.empty());
  EXPECT_EQ(one.wire_capture, four.wire_capture);
  EXPECT_EQ(one.bytes.total_bytes(), four.bytes.total_bytes());
}

TEST_P(GoldenWireTest, CaptureIsSimThreadsInvariant) {
  // --sim-threads 1 vs 4: scenario runs take the serial engine either way
  // (the PDES shards don't drive scenarios), so the streams must match
  // bit for bit — this keeps the goldens valid whatever the flag says.
  const auto [name, kind] = GetParam();
  SimParams p = golden_params();
  const auto serial =
      run_experiment(p, Protocol::kErtAF, kind, wire_options(name));
  p.sim_threads = 4;
  const auto sharded =
      run_experiment(p, Protocol::kErtAF, kind, wire_options(name));
  EXPECT_EQ(serial.wire_capture, sharded.wire_capture);
  EXPECT_EQ(serial.bytes.total_bytes(), sharded.bytes.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(
    WireMatrix, GoldenWireTest,
    ::testing::Values(std::make_tuple("flash", SubstrateKind::kCycloid),
                      std::make_tuple("waves", SubstrateKind::kChord)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             substrate_slug(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ert::harness
