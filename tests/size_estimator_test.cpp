#include "estimate/size_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "cycloid/overlay.h"

namespace ert::estimate {
namespace {

TEST(DensityEstimate, AccurateOnUniformRing) {
  Rng rng(1);
  dht::RingDirectory dir(std::uint64_t{1} << 32);
  const std::size_t n = 4000;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = rng.bits() & ((std::uint64_t{1} << 32) - 1);
    while (!dir.insert(id, i)) id = rng.bits() & ((std::uint64_t{1} << 32) - 1);
  }
  // Median-of-nodes estimate should land within a small factor of n.
  ert::Percentiles est;
  for (std::size_t t = 0; t < 200; ++t) {
    const std::uint64_t probe = dir.ids()[rng.index(dir.size())];
    est.add(density_estimate(dir, probe, 16));
  }
  const double med = est.median();
  EXPECT_GT(med, n / 1.5);
  EXPECT_LT(med, n * 1.5);
}

TEST(DensityEstimate, WithinGammaWhp) {
  // The w.h.p. claim behind gamma_n: the vast majority of per-node
  // estimates sit within a factor 2.
  Rng rng(2);
  dht::RingDirectory dir(std::uint64_t{1} << 30);
  const std::size_t n = 2048;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = rng.bits() & ((std::uint64_t{1} << 30) - 1);
    while (!dir.insert(id, i)) id = rng.bits() & ((std::uint64_t{1} << 30) - 1);
  }
  std::size_t within = 0;
  const std::size_t trials = 500;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t probe = dir.ids()[rng.index(dir.size())];
    const double e = density_estimate(dir, probe, 16);
    if (e > n / 2.0 && e < n * 2.0) ++within;
  }
  EXPECT_GT(within, trials * 9 / 10);
}

TEST(DensityEstimate, MoreSamplesTighter) {
  Rng rng(3);
  dht::RingDirectory dir(std::uint64_t{1} << 30);
  const std::size_t n = 2048;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = rng.bits() & ((std::uint64_t{1} << 30) - 1);
    while (!dir.insert(id, i)) id = rng.bits() & ((std::uint64_t{1} << 30) - 1);
  }
  auto spread = [&](std::size_t k) {
    ert::OnlineStats s;
    for (std::size_t t = 0; t < 300; ++t) {
      const std::uint64_t probe = dir.ids()[rng.index(dir.size())];
      s.add(std::log(density_estimate(dir, probe, k)));
    }
    return s.stddev();
  };
  EXPECT_LT(spread(32), spread(4));
}

TEST(PushSum, ConvergesOnCompleteGraph) {
  Rng rng(4);
  const std::size_t n = 128;
  auto neighbors = [n](dht::NodeIndex i) {
    std::vector<dht::NodeIndex> out;
    for (dht::NodeIndex j = 0; j < n; ++j)
      if (j != i) out.push_back(j);
    return out;
  };
  const auto r = push_sum_count(n, neighbors, 40, rng);
  for (double e : r.estimates) {
    EXPECT_GT(e, n * 0.8);
    EXPECT_LT(e, n * 1.25);
  }
}

TEST(PushSum, ConvergesOnCycloidOverlayGraph) {
  // The estimator the theorems assume, run over the actual DHT links.
  cycloid::OverlayOptions opts;
  opts.dimension = 6;
  cycloid::Overlay o(opts);
  cycloid::IdSpace space(6);
  for (std::uint64_t lv = 0; lv < space.size(); ++lv)
    o.add_node(space.from_linear(lv), 1.0, 1 << 20, 0.8);
  Rng rng(5);
  for (dht::NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);

  auto neighbors = [&o](dht::NodeIndex i) {
    std::vector<dht::NodeIndex> out;
    for (const auto& e : o.node(i).table.entries())
      for (const dht::NodeIndex32 c : e.candidates(o.arena().cands))
        out.push_back(c);
    return out;
  };
  const std::size_t n = o.num_slots();
  const auto r = push_sum_count(n, neighbors, 120, rng);
  std::size_t within = 0;
  for (double e : r.estimates)
    if (e > n / 2.0 && e < n * 2.0) ++within;
  // Push-sum over a sparse constant-degree graph converges slower than on
  // the complete graph, but the w.h.p. factor-2 band must still hold for
  // the vast majority.
  EXPECT_GT(within, n * 9 / 10);
}

TEST(PushSum, MassConservation) {
  Rng rng(6);
  const std::size_t n = 64;
  auto ring = [n](dht::NodeIndex i) {
    return std::vector<dht::NodeIndex>{(i + 1) % n, (i + n - 1) % n};
  };
  // Even before convergence, total weight stays n and total value stays 1 —
  // check via the implied average of estimates' reciprocal weights.
  const auto r = push_sum_count(n, ring, 5, rng);
  EXPECT_EQ(r.rounds, 5);
  EXPECT_EQ(r.estimates.size(), n);
}

}  // namespace
}  // namespace ert::estimate
