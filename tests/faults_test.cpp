// Fault-injection layer: deterministic fate streams, loss recovery
// accounting, and the bit-identity guarantees of faulted runs
// (docs/FAULTS.md).
#include "harness/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "harness/experiment.h"

namespace ert::harness {
namespace {

SimParams small_params() {
  SimParams p;
  p.num_nodes = 256;
  p.dimension = fit_dimension(256);
  p.num_lookups = 400;
  p.lookup_rate = 16.0;
  p.seed = 5;
  return p;
}

FaultPlan mixed_plan() {
  FaultPlan plan;
  plan.drop_prob = 0.1;
  plan.delay_prob = 0.2;
  plan.dup_prob = 0.05;
  return plan;
}

TEST(FaultInjector, SameSeedSameFateSequence) {
  FaultInjector a(mixed_plan(), 42);
  FaultInjector b(mixed_plan(), 42);
  for (int i = 0; i < 5000; ++i) {
    const MessageFate fa = a.fate();
    const MessageFate fb = b.fate();
    EXPECT_EQ(fa.dropped, fb.dropped) << "message " << i;
    EXPECT_EQ(fa.duplicated, fb.duplicated) << "message " << i;
    EXPECT_EQ(fa.extra_delay, fb.extra_delay) << "message " << i;
    EXPECT_EQ(fa.dup_extra_delay, fb.dup_extra_delay) << "message " << i;
  }
  EXPECT_EQ(a.messages(), 5000u);
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_EQ(a.duplicates(), b.duplicates());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(mixed_plan(), 1);
  FaultInjector b(mixed_plan(), 2);
  int differ = 0;
  for (int i = 0; i < 2000; ++i) {
    const MessageFate fa = a.fate();
    const MessageFate fb = b.fate();
    if (fa.dropped != fb.dropped || fa.extra_delay != fb.extra_delay) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, RatesRoughlyMatchProbabilities) {
  FaultInjector inj(mixed_plan(), 7);
  for (int i = 0; i < 20000; ++i) inj.fate();
  const double drop_rate =
      static_cast<double>(inj.drops()) / static_cast<double>(inj.messages());
  const double dup_rate = static_cast<double>(inj.duplicates()) /
                          static_cast<double>(inj.messages());
  EXPECT_NEAR(drop_rate, 0.1, 0.02);
  EXPECT_NEAR(dup_rate, 0.05, 0.02);
}

TEST(FaultInjector, ZeroProbabilitiesNeverFault) {
  FaultPlan plan;  // all probabilities zero
  plan.crash_waves.push_back(CrashWave{1.0, 0});
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.message_faults());
  FaultInjector inj(plan, 3);
  for (int i = 0; i < 1000; ++i) {
    const MessageFate f = inj.fate();
    EXPECT_FALSE(f.dropped);
    EXPECT_FALSE(f.duplicated);
    EXPECT_EQ(f.extra_delay, 0.0);
  }
}

TEST(FaultInjector, RetryDelayBacksOffExponentially) {
  FaultPlan plan;
  plan.retry_timeout = 0.5;
  plan.retry_backoff = 2.0;
  plan.max_retries = 3;
  FaultInjector inj(plan, 0);
  EXPECT_DOUBLE_EQ(inj.retry_delay(0), 0.5);
  EXPECT_DOUBLE_EQ(inj.retry_delay(1), 1.0);
  EXPECT_DOUBLE_EQ(inj.retry_delay(2), 2.0);
  EXPECT_FALSE(inj.retries_exhausted(3));
  EXPECT_TRUE(inj.retries_exhausted(4));
}

// --- engine integration ------------------------------------------------------

TEST(FaultedExperiment, ZeroProbabilityPlanBitIdenticalToDefault) {
  // A plan whose injector is constructed but never fires must leave the
  // run untouched: the fault stream has its own Rng, so the workload
  // randomness is byte-for-byte the plain run's.
  const SimParams p = small_params();
  ExperimentOptions opts;
  opts.faults.crash_waves.push_back(CrashWave{1.0, 0});  // enabled, inert
  const auto plain = run_experiment(p, Protocol::kErtAF);
  const auto faulted =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  EXPECT_EQ(plain.lookup_time.mean, faulted.lookup_time.mean);
  EXPECT_EQ(plain.p99_share, faulted.p99_share);
  EXPECT_EQ(plain.heavy_encounters, faulted.heavy_encounters);
  EXPECT_EQ(plain.completed_lookups, faulted.completed_lookups);
  EXPECT_EQ(plain.sim_duration, faulted.sim_duration);
  EXPECT_EQ(faulted.faults.timed_out, 0u);
  EXPECT_EQ(faulted.faults.retried, 0u);
  EXPECT_EQ(faulted.faults.crashed_nodes, 0u);
}

TEST(FaultedExperiment, DeterministicForSeed) {
  const SimParams p = small_params();
  ExperimentOptions opts;
  opts.faults.drop_prob = 0.02;
  opts.faults.dup_prob = 0.01;
  opts.faults.crash_waves.push_back(CrashWave{5.0, 16});
  const auto a =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  const auto b =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  EXPECT_EQ(a.lookup_time.mean, b.lookup_time.mean);
  EXPECT_EQ(a.completed_lookups, b.completed_lookups);
  EXPECT_EQ(a.dropped_fault, b.dropped_fault);
  EXPECT_EQ(a.faults.timed_out, b.faults.timed_out);
  EXPECT_EQ(a.faults.retried, b.faults.retried);
  EXPECT_EQ(a.faults.recovered, b.faults.recovered);
  EXPECT_EQ(a.faults.crashed_nodes, b.faults.crashed_nodes);
}

TEST(FaultedExperiment, DropsAreDetectedRetriedAndRecovered) {
  const SimParams p = small_params();
  ExperimentOptions opts;
  opts.faults.drop_prob = 0.05;
  const auto r =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  EXPECT_GT(r.faults.timed_out, 0u);
  EXPECT_GT(r.faults.retried, 0u);
  EXPECT_GT(r.faults.recovered, 0u);
  // Every lookup is accounted exactly once.
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
  EXPECT_EQ(r.dropped_overload + r.dropped_fault, r.dropped_lookups);
  // 5% loss with 3 retransmits: the vast majority must still complete.
  EXPECT_GT(r.completed_lookups, 390u);
}

TEST(FaultedExperiment, ExhaustedRetriesFailAsFaultDrops) {
  const SimParams p = small_params();
  ExperimentOptions opts;
  opts.faults.drop_prob = 1.0;  // every message lost
  opts.faults.max_retries = 2;
  const auto r =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  EXPECT_GT(r.dropped_fault, 0u);
  EXPECT_EQ(r.dropped_overload, 0u);
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
  EXPECT_EQ(r.dropped_overload + r.dropped_fault, r.dropped_lookups);
}

TEST(FaultedExperiment, DuplicationIsAtLeastOnceWithoutDoubleCounting) {
  const SimParams p = small_params();
  ExperimentOptions opts;
  opts.faults.dup_prob = 0.5;
  const auto r =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  // Delivery is at-least-once: every lookup still completes exactly once.
  EXPECT_EQ(r.completed_lookups, 400u);
  EXPECT_EQ(r.dropped_lookups, 0u);
  // The duplicates are real work: they load the network beyond the
  // fault-free run.
  const auto plain = run_experiment(p, Protocol::kErtAF);
  EXPECT_NE(r.p99_share, plain.p99_share);
}

TEST(FaultedExperiment, CrashWavesFailNodesAndLookupsRecover) {
  const SimParams p = small_params();
  ExperimentOptions opts;
  opts.faults.crash_waves.push_back(CrashWave{4.0, 16});
  opts.faults.crash_waves.push_back(CrashWave{12.0, 16});
  const auto r =
      run_experiment(p, Protocol::kErtAF, SubstrateKind::kCycloid, opts);
  EXPECT_EQ(r.faults.crashed_nodes, 32u);
  EXPECT_EQ(r.final_nodes, 256u - 32u);
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
  // Stale links are discovered and routed around (Sec. 5.5 machinery).
  EXPECT_GT(r.completed_lookups, 380u);
}

TEST(FaultedExperiment, AveragedBitIdenticalAcrossThreadCounts) {
  // The ISSUE's acceptance criterion: a seeded fault run (1% drop plus a
  // crash wave) reduced over 4 seeds must not change a single bit between
  // 1 and 4 worker threads.
  SimParams p = small_params();
  p.num_lookups = 200;
  ExperimentOptions opts;
  opts.faults.drop_prob = 0.01;
  opts.faults.crash_waves.push_back(CrashWave{5.0, 16});
  const auto one =
      run_averaged(p, Protocol::kErtAF, 4, SubstrateKind::kCycloid, 1, opts);
  const auto four =
      run_averaged(p, Protocol::kErtAF, 4, SubstrateKind::kCycloid, 4, opts);
  EXPECT_EQ(one.lookup_time.mean, four.lookup_time.mean);
  EXPECT_EQ(one.lookup_time.p99, four.lookup_time.p99);
  EXPECT_EQ(one.p99_share, four.p99_share);
  EXPECT_EQ(one.p99_max_congestion, four.p99_max_congestion);
  EXPECT_EQ(one.avg_path_length, four.avg_path_length);
  EXPECT_EQ(one.completed_lookups, four.completed_lookups);
  EXPECT_EQ(one.dropped_overload, four.dropped_overload);
  EXPECT_EQ(one.dropped_fault, four.dropped_fault);
  EXPECT_EQ(one.faults.timed_out, four.faults.timed_out);
  EXPECT_EQ(one.faults.retried, four.faults.retried);
  EXPECT_EQ(one.faults.recovered, four.faults.recovered);
  EXPECT_EQ(one.faults.crashed_nodes, four.faults.crashed_nodes);
  EXPECT_EQ(one.sim_duration, four.sim_duration);
  EXPECT_EQ(one.final_nodes, four.final_nodes);
}

TEST(FaultedExperiment, FaultsWorkOnEverySubstrate) {
  for (const SubstrateKind kind :
       {SubstrateKind::kCycloid, SubstrateKind::kChord, SubstrateKind::kPastry,
        SubstrateKind::kCan}) {
    SimParams p = small_params();
    p.num_lookups = 200;
    ExperimentOptions opts;
    opts.faults.drop_prob = 0.02;
    opts.faults.crash_waves.push_back(CrashWave{5.0, 8});
    const auto r = run_experiment(p, Protocol::kErtAF, kind, opts);
    EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 200u)
        << to_string(kind);
    EXPECT_EQ(r.faults.crashed_nodes, 8u) << to_string(kind);
    EXPECT_GT(r.completed_lookups, 190u) << to_string(kind);
  }
}

}  // namespace
}  // namespace ert::harness
