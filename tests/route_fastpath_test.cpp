// Equivalence tests for the allocation-free per-hop fast path.
//
// The refactor's contract is that the scratch-based route_step / forwarding
// entry points consume the identical Rng draw sequence and produce the
// identical decisions as the legacy vector-returning forms. The golden
// traces pin this end to end; these tests pin it at the unit level so a
// future divergence is caught next to the code that caused it:
//
//  * Rng::sample_indices scratch form == legacy form (output and stream),
//  * OverloadedSet behaves as the sorted set it claims to be,
//  * templated forward_topology_aware == legacy overload, with the memory
//    slot and the A set evolving across calls,
//  * every overlay's scratch route_step == its legacy route_step, hop by
//    hop along full lookups.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "can/overlay.h"
#include "chord/overlay.h"
#include "common/rng.h"
#include "cycloid/overlay.h"
#include "dht/route_scratch.h"
#include "ert/forwarding.h"
#include "pastry/overlay.h"

namespace ert {
namespace {

using dht::NodeIndex;

// --- Rng::sample_indices -----------------------------------------------------

TEST(SampleIndices, ScratchFormMatchesLegacyAcrossRegimes) {
  // Covers k >= n (identity), the dense partial-Fisher-Yates branch
  // (3k >= n), and the sparse rejection branch (3k < n).
  const struct { std::size_t n, k; } cases[] = {
      {0, 0}, {1, 1}, {4, 8}, {10, 10},  // identity
      {10, 4}, {12, 5}, {3, 1},          // dense
      {100, 2}, {1000, 3}, {64, 1},      // sparse
  };
  for (const auto& c : cases) {
    Rng a(42), b(42);
    std::vector<std::size_t> scratch, out;
    for (int rep = 0; rep < 25; ++rep) {
      const auto legacy = a.sample_indices(c.n, c.k);
      b.sample_indices(c.n, c.k, scratch, out);
      ASSERT_EQ(legacy, out) << "n=" << c.n << " k=" << c.k << " rep=" << rep;
    }
    // Both engines must also have consumed the same number of draws.
    EXPECT_EQ(a.bits(), b.bits()) << "n=" << c.n << " k=" << c.k;
  }
}

TEST(SampleIndices, OutputIsDistinctAndInRange) {
  Rng rng(7);
  std::vector<std::size_t> scratch, out;
  for (int rep = 0; rep < 50; ++rep) {
    rng.sample_indices(30, 6, scratch, out);
    ASSERT_EQ(out.size(), 6u);
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::unique(sorted.begin(), sorted.end()) == sorted.end());
    EXPECT_LT(sorted.back(), 30u);
  }
}

// --- OverloadedSet -----------------------------------------------------------

TEST(OverloadedSet, InsertContainsAndDuplicates) {
  core::OverloadedSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(3));  // duplicate
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.contains(8));
}

TEST(OverloadedSet, SpillsPastInlineCapacityAndClears) {
  core::OverloadedSet s;
  // Insert in descending order so every insert shifts the whole buffer,
  // and cross the inline capacity to exercise the spill.
  const std::size_t n = core::OverloadedSet::kInlineCap + 10;
  for (std::size_t i = n; i > 0; --i)
    EXPECT_TRUE(s.insert(static_cast<NodeIndex>(i * 3)));
  EXPECT_EQ(s.size(), n);
  for (std::size_t i = 1; i <= n; ++i) {
    EXPECT_TRUE(s.contains(static_cast<NodeIndex>(i * 3)));
    EXPECT_FALSE(s.contains(static_cast<NodeIndex>(i * 3 - 1)));
  }
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(3));
  // Reusable after clear, including re-spilling.
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_TRUE(s.insert(static_cast<NodeIndex>(i)));
  EXPECT_EQ(s.size(), n);
}

// --- forward_topology_aware --------------------------------------------------

/// Deterministic probe: load and heaviness derive from the node index, so
/// both the legacy and the scratch call see identical probe results without
/// sharing state.
core::ProbeResult synth_probe(NodeIndex n, int round) {
  core::ProbeResult r;
  const std::uint64_t h = (static_cast<std::uint64_t>(n) * 2654435761u) ^
                          static_cast<std::uint64_t>(round) * 40503u;
  r.load = static_cast<double>(h % 97) / 10.0;
  r.heavy = (h & 3u) == 0;  // ~25% heavy
  r.logical_distance = (h >> 8) % 1024;
  r.physical_distance = static_cast<double>((h >> 4) % 31);
  r.unit_load = 0.5;
  return r;
}

TEST(TopoForward, ScratchFormMatchesLegacyWithEvolvingState) {
  // Two parallel worlds: legacy (vector A, ProbeFn) and fast path
  // (OverloadedSet A, concrete lambda, ForwardScratch). Same seed, same
  // candidate streams; entries and A sets evolve independently and must
  // stay in lockstep.
  Rng world(11);
  Rng rng_legacy(99), rng_fast(99);
  dht::RoutingEntry entry_legacy(dht::EntryKind::kCubical);
  dht::RoutingEntry entry_fast(dht::EntryKind::kCubical);
  std::vector<NodeIndex> a_legacy;
  core::OverloadedSet a_fast;
  core::ForwardScratch scratch;
  core::TopoForwardOptions opts;
  opts.poll_size = 2;

  for (int round = 0; round < 400; ++round) {
    // Fresh candidate set each round: 1..8 distinct nodes out of 40.
    const std::size_t k = 1 + world.index(8);
    const auto idx = world.sample_indices(40, k);
    std::vector<NodeIndex> cands(idx.begin(), idx.end());

    const core::ProbeFn probe_legacy = [round](NodeIndex n) {
      return synth_probe(n, round);
    };
    const auto d_legacy = core::forward_topology_aware(
        entry_legacy, cands, a_legacy, opts, probe_legacy, rng_legacy);

    const auto d_fast = core::forward_topology_aware(
        entry_fast, std::span<const NodeIndex>(cands), a_fast, opts,
        [round](NodeIndex n) { return synth_probe(n, round); }, rng_fast,
        scratch);

    ASSERT_EQ(d_legacy.next, d_fast.next) << "round " << round;
    ASSERT_EQ(d_legacy.probes, d_fast.probes) << "round " << round;
    ASSERT_EQ(d_legacy.newly_overloaded, scratch.newly_overloaded)
        << "round " << round;
    ASSERT_EQ(entry_legacy.memory(), entry_fast.memory()) << "round " << round;

    // Both worlds accumulate A the way the engine does (cap 64).
    for (NodeIndex o : scratch.newly_overloaded) {
      if (a_fast.size() < core::kOverloadedSetCap) a_fast.insert(o);
    }
    for (NodeIndex o : d_legacy.newly_overloaded) {
      if (a_legacy.size() < core::kOverloadedSetCap &&
          std::find(a_legacy.begin(), a_legacy.end(), o) == a_legacy.end())
        a_legacy.push_back(o);
    }
    ASSERT_EQ(a_legacy.size(), a_fast.size()) << "round " << round;
    // Periodically reset A, as a new query would.
    if (round % 37 == 36) {
      a_legacy.clear();
      a_fast.clear();
    }
  }
}

TEST(TopoForward, EmptyCandidatesIsANoop) {
  Rng rng(1);
  dht::RoutingEntry entry(dht::EntryKind::kCubical);
  core::OverloadedSet a;
  core::ForwardScratch scratch;
  scratch.newly_overloaded.push_back(5);  // must be cleared
  const auto d = core::forward_topology_aware(
      entry, std::span<const NodeIndex>(), a, core::TopoForwardOptions{},
      [](NodeIndex) { return core::ProbeResult{}; }, rng, scratch);
  EXPECT_EQ(d.next, dht::kNoNode);
  EXPECT_EQ(d.probes, 0);
  EXPECT_TRUE(scratch.newly_overloaded.empty());
}

TEST(TopoForward, AllCandidatesOverloadedFallsBackToFullSet) {
  Rng rng(3);
  dht::RoutingEntry entry(dht::EntryKind::kCubical);
  core::OverloadedSet a;
  a.insert(1);
  a.insert(2);
  core::ForwardScratch scratch;
  const std::vector<NodeIndex> cands{1, 2};
  const auto d = core::forward_topology_aware(
      entry, std::span<const NodeIndex>(cands), a, core::TopoForwardOptions{},
      [](NodeIndex n) {
        core::ProbeResult r;
        r.heavy = true;
        r.load = static_cast<double>(n);
        return r;
      },
      rng, scratch);
  EXPECT_NE(d.next, dht::kNoNode);
  // Heavy nodes already in A are not reported again.
  EXPECT_TRUE(scratch.newly_overloaded.empty());
}

// --- per-overlay route_step --------------------------------------------------

/// Routes one lookup with both APIs in lockstep, asserting the hop streams
/// are identical; advances through the front candidate like the
/// deterministic protocols do. Returns hops taken.
template <typename StepFn, typename ScratchStepFn>
std::size_t route_both(StepFn legacy_step, ScratchStepFn scratch_step,
                       NodeIndex src, std::size_t max_hops) {
  dht::RouteScratch scratch;
  NodeIndex cur = src;
  std::size_t hops = 0;
  while (hops < max_hops) {
    const auto legacy = legacy_step(cur);
    const dht::RouteStepInfo fast = scratch_step(cur, scratch);
    EXPECT_EQ(legacy.arrived, fast.arrived);
    EXPECT_EQ(legacy.entry_index, fast.entry_index);
    EXPECT_EQ(legacy.candidates, scratch.candidates);
    if (legacy.arrived) return hops;
    EXPECT_FALSE(scratch.candidates.empty());
    if (scratch.candidates.empty()) return hops;
    cur = scratch.candidates.front();
    ++hops;
  }
  ADD_FAILURE() << "lookup did not terminate";
  return hops;
}

TEST(RouteStepEquivalence, Cycloid) {
  cycloid::OverlayOptions opts;
  opts.dimension = 6;
  cycloid::Overlay o(opts);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  Rng pick(17);
  for (int q = 0; q < 200; ++q) {
    const NodeIndex src = pick.index(o.num_slots());
    const std::uint64_t key = pick.bits() % o.space().size();
    cycloid::RouteCtx ctx_legacy, ctx_fast;
    route_both(
        [&](NodeIndex cur) { return o.route_step(cur, key, ctx_legacy); },
        [&](NodeIndex cur, dht::RouteScratch& s) {
          return o.route_step(cur, key, ctx_fast, s);
        },
        src, 64);
  }
}

TEST(RouteStepEquivalence, Chord) {
  chord::ChordOptions opts;
  opts.bits = 14;
  chord::Overlay o(opts);
  Rng rng(6);
  for (int i = 0; i < 250; ++i) o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i);
  Rng pick(18);
  for (int q = 0; q < 200; ++q) {
    const NodeIndex src = pick.index(o.num_slots());
    const std::uint64_t key = pick.bits() % o.ring_size();
    route_both(
        [&](NodeIndex cur) { return o.route_step(cur, key); },
        [&](NodeIndex cur, dht::RouteScratch& s) {
          return o.route_step(cur, key, s);
        },
        src, 64);
  }
}

TEST(RouteStepEquivalence, Pastry) {
  pastry::PastryOptions opts;
  pastry::Overlay o(opts);
  Rng rng(7);
  for (int i = 0; i < 250; ++i) o.add_node_random(rng, 1.0, 1 << 20, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i);
  Rng pick(19);
  for (int q = 0; q < 200; ++q) {
    const NodeIndex src = pick.index(o.num_slots());
    const std::uint64_t key = pick.bits() % o.ring_size();
    route_both(
        [&](NodeIndex cur) { return o.route_step(cur, key); },
        [&](NodeIndex cur, dht::RouteScratch& s) {
          return o.route_step(cur, key, s);
        },
        src, 64);
  }
}

TEST(RouteStepEquivalence, Can) {
  can::CanOptions opts;
  can::Overlay o(opts);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) o.add_node(rng, rng.uniform(0.3, 4.0), 16, 0.8);
  Rng pick(20);
  for (int q = 0; q < 200; ++q) {
    const NodeIndex src = pick.index(o.num_slots());
    const can::Point target{pick.uniform(), pick.uniform()};
    route_both(
        [&](NodeIndex cur) { return o.route_step(cur, target); },
        [&](NodeIndex cur, dht::RouteScratch& s) {
          return o.route_step(cur, target, s);
        },
        src, 64);
  }
}

}  // namespace
}  // namespace ert
