// Structured event tracing: sink semantics, JSONL round-trips, and the
// determinism contract (docs/TRACING.md) — tracer-on runs bit-identical to
// tracer-off runs, traces byte-identical across thread counts.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "trace/jsonl.h"

namespace ert::trace {
namespace {

TraceConfig enabled_config() {
  TraceConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(TraceSink, StampsClockAndStoresFields) {
  double now = 0.0;
  TraceSink sink(enabled_config(), [&now] { return now; });
  now = 1.5;
  sink.emit(EventType::kQueryHop, 3, 7, 4, 2, 5);
  now = 2.0;
  sink.emit(EventType::kQueryEnd, 4, 7, 6, 1);
  ASSERT_EQ(sink.size(), 2u);
  const auto recs = sink.snapshot();
  EXPECT_EQ(recs[0].time, 1.5);
  EXPECT_EQ(recs[0].type, EventType::kQueryHop);
  EXPECT_EQ(recs[0].node, 3u);
  EXPECT_EQ(recs[0].query, 7u);
  EXPECT_EQ(recs[0].a, 4);
  EXPECT_EQ(recs[0].b, 2);
  EXPECT_EQ(recs[0].aux, 5u);
  EXPECT_EQ(recs[1].time, 2.0);
  EXPECT_EQ(recs[1].type, EventType::kQueryEnd);
}

TEST(TraceSink, RingWrapEvictsOldestFirst) {
  TraceConfig cfg = enabled_config();
  cfg.capacity = 4;
  TraceSink sink(cfg, [] { return 0.0; });
  for (std::uint64_t i = 0; i < 10; ++i)
    sink.emit(EventType::kQueryBegin, i);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto recs = sink.snapshot();
  ASSERT_EQ(recs.size(), 4u);
  // Oldest first: records 6, 7, 8, 9 survive.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(recs[i].node, 6 + i);
}

TEST(TraceSink, CategoryFilterDropsBeforeRecording) {
  TraceConfig cfg = enabled_config();
  cfg.categories = static_cast<std::uint32_t>(Category::kAdapt);
  TraceSink sink(cfg, [] { return 0.0; });
  EXPECT_TRUE(sink.wants(Category::kAdapt));
  EXPECT_FALSE(sink.wants(Category::kHop));
  sink.emit(EventType::kQueryHop, 1);    // filtered out
  sink.emit(EventType::kAdaptShed, 2);   // admitted
  sink.emit(EventType::kLinkAdopt, 3);   // filtered out
  EXPECT_EQ(sink.emitted(), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.snapshot()[0].type, EventType::kAdaptShed);
}

TEST(TraceCategories, EveryEventTypeHasNameAndCategory) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    const auto t = static_cast<EventType>(i);
    EXPECT_STRNE(to_string(t), "?");
    const auto c = static_cast<std::uint32_t>(category_of(t));
    EXPECT_NE(c, 0u);
    EXPECT_EQ(c & (c - 1), 0u) << "category must be a single bit";
  }
}

TEST(TraceCategories, ParseSpecs) {
  std::uint32_t mask = 0;
  EXPECT_TRUE(parse_categories("all", &mask));
  EXPECT_EQ(mask, kAllCategories);
  EXPECT_TRUE(parse_categories("hop,adapt", &mask));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(Category::kHop) |
                      static_cast<std::uint32_t>(Category::kAdapt));
  EXPECT_TRUE(parse_categories("run,query,overload,link,fault,churn", &mask));
  EXPECT_FALSE(parse_categories("bogus", &mask));
  EXPECT_FALSE(parse_categories("", &mask));
  EXPECT_FALSE(parse_categories("hop,,adapt", &mask));
}

TEST(TraceJsonl, RoundTripsEveryEventType) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    Record r;
    r.time = 3.25 + static_cast<double>(i);
    r.type = static_cast<EventType>(i);
    r.node = 17;
    r.query = 23;
    r.a = -4;
    r.b = 99;
    r.aux = 2;
    std::string line;
    append_jsonl(line, r);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    Record back;
    std::string err;
    ASSERT_TRUE(parse_jsonl_line(line, &back, &err))
        << to_string(r.type) << ": " << err;
    EXPECT_EQ(back.time, r.time);
    EXPECT_EQ(back.type, r.type);
    // Only the fields the type serializes survive; re-serialization must be
    // the identity on the text form.
    std::string again;
    append_jsonl(again, back);
    EXPECT_EQ(again, line) << to_string(r.type);
  }
}

TEST(TraceJsonl, ShortestRoundTripDoubles) {
  Record r;
  r.type = EventType::kChurnDepart;
  r.time = 0.1 + 0.2;  // classic non-representable sum
  std::string line;
  append_jsonl(line, r);
  Record back;
  ASSERT_TRUE(parse_jsonl_line(line, &back, nullptr));
  EXPECT_EQ(back.time, r.time);  // exact, not approximate
}

TEST(TraceJsonl, RejectsMalformedLines) {
  Record r;
  std::string err;
  EXPECT_FALSE(parse_jsonl_line("", &r, &err));
  EXPECT_FALSE(parse_jsonl_line("not json", &r, &err));
  EXPECT_FALSE(parse_jsonl_line(R"({"t":1,"ev":"no.such.event"})", &r, &err));
  // Missing required fields for the type.
  EXPECT_FALSE(parse_jsonl_line(R"({"t":1,"ev":"query.hop","q":1})", &r, &err));
  // Negative / non-finite time.
  EXPECT_FALSE(parse_jsonl_line(
      R"({"t":-1,"ev":"churn.depart","node":3})", &r, &err));
  EXPECT_FALSE(parse_jsonl_line(
      R"({"t":nan,"ev":"churn.depart","node":3})", &r, &err));
  // Missing ev / missing t.
  EXPECT_FALSE(parse_jsonl_line(R"({"t":1})", &r, &err));
  EXPECT_FALSE(parse_jsonl_line(R"({"ev":"churn.depart","node":3})", &r, &err));
  // Valid line sanity check so the rejections above mean something.
  EXPECT_TRUE(parse_jsonl_line(
      R"({"t":1,"ev":"churn.depart","node":3})", &r, &err))
      << err;
}

using ert::SimParams;

SimParams trace_params() {
  SimParams p;
  p.num_nodes = 128;
  p.dimension = harness::fit_dimension(128);
  p.num_lookups = 200;
  p.lookup_rate = 16.0;
  p.seed = 9;
  return p;
}

harness::ExperimentOptions traced_options() {
  harness::ExperimentOptions o;
  o.trace.enabled = true;
  return o;
}

TEST(TraceDeterminism, ByteIdenticalAcrossThreadCounts) {
  // run_averaged concatenates per-seed traces in seed order after all runs
  // finish, so the serialized stream must not depend on the thread count.
  const SimParams p = trace_params();
  const auto one = harness::run_averaged(p, harness::Protocol::kErtAF, 3,
                                         harness::SubstrateKind::kCycloid,
                                         /*threads=*/1, traced_options());
  const auto four = harness::run_averaged(p, harness::Protocol::kErtAF, 3,
                                          harness::SubstrateKind::kCycloid,
                                          /*threads=*/4, traced_options());
  EXPECT_EQ(one.trace_emitted, four.trace_emitted);
  EXPECT_EQ(one.trace_dropped, four.trace_dropped);
  EXPECT_EQ(to_jsonl(one.trace_records), to_jsonl(four.trace_records));
}

TEST(TraceDeterminism, RingCapEnforcedAndThreadInvariant) {
  // A tight --trace-cap must bound retained records per run (scale mode's
  // memory guard), keep emitted == retained + dropped, and stay
  // byte-identical across worker thread counts.
  const SimParams p = trace_params();
  harness::ExperimentOptions o = traced_options();
  o.trace.capacity = 64;
  const auto one = harness::run_averaged(p, harness::Protocol::kErtAF, 2,
                                         harness::SubstrateKind::kCycloid,
                                         /*threads=*/1, o);
  const auto four = harness::run_averaged(p, harness::Protocol::kErtAF, 2,
                                          harness::SubstrateKind::kCycloid,
                                          /*threads=*/4, o);
  EXPECT_LE(one.trace_records.size(), 2 * o.trace.capacity);  // per-seed ring
  EXPECT_GT(one.trace_dropped, 0u);
  EXPECT_EQ(one.trace_emitted, one.trace_records.size() + one.trace_dropped);
  EXPECT_EQ(one.trace_emitted, four.trace_emitted);
  EXPECT_EQ(one.trace_dropped, four.trace_dropped);
  EXPECT_EQ(to_jsonl(one.trace_records), to_jsonl(four.trace_records));
}

TEST(TraceDeterminism, ByteIdenticalForEqualSeeds) {
  const SimParams p = trace_params();
  const auto a = harness::run_experiment(p, harness::Protocol::kErtAF,
                                         harness::SubstrateKind::kCycloid,
                                         traced_options());
  const auto b = harness::run_experiment(p, harness::Protocol::kErtAF,
                                         harness::SubstrateKind::kCycloid,
                                         traced_options());
  EXPECT_FALSE(a.trace_records.empty());
  EXPECT_EQ(to_jsonl(a.trace_records), to_jsonl(b.trace_records));
}

TEST(TraceDeterminism, TracerObservesOnly) {
  // An enabled tracer must not change a single bit of any metric — the sink
  // never schedules or draws randomness.
  SimParams p = trace_params();
  p.churn_interarrival = 1.0;
  for (const auto proto :
       {harness::Protocol::kBase, harness::Protocol::kErtAF}) {
    const auto off = harness::run_experiment(
        p, proto, harness::SubstrateKind::kCycloid, {});
    const auto on = harness::run_experiment(
        p, proto, harness::SubstrateKind::kCycloid, traced_options());
    EXPECT_EQ(off.p99_max_congestion, on.p99_max_congestion);
    EXPECT_EQ(off.mean_max_congestion, on.mean_max_congestion);
    EXPECT_EQ(off.p99_share, on.p99_share);
    EXPECT_EQ(off.heavy_encounters, on.heavy_encounters);
    EXPECT_EQ(off.avg_path_length, on.avg_path_length);
    EXPECT_EQ(off.lookup_time.mean, on.lookup_time.mean);
    EXPECT_EQ(off.lookup_time.p99, on.lookup_time.p99);
    EXPECT_EQ(off.avg_timeouts, on.avg_timeouts);
    EXPECT_EQ(off.completed_lookups, on.completed_lookups);
    EXPECT_EQ(off.dropped_lookups, on.dropped_lookups);
    EXPECT_EQ(off.sim_duration, on.sim_duration);
    EXPECT_EQ(off.final_nodes, on.final_nodes);
    EXPECT_GT(on.trace_emitted, 0u);
    EXPECT_EQ(off.trace_emitted, 0u);
  }
}

TEST(TraceDeterminism, FaultedRunEmitsFaultEventsWithoutChangingFates) {
  SimParams p = trace_params();
  harness::ExperimentOptions off;
  off.faults.drop_prob = 0.02;
  off.faults.delay_prob = 0.05;
  off.faults.dup_prob = 0.01;
  harness::ExperimentOptions on = off;
  on.trace.enabled = true;
  const auto a = harness::run_experiment(p, harness::Protocol::kErtAF,
                                         harness::SubstrateKind::kCycloid, off);
  const auto b = harness::run_experiment(p, harness::Protocol::kErtAF,
                                         harness::SubstrateKind::kCycloid, on);
  EXPECT_EQ(a.faults.timed_out, b.faults.timed_out);
  EXPECT_EQ(a.faults.retried, b.faults.retried);
  EXPECT_EQ(a.faults.recovered, b.faults.recovered);
  EXPECT_EQ(a.lookup_time.mean, b.lookup_time.mean);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  bool saw_fault_event = false;
  for (const auto& r : b.trace_records)
    if (category_of(r.type) == Category::kFault) saw_fault_event = true;
  EXPECT_TRUE(saw_fault_event);
}

TEST(TraceDeterminism, EmittedRecordsAllValidateAgainstSchema) {
  SimParams p = trace_params();
  p.churn_interarrival = 1.0;
  harness::ExperimentOptions o = traced_options();
  o.faults.drop_prob = 0.02;
  const auto r = harness::run_experiment(
      p, harness::Protocol::kErtAF, harness::SubstrateKind::kCycloid, o);
  ASSERT_FALSE(r.trace_records.empty());
  std::size_t checked = 0;
  for (const auto& rec : r.trace_records) {
    std::string line;
    append_jsonl(line, rec);
    Record back;
    std::string err;
    ASSERT_TRUE(parse_jsonl_line(line, &back, &err)) << line << ": " << err;
    ++checked;
  }
  EXPECT_EQ(checked, r.trace_records.size());
}

TEST(TraceDeterminism, CategoryMaskRestrictsEngineEmission) {
  SimParams p = trace_params();
  harness::ExperimentOptions o = traced_options();
  o.trace.categories = static_cast<std::uint32_t>(Category::kAdapt) |
                       static_cast<std::uint32_t>(Category::kLink);
  const auto r = harness::run_experiment(
      p, harness::Protocol::kErtAF, harness::SubstrateKind::kCycloid, o);
  ASSERT_FALSE(r.trace_records.empty());
  for (const auto& rec : r.trace_records) {
    const auto c = category_of(rec.type);
    EXPECT_TRUE(c == Category::kAdapt || c == Category::kLink)
        << to_string(rec.type);
  }
}

TEST(TraceDeterminism, EverySubstrateEmitsLinkEventsForErt) {
  // The elasticity path of all four overlays reports adopt/shed.
  SimParams p = trace_params();
  p.num_nodes = 64;
  p.num_lookups = 120;
  harness::ExperimentOptions o = traced_options();
  o.trace.categories = static_cast<std::uint32_t>(Category::kLink);
  for (const auto kind :
       {harness::SubstrateKind::kCycloid, harness::SubstrateKind::kChord,
        harness::SubstrateKind::kPastry, harness::SubstrateKind::kCan}) {
    const auto r =
        harness::run_experiment(p, harness::Protocol::kErtAF, kind, o);
    EXPECT_GT(r.trace_emitted, 0u) << harness::to_string(kind);
  }
}

}  // namespace
}  // namespace ert::trace
