// Differential fuzz of the pooled event kernel against a naive reference
// queue. The model keeps every event in a flat vector and fires the
// (time, seq)-minimum alive entry; the kernel must produce exactly the same
// firing sequence under arbitrary interleavings of schedule / cancel /
// step / run_until, including callbacks that reschedule, slot reuse after
// cancellation, and compaction kicking in mid-run.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace ert::sim {
namespace {

/// Naive reference: O(n) scan for the next event, no reclamation at all.
class ModelQueue {
 public:
  std::size_t schedule(double when, int id) {
    events_.push_back(Event{when, next_seq_++, id, true});
    ++live_;
    return events_.size() - 1;
  }

  void cancel(std::size_t idx) {
    if (events_[idx].alive) {
      events_[idx].alive = false;
      --live_;
    }
  }

  bool alive(std::size_t idx) const { return events_[idx].alive; }
  std::size_t pending() const { return live_; }
  double now() const { return now_; }
  void advance_to(double t) { now_ = std::max(now_, t); }

  /// Fires the earliest alive event; returns false when none remain.
  bool step(int& id) {
    std::size_t best = events_.size();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const Event& e = events_[i];
      if (!e.alive) continue;
      if (best == events_.size() || e.when < events_[best].when ||
          (e.when == events_[best].when && e.seq < events_[best].seq))
        best = i;
    }
    if (best == events_.size()) return false;
    events_[best].alive = false;
    --live_;
    now_ = events_[best].when;
    id = events_[best].id;
    return true;
  }

  double next_time() const {
    double t = std::numeric_limits<double>::infinity();
    std::uint64_t s = std::numeric_limits<std::uint64_t>::max();
    for (const Event& e : events_) {
      if (e.alive && (e.when < t || (e.when == t && e.seq < s))) {
        t = e.when;
        s = e.seq;
      }
    }
    return t;
  }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    int id;
    bool alive;
  };
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  double now_ = 0.0;
};

/// Drives the kernel and the model through one fuzzed episode. Fired ids are
/// recorded by the kernel's callbacks and compared step by step; a fraction
/// of callbacks reschedule a follow-up in both worlds (nested scheduling).
class FuzzHarness {
 public:
  explicit FuzzHarness(std::uint64_t seed) : rng_(seed) {}

  void run_episode(int ops) {
    for (int op = 0; op < ops; ++op) {
      const std::size_t dice = rng_.index(100);
      if (dice < 50) {
        schedule_pair(rng_.uniform(0.0, 50.0), /*chain=*/rng_.bernoulli(0.2));
      } else if (dice < 70) {
        cancel_random();
      } else if (dice < 85) {
        step_both();
      } else {
        run_until_both(model_.now() + rng_.uniform(0.0, 25.0));
      }
      ASSERT_EQ(sim_.pending_events(), model_.pending());
    }
    // Drain completely and compare the tails.
    while (step_both()) {
    }
    ASSERT_TRUE(sim_.empty());
    ASSERT_EQ(model_.pending(), 0u);
    ASSERT_EQ(fired_sim_, fired_model_);
  }

 private:
  void schedule_pair(double delay, bool chain) {
    const int id = next_id_++;
    const double when = model_.now() + delay;
    // The kernel clamps via schedule(); mirror with absolute times.
    handles_.push_back(sim_.schedule(delay, [this, id, chain] {
      fired_sim_.push_back(id);
      if (chain) {
        // Nested: mirror a follow-up into both worlds from inside the
        // callback, exactly as engine callbacks reschedule themselves.
        const double d = 1.0 + static_cast<double>(id % 7);
        const int cid = next_id_++;
        handles_.push_back(sim_.schedule(d, [this, cid] {
          fired_sim_.push_back(cid);
        }));
        model_idx_.push_back(model_.schedule(sim_.now() + d, cid));
      }
    }));
    model_idx_.push_back(model_.schedule(when, id));
  }

  void cancel_random() {
    if (handles_.empty()) return;
    const std::size_t k = rng_.index(handles_.size());
    // Cancelling an already-fired handle must be a no-op in both worlds —
    // this is where stale {slot, generation} handles would corrupt a
    // recycled slot if generation checking were broken.
    ASSERT_EQ(handles_[k].pending(), model_.alive(model_idx_[k]));
    handles_[k].cancel();
    model_.cancel(model_idx_[k]);
    ASSERT_FALSE(handles_[k].pending());
  }

  bool step_both() {
    const bool s = sim_.step();
    int id = -1;
    const bool m = model_.step(id);
    EXPECT_EQ(s, m);
    if (m) {
      fired_model_.push_back(id);
      EXPECT_DOUBLE_EQ(sim_.now(), model_.now());
    }
    compare_tail();
    return s && m;
  }

  void run_until_both(double deadline) {
    const std::size_t n = sim_.run_until(deadline);
    std::size_t fired = 0;
    while (model_.next_time() <= deadline) {
      int id = -1;
      ASSERT_TRUE(model_.step(id));
      fired_model_.push_back(id);
      ++fired;
    }
    model_.advance_to(deadline);
    EXPECT_EQ(n, fired);
    EXPECT_DOUBLE_EQ(sim_.now(), model_.now());
    compare_tail();
  }

  void compare_tail() {
    ASSERT_EQ(fired_sim_.size(), fired_model_.size());
    if (!fired_sim_.empty()) {
      ASSERT_EQ(fired_sim_.back(), fired_model_.back());
    }
  }

  Rng rng_;
  Simulator sim_;
  ModelQueue model_;
  std::vector<EventHandle> handles_;
  std::vector<std::size_t> model_idx_;
  std::vector<int> fired_sim_;
  std::vector<int> fired_model_;
  int next_id_ = 0;
};

TEST(SimFuzz, MatchesReferenceQueueAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FuzzHarness h(seed);
    h.run_episode(400);
  }
}

TEST(SimFuzz, LongCancellationHeavyEpisode) {
  // A longer episode pushes far past the compaction threshold (64 stale
  // entries) many times over.
  FuzzHarness h(0xabcdef);
  h.run_episode(5000);
}

}  // namespace
}  // namespace ert::sim
