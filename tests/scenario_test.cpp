// Scenario-engine tests: the rotating-Zipf hotspot sampler against its
// analytic frequencies (chi-squared gate), the analytic shape of every
// arrival-process phase, the capacity-bias of tournament departures, and
// the engine-level behavior of each phase type (rate compression, hotspot
// key funneling, churn membership, partition/rejoin symmetry).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "harness/experiment.h"
#include "scenario/engine.h"
#include "scenario/scenario.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace ert::scenario {
namespace {

Phase make_phase(PhaseType t, double start, double end) {
  Phase p;
  p.type = t;
  p.start = start;
  p.end = end;
  return p;
}

// --- rotating-Zipf sampler vs analytic frequencies ---------------------------

TEST(RotatingZipfSampler, MatchesAnalyticZipfFrequenciesChiSquared) {
  constexpr std::size_t kCatalog = 16;
  constexpr double kExponent = 1.0;
  constexpr std::size_t kDraws = 120000;
  Rng rng(42);
  workload::RotatingZipf z(1 << 20, kCatalog, kExponent, /*rotate=*/0.0,
                           /*origin=*/0.0, rng);

  std::map<std::uint64_t, std::size_t> counts;
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[z.pick(0.0, rng)];

  // Rng::zipf is an inverse-CDF sampler over the harmonic envelope: the
  // analytic mass of 1-based rank k is (H(k+1/2) - H(k-1/2)) / (H(n+1/2)
  // - H(1/2)) with H(x) = ln(x) at s = 1. That is the sampler's exact
  // law, so the chi-squared gate tests against it — and a separate loop
  // below pins it to within a few percent of the ideal r^-s / H_n pmf.
  const auto h = [](double x) { return std::log(x); };
  const double total = h(kCatalog + 0.5) - h(0.5);
  double ideal_norm = 0.0;
  for (std::size_t r = 1; r <= kCatalog; ++r)
    ideal_norm += std::pow(static_cast<double>(r), -kExponent);
  double chi2 = 0.0;
  for (std::size_t r = 0; r < kCatalog; ++r) {
    const double k = static_cast<double>(r + 1);
    const double p = (h(k + 0.5) - h(k - 0.5)) / total;
    const double expected = p * static_cast<double>(kDraws);
    const double observed = static_cast<double>(counts[z.keys()[r]]);
    chi2 += (observed - expected) * (observed - expected) / expected;

    const double ideal = std::pow(k, -kExponent) / ideal_norm;
    EXPECT_LT(std::abs(p - ideal) / ideal, 0.12)
        << "envelope drifted from the Zipf pmf at rank " << r;
  }
  // df = 15, p = 0.001 critical value 37.70: a correct sampler fails a
  // fixed seed with probability ~1e-3, and this seed passes.
  EXPECT_LT(chi2, 37.70) << "chi2 = " << chi2;
}

TEST(RotatingZipfSampler, RotationShiftsRanksDeterministically) {
  Rng setup(7);
  workload::RotatingZipf z(1 << 16, 8, 1.2, /*rotate=*/2.0, /*origin=*/1.0,
                           setup);
  EXPECT_EQ(z.epoch(0.0), 0u);   // before origin
  EXPECT_EQ(z.epoch(1.0), 0u);
  EXPECT_EQ(z.epoch(2.9), 0u);
  EXPECT_EQ(z.epoch(3.0), 1u);
  EXPECT_EQ(z.epoch(7.5), 3u);

  // pick(t) consumes exactly one zipf draw and maps rank r to
  // keys[(r + epoch) % n]: twin Rng streams must agree on the mapping.
  for (double t : {1.0, 3.0, 5.5, 42.0}) {
    Rng a(99), b(99);
    const std::uint64_t key = z.pick(t, a);
    const std::size_t rank = b.zipf(8, 1.2);
    EXPECT_EQ(key, z.keys()[(rank + z.epoch(t)) % 8]) << "t = " << t;
  }
}

TEST(RotatingZipfSampler, StaticSamplerNeverRotates) {
  Rng setup(3);
  workload::RotatingZipf z(1 << 16, 4, 0.8, /*rotate=*/0.0, /*origin=*/0.0,
                           setup);
  EXPECT_EQ(z.epoch(1e9), 0u);
}

// --- arrival-process phase shapes --------------------------------------------

TEST(PhaseShapes, FlashPlateauWithLinearRamps) {
  Scenario s;
  Phase p = make_phase(PhaseType::kFlash, 10.0, 20.0);
  p.multiplier = 5.0;
  p.ramp = 2.0;
  s.phases.push_back(p);

  EXPECT_EQ(s.rate_multiplier(9.999), 1.0);   // before
  EXPECT_EQ(s.rate_multiplier(10.0), 1.0);    // ramp starts at 1x
  EXPECT_DOUBLE_EQ(s.rate_multiplier(11.0), 3.0);   // halfway up
  EXPECT_DOUBLE_EQ(s.rate_multiplier(12.0), 5.0);   // plateau
  EXPECT_DOUBLE_EQ(s.rate_multiplier(15.0), 5.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(19.0), 3.0);   // halfway down
  EXPECT_EQ(s.rate_multiplier(20.0), 1.0);    // after (half-open window)
}

TEST(PhaseShapes, FlashWithoutRampIsAnImpulseEdge) {
  Scenario s;
  Phase p = make_phase(PhaseType::kFlash, 5.0, 8.0);
  p.multiplier = 8.0;
  s.phases.push_back(p);
  EXPECT_EQ(s.rate_multiplier(4.999), 1.0);
  EXPECT_EQ(s.rate_multiplier(5.0), 8.0);
  EXPECT_EQ(s.rate_multiplier(7.999), 8.0);
  EXPECT_EQ(s.rate_multiplier(8.0), 1.0);
}

TEST(PhaseShapes, DiurnalSineSwing) {
  Scenario s;
  Phase p = make_phase(PhaseType::kDiurnal, 0.0, 100.0);
  p.period = 8.0;
  p.amplitude = 0.5;
  s.phases.push_back(p);
  EXPECT_NEAR(s.rate_multiplier(0.0), 1.0, 1e-12);   // sin(0)
  EXPECT_NEAR(s.rate_multiplier(2.0), 1.5, 1e-12);   // peak
  EXPECT_NEAR(s.rate_multiplier(4.0), 1.0, 1e-12);   // midline
  EXPECT_NEAR(s.rate_multiplier(6.0), 0.5, 1e-12);   // trough
  EXPECT_NEAR(s.rate_multiplier(10.0), 1.5, 1e-12);  // next period's peak
}

TEST(PhaseShapes, OverlappingRatePhasesMultiply) {
  Scenario s;
  Phase flash = make_phase(PhaseType::kFlash, 0.0, 10.0);
  flash.multiplier = 2.0;
  Phase diurnal = make_phase(PhaseType::kDiurnal, 0.0, 10.0);
  diurnal.period = 8.0;
  diurnal.amplitude = 0.5;
  s.phases.push_back(flash);
  s.phases.push_back(diurnal);
  EXPECT_NEAR(s.rate_multiplier(2.0), 2.0 * 1.5, 1e-12);
  EXPECT_NEAR(s.rate_multiplier(6.0), 2.0 * 0.5, 1e-12);
}

TEST(PhaseShapes, HotspotSelectionAndAuditWaiver) {
  Scenario s;
  Phase hot = make_phase(PhaseType::kHotspot, 1.0, 2.0);
  hot.catalog = 8;
  Phase part = make_phase(PhaseType::kPartition, 10.0, 20.0);
  part.fraction = 0.5;
  part.settle = 5.0;
  s.phases.push_back(hot);
  s.phases.push_back(part);

  EXPECT_EQ(s.hotspot_at(0.5), Scenario::npos);
  EXPECT_EQ(s.hotspot_at(1.5), 0u);
  EXPECT_EQ(s.hotspot_at(2.0), Scenario::npos);

  EXPECT_FALSE(s.audit_waived(9.999));
  EXPECT_TRUE(s.audit_waived(10.0));      // partition onset
  EXPECT_TRUE(s.audit_waived(19.999));    // still split
  EXPECT_TRUE(s.audit_waived(24.999));    // settle tail after rejoin
  EXPECT_FALSE(s.audit_waived(25.0));

  s.phases[1].waive_audit = false;
  EXPECT_FALSE(s.audit_waived(15.0));
}

// --- the zero-intensity contract at the model level --------------------------

TEST(ZeroIntensity, AllNeutralPhasesAreInert) {
  Scenario s;
  s.phases.push_back(make_phase(PhaseType::kFlash, 0.0, 10.0));      // x1.0
  s.phases.push_back(make_phase(PhaseType::kDiurnal, 0.0, 10.0));    // amp 0
  s.phases.push_back(make_phase(PhaseType::kHotspot, 0.0, 10.0));    // 0 keys
  s.phases.push_back(make_phase(PhaseType::kChurn, 0.0, 10.0));      // rate 0
  s.phases.push_back(make_phase(PhaseType::kPartition, 0.0, 10.0));  // 0 frac
  EXPECT_TRUE(s.inert());
  EXPECT_FALSE(s.changes_membership());
  // Exactly 1.0 — not approximately: rate * 1.0 must be bit-identical.
  EXPECT_EQ(s.rate_multiplier(5.0), 1.0);
  EXPECT_EQ(s.hotspot_at(5.0), Scenario::npos);
  EXPECT_FALSE(s.audit_waived(5.0));

  Phase live = make_phase(PhaseType::kChurn, 0.0, 10.0);
  live.interarrival = 0.5;
  s.phases.push_back(live);
  EXPECT_FALSE(s.inert());
  EXPECT_TRUE(s.changes_membership());
}

TEST(ZeroIntensity, EmptyWindowIsInertWhateverTheKnobs) {
  Phase p = make_phase(PhaseType::kFlash, 5.0, 5.0);
  p.multiplier = 100.0;
  EXPECT_TRUE(p.inert());
}

// --- capacity-biased departures ----------------------------------------------

TEST(TournamentSelection, BiasMatchesAnalyticWeakDecileProbability) {
  // capacity(i) = i: the weakest decile is exactly i < n/10. With k
  // uniform samples the minimum lands there with probability 1 - 0.9^k.
  constexpr std::size_t kN = 1000;
  constexpr int kTrials = 20000;
  Rng rng(11);
  const auto capacity = [](std::size_t i) { return static_cast<double>(i); };
  for (const int k : {1, 4}) {
    int weak = 0;
    for (int t = 0; t < kTrials; ++t) {
      if (tournament_weakest(kN, k, capacity, rng) < kN / 10) ++weak;
    }
    const double expected = 1.0 - std::pow(0.9, k);
    const double got = static_cast<double>(weak) / kTrials;
    EXPECT_NEAR(got, expected, 0.02) << "tournament size " << k;
  }
}

TEST(TournamentSelection, SizeOneIsUniform) {
  Rng a(5), b(5);
  const auto capacity = [](std::size_t) { return 1.0; };
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(tournament_weakest(64, 1, capacity, a), b.index(64));
}

// --- engine-level phase behavior ----------------------------------------------

SimParams engine_params() {
  SimParams p;
  p.num_nodes = 256;
  p.dimension = harness::fit_dimension(256);
  p.num_lookups = 400;
  p.lookup_rate = 16.0;
  p.seed = 5;
  return p;
}

// Last query.begin timestamp: the arrival span, independent of how long
// congested queues take to drain afterwards.
double last_arrival(const harness::ExperimentResult& r) {
  double t = 0.0;
  for (const auto& rec : r.trace_records)
    if (rec.type == trace::EventType::kQueryBegin) t = std::max(t, rec.time);
  return t;
}

TEST(ScenarioEngine, FlashCrowdCompressesArrivals) {
  harness::ExperimentOptions plain_opts;
  plain_opts.trace.enabled = true;
  plain_opts.trace.categories =
      static_cast<std::uint32_t>(trace::Category::kQuery);
  const auto plain = harness::run_experiment(
      engine_params(), harness::Protocol::kErtAF,
      harness::SubstrateKind::kCycloid, plain_opts);

  harness::ExperimentOptions opts = plain_opts;
  opts.scenario.name = "flash";
  Phase p = make_phase(PhaseType::kFlash, 0.0, 1e9);
  p.multiplier = 8.0;
  opts.scenario.phases.push_back(p);
  const auto flash = harness::run_experiment(
      engine_params(), harness::Protocol::kErtAF,
      harness::SubstrateKind::kCycloid, opts);

  // 8x the arrival rate injects the same 400 lookups in ~1/8 the wall
  // time. (sim_duration itself is dominated by queue drain at these
  // params, so the arrival span is what the multiplier must compress.)
  EXPECT_EQ(flash.completed_lookups + flash.dropped_lookups, 400u);
  const double plain_span = last_arrival(plain);
  const double flash_span = last_arrival(flash);
  ASSERT_GT(plain_span, 0.0);
  EXPECT_LT(flash_span, 0.5 * plain_span)
      << "plain " << plain_span << "s vs flash " << flash_span << "s";
}

TEST(ScenarioEngine, HotspotFunnelsKeysIntoTheCatalog) {
  harness::ExperimentOptions opts;
  opts.trace.enabled = true;
  opts.trace.categories =
      static_cast<std::uint32_t>(trace::Category::kQuery);
  opts.scenario.name = "hotspot";
  Phase p = make_phase(PhaseType::kHotspot, 0.0, 1e9);
  p.catalog = 4;
  p.exponent = 1.0;
  opts.scenario.phases.push_back(p);
  const auto r = harness::run_experiment(
      engine_params(), harness::Protocol::kErtAF,
      harness::SubstrateKind::kCycloid, opts);

  // Every query.begin key must come from the 4-key hot catalog.
  std::map<std::int64_t, std::size_t> keys;
  for (const auto& rec : r.trace_records)
    if (rec.type == trace::EventType::kQueryBegin) ++keys[rec.a];
  EXPECT_GT(keys.size(), 0u);
  EXPECT_LE(keys.size(), 4u);
}

TEST(ScenarioEngine, ScenarioChurnTurnsOverMembership) {
  harness::ExperimentOptions opts;
  opts.scenario.name = "churn";
  Phase p = make_phase(PhaseType::kChurn, 0.0, 1e9);
  p.interarrival = 0.2;
  p.bias = 4;
  opts.scenario.phases.push_back(p);
  const auto r = harness::run_experiment(
      engine_params(), harness::Protocol::kErtAF,
      harness::SubstrateKind::kCycloid, opts);
  const auto plain = harness::run_experiment(
      engine_params(), harness::Protocol::kErtAF,
      harness::SubstrateKind::kCycloid);
  // Joins and biased departures ran: the run diverged from the plain one
  // and still settled every lookup.
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
  EXPECT_NE(r.sim_duration, plain.sim_duration);
}

TEST(ScenarioEngine, PartitionDepartsAndRejoinsTheSamePopulation) {
  harness::ExperimentOptions opts;
  opts.audit.enabled = true;
  opts.scenario.name = "partition";
  Phase p = make_phase(PhaseType::kPartition, 2.0, 4.0);
  p.fraction = 0.3;
  p.settle = 1.0;
  opts.scenario.phases.push_back(p);
  const auto r = harness::run_experiment(
      engine_params(), harness::Protocol::kErtAF,
      harness::SubstrateKind::kCycloid, opts);

  // Everyone who left came back (as fresh joins), so the alive count ends
  // where it started; the waiver window covered [2, 5) of the audit chain.
  EXPECT_EQ(r.final_nodes, 256u);
  EXPECT_GT(r.audit_waived_sweeps, 0u);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(r.completed_lookups + r.dropped_lookups, 400u);
}

TEST(ScenarioEngine, MatrixReductionIsThreadCountInvariant) {
  harness::ExperimentOptions opts;
  opts.audit.enabled = true;
  opts.scenario.name = "mix";
  Phase flash = make_phase(PhaseType::kFlash, 1.0, 3.0);
  flash.multiplier = 4.0;
  flash.ramp = 0.5;
  Phase churn = make_phase(PhaseType::kChurn, 0.5, 6.0);
  churn.interarrival = 0.3;
  churn.bias = 3;
  opts.scenario.phases.push_back(flash);
  opts.scenario.phases.push_back(churn);
  const auto one = harness::run_averaged(
      engine_params(), harness::Protocol::kErtAF, 3,
      harness::SubstrateKind::kCycloid, /*threads=*/1, opts);
  const auto four = harness::run_averaged(
      engine_params(), harness::Protocol::kErtAF, 3,
      harness::SubstrateKind::kCycloid, /*threads=*/4, opts);
  EXPECT_EQ(one.lookup_time.mean, four.lookup_time.mean);
  EXPECT_EQ(one.lookup_time.p99, four.lookup_time.p99);
  EXPECT_EQ(one.sim_duration, four.sim_duration);
  EXPECT_EQ(one.completed_lookups, four.completed_lookups);
  EXPECT_EQ(one.adapt_sheds, four.adapt_sheds);
  EXPECT_EQ(one.adapt_grows, four.adapt_grows);
  EXPECT_EQ(one.audit_sweeps, four.audit_sweeps);
  EXPECT_EQ(one.audit_waived_sweeps, four.audit_waived_sweeps);
}

}  // namespace
}  // namespace ert::scenario
