// RingDirectory differential fuzz against a naive reference model: random
// churn-shaped interleavings of insert / erase / rank / range / neighbor
// queries must agree with a std::map plus index arithmetic on the sorted id
// vector (the directory's original sorted-vector implementation). Runs
// under ASan/UBSan in CI, so structural bugs in the counted-B-tree backing
// store surface as either a divergence here or a sanitizer report.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "dht/ring.h"

namespace ert::dht {
namespace {

/// The straightforward model: a std::map for membership and neighbor scans,
/// and a freshly materialized sorted vector for rank queries using the same
/// index arithmetic the pre-B-tree directory used. Everything is O(n) per
/// call, which is fine at fuzz sizes.
class Reference {
 public:
  explicit Reference(std::uint64_t modulus) : modulus_(modulus) {}

  bool insert(std::uint64_t id, NodeIndex n) {
    return map_.emplace(id, n).second;
  }
  bool erase(std::uint64_t id) { return map_.erase(id) > 0; }
  bool contains(std::uint64_t id) const { return map_.count(id) > 0; }

  std::optional<NodeIndex> owner_of(std::uint64_t id) const {
    auto it = map_.find(id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  NodeIndex successor(std::uint64_t key) const {
    if (map_.empty()) return kNoNode;
    auto it = map_.lower_bound(key);
    if (it == map_.end()) it = map_.begin();
    return it->second;
  }
  std::uint64_t successor_id(std::uint64_t key) const {
    auto it = map_.lower_bound(key);
    if (it == map_.end()) it = map_.begin();
    return it->first;
  }
  NodeIndex predecessor(std::uint64_t key) const {
    if (map_.empty()) return kNoNode;
    auto it = map_.lower_bound(key);
    if (it == map_.begin()) it = map_.end();
    --it;
    return it->second;
  }
  std::uint64_t predecessor_id(std::uint64_t key) const {
    auto it = map_.lower_bound(key);
    if (it == map_.begin()) it = map_.end();
    --it;
    return it->first;
  }

  std::vector<std::uint64_t> successors_of(std::uint64_t key,
                                           std::size_t k) const {
    std::vector<std::uint64_t> out;
    if (map_.empty()) return out;
    auto it = map_.upper_bound(key);
    for (std::size_t i = 0; i < std::min(k, map_.size()); ++i) {
      if (it == map_.end()) it = map_.begin();
      if (it->first == key) break;
      out.push_back(it->first);
      ++it;
    }
    return out;
  }
  std::vector<std::uint64_t> predecessors_of(std::uint64_t key,
                                             std::size_t k) const {
    std::vector<std::uint64_t> out;
    if (map_.empty()) return out;
    auto it = map_.lower_bound(key);
    for (std::size_t i = 0; i < std::min(k, map_.size()); ++i) {
      if (it == map_.begin()) it = map_.end();
      --it;
      if (it->first == key) break;
      out.push_back(it->first);
    }
    return out;
  }

  std::vector<std::uint64_t> ids_in_range(std::uint64_t lo,
                                          std::uint64_t hi) const {
    std::vector<std::uint64_t> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first < hi;
         ++it)
      out.push_back(it->first);
    return out;
  }

  std::vector<std::uint64_t> ids() const {
    std::vector<std::uint64_t> out;
    out.reserve(map_.size());
    for (const auto& [id, n] : map_) out.push_back(id);
    return out;
  }

  std::size_t position_of(std::uint64_t id) const {
    const auto v = ids();
    return static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), id) - v.begin());
  }
  std::size_t position_gap(std::size_t pa, std::size_t pb) const {
    const std::size_t n = map_.size();
    const std::size_t fwd = pb >= pa ? pb - pa : n - pa + pb;
    return std::min(fwd, n - fwd);
  }
  std::size_t position_distance(std::uint64_t a, std::uint64_t b) const {
    return position_gap(position_of(a), position_of(b));
  }
  std::uint64_t step_toward(std::uint64_t a, std::uint64_t b) const {
    const auto v = ids();
    const std::size_t pa = position_of(a);
    const std::size_t pb = position_of(b);
    const std::size_t n = v.size();
    const std::size_t fwd = pb >= pa ? pb - pa : n - pa + pb;
    const bool clockwise_shorter = fwd <= n - fwd;
    return clockwise_shorter ? v[(pa + 1) % n] : v[pa == 0 ? n - 1 : pa - 1];
  }

  std::size_t size() const { return map_.size(); }
  std::uint64_t any_id(Rng& rng) const {
    auto it = map_.begin();
    std::advance(it, rng.index(map_.size()));
    return it->first;
  }

 private:
  std::uint64_t modulus_;
  std::map<std::uint64_t, NodeIndex> map_;
};

/// One random query, same draw sequence for both sides, result compared.
/// Covers every read-only entry point of the directory.
void check_random_query(const RingDirectory& dir, const Reference& ref,
                        std::uint64_t modulus, Rng& rng) {
  ASSERT_EQ(dir.size(), ref.size());
  const std::uint64_t key = rng.bits() % modulus;
  switch (rng.index(9)) {
    case 0:
      ASSERT_EQ(dir.contains(key), ref.contains(key));
      ASSERT_EQ(dir.owner_of(key), ref.owner_of(key));
      break;
    case 1:
      ASSERT_EQ(dir.successor(key), ref.successor(key));
      if (ref.size() > 0) ASSERT_EQ(dir.successor_id(key), ref.successor_id(key));
      break;
    case 2:
      ASSERT_EQ(dir.predecessor(key), ref.predecessor(key));
      if (ref.size() > 0)
        ASSERT_EQ(dir.predecessor_id(key), ref.predecessor_id(key));
      break;
    case 3: {
      const std::size_t k = 1 + rng.index(8);
      ASSERT_EQ(dir.successors_of(key, k), ref.successors_of(key, k));
      break;
    }
    case 4: {
      const std::size_t k = 1 + rng.index(8);
      ASSERT_EQ(dir.predecessors_of(key, k), ref.predecessors_of(key, k));
      break;
    }
    case 5: {
      const std::uint64_t other = rng.bits() % modulus;
      const std::uint64_t lo = std::min(key, other);
      const std::uint64_t hi = std::max(key, other);
      ASSERT_EQ(dir.ids_in_range(lo, hi), ref.ids_in_range(lo, hi));
      break;
    }
    case 6: {
      if (ref.size() == 0) break;
      const std::uint64_t a = ref.any_id(rng);
      const std::uint64_t b = ref.any_id(rng);
      ASSERT_EQ(dir.position_of(a), ref.position_of(a));
      ASSERT_EQ(dir.position_distance(a, b), ref.position_distance(a, b));
      ASSERT_EQ(dir.position_gap(dir.position_of(a), dir.position_of(b)),
                ref.position_gap(ref.position_of(a), ref.position_of(b)));
      break;
    }
    case 7: {
      if (ref.size() < 2) break;
      const std::uint64_t a = ref.any_id(rng);
      const std::uint64_t b = ref.any_id(rng);
      ASSERT_EQ(dir.step_toward(a, b), ref.step_toward(a, b));
      break;
    }
    default:
      ASSERT_EQ(dir.ids(), ref.ids());
      break;
  }
}

TEST(RingFuzz, MatchesReferenceModel) {
  const std::uint64_t modulus = 10000;
  RingDirectory dir(modulus);
  Reference ref(modulus);
  Rng rng(20240707);
  NodeIndex next_node = 0;

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(modulus) - 1));
    switch (rng.index(6)) {
      case 0:
      case 1: {
        const bool a = dir.insert(key, next_node);
        const bool b = ref.insert(key, next_node);
        ASSERT_EQ(a, b);
        ++next_node;
        break;
      }
      case 2: {
        if (ref.size() == 0) break;
        // Erase an existing id half the time, a random key otherwise.
        const std::uint64_t victim =
            rng.bernoulli(0.5) ? ref.any_id(rng) : key;
        ASSERT_EQ(dir.erase(victim), ref.erase(victim));
        break;
      }
      case 3: {
        if (ref.size() == 0) break;
        ASSERT_EQ(dir.successor(key), ref.successor(key));
        break;
      }
      case 4: {
        if (ref.size() == 0) break;
        ASSERT_EQ(dir.predecessor(key), ref.predecessor(key));
        break;
      }
      default: {
        if (ref.size() == 0) break;
        const std::size_t k = 1 + rng.index(5);
        ASSERT_EQ(dir.successors_of(key, k), ref.successors_of(key, k));
        break;
      }
    }
    ASSERT_EQ(dir.size(), ref.size());
  }
}

// Churn-shaped interleavings: bursts of joins, then a query storm, then a
// burst of departures, repeated — the access pattern the B-tree sees under
// the harness's churn regime, where rebalancing (splits on the way up,
// borrows and merges on the way down) is constantly exercised. The larger
// modulus forces multi-level trees; every read-only entry point is checked
// against the model between mutations.
TEST(RingFuzz, ChurnPhasesMatchReferenceModel) {
  const std::uint64_t modulus = 1 << 20;
  RingDirectory dir(modulus);
  Reference ref(modulus);
  Rng rng(20260805);
  NodeIndex next_node = 0;

  for (int phase = 0; phase < 6; ++phase) {
    // Join burst: grow well past several leaf splits.
    const int joins = 1500 + static_cast<int>(rng.index(1000));
    for (int i = 0; i < joins; ++i) {
      const std::uint64_t id = rng.bits() % modulus;
      ASSERT_EQ(dir.insert(id, next_node), ref.insert(id, next_node));
      ++next_node;
      if (rng.bernoulli(0.05)) check_random_query(dir, ref, modulus, rng);
    }
    for (int q = 0; q < 400; ++q) check_random_query(dir, ref, modulus, rng);

    // Departure burst: shrink by roughly half, hammering underflow repair.
    const std::size_t departures = ref.size() / 2;
    for (std::size_t i = 0; i < departures; ++i) {
      const std::uint64_t victim =
          rng.bernoulli(0.8) ? ref.any_id(rng) : rng.bits() % modulus;
      ASSERT_EQ(dir.erase(victim), ref.erase(victim));
      if (rng.bernoulli(0.05)) check_random_query(dir, ref, modulus, rng);
    }
    for (int q = 0; q < 400; ++q) check_random_query(dir, ref, modulus, rng);
  }

  // Drain to empty through the erase path, then rebuild once more.
  while (ref.size() > 0) {
    const std::uint64_t victim = ref.any_id(rng);
    ASSERT_EQ(dir.erase(victim), ref.erase(victim));
  }
  ASSERT_TRUE(dir.empty());
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t id = rng.bits() % modulus;
    ASSERT_EQ(dir.insert(id, next_node), ref.insert(id, next_node));
    ++next_node;
  }
  for (int q = 0; q < 200; ++q) check_random_query(dir, ref, modulus, rng);
}

// Bulk staging must be observationally identical to incremental inserts:
// same return values, exact membership mid-bulk, and the same structure
// afterwards — including when queries force a mid-bulk flush and staging
// then resumes, and when a second bulk round merges into a non-empty tree.
TEST(RingFuzz, BulkStagingMatchesIncremental) {
  const std::uint64_t modulus = 1 << 18;
  RingDirectory bulk_dir(modulus);
  RingDirectory inc_dir(modulus);
  Reference ref(modulus);
  Rng rng(77);

  for (int round = 0; round < 3; ++round) {
    bulk_dir.begin_bulk(4000);
    ASSERT_TRUE(bulk_dir.in_bulk());
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t id = rng.bits() % modulus;
      const NodeIndex n = static_cast<NodeIndex>(round * 4000 + i);
      const bool a = bulk_dir.insert(id, n);
      const bool b = inc_dir.insert(id, n);
      ASSERT_EQ(a, b);
      ref.insert(id, n);
      // Membership and size stay exact while inserts are staged.
      if (rng.bernoulli(0.01)) {
        const std::uint64_t probe = rng.bernoulli(0.5) ? id : rng.bits() % modulus;
        ASSERT_EQ(bulk_dir.contains(probe), inc_dir.contains(probe));
        ASSERT_EQ(bulk_dir.size(), inc_dir.size());
      }
      // Any ordered query mid-bulk flushes transparently; staging resumes.
      if (rng.bernoulli(0.002)) {
        const std::uint64_t key = rng.bits() % modulus;
        ASSERT_EQ(bulk_dir.successor(key), inc_dir.successor(key));
        ASSERT_TRUE(bulk_dir.in_bulk());
      }
    }
    bulk_dir.end_bulk();
    ASSERT_FALSE(bulk_dir.in_bulk());
    ASSERT_EQ(bulk_dir.ids(), inc_dir.ids());
    for (int q = 0; q < 300; ++q)
      check_random_query(bulk_dir, ref, modulus, rng);

    // Shrink between rounds so the next end_bulk merges staged inserts
    // into a non-empty tree (the inplace_merge path).
    const std::size_t departures = ref.size() / 3;
    for (std::size_t i = 0; i < departures; ++i) {
      const std::uint64_t victim = ref.any_id(rng);
      ASSERT_EQ(bulk_dir.erase(victim), inc_dir.erase(victim));
      ref.erase(victim);
    }
  }
}

TEST(RingFuzz, PositionDistanceSymmetricAndBounded) {
  RingDirectory dir(100000);
  Rng rng(7);
  for (int i = 0; i < 500; ++i)
    dir.insert(static_cast<std::uint64_t>(rng.uniform_int(0, 99999)), i);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = dir.ids()[rng.index(dir.size())];
    const std::uint64_t b = dir.ids()[rng.index(dir.size())];
    const std::size_t d1 = dir.position_distance(a, b);
    const std::size_t d2 = dir.position_distance(b, a);
    ASSERT_EQ(d1, d2);
    ASSERT_LE(d1, dir.size() / 2);
  }
}

TEST(RingFuzz, StepTowardAlwaysReducesPositionDistance) {
  RingDirectory dir(100000);
  Rng rng(8);
  for (int i = 0; i < 300; ++i)
    dir.insert(static_cast<std::uint64_t>(rng.uniform_int(0, 99999)), i);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t a = dir.ids()[rng.index(dir.size())];
    const std::uint64_t b = dir.ids()[rng.index(dir.size())];
    if (a == b) continue;
    const std::uint64_t next = dir.step_toward(a, b);
    ASSERT_EQ(dir.position_distance(next, b), dir.position_distance(a, b) - 1);
  }
}

}  // namespace
}  // namespace ert::dht
