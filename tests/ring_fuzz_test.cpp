// RingDirectory fuzz against a reference model (std::map): random
// interleavings of insert / erase / successor / predecessor / ranges must
// agree with the straightforward implementation.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "dht/ring.h"

namespace ert::dht {
namespace {

class Reference {
 public:
  explicit Reference(std::uint64_t modulus) : modulus_(modulus) {}

  bool insert(std::uint64_t id, NodeIndex n) {
    return map_.emplace(id, n).second;
  }
  bool erase(std::uint64_t id) { return map_.erase(id) > 0; }

  NodeIndex successor(std::uint64_t key) const {
    if (map_.empty()) return kNoNode;
    auto it = map_.lower_bound(key);
    if (it == map_.end()) it = map_.begin();
    return it->second;
  }
  NodeIndex predecessor(std::uint64_t key) const {
    if (map_.empty()) return kNoNode;
    auto it = map_.lower_bound(key);
    if (it == map_.begin()) it = map_.end();
    --it;
    return it->second;
  }
  std::vector<std::uint64_t> successors_of(std::uint64_t key,
                                           std::size_t k) const {
    std::vector<std::uint64_t> out;
    if (map_.empty()) return out;
    auto it = map_.upper_bound(key);
    for (std::size_t i = 0; i < std::min(k, map_.size()); ++i) {
      if (it == map_.end()) it = map_.begin();
      if (it->first == key) break;
      out.push_back(it->first);
      ++it;
    }
    return out;
  }
  std::size_t size() const { return map_.size(); }
  std::uint64_t any_id(Rng& rng) const {
    auto it = map_.begin();
    std::advance(it, rng.index(map_.size()));
    return it->first;
  }

 private:
  std::uint64_t modulus_;
  std::map<std::uint64_t, NodeIndex> map_;
};

TEST(RingFuzz, MatchesReferenceModel) {
  const std::uint64_t modulus = 10000;
  RingDirectory dir(modulus);
  Reference ref(modulus);
  Rng rng(20240707);
  NodeIndex next_node = 0;

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(modulus) - 1));
    switch (rng.index(6)) {
      case 0:
      case 1: {
        const bool a = dir.insert(key, next_node);
        const bool b = ref.insert(key, next_node);
        ASSERT_EQ(a, b);
        ++next_node;
        break;
      }
      case 2: {
        if (ref.size() == 0) break;
        // Erase an existing id half the time, a random key otherwise.
        const std::uint64_t victim =
            rng.bernoulli(0.5) ? ref.any_id(rng) : key;
        ASSERT_EQ(dir.erase(victim), ref.erase(victim));
        break;
      }
      case 3: {
        if (ref.size() == 0) break;
        ASSERT_EQ(dir.successor(key), ref.successor(key));
        break;
      }
      case 4: {
        if (ref.size() == 0) break;
        ASSERT_EQ(dir.predecessor(key), ref.predecessor(key));
        break;
      }
      default: {
        if (ref.size() == 0) break;
        const std::size_t k = 1 + rng.index(5);
        ASSERT_EQ(dir.successors_of(key, k), ref.successors_of(key, k));
        break;
      }
    }
    ASSERT_EQ(dir.size(), ref.size());
  }
}

TEST(RingFuzz, PositionDistanceSymmetricAndBounded) {
  RingDirectory dir(100000);
  Rng rng(7);
  for (int i = 0; i < 500; ++i)
    dir.insert(static_cast<std::uint64_t>(rng.uniform_int(0, 99999)), i);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = dir.ids()[rng.index(dir.size())];
    const std::uint64_t b = dir.ids()[rng.index(dir.size())];
    const std::size_t d1 = dir.position_distance(a, b);
    const std::size_t d2 = dir.position_distance(b, a);
    ASSERT_EQ(d1, d2);
    ASSERT_LE(d1, dir.size() / 2);
  }
}

TEST(RingFuzz, StepTowardAlwaysReducesPositionDistance) {
  RingDirectory dir(100000);
  Rng rng(8);
  for (int i = 0; i < 300; ++i)
    dir.insert(static_cast<std::uint64_t>(rng.uniform_int(0, 99999)), i);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t a = dir.ids()[rng.index(dir.size())];
    const std::uint64_t b = dir.ids()[rng.index(dir.size())];
    if (a == b) continue;
    const std::uint64_t next = dir.step_toward(a, b);
    ASSERT_EQ(dir.position_distance(next, b), dir.position_distance(a, b) - 1);
  }
}

}  // namespace
}  // namespace ert::dht
