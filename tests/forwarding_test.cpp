#include "ert/forwarding.h"

#include <gtest/gtest.h>

#include <map>

namespace ert::core {
namespace {

using dht::NodeIndex;

/// Probe backed by a load map; counts probes issued.
struct FakeProbe {
  std::map<NodeIndex, ProbeResult> results;
  mutable int calls = 0;

  ProbeFn fn() const {
    return [this](NodeIndex n) {
      ++calls;
      auto it = results.find(n);
      return it != results.end() ? it->second : ProbeResult{};
    };
  }
};

TEST(ForwardRandom, EmptyCandidates) {
  Rng rng(1);
  EXPECT_EQ(forward_random({}, rng).next, dht::kNoNode);
}

TEST(ForwardRandom, CoversAllCandidates) {
  Rng rng(2);
  std::map<NodeIndex, int> hits;
  for (int i = 0; i < 300; ++i) hits[forward_random({1, 2, 3}, rng).next]++;
  EXPECT_EQ(hits.size(), 3u);
  for (auto& [n, c] : hits) EXPECT_GT(c, 50);
}

TEST(ForwardBWay, StopsAtFirstLightNode) {
  FakeProbe p;
  p.results[1] = {0.2, false, 0, 0};
  p.results[2] = {0.3, false, 0, 0};
  Rng rng(3);
  const auto d = forward_b_way({1, 2}, 2, p.fn(), rng);
  EXPECT_TRUE(d.next == 1 || d.next == 2);
  EXPECT_EQ(d.probes, 1);  // first probed was light -> stop
}

TEST(ForwardBWay, AllHeavyPicksLeastLoaded) {
  FakeProbe p;
  p.results[1] = {3.0, true, 0, 0};
  p.results[2] = {1.5, true, 0, 0};
  Rng rng(4);
  const auto d = forward_b_way({1, 2}, 2, p.fn(), rng);
  EXPECT_EQ(d.next, 2u);
  EXPECT_EQ(d.probes, 2);
}

TEST(ForwardBWay, PollSizeCapsProbes) {
  FakeProbe p;
  for (NodeIndex n = 1; n <= 10; ++n) p.results[n] = {2.0, true, 0, 0};
  Rng rng(5);
  const auto d = forward_b_way({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 3, p.fn(), rng);
  EXPECT_EQ(d.probes, 3);
  EXPECT_NE(d.next, dht::kNoNode);
}

class TopoForwardTest : public ::testing::Test {
 protected:
  TopoForwardTest() : entry_(dht::EntryKind::kCubical) {
    for (NodeIndex n : {1, 2, 3}) entry_.add(pool_, n);
  }
  dht::CandPool pool_;
  dht::RoutingEntry entry_;
  TopoForwardOptions opts_;
  Rng rng_{7};
};

TEST_F(TopoForwardTest, BothLightPrefersLogicallyCloser) {
  FakeProbe p;
  p.results[1] = {0.1, false, 100, 0.1};
  p.results[2] = {0.1, false, 5, 0.9};
  p.results[3] = {0.1, false, 50, 0.5};
  opts_.use_memory = false;
  for (int t = 0; t < 20; ++t) {
    const auto d =
        forward_topology_aware(entry_, {1, 2, 3}, {}, opts_, p.fn(), rng_);
    // Whatever pair was polled, node 2 wins when included; otherwise the
    // closer of the two polled wins — never the logically farthest of a pair.
    EXPECT_NE(d.next, dht::kNoNode);
    EXPECT_TRUE(d.newly_overloaded.empty());
  }
}

TEST_F(TopoForwardTest, PhysicalBreaksLogicalTie) {
  FakeProbe p;
  p.results[1] = {0.1, false, 10, 0.9};
  p.results[2] = {0.1, false, 10, 0.1};
  opts_.use_memory = false;
  const auto d =
      forward_topology_aware(entry_, {1, 2}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.next, 2u);
}

TEST_F(TopoForwardTest, MixedForwardsToLightRecordsHeavy) {
  FakeProbe p;
  p.results[1] = {5.0, true, 1, 0};
  p.results[2] = {0.1, false, 99, 0};
  const auto d =
      forward_topology_aware(entry_, {1, 2}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.next, 2u);
  ASSERT_EQ(d.newly_overloaded.size(), 1u);
  EXPECT_EQ(d.newly_overloaded[0], 1u);
}

TEST_F(TopoForwardTest, AllHeavyTakesLeastLoadedRecordsBoth) {
  FakeProbe p;
  p.results[1] = {5.0, true, 0, 0};
  p.results[2] = {2.0, true, 0, 0};
  const auto d =
      forward_topology_aware(entry_, {1, 2}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.next, 2u);
  EXPECT_EQ(d.newly_overloaded.size(), 2u);
}

TEST_F(TopoForwardTest, ExcludesKnownOverloaded) {
  FakeProbe p;
  p.results[2] = {0.1, false, 0, 0};
  p.results[3] = {0.1, false, 0, 0};
  for (int t = 0; t < 20; ++t) {
    const auto d =
        forward_topology_aware(entry_, {1, 2, 3}, {1}, opts_, p.fn(), rng_);
    EXPECT_NE(d.next, 1u);
  }
}

TEST_F(TopoForwardTest, FallsBackWhenAllKnownOverloaded) {
  FakeProbe p;
  p.results[1] = {5.0, true, 0, 0};
  p.results[2] = {6.0, true, 0, 0};
  p.results[3] = {7.0, true, 0, 0};
  const auto d = forward_topology_aware(entry_, {1, 2, 3}, {1, 2, 3}, opts_,
                                        p.fn(), rng_);
  EXPECT_NE(d.next, dht::kNoNode);  // still forwards somewhere
}

TEST_F(TopoForwardTest, MemoryReducesPollToOneFresh) {
  FakeProbe p;
  p.results[1] = {0.5, false, 10, 0, 0.1};
  p.results[2] = {0.1, false, 10, 0, 0.1};
  p.results[3] = {0.9, false, 10, 0, 0.1};
  opts_.use_memory = true;
  entry_.remember(2);
  const auto d =
      forward_topology_aware(entry_, {1, 2, 3}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.probes, 2);  // remembered + 1 fresh
  EXPECT_NE(d.next, dht::kNoNode);
}

TEST_F(TopoForwardTest, MemoryUpdatedToLeastLoadedAfterDispatch) {
  FakeProbe p;
  // unit_load 10 means the chosen node's load jumps heavily after dispatch.
  p.results[1] = {0.1, false, 5, 0, 10.0};
  p.results[2] = {0.2, false, 50, 0, 10.0};
  opts_.use_memory = true;
  entry_.forget();
  const auto d =
      forward_topology_aware(entry_, {1, 2}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.next, 1u);          // logically closer and light
  EXPECT_EQ(entry_.memory(), 2u);  // 1's post-dispatch load exceeds 2's
}

TEST_F(TopoForwardTest, StaleMemoryOutsideCandidatesIgnored) {
  FakeProbe p;
  p.results[1] = {0.1, false, 0, 0};
  p.results[2] = {0.1, false, 0, 0};
  entry_.remember(42);  // not in the candidate set
  opts_.use_memory = true;
  const auto d =
      forward_topology_aware(entry_, {1, 2}, {}, opts_, p.fn(), rng_);
  EXPECT_TRUE(d.next == 1 || d.next == 2);
}

TEST_F(TopoForwardTest, SingleCandidate) {
  FakeProbe p;
  p.results[1] = {5.0, true, 0, 0};
  const auto d = forward_topology_aware(entry_, {1}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.next, 1u);
}

TEST_F(TopoForwardTest, EmptyCandidates) {
  FakeProbe p;
  const auto d = forward_topology_aware(entry_, {}, {}, opts_, p.fn(), rng_);
  EXPECT_EQ(d.next, dht::kNoNode);
}

}  // namespace
}  // namespace ert::core
