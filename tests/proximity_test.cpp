#include "net/proximity.h"

#include <gtest/gtest.h>

namespace ert::net {
namespace {

TEST(TorusDistance, Basics) {
  EXPECT_DOUBLE_EQ(torus_distance({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(torus_distance({0, 0}, {0.3, 0}), 0.3);
  EXPECT_DOUBLE_EQ(torus_distance({0, 0}, {0, 0.4}), 0.4);
}

TEST(TorusDistance, WrapsAround) {
  // 0.1 and 0.9 are 0.2 apart across the wrap, not 0.8.
  EXPECT_NEAR(torus_distance({0.1, 0}, {0.9, 0}), 0.2, 1e-12);
  EXPECT_NEAR(torus_distance({0, 0.05}, {0, 0.95}), 0.1, 1e-12);
}

TEST(TorusDistance, Symmetric) {
  const Coord a{0.12, 0.7}, b{0.9, 0.33};
  EXPECT_DOUBLE_EQ(torus_distance(a, b), torus_distance(b, a));
}

TEST(TorusDistance, MaxIsHalfDiagonal) {
  // No two points can be farther than sqrt(0.5^2 + 0.5^2).
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Coord a{rng.uniform(), rng.uniform()};
    const Coord b{rng.uniform(), rng.uniform()};
    EXPECT_LE(torus_distance(a, b), 0.7071068);
  }
}

TEST(ProximityMap, SizesAndGrowth) {
  Rng rng(2);
  ProximityMap m(10, rng);
  EXPECT_EQ(m.size(), 10u);
  const std::size_t idx = m.add_node(rng);
  EXPECT_EQ(idx, 10u);
  EXPECT_EQ(m.size(), 11u);
}

TEST(ProximityMap, LatencyProperties) {
  Rng rng(3);
  ProximityMap m(50, rng, 0.010, 0.100);
  EXPECT_DOUBLE_EQ(m.latency(7, 7), 0.0);
  for (std::size_t i = 0; i < 49; ++i) {
    const double l = m.latency(i, i + 1);
    EXPECT_GE(l, 0.010);
    EXPECT_LE(l, 0.010 + 0.100 * 0.7071068);
    EXPECT_DOUBLE_EQ(l, m.latency(i + 1, i));
  }
}

TEST(ProximityMap, DistanceMatchesCoords) {
  Rng rng(4);
  ProximityMap m(5, rng);
  EXPECT_DOUBLE_EQ(m.distance(1, 3), torus_distance(m.coord(1), m.coord(3)));
}

}  // namespace
}  // namespace ert::net
