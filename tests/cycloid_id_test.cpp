#include "cycloid/id.h"

#include <gtest/gtest.h>

namespace ert::cycloid {
namespace {

TEST(IdSpace, Sizes) {
  IdSpace s(8);
  EXPECT_EQ(s.dimension(), 8);
  EXPECT_EQ(s.num_cycles(), 256u);
  EXPECT_EQ(s.size(), 2048u);  // the paper's n = d * 2^d
}

TEST(IdSpace, LinearRoundTrip) {
  IdSpace s(8);
  for (std::uint64_t lv = 0; lv < s.size(); lv += 37) {
    EXPECT_EQ(s.to_linear(s.from_linear(lv)), lv);
  }
  const CycloidId id{5, 0b10110100};
  EXPECT_EQ(s.from_linear(s.to_linear(id)), id);
}

TEST(IdSpace, LinearOrderGroupsCycles) {
  IdSpace s(8);
  // Same cycle occupies d consecutive linear slots.
  EXPECT_EQ(s.to_linear({0, 3}), 24u);
  EXPECT_EQ(s.to_linear({7, 3}), 31u);
  EXPECT_EQ(s.to_linear({0, 4}), 32u);
}

TEST(IdSpace, KeyToLinearWraps) {
  IdSpace s(8);
  EXPECT_EQ(s.key_to_linear(2048), 0u);
  EXPECT_EQ(s.key_to_linear(2049), 1u);
  EXPECT_LT(s.key_to_linear(~0ull), 2048u);
}

TEST(IdSpace, CubicalOkPaperExample) {
  // Fig. 2: node (4, 101-1-1010) has cubical neighbor (3, 101-0-xxxx).
  IdSpace s(8);
  const CycloidId owner{4, 0b10111010};
  for (std::uint64_t low = 0; low < 16; ++low) {
    EXPECT_TRUE(s.cubical_ok(owner, {3, 0b10100000 | low}));
  }
  // Wrong cyclic index.
  EXPECT_FALSE(s.cubical_ok(owner, {2, 0b10100000}));
  // Bit 4 not flipped.
  EXPECT_FALSE(s.cubical_ok(owner, {3, 0b10110000}));
  // High bits differ.
  EXPECT_FALSE(s.cubical_ok(owner, {3, 0b00100000}));
}

TEST(IdSpace, CyclicOkPaperExample) {
  // Fig. 2: cyclic neighbors of (4, 101-1-1010) are (3, 101-1-xxxx).
  IdSpace s(8);
  const CycloidId owner{4, 0b10111010};
  EXPECT_TRUE(s.cyclic_ok(owner, {3, 0b10111100}));
  EXPECT_TRUE(s.cyclic_ok(owner, {3, 0b10110011}));
  // Same cycle excluded (that's the leaf sets' role).
  EXPECT_FALSE(s.cyclic_ok(owner, {3, 0b10111010}));
  // Bits >= k must match.
  EXPECT_FALSE(s.cyclic_ok(owner, {3, 0b10101100}));
  EXPECT_FALSE(s.cyclic_ok(owner, {2, 0b10111100}));
}

TEST(IdSpace, KZeroHasNoCubicalOrCyclic) {
  IdSpace s(8);
  const CycloidId owner{0, 42};
  EXPECT_FALSE(s.cubical_ok(owner, {7, flip_bit(42, 0)}));
  EXPECT_FALSE(s.cyclic_ok(owner, {7, 43}));
}

TEST(IdSpace, ExpansionInverseOfSelection) {
  // The indegree-expansion id set (Sec. 3.2): node i (k, a) probes hosts
  // (k+1, ...) — verify the inverse relation: host j can take i as cubical
  // neighbor iff i satisfies cubical_ok(j, i).
  IdSpace s(6);
  const CycloidId i{3, 0b101000};
  // Paper example shape: i probes (4, 101-1-xx) for cubical inlinks
  // (bit 4 flipped relative to i.a, bits above preserved, below free).
  const CycloidId host_good{4, 0b111001};
  EXPECT_TRUE(s.cubical_ok(host_good, i));
  const CycloidId host_bad{4, 0b101001};  // bit 4 not flipped
  EXPECT_FALSE(s.cubical_ok(host_bad, i));
}

TEST(IdSpace, InsideLeafOk) {
  IdSpace s(8);
  EXPECT_TRUE(s.inside_leaf_ok({2, 7}, {5, 7}));
  EXPECT_FALSE(s.inside_leaf_ok({2, 7}, {2, 7}));  // self
  EXPECT_FALSE(s.inside_leaf_ok({2, 7}, {2, 8}));  // other cycle
}

TEST(IdSpace, CycleDistanceWraps) {
  IdSpace s(8);
  EXPECT_EQ(s.cycle_distance(0, 255), 1u);
  EXPECT_EQ(s.cycle_distance(0, 128), 128u);
  EXPECT_EQ(s.cycle_distance(10, 10), 0u);
}

TEST(IdSpace, OutsideLeafWindow) {
  IdSpace s(8);
  EXPECT_TRUE(s.outside_leaf_ok({0, 5}, {3, 6}, 1));
  EXPECT_TRUE(s.outside_leaf_ok({0, 5}, {3, 4}, 1));
  EXPECT_FALSE(s.outside_leaf_ok({0, 5}, {3, 7}, 1));
  EXPECT_TRUE(s.outside_leaf_ok({0, 5}, {3, 7}, 2));
  EXPECT_FALSE(s.outside_leaf_ok({0, 5}, {3, 5}, 1));  // same cycle
}

TEST(IdSpace, ToString) {
  IdSpace s(8);
  EXPECT_EQ(s.to_string({4, 0b10111010}), "(4,10111010)");
}

}  // namespace
}  // namespace ert::cycloid
