// Golden-trace regression tests: a small fixed-seed run of every protocol
// on Cycloid — plus the protocol matrix of the Kademlia and D1HT
// substrates — must reproduce its checked-in event stream byte for byte:
// the exact hop sequence plus the adaptation decisions. Any change to
// routing order, forwarding policy, adaptation timing, or Rng consumption
// shows up here as a readable JSONL diff instead of a silent metric shift.
//
// To regenerate after an intentional behavior change:
//   ERT_REGEN_GOLDEN=1 ./trace_golden_test
// then review the diff of tests/golden/*.jsonl like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "harness/experiment.h"
#include "trace/jsonl.h"
#include "trace/trace.h"

namespace ert::harness {
namespace {

using GoldenCase = std::tuple<SubstrateKind, Protocol>;

SimParams golden_params() {
  SimParams p;
  p.num_nodes = 40;
  p.dimension = fit_dimension(40);
  p.num_lookups = 24;
  p.lookup_rate = 8.0;
  p.seed = 11;
  return p;
}

/// File-safe protocol slug (to_string uses '/' in ERT names).
std::string slug(Protocol p) {
  switch (p) {
    case Protocol::kBase:  return "base";
    case Protocol::kNS:    return "ns";
    case Protocol::kVS:    return "vs";
    case Protocol::kErtA:  return "ert-a";
    case Protocol::kErtF:  return "ert-f";
    case Protocol::kErtAF: return "ert-af";
  }
  return "unknown";
}

/// Cycloid keeps the original bare filenames so the six pre-existing golden
/// files stay byte-identical; the newer substrates get a kind prefix.
std::string golden_path(const GoldenCase& c) {
  const auto [kind, proto] = c;
  std::string name = "trace_";
  if (kind == SubstrateKind::kKademlia) name += "kademlia_";
  if (kind == SubstrateKind::kD1ht) name += "d1ht_";
  return std::string(ERT_GOLDEN_DIR) + "/" + name + slug(proto) + ".jsonl";
}

class GoldenTraceTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTraceTest, MatchesCheckedInTrace) {
  const auto [kind, proto] = GetParam();
  ExperimentOptions o;
  o.trace.enabled = true;
  // Query spans, the per-hop chain, and the adaptation stream: the events
  // that pin routing behavior. Run/link/churn stay out so the golden files
  // focus on the trajectory rather than construction details.
  o.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                       static_cast<std::uint32_t>(trace::Category::kHop) |
                       static_cast<std::uint32_t>(trace::Category::kAdapt);
  const auto r = run_experiment(golden_params(), proto, kind, o);
  ASSERT_EQ(r.trace_dropped, 0u)
      << "golden run must fit the ring; raise o.trace.capacity";
  ASSERT_GT(r.trace_records.size(), 0u);
  const std::string got = trace::to_jsonl(r.trace_records);

  const std::string path = golden_path(GetParam());
  if (std::getenv("ERT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with ERT_REGEN_GOLDEN=1 to create it)";
  std::ostringstream want;
  want << in.rdbuf();
  const std::string want_str = want.str();
  EXPECT_EQ(got.size(), want_str.size());
  if (got != want_str) {
    // Point at the first differing line rather than dumping both streams.
    std::istringstream ga(got), wa(want_str);
    std::string gl, wl;
    std::size_t lineno = 0;
    while (true) {
      const bool gok = static_cast<bool>(std::getline(ga, gl));
      const bool wok = static_cast<bool>(std::getline(wa, wl));
      ++lineno;
      if (!gok && !wok) break;
      ASSERT_EQ(gok, wok) << "trace length differs at line " << lineno;
      ASSERT_EQ(gl, wl) << "first divergence at line " << lineno;
    }
  }
}

TEST_P(GoldenTraceTest, GoldenRunIsThreadCountInvariant) {
  const auto [kind, proto] = GetParam();
  // The same fixed-seed run through the averaged path must serialize to
  // the same bytes for 1 and 4 worker threads.
  ExperimentOptions o;
  o.trace.enabled = true;
  o.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                       static_cast<std::uint32_t>(trace::Category::kHop) |
                       static_cast<std::uint32_t>(trace::Category::kAdapt);
  const auto one = run_averaged(golden_params(), proto, 2, kind, 1, o);
  const auto four = run_averaged(golden_params(), proto, 2, kind, 4, o);
  EXPECT_EQ(trace::to_jsonl(one.trace_records),
            trace::to_jsonl(four.trace_records));
}

INSTANTIATE_TEST_SUITE_P(
    AllSubstrates, GoldenTraceTest,
    ::testing::Values(
        // Cycloid: the full six-protocol matrix (VS is Cycloid-only).
        std::make_tuple(SubstrateKind::kCycloid, Protocol::kBase),
        std::make_tuple(SubstrateKind::kCycloid, Protocol::kNS),
        std::make_tuple(SubstrateKind::kCycloid, Protocol::kVS),
        std::make_tuple(SubstrateKind::kCycloid, Protocol::kErtA),
        std::make_tuple(SubstrateKind::kCycloid, Protocol::kErtF),
        std::make_tuple(SubstrateKind::kCycloid, Protocol::kErtAF),
        // Kademlia: bucket contacts give NS its selection freedom.
        std::make_tuple(SubstrateKind::kKademlia, Protocol::kBase),
        std::make_tuple(SubstrateKind::kKademlia, Protocol::kNS),
        std::make_tuple(SubstrateKind::kKademlia, Protocol::kErtA),
        std::make_tuple(SubstrateKind::kKademlia, Protocol::kErtF),
        std::make_tuple(SubstrateKind::kKademlia, Protocol::kErtAF),
        // D1HT: no NS (a full mesh has no neighbor selection freedom).
        std::make_tuple(SubstrateKind::kD1ht, Protocol::kBase),
        std::make_tuple(SubstrateKind::kD1ht, Protocol::kErtA),
        std::make_tuple(SubstrateKind::kD1ht, Protocol::kErtF),
        std::make_tuple(SubstrateKind::kD1ht, Protocol::kErtAF)),
    [](const auto& info) {
      std::string s = std::string(to_string(std::get<0>(info.param))) + "_" +
                      slug(std::get<1>(info.param));
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

}  // namespace
}  // namespace ert::harness
