// Golden-trace regression tests: a small fixed-seed run of every protocol
// on Cycloid must reproduce its checked-in event stream byte for byte —
// the exact hop sequence plus the adaptation decisions. Any change to
// routing order, forwarding policy, adaptation timing, or Rng consumption
// shows up here as a readable JSONL diff instead of a silent metric shift.
//
// To regenerate after an intentional behavior change:
//   ERT_REGEN_GOLDEN=1 ./trace_golden_test
// then review the diff of tests/golden/*.jsonl like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "trace/jsonl.h"
#include "trace/trace.h"

namespace ert::harness {
namespace {

SimParams golden_params() {
  SimParams p;
  p.num_nodes = 40;
  p.dimension = fit_dimension(40);
  p.num_lookups = 24;
  p.lookup_rate = 8.0;
  p.seed = 11;
  return p;
}

/// File-safe protocol slug (to_string uses '/' in ERT names).
std::string slug(Protocol p) {
  switch (p) {
    case Protocol::kBase:  return "base";
    case Protocol::kNS:    return "ns";
    case Protocol::kVS:    return "vs";
    case Protocol::kErtA:  return "ert-a";
    case Protocol::kErtF:  return "ert-f";
    case Protocol::kErtAF: return "ert-af";
  }
  return "unknown";
}

class GoldenTraceTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(GoldenTraceTest, MatchesCheckedInTrace) {
  ExperimentOptions o;
  o.trace.enabled = true;
  // Query spans, the per-hop chain, and the adaptation stream: the events
  // that pin routing behavior. Run/link/churn stay out so the golden files
  // focus on the trajectory rather than construction details.
  o.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                       static_cast<std::uint32_t>(trace::Category::kHop) |
                       static_cast<std::uint32_t>(trace::Category::kAdapt);
  const auto r = run_experiment(golden_params(), GetParam(),
                                SubstrateKind::kCycloid, o);
  ASSERT_EQ(r.trace_dropped, 0u)
      << "golden run must fit the ring; raise o.trace.capacity";
  ASSERT_GT(r.trace_records.size(), 0u);
  const std::string got = trace::to_jsonl(r.trace_records);

  const std::string path =
      std::string(ERT_GOLDEN_DIR) + "/trace_" + slug(GetParam()) + ".jsonl";
  if (std::getenv("ERT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with ERT_REGEN_GOLDEN=1 to create it)";
  std::ostringstream want;
  want << in.rdbuf();
  const std::string want_str = want.str();
  EXPECT_EQ(got.size(), want_str.size());
  if (got != want_str) {
    // Point at the first differing line rather than dumping both streams.
    std::istringstream ga(got), wa(want_str);
    std::string gl, wl;
    std::size_t lineno = 0;
    while (true) {
      const bool gok = static_cast<bool>(std::getline(ga, gl));
      const bool wok = static_cast<bool>(std::getline(wa, wl));
      ++lineno;
      if (!gok && !wok) break;
      ASSERT_EQ(gok, wok) << "trace length differs at line " << lineno;
      ASSERT_EQ(gl, wl) << "first divergence at line " << lineno;
    }
  }
}

TEST_P(GoldenTraceTest, GoldenRunIsThreadCountInvariant) {
  // The same fixed-seed run through the averaged path must serialize to
  // the same bytes for 1 and 4 worker threads.
  ExperimentOptions o;
  o.trace.enabled = true;
  o.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                       static_cast<std::uint32_t>(trace::Category::kHop) |
                       static_cast<std::uint32_t>(trace::Category::kAdapt);
  const auto one = run_averaged(golden_params(), GetParam(), 2,
                                SubstrateKind::kCycloid, 1, o);
  const auto four = run_averaged(golden_params(), GetParam(), 2,
                                 SubstrateKind::kCycloid, 4, o);
  EXPECT_EQ(trace::to_jsonl(one.trace_records),
            trace::to_jsonl(four.trace_records));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenTraceTest,
    ::testing::Values(Protocol::kBase, Protocol::kNS, Protocol::kVS,
                      Protocol::kErtA, Protocol::kErtF, Protocol::kErtAF),
    [](const auto& info) {
      std::string s = slug(info.param);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

}  // namespace
}  // namespace ert::harness
