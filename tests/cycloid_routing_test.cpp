// Property tests for Cycloid routing: every lookup terminates at the
// responsible node within a small hop bound, on full networks, sparse
// networks, every neighbor policy, and after churn.
#include <gtest/gtest.h>

#include "cycloid/overlay.h"

namespace ert::cycloid {
namespace {

using dht::NodeIndex;

struct RouteResult {
  NodeIndex final = dht::kNoNode;
  std::size_t hops = 0;
  bool used_emergency = false;
};

/// Follows the deterministic (front-candidate) route.
RouteResult route(const Overlay& o, NodeIndex src, std::uint64_t key,
                  std::size_t max_hops) {
  RouteResult r;
  NodeIndex cur = src;
  RouteCtx ctx;
  while (r.hops < max_hops) {
    const RouteStep step = o.route_step(cur, key, ctx);
    if (step.arrived) {
      r.final = cur;
      return r;
    }
    if (step.entry_index == kNoEntry) r.used_emergency = true;
    EXPECT_FALSE(step.candidates.empty());
    cur = step.candidates.front();
    ++r.hops;
  }
  return r;  // final stays kNoNode: did not terminate
}

Overlay make_full(int d, NeighborPolicy policy = NeighborPolicy::kNearest) {
  OverlayOptions opts;
  opts.dimension = d;
  opts.policy = policy;
  opts.enforce_indegree_bounds = policy != NeighborPolicy::kNearest;
  Overlay o(opts);
  IdSpace space(d);
  Rng caps(7);
  for (std::uint64_t lv = 0; lv < space.size(); ++lv)
    o.add_node(space.from_linear(lv), caps.uniform(0.2, 5.0), 64, 0.8);
  Rng rng(1);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  return o;
}

Overlay make_sparse(int d, std::size_t n, std::uint64_t seed) {
  OverlayOptions opts;
  opts.dimension = d;
  Overlay o(opts);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) o.add_node_random(rng, 1.0, 64, 0.8);
  for (NodeIndex i = 0; i < o.num_slots(); ++i) o.build_table(i, rng);
  return o;
}

class FullRoutingTest : public ::testing::TestWithParam<int> {};

TEST_P(FullRoutingTest, AllLookupsArriveWithinBound) {
  const int d = GetParam();
  Overlay o = make_full(d);
  Rng rng(42);
  const std::size_t bound = 4 * static_cast<std::size_t>(d) + 8;
  std::size_t total_hops = 0;
  const int lookups = 500;
  for (int t = 0; t < lookups; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.space().size();
    const RouteResult r = route(o, src, key, bound);
    ASSERT_EQ(r.final, o.responsible(key))
        << "lookup failed from " << o.space().to_string(o.node(src).id)
        << " to key " << key;
    total_hops += r.hops;
  }
  // Average path length should be O(d) — sanity check it is far below the
  // bound.
  EXPECT_LT(static_cast<double>(total_hops) / lookups,
            static_cast<double>(2 * d));
}

INSTANTIATE_TEST_SUITE_P(Dimensions, FullRoutingTest,
                         ::testing::Values(4, 6, 8, 10));

class SparseRoutingTest
    : public ::testing::TestWithParam<std::pair<int, std::size_t>> {};

TEST_P(SparseRoutingTest, AllLookupsArrive) {
  const auto [d, n] = GetParam();
  Overlay o = make_sparse(d, n, 1234 + n);
  Rng rng(5);
  const std::size_t bound = 8 * static_cast<std::size_t>(d) + n / 4 + 16;
  for (int t = 0; t < 300; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.space().size();
    const RouteResult r = route(o, src, key, bound);
    ASSERT_EQ(r.final, o.responsible(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Occupancies, SparseRoutingTest,
    ::testing::Values(std::pair<int, std::size_t>{6, 48},
                      std::pair<int, std::size_t>{7, 200},
                      std::pair<int, std::size_t>{8, 512},
                      std::pair<int, std::size_t>{8, 1500},
                      std::pair<int, std::size_t>{9, 2500}));

TEST(CycloidRouting, AllPoliciesRouteCorrectly) {
  for (auto policy :
       {NeighborPolicy::kNearest, NeighborPolicy::kSpareIndegree,
        NeighborPolicy::kCapacityBiased}) {
    Overlay o = make_full(6, policy);
    Rng rng(77);
    for (int t = 0; t < 200; ++t) {
      const NodeIndex src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.space().size();
      const RouteResult r = route(o, src, key, 40);
      ASSERT_EQ(r.final, o.responsible(key));
    }
  }
}

TEST(CycloidRouting, AnyCandidateChoiceStillArrives) {
  // ERT forwarding picks *random* candidates: verify the hop bound holds
  // for arbitrary (not just front) choices.
  Overlay o = make_full(6);
  Rng rng(99);
  const std::size_t bound = 6 * 6 + 30;
  for (int t = 0; t < 300; ++t) {
    NodeIndex cur = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.space().size();
    std::size_t hops = 0;
    RouteCtx ctx;
    for (;;) {
      const RouteStep step = o.route_step(cur, key, ctx);
      if (step.arrived) break;
      ASSERT_FALSE(step.candidates.empty());
      cur = step.candidates[rng.index(step.candidates.size())];
      ASSERT_LE(++hops, bound) << "random-candidate walk did not terminate";
    }
    ASSERT_EQ(cur, o.responsible(key));
  }
}

TEST(CycloidRouting, FullNetworkNeedsNoEmergencyHops) {
  Overlay o = make_full(8);
  Rng rng(3);
  for (int t = 0; t < 300; ++t) {
    const NodeIndex src = rng.index(o.num_slots());
    const std::uint64_t key = rng.bits() % o.space().size();
    const RouteResult r = route(o, src, key, 60);
    ASSERT_EQ(r.final, o.responsible(key));
    EXPECT_FALSE(r.used_emergency);
  }
}

TEST(CycloidRouting, SurvivesGracefulChurn) {
  Overlay o = make_sparse(7, 300, 5);
  Rng rng(6);
  for (int round = 0; round < 10; ++round) {
    // Leave a few nodes gracefully, join a few.
    for (int i = 0; i < 5; ++i) {
      NodeIndex v = rng.index(o.num_slots());
      if (o.node(v).alive && o.alive_count() > 10) o.leave_graceful(v);
    }
    for (int i = 0; i < 5; ++i) {
      const NodeIndex j = o.add_node_random(rng, 1.0, 64, 0.8);
      o.build_table(j, rng);
    }
    // All lookups still arrive.
    for (int t = 0; t < 50; ++t) {
      NodeIndex src = rng.index(o.num_slots());
      while (!o.node(src).alive) src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.space().size();
      const RouteResult r = route(o, src, key, 400);
      ASSERT_EQ(r.final, o.responsible(key));
    }
  }
}

TEST(CycloidRouting, RouteToOwnKeyIsZeroHops) {
  Overlay o = make_full(6);
  const NodeIndex n = 50;
  const std::uint64_t key = o.space().to_linear(o.node(n).id);
  RouteCtx ctx;
  const RouteStep s = o.route_step(n, key, ctx);
  EXPECT_TRUE(s.arrived);
}

TEST(CycloidRouting, PathLengthGrowsSlowlyWithDimension) {
  // O(d) diameter: doubling the network should add O(1) hops.
  double avg_small = 0, avg_large = 0;
  for (auto [d, out] : {std::pair<int, double*>{6, &avg_small},
                        std::pair<int, double*>{9, &avg_large}}) {
    Overlay o = make_full(d);
    Rng rng(8);
    std::size_t hops = 0;
    const int lookups = 300;
    for (int t = 0; t < lookups; ++t) {
      const NodeIndex src = rng.index(o.num_slots());
      const std::uint64_t key = rng.bits() % o.space().size();
      const RouteResult r = route(o, src, key, 80);
      ASSERT_NE(r.final, dht::kNoNode);
      hops += r.hops;
    }
    *out = static_cast<double>(hops) / lookups;
  }
  // d 6 -> 9 multiplies n by ~12; hops should grow by well under 2x.
  EXPECT_LT(avg_large, avg_small * 2.0);
}

}  // namespace
}  // namespace ert::cycloid
