#include "common/bitops.h"

#include <gtest/gtest.h>

namespace ert {
namespace {

TEST(BitOps, MsbDiffBasics) {
  EXPECT_EQ(msb_diff(0, 0), -1);
  EXPECT_EQ(msb_diff(5, 5), -1);
  EXPECT_EQ(msb_diff(0, 1), 0);
  EXPECT_EQ(msb_diff(0b1000, 0b0000), 3);
  EXPECT_EQ(msb_diff(0b1010, 0b1000), 1);
  EXPECT_EQ(msb_diff(~0ull, 0), 63);
}

TEST(BitOps, MsbDiffIsSymmetric) {
  for (std::uint64_t a : {0ull, 1ull, 0xffull, 0xdeadbeefull}) {
    for (std::uint64_t b : {0ull, 2ull, 0x100ull, 0xcafef00dull}) {
      EXPECT_EQ(msb_diff(a, b), msb_diff(b, a));
    }
  }
}

TEST(BitOps, BitAt) {
  EXPECT_EQ(bit_at(0b1010, 0), 0);
  EXPECT_EQ(bit_at(0b1010, 1), 1);
  EXPECT_EQ(bit_at(0b1010, 3), 1);
  EXPECT_EQ(bit_at(0b1010, 4), 0);
}

TEST(BitOps, FlipBit) {
  EXPECT_EQ(flip_bit(0b1010, 0), 0b1011u);
  EXPECT_EQ(flip_bit(0b1010, 1), 0b1000u);
  EXPECT_EQ(flip_bit(flip_bit(0xabcd, 7), 7), 0xabcdu);
}

TEST(BitOps, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xffu);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(BitOps, SameHighBits) {
  // width 8, compare bits >= 4
  EXPECT_TRUE(same_high_bits(0b10110000, 0b10111111, 4, 8));
  EXPECT_FALSE(same_high_bits(0b10110000, 0b10100000, 4, 8));
  // pos 0 compares everything
  EXPECT_FALSE(same_high_bits(0b10110001, 0b10110000, 0, 8));
  EXPECT_TRUE(same_high_bits(0b10110001, 0b10110001, 0, 8));
  // pos == width compares nothing
  EXPECT_TRUE(same_high_bits(0xff, 0x00, 8, 8));
}

TEST(BitOps, CommonPrefixLen) {
  EXPECT_EQ(common_prefix_len(0b1010, 0b1010, 4), 4);
  EXPECT_EQ(common_prefix_len(0b1010, 0b1011, 4), 3);
  EXPECT_EQ(common_prefix_len(0b1010, 0b0010, 4), 0);
  EXPECT_EQ(common_prefix_len(0b1010, 0b1110, 4), 1);
}

TEST(BitOps, CommonDigitPrefix) {
  // width 8, base 4 (2 bits/digit): digits of 0b10'11'01'00 = 2,3,1,0
  EXPECT_EQ(common_digit_prefix(0b10110100, 0b10110100, 8, 2), 4);
  EXPECT_EQ(common_digit_prefix(0b10110100, 0b10110111, 8, 2), 3);
  EXPECT_EQ(common_digit_prefix(0b10110100, 0b10000100, 8, 2), 1);
  EXPECT_EQ(common_digit_prefix(0b10110100, 0b00110100, 8, 2), 0);
}

TEST(BitOps, DigitAt) {
  // width 8, 2 bits/digit, value 0b10'11'01'00
  EXPECT_EQ(digit_at(0b10110100, 0, 8, 2), 2u);
  EXPECT_EQ(digit_at(0b10110100, 1, 8, 2), 3u);
  EXPECT_EQ(digit_at(0b10110100, 2, 8, 2), 1u);
  EXPECT_EQ(digit_at(0b10110100, 3, 8, 2), 0u);
}

}  // namespace
}  // namespace ert
