// Cycloid id space (Shen, Xu, Chen: "Cycloid: a constant-degree P2P overlay
// network", and Sec. 3.2 of the ERT paper).
//
// A Cycloid of dimension d has d * 2^d ids arranged as a cube-connected
// cycles graph: each id is a pair (k, a) with cyclic index k in [0, d) and
// cubical index a in [0, 2^d). Ids are linearized as lv = a * d + k so that
// each cycle (fixed a) occupies a contiguous block — the order used for key
// responsibility and leaf sets.
//
// Neighbor constraints (ERT paper, Sec. 3.2 and Fig. 2), for node (k, a)
// with k >= 1:
//  * cubical neighbor:  (k-1, a_{d-1} ... !a_k  x..x) — bit k flipped,
//    bits above k preserved, bits below k free;
//  * cyclic neighbors:  (k-1, a_{d-1} ... a_k  x..x) — bits >= k preserved,
//    bits below k free.
// Nodes with k == 0 have neither (the original Cycloid leaves them null) and
// rely on their leaf sets.
#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.h"

namespace ert::cycloid {

struct CycloidId {
  int k = 0;            ///< cyclic index in [0, d)
  std::uint64_t a = 0;  ///< cubical index in [0, 2^d)

  friend bool operator==(const CycloidId&, const CycloidId&) = default;
};

/// Static description of a Cycloid id space.
class IdSpace {
 public:
  explicit IdSpace(int dimension);

  int dimension() const { return d_; }
  std::uint64_t num_cycles() const { return std::uint64_t{1} << d_; }
  std::uint64_t size() const { return num_cycles() * static_cast<std::uint64_t>(d_); }

  std::uint64_t to_linear(CycloidId id) const {
    return id.a * static_cast<std::uint64_t>(d_) +
           static_cast<std::uint64_t>(id.k);
  }
  CycloidId from_linear(std::uint64_t lv) const {
    return CycloidId{static_cast<int>(lv % static_cast<std::uint64_t>(d_)),
                     lv / static_cast<std::uint64_t>(d_)};
  }

  /// Reduces an arbitrary key to an id in this space.
  std::uint64_t key_to_linear(std::uint64_t key) const { return key % size(); }

  // --- neighbor constraints -------------------------------------------------

  /// Can `cand` sit in the *cubical* entry of `owner`'s routing table?
  bool cubical_ok(CycloidId owner, CycloidId cand) const;

  /// Can `cand` sit in a *cyclic* entry of `owner`'s routing table?
  bool cyclic_ok(CycloidId owner, CycloidId cand) const;

  /// Inside leaf set: same cycle.
  bool inside_leaf_ok(CycloidId owner, CycloidId cand) const {
    return owner.a == cand.a && !(owner == cand);
  }

  /// Outside leaf set: a different cycle within `window` cycles (cubical
  /// distance on the 2^d cycle ring).
  bool outside_leaf_ok(CycloidId owner, CycloidId cand,
                       std::uint64_t window = 1) const;

  /// Cubical ring distance between two cycles (wrap-around).
  std::uint64_t cycle_distance(std::uint64_t a1, std::uint64_t a2) const;

  std::string to_string(CycloidId id) const;

 private:
  int d_;
};

}  // namespace ert::cycloid
