#include "cycloid/id.h"

#include <cassert>

namespace ert::cycloid {

IdSpace::IdSpace(int dimension) : d_(dimension) {
  assert(dimension >= 2 && dimension <= 24);
}

bool IdSpace::cubical_ok(CycloidId owner, CycloidId cand) const {
  if (owner.k < 1) return false;
  if (cand.k != owner.k - 1) return false;
  if (bit_at(cand.a, owner.k) == bit_at(owner.a, owner.k)) return false;
  return same_high_bits(cand.a, owner.a, owner.k + 1, d_);
}

bool IdSpace::cyclic_ok(CycloidId owner, CycloidId cand) const {
  if (owner.k < 1) return false;
  if (cand.k != owner.k - 1) return false;
  if (cand.a == owner.a) return false;  // same cycle is the leaf sets' role
  return same_high_bits(cand.a, owner.a, owner.k, d_);
}

std::uint64_t IdSpace::cycle_distance(std::uint64_t a1, std::uint64_t a2) const {
  const std::uint64_t n = num_cycles();
  const std::uint64_t fwd = a2 >= a1 ? a2 - a1 : n - a1 + a2;
  return std::min(fwd, n - fwd);
}

bool IdSpace::outside_leaf_ok(CycloidId owner, CycloidId cand,
                              std::uint64_t window) const {
  if (owner.a == cand.a) return false;
  return cycle_distance(owner.a, cand.a) <= window;
}

std::string IdSpace::to_string(CycloidId id) const {
  std::string bits;
  for (int i = d_ - 1; i >= 0; --i) bits.push_back(bit_at(id.a, i) ? '1' : '0');
  return "(" + std::to_string(id.k) + "," + bits + ")";
}

}  // namespace ert::cycloid
