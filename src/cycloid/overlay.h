// Cycloid overlay with elastic routing tables.
//
// This is the substrate the paper's evaluation runs on (Sec. 5, Table 2:
// dimension 8, n = 2048 = d * 2^d). The overlay manages:
//
//  * membership: a RingDirectory over linearized ids, join (random free id),
//    graceful leave, and silent failure (stale links remain, producing the
//    timeouts measured in Sec. 5.5);
//  * elastic routing tables: four entries per node (cubical, cyclic, inside
//    leaf, outside leaf) whose candidate sets grow and shrink;
//  * indegree mechanics: the acceptance bound d_inf - d >= 1, backward
//    fingers mirroring every inlink, reverse-neighbor enumeration for the
//    indegree expansion algorithm (Sec. 3.2, Algorithm 1), and shedding for
//    periodic adaptation (Sec. 3.3, Algorithm 3);
//  * routing: one `route_step` call per hop returning the entry the query
//    must leave through and its candidate set, preference-ordered so that
//    deterministic protocols (Base/NS/VS) take the front element while ERT
//    applies randomized forwarding over the whole set.
//
// Routing follows Cycloid's three phases. With current node (k, a) routing
// toward the owner (l, b) of the key:
//   ascending   k < h           : climb the local cycle via inside leaves
//   descending  k == h          : cubical link (flips bit h, k -> k-1)
//               k > h           : cyclic link (preserves bits >= k, k -> k-1)
//   cycle walk  a == b          : leaf-set walk to the owner
// where h is the most significant differing bit between a and b. Since each
// descending hop fixes the invariant h < k and decreases k, and the walk
// strictly decreases ring-position distance (with a directory-adjacent
// emergency step when an entry has no progress candidate), every lookup
// terminates; tests assert hop bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "cycloid/id.h"
#include "dht/ring.h"
#include "dht/route_scratch.h"
#include "dht/routing_entry.h"
#include "dht/stable_order.h"
#include "dht/stamp_set.h"
#include "dht/types.h"
#include "ert/indegree.h"

namespace ert::trace {
class TraceSink;
}

namespace ert::wire {
class ByteMeter;
}

namespace ert::cycloid {

/// Entry-slot layout shared by every node.
inline constexpr std::size_t kCubicalEntry = 0;
inline constexpr std::size_t kCyclicEntry = 1;
inline constexpr std::size_t kInsideLeafEntry = 2;
inline constexpr std::size_t kOutsideLeafEntry = 3;
inline constexpr std::size_t kNumEntries = 4;
/// Sentinel entry index for emergency hops (no table entry involved).
inline constexpr std::size_t kNoEntry = kNumEntries;

/// How table-construction chooses among eligible neighbors.
enum class NeighborPolicy {
  kNearest,         ///< Base: plain Cycloid, nearest eligible id.
  kSpareIndegree,   ///< ERT: nearest eligible whose indegree bound has room.
  kCapacityBiased,  ///< NS [7]: highest-capacity eligible with room.
};

struct OverlayOptions {
  int dimension = 8;
  NeighborPolicy policy = NeighborPolicy::kNearest;
  /// Enforce d_inf - d >= 1 when creating inlinks (ERT, NS).
  bool enforce_indegree_bounds = false;
  /// How many cyclic / leaf candidates per direction the *base* table build
  /// creates (the original Cycloid uses 1 of each, outdegree 7 total).
  std::size_t base_fanout = 1;
};

struct OverlayNode {
  CycloidId id;
  bool alive = false;
  bool table_built = false;  ///< has build_table run for this node?
  double capacity = 1.0;  ///< normalized capacity (drives NS bias).
  dht::ElasticTable table;
  core::IndegreeBudget budget;
  core::BackwardFingerList inlinks;
};

struct RouteStep {
  bool arrived = false;
  /// Entry the query leaves through; kNoEntry for emergency hops.
  std::size_t entry_index = kNoEntry;
  /// Preference-ordered candidate next hops (front = deterministic choice).
  std::vector<dht::NodeIndex> candidates;
};

/// Per-query routing state carried with the message (like the overloaded
/// set A of Algorithm 4). The phase advances monotonically, which is what
/// makes termination provable: ascending strictly raises the cyclic index,
/// descending strictly lowers it, and the walk strictly reduces
/// ring-position distance to the owner.
struct RouteCtx {
  enum class Phase : std::uint8_t { kAscend, kDescend, kWalk };
  Phase phase = Phase::kAscend;
};

/// (host node, entry slot) pair the expansion algorithm may probe.
using ExpansionTarget = std::pair<dht::NodeIndex, std::size_t>;

class Overlay {
 public:
  using PhysDistFn = std::function<double(dht::NodeIndex, dht::NodeIndex)>;

  explicit Overlay(OverlayOptions opts, PhysDistFn phys_dist = {});

  // --- membership -----------------------------------------------------------

  /// Adds a node at `id` (must be free). `max_indegree`/`beta` configure the
  /// node's budget (pass a large bound for protocols that ignore it).
  dht::NodeIndex add_node(CycloidId id, double capacity, int max_indegree,
                          double beta);

  /// Adds a node at a uniformly random free id.
  dht::NodeIndex add_node_random(Rng& rng, double capacity, int max_indegree,
                                 double beta);

  /// Builds the basic routing table for `i` per the configured policy
  /// (join step 1). Also back-fills: nodes that could use `i` in an entry
  /// with no live candidate adopt it (keeps sparse networks routable).
  void build_table(dht::NodeIndex i, Rng& rng);

  /// Indegree expansion (join step 2 / adaptation growth): probes reverse
  /// neighbors until `want` new inlinks are gained or `max_probes` targets
  /// are exhausted. Returns the number gained.
  int expand_indegree(dht::NodeIndex i, int want, std::size_t max_probes);

  /// Sheds up to `count` inlinks, evicting the backward fingers with the
  /// longest logical (then physical) distance. A node keeps at least one
  /// inlink (its keys must stay reachable), and hosts whose entry would be
  /// emptied repair it immediately (the maintenance the paper's "ask
  /// backward fingers to delete" implies). Returns the number shed.
  int shed_indegree(dht::NodeIndex i, int count);

  /// Graceful departure: all links to and from `i` are removed.
  void leave_graceful(dht::NodeIndex i);

  /// Silent failure: `i` leaves the directory but stale links to it remain
  /// in other tables until discovered (timeout model, Sec. 5.5).
  void fail(dht::NodeIndex i);

  /// Purges a discovered-dead neighbor from `at`'s table and backward
  /// fingers.
  void purge_dead(dht::NodeIndex at, dht::NodeIndex dead);

  /// Refills entry `slot` of `i` from the directory if it has no live
  /// candidate (used after purges and when shedding empties a host's slot).
  void repair_entry(dht::NodeIndex i, std::size_t slot);

  // --- routing ---------------------------------------------------------------

  dht::NodeIndex responsible(std::uint64_t key) const;

  /// One routing hop. `ctx` is the query's carried phase state; pass a
  /// fresh RouteCtx when the lookup starts.
  RouteStep route_step(dht::NodeIndex cur, std::uint64_t key,
                       RouteCtx& ctx) const;

  /// Allocation-free hop: identical routing decision, but the candidate
  /// set is written into `scratch.candidates` instead of a fresh vector.
  /// Steady state allocates nothing once the scratch buffers are warm.
  dht::RouteStepInfo route_step(dht::NodeIndex cur, std::uint64_t key,
                                RouteCtx& ctx,
                                dht::RouteScratch& scratch) const;

  // --- elasticity helpers -----------------------------------------------------

  /// Enumerates up to `max_targets` (host, slot) pairs that could take `i`
  /// as a routing-table neighbor, nearest hosts first.
  std::vector<ExpansionTarget> expansion_targets(dht::NodeIndex i,
                                                 std::size_t max_targets) const;

  /// Creates the link from -> to in `slot`, mirroring the backward finger
  /// and indegree. When `respect_budget`, fails if `to` has no spare
  /// indegree. Returns false if ineligible, duplicate, or over budget.
  bool link(dht::NodeIndex from, std::size_t slot, dht::NodeIndex to,
            bool respect_budget);

  /// Removes the link from -> to everywhere in `from`'s table, fixing the
  /// backward finger and indegree of `to`.
  bool unlink(dht::NodeIndex from, dht::NodeIndex to);

  /// True iff `cand` may legally sit in entry `slot` of `owner`.
  bool eligible(dht::NodeIndex owner, std::size_t slot,
                dht::NodeIndex cand) const;

  // --- introspection -----------------------------------------------------------

  const OverlayNode& node(dht::NodeIndex i) const { return nodes_.at(i); }
  OverlayNode& mutable_node(dht::NodeIndex i) { return nodes_.at(i); }

  /// Backing store for all pooled candidate / backward-finger sets
  /// (dht/slab.h); every table or inlink operation threads through it.
  core::LinkArena& arena() { return arena_; }
  const core::LinkArena& arena() const { return arena_; }

  std::size_t num_slots() const { return nodes_.size(); }
  std::size_t alive_count() const { return alive_; }
  const IdSpace& space() const { return space_; }
  const dht::RingDirectory& directory() const { return directory_; }

  /// Batched construction: between these calls, add_node stages directory
  /// inserts so the ring directory is built once from the sorted batch
  /// (O(n log n) total) instead of per-insert; `expected` pre-sizes the
  /// slot vector and staging buffers. Queries stay exact throughout.
  void begin_bulk_insert(std::size_t expected) {
    if (expected > 0) nodes_.reserve(nodes_.size() + expected);
    directory_.begin_bulk(expected);
    for (auto& cd : class_dirs_)
      cd.begin_bulk(expected / class_dirs_.size() + 1);
  }
  void end_bulk_insert() {
    directory_.end_bulk();
    for (auto& cd : class_dirs_) cd.end_bulk();
  }

  /// Logical distance between two nodes: ring distance of linear ids.
  std::uint64_t logical_distance(dht::NodeIndex a, dht::NodeIndex b) const;

  /// Logical distance from a node to a key's owner position.
  std::uint64_t logical_distance_to_key(dht::NodeIndex a,
                                        std::uint64_t key) const;

  double physical_distance(dht::NodeIndex a, dht::NodeIndex b) const {
    return phys_dist_ ? phys_dist_(a, b) : 0.0;
  }

  /// Verifies internal invariants (link symmetry, budget consistency);
  /// aborts via assert on violation. Used by tests.
  void check_invariants() const;

  /// Installs a structured-trace sink for the ERT elasticity path
  /// (link.adopt / link.shed events from expand_indegree / shed_indegree);
  /// null (the default) disables emission. The sink only observes — it
  /// never changes overlay behavior. See docs/TRACING.md.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }
  void set_meter(wire::ByteMeter* meter) { meter_ = meter; }

 private:
  std::uint64_t lv(dht::NodeIndex i) const { return space_.to_linear(nodes_[i].id); }

  /// All alive nodes eligible for entry `slot` of `owner`, preference-
  /// ordered per the configured policy. Returns a reference to warm member
  /// scratch (ec_out_), valid until the next call on this overlay.
  const std::vector<dht::NodeIndex>& eligible_candidates(dht::NodeIndex owner,
                                                         std::size_t slot) const;

  /// Nearest occupied cycles != `a` (up to `count` per side), into `out`.
  void nearby_cycles(std::uint64_t a, std::size_t count,
                     std::vector<std::uint64_t>& out) const;

  /// Alive members of cycle `a` (indices), ascending k, into `out`.
  void cycle_members(std::uint64_t a,
                     std::vector<dht::NodeIndex>& out) const;

  /// Scratch form of expansion_targets (same enumeration, warm buffers).
  void expansion_targets_into(dht::NodeIndex i, std::size_t max_targets,
                              std::vector<ExpansionTarget>& out) const;

  void order_by_policy(dht::NodeIndex owner,
                       std::vector<dht::NodeIndex>& cands) const;

  OverlayOptions opts_;
  IdSpace space_;
  PhysDistFn phys_dist_;
  dht::RingDirectory directory_;
  /// Secondary index: class_dirs_[k] holds the cubical indices `a` of the
  /// occupied ids with cyclic index k. Since linear id = a*d + k, a cubical
  /// block scan restricted to class k (the shape of every cubical/cyclic
  /// candidate query) walks exactly the matching ids here instead of
  /// filtering the d-times-denser main directory. Kept in lockstep with
  /// directory_ at every insert/erase; never consulted for routing state.
  std::vector<dht::RingDirectory> class_dirs_;
  std::vector<OverlayNode> nodes_;
  std::size_t alive_ = 0;
  trace::TraceSink* trace_ = nullptr;
  wire::ByteMeter* meter_ = nullptr;
  core::LinkArena arena_;
  // Warm scratch for the steady-state mutation paths (build back-fill,
  // repair, shed/grow), so the periodic adaptation sweep allocates nothing
  // once capacities settle. All are logically stackless temporaries;
  // mutable because several fill from const enumeration helpers.
  mutable std::vector<dht::NodeIndex> ec_out_;
  mutable std::vector<dht::NodeIndex> members_scratch_;
  mutable std::vector<std::uint64_t> cycles_scratch_;
  mutable std::vector<std::uint64_t> elig_cycles_;  ///< eligible() only.
  mutable std::vector<ExpansionTarget> targets_scratch_;
  mutable dht::StampSet inlink_seen_;  ///< expansion_targets_into() only.
  mutable std::vector<std::pair<std::uint32_t, dht::NodeIndex>> sort_scratch_;
  mutable std::vector<dht::NodeIndex> part_scratch_;
  std::vector<core::BackwardFinger> evict_scratch_;
  std::vector<dht::NodeIndex> evict_out_;
};

}  // namespace ert::cycloid
