#include "cycloid/overlay.h"

#include "trace/trace.h"
#include "wire/meter.h"
#include <algorithm>
#include <array>
#include <cassert>

namespace ert::cycloid {

Overlay::Overlay(OverlayOptions opts, PhysDistFn phys_dist)
    : opts_(opts),
      space_(opts.dimension),
      phys_dist_(std::move(phys_dist)),
      directory_(space_.size()),
      class_dirs_(static_cast<std::size_t>(opts.dimension),
                  dht::RingDirectory(space_.num_cycles())) {}

dht::NodeIndex Overlay::add_node(CycloidId id, double capacity,
                                 int max_indegree, double beta) {
  const std::uint64_t v = space_.to_linear(id);
  assert(!directory_.contains(v) && "Cycloid id already occupied");
  OverlayNode n;
  n.id = id;
  n.alive = true;
  n.capacity = capacity;
  n.budget = core::IndegreeBudget(max_indegree, beta);
  n.table.add_entry(dht::EntryKind::kCubical);
  n.table.add_entry(dht::EntryKind::kCyclic);
  n.table.add_entry(dht::EntryKind::kInsideLeaf);
  n.table.add_entry(dht::EntryKind::kOutsideLeaf);
  nodes_.push_back(std::move(n));
  const dht::NodeIndex idx = nodes_.size() - 1;
  directory_.insert(v, idx);
  class_dirs_[static_cast<std::size_t>(id.k)].insert(id.a, idx);
  ++alive_;
  return idx;
}

dht::NodeIndex Overlay::add_node_random(Rng& rng, double capacity,
                                        int max_indegree, double beta) {
  const std::uint64_t total = space_.size();
  assert(directory_.size() < total && "id space is full");
  // Random probing; past 64 misses (very dense occupancy) scan forward from
  // a random start for the first free id.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(total) - 1));
    if (!directory_.contains(v))
      return add_node(space_.from_linear(v), capacity, max_indegree, beta);
  }
  auto v = static_cast<std::uint64_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
  while (directory_.contains(v)) v = (v + 1) % total;
  return add_node(space_.from_linear(v), capacity, max_indegree, beta);
}

void Overlay::cycle_members(std::uint64_t a,
                            std::vector<dht::NodeIndex>& out) const {
  out.clear();
  const auto d = static_cast<std::uint64_t>(space_.dimension());
  // Cycle a owns the linear block [a*d, a*d + d); one ordered scan visits
  // its occupied ids in ascending cyclic index, same as probing each id.
  directory_.for_each_in_range(
      a * d, a * d + d,
      [&](std::uint64_t, dht::NodeIndex owner) { out.push_back(owner); });
}

void Overlay::nearby_cycles(std::uint64_t a, std::size_t count,
                            std::vector<std::uint64_t>& out) const {
  out.clear();
  const auto d = static_cast<std::uint64_t>(space_.dimension());
  const std::uint64_t total = space_.size();
  if (directory_.empty()) return;
  // Succeeding side: first occupied id past the end of each found cycle.
  std::uint64_t probe = (a * d + d) % total;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t id = directory_.successor_id(probe);
    const std::uint64_t cyc = id / d;
    if (cyc == a) break;  // wrapped around to our own cycle
    if (std::find(out.begin(), out.end(), cyc) != out.end()) break;
    out.push_back(cyc);
    probe = (cyc * d + d) % total;
  }
  // Preceding side: last occupied id before the start of each found cycle.
  probe = a * d;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t id =
        directory_.predecessor_id(probe == 0 ? total - 1 : probe - 1) ;
    const std::uint64_t cyc = id / d;
    if (cyc == a) break;
    if (std::find(out.begin(), out.end(), cyc) != out.end()) break;
    out.push_back(cyc);
    probe = cyc * d;
  }
}

bool Overlay::eligible(dht::NodeIndex owner, std::size_t slot,
                       dht::NodeIndex cand) const {
  if (owner == cand) return false;
  const CycloidId& o = nodes_.at(owner).id;
  const CycloidId& c = nodes_.at(cand).id;
  switch (slot) {
    case kCubicalEntry:
      return space_.cubical_ok(o, c);
    case kCyclicEntry:
      return space_.cyclic_ok(o, c);
    case kInsideLeafEntry:
      return space_.inside_leaf_ok(o, c);
    case kOutsideLeafEntry: {
      if (o.a == c.a) return false;
      // Dynamic eligibility: candidate must live within the nearest
      // occupied cycles on either side (window 2 tolerates races with
      // concurrent joins between link creation and checks).
      nearby_cycles(o.a, 2, elig_cycles_);
      return std::find(elig_cycles_.begin(), elig_cycles_.end(), c.a) !=
             elig_cycles_.end();
    }
    default:
      return false;
  }
}

namespace {

/// Enumerates occupied ids of the form (k_sel, pattern with `free_bits` low
/// bits free), returning node indices. `class_dir` is the overlay's index
/// of cyclic class k_sel keyed by cubical index, so ascending keys are
/// ascending `low` — the same order a probe of each candidate id would
/// produce — and the scan visits exactly the matching ids, never the other
/// d - 1 classes interleaved with them in the main directory.
void collect_matching(const dht::RingDirectory& class_dir,
                      std::uint64_t pattern, int free_bits,
                      std::vector<dht::NodeIndex>& out) {
  out.clear();
  const std::uint64_t base = pattern & ~low_mask(free_bits);
  const std::uint64_t span = std::uint64_t{1} << free_bits;
  out.reserve(span / 4);
  class_dir.for_each_in_range(
      base, base + span,
      [&](std::uint64_t, dht::NodeIndex owner) { out.push_back(owner); });
}

}  // namespace

const std::vector<dht::NodeIndex>& Overlay::eligible_candidates(
    dht::NodeIndex owner, std::size_t slot) const {
  const OverlayNode& o = nodes_.at(owner);
  std::vector<dht::NodeIndex>& cands = ec_out_;
  cands.clear();
  switch (slot) {
    case kCubicalEntry: {
      if (o.id.k < 1) break;
      const std::uint64_t pattern = flip_bit(o.id.a, o.id.k);
      collect_matching(class_dirs_[static_cast<std::size_t>(o.id.k - 1)],
                       pattern, o.id.k, cands);
      break;
    }
    case kCyclicEntry: {
      if (o.id.k < 1) break;
      collect_matching(class_dirs_[static_cast<std::size_t>(o.id.k - 1)],
                       o.id.a, o.id.k, cands);
      std::erase_if(cands, [&](dht::NodeIndex c) {
        return nodes_[c].id.a == o.id.a;
      });
      break;
    }
    case kInsideLeafEntry: {
      cycle_members(o.id.a, cands);
      std::erase(cands, owner);
      break;
    }
    case kOutsideLeafEntry: {
      nearby_cycles(o.id.a, opts_.base_fanout, cycles_scratch_);
      for (std::uint64_t cyc : cycles_scratch_) {
        cycle_members(cyc, members_scratch_);
        // Primary node (largest cyclic index) first, as in Cycloid.
        std::reverse(members_scratch_.begin(), members_scratch_.end());
        cands.insert(cands.end(), members_scratch_.begin(),
                     members_scratch_.end());
      }
      break;
    }
    default:
      break;
  }
  std::erase_if(cands, [&](dht::NodeIndex c) {
    return c == owner || !nodes_[c].alive;
  });
  // Nearest-first base order; "nearest" is slot-specific:
  //  * cubical: cycle distance to the canonical pattern (owner's cubical
  //    index with bit k flipped, low bits preserved) — measuring against
  //    the owner's own cycle would make one wrap-adjacent cycle the
  //    universal favorite and turn it into an artificial mega-hub;
  //  * cyclic: cycle distance to the owner's cycle;
  //  * inside leaf: wrap-around distance of cyclic indices (a cycle is a
  //    ring of d nodes, so (d-1, a) and (0, a) are adjacent);
  //  * outside leaf: cycle distance, then PRIMARY first (largest cyclic
  //    index) — the structural high-indegree group of Fig. 6.
  const std::uint64_t my_lv = lv(owner);
  if (slot == kInsideLeafEntry) {
    const int d = space_.dimension();
    dht::stable_sort_scratch(cands, sort_scratch_,
                             [&](dht::NodeIndex x, dht::NodeIndex y) {
                               auto kdist = [&](dht::NodeIndex c) {
                                 const int dk =
                                     std::abs(nodes_[c].id.k - o.id.k);
                                 return std::min(dk, d - dk);
                               };
                               return kdist(x) < kdist(y);
                             });
  } else {
    const std::uint64_t pattern =
        slot == kCubicalEntry ? flip_bit(o.id.a, o.id.k) : o.id.a;
    dht::stable_sort_scratch(
        cands, sort_scratch_, [&](dht::NodeIndex x, dht::NodeIndex y) {
          const auto dx = space_.cycle_distance(nodes_[x].id.a, pattern);
          const auto dy = space_.cycle_distance(nodes_[y].id.a, pattern);
          if (dx != dy) return dx < dy;
          if (slot == kOutsideLeafEntry && nodes_[x].id.k != nodes_[y].id.k)
            return nodes_[x].id.k > nodes_[y].id.k;
          return dht::ring_distance(lv(x), my_lv, space_.size()) <
                 dht::ring_distance(lv(y), my_lv, space_.size());
        });
  }
  order_by_policy(owner, cands);
  return cands;
}

void Overlay::order_by_policy(dht::NodeIndex owner,
                              std::vector<dht::NodeIndex>& cands) const {
  switch (opts_.policy) {
    case NeighborPolicy::kNearest:
      break;
    case NeighborPolicy::kSpareIndegree:
      // ERT: keep nearest-first order but prefer nodes with spare indegree.
      dht::stable_partition_scratch(cands, part_scratch_,
                                    [&](dht::NodeIndex c) {
                                      return nodes_[c].budget.can_accept();
                                    });
      break;
    case NeighborPolicy::kCapacityBiased:
      // NS [7]: highest capacity first (proximity breaks ties); nodes whose
      // indegree bound is full go last.
      dht::stable_sort_scratch(cands, sort_scratch_,
                               [&](dht::NodeIndex x, dht::NodeIndex y) {
                                 if (nodes_[x].capacity != nodes_[y].capacity)
                                   return nodes_[x].capacity >
                                          nodes_[y].capacity;
                                 return physical_distance(owner, x) <
                                        physical_distance(owner, y);
                               });
      dht::stable_partition_scratch(cands, part_scratch_,
                                    [&](dht::NodeIndex c) {
                                      return nodes_[c].budget.can_accept();
                                    });
      break;
  }
}

bool Overlay::link(dht::NodeIndex from, std::size_t slot, dht::NodeIndex to,
                   bool respect_budget) {
  OverlayNode& f = nodes_.at(from);
  OverlayNode& t = nodes_.at(to);
  if (!f.alive || !t.alive || from == to) return false;
  if (!eligible(from, slot, to)) return false;
  if (respect_budget && !t.budget.can_accept()) return false;
  // One role per ordered pair: if `from` already points at `to` in another
  // slot, do not double-link (keeps indegree == #pointing nodes).
  if (t.inlinks.contains(arena_.fingers, from)) return false;
  if (!f.table.entry(slot).add(arena_.cands, to)) return false;
  if (!t.budget.can_accept()) t.budget.on_forced_inlink();
  t.inlinks.add(arena_.fingers,
                core::BackwardFinger{from, logical_distance(from, to),
                                     physical_distance(from, to)});
  t.budget.on_inlink_added();
  return true;
}

bool Overlay::unlink(dht::NodeIndex from, dht::NodeIndex to) {
  OverlayNode& f = nodes_.at(from);
  OverlayNode& t = nodes_.at(to);
  if (f.table.remove_everywhere(arena_.cands, to) == 0) return false;
  t.inlinks.remove(arena_.fingers, from);
  t.budget.on_inlink_removed();
  return true;
}

void Overlay::build_table(dht::NodeIndex i, Rng& rng) {
  (void)rng;
  struct SlotPlan {
    std::size_t slot;
    std::size_t want;
  };
  const SlotPlan plan[] = {
      {kCubicalEntry, 1},
      {kCyclicEntry, 2 * opts_.base_fanout},
      {kInsideLeafEntry, 2 * opts_.base_fanout},
      {kOutsideLeafEntry, 2 * opts_.base_fanout},
  };
  for (const SlotPlan& p : plan) {
    std::size_t made = nodes_[i].table.entry(p.slot).size();
    if (made >= p.want) continue;
    for (dht::NodeIndex c : eligible_candidates(i, p.slot)) {
      if (made >= p.want) break;
      if (link(i, p.slot, c, opts_.enforce_indegree_bounds)) ++made;
    }
    if (made == 0) {
      // Never leave a slot empty if anyone eligible exists: routability
      // trumps the indegree bound (the bound check is best-effort per the
      // paper's "only nodes with available capacity ... can be neighbors",
      // which presumes such nodes exist).
      for (dht::NodeIndex c : eligible_candidates(i, p.slot)) {
        if (link(i, p.slot, c, false)) break;
      }
    }
  }
  // Ring adjacency: every node keeps its lv-successor and lv-predecessor
  // in the matching leaf entry (Theorem 3.3's proof already assumes nodes
  // probe successors/predecessors). This closes the cycle-boundary gap —
  // e.g. (d-1, a) -> (0, a+1) — that neither the primaries-based outside
  // leaf set nor the cubical/cyclic links cover, and it guarantees the
  // leaf-set walk always has a progress candidate.
  if (directory_.size() > 1) {
    const std::uint64_t total = space_.size();
    const std::uint64_t succ = directory_.successor_id((lv(i) + 1) % total);
    const std::uint64_t pred =
        directory_.predecessor_id(lv(i) == 0 ? total - 1 : lv(i) - 1);
    for (const std::uint64_t nb : {succ, pred}) {
      const dht::NodeIndex c = *directory_.owner_of(nb);
      if (c == i) continue;
      const std::size_t slot = nodes_[c].id.a == nodes_[i].id.a
                                   ? kInsideLeafEntry
                                   : kOutsideLeafEntry;
      if (!nodes_[i].table.entry(slot).contains(arena_.cands, c))
        link(i, slot, c, false);
    }
  }
  nodes_[i].table_built = true;
  // Back-fill: hosts that already built their tables but have no live
  // candidate in a slot the newcomer fits adopt it — keeps sparse and
  // churned networks routable (Cycloid's stabilization). Hosts that have
  // not built yet are skipped so genesis builds see virgin entries.
  expansion_targets_into(i, 64, targets_scratch_);
  for (const auto& [host, slot] : targets_scratch_) {
    if (!nodes_[host].table_built) continue;
    auto& entry = nodes_[host].table.entry(slot);
    bool has_live = false;
    for (const dht::NodeIndex32 c : entry.candidates(arena_.cands))
      if (nodes_[c].alive) {
        has_live = true;
        break;
      }
    if (!has_live) link(host, slot, i, false);
  }
}

std::vector<ExpansionTarget> Overlay::expansion_targets(
    dht::NodeIndex i, std::size_t max_targets) const {
  std::vector<ExpansionTarget> out;
  expansion_targets_into(i, max_targets, out);
  return out;
}

void Overlay::expansion_targets_into(dht::NodeIndex i, std::size_t max_targets,
                                     std::vector<ExpansionTarget>& out) const {
  out.clear();
  const OverlayNode& me = nodes_.at(i);
  const int k = me.id.k;
  // Stamp the current backward fingers once so the per-host membership test
  // below is O(1); scanning the finger list per examined host made each
  // adaptation sweep O(indegree^2) per node once indegrees grew.
  inlink_seen_.begin_epoch(nodes_.size());
  for (const auto& f : me.inlinks.fingers(arena_.fingers))
    inlink_seen_.mark(f.node);
  // Accepts one host; returns false once `out` is full so streaming scans
  // stop instead of materializing whole cyclic classes (thousands of nodes
  // at 2^17) to then keep ~20.
  auto try_push = [&](dht::NodeIndex h, std::size_t slot) {
    if (out.size() >= max_targets) return false;
    if (h == i || !nodes_[h].alive) return true;
    // Algorithm 1 skips ids already among the backward fingers.
    if (inlink_seen_.test(h)) return true;
    out.emplace_back(h, slot);
    return true;
  };
  auto push_hosts = [&](const std::vector<dht::NodeIndex>& hosts,
                        std::size_t slot) {
    for (dht::NodeIndex h : hosts)
      if (!try_push(h, slot)) return;
  };
  if (k + 1 < space_.dimension()) {
    const dht::RingDirectory& dir =
        class_dirs_[static_cast<std::size_t>(k + 1)];
    const std::uint64_t span = std::uint64_t{1} << (k + 1);
    // Hosts (k+1, ...) whose cubical entry we satisfy: their bit (k+1)
    // differs from ours, bits above match, bits below free. Streamed in
    // the same ascending-key order collect_matching would produce.
    const std::uint64_t cub_base =
        flip_bit(me.id.a, k + 1) & ~low_mask(k + 1);
    dir.for_each_in_range_until(
        cub_base, cub_base + span,
        [&](std::uint64_t, dht::NodeIndex h) {
          return try_push(h, kCubicalEntry);
        });
    // Hosts (k+1, ...) whose cyclic entry we satisfy: bits >= k+1 match
    // (same-cycle hosts excluded).
    const std::uint64_t cyc_base = me.id.a & ~low_mask(k + 1);
    dir.for_each_in_range_until(
        cyc_base, cyc_base + span, [&](std::uint64_t, dht::NodeIndex h) {
          if (nodes_[h].id.a == me.id.a) return true;
          return try_push(h, kCyclicEntry);
        });
  }
  // Successor/predecessor probing (assumed by Theorem 3.3): same-cycle
  // members can take us into their inside leaf sets, adjacent cycles into
  // their outside leaf sets.
  cycle_members(me.id.a, members_scratch_);
  std::erase(members_scratch_, i);
  push_hosts(members_scratch_, kInsideLeafEntry);
  nearby_cycles(me.id.a, 1, cycles_scratch_);
  for (std::uint64_t cyc : cycles_scratch_) {
    cycle_members(cyc, members_scratch_);
    push_hosts(members_scratch_, kOutsideLeafEntry);
  }
}

int Overlay::expand_indegree(dht::NodeIndex i, int want,
                             std::size_t max_probes) {
  if (want <= 0) return 0;
  int gained = 0;
  expansion_targets_into(i, max_probes, targets_scratch_);
  for (const auto& [host, slot] : targets_scratch_) {
    if (gained >= want) break;
    if (!nodes_[i].budget.can_accept()) break;
    if (link(host, slot, i, /*respect_budget=*/true)) {
      ++gained;
      if (trace_ && trace_->wants(trace::Category::kLink))
        trace_->emit(trace::EventType::kLinkAdopt, i, 0,
                     static_cast<std::int64_t>(host),
                     static_cast<std::int64_t>(nodes_[i].inlinks.size()));
      if (meter_)
        meter_->on_backward_add(i, host, nodes_[i].inlinks.size());
    }
  }
  return gained;
}

int Overlay::shed_indegree(dht::NodeIndex i, int count) {
  if (count <= 0) return 0;
  // Keep the node reachable: never drop the last inlink.
  count = std::min<int>(count,
                        static_cast<int>(nodes_.at(i).inlinks.size()) - 1);
  if (count <= 0) return 0;
  nodes_.at(i).inlinks.pick_evictions(arena_.fingers,
                                      static_cast<std::size_t>(count),
                                      evict_scratch_, evict_out_);
  int shed = 0;
  for (dht::NodeIndex v : evict_out_) {
    if (!unlink(v, i)) continue;
    ++shed;
    if (trace_ && trace_->wants(trace::Category::kLink))
      trace_->emit(trace::EventType::kLinkShed, i, 0,
                   static_cast<std::int64_t>(v),
                   static_cast<std::int64_t>(nodes_[i].inlinks.size()));
    if (meter_)
      meter_->on_backward_drop(i, v, nodes_[i].inlinks.size());
    // The evicted host lost a candidate; if that leaves a slot with no live
    // option its routing would degrade to the walk — repair right away.
    if (nodes_[v].alive) {
      for (std::size_t slot = 0; slot < kNumEntries; ++slot)
        repair_entry(v, slot);
    }
  }
  return shed;
}

void Overlay::leave_graceful(dht::NodeIndex i) {
  OverlayNode& n = nodes_.at(i);
  if (!n.alive) return;
  // Drop our outlinks (fixing the targets' backward fingers). The
  // per-candidate bookkeeping touches only the finger pool, so the
  // candidate span stays valid; each block is released afterwards.
  for (auto& entry : n.table.entries()) {
    for (const dht::NodeIndex32 c : entry.candidates(arena_.cands)) {
      nodes_[c].inlinks.remove(arena_.fingers, i);
      nodes_[c].budget.on_inlink_removed();
    }
    entry.release(arena_.cands);
  }
  // Drop our inlinks (fixing the pointers' tables — the candidate pool,
  // never the finger pool we are iterating).
  for (const auto& f : n.inlinks.fingers(arena_.fingers)) {
    nodes_[f.node].table.remove_everywhere(arena_.cands, i);
  }
  n.inlinks.clear(arena_.fingers);
  directory_.erase(lv(i));
  class_dirs_[static_cast<std::size_t>(n.id.k)].erase(n.id.a);
  n.alive = false;
  --alive_;
}

void Overlay::fail(dht::NodeIndex i) {
  OverlayNode& n = nodes_.at(i);
  if (!n.alive) return;
  directory_.erase(lv(i));
  class_dirs_[static_cast<std::size_t>(n.id.k)].erase(n.id.a);
  n.alive = false;
  --alive_;
  // Stale state stays: nodes pointing at `i` discover the failure on their
  // next contact (timeout), and nodes `i` pointed at keep a stale backward
  // finger until purged.
}

void Overlay::purge_dead(dht::NodeIndex at, dht::NodeIndex dead) {
  OverlayNode& n = nodes_.at(at);
  n.table.remove_everywhere(arena_.cands, dead);
  if (n.inlinks.remove(arena_.fingers, dead)) n.budget.on_inlink_removed();
}

void Overlay::repair_entry(dht::NodeIndex i, std::size_t slot) {
  auto& entry = nodes_.at(i).table.entry(slot);
  for (const dht::NodeIndex32 c : entry.candidates(arena_.cands))
    if (nodes_[c].alive) return;  // still has a live candidate
  for (dht::NodeIndex c : eligible_candidates(i, slot)) {
    if (link(i, slot, c, opts_.enforce_indegree_bounds)) return;
  }
  for (dht::NodeIndex c : eligible_candidates(i, slot)) {
    if (link(i, slot, c, false)) return;
  }
}

dht::NodeIndex Overlay::responsible(std::uint64_t key) const {
  return directory_.successor(space_.key_to_linear(key));
}

std::uint64_t Overlay::logical_distance(dht::NodeIndex a,
                                        dht::NodeIndex b) const {
  return dht::ring_distance(lv(a), lv(b), space_.size());
}

std::uint64_t Overlay::logical_distance_to_key(dht::NodeIndex a,
                                               std::uint64_t key) const {
  return dht::ring_distance(lv(a), space_.key_to_linear(key), space_.size());
}

RouteStep Overlay::route_step(dht::NodeIndex cur, std::uint64_t key,
                              RouteCtx& ctx) const {
  dht::RouteScratch scratch;
  const dht::RouteStepInfo info = route_step(cur, key, ctx, scratch);
  RouteStep step;
  step.arrived = info.arrived;
  step.entry_index = info.entry_index;
  step.candidates = std::move(scratch.candidates);
  return step;
}

dht::RouteStepInfo Overlay::route_step(dht::NodeIndex cur, std::uint64_t key,
                                       RouteCtx& ctx,
                                       dht::RouteScratch& scratch) const {
  dht::RouteStepInfo step;
  step.entry_index = kNoEntry;
  auto& cands = scratch.candidates;
  cands.clear();
  const dht::NodeIndex owner = responsible(key);
  assert(owner != dht::kNoNode);
  if (owner == cur) {
    step.arrived = true;
    return step;
  }
  const OverlayNode& cn = nodes_.at(cur);
  const OverlayNode& on = nodes_.at(owner);
  assert(cn.alive);
  const CycloidId cid = cn.id;
  const CycloidId oid = on.id;
  const int h = cid.a == oid.a ? -1 : msb_diff(cid.a, oid.a);

  if (ctx.phase == RouteCtx::Phase::kAscend) {
    if (h >= 0 && cid.k < h) {
      // Ascending: climb toward cyclic index h, preferably within the local
      // cycle; in sparse networks, where the local cycle may have no
      // higher-k member, the outside leaf set (whose heads are the
      // primaries — highest k — of adjacent cycles) keeps the climb going.
      // k strictly increases either way, so the phase ends within d hops.
      for (std::size_t slot : {kInsideLeafEntry, kOutsideLeafEntry}) {
        cands.clear();
        for (const dht::NodeIndex32 c :
             cn.table.entry(slot).candidates(arena_.cands))
          if (nodes_[c].id.k > cid.k) cands.push_back(c);
        if (cands.empty()) continue;
        dht::stable_insertion_sort(cands.begin(), cands.end(),
                                   [&](dht::NodeIndex x, dht::NodeIndex y) {
                                     return std::abs(nodes_[x].id.k - h) <
                                            std::abs(nodes_[y].id.k - h);
                                   });
        step.entry_index = slot;
        return step;
      }
    }
    ctx.phase = RouteCtx::Phase::kDescend;
  }

  if (ctx.phase == RouteCtx::Phase::kDescend) {
    auto by_cycle_distance = [&](std::size_t slot) {
      const auto src = cn.table.entry(slot).candidates(arena_.cands);
      cands.assign(src.begin(), src.end());
      dht::stable_insertion_sort(
          cands.begin(), cands.end(), [&](dht::NodeIndex x, dht::NodeIndex y) {
            return space_.cycle_distance(nodes_[x].id.a, oid.a) <
                   space_.cycle_distance(nodes_[y].id.a, oid.a);
          });
      step.entry_index = slot;
    };
    if (h >= 0 && cid.k >= 1 && cid.k == h &&
        !cn.table.entry(kCubicalEntry).empty()) {
      // Flip bit h via the cubical link; every candidate makes progress.
      by_cycle_distance(kCubicalEntry);
      return step;
    }
    if (h >= 0 && cid.k >= 1 && cid.k > h &&
        !cn.table.entry(kCyclicEntry).empty()) {
      // Move between cycles: any cyclic candidate preserves the
      // already-corrected bits >= k and lowers k.
      by_cycle_distance(kCyclicEntry);
      return step;
    }
    // No descend step possible from here (target cycle reached, k exhausted,
    // or the needed entry is empty): drop to the walk permanently — the
    // monotone phase order is what guarantees termination.
    ctx.phase = RouteCtx::Phase::kWalk;
  }

  // Cycle walk / greedy fallback: any candidate strictly reducing the
  // ring-position distance to the owner qualifies. Dead (stale) candidates
  // are judged by their last-known id so the timeout path stays realistic.
  // The owner's directory position is resolved once: every candidate rank
  // then costs one binary search instead of two.
  const std::uint64_t total = space_.size();
  const std::uint64_t owner_lv = lv(owner);
  const std::size_t owner_pos = directory_.position_of(owner_lv);
  const std::size_t my_pos =
      directory_.position_gap(directory_.position_of(lv(cur)), owner_pos);
  const std::uint64_t my_iddist = dht::ring_distance(lv(cur), owner_lv, total);
  auto progress_rank = [&](dht::NodeIndex c) -> std::int64_t {
    // Returns a sort key; negative means "no progress" (filtered out).
    if (nodes_[c].alive) {
      const std::size_t pos =
          directory_.position_gap(directory_.position_of(lv(c)), owner_pos);
      if (pos >= my_pos) return -1;
      return static_cast<std::int64_t>(pos);
    }
    const std::uint64_t idd = dht::ring_distance(lv(c), owner_lv, total);
    if (idd >= my_iddist) return -1;
    return static_cast<std::int64_t>(my_pos);  // dead: rank after live ones
  };
  // Rank progress candidates across ALL entries and route through the slot
  // holding the globally best one — cubical/cyclic links double as long
  // jumps and the outside leaf set skips whole cycles, so the walk is a
  // greedy ring walk with shortcuts rather than a position-by-position
  // crawl. One structural constraint: once inside the owner's cycle, stay
  // there ("traverse cycle" phase) — a position shortcut that exits the
  // cycle can strand the query next to an owner only reachable through its
  // own cycle's leaf links.
  //
  // Ranks are computed in a single pass: each slot's qualifying candidates
  // land in a contiguous segment of scratch.ranked (entry order preserved),
  // the globally best slot is tracked on the fly, and only its segment is
  // sorted. Same comparisons in the same order as the two-pass form, so
  // the chosen slot and candidate order are bit-identical.
  const bool in_owner_cycle = cid.a == oid.a;
  auto usable = [&](dht::NodeIndex c) {
    return !in_owner_cycle || nodes_[c].id.a == oid.a;
  };
  for (int relax = 0; relax < 2; ++relax) {
    auto& ranked = scratch.ranked;
    ranked.clear();
    std::array<std::size_t, kNumEntries + 1> seg{};
    std::size_t best_slot = kNoEntry;
    std::int64_t best_rank = -1;
    for (std::size_t slot = 0; slot < kNumEntries; ++slot) {
      seg[slot] = ranked.size();
      for (const dht::NodeIndex32 c :
           cn.table.entry(slot).candidates(arena_.cands)) {
        if (relax == 0 && !usable(c)) continue;
        const std::int64_t r = progress_rank(c);
        if (r < 0) continue;
        // Non-negative ranks cast losslessly to the scratch's uint64 keys,
        // and pair order (rank, node) is unchanged.
        ranked.emplace_back(static_cast<std::uint64_t>(r), c);
        if (best_rank < 0 || r < best_rank) {
          best_rank = r;
          best_slot = slot;
        }
      }
    }
    seg[kNumEntries] = ranked.size();
    if (best_slot != kNoEntry) {
      const auto first =
          ranked.begin() + static_cast<std::ptrdiff_t>(seg[best_slot]);
      const auto last =
          ranked.begin() + static_cast<std::ptrdiff_t>(seg[best_slot + 1]);
      dht::stable_insertion_sort(
          first, last, [](const auto& a, const auto& b) { return a < b; });
      step.entry_index = best_slot;
      for (auto it = first; it != last; ++it) cands.push_back(it->second);
      return step;
    }
  }
  // Emergency: step to the directory-adjacent node toward the owner. This
  // models the stabilized leaf-set hop that always exists in a connected
  // Cycloid; it guarantees lookup termination on any membership.
  const std::uint64_t next_id = directory_.step_toward(lv(cur), lv(owner));
  const auto next = directory_.owner_of(next_id);
  assert(next.has_value());
  step.entry_index = kNoEntry;
  cands.push_back(*next);
  return step;
}

void Overlay::check_invariants() const {
  for (dht::NodeIndex i = 0; i < nodes_.size(); ++i) {
    const OverlayNode& n = nodes_[i];
    if (!n.alive) continue;
    std::size_t outdeg = 0;
    for (std::size_t slot = 0; slot < n.table.num_entries(); ++slot) {
      for (const dht::NodeIndex32 c : n.table.entry(slot).candidates(arena_.cands)) {
        ++outdeg;
        if (!nodes_[c].alive) continue;  // stale link, tolerated after fail()
        assert(nodes_[c].inlinks.contains(arena_.fingers, i) &&
               "outlink without matching backward finger");
        if (slot != kOutsideLeafEntry) {
          assert(eligible(i, slot, c) && "ineligible candidate in entry");
        }
      }
    }
    (void)outdeg;
    for (const auto& f : n.inlinks.fingers(arena_.fingers)) {
      if (!nodes_[f.node].alive) continue;
      assert(nodes_[f.node].table.links_to(arena_.cands, i) &&
             "backward finger without matching outlink");
    }
    assert(n.budget.indegree() >= 0);
    // The per-class secondary index must mirror the main directory.
    assert(directory_.owner_of(lv(i)) == std::optional<dht::NodeIndex>(i));
    assert(class_dirs_[static_cast<std::size_t>(n.id.k)].owner_of(n.id.a) ==
           std::optional<dht::NodeIndex>(i));
  }
  std::size_t class_total = 0;
  for (const auto& cd : class_dirs_) class_total += cd.size();
  assert(class_total == directory_.size() &&
         "class index out of sync with directory");
  (void)class_total;
}

}  // namespace ert::cycloid
