#include "cycloid/overlay.h"

#include "trace/trace.h"
#include <algorithm>
#include <array>
#include <cassert>

namespace ert::cycloid {

Overlay::Overlay(OverlayOptions opts, PhysDistFn phys_dist)
    : opts_(opts),
      space_(opts.dimension),
      phys_dist_(std::move(phys_dist)),
      directory_(space_.size()),
      class_dirs_(static_cast<std::size_t>(opts.dimension),
                  dht::RingDirectory(space_.num_cycles())) {}

dht::NodeIndex Overlay::add_node(CycloidId id, double capacity,
                                 int max_indegree, double beta) {
  const std::uint64_t v = space_.to_linear(id);
  assert(!directory_.contains(v) && "Cycloid id already occupied");
  OverlayNode n;
  n.id = id;
  n.alive = true;
  n.capacity = capacity;
  n.budget = core::IndegreeBudget(max_indegree, beta);
  n.table.add_entry(dht::EntryKind::kCubical);
  n.table.add_entry(dht::EntryKind::kCyclic);
  n.table.add_entry(dht::EntryKind::kInsideLeaf);
  n.table.add_entry(dht::EntryKind::kOutsideLeaf);
  nodes_.push_back(std::move(n));
  const dht::NodeIndex idx = nodes_.size() - 1;
  directory_.insert(v, idx);
  class_dirs_[static_cast<std::size_t>(id.k)].insert(id.a, idx);
  ++alive_;
  return idx;
}

dht::NodeIndex Overlay::add_node_random(Rng& rng, double capacity,
                                        int max_indegree, double beta) {
  const std::uint64_t total = space_.size();
  assert(directory_.size() < total && "id space is full");
  // Random probing; past 64 misses (very dense occupancy) scan forward from
  // a random start for the first free id.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(total) - 1));
    if (!directory_.contains(v))
      return add_node(space_.from_linear(v), capacity, max_indegree, beta);
  }
  auto v = static_cast<std::uint64_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
  while (directory_.contains(v)) v = (v + 1) % total;
  return add_node(space_.from_linear(v), capacity, max_indegree, beta);
}

std::vector<dht::NodeIndex> Overlay::cycle_members(std::uint64_t a) const {
  std::vector<dht::NodeIndex> out;
  const auto d = static_cast<std::uint64_t>(space_.dimension());
  // Cycle a owns the linear block [a*d, a*d + d); one ordered scan visits
  // its occupied ids in ascending cyclic index, same as probing each id.
  directory_.for_each_in_range(
      a * d, a * d + d,
      [&](std::uint64_t, dht::NodeIndex owner) { out.push_back(owner); });
  return out;
}

std::vector<std::uint64_t> Overlay::nearby_cycles(std::uint64_t a,
                                                  std::size_t count) const {
  std::vector<std::uint64_t> out;
  const auto d = static_cast<std::uint64_t>(space_.dimension());
  const std::uint64_t total = space_.size();
  if (directory_.empty()) return out;
  // Succeeding side: first occupied id past the end of each found cycle.
  std::uint64_t probe = (a * d + d) % total;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t id = directory_.successor_id(probe);
    const std::uint64_t cyc = id / d;
    if (cyc == a) break;  // wrapped around to our own cycle
    if (std::find(out.begin(), out.end(), cyc) != out.end()) break;
    out.push_back(cyc);
    probe = (cyc * d + d) % total;
  }
  // Preceding side: last occupied id before the start of each found cycle.
  probe = a * d;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t id =
        directory_.predecessor_id(probe == 0 ? total - 1 : probe - 1) ;
    const std::uint64_t cyc = id / d;
    if (cyc == a) break;
    if (std::find(out.begin(), out.end(), cyc) != out.end()) break;
    out.push_back(cyc);
    probe = cyc * d;
  }
  return out;
}

bool Overlay::eligible(dht::NodeIndex owner, std::size_t slot,
                       dht::NodeIndex cand) const {
  if (owner == cand) return false;
  const CycloidId& o = nodes_.at(owner).id;
  const CycloidId& c = nodes_.at(cand).id;
  switch (slot) {
    case kCubicalEntry:
      return space_.cubical_ok(o, c);
    case kCyclicEntry:
      return space_.cyclic_ok(o, c);
    case kInsideLeafEntry:
      return space_.inside_leaf_ok(o, c);
    case kOutsideLeafEntry: {
      if (o.a == c.a) return false;
      // Dynamic eligibility: candidate must live within the nearest
      // occupied cycles on either side (window 2 tolerates races with
      // concurrent joins between link creation and checks).
      const auto near = nearby_cycles(o.a, 2);
      return std::find(near.begin(), near.end(), c.a) != near.end();
    }
    default:
      return false;
  }
}

namespace {

/// Enumerates occupied ids of the form (k_sel, pattern with `free_bits` low
/// bits free), returning node indices. `class_dir` is the overlay's index
/// of cyclic class k_sel keyed by cubical index, so ascending keys are
/// ascending `low` — the same order a probe of each candidate id would
/// produce — and the scan visits exactly the matching ids, never the other
/// d - 1 classes interleaved with them in the main directory.
std::vector<dht::NodeIndex> collect_matching(
    const dht::RingDirectory& class_dir, std::uint64_t pattern,
    int free_bits) {
  std::vector<dht::NodeIndex> out;
  const std::uint64_t base = pattern & ~low_mask(free_bits);
  const std::uint64_t span = std::uint64_t{1} << free_bits;
  out.reserve(span / 4);
  class_dir.for_each_in_range(
      base, base + span,
      [&](std::uint64_t, dht::NodeIndex owner) { out.push_back(owner); });
  return out;
}

}  // namespace

std::vector<dht::NodeIndex> Overlay::eligible_candidates(
    dht::NodeIndex owner, std::size_t slot) const {
  const OverlayNode& o = nodes_.at(owner);
  std::vector<dht::NodeIndex> cands;
  switch (slot) {
    case kCubicalEntry: {
      if (o.id.k < 1) break;
      const std::uint64_t pattern = flip_bit(o.id.a, o.id.k);
      cands = collect_matching(class_dirs_[static_cast<std::size_t>(o.id.k - 1)],
                               pattern, o.id.k);
      break;
    }
    case kCyclicEntry: {
      if (o.id.k < 1) break;
      cands = collect_matching(class_dirs_[static_cast<std::size_t>(o.id.k - 1)],
                               o.id.a, o.id.k);
      std::erase_if(cands, [&](dht::NodeIndex c) {
        return nodes_[c].id.a == o.id.a;
      });
      break;
    }
    case kInsideLeafEntry: {
      cands = cycle_members(o.id.a);
      std::erase(cands, owner);
      break;
    }
    case kOutsideLeafEntry: {
      for (std::uint64_t cyc : nearby_cycles(o.id.a, opts_.base_fanout)) {
        auto members = cycle_members(cyc);
        // Primary node (largest cyclic index) first, as in Cycloid.
        std::reverse(members.begin(), members.end());
        cands.insert(cands.end(), members.begin(), members.end());
      }
      break;
    }
    default:
      break;
  }
  std::erase_if(cands, [&](dht::NodeIndex c) {
    return c == owner || !nodes_[c].alive;
  });
  // Nearest-first base order; "nearest" is slot-specific:
  //  * cubical: cycle distance to the canonical pattern (owner's cubical
  //    index with bit k flipped, low bits preserved) — measuring against
  //    the owner's own cycle would make one wrap-adjacent cycle the
  //    universal favorite and turn it into an artificial mega-hub;
  //  * cyclic: cycle distance to the owner's cycle;
  //  * inside leaf: wrap-around distance of cyclic indices (a cycle is a
  //    ring of d nodes, so (d-1, a) and (0, a) are adjacent);
  //  * outside leaf: cycle distance, then PRIMARY first (largest cyclic
  //    index) — the structural high-indegree group of Fig. 6.
  const std::uint64_t my_lv = lv(owner);
  if (slot == kInsideLeafEntry) {
    const int d = space_.dimension();
    std::stable_sort(cands.begin(), cands.end(),
                     [&](dht::NodeIndex x, dht::NodeIndex y) {
                       auto kdist = [&](dht::NodeIndex c) {
                         const int dk = std::abs(nodes_[c].id.k - o.id.k);
                         return std::min(dk, d - dk);
                       };
                       return kdist(x) < kdist(y);
                     });
  } else {
    const std::uint64_t pattern =
        slot == kCubicalEntry ? flip_bit(o.id.a, o.id.k) : o.id.a;
    std::stable_sort(cands.begin(), cands.end(),
                     [&](dht::NodeIndex x, dht::NodeIndex y) {
                       const auto dx =
                           space_.cycle_distance(nodes_[x].id.a, pattern);
                       const auto dy =
                           space_.cycle_distance(nodes_[y].id.a, pattern);
                       if (dx != dy) return dx < dy;
                       if (slot == kOutsideLeafEntry &&
                           nodes_[x].id.k != nodes_[y].id.k)
                         return nodes_[x].id.k > nodes_[y].id.k;
                       return dht::ring_distance(lv(x), my_lv, space_.size()) <
                              dht::ring_distance(lv(y), my_lv, space_.size());
                     });
  }
  order_by_policy(owner, cands);
  return cands;
}

void Overlay::order_by_policy(dht::NodeIndex owner,
                              std::vector<dht::NodeIndex>& cands) const {
  switch (opts_.policy) {
    case NeighborPolicy::kNearest:
      break;
    case NeighborPolicy::kSpareIndegree:
      // ERT: keep nearest-first order but prefer nodes with spare indegree.
      std::stable_partition(cands.begin(), cands.end(), [&](dht::NodeIndex c) {
        return nodes_[c].budget.can_accept();
      });
      break;
    case NeighborPolicy::kCapacityBiased:
      // NS [7]: highest capacity first (proximity breaks ties); nodes whose
      // indegree bound is full go last.
      std::stable_sort(cands.begin(), cands.end(),
                       [&](dht::NodeIndex x, dht::NodeIndex y) {
                         if (nodes_[x].capacity != nodes_[y].capacity)
                           return nodes_[x].capacity > nodes_[y].capacity;
                         return physical_distance(owner, x) <
                                physical_distance(owner, y);
                       });
      std::stable_partition(cands.begin(), cands.end(), [&](dht::NodeIndex c) {
        return nodes_[c].budget.can_accept();
      });
      break;
  }
}

bool Overlay::link(dht::NodeIndex from, std::size_t slot, dht::NodeIndex to,
                   bool respect_budget) {
  OverlayNode& f = nodes_.at(from);
  OverlayNode& t = nodes_.at(to);
  if (!f.alive || !t.alive || from == to) return false;
  if (!eligible(from, slot, to)) return false;
  if (respect_budget && !t.budget.can_accept()) return false;
  // One role per ordered pair: if `from` already points at `to` in another
  // slot, do not double-link (keeps indegree == #pointing nodes).
  if (t.inlinks.contains(from)) return false;
  if (!f.table.entry(slot).add(to)) return false;
  if (!t.budget.can_accept()) t.budget.on_forced_inlink();
  t.inlinks.add(core::BackwardFinger{from, logical_distance(from, to),
                                     physical_distance(from, to)});
  t.budget.on_inlink_added();
  return true;
}

bool Overlay::unlink(dht::NodeIndex from, dht::NodeIndex to) {
  OverlayNode& f = nodes_.at(from);
  OverlayNode& t = nodes_.at(to);
  if (f.table.remove_everywhere(to) == 0) return false;
  t.inlinks.remove(from);
  t.budget.on_inlink_removed();
  return true;
}

void Overlay::build_table(dht::NodeIndex i, Rng& rng) {
  (void)rng;
  struct SlotPlan {
    std::size_t slot;
    std::size_t want;
  };
  const SlotPlan plan[] = {
      {kCubicalEntry, 1},
      {kCyclicEntry, 2 * opts_.base_fanout},
      {kInsideLeafEntry, 2 * opts_.base_fanout},
      {kOutsideLeafEntry, 2 * opts_.base_fanout},
  };
  for (const SlotPlan& p : plan) {
    std::size_t made = nodes_[i].table.entry(p.slot).size();
    if (made >= p.want) continue;
    for (dht::NodeIndex c : eligible_candidates(i, p.slot)) {
      if (made >= p.want) break;
      if (link(i, p.slot, c, opts_.enforce_indegree_bounds)) ++made;
    }
    if (made == 0) {
      // Never leave a slot empty if anyone eligible exists: routability
      // trumps the indegree bound (the bound check is best-effort per the
      // paper's "only nodes with available capacity ... can be neighbors",
      // which presumes such nodes exist).
      for (dht::NodeIndex c : eligible_candidates(i, p.slot)) {
        if (link(i, p.slot, c, false)) break;
      }
    }
  }
  // Ring adjacency: every node keeps its lv-successor and lv-predecessor
  // in the matching leaf entry (Theorem 3.3's proof already assumes nodes
  // probe successors/predecessors). This closes the cycle-boundary gap —
  // e.g. (d-1, a) -> (0, a+1) — that neither the primaries-based outside
  // leaf set nor the cubical/cyclic links cover, and it guarantees the
  // leaf-set walk always has a progress candidate.
  if (directory_.size() > 1) {
    const std::uint64_t total = space_.size();
    const std::uint64_t succ = directory_.successor_id((lv(i) + 1) % total);
    const std::uint64_t pred =
        directory_.predecessor_id(lv(i) == 0 ? total - 1 : lv(i) - 1);
    for (const std::uint64_t nb : {succ, pred}) {
      const dht::NodeIndex c = *directory_.owner_of(nb);
      if (c == i) continue;
      const std::size_t slot = nodes_[c].id.a == nodes_[i].id.a
                                   ? kInsideLeafEntry
                                   : kOutsideLeafEntry;
      if (!nodes_[i].table.entry(slot).contains(c)) link(i, slot, c, false);
    }
  }
  nodes_[i].table_built = true;
  // Back-fill: hosts that already built their tables but have no live
  // candidate in a slot the newcomer fits adopt it — keeps sparse and
  // churned networks routable (Cycloid's stabilization). Hosts that have
  // not built yet are skipped so genesis builds see virgin entries.
  for (const auto& [host, slot] : expansion_targets(i, 64)) {
    if (!nodes_[host].table_built) continue;
    auto& entry = nodes_[host].table.entry(slot);
    bool has_live = false;
    for (dht::NodeIndex c : entry.candidates())
      if (nodes_[c].alive) {
        has_live = true;
        break;
      }
    if (!has_live) link(host, slot, i, false);
  }
}

std::vector<ExpansionTarget> Overlay::expansion_targets(
    dht::NodeIndex i, std::size_t max_targets) const {
  std::vector<ExpansionTarget> out;
  const OverlayNode& me = nodes_.at(i);
  const int k = me.id.k;
  auto push_hosts = [&](std::vector<dht::NodeIndex> hosts, std::size_t slot) {
    for (dht::NodeIndex h : hosts) {
      if (out.size() >= max_targets) return;
      if (h == i || !nodes_[h].alive) continue;
      // Algorithm 1 skips ids already among the backward fingers.
      if (me.inlinks.contains(h)) continue;
      out.emplace_back(h, slot);
    }
  };
  if (k + 1 < space_.dimension()) {
    // Hosts (k+1, ...) whose cubical entry we satisfy: their bit (k+1)
    // differs from ours, bits above match, bits below free.
    push_hosts(collect_matching(class_dirs_[static_cast<std::size_t>(k + 1)],
                                flip_bit(me.id.a, k + 1), k + 1),
               kCubicalEntry);
    // Hosts (k+1, ...) whose cyclic entry we satisfy: bits >= k+1 match.
    auto cyc = collect_matching(class_dirs_[static_cast<std::size_t>(k + 1)],
                                me.id.a, k + 1);
    std::erase_if(cyc, [&](dht::NodeIndex h) {
      return nodes_[h].id.a == me.id.a;
    });
    push_hosts(std::move(cyc), kCyclicEntry);
  }
  // Successor/predecessor probing (assumed by Theorem 3.3): same-cycle
  // members can take us into their inside leaf sets, adjacent cycles into
  // their outside leaf sets.
  auto inside = cycle_members(me.id.a);
  std::erase(inside, i);
  push_hosts(std::move(inside), kInsideLeafEntry);
  for (std::uint64_t cyc : nearby_cycles(me.id.a, 1))
    push_hosts(cycle_members(cyc), kOutsideLeafEntry);
  return out;
}

int Overlay::expand_indegree(dht::NodeIndex i, int want,
                             std::size_t max_probes) {
  if (want <= 0) return 0;
  int gained = 0;
  for (const auto& [host, slot] : expansion_targets(i, max_probes)) {
    if (gained >= want) break;
    if (!nodes_[i].budget.can_accept()) break;
    if (link(host, slot, i, /*respect_budget=*/true)) {
      ++gained;
      if (trace_ && trace_->wants(trace::Category::kLink))
        trace_->emit(trace::EventType::kLinkAdopt, i, 0,
                     static_cast<std::int64_t>(host),
                     static_cast<std::int64_t>(nodes_[i].inlinks.size()));
    }
  }
  return gained;
}

int Overlay::shed_indegree(dht::NodeIndex i, int count) {
  if (count <= 0) return 0;
  // Keep the node reachable: never drop the last inlink.
  count = std::min<int>(count,
                        static_cast<int>(nodes_.at(i).inlinks.size()) - 1);
  if (count <= 0) return 0;
  const auto victims = nodes_.at(i).inlinks.pick_evictions(
      static_cast<std::size_t>(count));
  int shed = 0;
  for (dht::NodeIndex v : victims) {
    if (!unlink(v, i)) continue;
    ++shed;
    if (trace_ && trace_->wants(trace::Category::kLink))
      trace_->emit(trace::EventType::kLinkShed, i, 0,
                   static_cast<std::int64_t>(v),
                   static_cast<std::int64_t>(nodes_[i].inlinks.size()));
    // The evicted host lost a candidate; if that leaves a slot with no live
    // option its routing would degrade to the walk — repair right away.
    if (nodes_[v].alive) {
      for (std::size_t slot = 0; slot < kNumEntries; ++slot)
        repair_entry(v, slot);
    }
  }
  return shed;
}

void Overlay::leave_graceful(dht::NodeIndex i) {
  OverlayNode& n = nodes_.at(i);
  if (!n.alive) return;
  // Drop our outlinks (fixing the targets' backward fingers).
  for (auto& entry : n.table.entries()) {
    for (dht::NodeIndex c : std::vector<dht::NodeIndex>(entry.candidates())) {
      nodes_[c].inlinks.remove(i);
      nodes_[c].budget.on_inlink_removed();
      entry.remove(c);
    }
  }
  // Drop our inlinks (fixing the pointers' tables).
  for (const auto& f :
       std::vector<core::BackwardFinger>(n.inlinks.fingers())) {
    nodes_[f.node].table.remove_everywhere(i);
  }
  n.inlinks.clear();
  directory_.erase(lv(i));
  class_dirs_[static_cast<std::size_t>(n.id.k)].erase(n.id.a);
  n.alive = false;
  --alive_;
}

void Overlay::fail(dht::NodeIndex i) {
  OverlayNode& n = nodes_.at(i);
  if (!n.alive) return;
  directory_.erase(lv(i));
  class_dirs_[static_cast<std::size_t>(n.id.k)].erase(n.id.a);
  n.alive = false;
  --alive_;
  // Stale state stays: nodes pointing at `i` discover the failure on their
  // next contact (timeout), and nodes `i` pointed at keep a stale backward
  // finger until purged.
}

void Overlay::purge_dead(dht::NodeIndex at, dht::NodeIndex dead) {
  OverlayNode& n = nodes_.at(at);
  n.table.remove_everywhere(dead);
  if (n.inlinks.remove(dead)) n.budget.on_inlink_removed();
}

void Overlay::repair_entry(dht::NodeIndex i, std::size_t slot) {
  auto& entry = nodes_.at(i).table.entry(slot);
  for (dht::NodeIndex c : entry.candidates())
    if (nodes_[c].alive) return;  // still has a live candidate
  for (dht::NodeIndex c : eligible_candidates(i, slot)) {
    if (link(i, slot, c, opts_.enforce_indegree_bounds)) return;
  }
  for (dht::NodeIndex c : eligible_candidates(i, slot)) {
    if (link(i, slot, c, false)) return;
  }
}

dht::NodeIndex Overlay::responsible(std::uint64_t key) const {
  return directory_.successor(space_.key_to_linear(key));
}

std::uint64_t Overlay::logical_distance(dht::NodeIndex a,
                                        dht::NodeIndex b) const {
  return dht::ring_distance(lv(a), lv(b), space_.size());
}

std::uint64_t Overlay::logical_distance_to_key(dht::NodeIndex a,
                                               std::uint64_t key) const {
  return dht::ring_distance(lv(a), space_.key_to_linear(key), space_.size());
}

RouteStep Overlay::route_step(dht::NodeIndex cur, std::uint64_t key,
                              RouteCtx& ctx) const {
  dht::RouteScratch scratch;
  const dht::RouteStepInfo info = route_step(cur, key, ctx, scratch);
  RouteStep step;
  step.arrived = info.arrived;
  step.entry_index = info.entry_index;
  step.candidates = std::move(scratch.candidates);
  return step;
}

dht::RouteStepInfo Overlay::route_step(dht::NodeIndex cur, std::uint64_t key,
                                       RouteCtx& ctx,
                                       dht::RouteScratch& scratch) const {
  dht::RouteStepInfo step;
  step.entry_index = kNoEntry;
  auto& cands = scratch.candidates;
  cands.clear();
  const dht::NodeIndex owner = responsible(key);
  assert(owner != dht::kNoNode);
  if (owner == cur) {
    step.arrived = true;
    return step;
  }
  const OverlayNode& cn = nodes_.at(cur);
  const OverlayNode& on = nodes_.at(owner);
  assert(cn.alive);
  const CycloidId cid = cn.id;
  const CycloidId oid = on.id;
  const int h = cid.a == oid.a ? -1 : msb_diff(cid.a, oid.a);

  if (ctx.phase == RouteCtx::Phase::kAscend) {
    if (h >= 0 && cid.k < h) {
      // Ascending: climb toward cyclic index h, preferably within the local
      // cycle; in sparse networks, where the local cycle may have no
      // higher-k member, the outside leaf set (whose heads are the
      // primaries — highest k — of adjacent cycles) keeps the climb going.
      // k strictly increases either way, so the phase ends within d hops.
      for (std::size_t slot : {kInsideLeafEntry, kOutsideLeafEntry}) {
        cands.clear();
        for (dht::NodeIndex c : cn.table.entry(slot).candidates())
          if (nodes_[c].id.k > cid.k) cands.push_back(c);
        if (cands.empty()) continue;
        dht::stable_insertion_sort(cands.begin(), cands.end(),
                                   [&](dht::NodeIndex x, dht::NodeIndex y) {
                                     return std::abs(nodes_[x].id.k - h) <
                                            std::abs(nodes_[y].id.k - h);
                                   });
        step.entry_index = slot;
        return step;
      }
    }
    ctx.phase = RouteCtx::Phase::kDescend;
  }

  if (ctx.phase == RouteCtx::Phase::kDescend) {
    auto by_cycle_distance = [&](std::size_t slot) {
      const auto& src = cn.table.entry(slot).candidates();
      cands.assign(src.begin(), src.end());
      dht::stable_insertion_sort(
          cands.begin(), cands.end(), [&](dht::NodeIndex x, dht::NodeIndex y) {
            return space_.cycle_distance(nodes_[x].id.a, oid.a) <
                   space_.cycle_distance(nodes_[y].id.a, oid.a);
          });
      step.entry_index = slot;
    };
    if (h >= 0 && cid.k >= 1 && cid.k == h &&
        !cn.table.entry(kCubicalEntry).empty()) {
      // Flip bit h via the cubical link; every candidate makes progress.
      by_cycle_distance(kCubicalEntry);
      return step;
    }
    if (h >= 0 && cid.k >= 1 && cid.k > h &&
        !cn.table.entry(kCyclicEntry).empty()) {
      // Move between cycles: any cyclic candidate preserves the
      // already-corrected bits >= k and lowers k.
      by_cycle_distance(kCyclicEntry);
      return step;
    }
    // No descend step possible from here (target cycle reached, k exhausted,
    // or the needed entry is empty): drop to the walk permanently — the
    // monotone phase order is what guarantees termination.
    ctx.phase = RouteCtx::Phase::kWalk;
  }

  // Cycle walk / greedy fallback: any candidate strictly reducing the
  // ring-position distance to the owner qualifies. Dead (stale) candidates
  // are judged by their last-known id so the timeout path stays realistic.
  // The owner's directory position is resolved once: every candidate rank
  // then costs one binary search instead of two.
  const std::uint64_t total = space_.size();
  const std::uint64_t owner_lv = lv(owner);
  const std::size_t owner_pos = directory_.position_of(owner_lv);
  const std::size_t my_pos =
      directory_.position_gap(directory_.position_of(lv(cur)), owner_pos);
  const std::uint64_t my_iddist = dht::ring_distance(lv(cur), owner_lv, total);
  auto progress_rank = [&](dht::NodeIndex c) -> std::int64_t {
    // Returns a sort key; negative means "no progress" (filtered out).
    if (nodes_[c].alive) {
      const std::size_t pos =
          directory_.position_gap(directory_.position_of(lv(c)), owner_pos);
      if (pos >= my_pos) return -1;
      return static_cast<std::int64_t>(pos);
    }
    const std::uint64_t idd = dht::ring_distance(lv(c), owner_lv, total);
    if (idd >= my_iddist) return -1;
    return static_cast<std::int64_t>(my_pos);  // dead: rank after live ones
  };
  // Rank progress candidates across ALL entries and route through the slot
  // holding the globally best one — cubical/cyclic links double as long
  // jumps and the outside leaf set skips whole cycles, so the walk is a
  // greedy ring walk with shortcuts rather than a position-by-position
  // crawl. One structural constraint: once inside the owner's cycle, stay
  // there ("traverse cycle" phase) — a position shortcut that exits the
  // cycle can strand the query next to an owner only reachable through its
  // own cycle's leaf links.
  //
  // Ranks are computed in a single pass: each slot's qualifying candidates
  // land in a contiguous segment of scratch.ranked (entry order preserved),
  // the globally best slot is tracked on the fly, and only its segment is
  // sorted. Same comparisons in the same order as the two-pass form, so
  // the chosen slot and candidate order are bit-identical.
  const bool in_owner_cycle = cid.a == oid.a;
  auto usable = [&](dht::NodeIndex c) {
    return !in_owner_cycle || nodes_[c].id.a == oid.a;
  };
  for (int relax = 0; relax < 2; ++relax) {
    auto& ranked = scratch.ranked;
    ranked.clear();
    std::array<std::size_t, kNumEntries + 1> seg{};
    std::size_t best_slot = kNoEntry;
    std::int64_t best_rank = -1;
    for (std::size_t slot = 0; slot < kNumEntries; ++slot) {
      seg[slot] = ranked.size();
      for (dht::NodeIndex c : cn.table.entry(slot).candidates()) {
        if (relax == 0 && !usable(c)) continue;
        const std::int64_t r = progress_rank(c);
        if (r < 0) continue;
        // Non-negative ranks cast losslessly to the scratch's uint64 keys,
        // and pair order (rank, node) is unchanged.
        ranked.emplace_back(static_cast<std::uint64_t>(r), c);
        if (best_rank < 0 || r < best_rank) {
          best_rank = r;
          best_slot = slot;
        }
      }
    }
    seg[kNumEntries] = ranked.size();
    if (best_slot != kNoEntry) {
      const auto first =
          ranked.begin() + static_cast<std::ptrdiff_t>(seg[best_slot]);
      const auto last =
          ranked.begin() + static_cast<std::ptrdiff_t>(seg[best_slot + 1]);
      dht::stable_insertion_sort(
          first, last, [](const auto& a, const auto& b) { return a < b; });
      step.entry_index = best_slot;
      for (auto it = first; it != last; ++it) cands.push_back(it->second);
      return step;
    }
  }
  // Emergency: step to the directory-adjacent node toward the owner. This
  // models the stabilized leaf-set hop that always exists in a connected
  // Cycloid; it guarantees lookup termination on any membership.
  const std::uint64_t next_id = directory_.step_toward(lv(cur), lv(owner));
  const auto next = directory_.owner_of(next_id);
  assert(next.has_value());
  step.entry_index = kNoEntry;
  cands.push_back(*next);
  return step;
}

void Overlay::check_invariants() const {
  for (dht::NodeIndex i = 0; i < nodes_.size(); ++i) {
    const OverlayNode& n = nodes_[i];
    if (!n.alive) continue;
    std::size_t outdeg = 0;
    for (std::size_t slot = 0; slot < n.table.num_entries(); ++slot) {
      for (dht::NodeIndex c : n.table.entry(slot).candidates()) {
        ++outdeg;
        if (!nodes_[c].alive) continue;  // stale link, tolerated after fail()
        assert(nodes_[c].inlinks.contains(i) &&
               "outlink without matching backward finger");
        if (slot != kOutsideLeafEntry) {
          assert(eligible(i, slot, c) && "ineligible candidate in entry");
        }
      }
    }
    (void)outdeg;
    for (const auto& f : n.inlinks.fingers()) {
      if (!nodes_[f.node].alive) continue;
      assert(nodes_[f.node].table.links_to(i) &&
             "backward finger without matching outlink");
    }
    assert(n.budget.indegree() >= 0);
    // The per-class secondary index must mirror the main directory.
    assert(directory_.owner_of(lv(i)) == std::optional<dht::NodeIndex>(i));
    assert(class_dirs_[static_cast<std::size_t>(n.id.k)].owner_of(n.id.a) ==
           std::optional<dht::NodeIndex>(i));
  }
  std::size_t class_total = 0;
  for (const auto& cd : class_dirs_) class_total += cd.size();
  assert(class_total == directory_.size() &&
         "class index out of sync with directory");
  (void)class_total;
}

}  // namespace ert::cycloid
