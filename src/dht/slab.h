// Per-overlay slab allocator for small per-node link sets.
//
// At 2^20 nodes the dominant memory cost of an overlay is not the node
// array but the heap scatter hanging off it: every RoutingEntry owned a
// std::vector<std::size_t> (24 bytes of header plus a malloc'd block of
// 8-byte indices), and every node's backward-finger list owned another.
// A Slab replaces all of those with one contiguous backing vector per
// overlay: each set becomes an 8-byte PoolRef handle (offset + packed
// size/capacity-class) into the slab, elements shrink to their natural
// width (32-bit node indices — no overlay here exceeds 2^32 slots), and
// freed blocks recycle through per-class free lists instead of returning
// to the allocator.
//
// Handles are offsets, not pointers, so they survive backing growth.
// Capacity classes are powers of two (0, 1, 2, 4, 8, ...), mirroring
// libstdc++'s vector growth, and erase shifts elements left exactly like
// vector::erase — so candidate iteration order, and therefore every Rng
// draw downstream of it, is bit-identical to the vector representation
// this replaces (tests/slab_equivalence_test.cpp pins that claim).
//
// Free lists are threaded through the first four bytes of each freed
// block (T is trivially copyable and at least four bytes wide), so the
// allocator itself needs no side storage proportional to the block count.
// Reuse is LIFO per class and single-threaded per run: deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "dht/types.h"

namespace ert::dht {

/// Handle to one block in a Slab. The size lives in the handle, so
/// size()/empty() need no slab access; only element access does.
struct PoolRef {
  static constexpr std::uint32_t kSizeBits = 27;
  static constexpr std::uint32_t kSizeMask = (1u << kSizeBits) - 1;

  std::uint32_t off = 0;
  /// Low 27 bits: element count. High 5 bits: capacity class, where class
  /// c holds 2^(c-1) elements (class 0 is the empty block at offset 0).
  std::uint32_t packed = 0;

  std::uint32_t size() const { return packed & kSizeMask; }
  std::uint32_t cls() const { return packed >> kSizeBits; }
  bool empty() const { return size() == 0; }
  void set_size(std::uint32_t s) { packed = (packed & ~kSizeMask) | s; }
  void set(std::uint32_t offset, std::uint32_t size, std::uint32_t c) {
    off = offset;
    packed = (c << kSizeBits) | size;
  }
};

template <typename T>
class Slab {
  static_assert(std::is_trivially_copyable_v<T>,
                "blocks move with memcpy semantics");
  static_assert(sizeof(T) >= sizeof(std::uint32_t),
                "free lists thread through a block's first four bytes");

 public:
  static constexpr std::uint32_t kNumClasses = 28;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  static constexpr std::uint32_t capacity_of(std::uint32_t cls) {
    return cls == 0 ? 0u : (1u << (cls - 1));
  }

  Slab() { for (auto& h : free_) h = kNil; }

  void reserve(std::size_t elements) { backing_.reserve(elements); }
  std::size_t backing_size() const { return backing_.size(); }
  std::size_t backing_capacity() const { return backing_.capacity(); }

  std::span<const T> view(const PoolRef& r) const {
    return {backing_.data() + r.off, r.size()};
  }
  std::span<T> view(PoolRef& r) {
    return {backing_.data() + r.off, r.size()};
  }
  const T& at(const PoolRef& r, std::uint32_t i) const {
    return backing_[r.off + i];
  }
  T& at(PoolRef& r, std::uint32_t i) { return backing_[r.off + i]; }

  /// Appends `v`, upgrading the block to the next capacity class when full.
  void push(PoolRef& r, const T& v) {
    if (r.size() == capacity_of(r.cls())) grow(r);
    backing_[r.off + r.size()] = v;
    r.set_size(r.size() + 1);
  }

  /// Removes the element at `i`, shifting the tail left (vector::erase
  /// semantics — preserves relative order). The block keeps its class.
  void erase_at(PoolRef& r, std::uint32_t i) {
    T* p = backing_.data() + r.off;
    const std::uint32_t n = r.size();
    for (std::uint32_t j = i + 1; j < n; ++j) p[j - 1] = p[j];
    r.set_size(n - 1);
  }

  /// Returns the block to its class free list and resets the handle.
  void release(PoolRef& r) {
    free_block(r.off, r.cls());
    r = PoolRef{};
  }

 private:
  std::uint32_t allocate(std::uint32_t cls) {
    if (free_[cls] != kNil) {
      const std::uint32_t off = free_[cls];
      std::uint32_t next = 0;
      // void* casts: the first 4 bytes of a freed block hold the free-list
      // link, which is not a T (silences -Wclass-memaccess for nontrivial T).
      std::memcpy(&next, static_cast<const void*>(backing_.data() + off),
                  sizeof(next));
      free_[cls] = next;
      return off;
    }
    assert(backing_.size() + capacity_of(cls) <
           static_cast<std::size_t>(kNil));
    const auto off = static_cast<std::uint32_t>(backing_.size());
    backing_.resize(backing_.size() + capacity_of(cls));
    return off;
  }

  void free_block(std::uint32_t off, std::uint32_t cls) {
    if (cls == 0) return;
    std::memcpy(static_cast<void*>(backing_.data() + off), &free_[cls],
                sizeof(free_[cls]));
    free_[cls] = off;
  }

  void grow(PoolRef& r) {
    const std::uint32_t new_cls = r.cls() + 1;
    assert(new_cls < kNumClasses);
    const std::uint32_t new_off = allocate(new_cls);
    T* dst = backing_.data() + new_off;  // refetch: allocate may reallocate
    const T* src = backing_.data() + r.off;
    for (std::uint32_t i = 0; i < r.size(); ++i) dst[i] = src[i];
    free_block(r.off, r.cls());
    r.set(new_off, r.size(), new_cls);
  }

  std::vector<T> backing_;
  std::uint32_t free_[kNumClasses];
};

/// Slab of routing-entry candidate sets (32-bit node indices).
using CandPool = Slab<NodeIndex32>;

}  // namespace ert::dht
