// Elastic routing-table entry.
//
// The paper's central data-structure change (Sec. 3): instead of exactly one
// neighbor per routing-table slot, each slot holds a *set* of candidate
// neighbors, all of which satisfy the slot's id constraint (e.g. all valid
// 4th fingers in loose Chord, all valid cubical neighbors in Cycloid).
// Elasticity — growing via indegree expansion and shrinking via periodic
// adaptation — operates on these candidate sets, and the randomized
// forwarding policy (Sec. 4) picks among them. The per-entry `memory` slot
// implements Mitzenmacher's load-balancing-with-memory: the least-loaded
// recent candidate is remembered and reused as one of the next poll's
// choices.
//
// Candidate sets live in a per-overlay CandPool slab (dht/slab.h) rather
// than per-entry vectors: an entry is 16 bytes and its candidates are
// 32-bit indices in a shared backing array, which is what lets a 2^20-node
// network's routing state fit in a few hundred megabytes. Mutators take
// the pool explicitly; size/kind/memory need no pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dht/slab.h"
#include "dht/types.h"

namespace ert::dht {

/// Which role this entry plays in its substrate's routing algorithm.
enum class EntryKind : std::uint8_t {
  kCubical,      // Cycloid: flips the current cyclic-index bit
  kCyclic,       // Cycloid: moves between adjacent cycles
  kInsideLeaf,   // Cycloid: same-cycle leaf set
  kOutsideLeaf,  // Cycloid: adjacent-cycle leaf set
  kFinger,       // Chord: 2^m finger (loose: successor set)
  kSuccessor,    // Chord: successor list
  kPrefix,       // Pastry/Tapestry: row/column prefix entry
  kLeaf,         // Pastry: leaf set
  kBucket,       // Kademlia: XOR-metric k-bucket (one per differing-bit level)
  kFullTable,    // D1HT: single-hop full routing table (every member)
};

class RoutingEntry {
 public:
  RoutingEntry() = default;
  explicit RoutingEntry(EntryKind kind) : kind_(kind) {}

  EntryKind kind() const { return kind_; }

  /// Adds a candidate if not already present; returns true when added.
  bool add(CandPool& pool, NodeIndex n);

  /// Appends without the duplicate scan. Only for entries whose
  /// construction protocol already guarantees uniqueness (the D1HT full
  /// table, where each pair links exactly once at the later join): add()'s
  /// linear scan would make an n-member join O(n^2) there.
  void append(CandPool& pool, NodeIndex n) {
    pool.push(cands_, static_cast<NodeIndex32>(n));
  }

  /// Removes a candidate; clears the memory slot if it pointed at `n`.
  /// Returns true when removed.
  bool remove(CandPool& pool, NodeIndex n);

  bool contains(const CandPool& pool, NodeIndex n) const;
  bool empty() const { return cands_.empty(); }
  std::size_t size() const { return cands_.size(); }

  /// Candidates in insertion order (erase-compacted, like the vector
  /// representation this replaces). Indices widen implicitly in range-for.
  std::span<const NodeIndex32> candidates(const CandPool& pool) const {
    return pool.view(cands_);
  }

  /// Memory slot for memory-based randomized dispatch (Sec. 4.1).
  NodeIndex memory() const {
    return memory_ == kNoNode32 ? kNoNode : NodeIndex{memory_};
  }
  void remember(NodeIndex n) { memory_ = static_cast<NodeIndex32>(n); }
  void forget() { memory_ = kNoNode32; }

  /// Returns the candidate block to the pool (node teardown).
  void release(CandPool& pool) {
    pool.release(cands_);
    memory_ = kNoNode32;
  }

 private:
  EntryKind kind_ = EntryKind::kFinger;
  NodeIndex32 memory_ = kNoNode32;
  PoolRef cands_;
};
static_assert(sizeof(RoutingEntry) == 16, "entries must stay packed");

/// A full elastic routing table: a fixed set of entries (one per slot of the
/// substrate's geometry) whose candidate lists vary in size, plus the
/// backward-finger list that mirrors this node's inlinks (Sec. 3.2: "each
/// DHT node maintains a backward outlink for each of its inlinks").
class ElasticTable {
 public:
  std::size_t add_entry(EntryKind kind) {
    entries_.emplace_back(kind);
    return entries_.size() - 1;
  }

  RoutingEntry& entry(std::size_t i) { return entries_.at(i); }
  const RoutingEntry& entry(std::size_t i) const { return entries_.at(i); }
  std::size_t num_entries() const { return entries_.size(); }

  std::vector<RoutingEntry>& entries() { return entries_; }
  const std::vector<RoutingEntry>& entries() const { return entries_; }

  /// Total outdegree: sum of candidate-set sizes over all entries.
  std::size_t outdegree() const;

  /// Removes `n` from every entry; returns how many entries dropped it.
  std::size_t remove_everywhere(CandPool& pool, NodeIndex n);

  /// True if `n` appears in any entry.
  bool links_to(const CandPool& pool, NodeIndex n) const;

  /// Drops all entries, returning their candidate blocks to the pool.
  void clear(CandPool& pool) {
    for (auto& e : entries_) e.release(pool);
    entries_.clear();
  }

 private:
  std::vector<RoutingEntry> entries_;
};

}  // namespace ert::dht
