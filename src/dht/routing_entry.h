// Elastic routing-table entry.
//
// The paper's central data-structure change (Sec. 3): instead of exactly one
// neighbor per routing-table slot, each slot holds a *set* of candidate
// neighbors, all of which satisfy the slot's id constraint (e.g. all valid
// 4th fingers in loose Chord, all valid cubical neighbors in Cycloid).
// Elasticity — growing via indegree expansion and shrinking via periodic
// adaptation — operates on these candidate sets, and the randomized
// forwarding policy (Sec. 4) picks among them. The per-entry `memory` slot
// implements Mitzenmacher's load-balancing-with-memory: the least-loaded
// recent candidate is remembered and reused as one of the next poll's
// choices.
#pragma once

#include <cstdint>
#include <vector>

#include "dht/types.h"

namespace ert::dht {

/// Which role this entry plays in its substrate's routing algorithm.
enum class EntryKind : std::uint8_t {
  kCubical,      // Cycloid: flips the current cyclic-index bit
  kCyclic,       // Cycloid: moves between adjacent cycles
  kInsideLeaf,   // Cycloid: same-cycle leaf set
  kOutsideLeaf,  // Cycloid: adjacent-cycle leaf set
  kFinger,       // Chord: 2^m finger (loose: successor set)
  kSuccessor,    // Chord: successor list
  kPrefix,       // Pastry/Tapestry: row/column prefix entry
  kLeaf,         // Pastry: leaf set
};

class RoutingEntry {
 public:
  RoutingEntry() = default;
  explicit RoutingEntry(EntryKind kind) : kind_(kind) {}

  EntryKind kind() const { return kind_; }

  /// Adds a candidate if not already present; returns true when added.
  bool add(NodeIndex n);

  /// Removes a candidate; clears the memory slot if it pointed at `n`.
  /// Returns true when removed.
  bool remove(NodeIndex n);

  bool contains(NodeIndex n) const;
  bool empty() const { return candidates_.empty(); }
  std::size_t size() const { return candidates_.size(); }

  const std::vector<NodeIndex>& candidates() const { return candidates_; }

  /// Memory slot for memory-based randomized dispatch (Sec. 4.1).
  NodeIndex memory() const { return memory_; }
  void remember(NodeIndex n) { memory_ = n; }
  void forget() { memory_ = kNoNode; }

 private:
  EntryKind kind_ = EntryKind::kFinger;
  std::vector<NodeIndex> candidates_;
  NodeIndex memory_ = kNoNode;
};

/// A full elastic routing table: a fixed set of entries (one per slot of the
/// substrate's geometry) whose candidate lists vary in size, plus the
/// backward-finger list that mirrors this node's inlinks (Sec. 3.2: "each
/// DHT node maintains a backward outlink for each of its inlinks").
class ElasticTable {
 public:
  std::size_t add_entry(EntryKind kind) {
    entries_.emplace_back(kind);
    return entries_.size() - 1;
  }

  RoutingEntry& entry(std::size_t i) { return entries_.at(i); }
  const RoutingEntry& entry(std::size_t i) const { return entries_.at(i); }
  std::size_t num_entries() const { return entries_.size(); }

  std::vector<RoutingEntry>& entries() { return entries_; }
  const std::vector<RoutingEntry>& entries() const { return entries_; }

  /// Total outdegree: sum of candidate-set sizes over all entries.
  std::size_t outdegree() const;

  /// Removes `n` from every entry; returns how many entries dropped it.
  std::size_t remove_everywhere(NodeIndex n);

  /// True if `n` appears in any entry.
  bool links_to(NodeIndex n) const;

  void clear() { entries_.clear(); }

 private:
  std::vector<RoutingEntry> entries_;
};

}  // namespace ert::dht
