// Caller-owned scratch state for the allocation-free routing fast path.
//
// The per-hop loop used to heap-allocate a fresh candidate vector in every
// overlay route_step (plus rank/sort temporaries) and move it up through
// HopStep. Instead, the routing loop's owner (one experiment engine, one
// benchmark driver, one test) keeps a single RouteScratch and passes it to
// every route_step call; the overlay writes the preference-ordered
// candidate set into `candidates` and uses `ranked` internally. Buffers
// only ever grow to the high-water mark of a single hop, so the steady
// state performs no heap allocation.
//
// Ownership rules (see docs/PERFORMANCE.md):
//  * `candidates` is valid until the next route_step call on the same
//    scratch — consume or copy it before routing again.
//  * The caller may mutate `candidates` in place between hops (the engine
//    compacts out dead candidates); the overlay never reads stale contents,
//    it clears what it uses.
//  * One scratch must not be shared across concurrent routing loops;
//    engines are per-seed single-threaded, so each engine owns one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dht/types.h"

namespace ert::dht {

struct RouteScratch {
  /// Output: preference-ordered candidate next hops (front = the
  /// deterministic choice) for the entry the hop leaves through.
  std::vector<NodeIndex> candidates;
  /// Internal: (sort key, node) pairs for the rank-and-sort phases.
  std::vector<std::pair<std::uint64_t, NodeIndex>> ranked;
};

/// Result of a scratch-based route_step; the candidate set lives in the
/// RouteScratch the caller passed in.
struct RouteStepInfo {
  bool arrived = false;
  /// Entry the query leaves through; each overlay's sentinel (kNoEntry /
  /// num_entries) marks emergency hops, exactly as in its legacy RouteStep.
  std::size_t entry_index = 0;
};

/// Stable insertion sort for the small candidate lists of the hot path.
/// Stability pins a unique output permutation, so this is exchangeable
/// with std::stable_sort — but it never allocates the merge buffer
/// std::stable_sort reaches for, which matters for the zero-allocation
/// steady-state contract.
template <typename It, typename Comp>
void stable_insertion_sort(It first, It last, Comp comp) {
  if (first == last) return;
  for (It i = first + 1; i != last; ++i) {
    auto v = std::move(*i);
    It j = i;
    while (j != first && comp(v, *(j - 1))) {
      *j = std::move(*(j - 1));
      --j;
    }
    *j = std::move(v);
  }
}

}  // namespace ert::dht
