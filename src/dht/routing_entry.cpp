#include "dht/routing_entry.h"

namespace ert::dht {

bool RoutingEntry::add(CandPool& pool, NodeIndex n) {
  if (contains(pool, n)) return false;
  pool.push(cands_, static_cast<NodeIndex32>(n));
  return true;
}

bool RoutingEntry::remove(CandPool& pool, NodeIndex n) {
  const auto cands = pool.view(cands_);
  for (std::uint32_t i = 0; i < cands.size(); ++i) {
    if (cands[i] == static_cast<NodeIndex32>(n)) {
      pool.erase_at(cands_, i);
      if (memory_ == static_cast<NodeIndex32>(n)) memory_ = kNoNode32;
      return true;
    }
  }
  return false;
}

bool RoutingEntry::contains(const CandPool& pool, NodeIndex n) const {
  for (const NodeIndex32 c : pool.view(cands_))
    if (c == static_cast<NodeIndex32>(n)) return true;
  return false;
}

std::size_t ElasticTable::outdegree() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.size();
  return total;
}

std::size_t ElasticTable::remove_everywhere(CandPool& pool, NodeIndex n) {
  std::size_t removed = 0;
  for (auto& e : entries_)
    if (e.remove(pool, n)) ++removed;
  return removed;
}

bool ElasticTable::links_to(const CandPool& pool, NodeIndex n) const {
  for (const auto& e : entries_)
    if (e.contains(pool, n)) return true;
  return false;
}

}  // namespace ert::dht
