#include "dht/routing_entry.h"

#include <algorithm>

namespace ert::dht {

bool RoutingEntry::add(NodeIndex n) {
  if (contains(n)) return false;
  candidates_.push_back(n);
  return true;
}

bool RoutingEntry::remove(NodeIndex n) {
  auto it = std::find(candidates_.begin(), candidates_.end(), n);
  if (it == candidates_.end()) return false;
  candidates_.erase(it);
  if (memory_ == n) memory_ = kNoNode;
  return true;
}

bool RoutingEntry::contains(NodeIndex n) const {
  return std::find(candidates_.begin(), candidates_.end(), n) !=
         candidates_.end();
}

std::size_t ElasticTable::outdegree() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.size();
  return total;
}

std::size_t ElasticTable::remove_everywhere(NodeIndex n) {
  std::size_t removed = 0;
  for (auto& e : entries_)
    if (e.remove(n)) ++removed;
  return removed;
}

bool ElasticTable::links_to(NodeIndex n) const {
  for (const auto& e : entries_)
    if (e.contains(n)) return true;
  return false;
}

}  // namespace ert::dht
