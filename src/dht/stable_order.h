// Allocation-free stable ordering for small candidate vectors.
//
// std::stable_sort and std::stable_partition allocate a temporary merge
// buffer on every call, which puts them off-limits in the steady-state
// adaptation paths (shed -> repair_entry runs every sweep). These drop-in
// replacements produce byte-identical results using caller-owned scratch
// that stays warm across calls:
//  * stable_sort_scratch tags each element with its original position and
//    runs an ordinary (unstable) sort with the position as final
//    tiebreaker — equal elements keep their relative order, exactly like
//    std::stable_sort;
//  * stable_partition_scratch compacts the true-group in place while
//    spilling the false-group to scratch, then appends it — both groups
//    keep their relative order, exactly like std::stable_partition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace ert::dht {

template <typename T, typename Less>
void stable_sort_scratch(std::vector<T>& v,
                         std::vector<std::pair<std::uint32_t, T>>& scratch,
                         Less less) {
  scratch.clear();
  scratch.reserve(v.size());
  for (std::uint32_t p = 0; p < v.size(); ++p) scratch.emplace_back(p, v[p]);
  std::sort(scratch.begin(), scratch.end(),
            [&](const std::pair<std::uint32_t, T>& a,
                const std::pair<std::uint32_t, T>& b) {
              if (less(a.second, b.second)) return true;
              if (less(b.second, a.second)) return false;
              return a.first < b.first;
            });
  for (std::size_t p = 0; p < v.size(); ++p) v[p] = scratch[p].second;
}

template <typename T, typename Pred>
void stable_partition_scratch(std::vector<T>& v, std::vector<T>& scratch,
                              Pred pred) {
  scratch.clear();
  scratch.reserve(v.size());
  std::size_t w = 0;
  for (const T& x : v) {
    if (pred(x))
      v[w++] = x;
    else
      scratch.push_back(x);
  }
  std::copy(scratch.begin(), scratch.end(), v.begin() + w);
}

}  // namespace ert::dht
