// Circular id-space arithmetic and successor/predecessor search over a
// sorted set of occupied ids. Shared by all three substrates: Chord uses it
// directly on its ring, Cycloid on its linearized (cubical, cyclic) order,
// Pastry on its numeric id order (leaf sets).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/types.h"

namespace ert::dht {

/// Clockwise distance from `from` to `to` on a ring of size `modulus`
/// (modulus == 0 means the full 2^64 ring).
std::uint64_t clockwise(std::uint64_t from, std::uint64_t to,
                        std::uint64_t modulus);

/// Minimum of the clockwise and counter-clockwise distances.
std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b,
                            std::uint64_t modulus);

/// True iff `x` lies in the half-open clockwise interval (from, to] on the
/// ring. Degenerate interval (from == to) contains everything (full circle).
bool in_interval(std::uint64_t x, std::uint64_t from, std::uint64_t to,
                 std::uint64_t modulus);

/// An ordered, mutable set of occupied ids on a ring, with id -> NodeIndex
/// resolution. Backing store is a sorted vector: the simulator's overlays
/// change membership (churn) far less often than they query successors.
class RingDirectory {
 public:
  explicit RingDirectory(std::uint64_t modulus) : modulus_(modulus) {}

  /// Inserts an id owned by `node`. Returns false if the id is taken.
  bool insert(std::uint64_t id, NodeIndex node);

  /// Removes an id; returns false if absent.
  bool erase(std::uint64_t id);

  bool contains(std::uint64_t id) const;
  std::optional<NodeIndex> owner_of(std::uint64_t id) const;

  /// The node responsible for `key`: owner of the first occupied id at or
  /// clockwise after `key` (Chord-style successor assignment).
  NodeIndex successor(std::uint64_t key) const;

  /// Owner of the first occupied id strictly clockwise-before `key`.
  NodeIndex predecessor(std::uint64_t key) const;

  /// Occupied id at or after `key` (wrapping); useful for neighbor probes.
  std::uint64_t successor_id(std::uint64_t key) const;
  std::uint64_t predecessor_id(std::uint64_t key) const;

  /// All occupied ids in [lo, hi) — non-wrapping range scan (lo <= hi).
  std::vector<std::uint64_t> ids_in_range(std::uint64_t lo,
                                          std::uint64_t hi) const;

  /// The k occupied ids clockwise after `key` (excluding `key` itself).
  std::vector<std::uint64_t> successors_of(std::uint64_t key,
                                           std::size_t k) const;
  std::vector<std::uint64_t> predecessors_of(std::uint64_t key,
                                             std::size_t k) const;

  /// Number of occupied positions separating two occupied ids, walking the
  /// shorter way around the sorted ring. Both ids must be occupied.
  std::size_t position_distance(std::uint64_t a, std::uint64_t b) const;

  /// Index of occupied id `id` in the sorted ring order. Pairs with
  /// position_gap so hot loops comparing many ids against one anchor can
  /// resolve the anchor's position once instead of per comparison.
  std::size_t position_of(std::uint64_t id) const;

  /// position_distance expressed on resolved position indices.
  std::size_t position_gap(std::size_t pa, std::size_t pb) const;

  /// Among `a`'s two occupied ring neighbors, the one on the shorter side
  /// toward occupied id `b` (== b when adjacent). Requires size() >= 2.
  std::uint64_t step_toward(std::uint64_t a, std::uint64_t b) const;

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  std::uint64_t modulus() const { return modulus_; }
  const std::vector<std::uint64_t>& ids() const { return ids_; }

 private:
  std::size_t lower_bound(std::uint64_t id) const;

  std::uint64_t modulus_;
  std::vector<std::uint64_t> ids_;        // sorted
  std::vector<NodeIndex> owners_;         // parallel to ids_
};

}  // namespace ert::dht
