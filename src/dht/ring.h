// Circular id-space arithmetic and successor/predecessor search over a
// sorted set of occupied ids. Shared by all three substrates: Chord uses it
// directly on its ring, Cycloid on its linearized (cubical, cyclic) order,
// Pastry on its numeric id order (leaf sets).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dht/counted_btree.h"
#include "dht/types.h"

namespace ert::dht {

/// Clockwise distance from `from` to `to` on a ring of size `modulus`
/// (modulus == 0 means the full 2^64 ring).
std::uint64_t clockwise(std::uint64_t from, std::uint64_t to,
                        std::uint64_t modulus);

/// Minimum of the clockwise and counter-clockwise distances.
std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b,
                            std::uint64_t modulus);

/// True iff `x` lies in the half-open clockwise interval (from, to] on the
/// ring. Degenerate interval (from == to) contains everything (full circle).
bool in_interval(std::uint64_t x, std::uint64_t from, std::uint64_t to,
                 std::uint64_t modulus);

/// An ordered, mutable set of occupied ids on a ring, with id -> NodeIndex
/// resolution. Backed by a counted B+-tree (counted_btree.h), so insert,
/// erase, successor search, and rank queries (position_of / position_gap)
/// are all O(log n) — churn joins and departures no longer pay the O(n)
/// element shuffle of a sorted vector.
///
/// Bulk construction: between begin_bulk() and end_bulk(), inserts are
/// staged in an append buffer (contains / size stay exact) and the tree is
/// built once from the sorted batch — O(n log n) for the whole batch
/// instead of n tree descents with node splits. Any other query issued
/// mid-bulk transparently flushes the staged batch first, so results are
/// identical to the unstaged sequence; the structure is pure and draw-free
/// either way.
class RingDirectory {
 public:
  explicit RingDirectory(std::uint64_t modulus) : modulus_(modulus) {}

  /// Inserts an id owned by `node`. Returns false if the id is taken.
  bool insert(std::uint64_t id, NodeIndex node);

  /// Removes an id; returns false if absent.
  bool erase(std::uint64_t id);

  bool contains(std::uint64_t id) const;
  std::optional<NodeIndex> owner_of(std::uint64_t id) const;

  /// The node responsible for `key`: owner of the first occupied id at or
  /// clockwise after `key` (Chord-style successor assignment).
  NodeIndex successor(std::uint64_t key) const;

  /// Owner of the first occupied id strictly clockwise-before `key`.
  NodeIndex predecessor(std::uint64_t key) const;

  /// Occupied id at or after `key` (wrapping); useful for neighbor probes.
  std::uint64_t successor_id(std::uint64_t key) const;
  std::uint64_t predecessor_id(std::uint64_t key) const;

  /// All occupied ids in [lo, hi) — non-wrapping range scan (lo <= hi).
  std::vector<std::uint64_t> ids_in_range(std::uint64_t lo,
                                          std::uint64_t hi) const;

  /// Visits (id, owner) for every occupied id in [lo, hi), ascending —
  /// the allocation-free form of ids_in_range for hot scans.
  template <typename Fn>
  void for_each_in_range(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    flush_bulk();
    for (CountedBTree::Cursor c = tree_.lower_bound(lo).cur;
         CountedBTree::valid(c); c = CountedBTree::next(c)) {
      const std::uint64_t id = CountedBTree::key(c);
      if (id >= hi) break;
      fn(id, CountedBTree::value(c));
    }
  }

  /// for_each_in_range with early exit: `fn` returns false to stop the
  /// scan. Identical visit order; lets capped enumerations (expansion
  /// targets) avoid walking the rest of a large block.
  template <typename Fn>
  void for_each_in_range_until(std::uint64_t lo, std::uint64_t hi,
                               Fn&& fn) const {
    flush_bulk();
    for (CountedBTree::Cursor c = tree_.lower_bound(lo).cur;
         CountedBTree::valid(c); c = CountedBTree::next(c)) {
      const std::uint64_t id = CountedBTree::key(c);
      if (id >= hi) break;
      if (!fn(id, CountedBTree::value(c))) break;
    }
  }

  /// The k occupied ids clockwise after `key` (excluding `key` itself).
  std::vector<std::uint64_t> successors_of(std::uint64_t key,
                                           std::size_t k) const;
  std::vector<std::uint64_t> predecessors_of(std::uint64_t key,
                                             std::size_t k) const;

  /// Scratch forms of the neighbor walks: write into `out` (cleared first)
  /// so steady-state callers — table repair, indegree expansion — reuse
  /// warm capacity instead of allocating a fresh vector per query.
  void successors_of(std::uint64_t key, std::size_t k,
                     std::vector<std::uint64_t>& out) const;
  void predecessors_of(std::uint64_t key, std::size_t k,
                       std::vector<std::uint64_t>& out) const;

  /// Number of occupied positions separating two occupied ids, walking the
  /// shorter way around the sorted ring. Both ids must be occupied.
  std::size_t position_distance(std::uint64_t a, std::uint64_t b) const;

  /// Index of occupied id `id` in the sorted ring order. Pairs with
  /// position_gap so hot loops comparing many ids against one anchor can
  /// resolve the anchor's position once instead of per comparison.
  std::size_t position_of(std::uint64_t id) const;

  /// position_distance expressed on resolved position indices.
  std::size_t position_gap(std::size_t pa, std::size_t pb) const;

  /// Among `a`'s two occupied ring neighbors, the one on the shorter side
  /// toward occupied id `b` (== b when adjacent). Requires size() >= 2.
  std::uint64_t step_toward(std::uint64_t a, std::uint64_t b) const;

  /// Enters bulk-insert mode: inserts are staged, then the tree is built
  /// once from the sorted batch at end_bulk(). `expected` pre-sizes the
  /// staging buffers. Nestable-free: one level only.
  void begin_bulk(std::size_t expected = 0);
  void end_bulk();
  bool in_bulk() const { return bulk_; }

  std::size_t size() const { return tree_.size() + staged_.size(); }
  bool empty() const { return size() == 0; }
  std::uint64_t modulus() const { return modulus_; }

  /// The occupied ids in ascending order. Materialized lazily from the
  /// tree and cached until the next mutation; meant for tests and tools,
  /// not hot paths.
  const std::vector<std::uint64_t>& ids() const;

 private:
  /// lower_bound over occupied ids: rank of the first id >= `id`.
  std::size_t lower_bound(std::uint64_t id) const;

  /// Sorts and merges any staged inserts into the tree. Const because any
  /// query may trigger it mid-bulk; the logical contents never change.
  void flush_bulk() const;

  std::uint64_t modulus_;
  mutable CountedBTree tree_;
  bool bulk_ = false;
  mutable std::vector<std::pair<std::uint64_t, NodeIndex>> staged_;
  mutable std::unordered_set<std::uint64_t> staged_set_;
  mutable std::vector<std::uint64_t> ids_cache_;
  mutable bool ids_dirty_ = true;
};

}  // namespace ert::dht
