// Epoch-stamped membership set over dense node indices.
//
// A reusable O(1) "is this node in the set I just built?" test for hot
// enumeration loops. `begin_epoch(n)` starts a fresh logical set without
// clearing memory (one counter bump); `mark`/`test` are single array
// accesses. Used by the overlays' indegree-expansion enumerators: the
// backward-finger list grows with every adaptation sweep, so testing
// membership by scanning it made each sweep O(indegree^2) per node at
// scale. Stamps are 64-bit so the epoch counter never wraps in any
// realistic run.
#pragma once

#include <cstdint>
#include <vector>

#include "dht/types.h"

namespace ert::dht {

class StampSet {
 public:
  /// Starts a new (empty) set covering indices [0, n). Amortized O(1):
  /// only grows the backing array when `n` does.
  void begin_epoch(std::size_t n) {
    if (stamps_.size() < n) stamps_.resize(n, 0);
    ++epoch_;
  }

  void mark(NodeIndex i) { stamps_[i] = epoch_; }
  bool test(NodeIndex i) const { return stamps_[i] == epoch_; }

 private:
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ert::dht
