#include "dht/ring.h"

#include <algorithm>
#include <cassert>

namespace ert::dht {

std::uint64_t clockwise(std::uint64_t from, std::uint64_t to,
                        std::uint64_t modulus) {
  if (modulus == 0) return to - from;  // wraps naturally in 2^64
  assert(from < modulus && to < modulus);
  return to >= from ? to - from : modulus - from + to;
}

std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b,
                            std::uint64_t modulus) {
  const std::uint64_t cw = clockwise(a, b, modulus);
  const std::uint64_t ccw = clockwise(b, a, modulus);
  return std::min(cw, ccw);
}

bool in_interval(std::uint64_t x, std::uint64_t from, std::uint64_t to,
                 std::uint64_t modulus) {
  if (from == to) return true;  // full circle
  const std::uint64_t span = clockwise(from, to, modulus);
  const std::uint64_t off = clockwise(from, x, modulus);
  return off > 0 && off <= span;
}

// --- bulk staging ----------------------------------------------------------

void RingDirectory::begin_bulk(std::size_t expected) {
  assert(!bulk_ && "bulk mode does not nest");
  bulk_ = true;
  if (expected > 0) {
    staged_.reserve(expected);
    staged_set_.reserve(expected);
  }
}

void RingDirectory::end_bulk() {
  assert(bulk_);
  flush_bulk();
  bulk_ = false;
}

void RingDirectory::flush_bulk() const {
  if (staged_.empty()) return;
  std::sort(staged_.begin(), staged_.end());
  if (!tree_.empty()) {
    std::vector<std::pair<std::uint64_t, NodeIndex>> merged;
    merged.reserve(tree_.size() + staged_.size());
    tree_.materialize(merged);
    const std::size_t mid = merged.size();
    merged.insert(merged.end(), staged_.begin(), staged_.end());
    std::inplace_merge(merged.begin(),
                       merged.begin() + static_cast<std::ptrdiff_t>(mid),
                       merged.end());
    tree_.build_from_sorted(merged);
  } else {
    tree_.build_from_sorted(staged_);
  }
  staged_.clear();
  staged_set_.clear();
}

// --- membership ------------------------------------------------------------

bool RingDirectory::insert(std::uint64_t id, NodeIndex node) {
  assert(modulus_ == 0 || id < modulus_);
  if (bulk_) {
    if (staged_set_.count(id) != 0 || tree_.contains(id)) return false;
    staged_.emplace_back(id, node);
    staged_set_.insert(id);
    ids_dirty_ = true;
    return true;
  }
  if (!tree_.insert(id, node)) return false;
  ids_dirty_ = true;
  return true;
}

bool RingDirectory::erase(std::uint64_t id) {
  flush_bulk();
  if (!tree_.erase(id)) return false;
  ids_dirty_ = true;
  return true;
}

bool RingDirectory::contains(std::uint64_t id) const {
  if (!staged_.empty() && staged_set_.count(id) != 0) return true;
  return tree_.contains(id);
}

std::optional<NodeIndex> RingDirectory::owner_of(std::uint64_t id) const {
  flush_bulk();
  const NodeIndex* v = tree_.find(id);
  if (v) return *v;
  return std::nullopt;
}

// --- ordered queries -------------------------------------------------------

std::size_t RingDirectory::lower_bound(std::uint64_t id) const {
  flush_bulk();
  return tree_.lower_bound(id).rank;
}

NodeIndex RingDirectory::successor(std::uint64_t key) const {
  flush_bulk();
  if (tree_.empty()) return kNoNode;
  CountedBTree::Cursor c = tree_.lower_bound(key).cur;
  if (!CountedBTree::valid(c)) c = tree_.first();  // wrap
  return CountedBTree::value(c);
}

std::uint64_t RingDirectory::successor_id(std::uint64_t key) const {
  flush_bulk();
  assert(!tree_.empty());
  CountedBTree::Cursor c = tree_.lower_bound(key).cur;
  if (!CountedBTree::valid(c)) c = tree_.first();
  return CountedBTree::key(c);
}

NodeIndex RingDirectory::predecessor(std::uint64_t key) const {
  flush_bulk();
  if (tree_.empty()) return kNoNode;
  CountedBTree::Cursor c = tree_.lower_bound(key).cur;
  c = CountedBTree::valid(c) ? CountedBTree::prev(c) : CountedBTree::Cursor{};
  if (!CountedBTree::valid(c)) c = tree_.last();  // wrap
  return CountedBTree::value(c);
}

std::uint64_t RingDirectory::predecessor_id(std::uint64_t key) const {
  flush_bulk();
  assert(!tree_.empty());
  CountedBTree::Cursor c = tree_.lower_bound(key).cur;
  c = CountedBTree::valid(c) ? CountedBTree::prev(c) : CountedBTree::Cursor{};
  if (!CountedBTree::valid(c)) c = tree_.last();
  return CountedBTree::key(c);
}

std::size_t RingDirectory::position_distance(std::uint64_t a,
                                             std::uint64_t b) const {
  return position_gap(position_of(a), position_of(b));
}

std::size_t RingDirectory::position_of(std::uint64_t id) const {
  flush_bulk();
  const CountedBTree::Locate loc = tree_.lower_bound(id);
  assert(CountedBTree::valid(loc.cur) && CountedBTree::key(loc.cur) == id);
  return loc.rank;
}

std::size_t RingDirectory::position_gap(std::size_t pa, std::size_t pb) const {
  const std::size_t n = size();
  const std::size_t fwd = pb >= pa ? pb - pa : n - pa + pb;
  return std::min(fwd, n - fwd);
}

std::uint64_t RingDirectory::step_toward(std::uint64_t a,
                                         std::uint64_t b) const {
  flush_bulk();
  assert(tree_.size() >= 2);
  const CountedBTree::Locate la = tree_.lower_bound(a);
  assert(CountedBTree::valid(la.cur) && CountedBTree::key(la.cur) == a);
  const std::size_t pa = la.rank;
  const std::size_t pb = tree_.lower_bound(b).rank;
  const std::size_t n = tree_.size();
  const std::size_t fwd = pb >= pa ? pb - pa : n - pa + pb;
  const bool clockwise_shorter = fwd <= n - fwd;
  CountedBTree::Cursor c;
  if (clockwise_shorter) {
    c = CountedBTree::next(la.cur);
    if (!CountedBTree::valid(c)) c = tree_.first();  // (pa + 1) % n
  } else {
    c = CountedBTree::prev(la.cur);
    if (!CountedBTree::valid(c)) c = tree_.last();  // pa == 0 -> n - 1
  }
  return CountedBTree::key(c);
}

std::vector<std::uint64_t> RingDirectory::ids_in_range(std::uint64_t lo,
                                                       std::uint64_t hi) const {
  std::vector<std::uint64_t> out;
  for_each_in_range(lo, hi,
                    [&](std::uint64_t id, NodeIndex) { out.push_back(id); });
  return out;
}

std::vector<std::uint64_t> RingDirectory::successors_of(std::uint64_t key,
                                                        std::size_t k) const {
  std::vector<std::uint64_t> out;
  successors_of(key, k, out);
  return out;
}

std::vector<std::uint64_t> RingDirectory::predecessors_of(
    std::uint64_t key, std::size_t k) const {
  std::vector<std::uint64_t> out;
  predecessors_of(key, k, out);
  return out;
}

void RingDirectory::successors_of(std::uint64_t key, std::size_t k,
                                  std::vector<std::uint64_t>& out) const {
  flush_bulk();
  out.clear();
  if (tree_.empty()) return;
  k = std::min(k, tree_.size());
  CountedBTree::Cursor c = tree_.lower_bound(key).cur;
  if (CountedBTree::valid(c) && CountedBTree::key(c) == key)
    c = CountedBTree::next(c);  // exclude key itself
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (!CountedBTree::valid(c)) c = tree_.first();
    if (CountedBTree::key(c) == key) break;  // wrapped all the way around
    out.push_back(CountedBTree::key(c));
    c = CountedBTree::next(c);
  }
}

void RingDirectory::predecessors_of(std::uint64_t key, std::size_t k,
                                    std::vector<std::uint64_t>& out) const {
  flush_bulk();
  out.clear();
  if (tree_.empty()) return;
  k = std::min(k, tree_.size());
  CountedBTree::Cursor c = tree_.lower_bound(key).cur;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    c = CountedBTree::valid(c) ? CountedBTree::prev(c)
                               : CountedBTree::Cursor{};
    if (!CountedBTree::valid(c)) c = tree_.last();  // wrap below rank 0
    if (CountedBTree::key(c) == key) break;
    out.push_back(CountedBTree::key(c));
  }
}

const std::vector<std::uint64_t>& RingDirectory::ids() const {
  flush_bulk();
  if (ids_dirty_) {
    ids_cache_.clear();
    ids_cache_.reserve(tree_.size());
    for (CountedBTree::Cursor c = tree_.first(); CountedBTree::valid(c);
         c = CountedBTree::next(c))
      ids_cache_.push_back(CountedBTree::key(c));
    ids_dirty_ = false;
  }
  return ids_cache_;
}

}  // namespace ert::dht
