#include "dht/ring.h"

#include <algorithm>
#include <cassert>

namespace ert::dht {

std::uint64_t clockwise(std::uint64_t from, std::uint64_t to,
                        std::uint64_t modulus) {
  if (modulus == 0) return to - from;  // wraps naturally in 2^64
  assert(from < modulus && to < modulus);
  return to >= from ? to - from : modulus - from + to;
}

std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b,
                            std::uint64_t modulus) {
  const std::uint64_t cw = clockwise(a, b, modulus);
  const std::uint64_t ccw = clockwise(b, a, modulus);
  return std::min(cw, ccw);
}

bool in_interval(std::uint64_t x, std::uint64_t from, std::uint64_t to,
                 std::uint64_t modulus) {
  if (from == to) return true;  // full circle
  const std::uint64_t span = clockwise(from, to, modulus);
  const std::uint64_t off = clockwise(from, x, modulus);
  return off > 0 && off <= span;
}

std::size_t RingDirectory::lower_bound(std::uint64_t id) const {
  return static_cast<std::size_t>(
      std::lower_bound(ids_.begin(), ids_.end(), id) - ids_.begin());
}

bool RingDirectory::insert(std::uint64_t id, NodeIndex node) {
  assert(modulus_ == 0 || id < modulus_);
  const std::size_t pos = lower_bound(id);
  if (pos < ids_.size() && ids_[pos] == id) return false;
  ids_.insert(ids_.begin() + static_cast<std::ptrdiff_t>(pos), id);
  owners_.insert(owners_.begin() + static_cast<std::ptrdiff_t>(pos), node);
  return true;
}

bool RingDirectory::erase(std::uint64_t id) {
  const std::size_t pos = lower_bound(id);
  if (pos >= ids_.size() || ids_[pos] != id) return false;
  ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(pos));
  owners_.erase(owners_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

bool RingDirectory::contains(std::uint64_t id) const {
  const std::size_t pos = lower_bound(id);
  return pos < ids_.size() && ids_[pos] == id;
}

std::optional<NodeIndex> RingDirectory::owner_of(std::uint64_t id) const {
  const std::size_t pos = lower_bound(id);
  if (pos < ids_.size() && ids_[pos] == id) return owners_[pos];
  return std::nullopt;
}

NodeIndex RingDirectory::successor(std::uint64_t key) const {
  if (ids_.empty()) return kNoNode;
  std::size_t pos = lower_bound(key);
  if (pos == ids_.size()) pos = 0;  // wrap
  return owners_[pos];
}

std::uint64_t RingDirectory::successor_id(std::uint64_t key) const {
  assert(!ids_.empty());
  std::size_t pos = lower_bound(key);
  if (pos == ids_.size()) pos = 0;
  return ids_[pos];
}

NodeIndex RingDirectory::predecessor(std::uint64_t key) const {
  if (ids_.empty()) return kNoNode;
  std::size_t pos = lower_bound(key);
  pos = (pos == 0 ? ids_.size() : pos) - 1;
  return owners_[pos];
}

std::uint64_t RingDirectory::predecessor_id(std::uint64_t key) const {
  assert(!ids_.empty());
  std::size_t pos = lower_bound(key);
  pos = (pos == 0 ? ids_.size() : pos) - 1;
  return ids_[pos];
}

std::size_t RingDirectory::position_distance(std::uint64_t a,
                                             std::uint64_t b) const {
  return position_gap(position_of(a), position_of(b));
}

std::size_t RingDirectory::position_of(std::uint64_t id) const {
  const std::size_t p = lower_bound(id);
  assert(p < ids_.size() && ids_[p] == id);
  return p;
}

std::size_t RingDirectory::position_gap(std::size_t pa, std::size_t pb) const {
  const std::size_t fwd = pb >= pa ? pb - pa : ids_.size() - pa + pb;
  return std::min(fwd, ids_.size() - fwd);
}

std::uint64_t RingDirectory::step_toward(std::uint64_t a,
                                         std::uint64_t b) const {
  assert(ids_.size() >= 2);
  const std::size_t pa = lower_bound(a);
  const std::size_t pb = lower_bound(b);
  assert(pa < ids_.size() && ids_[pa] == a);
  const std::size_t fwd = pb >= pa ? pb - pa : ids_.size() - pa + pb;
  const bool clockwise_shorter = fwd <= ids_.size() - fwd;
  const std::size_t next =
      clockwise_shorter ? (pa + 1) % ids_.size()
                        : (pa == 0 ? ids_.size() - 1 : pa - 1);
  return ids_[next];
}

std::vector<std::uint64_t> RingDirectory::ids_in_range(std::uint64_t lo,
                                                       std::uint64_t hi) const {
  std::vector<std::uint64_t> out;
  for (std::size_t pos = lower_bound(lo); pos < ids_.size() && ids_[pos] < hi;
       ++pos)
    out.push_back(ids_[pos]);
  return out;
}

std::vector<std::uint64_t> RingDirectory::successors_of(std::uint64_t key,
                                                        std::size_t k) const {
  std::vector<std::uint64_t> out;
  if (ids_.empty()) return out;
  k = std::min(k, ids_.size());
  std::size_t pos = lower_bound(key);
  if (pos < ids_.size() && ids_[pos] == key) ++pos;  // exclude key itself
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (pos >= ids_.size()) pos = 0;
    if (ids_[pos] == key) break;  // wrapped all the way around
    out.push_back(ids_[pos]);
    ++pos;
  }
  return out;
}

std::vector<std::uint64_t> RingDirectory::predecessors_of(
    std::uint64_t key, std::size_t k) const {
  std::vector<std::uint64_t> out;
  if (ids_.empty()) return out;
  k = std::min(k, ids_.size());
  std::size_t pos = lower_bound(key);
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    pos = (pos == 0 ? ids_.size() : pos) - 1;
    if (ids_[pos] == key) break;
    out.push_back(ids_[pos]);
  }
  return out;
}

}  // namespace ert::dht
