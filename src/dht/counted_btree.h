// Counted B+-tree over (id, NodeIndex) pairs: the rank-indexed backing
// store of dht::RingDirectory.
//
// Interior nodes carry, parent-side, each child's subtree size and maximum
// key, so a single cache-friendly descent answers both key searches
// (lower_bound) and rank searches (select) in O(log n); insert and erase
// are O(log n) with the classic split / borrow / merge rebalancing. Leaves
// are doubly linked, so rank-neighbor walks (successors_of, ids_in_range,
// range scans) cost O(1) per step after the initial descent. build_from_
// sorted packs leaves left to right and stacks interior levels on top —
// O(n) from sorted input, giving the O(n log n) bulk construction path
// (sort once, then build) the harness uses for initial network assembly.
//
// The tree is pure and draw-free: no randomization, no hashing — identical
// operation sequences produce identical structures and identical query
// results on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dht/types.h"

namespace ert::dht {

class CountedBTree {
 public:
  // Node fan-outs. Leaves pack 64 pairs (one cache line of keys holds 8, so
  // a leaf spans a handful of lines); interior nodes hold 32 children with
  // their size/max arrays. Minimum fill is half, root exempt.
  static constexpr int kLeafCap = 64;
  static constexpr int kLeafMin = kLeafCap / 2;
  static constexpr int kInnerCap = 32;
  static constexpr int kInnerMin = kInnerCap / 2;

  struct Leaf {
    std::uint64_t keys[kLeafCap];
    NodeIndex vals[kLeafCap];
    int count = 0;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };

  /// A position inside the tree: a leaf and an index into it. `leaf ==
  /// nullptr` is the end/invalid position. Cursors are invalidated by any
  /// mutation.
  struct Cursor {
    const Leaf* leaf = nullptr;
    int idx = 0;
  };

  /// lower_bound result: the cursor of the first pair with key >= the
  /// probe (end cursor when none) plus its rank in [0, size()].
  struct Locate {
    Cursor cur;
    std::size_t rank = 0;
  };

  CountedBTree();
  ~CountedBTree();
  CountedBTree(const CountedBTree& other);
  CountedBTree& operator=(const CountedBTree& other);
  CountedBTree(CountedBTree&& other) noexcept;
  CountedBTree& operator=(CountedBTree&& other) noexcept;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts a pair; returns false (no change) if the key is present.
  bool insert(std::uint64_t key, NodeIndex val);

  /// Removes a key; returns false if absent.
  bool erase(std::uint64_t key);

  bool contains(std::uint64_t key) const;

  /// Pointer to the value for `key`, or nullptr when absent. Invalidated
  /// by mutation.
  const NodeIndex* find(std::uint64_t key) const;

  /// First pair with key >= `key`, with its rank (see Locate).
  Locate lower_bound(std::uint64_t key) const;

  /// Pair at rank `rank` (0-based, in key order). Requires rank < size().
  Cursor select(std::size_t rank) const;

  static bool valid(Cursor c) { return c.leaf != nullptr; }
  static std::uint64_t key(Cursor c) { return c.leaf->keys[c.idx]; }
  static NodeIndex value(Cursor c) { return c.leaf->vals[c.idx]; }

  /// First / last pair in key order; end cursor when empty.
  Cursor first() const;
  Cursor last() const;

  /// Next / previous pair in key order; end cursor past either end.
  static Cursor next(Cursor c);
  static Cursor prev(Cursor c);

  /// Replaces the contents with `pairs`, which must be sorted by key and
  /// duplicate-free. O(n).
  void build_from_sorted(
      const std::vector<std::pair<std::uint64_t, NodeIndex>>& pairs);

  /// Appends all pairs, in key order, to `out`. O(n).
  void materialize(
      std::vector<std::pair<std::uint64_t, NodeIndex>>& out) const;

  void clear();

  /// Full structural audit (sortedness, counts, size/max annotations, fill
  /// minima, leaf chain). O(n); for tests. Returns true when consistent.
  bool check_structure() const;

 private:
  struct Inner {
    void* child[kInnerCap];        // Leaf* at level 1, Inner* above
    std::size_t tsize[kInnerCap];  // subtree size per child
    std::uint64_t tmax[kInnerCap]; // max key per child's subtree
    std::size_t total = 0;         // sum of tsize[0..count)
    int count = 0;
  };

  std::size_t child_size(const void* child, int level) const;
  std::uint64_t child_max(const void* child, int level) const;
  int child_count(const void* child, int level) const;

  void* insert_rec(void* node, int level, std::uint64_t key, NodeIndex val,
                   bool& inserted);
  bool erase_rec(void* node, int level, std::uint64_t key);
  void fix_underflow(Inner* parent, int i, int level);
  void destroy_rec(void* node, int level);
  bool check_rec(const void* node, int level, bool is_root,
                 std::size_t& out_size, std::uint64_t& out_max,
                 const Leaf*& chain) const;

  void steal(CountedBTree&& other);

  void* root_ = nullptr;  // Leaf* when height_ == 0, Inner* otherwise
  int height_ = 0;        // number of interior levels above the leaves
  std::size_t size_ = 0;
  Leaf* head_ = nullptr;  // leftmost leaf
  Leaf* tail_ = nullptr;  // rightmost leaf
};

}  // namespace ert::dht
