#include "dht/counted_btree.h"

#include <algorithm>
#include <cassert>

namespace ert::dht {

CountedBTree::CountedBTree() {
  Leaf* l = new Leaf;
  root_ = l;
  head_ = tail_ = l;
}

CountedBTree::~CountedBTree() {
  if (root_) destroy_rec(root_, height_);
}

CountedBTree::CountedBTree(const CountedBTree& other) : CountedBTree() {
  std::vector<std::pair<std::uint64_t, NodeIndex>> pairs;
  other.materialize(pairs);
  build_from_sorted(pairs);
}

CountedBTree& CountedBTree::operator=(const CountedBTree& other) {
  if (this == &other) return *this;
  std::vector<std::pair<std::uint64_t, NodeIndex>> pairs;
  other.materialize(pairs);
  build_from_sorted(pairs);
  return *this;
}

CountedBTree::CountedBTree(CountedBTree&& other) noexcept {
  steal(std::move(other));
}

CountedBTree& CountedBTree::operator=(CountedBTree&& other) noexcept {
  if (this == &other) return *this;
  if (root_) destroy_rec(root_, height_);
  steal(std::move(other));
  return *this;
}

void CountedBTree::steal(CountedBTree&& other) {
  root_ = other.root_;
  height_ = other.height_;
  size_ = other.size_;
  head_ = other.head_;
  tail_ = other.tail_;
  Leaf* l = new Leaf;
  other.root_ = l;
  other.head_ = other.tail_ = l;
  other.height_ = 0;
  other.size_ = 0;
}

void CountedBTree::destroy_rec(void* node, int level) {
  if (level == 0) {
    delete static_cast<Leaf*>(node);
    return;
  }
  Inner* n = static_cast<Inner*>(node);
  for (int i = 0; i < n->count; ++i) destroy_rec(n->child[i], level - 1);
  delete n;
}

void CountedBTree::clear() {
  destroy_rec(root_, height_);
  Leaf* l = new Leaf;
  root_ = l;
  head_ = tail_ = l;
  height_ = 0;
  size_ = 0;
}

std::size_t CountedBTree::child_size(const void* child, int level) const {
  return level == 0 ? static_cast<std::size_t>(
                          static_cast<const Leaf*>(child)->count)
                    : static_cast<const Inner*>(child)->total;
}

std::uint64_t CountedBTree::child_max(const void* child, int level) const {
  if (level == 0) {
    const Leaf* l = static_cast<const Leaf*>(child);
    assert(l->count > 0);
    return l->keys[l->count - 1];
  }
  const Inner* n = static_cast<const Inner*>(child);
  assert(n->count > 0);
  return n->tmax[n->count - 1];
}

int CountedBTree::child_count(const void* child, int level) const {
  return level == 0 ? static_cast<const Leaf*>(child)->count
                    : static_cast<const Inner*>(child)->count;
}

// --- queries ---------------------------------------------------------------

CountedBTree::Locate CountedBTree::lower_bound(std::uint64_t key) const {
  if (size_ == 0) return {Cursor{}, 0};
  const void* node = root_;
  std::size_t rank = 0;
  for (int level = height_; level > 0; --level) {
    const Inner* n = static_cast<const Inner*>(node);
    int i = 0;
    while (i < n->count && n->tmax[i] < key) rank += n->tsize[i++];
    if (i == n->count) return {Cursor{}, size_};  // key beyond every id
    node = n->child[i];
  }
  const Leaf* l = static_cast<const Leaf*>(node);
  const int idx = static_cast<int>(
      std::lower_bound(l->keys, l->keys + l->count, key) - l->keys);
  if (idx == l->count) return {Cursor{}, size_};  // only at a root leaf
  return {Cursor{l, idx}, rank + static_cast<std::size_t>(idx)};
}

CountedBTree::Cursor CountedBTree::select(std::size_t rank) const {
  assert(rank < size_);
  const void* node = root_;
  for (int level = height_; level > 0; --level) {
    const Inner* n = static_cast<const Inner*>(node);
    int i = 0;
    while (rank >= n->tsize[i]) {
      rank -= n->tsize[i];
      ++i;
      assert(i < n->count);
    }
    node = n->child[i];
  }
  return Cursor{static_cast<const Leaf*>(node), static_cast<int>(rank)};
}

bool CountedBTree::contains(std::uint64_t key) const {
  return find(key) != nullptr;
}

const NodeIndex* CountedBTree::find(std::uint64_t key) const {
  const Locate loc = lower_bound(key);
  if (valid(loc.cur) && loc.cur.leaf->keys[loc.cur.idx] == key)
    return &loc.cur.leaf->vals[loc.cur.idx];
  return nullptr;
}

CountedBTree::Cursor CountedBTree::first() const {
  if (size_ == 0) return Cursor{};
  return Cursor{head_, 0};
}

CountedBTree::Cursor CountedBTree::last() const {
  if (size_ == 0) return Cursor{};
  return Cursor{tail_, tail_->count - 1};
}

CountedBTree::Cursor CountedBTree::next(Cursor c) {
  assert(valid(c));
  if (c.idx + 1 < c.leaf->count) return Cursor{c.leaf, c.idx + 1};
  return Cursor{c.leaf->next, 0};
}

CountedBTree::Cursor CountedBTree::prev(Cursor c) {
  assert(valid(c));
  if (c.idx > 0) return Cursor{c.leaf, c.idx - 1};
  const Leaf* p = c.leaf->prev;
  if (!p) return Cursor{};
  return Cursor{p, p->count - 1};
}

void CountedBTree::materialize(
    std::vector<std::pair<std::uint64_t, NodeIndex>>& out) const {
  out.reserve(out.size() + size_);
  for (const Leaf* l = size_ ? head_ : nullptr; l; l = l->next)
    for (int i = 0; i < l->count; ++i) out.emplace_back(l->keys[i], l->vals[i]);
}

// --- insert ----------------------------------------------------------------

void* CountedBTree::insert_rec(void* node, int level, std::uint64_t key,
                               NodeIndex val, bool& inserted) {
  if (level == 0) {
    Leaf* l = static_cast<Leaf*>(node);
    int idx = static_cast<int>(
        std::lower_bound(l->keys, l->keys + l->count, key) - l->keys);
    if (idx < l->count && l->keys[idx] == key) {
      inserted = false;
      return nullptr;
    }
    inserted = true;
    if (l->count < kLeafCap) {
      for (int j = l->count; j > idx; --j) {
        l->keys[j] = l->keys[j - 1];
        l->vals[j] = l->vals[j - 1];
      }
      l->keys[idx] = key;
      l->vals[idx] = val;
      ++l->count;
      return nullptr;
    }
    // Split: upper half moves to a fresh right sibling, then the new pair
    // lands in whichever half the insertion point fell into.
    Leaf* r = new Leaf;
    constexpr int keep = kLeafCap / 2;
    r->count = kLeafCap - keep;
    for (int j = 0; j < r->count; ++j) {
      r->keys[j] = l->keys[keep + j];
      r->vals[j] = l->vals[keep + j];
    }
    l->count = keep;
    r->next = l->next;
    r->prev = l;
    if (l->next)
      l->next->prev = r;
    else
      tail_ = r;
    l->next = r;
    Leaf* dst = l;
    if (idx > keep) {
      dst = r;
      idx -= keep;
    }
    for (int j = dst->count; j > idx; --j) {
      dst->keys[j] = dst->keys[j - 1];
      dst->vals[j] = dst->vals[j - 1];
    }
    dst->keys[idx] = key;
    dst->vals[idx] = val;
    ++dst->count;
    return r;
  }

  Inner* n = static_cast<Inner*>(node);
  int i = 0;
  while (i < n->count && n->tmax[i] < key) ++i;
  if (i == n->count) i = n->count - 1;  // extend the rightmost subtree
  void* split = insert_rec(n->child[i], level - 1, key, val, inserted);
  if (!inserted) return nullptr;
  const std::size_t old = n->tsize[i];
  n->tsize[i] = child_size(n->child[i], level - 1);
  n->tmax[i] = child_max(n->child[i], level - 1);
  n->total = n->total - old + n->tsize[i];
  if (!split) return nullptr;
  const std::size_t ssz = child_size(split, level - 1);
  const std::uint64_t smx = child_max(split, level - 1);
  if (n->count < kInnerCap) {
    for (int j = n->count; j > i + 1; --j) {
      n->child[j] = n->child[j - 1];
      n->tsize[j] = n->tsize[j - 1];
      n->tmax[j] = n->tmax[j - 1];
    }
    n->child[i + 1] = split;
    n->tsize[i + 1] = ssz;
    n->tmax[i + 1] = smx;
    ++n->count;
    n->total += ssz;
    return nullptr;
  }
  // Split this interior node: lay out the kInnerCap + 1 logical entries and
  // distribute them across the old node and a fresh right sibling.
  void* ch[kInnerCap + 1];
  std::size_t ts[kInnerCap + 1];
  std::uint64_t tm[kInnerCap + 1];
  for (int j = 0; j <= i; ++j) {
    ch[j] = n->child[j];
    ts[j] = n->tsize[j];
    tm[j] = n->tmax[j];
  }
  ch[i + 1] = split;
  ts[i + 1] = ssz;
  tm[i + 1] = smx;
  for (int j = i + 1; j < n->count; ++j) {
    ch[j + 1] = n->child[j];
    ts[j + 1] = n->tsize[j];
    tm[j + 1] = n->tmax[j];
  }
  constexpr int entries = kInnerCap + 1;
  constexpr int keep = (entries + 1) / 2;
  Inner* r = new Inner;
  n->count = keep;
  n->total = 0;
  for (int j = 0; j < keep; ++j) {
    n->child[j] = ch[j];
    n->tsize[j] = ts[j];
    n->tmax[j] = tm[j];
    n->total += ts[j];
  }
  r->count = entries - keep;
  r->total = 0;
  for (int j = 0; j < r->count; ++j) {
    r->child[j] = ch[keep + j];
    r->tsize[j] = ts[keep + j];
    r->tmax[j] = tm[keep + j];
    r->total += ts[keep + j];
  }
  return r;
}

bool CountedBTree::insert(std::uint64_t key, NodeIndex val) {
  bool inserted = false;
  void* split = insert_rec(root_, height_, key, val, inserted);
  if (!inserted) return false;
  ++size_;
  if (split) {
    Inner* nr = new Inner;
    nr->count = 2;
    nr->child[0] = root_;
    nr->tsize[0] = child_size(root_, height_);
    nr->tmax[0] = child_max(root_, height_);
    nr->child[1] = split;
    nr->tsize[1] = child_size(split, height_);
    nr->tmax[1] = child_max(split, height_);
    nr->total = nr->tsize[0] + nr->tsize[1];
    root_ = nr;
    ++height_;
  }
  return true;
}

// --- erase -----------------------------------------------------------------

void CountedBTree::fix_underflow(Inner* p, int i, int level) {
  const int clevel = level - 1;
  // p->count >= 2 whenever a child underflows: non-root interior nodes keep
  // >= kInnerMin children and a root with one child is collapsed after the
  // erase, so a sibling always exists.
  assert(p->count >= 2);
  if (clevel == 0) {
    Leaf* c = static_cast<Leaf*>(p->child[i]);
    Leaf* lsib = i > 0 ? static_cast<Leaf*>(p->child[i - 1]) : nullptr;
    Leaf* rsib = i + 1 < p->count ? static_cast<Leaf*>(p->child[i + 1])
                                  : nullptr;
    if (lsib && lsib->count > kLeafMin) {
      for (int j = c->count; j > 0; --j) {
        c->keys[j] = c->keys[j - 1];
        c->vals[j] = c->vals[j - 1];
      }
      c->keys[0] = lsib->keys[lsib->count - 1];
      c->vals[0] = lsib->vals[lsib->count - 1];
      ++c->count;
      --lsib->count;
      --p->tsize[i - 1];
      ++p->tsize[i];
      p->tmax[i - 1] = lsib->keys[lsib->count - 1];
      return;
    }
    if (rsib && rsib->count > kLeafMin) {
      c->keys[c->count] = rsib->keys[0];
      c->vals[c->count] = rsib->vals[0];
      ++c->count;
      for (int j = 0; j + 1 < rsib->count; ++j) {
        rsib->keys[j] = rsib->keys[j + 1];
        rsib->vals[j] = rsib->vals[j + 1];
      }
      --rsib->count;
      ++p->tsize[i];
      --p->tsize[i + 1];
      p->tmax[i] = c->keys[c->count - 1];
      return;
    }
    // Merge with a sibling; both halves fit since caps are twice the minima.
    Leaf* dst = lsib ? lsib : c;
    Leaf* src = lsib ? c : rsib;
    const int slot = lsib ? i : i + 1;  // parent entry that disappears
    for (int j = 0; j < src->count; ++j) {
      dst->keys[dst->count + j] = src->keys[j];
      dst->vals[dst->count + j] = src->vals[j];
    }
    dst->count += src->count;
    dst->next = src->next;
    if (src->next)
      src->next->prev = dst;
    else
      tail_ = dst;
    p->tsize[slot - 1] += p->tsize[slot];
    p->tmax[slot - 1] = p->tmax[slot];
    for (int j = slot; j + 1 < p->count; ++j) {
      p->child[j] = p->child[j + 1];
      p->tsize[j] = p->tsize[j + 1];
      p->tmax[j] = p->tmax[j + 1];
    }
    --p->count;
    delete src;
    return;
  }

  Inner* c = static_cast<Inner*>(p->child[i]);
  Inner* lsib = i > 0 ? static_cast<Inner*>(p->child[i - 1]) : nullptr;
  Inner* rsib =
      i + 1 < p->count ? static_cast<Inner*>(p->child[i + 1]) : nullptr;
  if (lsib && lsib->count > kInnerMin) {
    for (int j = c->count; j > 0; --j) {
      c->child[j] = c->child[j - 1];
      c->tsize[j] = c->tsize[j - 1];
      c->tmax[j] = c->tmax[j - 1];
    }
    const int m = lsib->count - 1;
    c->child[0] = lsib->child[m];
    c->tsize[0] = lsib->tsize[m];
    c->tmax[0] = lsib->tmax[m];
    ++c->count;
    --lsib->count;
    const std::size_t moved = c->tsize[0];
    c->total += moved;
    lsib->total -= moved;
    p->tsize[i - 1] -= moved;
    p->tsize[i] += moved;
    p->tmax[i - 1] = lsib->tmax[lsib->count - 1];
    return;
  }
  if (rsib && rsib->count > kInnerMin) {
    c->child[c->count] = rsib->child[0];
    c->tsize[c->count] = rsib->tsize[0];
    c->tmax[c->count] = rsib->tmax[0];
    ++c->count;
    const std::size_t moved = rsib->tsize[0];
    for (int j = 0; j + 1 < rsib->count; ++j) {
      rsib->child[j] = rsib->child[j + 1];
      rsib->tsize[j] = rsib->tsize[j + 1];
      rsib->tmax[j] = rsib->tmax[j + 1];
    }
    --rsib->count;
    c->total += moved;
    rsib->total -= moved;
    p->tsize[i] += moved;
    p->tsize[i + 1] -= moved;
    p->tmax[i] = c->tmax[c->count - 1];
    return;
  }
  Inner* dst = lsib ? lsib : c;
  Inner* src = lsib ? c : rsib;
  const int slot = lsib ? i : i + 1;
  for (int j = 0; j < src->count; ++j) {
    dst->child[dst->count + j] = src->child[j];
    dst->tsize[dst->count + j] = src->tsize[j];
    dst->tmax[dst->count + j] = src->tmax[j];
  }
  dst->count += src->count;
  dst->total += src->total;
  p->tsize[slot - 1] += p->tsize[slot];
  p->tmax[slot - 1] = p->tmax[slot];
  for (int j = slot; j + 1 < p->count; ++j) {
    p->child[j] = p->child[j + 1];
    p->tsize[j] = p->tsize[j + 1];
    p->tmax[j] = p->tmax[j + 1];
  }
  --p->count;
  delete src;
}

bool CountedBTree::erase_rec(void* node, int level, std::uint64_t key) {
  if (level == 0) {
    Leaf* l = static_cast<Leaf*>(node);
    const int idx = static_cast<int>(
        std::lower_bound(l->keys, l->keys + l->count, key) - l->keys);
    if (idx >= l->count || l->keys[idx] != key) return false;
    for (int j = idx; j + 1 < l->count; ++j) {
      l->keys[j] = l->keys[j + 1];
      l->vals[j] = l->vals[j + 1];
    }
    --l->count;
    return true;
  }
  Inner* n = static_cast<Inner*>(node);
  int i = 0;
  while (i < n->count && n->tmax[i] < key) ++i;
  if (i == n->count) return false;
  if (!erase_rec(n->child[i], level - 1, key)) return false;
  --n->total;
  --n->tsize[i];
  n->tmax[i] = child_max(n->child[i], level - 1);
  const int minc = level - 1 == 0 ? kLeafMin : kInnerMin;
  if (child_count(n->child[i], level - 1) < minc) fix_underflow(n, i, level);
  return true;
}

bool CountedBTree::erase(std::uint64_t key) {
  if (!erase_rec(root_, height_, key)) return false;
  --size_;
  while (height_ > 0) {
    Inner* r = static_cast<Inner*>(root_);
    if (r->count > 1) break;
    root_ = r->child[0];
    delete r;
    --height_;
  }
  return true;
}

// --- bulk build ------------------------------------------------------------

void CountedBTree::build_from_sorted(
    const std::vector<std::pair<std::uint64_t, NodeIndex>>& pairs) {
  destroy_rec(root_, height_);
  root_ = nullptr;
  head_ = tail_ = nullptr;
  height_ = 0;
  size_ = pairs.size();
  const std::size_t n = pairs.size();
  if (n == 0) {
    Leaf* l = new Leaf;
    root_ = l;
    head_ = tail_ = l;
    return;
  }
  // Pack leaves full left to right; when the tail would fall below the
  // minimum fill, rebalance it against its left neighbor.
  const std::size_t nleaves =
      (n + static_cast<std::size_t>(kLeafCap) - 1) / kLeafCap;
  const std::size_t rem = n - (nleaves - 1) * static_cast<std::size_t>(kLeafCap);
  auto leaf_count = [&](std::size_t li) -> std::size_t {
    if (nleaves == 1) return n;
    if (rem >= static_cast<std::size_t>(kLeafMin))
      return li == nleaves - 1 ? rem : static_cast<std::size_t>(kLeafCap);
    if (li == nleaves - 1) return kLeafMin;
    if (li == nleaves - 2) return kLeafCap - (kLeafMin - rem);
    return kLeafCap;
  };
  std::vector<void*> level_nodes;
  level_nodes.reserve(nleaves);
  std::size_t off = 0;
  Leaf* prev = nullptr;
  for (std::size_t li = 0; li < nleaves; ++li) {
    Leaf* l = new Leaf;
    const std::size_t cnt = leaf_count(li);
    for (std::size_t j = 0; j < cnt; ++j) {
      l->keys[j] = pairs[off + j].first;
      l->vals[j] = pairs[off + j].second;
    }
    l->count = static_cast<int>(cnt);
    off += cnt;
    l->prev = prev;
    if (prev)
      prev->next = l;
    else
      head_ = l;
    prev = l;
    level_nodes.push_back(l);
  }
  tail_ = prev;
  assert(off == n);
  // Stack interior levels until one node remains.
  int level = 0;
  while (level_nodes.size() > 1) {
    const std::size_t m = level_nodes.size();
    const std::size_t ninner =
        (m + static_cast<std::size_t>(kInnerCap) - 1) / kInnerCap;
    const std::size_t irem =
        m - (ninner - 1) * static_cast<std::size_t>(kInnerCap);
    auto inner_count = [&](std::size_t ii) -> std::size_t {
      if (ninner == 1) return m;
      if (irem >= static_cast<std::size_t>(kInnerMin))
        return ii == ninner - 1 ? irem : static_cast<std::size_t>(kInnerCap);
      if (ii == ninner - 1) return kInnerMin;
      if (ii == ninner - 2) return kInnerCap - (kInnerMin - irem);
      return kInnerCap;
    };
    std::vector<void*> up;
    up.reserve(ninner);
    std::size_t coff = 0;
    for (std::size_t ii = 0; ii < ninner; ++ii) {
      Inner* node = new Inner;
      const std::size_t cnt = inner_count(ii);
      node->count = static_cast<int>(cnt);
      node->total = 0;
      for (std::size_t j = 0; j < cnt; ++j) {
        void* child = level_nodes[coff + j];
        node->child[j] = child;
        node->tsize[j] = child_size(child, level);
        node->tmax[j] = child_max(child, level);
        node->total += node->tsize[j];
      }
      coff += cnt;
      up.push_back(node);
    }
    assert(coff == m);
    level_nodes.swap(up);
    ++level;
  }
  root_ = level_nodes[0];
  height_ = level;
}

// --- structural audit ------------------------------------------------------

bool CountedBTree::check_rec(const void* node, int level, bool is_root,
                             std::size_t& out_size, std::uint64_t& out_max,
                             const Leaf*& chain) const {
  if (level == 0) {
    const Leaf* l = static_cast<const Leaf*>(node);
    if (l != chain) return false;
    chain = l->next;
    if (!is_root && (l->count < kLeafMin || l->count > kLeafCap)) return false;
    if (is_root && (l->count < 0 || l->count > kLeafCap)) return false;
    for (int j = 1; j < l->count; ++j)
      if (l->keys[j - 1] >= l->keys[j]) return false;
    out_size = static_cast<std::size_t>(l->count);
    out_max = l->count > 0 ? l->keys[l->count - 1] : 0;
    return true;
  }
  const Inner* n = static_cast<const Inner*>(node);
  const int minc = is_root ? 2 : kInnerMin;
  if (n->count < minc || n->count > kInnerCap) return false;
  std::size_t total = 0;
  for (int j = 0; j < n->count; ++j) {
    std::size_t csz = 0;
    std::uint64_t cmx = 0;
    if (!check_rec(n->child[j], level - 1, false, csz, cmx, chain))
      return false;
    if (csz != n->tsize[j] || cmx != n->tmax[j]) return false;
    if (j > 0 && n->tmax[j - 1] >= n->tmax[j]) return false;
    total += csz;
  }
  if (total != n->total) return false;
  out_size = total;
  out_max = n->tmax[n->count - 1];
  return true;
}

bool CountedBTree::check_structure() const {
  if (!root_) return false;
  if (size_ == 0)
    return height_ == 0 && head_ == root_ && tail_ == root_ &&
           static_cast<const Leaf*>(root_)->count == 0;
  const Leaf* chain = head_;
  std::size_t sz = 0;
  std::uint64_t mx = 0;
  if (!check_rec(root_, height_, true, sz, mx, chain)) return false;
  if (sz != size_) return false;
  if (chain != nullptr) return false;  // every leaf visited, tail->next null
  if (head_->prev != nullptr || tail_->next != nullptr) return false;
  return true;
}

}  // namespace ert::dht
