// Shared vocabulary types for all DHT substrates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ert::dht {

/// Dense index of a node within an overlay instance. Overlays in this
/// library address nodes by index; protocol ids (Cycloid/Chord/Pastry) map
/// to and from indices inside each overlay.
using NodeIndex = std::size_t;

inline constexpr NodeIndex kNoNode = std::numeric_limits<NodeIndex>::max();

/// Compact node index used inside pooled routing state (dht/slab.h). No
/// overlay in this library addresses more than 2^32 - 1 slots, so link
/// sets store half-width indices; they widen back to NodeIndex at the API
/// boundary.
using NodeIndex32 = std::uint32_t;

inline constexpr NodeIndex32 kNoNode32 =
    std::numeric_limits<NodeIndex32>::max();

/// A raw key in the linearized id space of an overlay.
using KeyValue = std::uint64_t;

}  // namespace ert::dht
