// Shared vocabulary types for all DHT substrates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ert::dht {

/// Dense index of a node within an overlay instance. Overlays in this
/// library address nodes by index; protocol ids (Cycloid/Chord/Pastry) map
/// to and from indices inside each overlay.
using NodeIndex = std::size_t;

inline constexpr NodeIndex kNoNode = std::numeric_limits<NodeIndex>::max();

/// A raw key in the linearized id space of an overlay.
using KeyValue = std::uint64_t;

}  // namespace ert::dht
