#include "wire/wire.h"

namespace ert::wire {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kProbe: return "probe";
    case MsgType::kProbeReply: return "probe-reply";
    case MsgType::kForward: return "forward";
    case MsgType::kAdaptShed: return "adapt-shed";
    case MsgType::kAdaptGrow: return "adapt-grow";
    case MsgType::kBackwardAdd: return "backward-add";
    case MsgType::kBackwardDrop: return "backward-drop";
    case MsgType::kJoin: return "join";
    case MsgType::kLeave: return "leave";
  }
  return "?";
}

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadVarint: return "bad-varint";
    case DecodeStatus::kTrailingGarbage: return "trailing-garbage";
  }
  return "?";
}

std::size_t num_fields(MsgType t) {
  switch (t) {
    case MsgType::kProbe: return 4;
    case MsgType::kProbeReply: return 4;
    case MsgType::kForward: return 5;  // + the A-set length varint
    case MsgType::kAdaptShed: return 2;
    case MsgType::kAdaptGrow: return 2;
    case MsgType::kBackwardAdd: return 3;
    case MsgType::kBackwardDrop: return 3;
    case MsgType::kJoin: return 2;
    case MsgType::kLeave: return 1;
  }
  return 0;
}

namespace {

/// Shared encode skeleton: payload scalars in catalog order, then the
/// optional fixed-width A set (Forward only).
struct FrameSpec {
  MsgType type;
  std::uint8_t flags = 0;
  std::uint64_t f[5] = {};
  std::size_t nfields = 0;
  std::uint32_t aset_len = 0;
  const std::size_t* aset = nullptr;
};

std::size_t payload_size(const FrameSpec& s) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < s.nfields; ++i) n += varint_size(s.f[i]);
  if (s.type == MsgType::kForward)
    n += varint_size(s.aset_len) + std::size_t{4} * s.aset_len;
  return n;
}

std::size_t encode_frame(const FrameSpec& s, std::uint8_t* out,
                         std::size_t cap) {
  const std::size_t payload = payload_size(s);
  const std::size_t total = kHeaderSize + payload;
  if (payload > 0xFFFF || total > cap) return 0;
  out[0] = static_cast<std::uint8_t>(s.type);
  out[1] = s.flags;
  out[2] = static_cast<std::uint8_t>(payload & 0xFF);
  out[3] = static_cast<std::uint8_t>(payload >> 8);
  std::size_t pos = kHeaderSize;
  for (std::size_t i = 0; i < s.nfields; ++i)
    pos += put_varint(out + pos, s.f[i]);
  if (s.type == MsgType::kForward) {
    pos += put_varint(out + pos, s.aset_len);
    for (std::uint32_t i = 0; i < s.aset_len; ++i) {
      const auto v = static_cast<std::uint32_t>(s.aset[i]);
      out[pos++] = static_cast<std::uint8_t>(v & 0xFF);
      out[pos++] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
      out[pos++] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
      out[pos++] = static_cast<std::uint8_t>(v >> 24);
    }
  }
  return pos;
}

FrameSpec spec_of(const Probe& m) {
  return FrameSpec{MsgType::kProbe, 0,
                   {m.qid, m.prober, m.target, m.queue_len}, 4, 0, nullptr};
}
FrameSpec spec_of(const ProbeReply& m) {
  return FrameSpec{MsgType::kProbeReply, 0,
                   {m.qid, m.target, m.prober, m.queue_len}, 4, 0, nullptr};
}
FrameSpec spec_of(const Forward& m) {
  return FrameSpec{MsgType::kForward,
                   static_cast<std::uint8_t>(m.returning ? kFlagReturning : 0),
                   {m.qid, m.key, m.from, m.to, m.hops},
                   5,
                   m.aset_len,
                   m.aset};
}
FrameSpec spec_of(const AdaptShed& m) {
  return FrameSpec{MsgType::kAdaptShed, 0, {m.node, m.delta}, 2, 0, nullptr};
}
FrameSpec spec_of(const AdaptGrow& m) {
  return FrameSpec{MsgType::kAdaptGrow, 0, {m.node, m.delta}, 2, 0, nullptr};
}
FrameSpec spec_of(const BackwardAdd& m) {
  return FrameSpec{MsgType::kBackwardAdd, 0,
                   {m.node, m.host, m.indegree_after}, 3, 0, nullptr};
}
FrameSpec spec_of(const BackwardDrop& m) {
  return FrameSpec{MsgType::kBackwardDrop, 0,
                   {m.node, m.host, m.indegree_after}, 3, 0, nullptr};
}
FrameSpec spec_of(const Join& m) {
  return FrameSpec{MsgType::kJoin, 0, {m.node, m.overlay}, 2, 0, nullptr};
}
FrameSpec spec_of(const Leave& m) {
  return FrameSpec{MsgType::kLeave, 0, {m.node}, 1, 0, nullptr};
}

}  // namespace

#define ERT_WIRE_DEFINE_CODEC(T)                                       \
  std::size_t encoded_size(const T& m) {                               \
    return kHeaderSize + payload_size(spec_of(m));                     \
  }                                                                    \
  std::size_t encode(const T& m, std::uint8_t* out, std::size_t cap) { \
    return encode_frame(spec_of(m), out, cap);                         \
  }

ERT_WIRE_DEFINE_CODEC(Probe)
ERT_WIRE_DEFINE_CODEC(ProbeReply)
ERT_WIRE_DEFINE_CODEC(Forward)
ERT_WIRE_DEFINE_CODEC(AdaptShed)
ERT_WIRE_DEFINE_CODEC(AdaptGrow)
ERT_WIRE_DEFINE_CODEC(BackwardAdd)
ERT_WIRE_DEFINE_CODEC(BackwardDrop)
ERT_WIRE_DEFINE_CODEC(Join)
ERT_WIRE_DEFINE_CODEC(Leave)

#undef ERT_WIRE_DEFINE_CODEC

DecodeResult decode(const std::uint8_t* in, std::size_t cap) {
  DecodeResult r;
  if (cap < kHeaderSize) {
    r.status = DecodeStatus::kTruncated;
    return r;
  }
  if (in[0] >= kNumMsgTypes) {
    r.status = DecodeStatus::kBadType;
    return r;
  }
  const auto type = static_cast<MsgType>(in[0]);
  const std::uint8_t flags = in[1];
  const std::size_t payload = static_cast<std::size_t>(in[2]) |
                              (static_cast<std::size_t>(in[3]) << 8);
  if (kHeaderSize + payload > cap) {
    r.status = DecodeStatus::kTruncated;
    return r;
  }
  // From here on the frame is fully present: any inconsistency between the
  // header length and the payload's self-describing content is kBadLength,
  // except a varint that overflows 64 bits (kBadVarint).
  const std::uint8_t* p = in + kHeaderSize;
  std::size_t pos = 0;
  Decoded& m = r.msg;
  m.type = type;
  m.flags = flags;
  m.nfields = static_cast<std::uint32_t>(num_fields(type));
  for (std::uint32_t i = 0; i < m.nfields; ++i) {
    const std::size_t n = get_varint(p + pos, payload - pos, &m.f[i]);
    if (n == 0) {
      // Distinguish: a varint cut short by the declared payload end is a
      // length mismatch; ten continuation bytes are an overflow.
      r.status = payload - pos >= kMaxVarintBytes ? DecodeStatus::kBadVarint
                                                  : DecodeStatus::kBadLength;
      return r;
    }
    pos += n;
  }
  if (type == MsgType::kForward) {
    std::uint64_t len = 0;
    const std::size_t n = get_varint(p + pos, payload - pos, &len);
    if (n == 0) {
      r.status = payload - pos >= kMaxVarintBytes ? DecodeStatus::kBadVarint
                                                  : DecodeStatus::kBadLength;
      return r;
    }
    pos += n;
    if (len > (payload - pos) / 4) {
      r.status = DecodeStatus::kBadLength;
      return r;
    }
    m.aset_len = static_cast<std::uint32_t>(len);
    m.aset_bytes = p + pos;
    pos += 4 * len;
  }
  if (pos != payload) {
    r.status = DecodeStatus::kBadLength;
    return r;
  }
  r.status = DecodeStatus::kOk;
  r.consumed = kHeaderSize + payload;
  return r;
}

DecodeResult decode_exact(const std::uint8_t* in, std::size_t cap) {
  DecodeResult r = decode(in, cap);
  if (r.status == DecodeStatus::kOk && r.consumed != cap) {
    r = DecodeResult{};
    r.status = DecodeStatus::kTrailingGarbage;
  }
  return r;
}

}  // namespace ert::wire
