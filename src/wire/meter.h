// Byte-accurate send-path accounting (docs/WIRE.md).
//
// When `--bytes` is on, every protocol message the engine or an overlay
// emits is serialized through a ByteMeter: the frame is encoded into an
// arena-pooled buffer (recycled per delivery, no steady-state heap
// allocation — pinned by tests/alloc_test.cpp), its size is charged to the
// sender's egress token bucket (net::LinkModel), and the per-type /
// control-vs-query counters in metrics::ByteTotals advance. The meter is
// strictly observational: it draws no randomness, schedules no events, and
// mutates no protocol state, so a run with the meter attached is
// bit-identical in every metric to one without.
//
// Threading: none. Each engine shard owns (or is handed) its meter and
// calls it from its own event loop, mirroring the tracer's buffer-per-shard
// pattern. The sharded engine shares one LinkModel across shard meters —
// safe because each physical node's bucket is only ever touched by the
// shard that owns the node (or by the global meter during quiescence).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "net/bandwidth.h"
#include "wire/wire.h"

namespace ert::wire {

/// Knobs for `--bytes` accounting (ExperimentOptions::wire).
struct MeterConfig {
  bool bytes = false;    ///< master switch; off = meter never constructed.
  bool capture = false;  ///< record the serialized stream (golden tests).
  double link_rate = 1.0e6;   ///< egress bytes/second per physical node.
  double link_burst = 65536;  ///< token-bucket depth, bytes.
};

/// Fixed-size frame buffers handed out and recycled per delivery. All
/// blocks are kMaxFrameBytes; prewarm() pre-allocates so acquire/release
/// never touch the heap in steady state.
class BufferPool {
 public:
  void prewarm(std::size_t n) {
    while (blocks_.size() < n) {
      blocks_.push_back(std::make_unique<std::uint8_t[]>(kMaxFrameBytes));
      free_.push_back(blocks_.back().get());
    }
  }

  std::uint8_t* acquire() {
    if (free_.empty()) prewarm(blocks_.size() + 1);
    std::uint8_t* b = free_.back();
    free_.pop_back();
    return b;
  }

  void release(std::uint8_t* b) { free_.push_back(b); }

  std::size_t capacity() const { return blocks_.size(); }

 private:
  std::vector<std::unique_ptr<std::uint8_t[]>> blocks_;
  std::vector<std::uint8_t*> free_;
};

/// Serializes and accounts one side's protocol messages.
class ByteMeter {
 public:
  using ClockFn = std::function<double()>;
  /// Maps an overlay slot to the physical node that hosts it (overlays
  /// speak overlay indices; egress buckets are per physical node).
  using LinkMapFn = std::function<std::size_t(std::size_t)>;

  /// `shared_links` lets the sharded engine hand all shard meters one
  /// LinkModel; null means the meter owns its own.
  ByteMeter(const MeterConfig& cfg, ClockFn clock,
            net::LinkModel* shared_links = nullptr);

  // Engine-side sends. `sender_link` is the physical node whose egress the
  // frame is charged to. Each returns the encoded frame size in bytes.
  std::uint32_t send(const Probe& m, std::size_t sender_link);
  std::uint32_t send(const ProbeReply& m, std::size_t sender_link);
  std::uint32_t send(const Forward& m, std::size_t sender_link);
  std::uint32_t send(const AdaptShed& m, std::size_t sender_link);
  std::uint32_t send(const AdaptGrow& m, std::size_t sender_link);
  std::uint32_t send(const Join& m, std::size_t sender_link);
  std::uint32_t send(const Leave& m, std::size_t sender_link);

  // Overlay-side hooks, mirroring the trace kLinkAdopt/kLinkShed emit
  // sites. `node`/`host` are overlay slots; the configured link map (set by
  // the harness) translates the sending side to its physical node. The
  // adopting node sends the notification to the host it now points at.
  void on_backward_add(std::size_t node, std::size_t host,
                       std::size_t indegree_after);
  void on_backward_drop(std::size_t node, std::size_t host,
                        std::size_t indegree_after);

  void set_link_map(LinkMapFn fn) { link_map_ = std::move(fn); }

  /// Restricts which egress buckets this meter may charge. The sharded
  /// engine gives each shard meter a filter accepting only links the shard
  /// owns: a frame whose sender lives on another shard (a remote probe
  /// reply) still counts in the totals, but skips the shared token bucket
  /// — charging it would race with the owner shard. Unset = charge all.
  void set_bucket_filter(std::function<bool(std::size_t)> fn) {
    bucket_filter_ = std::move(fn);
  }

  /// Bytes-in-flight gauge: add on send, subtract on arrival/drop cleanup.
  void in_flight_add(std::uint32_t bytes) {
    totals_.in_flight_bytes += bytes;
    if (totals_.in_flight_bytes > totals_.peak_in_flight_bytes)
      totals_.peak_in_flight_bytes = totals_.in_flight_bytes;
  }
  void in_flight_sub(std::uint32_t bytes) { totals_.in_flight_bytes -= bytes; }

  /// Pre-sizes the egress buckets and the buffer pool so the steady-state
  /// send path never allocates (call once after the network is built, with
  /// churn headroom).
  void reserve_links(std::size_t n);

  const metrics::ByteTotals& totals() const { return totals_; }
  const std::string& capture() const { return capture_; }
  bool capturing() const { return cfg_.capture; }
  net::LinkModel* links() { return links_; }

 private:
  std::uint32_t account(MsgType type, const std::uint8_t* frame,
                        std::size_t size, std::size_t sender_link);
  template <typename M>
  std::uint32_t encode_and_account(const M& m, MsgType type,
                                   std::size_t sender_link);

  MeterConfig cfg_;
  ClockFn clock_;
  LinkMapFn link_map_;
  std::function<bool(std::size_t)> bucket_filter_;
  std::unique_ptr<net::LinkModel> owned_links_;
  net::LinkModel* links_;
  BufferPool pool_;
  metrics::ByteTotals totals_;
  std::string capture_;
};

}  // namespace ert::wire
