#include "wire/meter.h"

namespace ert::wire {

ByteMeter::ByteMeter(const MeterConfig& cfg, ClockFn clock,
                     net::LinkModel* shared_links)
    : cfg_(cfg), clock_(std::move(clock)) {
  if (shared_links) {
    links_ = shared_links;
  } else {
    owned_links_ = std::make_unique<net::LinkModel>(
        net::BandwidthParams{cfg.link_rate, cfg.link_burst});
    links_ = owned_links_.get();
  }
  pool_.prewarm(1);
}

void ByteMeter::reserve_links(std::size_t n) {
  // Eager, not reserve(): a shared LinkModel must never grow from a shard
  // thread, and pre-created buckets also keep the serial steady state
  // allocation-free.
  links_->ensure_size(n);
  pool_.prewarm(2);
}

std::uint32_t ByteMeter::account(MsgType type, const std::uint8_t* frame,
                                 std::size_t size, std::size_t sender_link) {
  const std::size_t t = static_cast<std::size_t>(type);
  totals_.msg_count[t] += 1;
  totals_.msg_bytes[t] += size;
  if (is_query(type)) {
    totals_.query_msgs += 1;
    totals_.query_bytes += size;
  } else {
    totals_.control_msgs += 1;
    totals_.control_bytes += size;
  }
  if (!bucket_filter_ || bucket_filter_(sender_link)) {
    const double delay = links_->on_send(sender_link, clock_(),
                                         static_cast<double>(size));
    if (delay > 0.0) {
      totals_.delayed_msgs += 1;
      totals_.queueing_delay_sum += delay;
      const double backlog = links_->backlog(sender_link);
      if (backlog > totals_.peak_backlog_bytes)
        totals_.peak_backlog_bytes = backlog;
    }
  }
  if (cfg_.capture) {
    static const char kHex[] = "0123456789abcdef";
    capture_ += to_string(type);
    capture_ += ' ';
    for (std::size_t i = 0; i < size; ++i) {
      capture_ += kHex[frame[i] >> 4];
      capture_ += kHex[frame[i] & 0x0F];
    }
    capture_ += '\n';
  }
  return static_cast<std::uint32_t>(size);
}

template <typename M>
std::uint32_t ByteMeter::encode_and_account(const M& m, MsgType type,
                                            std::size_t sender_link) {
  std::uint8_t* buf = pool_.acquire();
  const std::size_t size = encode(m, buf, kMaxFrameBytes);
  const std::uint32_t r = account(type, buf, size, sender_link);
  pool_.release(buf);
  return r;
}

std::uint32_t ByteMeter::send(const Probe& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kProbe, sender_link);
}
std::uint32_t ByteMeter::send(const ProbeReply& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kProbeReply, sender_link);
}
std::uint32_t ByteMeter::send(const Forward& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kForward, sender_link);
}
std::uint32_t ByteMeter::send(const AdaptShed& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kAdaptShed, sender_link);
}
std::uint32_t ByteMeter::send(const AdaptGrow& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kAdaptGrow, sender_link);
}
std::uint32_t ByteMeter::send(const Join& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kJoin, sender_link);
}
std::uint32_t ByteMeter::send(const Leave& m, std::size_t sender_link) {
  return encode_and_account(m, MsgType::kLeave, sender_link);
}

void ByteMeter::on_backward_add(std::size_t node, std::size_t host,
                                std::size_t indegree_after) {
  const BackwardAdd m{node, host, indegree_after};
  const std::size_t link = link_map_ ? link_map_(node) : node;
  encode_and_account(m, MsgType::kBackwardAdd, link);
}

void ByteMeter::on_backward_drop(std::size_t node, std::size_t host,
                                 std::size_t indegree_after) {
  const BackwardDrop m{node, host, indegree_after};
  const std::size_t link = link_map_ ? link_map_(node) : node;
  encode_and_account(m, MsgType::kBackwardDrop, link);
}

}  // namespace ert::wire
