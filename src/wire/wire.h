// Compact binary wire format for the protocol messages (docs/WIRE.md).
//
// The simulator historically moved in-memory structs between nodes; the
// paper counts "traffic" in hops. Production DHT congestion is bytes in
// flight, and the single-hop DHT line of work treats control-traffic bytes
// as a first-class metric — so every protocol message (probe, probe-reply,
// forward, adapt shed/grow, backward-finger add/drop, join/leave) gets a
// canonical serialized form, produced on the send path when byte
// accounting is on (wire::ByteMeter) and consumed by the golden wire
// traces, the differential fuzz, and tracecat's size reconstruction.
//
// Frame layout (little-endian, no padding):
//
//   byte 0      message type (MsgType)
//   byte 1      flags (kFlagReturning on response-leg forwards)
//   bytes 2-3   payload length in bytes, u16 LE
//   bytes 4...  payload
//
// Payload scalars are LEB128 varints (7 bits per byte, little-endian,
// high bit = continuation, at most 10 bytes for a u64). The Forward
// payload ends with its overloaded set A as |A| fixed-width 4-byte LE
// entries: fixed width keeps the encoded size a pure function of |A| (so
// tracecat can reconstruct byte counts from trace records, which carry
// |A| but not the members) and lets a decoder scan the set in place
// without copying.
//
// Decoding is zero-copy: scalars decode into a fixed Decoded struct and
// the A set stays a view into the input buffer. decode() never reads past
// `cap` and classifies every malformed input with a precise DecodeStatus
// (pinned by tests/wire_fuzz_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ert::wire {

/// Every message the simulated protocol exchanges between distinct
/// physical nodes. Query traffic is kForward (including response legs);
/// everything else is control traffic.
enum class MsgType : std::uint8_t {
  kProbe = 0,         ///< Algorithm 4 load probe: qid, prober, target, qlen.
  kProbeReply = 1,    ///< probe answer: qid, target, prober, queue_len.
  kForward = 2,       ///< query hop: qid, key, from, to, hops, A set.
  kAdaptShed = 3,     ///< Algorithm 3 shed decision: node, delta.
  kAdaptGrow = 4,     ///< Algorithm 3 grow decision: node, delta.
  kBackwardAdd = 5,   ///< backward-finger adopt: node, host, indegree_after.
  kBackwardDrop = 6,  ///< backward-finger drop: node, host, indegree_after.
  kJoin = 7,          ///< membership join: real node, overlay slot.
  kLeave = 8,         ///< graceful departure notice: real node.
};

inline constexpr std::size_t kNumMsgTypes = 9;

/// Canonical lowercase name, e.g. "forward" (golden capture lines, tools).
const char* to_string(MsgType t);

/// Query-plane traffic (kForward); everything else is control plane.
inline bool is_query(MsgType t) { return t == MsgType::kForward; }

inline constexpr std::size_t kHeaderSize = 4;
/// Forward flag: this frame is a response leg retracing the query path.
inline constexpr std::uint8_t kFlagReturning = 0x01;

/// Largest frame the catalog can produce with an A set capped at
/// core::kOverloadedSetCap (64): header + 5 ten-byte varints + 64 * 4.
/// Pool buffers reserve this once so the steady-state encode path never
/// allocates.
inline constexpr std::size_t kMaxFrameBytes = kHeaderSize + 5 * 10 + 64 * 4;

// --- varints -----------------------------------------------------------------

inline constexpr std::size_t kMaxVarintBytes = 10;

/// Encoded size of v as a LEB128 varint (1..10 bytes).
inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Writes v; the caller guarantees room (use varint_size). Returns bytes
/// written.
inline std::size_t put_varint(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80u;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

/// Reads one varint from in[0..cap). Returns bytes consumed, or 0 when the
/// buffer ends mid-varint or the encoding runs past 10 bytes (overflow).
inline std::size_t get_varint(const std::uint8_t* in, std::size_t cap,
                              std::uint64_t* v) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < cap && i < kMaxVarintBytes; ++i) {
    const std::uint8_t b = in[i];
    if (i == 9 && b > 0x01) return 0;  // would overflow 64 bits
    acc |= static_cast<std::uint64_t>(b & 0x7Fu) << (7 * i);
    if ((b & 0x80u) == 0) {
      *v = acc;
      return i + 1;
    }
  }
  return 0;
}

// --- per-type payload structs ------------------------------------------------

struct Probe {
  std::uint64_t qid = 0;
  std::uint64_t prober = 0;
  std::uint64_t target = 0;
  std::uint64_t queue_len = 0;
};

struct ProbeReply {
  std::uint64_t qid = 0;
  std::uint64_t target = 0;
  std::uint64_t prober = 0;
  std::uint64_t queue_len = 0;
};

struct Forward {
  std::uint64_t qid = 0;
  std::uint64_t key = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t hops = 0;
  bool returning = false;
  /// The overloaded set A (Algorithm 4), as the engine holds it. Entries
  /// are truncated to 32 bits on the wire (node indices are < 2^32 — the
  /// overlay uses NodeIndex32 internally).
  std::uint32_t aset_len = 0;
  const std::size_t* aset = nullptr;
};

struct AdaptShed {
  std::uint64_t node = 0;
  std::uint64_t delta = 0;
};

struct AdaptGrow {
  std::uint64_t node = 0;
  std::uint64_t delta = 0;
};

struct BackwardAdd {
  std::uint64_t node = 0;
  std::uint64_t host = 0;
  std::uint64_t indegree_after = 0;
};

struct BackwardDrop {
  std::uint64_t node = 0;
  std::uint64_t host = 0;
  std::uint64_t indegree_after = 0;
};

struct Join {
  std::uint64_t node = 0;     ///< real node index.
  std::uint64_t overlay = 0;  ///< overlay slot the join landed on.
};

struct Leave {
  std::uint64_t node = 0;  ///< real node index.
};

// --- encoding ----------------------------------------------------------------

std::size_t encoded_size(const Probe& m);
std::size_t encoded_size(const ProbeReply& m);
std::size_t encoded_size(const Forward& m);
std::size_t encoded_size(const AdaptShed& m);
std::size_t encoded_size(const AdaptGrow& m);
std::size_t encoded_size(const BackwardAdd& m);
std::size_t encoded_size(const BackwardDrop& m);
std::size_t encoded_size(const Join& m);
std::size_t encoded_size(const Leave& m);

/// Writes the full frame (header + payload) into out[0..cap). Returns the
/// frame size, or 0 when cap is too small. Never allocates.
std::size_t encode(const Probe& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const ProbeReply& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const Forward& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const AdaptShed& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const AdaptGrow& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const BackwardAdd& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const BackwardDrop& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const Join& m, std::uint8_t* out, std::size_t cap);
std::size_t encode(const Leave& m, std::uint8_t* out, std::size_t cap);

// --- decoding ----------------------------------------------------------------

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,        ///< buffer ends before the frame does.
  kBadType,          ///< header type byte outside the catalog.
  kBadLength,        ///< header length disagrees with the payload content.
  kBadVarint,        ///< varint overflows 64 bits.
  kTrailingGarbage,  ///< decode_exact: bytes after the frame end.
};

const char* to_string(DecodeStatus s);

/// Number of varint scalar fields each message type carries (before the
/// Forward A set).
std::size_t num_fields(MsgType t);

/// One decoded message: scalars in catalog order in f[], the Forward A set
/// as a zero-copy view into the input buffer.
struct Decoded {
  MsgType type = MsgType::kProbe;
  std::uint8_t flags = 0;
  std::uint64_t f[5] = {};
  std::uint32_t nfields = 0;
  std::uint32_t aset_len = 0;
  const std::uint8_t* aset_bytes = nullptr;  ///< view; 4 bytes per entry.

  bool returning() const { return (flags & kFlagReturning) != 0; }
  std::uint32_t aset_at(std::size_t i) const {
    std::uint32_t v;
    std::memcpy(&v, aset_bytes + 4 * i, 4);
    return v;  // stored little-endian; this build targets LE hosts
  }
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kOk;
  std::size_t consumed = 0;  ///< frame size when kOk, else 0.
  Decoded msg;
};

/// Decodes one frame from in[0..cap). Trailing bytes after the frame are
/// allowed (stream decoding); `consumed` says where the next frame starts.
DecodeResult decode(const std::uint8_t* in, std::size_t cap);

/// Like decode(), but the frame must end exactly at `cap` (datagram
/// decoding); otherwise kTrailingGarbage.
DecodeResult decode_exact(const std::uint8_t* in, std::size_t cap);

}  // namespace ert::wire
