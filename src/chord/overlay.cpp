#include "chord/overlay.h"

#include "trace/trace.h"
#include "wire/meter.h"
#include <algorithm>
#include <cassert>

namespace ert::chord {

Overlay::Overlay(ChordOptions opts, PhysDistFn phys_dist)
    : opts_(opts),
      phys_dist_(std::move(phys_dist)),
      directory_(std::uint64_t{1} << opts.bits) {
  assert(opts.bits >= 3 && opts.bits <= 48);
}

dht::NodeIndex Overlay::add_node(std::uint64_t id, double capacity,
                                 int max_indegree, double beta) {
  assert(!directory_.contains(id));
  ChordNode n;
  n.id = id;
  n.alive = true;
  n.capacity = capacity;
  n.budget = core::IndegreeBudget(max_indegree, beta);
  for (int m = 0; m < opts_.bits; ++m)
    n.table.add_entry(dht::EntryKind::kFinger);
  n.table.add_entry(dht::EntryKind::kSuccessor);
  nodes_.push_back(std::move(n));
  const dht::NodeIndex idx = nodes_.size() - 1;
  directory_.insert(id, idx);
  ++alive_;
  return idx;
}

dht::NodeIndex Overlay::add_node_random(Rng& rng, double capacity,
                                        int max_indegree, double beta) {
  for (;;) {
    const std::uint64_t id = rng.bits() & (ring_size() - 1);
    if (!directory_.contains(id))
      return add_node(id, capacity, max_indegree, beta);
  }
}

bool Overlay::eligible(dht::NodeIndex owner, std::size_t slot,
                       dht::NodeIndex cand) const {
  if (owner == cand) return false;
  const ChordNode& o = nodes_.at(owner);
  const ChordNode& c = nodes_.at(cand);
  if (slot == successor_entry()) {
    // Successor list: cand among the first `successor_list` occupied ids
    // after o (positions, so churn keeps the rule meaningful).
    directory_.successors_of(o.id, opts_.successor_list, elig_scratch_);
    return std::find(elig_scratch_.begin(), elig_scratch_.end(), c.id) !=
           elig_scratch_.end();
  }
  const int m = static_cast<int>(slot);
  // Loose finger rule (Fig. 1b): cand is one of the first `finger_spread`
  // successors at or after o.id + 2^m.
  const std::uint64_t start = (o.id + (std::uint64_t{1} << m)) & (ring_size() - 1);
  if (directory_.contains(start) && c.id == start) return true;
  directory_.successors_of(start == 0 ? ring_size() - 1 : start - 1,
                           opts_.finger_spread, elig_scratch_);
  return std::find(elig_scratch_.begin(), elig_scratch_.end(), c.id) !=
         elig_scratch_.end();
}

bool Overlay::link(dht::NodeIndex from, std::size_t slot, dht::NodeIndex to,
                   bool respect_budget) {
  ChordNode& f = nodes_.at(from);
  ChordNode& t = nodes_.at(to);
  if (!f.alive || !t.alive || from == to) return false;
  if (!eligible(from, slot, to)) return false;
  if (respect_budget && !t.budget.can_accept()) return false;
  if (t.inlinks.contains(arena_.fingers, from))
    return false;  // one role per ordered pair
  if (f.table.entry(slot).size() >= opts_.finger_spread &&
      slot != successor_entry())
    return false;  // loose slot is full
  if (!f.table.entry(slot).add(arena_.cands, to)) return false;
  if (!t.budget.can_accept()) t.budget.on_forced_inlink();
  t.inlinks.add(arena_.fingers,
                core::BackwardFinger{
                    from, logical_distance(from, to),
                    phys_dist_ ? phys_dist_(from, to) : 0.0});
  t.budget.on_inlink_added();
  return true;
}

bool Overlay::unlink(dht::NodeIndex from, dht::NodeIndex to) {
  if (nodes_.at(from).table.remove_everywhere(arena_.cands, to) == 0)
    return false;
  nodes_.at(to).inlinks.remove(arena_.fingers, from);
  nodes_.at(to).budget.on_inlink_removed();
  return true;
}

void Overlay::build_table(dht::NodeIndex i) {
  ChordNode& n = nodes_.at(i);
  // Successor list first: low fingers usually coincide with the nearest
  // successors, and the one-role-per-pair rule would otherwise leave the
  // successor entry empty (fingers then diversify via the loose window).
  directory_.successors_of(n.id, opts_.successor_list, ids_scratch_);
  for (const std::uint64_t id : ids_scratch_) {
    link(i, successor_entry(), *directory_.owner_of(id), false);
  }
  // Fingers: for each m link the successor of id + 2^m (the strict-Chord
  // choice) when it accepts; otherwise walk the loose window.
  for (int m = 0; m < opts_.bits; ++m) {
    const std::uint64_t start =
        (n.id + (std::uint64_t{1} << m)) & (ring_size() - 1);
    bool linked = false;
    std::uint64_t probe = start == 0 ? ring_size() - 1 : start - 1;
    directory_.successors_of(probe, opts_.finger_spread, ids_scratch_);
    for (const std::uint64_t id : ids_scratch_) {
      const dht::NodeIndex cand = *directory_.owner_of(id);
      if (link(i, static_cast<std::size_t>(m), cand,
               opts_.enforce_indegree_bounds)) {
        linked = true;
        break;
      }
    }
    if (!linked) {
      // Routability over bounds: force the strict successor if possible.
      if (const dht::NodeIndex cand = directory_.successor(start);
          cand != dht::kNoNode && cand != i)
        link(i, static_cast<std::size_t>(m), cand, false);
    }
  }
  n.table_built = true;
}

std::vector<ExpansionTarget> Overlay::expansion_targets(
    dht::NodeIndex i, std::size_t max_targets) const {
  std::vector<ExpansionTarget> out;
  expansion_targets_into(i, max_targets, out);
  return out;
}

void Overlay::expansion_targets_into(dht::NodeIndex i, std::size_t max_targets,
                                     std::vector<ExpansionTarget>& out) const {
  out.clear();
  const ChordNode& me = nodes_.at(i);
  // O(1) "already a backward finger" test: scanning the finger list per
  // examined host made each adaptation sweep O(indegree^2) per node.
  inlink_seen_.begin_epoch(nodes_.size());
  for (const auto& f : me.inlinks.fingers(arena_.fingers))
    inlink_seen_.mark(f.node);
  for (int m = opts_.bits - 1; m >= 0 && out.size() < max_targets; --m) {
    // Hosts j with succ(j + 2^m) near i: j in the predecessors of i - 2^m.
    const std::uint64_t base =
        (me.id - (std::uint64_t{1} << m)) & (ring_size() - 1);
    directory_.predecessors_of((base + 1) & (ring_size() - 1),
                               opts_.finger_spread, ids_scratch_);
    for (const std::uint64_t id : ids_scratch_) {
      if (out.size() >= max_targets) break;
      const dht::NodeIndex host = *directory_.owner_of(id);
      if (host == i || inlink_seen_.test(host)) continue;
      out.emplace_back(host, static_cast<std::size_t>(m));
    }
  }
  // Predecessors can adopt us into their successor lists.
  directory_.predecessors_of(me.id, opts_.successor_list, ids_scratch_);
  for (const std::uint64_t id : ids_scratch_) {
    if (out.size() >= max_targets) break;
    const dht::NodeIndex host = *directory_.owner_of(id);
    if (host == i || inlink_seen_.test(host)) continue;
    out.emplace_back(host, successor_entry());
  }
}

int Overlay::expand_indegree(dht::NodeIndex i, int want,
                             std::size_t max_probes) {
  if (want <= 0) return 0;
  int gained = 0;
  expansion_targets_into(i, max_probes, targets_scratch_);
  for (const auto& [host, slot] : targets_scratch_) {
    if (gained >= want) break;
    if (!nodes_[i].budget.can_accept()) break;
    if (link(host, slot, i, /*respect_budget=*/true)) {
      ++gained;
      if (trace_ && trace_->wants(trace::Category::kLink))
        trace_->emit(trace::EventType::kLinkAdopt, i, 0,
                     static_cast<std::int64_t>(host),
                     static_cast<std::int64_t>(nodes_[i].inlinks.size()));
      if (meter_)
        meter_->on_backward_add(i, host, nodes_[i].inlinks.size());
    }
  }
  return gained;
}

int Overlay::shed_indegree(dht::NodeIndex i, int count) {
  if (count <= 0) return 0;
  nodes_.at(i).inlinks.pick_evictions(arena_.fingers,
                                      static_cast<std::size_t>(count),
                                      evict_scratch_, evict_out_);
  int shed = 0;
  for (dht::NodeIndex v : evict_out_)
    if (unlink(v, i)) {
      ++shed;
      if (trace_ && trace_->wants(trace::Category::kLink))
        trace_->emit(trace::EventType::kLinkShed, i, 0,
                     static_cast<std::int64_t>(v),
                     static_cast<std::int64_t>(nodes_[i].inlinks.size()));
      if (meter_)
        meter_->on_backward_drop(i, v, nodes_[i].inlinks.size());
    }
  return shed;
}

void Overlay::leave_graceful(dht::NodeIndex i) {
  ChordNode& n = nodes_.at(i);
  if (!n.alive) return;
  for (auto& entry : n.table.entries()) {
    // The per-candidate bookkeeping touches only the finger pool, so the
    // candidate span stays valid; the whole block is released afterwards.
    for (const dht::NodeIndex32 c : entry.candidates(arena_.cands)) {
      nodes_[c].inlinks.remove(arena_.fingers, i);
      nodes_[c].budget.on_inlink_removed();
    }
    entry.release(arena_.cands);
  }
  for (const auto& f : n.inlinks.fingers(arena_.fingers))
    nodes_[f.node].table.remove_everywhere(arena_.cands, i);
  n.inlinks.clear(arena_.fingers);
  directory_.erase(n.id);
  n.alive = false;
  --alive_;
}

void Overlay::fail(dht::NodeIndex i) {
  ChordNode& n = nodes_.at(i);
  if (!n.alive) return;
  directory_.erase(n.id);
  n.alive = false;
  --alive_;
}

void Overlay::purge_dead(dht::NodeIndex at, dht::NodeIndex dead) {
  ChordNode& n = nodes_.at(at);
  n.table.remove_everywhere(arena_.cands, dead);
  if (n.inlinks.remove(arena_.fingers, dead)) n.budget.on_inlink_removed();
}

void Overlay::repair_entry(dht::NodeIndex i, std::size_t slot) {
  ChordNode& n = nodes_.at(i);
  auto& entry = n.table.entry(slot);
  for (const dht::NodeIndex32 c : entry.candidates(arena_.cands))
    if (nodes_[c].alive) return;
  if (directory_.size() < 2) return;
  if (slot == successor_entry()) {
    directory_.successors_of(n.id, opts_.successor_list, ids_scratch_);
    for (const std::uint64_t id : ids_scratch_)
      link(i, slot, *directory_.owner_of(id), false);
    return;
  }
  const int m = static_cast<int>(slot);
  const std::uint64_t start =
      (n.id + (std::uint64_t{1} << m)) & (ring_size() - 1);
  directory_.successors_of(start == 0 ? ring_size() - 1 : start - 1,
                           opts_.finger_spread, ids_scratch_);
  for (const std::uint64_t id : ids_scratch_) {
    if (link(i, slot, *directory_.owner_of(id),
             opts_.enforce_indegree_bounds))
      return;
  }
  if (const dht::NodeIndex cand = directory_.successor(start);
      cand != dht::kNoNode && cand != i)
    link(i, slot, cand, false);
}

std::uint64_t Overlay::logical_distance_to_key(dht::NodeIndex a,
                                               std::uint64_t key) const {
  return dht::ring_distance(nodes_.at(a).id, key & (ring_size() - 1),
                            ring_size());
}

dht::NodeIndex Overlay::responsible(std::uint64_t key) const {
  return directory_.successor(key & (ring_size() - 1));
}

std::uint64_t Overlay::logical_distance(dht::NodeIndex a,
                                        dht::NodeIndex b) const {
  return dht::ring_distance(nodes_.at(a).id, nodes_.at(b).id, ring_size());
}

RouteStep Overlay::route_step(dht::NodeIndex cur, std::uint64_t key) const {
  dht::RouteScratch scratch;
  const dht::RouteStepInfo info = route_step(cur, key, scratch);
  RouteStep step;
  step.arrived = info.arrived;
  step.entry_index = info.entry_index;
  step.candidates = std::move(scratch.candidates);
  return step;
}

dht::RouteStepInfo Overlay::route_step(dht::NodeIndex cur, std::uint64_t key,
                                       dht::RouteScratch& scratch) const {
  dht::RouteStepInfo step;
  step.entry_index = 0;
  auto& cands = scratch.candidates;
  cands.clear();
  const dht::NodeIndex owner = responsible(key);
  assert(owner != dht::kNoNode);
  if (owner == cur) {
    step.arrived = true;
    return step;
  }
  const ChordNode& cn = nodes_.at(cur);
  const std::uint64_t target = nodes_.at(owner).id;
  const std::uint64_t my_gap = dht::clockwise(cn.id, target, ring_size());
  // Greedy: the slot whose best candidate lands clockwise-closest to the
  // owner without overshooting.
  std::size_t best_slot = cn.table.num_entries();
  std::uint64_t best_gap = my_gap;
  for (std::size_t slot = 0; slot < cn.table.num_entries(); ++slot) {
    for (const dht::NodeIndex32 c : cn.table.entry(slot).candidates(arena_.cands)) {
      const std::uint64_t step_fwd =
          dht::clockwise(cn.id, nodes_[c].id, ring_size());
      if (step_fwd == 0 || step_fwd > my_gap) continue;  // overshoot / self
      const std::uint64_t gap = my_gap - step_fwd;
      if (gap < best_gap) {
        best_gap = gap;
        best_slot = slot;
      }
    }
  }
  if (best_slot < cn.table.num_entries()) {
    auto& ranked = scratch.ranked;
    ranked.clear();
    for (const dht::NodeIndex32 c :
         cn.table.entry(best_slot).candidates(arena_.cands)) {
      const std::uint64_t step_fwd =
          dht::clockwise(cn.id, nodes_[c].id, ring_size());
      if (step_fwd == 0 || step_fwd > my_gap) continue;
      ranked.emplace_back(my_gap - step_fwd, c);
    }
    dht::stable_insertion_sort(
        ranked.begin(), ranked.end(),
        [](const auto& a, const auto& b) { return a < b; });
    step.entry_index = best_slot;
    for (const auto& [g, c] : ranked) cands.push_back(c);
    return step;
  }
  // Emergency: directory successor (stabilized ring link).
  const dht::NodeIndex succ = directory_.successor((cn.id + 1) & (ring_size() - 1));
  assert(succ != dht::kNoNode && succ != cur);
  step.entry_index = cn.table.num_entries();
  cands.push_back(succ);
  return step;
}

void Overlay::check_invariants() const {
  for (dht::NodeIndex i = 0; i < nodes_.size(); ++i) {
    const ChordNode& n = nodes_[i];
    if (!n.alive) continue;
    for (std::size_t slot = 0; slot < n.table.num_entries(); ++slot) {
      for (const dht::NodeIndex32 c : n.table.entry(slot).candidates(arena_.cands)) {
        if (!nodes_[c].alive) continue;
        assert(nodes_[c].inlinks.contains(arena_.fingers, i));
      }
    }
    for (const auto& f : n.inlinks.fingers(arena_.fingers)) {
      if (!nodes_[f.node].alive) continue;
      assert(nodes_[f.node].table.links_to(arena_.cands, i));
    }
  }
}

}  // namespace ert::chord
