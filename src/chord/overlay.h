// Chord substrate with the paper's loose-finger ERT variant (Sec. 3.2,
// Fig. 1).
//
// Classic Chord gives node i exactly one (m+1)-th finger: the successor of
// i + 2^m. The paper loosens the constraint so the (m+1)-th finger slot may
// hold a *set* of successors succeeding succ(i + 2^m) — that set is the
// elastic candidate list randomized forwarding picks from, and the slack is
// what lets node i ask the predecessors of (i - 2^m) to adopt it during
// indegree expansion ("node (1010-1-011) can send requests targeting
// ID in [1010-0-000, 1010-0-011] to take it as their 4th finger").
//
// The overlay mirrors the Cycloid one: indegree budgets with the
// d_inf - d >= 1 acceptance rule, backward fingers per inlink, expansion
// target enumeration, shedding, and a route_step API returning candidate
// sets per hop. Routing is greedy clockwise: any candidate strictly closer
// (clockwise) to the owner qualifies, fingers give the O(log n) jumps, and
// the successor entry guarantees progress.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dht/ring.h"
#include "dht/route_scratch.h"
#include "dht/routing_entry.h"
#include "dht/stamp_set.h"
#include "dht/types.h"
#include "ert/indegree.h"

namespace ert::trace {
class TraceSink;
}

namespace ert::wire {
class ByteMeter;
}

namespace ert::chord {

struct ChordOptions {
  int bits = 16;  ///< ring size 2^bits.
  /// Max candidates a loose finger slot may hold / how far past
  /// succ(i + 2^m) eligibility stretches, in occupied-node positions.
  std::size_t finger_spread = 4;
  std::size_t successor_list = 4;
  bool enforce_indegree_bounds = false;
};

struct ChordNode {
  std::uint64_t id = 0;
  bool alive = false;
  bool table_built = false;
  double capacity = 1.0;
  dht::ElasticTable table;  ///< entries: [0, bits) fingers, [bits] successors.
  core::IndegreeBudget budget;
  core::BackwardFingerList inlinks;
};

struct RouteStep {
  bool arrived = false;
  std::size_t entry_index = 0;
  std::vector<dht::NodeIndex> candidates;  ///< best progress first.
};

using ExpansionTarget = std::pair<dht::NodeIndex, std::size_t>;

class Overlay {
 public:
  using PhysDistFn = std::function<double(dht::NodeIndex, dht::NodeIndex)>;

  explicit Overlay(ChordOptions opts, PhysDistFn phys_dist = {});

  dht::NodeIndex add_node(std::uint64_t id, double capacity, int max_indegree,
                          double beta);
  dht::NodeIndex add_node_random(Rng& rng, double capacity, int max_indegree,
                                 double beta);

  /// Builds fingers and the successor list for `i`.
  void build_table(dht::NodeIndex i);

  int expand_indegree(dht::NodeIndex i, int want, std::size_t max_probes);
  int shed_indegree(dht::NodeIndex i, int count);
  void leave_graceful(dht::NodeIndex i);

  /// Silent failure: stale links to `i` remain until discovered (timeouts).
  void fail(dht::NodeIndex i);

  /// Purges a discovered-dead neighbor from `at`'s table and inlinks.
  void purge_dead(dht::NodeIndex at, dht::NodeIndex dead);

  /// Refills `slot` of `i` from the directory if it has no live candidate.
  void repair_entry(dht::NodeIndex i, std::size_t slot);

  dht::NodeIndex responsible(std::uint64_t key) const;
  RouteStep route_step(dht::NodeIndex cur, std::uint64_t key) const;

  /// Allocation-free hop: identical routing decision, but the candidate
  /// set is written into `scratch.candidates` instead of a fresh vector.
  dht::RouteStepInfo route_step(dht::NodeIndex cur, std::uint64_t key,
                                dht::RouteScratch& scratch) const;

  /// Ring distance from a node to a key (for forwarding tie-breaks).
  std::uint64_t logical_distance_to_key(dht::NodeIndex a,
                                        std::uint64_t key) const;

  /// Hosts that could adopt `i` into a finger slot: for each m, the
  /// predecessors of (i - 2^m) within the spread window, plus predecessors
  /// for the successor-list slot.
  std::vector<ExpansionTarget> expansion_targets(dht::NodeIndex i,
                                                 std::size_t max_targets) const;

  bool link(dht::NodeIndex from, std::size_t slot, dht::NodeIndex to,
            bool respect_budget);
  bool unlink(dht::NodeIndex from, dht::NodeIndex to);
  bool eligible(dht::NodeIndex owner, std::size_t slot,
                dht::NodeIndex cand) const;

  const ChordNode& node(dht::NodeIndex i) const { return nodes_.at(i); }
  ChordNode& mutable_node(dht::NodeIndex i) { return nodes_.at(i); }

  /// Backing store for all pooled candidate / backward-finger sets
  /// (dht/slab.h); every table or inlink operation threads through it.
  core::LinkArena& arena() { return arena_; }
  const core::LinkArena& arena() const { return arena_; }
  std::size_t num_slots() const { return nodes_.size(); }
  std::size_t alive_count() const { return alive_; }
  const dht::RingDirectory& directory() const { return directory_; }

  /// Batched construction: between these calls, add_node stages directory
  /// inserts so the ring directory is built once from the sorted batch
  /// (O(n log n) total) instead of per-insert; `expected` pre-sizes the
  /// slot vector and staging buffers. Queries stay exact throughout.
  void begin_bulk_insert(std::size_t expected) {
    if (expected > 0) nodes_.reserve(nodes_.size() + expected);
    directory_.begin_bulk(expected);
  }
  void end_bulk_insert() { directory_.end_bulk(); }

  int bits() const { return opts_.bits; }
  std::uint64_t ring_size() const { return std::uint64_t{1} << opts_.bits; }
  std::size_t successor_entry() const {
    return static_cast<std::size_t>(opts_.bits);
  }

  std::uint64_t logical_distance(dht::NodeIndex a, dht::NodeIndex b) const;

  void check_invariants() const;

  /// Installs a structured-trace sink for the ERT elasticity path
  /// (link.adopt / link.shed from expand_indegree / shed_indegree); null
  /// disables emission. Observes only. See docs/TRACING.md.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }
  void set_meter(wire::ByteMeter* meter) { meter_ = meter; }

 private:
  void expansion_targets_into(dht::NodeIndex i, std::size_t max_targets,
                              std::vector<ExpansionTarget>& out) const;

  ChordOptions opts_;
  PhysDistFn phys_dist_;
  dht::RingDirectory directory_;
  std::vector<ChordNode> nodes_;
  std::size_t alive_ = 0;
  trace::TraceSink* trace_ = nullptr;
  wire::ByteMeter* meter_ = nullptr;
  core::LinkArena arena_;
  // Warm scratch for the steady-state mutation paths (repair, adaptation),
  // so shed/grow sweeps allocate nothing once capacities settle. Two id
  // buffers because build/repair iterate one while link() -> eligible()
  // fills the other.
  mutable std::vector<std::uint64_t> ids_scratch_;
  mutable std::vector<std::uint64_t> elig_scratch_;
  std::vector<ExpansionTarget> targets_scratch_;
  mutable dht::StampSet inlink_seen_;  ///< expansion_targets_into() only.
  std::vector<core::BackwardFinger> evict_scratch_;
  std::vector<dht::NodeIndex> evict_out_;
};

}  // namespace ert::chord
