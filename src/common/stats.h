// Statistics collectors for the evaluation metrics of Sec. 5:
// percentile summaries (the paper reports 1st/99th percentiles throughout),
// online mean/variance, and time-weighted maxima for congestion tracking.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace ert {

/// Streaming mean / variance / min / max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const OnlineStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects samples and answers percentile queries (nearest-rank method,
/// matching the paper's "99th percentile" metrics).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p in [0, 100]. Nearest-rank: the smallest value such that at least
  /// p% of samples are <= it. p = 0 returns the minimum.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Summary triple the paper plots as error bars: average with 1st and 99th
/// percentiles (Figs. 5c, 7, 10c).
struct PctSummary {
  double mean = 0.0;
  double p01 = 0.0;
  double p99 = 0.0;
};

PctSummary summarize(const Percentiles& p);

/// Tracks the running maximum of a per-node quantity over simulated time
/// (used for "maximum congestion during all test cases", Sec. 5.1).
class RunningMax {
 public:
  void observe(double x) { max_ = std::max(max_, x); }
  double value() const { return max_; }
  void reset() { max_ = 0.0; }

 private:
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// boundary bins. Used for indegree distribution reporting (Fig. 6).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t b) const {
    return lo_ + width_ * static_cast<double>(b);
  }
  std::size_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ert
