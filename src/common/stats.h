// Statistics collectors for the evaluation metrics of Sec. 5:
// percentile summaries (the paper reports 1st/99th percentiles throughout),
// online mean/variance, and time-weighted maxima for congestion tracking.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ert {

/// Streaming mean / variance / min / max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const OnlineStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects samples and answers percentile queries (nearest-rank method,
/// matching the paper's "99th percentile" metrics).
///
/// Memory contract: the first `exact_limit` samples are retained verbatim
/// and queries are answered exactly (identical results — bit for bit — to
/// the historical keep-everything collector). Past the limit the retained
/// samples spill into a fixed-size log-spaced histogram and the collector
/// becomes O(1) per sample: 4096 geometric bins across [1e-6, 1e6] give a
/// worst-case relative quantile error of half a bin ratio, about 0.34%,
/// while min/max/mean stay exact. Million-query scale runs would otherwise
/// retain 8 bytes per lookup per collector.
class Percentiles {
 public:
  /// Samples retained exactly before spilling to the histogram. 65536
  /// doubles = 512 KiB, and every tier-1 workload (n = 2048 networks) stays
  /// below it, which is what keeps the regression goldens bit-identical.
  static constexpr std::size_t kDefaultExactLimit = 65536;

  Percentiles() = default;
  /// `exact_limit` = 0 streams from the first sample (tests use this to
  /// exercise the histogram path against the exact one on equal inputs).
  explicit Percentiles(std::size_t exact_limit) : exact_limit_(exact_limit) {}

  void add(double x) {
    if (!bins_.empty()) {
      add_streamed(x);
      return;
    }
    samples_.push_back(x);
    sorted_ = false;
    if (samples_.size() > exact_limit_) spill();
  }
  void reserve(std::size_t n) {
    samples_.reserve(std::min(n, exact_limit_ + 1));
  }

  std::size_t count() const {
    return bins_.empty() ? samples_.size() : count_;
  }
  bool empty() const { return count() == 0; }
  /// True once the collector has spilled to the histogram.
  bool streaming() const { return !bins_.empty(); }

  /// p in [0, 100]. Nearest-rank: the smallest value such that at least
  /// p% of samples are <= it. p = 0 returns the minimum. After spilling,
  /// the answer is the geometric midpoint of the bin holding that rank,
  /// clamped to the observed [min, max].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  /// Folds another collector into this one. Order-sensitive only through
  /// sample order while both sides are un-spilled (quantiles themselves are
  /// order-free); the sharded engine merges per-shard collectors in shard
  /// order so results are deterministic.
  void merge(const Percentiles& o);

  /// The retained samples; empty once the collector has spilled.
  const std::vector<double>& samples() const { return samples_; }
  void clear() {
    samples_.clear();
    sorted_ = false;
    bins_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  // Histogram geometry: kBins geometric bins spanning [kLo, kHi), plus an
  // underflow bin 0 and an overflow bin kBins + 1. Latencies, queue peaks,
  // and load shares all live comfortably inside six decades either way.
  static constexpr std::size_t kBins = 4096;
  static constexpr double kLo = 1e-6;
  static constexpr double kHi = 1e6;

  void add_streamed(double x);
  void spill();
  std::size_t bin_of(double x) const;
  double bin_value(std::size_t b) const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  std::size_t exact_limit_ = kDefaultExactLimit;
  std::vector<std::uint64_t> bins_;  ///< kBins + 2 counters once spilled.
  std::size_t count_ = 0;            ///< total samples once spilled.
  double sum_ = 0.0;                 ///< exact running sum once spilled.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summary triple the paper plots as error bars: average with 1st and 99th
/// percentiles (Figs. 5c, 7, 10c).
struct PctSummary {
  double mean = 0.0;
  double p01 = 0.0;
  double p99 = 0.0;
};

PctSummary summarize(const Percentiles& p);

/// Tracks the running maximum of a per-node quantity over simulated time
/// (used for "maximum congestion during all test cases", Sec. 5.1).
class RunningMax {
 public:
  void observe(double x) { max_ = std::max(max_, x); }
  double value() const { return max_; }
  void reset() { max_ = 0.0; }

 private:
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// boundary bins. Used for indegree distribution reporting (Fig. 6).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t b) const {
    return lo_ + width_ * static_cast<double>(b);
  }
  std::size_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ert
