#include "common/stats.h"

#include <cassert>
#include <numeric>

namespace ert {

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double total = static_cast<double>(n_ + o.n_);
  const double delta = o.mean_ - mean_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / total;
  mean_ += delta * static_cast<double>(o.n_) / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

namespace {

// kBins geometric bins over [kLo, kHi): bin b (1-based) covers
// [kLo * r^(b-1), kLo * r^b) with r = (kHi/kLo)^(1/kBins). Everything is
// expressed through logs so bin lookup is one std::log plus a multiply.
constexpr double kLogSpanInv = 1.0 / 27.631021115928547;  // 1 / ln(1e12)

}  // namespace

std::size_t Percentiles::bin_of(double x) const {
  if (!(x > kLo)) return 0;  // underflow (also catches NaN defensively)
  if (x >= kHi) return kBins + 1;
  const double frac = std::log(x / kLo) * kLogSpanInv;
  auto b = static_cast<std::size_t>(frac * static_cast<double>(kBins)) + 1;
  return std::min(b, kBins);
}

double Percentiles::bin_value(std::size_t b) const {
  if (b == 0) return min_;
  if (b >= kBins + 1) return max_;
  // Geometric midpoint of the bin, clamped to the observed range so the
  // reported quantiles never stray outside real data.
  const double mid = (static_cast<double>(b) - 0.5) / static_cast<double>(kBins);
  const double v = kLo * std::exp(mid / kLogSpanInv);
  return std::clamp(v, min_, max_);
}

void Percentiles::spill() {
  bins_.assign(kBins + 2, 0);
  count_ = samples_.size();
  sum_ = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  for (const double s : samples_) {
    ++bins_[bin_of(s)];
    min_ = std::min(min_, s);
    max_ = std::max(max_, s);
  }
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_ = false;
}

void Percentiles::add_streamed(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  ++bins_[bin_of(x)];
}

double Percentiles::percentile(double p) const {
  if (!bins_.empty()) {
    assert(count_ > 0);
    if (p <= 0.0) return min_;
    if (p >= 100.0) return max_;
    const double rank = p / 100.0 * static_cast<double>(count_);
    auto target = static_cast<std::size_t>(std::ceil(rank));
    target = std::min(std::max<std::size_t>(target, 1), count_);
    std::size_t cum = 0;
    for (std::size_t b = 0; b < bins_.size(); ++b) {
      cum += bins_[b];
      if (cum >= target) return bin_value(b);
    }
    return max_;  // unreachable: cum ends at count_
  }
  assert(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), samples_.size());
  return samples_[idx - 1];
}

void Percentiles::merge(const Percentiles& o) {
  if (o.count() == 0) return;
  if (o.bins_.empty()) {
    // Replaying the other side's retained samples through add() keeps the
    // un-spilled + un-spilled case bit-identical to having collected the
    // union directly (in self-then-other order).
    for (const double s : o.samples_) add(s);
    return;
  }
  if (bins_.empty()) spill();
  for (std::size_t b = 0; b < bins_.size(); ++b) bins_[b] += o.bins_[b];
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double Percentiles::mean() const {
  if (!bins_.empty()) return sum_ / static_cast<double>(count_);
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

PctSummary summarize(const Percentiles& p) {
  if (p.empty()) return {};
  return PctSummary{p.mean(), p.percentile(1.0), p.percentile(99.0)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  auto b = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

}  // namespace ert
