#include "common/stats.h"

#include <cassert>
#include <numeric>

namespace ert {

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double total = static_cast<double>(n_ + o.n_);
  const double delta = o.mean_ - mean_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / total;
  mean_ += delta * static_cast<double>(o.n_) / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double Percentiles::percentile(double p) const {
  assert(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  idx = std::min(std::max<std::size_t>(idx, 1), samples_.size());
  return samples_[idx - 1];
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

PctSummary summarize(const Percentiles& p) {
  if (p.empty()) return {};
  return PctSummary{p.mean(), p.percentile(1.0), p.percentile(99.0)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  auto b = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

}  // namespace ert
