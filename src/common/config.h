// Simulation parameters. Defaults reproduce Table 2 of the paper exactly:
//
//   Cycloid dimension d                    8
//   Number of nodes n                      2048 (= d * 2^d, a full Cycloid)
//   Node capacity c                        bounded Pareto, shape 2, [500, 50000]
//   Query/lookup number                    3000
//   Overload threshold gamma_l             1
//   Indegree adaptation constant mu        1/2
//   Indegree adaptation period T           1 second
//   Indegree per normalized capacity alpha d + 3
//   Query process time in light nodes      0.2 second
//   Query process time in heavy nodes      1 second
#pragma once

#include <cstddef>
#include <cstdint>

namespace ert {

struct SimParams {
  // --- topology ---
  int dimension = 8;          ///< Cycloid dimension d.
  std::size_t num_nodes = 2048;

  // --- capacity distribution (bounded Pareto, Table 2) ---
  double pareto_shape = 2.0;
  double capacity_lo = 500.0;
  double capacity_hi = 50000.0;

  // --- workload ---
  std::size_t num_lookups = 3000;
  double lookup_rate = 1.0;         ///< Poisson lookups per second.
  double light_service_time = 0.2;  ///< seconds per query at a light node.
  double heavy_service_time = 1.0;  ///< seconds per query at a heavy node.
  /// Ingress queue bound per node: an arrival at a node whose queue
  /// (in service + waiting) already holds this many queries is shed as an
  /// overload drop instead of queued. 0 (the default, and the behavior of
  /// every calibrated figure run) keeps queues unbounded; the `--scale`
  /// preset sets a cap so a statistically inevitable unstable node at
  /// n >= 2^17 bounds the drain tail instead of queueing O(run length).
  std::size_t queue_cap = 0;

  // --- ERT parameters (Sec. 3) ---
  /// Indegree per unit capacity; Table 2 default is d + 3. Set
  /// alpha_override > 0 to sweep it (ablation benches).
  double alpha_override = 0.0;
  double alpha() const {
    return alpha_override > 0.0 ? alpha_override
                                : static_cast<double>(dimension) + 3.0;
  }
  double beta = 0.8;       ///< initial indegree reservation fraction.
  double mu = 0.5;         ///< adaptation step fraction.
  double gamma_l = 1.0;    ///< overload threshold factor.
  double gamma_c = 1.0;    ///< capacity estimation error factor (>= 1).
  double gamma_n = 1.0;    ///< network size estimation error factor (>= 1).
  double adapt_period = 1.0;  ///< T, seconds.

  // --- forwarding (Sec. 4) ---
  int poll_size = 2;            ///< b in b-way randomized forwarding.
  bool use_memory = true;       ///< Mitzenmacher memory-based dispatch.
  bool propagate_overloaded = true;  ///< carry overloaded set A with queries.
  double probe_cost = 0.0;  ///< seconds charged per load probe (ablation).

  // --- churn (Sec. 5.5); 0 disables churn ---
  double churn_interarrival = 0.0;  ///< mean seconds between joins (and leaves).

  // --- skewed "impulse" workload (Sec. 5.4); 0 disables ---
  std::size_t impulse_nodes = 0;  ///< # of nodes in the contiguous interval.
  std::size_t impulse_keys = 0;   ///< # of shared hot keys.

  // --- Zipf popularity workload (the "nonuniform and time-varying file
  // popularity" of the introduction); 0 disables ---
  std::size_t zipf_catalog = 0;   ///< # of distinct keys queried.
  double zipf_exponent = 1.0;     ///< popularity skew s.
  double zipf_drift_period = 0.0; ///< reshuffle popularity ranks every T_d s.

  // --- data forwarding (the anonymity pattern of Freenet/Mantis/Hordes
  // cited in the introduction): when true, the located data travels back
  // through the query's intermediaries, loading each once more ---
  bool data_forwarding = false;

  // --- tracing ---
  /// Record a per-second timeline of network state (congestion, heavy
  /// nodes, degrees) into ExperimentResult::timeline.
  bool trace_timeline = false;

  // --- parallel simulation (docs/PDES.md) ---
  /// Worker threads for the sharded conservative-PDES engine. 1 (default)
  /// uses the serial single-queue engine and is bit-identical to it;
  /// > 1 shards the node population and is statistically equivalent
  /// (model-check + invariant-audit gated), not bit-identical. Workloads
  /// the sharded engine does not support fall back to serial.
  int sim_threads = 1;

  // --- misc ---
  std::uint64_t seed = 1;
  double timeout_penalty = 0.5;  ///< seconds lost when contacting a departed node.
};

}  // namespace ert
