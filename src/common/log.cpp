#include "common/log.h"

#include <cstdio>

namespace ert::log {
namespace {

Level g_level = Level::Warn;

void vlog(Level lv, const char* tag, const char* fmt, va_list args) {
  if (lv < g_level) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void set_level(Level level) { g_level = level; }
Level level() { return g_level; }

#define ERT_LOG_IMPL(fn, lv, tag)            \
  void fn(const char* fmt, ...) {            \
    va_list args;                            \
    va_start(args, fmt);                     \
    vlog(lv, tag, fmt, args);                \
    va_end(args);                            \
  }

ERT_LOG_IMPL(debug, Level::Debug, "debug")
ERT_LOG_IMPL(info, Level::Info, "info")
ERT_LOG_IMPL(warn, Level::Warn, "warn")
ERT_LOG_IMPL(error, Level::Error, "error")

#undef ERT_LOG_IMPL

}  // namespace ert::log
