// Bit-manipulation helpers used by the DHT id spaces (Cycloid cubical
// indices, Chord ring arithmetic, Pastry digit prefixes).
#pragma once

#include <bit>
#include <cstdint>

namespace ert {

/// Returns the index of the most significant bit where `a` and `b` differ,
/// or -1 if `a == b`. Bit 0 is the least significant bit.
constexpr int msb_diff(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t x = a ^ b;
  if (x == 0) return -1;
  return 63 - std::countl_zero(x);
}

/// Returns bit `pos` of `v` (0 or 1).
constexpr int bit_at(std::uint64_t v, int pos) noexcept {
  return static_cast<int>((v >> pos) & 1u);
}

/// Returns `v` with bit `pos` flipped.
constexpr std::uint64_t flip_bit(std::uint64_t v, int pos) noexcept {
  return v ^ (std::uint64_t{1} << pos);
}

/// Returns a mask with the `k` lowest bits set. `k` must be in [0, 64].
constexpr std::uint64_t low_mask(int k) noexcept {
  return k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
}

/// True iff `a` and `b` agree on all bits at positions >= `pos`
/// within a `width`-bit value.
constexpr bool same_high_bits(std::uint64_t a, std::uint64_t b, int pos,
                              int width) noexcept {
  const std::uint64_t mask = low_mask(width) & ~low_mask(pos);
  return (a & mask) == (b & mask);
}

/// Length of the common prefix (starting at the most significant of `width`
/// bits) of `a` and `b`. Returns `width` when equal.
constexpr int common_prefix_len(std::uint64_t a, std::uint64_t b,
                                int width) noexcept {
  const int d = msb_diff(a & low_mask(width), b & low_mask(width));
  return d < 0 ? width : width - 1 - d;
}

/// Number of digits (base 2^bits_per_digit) shared as a prefix between two
/// `width`-bit ids, scanning from the most significant digit.
constexpr int common_digit_prefix(std::uint64_t a, std::uint64_t b, int width,
                                  int bits_per_digit) noexcept {
  const int digits = width / bits_per_digit;
  int shared = 0;
  for (int row = 0; row < digits; ++row) {
    const int shift = width - (row + 1) * bits_per_digit;
    const std::uint64_t mask = low_mask(bits_per_digit);
    if (((a >> shift) & mask) != ((b >> shift) & mask)) break;
    ++shared;
  }
  return shared;
}

/// Digit at `row` (0 = most significant) of a `width`-bit id in base
/// 2^bits_per_digit.
constexpr std::uint64_t digit_at(std::uint64_t v, int row, int width,
                                 int bits_per_digit) noexcept {
  const int shift = width - (row + 1) * bits_per_digit;
  return (v >> shift) & low_mask(bits_per_digit);
}

}  // namespace ert
