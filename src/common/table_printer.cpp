#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

namespace ert {

std::string fmt_num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(double x, const std::vector<double>& ys,
                           int precision) {
  std::vector<std::string> cells;
  cells.reserve(ys.size() + 1);
  cells.push_back(fmt_num(x, x == static_cast<long long>(x) ? 0 : 2));
  for (double y : ys) cells.push_back(fmt_num(y, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      out << s << std::string(widths[c] - s.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace ert
