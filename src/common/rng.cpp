#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace ert {

std::size_t Rng::zipf(std::size_t n, double s) {
  // Rejection-inversion sampling (Hormann & Derflinger) would be faster for
  // large n, but the simulator only draws popularity ranks at workload-setup
  // time, so simple inverse-CDF over a cached table is unnecessary; we use
  // the standard rejection method which is O(1) amortized.
  //
  // For small exponents fall back to direct CDF inversion over a harmonic
  // approximation: H(x) ~ x^(1-s)/(1-s) for s != 1, log(x) for s == 1.
  const double x_max = static_cast<double>(n);
  auto h_integral = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_integral_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double total = h_integral(x_max + 0.5) - h_integral(0.5);
  for (;;) {
    const double u = uniform(0.0, 1.0) * total + h_integral(0.5);
    const double x = h_integral_inv(u);
    const auto k = static_cast<std::size_t>(std::clamp(x + 0.5, 1.0, x_max));
    // Accept with probability proportional to the true mass at k relative to
    // the envelope; the envelope is tight so acceptance is high.
    const double ratio =
        std::pow(static_cast<double>(k), -s) /
        (h_integral(static_cast<double>(k) + 0.5) -
         h_integral(static_cast<double>(k) - 0.5));
    if (uniform(0.0, 1.0) * ratio <= 1.0 || ratio >= 1.0) return k - 1;
  }
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> scratch;
  std::vector<std::size_t> out;
  out.reserve(k);
  sample_indices(n, k, scratch, out);
  return out;
}

void Rng::sample_indices(std::size_t n, std::size_t k,
                         std::vector<std::size_t>& scratch,
                         std::vector<std::size_t>& out) {
  out.clear();
  if (k >= n) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(i);
    return;
  }
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    scratch.resize(n);
    for (std::size_t i = 0; i < n; ++i) scratch[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(scratch[i], scratch[i + index(n - i)]);
    }
    out.assign(scratch.begin(),
               scratch.begin() + static_cast<std::ptrdiff_t>(k));
    return;
  }
  // Sparse case: rejection sampling; `out` doubles as the seen set. k is
  // tiny here (3k < n), so the linear membership scan costs less than the
  // hash set it replaces — and the accept/reject sequence is unchanged.
  while (out.size() < k) {
    const std::size_t v = index(n);
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
}

}  // namespace ert
