// Aligned-column table output for the benchmark harnesses. Every bench
// binary regenerates one of the paper's figures as a text table: a header
// row naming the series and one row per x-axis point.
#pragma once

#include <string>
#include <vector>

namespace ert {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is the x value, the rest are numeric series.
  void add_row(double x, const std::vector<double>& ys, int precision = 3);

  /// Renders to stdout with aligned columns and a separator under the header.
  void print() const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string fmt_num(double v, int precision = 3);

}  // namespace ert
