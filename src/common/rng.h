// Deterministic random number generation for the simulator.
//
// Every experiment takes an explicit seed so runs are reproducible; all
// randomness flows through this class (no global state). Distributions match
// the paper's workload models: bounded Pareto capacities (Table 2), Poisson
// arrival processes (Sec. 5), and Zipf-like popularity skews.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace ert {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : eng_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// Uniform integer in [0, n) — convenience for index selection.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(eng_));
  }

  std::uint64_t bits() { return eng_(); }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(eng_); }

  /// Exponential inter-arrival time with the given rate (events per unit
  /// time); used for Poisson query streams and churn processes.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(eng_);
  }

  int poisson(double mean) { return std::poisson_distribution<int>(mean)(eng_); }

  /// Bounded Pareto with the paper's parameterization (shape k, range
  /// [lo, hi]); models node capacity heterogeneity (Table 2: shape 2,
  /// lower 500, upper 50000).
  double bounded_pareto(double shape, double lo, double hi) {
    // Inverse-CDF sampling of the bounded Pareto distribution.
    const double u = uniform(0.0, 1.0);
    const double lk = std::pow(lo, shape);
    const double hk = std::pow(hi, shape);
    return std::pow(-(u * hk - u * lk - hk) / (hk * lk), -1.0 / shape);
  }

  /// Zipf-distributed rank in [0, n) with exponent s; used for file
  /// popularity skew workloads.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), eng_);
  }

  /// Sample k distinct indices from [0, n) (k <= n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Allocation-free variant for the per-hop fast path: writes the sample
  /// into `out`, using `scratch` as the dense-case index pool. Consumes the
  /// identical draw sequence and produces the identical output as
  /// sample_indices(n, k), so the two are exchangeable under the
  /// determinism contract; steady state allocates nothing once both
  /// vectors' capacities are warm.
  void sample_indices(std::size_t n, std::size_t k,
                      std::vector<std::size_t>& scratch,
                      std::vector<std::size_t>& out);

  /// Split off an independent child stream (for per-node or per-run seeds).
  Rng fork() { return Rng(eng_() ^ 0xd1b54a32d192ed03ull); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace ert
