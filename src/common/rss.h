// Peak resident-set-size probe for the scale benchmarks and --build-only.
//
// Reads VmHWM ("high water mark") from /proc/self/status, which the kernel
// maintains per process; this captures the true peak even after memory has
// been returned to the allocator. Non-Linux platforms report 0 rather than
// guessing — the benchmarks treat 0 as "unavailable".
#pragma once

#include <cstddef>

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif

namespace ert {

/// Peak RSS of the current process in kilobytes, or 0 when unavailable.
inline std::size_t peak_rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1)
        kb = static_cast<std::size_t>(v);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

}  // namespace ert
