// Minimal leveled logger. The simulator is deterministic and single-threaded
// per run, so the logger favors simplicity: printf-style free functions with
// a process-wide level gate. Benches keep the level at Warn to avoid
// polluting table output.
#pragma once

#include <cstdarg>
#include <string>

namespace ert::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_level(Level level);
Level level();

void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ert::log
