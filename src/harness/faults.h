// Fault-injection layer for the experiment engine.
//
// The paper's bounds (Theorems 3.1/3.2) are stated for a running network,
// but DHTs live in the regime of message loss and node failure (cf. the
// self-stabilization literature around CONE-DHT and the Kademlia analyses
// of routing under imperfect tables). A FaultPlan describes per-message
// drop / delay / duplication probabilities and a schedule of crash waves;
// the FaultInjector turns it into a deterministic per-run fault stream:
// every decision is drawn from a dedicated Rng seeded from the experiment
// seed, so a faulted run is bit-identical for a fixed seed regardless of
// the harness thread count (seeds fan out across threads, each run is
// single-threaded).
//
// The engine reacts to injected loss with a query timeout plus bounded
// retry under exponential backoff, counting timed_out / retried /
// recovered (see metrics::FaultCounters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ert::trace {
class TraceSink;
}

namespace ert::harness {

/// One crash wave: at simulated time `time`, `count` random alive nodes
/// fail silently (stale links remain; queued and in-service queries at the
/// crashed node experience the loss and are retried via its successor).
struct CrashWave {
  double time = 0.0;
  std::size_t count = 0;
};

/// Declarative fault model for one experiment run.
struct FaultPlan {
  // --- per-message faults (applied to every inter-node hop) ---
  double drop_prob = 0.0;   ///< P[message lost in transit].
  double delay_prob = 0.0;  ///< P[message delayed beyond its latency].
  double delay_max = 0.5;   ///< extra delay ~ U[0, delay_max] seconds.
  double dup_prob = 0.0;    ///< P[message delivered twice].
  double dup_delay = 0.05;  ///< duplicate trails by ~ U[0, dup_delay] s.

  // --- node-crash schedule ---
  std::vector<CrashWave> crash_waves;

  // --- loss recovery (sender-side timeout + bounded retry) ---
  double retry_timeout = 0.5;  ///< seconds before the first retransmit.
  int max_retries = 3;         ///< retransmits before the query is failed.
  double retry_backoff = 2.0;  ///< timeout multiplier per attempt.

  bool message_faults() const {
    return drop_prob > 0.0 || delay_prob > 0.0 || dup_prob > 0.0;
  }
  bool enabled() const { return message_faults() || !crash_waves.empty(); }
};

/// What the network did to one message.
struct MessageFate {
  bool dropped = false;
  bool duplicated = false;
  double extra_delay = 0.0;      ///< added to the hop latency.
  double dup_extra_delay = 0.0;  ///< duplicate's lag behind the original.
};

/// Deterministic fault stream: the i-th call to fate() returns the same
/// MessageFate for a given (plan, seed), independent of anything else the
/// engine does (the injector owns its Rng; the engine's workload Rng is
/// never touched, so a zeroed plan leaves fault-free runs bit-identical).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Fault decision for the next inter-node message.
  MessageFate fate();

  /// Sender-side retransmit timeout for the given 0-based attempt:
  /// retry_timeout * retry_backoff^attempt.
  double retry_delay(int attempt) const;

  /// True when `attempt` retransmits exhaust the plan's retry budget.
  bool retries_exhausted(int attempt) const {
    return attempt > plan_.max_retries;
  }

  const FaultPlan& plan() const { return plan_; }

  /// Rng for crash-victim selection (kept separate from the message
  /// stream so crash scheduling does not shift message fates).
  Rng& crash_rng() { return crash_rng_; }

  std::size_t messages() const { return messages_; }
  std::size_t drops() const { return drops_; }
  std::size_t duplicates() const { return duplicates_; }

  /// Installs a structured-trace sink for fault.delay / fault.dup records
  /// (drops surface as the engine's fault.timeout); null disables emission.
  /// Observes only — fates are unchanged. See docs/TRACING.md.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  FaultPlan plan_;
  Rng rng_;
  Rng crash_rng_;
  std::size_t messages_ = 0;
  std::size_t drops_ = 0;
  std::size_t duplicates_ = 0;
  trace::TraceSink* trace_ = nullptr;
};

}  // namespace ert::harness
