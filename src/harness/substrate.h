// Substrate abstraction for the experiment engine.
//
// The paper evaluates ERT on Cycloid but stresses the mechanism "can also
// be applied to other DHT networks" (Sec. 5), giving the Chord and
// Pastry/Tapestry constructions explicitly (Figs. 1 and 3). This interface
// lets the same experiment engine — queueing, workloads, adaptation,
// forwarding, churn, metrics — run on any of the three overlays, so every
// figure can be regenerated per substrate.
//
// One adapter instance wraps one overlay instance. Per-query routing state
// (Cycloid's monotone phase) is stored inside the adapter keyed by query
// id, keeping the engine substrate-agnostic.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <functional>

#include "common/config.h"
#include "common/rng.h"
#include "dht/route_scratch.h"
#include "dht/routing_entry.h"
#include "dht/types.h"
#include "ert/indegree.h"

namespace ert::cycloid {
class Overlay;
}

namespace ert::trace {
class TraceSink;
}

namespace ert::wire {
class ByteMeter;
}

namespace ert::harness {

enum class SubstrateKind { kCycloid, kChord, kPastry, kCan, kKademlia, kD1ht };

constexpr const char* to_string(SubstrateKind k) {
  switch (k) {
    case SubstrateKind::kCycloid:  return "Cycloid";
    case SubstrateKind::kChord:    return "Chord";
    case SubstrateKind::kPastry:   return "Pastry";
    case SubstrateKind::kCan:      return "CAN";
    case SubstrateKind::kKademlia: return "Kademlia";
    case SubstrateKind::kD1ht:     return "D1HT";
  }
  return "?";
}

inline constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

/// One routing hop, substrate-agnostic. The candidate set is not carried
/// here: route_step writes it into the caller-owned RouteScratch, where it
/// stays valid (and mutable, for in-place live filtering) until the next
/// route_step call on the same scratch.
struct HopStep {
  bool arrived = false;
  /// Index of the table entry the query leaves through, or kNoSlot for
  /// emergency (non-table) hops.
  std::size_t slot = kNoSlot;
};

/// Per-node link bookkeeping summary for the invariant auditor: the elastic
/// inlink count (backward fingers) and how many links lack their mirror.
/// Mandatory symmetric structure (CAN zone adjacency) is folded into the
/// missing_* counts but not into `inlinks`, which tracks exactly what the
/// indegree budget governs.
struct LinkAuditCounts {
  std::size_t inlinks = 0;           ///< backward fingers (budget-governed).
  std::size_t missing_backward = 0;  ///< outlinks without a mirror finger.
  std::size_t missing_forward = 0;   ///< fingers without a mirror outlink.
};

class SubstrateOps {
 public:
  virtual ~SubstrateOps() = default;

  // --- membership ---
  virtual dht::NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                                  double beta) = 0;
  /// Batched initial construction: between begin_bulk_join and
  /// end_bulk_join, add_node calls may stage their ring-directory inserts
  /// so the directory is built once from the sorted batch — O(n log n)
  /// for n joins instead of n independent ordered inserts. Membership
  /// queries stay exact throughout, so the Rng draw sequence (and thus
  /// every metric) is identical to unbatched joins. Substrates without a
  /// batched path ignore the calls.
  virtual void begin_bulk_join(std::size_t expected_nodes) {
    (void)expected_nodes;
  }
  virtual void end_bulk_join() {}
  virtual void build_table(dht::NodeIndex i, Rng& rng) = 0;
  virtual bool id_space_full() const = 0;
  virtual void fail(dht::NodeIndex i) = 0;
  virtual bool alive(dht::NodeIndex i) const = 0;
  virtual std::size_t num_slots() const = 0;

  // --- elasticity ---
  virtual int expand_indegree(dht::NodeIndex i, int want,
                              std::size_t max_probes) = 0;
  virtual int shed_indegree(dht::NodeIndex i, int count) = 0;
  virtual core::IndegreeBudget& budget(dht::NodeIndex i) = 0;
  virtual std::size_t indegree(dht::NodeIndex i) const = 0;
  virtual std::size_t outdegree(dht::NodeIndex i) const = 0;

  // --- maintenance ---
  virtual void purge_dead(dht::NodeIndex at, dht::NodeIndex dead) = 0;
  virtual void repair_entry(dht::NodeIndex i, std::size_t slot) = 0;

  // --- auditing ---
  /// Counts `i`'s elastic inlinks and any broken link mirrors (see
  /// LinkAuditCounts). Read-only; used by the invariant auditor.
  virtual LinkAuditCounts audit_links(dht::NodeIndex i) const = 0;
  /// Runs the overlay's own check_invariants() (assert-based; active in
  /// Debug and sanitizer builds, a no-op under NDEBUG).
  virtual void check_structure() const = 0;

  // --- routing ---
  virtual std::uint64_t key_space() const = 0;
  virtual dht::NodeIndex responsible(std::uint64_t key) const = 0;
  /// `qid` selects the per-query routing context; call start_query first.
  /// Writes the candidate set into `scratch.candidates` (allocation-free
  /// in steady state).
  virtual HopStep route_step(std::size_t qid, dht::NodeIndex cur,
                             std::uint64_t key,
                             dht::RouteScratch& scratch) = 0;
  virtual void start_query(std::size_t qid) = 0;
  /// Releases the per-query routing context once the lookup completes,
  /// drops, or fails; qids are never reused. Default: stateless substrate.
  virtual void finish_query(std::size_t qid) { (void)qid; }

  /// Caller-held per-query routing context for the sharded engine, which
  /// cannot use the qid-keyed start/finish protocol (queries migrate
  /// between shards, and the adapter-side ctx map would be shared mutable
  /// state). Zero-initialized bytes must mean "query just started".
  struct RouteCtxBlob {
    unsigned char bytes[8] = {};
  };
  /// Context-carrying variant of route_step. Stateless substrates ignore
  /// the blob; Cycloid stores its monotone routing phase in it. The engine
  /// must use exactly one of the two protocols per query.
  virtual HopStep route_step(dht::NodeIndex cur, std::uint64_t key,
                             RouteCtxBlob& ctx, dht::RouteScratch& scratch) {
    (void)ctx;
    return route_step(0, cur, key, scratch);
  }
  virtual std::uint64_t logical_distance_to_key(dht::NodeIndex a,
                                                std::uint64_t key) const = 0;
  /// Mutable access to a table entry (memory slot for Algorithm 4);
  /// nullptr when `slot` is kNoSlot.
  virtual dht::RoutingEntry* entry(dht::NodeIndex i, std::size_t slot) = 0;
  /// Live ring successor of (possibly dead) node `i` — the hand-off target
  /// when a node fails with queries queued.
  virtual dht::NodeIndex live_successor(dht::NodeIndex i) const = 0;
  /// A uniformly random id owned by an alive node near linear position
  /// `lv` (for impulse source selection).
  virtual dht::NodeIndex node_at_or_after(std::uint64_t lv) const = 0;

  /// Non-null when this substrate is the Cycloid overlay (virtual servers
  /// are only defined there).
  virtual cycloid::Overlay* as_cycloid() { return nullptr; }

  /// Forwards a structured-trace sink to the wrapped overlay so its ERT
  /// elasticity path can emit link.adopt / link.shed records; null detaches.
  virtual void set_trace(trace::TraceSink* sink) = 0;
  /// Attaches the byte meter (docs/WIRE.md); null detaches.
  virtual void set_meter(wire::ByteMeter* meter) = 0;
};

using PhysDistFn = std::function<double(dht::NodeIndex, dht::NodeIndex)>;

/// Ring sizing shared by the ring-id substrates (Chord, Pastry, Kademlia,
/// D1HT): the smallest power-of-two id space at least 16x oversized for
/// `ids_needed` nodes, so random ids rarely collide. Exposed so the
/// analytical hop-count models (harness/model_check.h) run with the same
/// `bits` the overlay actually got.
int substrate_ring_bits(std::size_t ids_needed);

/// Factory. `capacity_biased` / `enforce_bounds` mirror the per-protocol
/// table policies; `phys` supplies physical distances for proximity
/// tie-breaks.
std::unique_ptr<SubstrateOps> make_substrate(SubstrateKind kind,
                                             const SimParams& params,
                                             bool capacity_biased,
                                             bool enforce_bounds,
                                             std::size_t ids_needed,
                                             PhysDistFn phys);

}  // namespace ert::harness
