#include "harness/substrate.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "can/overlay.h"
#include "chord/overlay.h"
#include "cycloid/overlay.h"
#include "d1ht/overlay.h"
#include "harness/experiment.h"
#include "kademlia/overlay.h"
#include "pastry/overlay.h"
#include "wire/meter.h"

namespace ert::harness {
namespace {

using dht::NodeIndex;

/// Symmetry audit shared by the ring-based overlays (Cycloid, Chord,
/// Pastry): every live outlink candidate must be mirrored by a backward
/// finger at its target, every backward finger from a live node by an
/// outlink at its owner. Stale links to *dead* peers are tolerated — silent
/// failure (Sec. 5.5) leaves them in place until a timeout discovers them.
template <typename OverlayT>
LinkAuditCounts audit_links_ring(const OverlayT& o, NodeIndex i) {
  LinkAuditCounts a;
  const auto& arena = o.arena();
  const auto& n = o.node(i);
  a.inlinks = n.inlinks.size();
  for (const auto& e : n.table.entries()) {
    for (const dht::NodeIndex32 c : e.candidates(arena.cands)) {
      if (!o.node(c).alive) continue;
      if (!o.node(c).inlinks.contains(arena.fingers, i)) ++a.missing_backward;
    }
  }
  for (const auto& f : n.inlinks.fingers(arena.fingers)) {
    if (!o.node(f.node).alive) continue;
    if (!o.node(f.node).table.links_to(arena.cands, i)) ++a.missing_forward;
  }
  return a;
}

class CycloidSubstrate final : public SubstrateOps {
 public:
  CycloidSubstrate(const SimParams& params, bool capacity_biased,
                   bool enforce_bounds, std::size_t ids_needed,
                   cycloid::Overlay::PhysDistFn phys) {
    cycloid::OverlayOptions opts;
    opts.dimension = std::max(params.dimension, fit_dimension(ids_needed));
    opts.enforce_indegree_bounds = enforce_bounds;
    opts.policy = capacity_biased ? cycloid::NeighborPolicy::kCapacityBiased
                  : enforce_bounds ? cycloid::NeighborPolicy::kSpareIndegree
                                   : cycloid::NeighborPolicy::kNearest;
    overlay_ = std::make_unique<cycloid::Overlay>(opts, std::move(phys));
  }

  NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                     double beta) override {
    return overlay_->add_node_random(rng, capacity, max_indegree, beta);
  }
  void begin_bulk_join(std::size_t expected_nodes) override {
    overlay_->begin_bulk_insert(expected_nodes);
  }
  void end_bulk_join() override { overlay_->end_bulk_insert(); }
  void build_table(NodeIndex i, Rng& rng) override {
    overlay_->build_table(i, rng);
  }
  bool id_space_full() const override {
    return overlay_->directory().size() >= overlay_->space().size();
  }
  void fail(NodeIndex i) override { overlay_->fail(i); }
  bool alive(NodeIndex i) const override { return overlay_->node(i).alive; }
  std::size_t num_slots() const override { return overlay_->num_slots(); }

  int expand_indegree(NodeIndex i, int want, std::size_t probes) override {
    return overlay_->expand_indegree(i, want, probes);
  }
  int shed_indegree(NodeIndex i, int count) override {
    return overlay_->shed_indegree(i, count);
  }
  core::IndegreeBudget& budget(NodeIndex i) override {
    return overlay_->mutable_node(i).budget;
  }
  std::size_t indegree(NodeIndex i) const override {
    return overlay_->node(i).inlinks.size();
  }
  std::size_t outdegree(NodeIndex i) const override {
    return overlay_->node(i).table.outdegree();
  }

  void purge_dead(NodeIndex at, NodeIndex dead) override {
    overlay_->purge_dead(at, dead);
  }
  void repair_entry(NodeIndex i, std::size_t slot) override {
    if (slot < cycloid::kNumEntries) overlay_->repair_entry(i, slot);
  }

  LinkAuditCounts audit_links(NodeIndex i) const override {
    return audit_links_ring(*overlay_, i);
  }
  void check_structure() const override { overlay_->check_invariants(); }

  std::uint64_t key_space() const override { return overlay_->space().size(); }
  NodeIndex responsible(std::uint64_t key) const override {
    return overlay_->responsible(key);
  }
  void start_query(std::size_t qid) override {
    // qids are issued in increasing order, so appending keeps ctx_ sorted
    // by qid; finish_query erases the slot, so the vector's size (and its
    // steady-state capacity) is bounded by the in-flight query count
    // instead of growing monotonically with every query ever issued.
    assert(ctx_.empty() || ctx_.back().qid < qid);
    ctx_.push_back(QueryCtx{qid, cycloid::RouteCtx{}});
  }
  void finish_query(std::size_t qid) override {
    const auto it = find_ctx(qid);
    if (it != ctx_.end() && it->qid == qid) ctx_.erase(it);
  }
  HopStep route_step(std::size_t qid, NodeIndex cur, std::uint64_t key,
                     dht::RouteScratch& scratch) override {
    const auto it = find_ctx(qid);
    assert(it != ctx_.end() && it->qid == qid);
    const dht::RouteStepInfo s =
        overlay_->route_step(cur, key, it->ctx, scratch);
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < cycloid::kNumEntries ? s.entry_index : kNoSlot;
    return h;
  }
  HopStep route_step(NodeIndex cur, std::uint64_t key, RouteCtxBlob& blob,
                     dht::RouteScratch& scratch) override {
    // The caller-held blob carries the monotone routing phase. Its
    // zero-initialized state must decode as a fresh context; verified by
    // the static_asserts (kAscend is the first, zero-valued enumerator).
    static_assert(sizeof(cycloid::RouteCtx) <= sizeof(RouteCtxBlob::bytes));
    static_assert(static_cast<std::uint8_t>(
                      cycloid::RouteCtx::Phase::kAscend) == 0);
    cycloid::RouteCtx ctx;
    std::memcpy(&ctx, blob.bytes, sizeof(ctx));
    const dht::RouteStepInfo s = overlay_->route_step(cur, key, ctx, scratch);
    std::memcpy(blob.bytes, &ctx, sizeof(ctx));
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < cycloid::kNumEntries ? s.entry_index : kNoSlot;
    return h;
  }
  std::uint64_t logical_distance_to_key(NodeIndex a,
                                        std::uint64_t key) const override {
    return overlay_->logical_distance_to_key(a, key);
  }
  dht::RoutingEntry* entry(NodeIndex i, std::size_t slot) override {
    if (slot == kNoSlot) return nullptr;
    return &overlay_->mutable_node(i).table.entry(slot);
  }
  NodeIndex live_successor(NodeIndex i) const override {
    const std::uint64_t lv =
        overlay_->space().to_linear(overlay_->node(i).id);
    return overlay_->directory().successor(lv);
  }
  NodeIndex node_at_or_after(std::uint64_t lv) const override {
    return overlay_->directory().successor(lv % overlay_->space().size());
  }
  cycloid::Overlay* as_cycloid() override { return overlay_.get(); }

  void set_trace(trace::TraceSink* sink) override {
    overlay_->set_trace(sink);
  }
  void set_meter(wire::ByteMeter* meter) override {
    overlay_->set_meter(meter);
  }

 private:
  /// Routing context of one in-flight query, kept sorted by qid.
  struct QueryCtx {
    std::size_t qid;
    cycloid::RouteCtx ctx;
  };

  std::vector<QueryCtx>::iterator find_ctx(std::size_t qid) {
    return std::lower_bound(
        ctx_.begin(), ctx_.end(), qid,
        [](const QueryCtx& c, std::size_t q) { return c.qid < q; });
  }

  std::unique_ptr<cycloid::Overlay> overlay_;
  std::vector<QueryCtx> ctx_;
};

class ChordSubstrate final : public SubstrateOps {
 public:
  ChordSubstrate(const SimParams& params, bool enforce_bounds,
                 std::size_t ids_needed, chord::Overlay::PhysDistFn phys) {
    chord::ChordOptions opts;
    opts.enforce_indegree_bounds = enforce_bounds;
    // Ring large enough that random ids rarely collide.
    const int bits = substrate_ring_bits(ids_needed);
    opts.bits = bits;
    (void)params;
    overlay_ = std::make_unique<chord::Overlay>(opts, std::move(phys));
  }

  NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                     double beta) override {
    return overlay_->add_node_random(rng, capacity, max_indegree, beta);
  }
  void begin_bulk_join(std::size_t expected_nodes) override {
    overlay_->begin_bulk_insert(expected_nodes);
  }
  void end_bulk_join() override { overlay_->end_bulk_insert(); }
  void build_table(NodeIndex i, Rng& rng) override {
    (void)rng;
    overlay_->build_table(i);
  }
  bool id_space_full() const override {
    return overlay_->directory().size() >= overlay_->ring_size();
  }
  void fail(NodeIndex i) override { overlay_->fail(i); }
  bool alive(NodeIndex i) const override { return overlay_->node(i).alive; }
  std::size_t num_slots() const override { return overlay_->num_slots(); }

  int expand_indegree(NodeIndex i, int want, std::size_t probes) override {
    return overlay_->expand_indegree(i, want, probes);
  }
  int shed_indegree(NodeIndex i, int count) override {
    return overlay_->shed_indegree(i, count);
  }
  core::IndegreeBudget& budget(NodeIndex i) override {
    return overlay_->mutable_node(i).budget;
  }
  std::size_t indegree(NodeIndex i) const override {
    return overlay_->node(i).inlinks.size();
  }
  std::size_t outdegree(NodeIndex i) const override {
    return overlay_->node(i).table.outdegree();
  }

  void purge_dead(NodeIndex at, NodeIndex dead) override {
    overlay_->purge_dead(at, dead);
  }
  void repair_entry(NodeIndex i, std::size_t slot) override {
    if (slot != kNoSlot) overlay_->repair_entry(i, slot);
  }

  LinkAuditCounts audit_links(NodeIndex i) const override {
    return audit_links_ring(*overlay_, i);
  }
  void check_structure() const override { overlay_->check_invariants(); }

  std::uint64_t key_space() const override { return overlay_->ring_size(); }
  NodeIndex responsible(std::uint64_t key) const override {
    return overlay_->responsible(key);
  }
  void start_query(std::size_t) override {}
  HopStep route_step(std::size_t, NodeIndex cur, std::uint64_t key,
                     dht::RouteScratch& scratch) override {
    const dht::RouteStepInfo s = overlay_->route_step(cur, key, scratch);
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < overlay_->node(cur).table.num_entries()
                 ? s.entry_index
                 : kNoSlot;
    return h;
  }
  std::uint64_t logical_distance_to_key(NodeIndex a,
                                        std::uint64_t key) const override {
    return overlay_->logical_distance_to_key(a, key);
  }
  dht::RoutingEntry* entry(NodeIndex i, std::size_t slot) override {
    if (slot == kNoSlot) return nullptr;
    return &overlay_->mutable_node(i).table.entry(slot);
  }
  NodeIndex live_successor(NodeIndex i) const override {
    return overlay_->directory().successor(
        (overlay_->node(i).id + 1) & (overlay_->ring_size() - 1));
  }
  NodeIndex node_at_or_after(std::uint64_t lv) const override {
    return overlay_->directory().successor(lv & (overlay_->ring_size() - 1));
  }

  void set_trace(trace::TraceSink* sink) override {
    overlay_->set_trace(sink);
  }
  void set_meter(wire::ByteMeter* meter) override {
    overlay_->set_meter(meter);
  }

 private:
  std::unique_ptr<chord::Overlay> overlay_;
};

class PastrySubstrate final : public SubstrateOps {
 public:
  PastrySubstrate(const SimParams& params, bool enforce_bounds,
                  std::size_t ids_needed, pastry::Overlay::PhysDistFn phys) {
    pastry::PastryOptions opts;
    opts.enforce_indegree_bounds = enforce_bounds;
    const int bits = substrate_ring_bits(ids_needed);
    opts.rows = (bits + opts.bits_per_digit - 1) / opts.bits_per_digit;
    (void)params;
    overlay_ = std::make_unique<pastry::Overlay>(opts, std::move(phys));
  }

  NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                     double beta) override {
    return overlay_->add_node_random(rng, capacity, max_indegree, beta);
  }
  void begin_bulk_join(std::size_t expected_nodes) override {
    overlay_->begin_bulk_insert(expected_nodes);
  }
  void end_bulk_join() override { overlay_->end_bulk_insert(); }
  void build_table(NodeIndex i, Rng& rng) override {
    (void)rng;
    overlay_->build_table(i);
  }
  bool id_space_full() const override {
    return overlay_->directory().size() >= overlay_->ring_size();
  }
  void fail(NodeIndex i) override { overlay_->fail(i); }
  bool alive(NodeIndex i) const override { return overlay_->node(i).alive; }
  std::size_t num_slots() const override { return overlay_->num_slots(); }

  int expand_indegree(NodeIndex i, int want, std::size_t probes) override {
    return overlay_->expand_indegree(i, want, probes);
  }
  int shed_indegree(NodeIndex i, int count) override {
    return overlay_->shed_indegree(i, count);
  }
  core::IndegreeBudget& budget(NodeIndex i) override {
    return overlay_->mutable_node(i).budget;
  }
  std::size_t indegree(NodeIndex i) const override {
    return overlay_->node(i).inlinks.size();
  }
  std::size_t outdegree(NodeIndex i) const override {
    return overlay_->node(i).table.outdegree();
  }

  void purge_dead(NodeIndex at, NodeIndex dead) override {
    overlay_->purge_dead(at, dead);
  }
  void repair_entry(NodeIndex i, std::size_t slot) override {
    if (slot != kNoSlot) overlay_->repair_entry(i, slot);
  }

  LinkAuditCounts audit_links(NodeIndex i) const override {
    return audit_links_ring(*overlay_, i);
  }
  void check_structure() const override { overlay_->check_invariants(); }

  std::uint64_t key_space() const override { return overlay_->ring_size(); }
  NodeIndex responsible(std::uint64_t key) const override {
    return overlay_->responsible(key);
  }
  void start_query(std::size_t) override {}
  HopStep route_step(std::size_t, NodeIndex cur, std::uint64_t key,
                     dht::RouteScratch& scratch) override {
    const dht::RouteStepInfo s = overlay_->route_step(cur, key, scratch);
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < overlay_->node(cur).table.num_entries()
                 ? s.entry_index
                 : kNoSlot;
    return h;
  }
  std::uint64_t logical_distance_to_key(NodeIndex a,
                                        std::uint64_t key) const override {
    return overlay_->logical_distance_to_key(a, key);
  }
  dht::RoutingEntry* entry(NodeIndex i, std::size_t slot) override {
    if (slot == kNoSlot) return nullptr;
    return &overlay_->mutable_node(i).table.entry(slot);
  }
  NodeIndex live_successor(NodeIndex i) const override {
    return overlay_->directory().successor(
        (overlay_->node(i).id + 1) & (overlay_->ring_size() - 1));
  }
  NodeIndex node_at_or_after(std::uint64_t lv) const override {
    return overlay_->directory().successor(lv & (overlay_->ring_size() - 1));
  }

  void set_trace(trace::TraceSink* sink) override {
    overlay_->set_trace(sink);
  }
  void set_meter(wire::ByteMeter* meter) override {
    overlay_->set_meter(meter);
  }

 private:
  std::unique_ptr<pastry::Overlay> overlay_;
};

class CanSubstrate final : public SubstrateOps {
 public:
  CanSubstrate(const SimParams& params, bool enforce_bounds,
               can::Overlay::PhysDistFn phys) {
    can::CanOptions opts;
    opts.enforce_indegree_bounds = enforce_bounds;
    (void)params;
    overlay_ = std::make_unique<can::Overlay>(opts, std::move(phys));
  }

  /// Keys hash onto the unit torus: low/high 16 bits become x/y.
  static can::Point to_point(std::uint64_t key) {
    return can::Point{static_cast<double>(key & 0xFFFF) / 65536.0,
                      static_cast<double>((key >> 16) & 0xFFFF) / 65536.0};
  }

  NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                     double beta) override {
    return overlay_->add_node(rng, capacity, max_indegree, beta);
  }
  void build_table(NodeIndex, Rng&) override {
    // Adjacency is built by the join split; shortcuts come from the
    // engine's initial indegree assignment (expand_indegree).
  }
  bool id_space_full() const override { return false; }
  void fail(NodeIndex i) override {
    // CAN departures are announced (the zone must be taken over to keep the
    // space partitioned); silent-failure takeover is out of scope, so churn
    // on CAN models graceful departure and produces no timeouts.
    overlay_->leave_graceful(i);
  }
  bool alive(NodeIndex i) const override { return overlay_->node(i).alive; }
  std::size_t num_slots() const override { return overlay_->num_slots(); }

  int expand_indegree(NodeIndex i, int want, std::size_t probes) override {
    return overlay_->expand_indegree(i, want, probes);
  }
  int shed_indegree(NodeIndex i, int count) override {
    return overlay_->shed_indegree(i, count);
  }
  core::IndegreeBudget& budget(NodeIndex i) override {
    return const_cast<core::IndegreeBudget&>(overlay_->node(i).budget);
  }
  std::size_t indegree(NodeIndex i) const override {
    // Symmetric adjacency plus elastic shortcut inlinks.
    return overlay_->node(i).table.entry(can::kAdjacencyEntry).size() +
           overlay_->node(i).inlinks.size();
  }
  std::size_t outdegree(NodeIndex i) const override {
    return overlay_->node(i).table.outdegree();
  }

  void purge_dead(NodeIndex at, NodeIndex dead) override {
    overlay_->unlink_shortcut(at, dead);
  }
  void repair_entry(NodeIndex, std::size_t) override {}

  LinkAuditCounts audit_links(NodeIndex i) const override {
    LinkAuditCounts a;
    const auto& arena = overlay_->arena();
    const auto& n = overlay_->node(i);
    a.inlinks = n.inlinks.size();
    // Zone adjacency must be mutual (the space stays partitioned); elastic
    // shortcuts mirror through backward fingers like the ring overlays.
    for (const dht::NodeIndex32 c :
         n.table.entry(can::kAdjacencyEntry).candidates(arena.cands)) {
      if (!overlay_->node(c).alive) continue;
      if (!overlay_->node(c).table.entry(can::kAdjacencyEntry).contains(
              arena.cands, i))
        ++a.missing_backward;
    }
    for (const dht::NodeIndex32 c :
         n.table.entry(can::kShortcutEntry).candidates(arena.cands)) {
      if (!overlay_->node(c).alive) continue;
      if (!overlay_->node(c).inlinks.contains(arena.fingers, i))
        ++a.missing_backward;
    }
    for (const auto& f : n.inlinks.fingers(arena.fingers)) {
      if (!overlay_->node(f.node).alive) continue;
      if (!overlay_->node(f.node).table.entry(can::kShortcutEntry).contains(
              arena.cands, i))
        ++a.missing_forward;
    }
    return a;
  }
  void check_structure() const override { overlay_->check_invariants(); }

  std::uint64_t key_space() const override { return std::uint64_t{1} << 32; }
  NodeIndex responsible(std::uint64_t key) const override {
    return overlay_->responsible(to_point(key));
  }
  void start_query(std::size_t) override {}
  HopStep route_step(std::size_t, NodeIndex cur, std::uint64_t key,
                     dht::RouteScratch& scratch) override {
    const dht::RouteStepInfo s =
        overlay_->route_step(cur, to_point(key), scratch);
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < can::kNumEntries ? s.entry_index : kNoSlot;
    return h;
  }
  std::uint64_t logical_distance_to_key(NodeIndex a,
                                        std::uint64_t key) const override {
    return static_cast<std::uint64_t>(
        can::zone_distance(overlay_->node(a).zone, to_point(key)) * 1e9);
  }
  dht::RoutingEntry* entry(NodeIndex i, std::size_t slot) override {
    if (slot == kNoSlot) return nullptr;
    return &const_cast<dht::ElasticTable&>(overlay_->node(i).table).entry(slot);
  }
  NodeIndex live_successor(NodeIndex i) const override {
    // Owner of the (departed) node's zone center after takeover.
    return overlay_->responsible(overlay_->node(i).zone.center());
  }
  NodeIndex node_at_or_after(std::uint64_t lv) const override {
    return overlay_->responsible(to_point(lv & 0xFFFFFFFFull));
  }

  void set_trace(trace::TraceSink* sink) override {
    overlay_->set_trace(sink);
  }
  void set_meter(wire::ByteMeter* meter) override {
    overlay_->set_meter(meter);
  }

 private:
  std::unique_ptr<can::Overlay> overlay_;
};

class KademliaSubstrate final : public SubstrateOps {
 public:
  KademliaSubstrate(const SimParams& params, bool capacity_biased,
                    bool enforce_bounds, std::size_t ids_needed,
                    kademlia::Overlay::PhysDistFn phys) {
    kademlia::KademliaOptions opts;
    opts.enforce_indegree_bounds = enforce_bounds;
    opts.capacity_biased = capacity_biased;
    const int bits = substrate_ring_bits(ids_needed);
    opts.bits = bits;
    (void)params;
    overlay_ = std::make_unique<kademlia::Overlay>(opts, std::move(phys));
  }

  NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                     double beta) override {
    return overlay_->add_node_random(rng, capacity, max_indegree, beta);
  }
  void begin_bulk_join(std::size_t expected_nodes) override {
    overlay_->begin_bulk_insert(expected_nodes);
  }
  void end_bulk_join() override { overlay_->end_bulk_insert(); }
  void build_table(NodeIndex i, Rng& rng) override {
    overlay_->build_table(i, rng);
  }
  bool id_space_full() const override {
    return overlay_->directory().size() >= overlay_->ring_size();
  }
  void fail(NodeIndex i) override { overlay_->fail(i); }
  bool alive(NodeIndex i) const override { return overlay_->node(i).alive; }
  std::size_t num_slots() const override { return overlay_->num_slots(); }

  int expand_indegree(NodeIndex i, int want, std::size_t probes) override {
    return overlay_->expand_indegree(i, want, probes);
  }
  int shed_indegree(NodeIndex i, int count) override {
    return overlay_->shed_indegree(i, count);
  }
  core::IndegreeBudget& budget(NodeIndex i) override {
    return overlay_->mutable_node(i).budget;
  }
  std::size_t indegree(NodeIndex i) const override {
    return overlay_->node(i).inlinks.size();
  }
  std::size_t outdegree(NodeIndex i) const override {
    return overlay_->node(i).table.outdegree();
  }

  void purge_dead(NodeIndex at, NodeIndex dead) override {
    overlay_->purge_dead(at, dead);
  }
  void repair_entry(NodeIndex i, std::size_t slot) override {
    if (slot != kNoSlot) overlay_->repair_entry(i, slot);
  }

  LinkAuditCounts audit_links(NodeIndex i) const override {
    return audit_links_ring(*overlay_, i);
  }
  void check_structure() const override { overlay_->check_invariants(); }

  std::uint64_t key_space() const override { return overlay_->ring_size(); }
  NodeIndex responsible(std::uint64_t key) const override {
    return overlay_->responsible(key);
  }
  void start_query(std::size_t) override {}
  HopStep route_step(std::size_t, NodeIndex cur, std::uint64_t key,
                     dht::RouteScratch& scratch) override {
    const dht::RouteStepInfo s = overlay_->route_step(cur, key, scratch);
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < overlay_->node(cur).table.num_entries()
                 ? s.entry_index
                 : kNoSlot;
    return h;
  }
  std::uint64_t logical_distance_to_key(NodeIndex a,
                                        std::uint64_t key) const override {
    return overlay_->logical_distance_to_key(a, key);
  }
  dht::RoutingEntry* entry(NodeIndex i, std::size_t slot) override {
    if (slot == kNoSlot) return nullptr;
    return &overlay_->mutable_node(i).table.entry(slot);
  }
  NodeIndex live_successor(NodeIndex i) const override {
    // Kademlia's hand-off target is by ownership metric: the alive node
    // XOR-closest to the dead node's id.
    return overlay_->responsible(overlay_->node(i).id);
  }
  NodeIndex node_at_or_after(std::uint64_t lv) const override {
    return overlay_->directory().successor(lv & (overlay_->ring_size() - 1));
  }

  void set_trace(trace::TraceSink* sink) override {
    overlay_->set_trace(sink);
  }
  void set_meter(wire::ByteMeter* meter) override {
    overlay_->set_meter(meter);
  }

 private:
  std::unique_ptr<kademlia::Overlay> overlay_;
};

class D1htSubstrate final : public SubstrateOps {
 public:
  D1htSubstrate(const SimParams& params, bool enforce_bounds,
                std::size_t ids_needed, d1ht::Overlay::PhysDistFn phys) {
    d1ht::D1htOptions opts;
    opts.enforce_indegree_bounds = enforce_bounds;
    const int bits = substrate_ring_bits(ids_needed);
    opts.bits = bits;
    (void)params;
    overlay_ = std::make_unique<d1ht::Overlay>(opts, std::move(phys));
  }

  NodeIndex add_node(Rng& rng, double capacity, int max_indegree,
                     double beta) override {
    return overlay_->add_node_random(rng, capacity, max_indegree, beta);
  }
  void begin_bulk_join(std::size_t expected_nodes) override {
    overlay_->begin_bulk_insert(expected_nodes);
  }
  void end_bulk_join() override { overlay_->end_bulk_insert(); }
  void build_table(NodeIndex i, Rng& rng) override {
    (void)rng;
    overlay_->build_table(i);
  }
  bool id_space_full() const override {
    return overlay_->directory().size() >= overlay_->ring_size();
  }
  void fail(NodeIndex i) override { overlay_->fail(i); }
  bool alive(NodeIndex i) const override { return overlay_->node(i).alive; }
  std::size_t num_slots() const override { return overlay_->num_slots(); }

  int expand_indegree(NodeIndex i, int want, std::size_t probes) override {
    return overlay_->expand_indegree(i, want, probes);
  }
  int shed_indegree(NodeIndex i, int count) override {
    return overlay_->shed_indegree(i, count);
  }
  core::IndegreeBudget& budget(NodeIndex i) override {
    return overlay_->mutable_node(i).budget;
  }
  std::size_t indegree(NodeIndex i) const override {
    // Mandatory full-mesh inlinks plus elastic successor inlinks: the load
    // metrics should see the O(n) state even though only the elastic part
    // is budget-governed.
    return overlay_->node(i).table.entry(d1ht::kFullTableEntry).size() +
           overlay_->node(i).inlinks.size();
  }
  std::size_t outdegree(NodeIndex i) const override {
    return overlay_->node(i).table.outdegree();
  }

  void purge_dead(NodeIndex at, NodeIndex dead) override {
    overlay_->purge_dead(at, dead);
  }
  void repair_entry(NodeIndex i, std::size_t slot) override {
    if (slot != kNoSlot) overlay_->repair_entry(i, slot);
  }

  LinkAuditCounts audit_links(NodeIndex i) const override {
    LinkAuditCounts a;
    const auto& arena = overlay_->arena();
    const auto& n = overlay_->node(i);
    a.inlinks = n.inlinks.size();
    // The full mesh must be mutual (like CAN zone adjacency) but is not
    // budget-governed; elastic successor links mirror through backward
    // fingers like the ring overlays.
    for (const dht::NodeIndex32 c :
         n.table.entry(d1ht::kFullTableEntry).candidates(arena.cands)) {
      if (!overlay_->node(c).alive) continue;
      if (!overlay_->node(c).table.entry(d1ht::kFullTableEntry).contains(
              arena.cands, i))
        ++a.missing_backward;
    }
    for (const dht::NodeIndex32 c :
         n.table.entry(d1ht::kSuccessorEntry).candidates(arena.cands)) {
      if (!overlay_->node(c).alive) continue;
      if (!overlay_->node(c).inlinks.contains(arena.fingers, i))
        ++a.missing_backward;
    }
    for (const auto& f : n.inlinks.fingers(arena.fingers)) {
      if (!overlay_->node(f.node).alive) continue;
      if (!overlay_->node(f.node)
               .table.entry(d1ht::kSuccessorEntry)
               .contains(arena.cands, i))
        ++a.missing_forward;
    }
    return a;
  }
  void check_structure() const override { overlay_->check_invariants(); }

  std::uint64_t key_space() const override { return overlay_->ring_size(); }
  NodeIndex responsible(std::uint64_t key) const override {
    return overlay_->responsible(key);
  }
  void start_query(std::size_t) override {}
  HopStep route_step(std::size_t, NodeIndex cur, std::uint64_t key,
                     dht::RouteScratch& scratch) override {
    const dht::RouteStepInfo s = overlay_->route_step(cur, key, scratch);
    HopStep h;
    h.arrived = s.arrived;
    h.slot = s.entry_index < d1ht::kNumEntries ? s.entry_index : kNoSlot;
    return h;
  }
  std::uint64_t logical_distance_to_key(NodeIndex a,
                                        std::uint64_t key) const override {
    return overlay_->logical_distance_to_key(a, key);
  }
  dht::RoutingEntry* entry(NodeIndex i, std::size_t slot) override {
    if (slot == kNoSlot) return nullptr;
    return &overlay_->mutable_node(i).table.entry(slot);
  }
  NodeIndex live_successor(NodeIndex i) const override {
    return overlay_->directory().successor(
        (overlay_->node(i).id + 1) & (overlay_->ring_size() - 1));
  }
  NodeIndex node_at_or_after(std::uint64_t lv) const override {
    return overlay_->directory().successor(lv & (overlay_->ring_size() - 1));
  }

  void set_trace(trace::TraceSink* sink) override {
    overlay_->set_trace(sink);
  }
  void set_meter(wire::ByteMeter* meter) override {
    overlay_->set_meter(meter);
  }

 private:
  std::unique_ptr<d1ht::Overlay> overlay_;
};

}  // namespace

int substrate_ring_bits(std::size_t ids_needed) {
  int bits = 12;
  while ((std::uint64_t{1} << bits) < 16 * ids_needed) ++bits;
  return bits;
}

std::unique_ptr<SubstrateOps> make_substrate(SubstrateKind kind,
                                             const SimParams& params,
                                             bool capacity_biased,
                                             bool enforce_bounds,
                                             std::size_t ids_needed,
                                             PhysDistFn phys) {
  switch (kind) {
    case SubstrateKind::kCycloid:
      return std::make_unique<CycloidSubstrate>(
          params, capacity_biased, enforce_bounds, ids_needed, std::move(phys));
    case SubstrateKind::kChord:
      assert(!capacity_biased && "NS policy is Cycloid-only in this build");
      return std::make_unique<ChordSubstrate>(params, enforce_bounds,
                                              ids_needed, std::move(phys));
    case SubstrateKind::kPastry:
      assert(!capacity_biased && "NS policy is Cycloid-only in this build");
      return std::make_unique<PastrySubstrate>(params, enforce_bounds,
                                               ids_needed, std::move(phys));
    case SubstrateKind::kCan:
      assert(!capacity_biased && "NS policy is Cycloid-only in this build");
      return std::make_unique<CanSubstrate>(params, enforce_bounds,
                                            std::move(phys));
    case SubstrateKind::kKademlia:
      return std::make_unique<KademliaSubstrate>(
          params, capacity_biased, enforce_bounds, ids_needed, std::move(phys));
    case SubstrateKind::kD1ht:
      assert(!capacity_biased &&
             "NS is undefined on a full mesh: no selection freedom");
      return std::make_unique<D1htSubstrate>(params, enforce_bounds,
                                             ids_needed, std::move(phys));
  }
  return nullptr;
}

}  // namespace ert::harness
