#include "harness/faults.h"

#include <cmath>

#include "trace/trace.h"

namespace ert::harness {

namespace {
// Domain-separation constants so the message and crash streams differ from
// each other and from the engine's workload stream for the same seed.
constexpr std::uint64_t kMessageStream = 0xFA17F00DDEADBEEFull;
constexpr std::uint64_t kCrashStream = 0xC4A5511FEEDFACEull;
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan),
      rng_(seed ^ kMessageStream),
      crash_rng_(seed ^ kCrashStream) {}

MessageFate FaultInjector::fate() {
  ++messages_;
  MessageFate f;
  // Fixed draw order (drop, delay, dup) with one uniform per enabled fault
  // class: the stream is a pure function of (plan, seed, call index).
  if (plan_.drop_prob > 0.0 && rng_.uniform() < plan_.drop_prob) {
    f.dropped = true;
    ++drops_;
    return f;
  }
  if (plan_.delay_prob > 0.0 && rng_.uniform() < plan_.delay_prob) {
    f.extra_delay = rng_.uniform(0.0, plan_.delay_max);
    if (trace_ && trace_->wants(trace::Category::kFault))
      trace_->emit(trace::EventType::kFaultDelay, 0, messages_,
                   std::llround(f.extra_delay * 1e6));
  }
  if (plan_.dup_prob > 0.0 && rng_.uniform() < plan_.dup_prob) {
    f.duplicated = true;
    f.dup_extra_delay = rng_.uniform(0.0, plan_.dup_delay);
    ++duplicates_;
    if (trace_ && trace_->wants(trace::Category::kFault))
      trace_->emit(trace::EventType::kFaultDup, 0, messages_,
                   std::llround(f.dup_extra_delay * 1e6));
  }
  return f;
}

double FaultInjector::retry_delay(int attempt) const {
  return plan_.retry_timeout * std::pow(plan_.retry_backoff, attempt);
}

}  // namespace ert::harness
