// Experiment driver: builds a Cycloid network under one of the Sec. 5
// protocols, runs the configured workload on the discrete-event simulator,
// and reports every metric the paper's figures plot.
#pragma once

#include <cstddef>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "harness/auditor.h"
#include "harness/faults.h"
#include "harness/protocol.h"
#include "harness/substrate.h"
#include "metrics/metrics.h"
#include "scenario/scenario.h"
#include "trace/trace.h"
#include "wire/meter.h"

namespace ert::harness {

/// Optional per-run machinery: fault injection (docs/FAULTS.md) and the
/// continuous invariant auditor. Default-constructed options change nothing:
/// an empty FaultPlan and a disabled auditor leave every run bit-identical
/// to the plain run_experiment path.
struct ExperimentOptions {
  FaultPlan faults;
  AuditorOptions audit;
  /// Structured event tracing (docs/TRACING.md). Disabled by default; an
  /// enabled tracer observes only, so metrics and sim_duration stay
  /// bit-identical to a tracer-off run.
  trace::TraceConfig trace;
  /// Declarative workload scenario (docs/SCENARIOS.md). An empty or
  /// all-inert scenario constructs no driver, schedules no events, and
  /// consumes no randomness: the run is bit-identical to a plain run in
  /// every metric, sim_duration included (the zero-intensity contract).
  scenario::Scenario scenario;
  /// Byte-accurate wire accounting (docs/WIRE.md). Off by default: no
  /// meter is constructed and the send path is untouched. On, the meter
  /// observes only (serializes + counts, no randomness, no events), so
  /// every metric stays bit-identical to a bytes-off run.
  wire::MeterConfig wire;
};

struct ExperimentResult {
  // Congestion (Fig. 4a/4b, 9a): per-node peak congestion g = queue/slots.
  double p99_max_congestion = 0.0;
  double mean_max_congestion = 0.0;
  /// Peak congestion of the minimum-capacity node (Fig. 4b).
  double min_cap_node_congestion = 0.0;

  // Fair share (Fig. 4c, 8c, 9b).
  double p99_share = 0.0;

  // Lookup efficiency (Figs. 5, 8, 10).
  std::size_t heavy_encounters = 0;  ///< heavy nodes met in routings, total.
  double avg_path_length = 0.0;
  PctSummary lookup_time;  ///< avg / 1st / 99th percentile seconds.
  double avg_timeouts = 0.0;

  // Routing-table degrees (Fig. 7): per-node maxima over the run.
  PctSummary max_indegree;
  PctSummary max_outdegree;

  /// One sample per simulated second when params.trace_timeline is set:
  /// how Algorithm 3 drives the network toward g ~ 1.
  struct PeriodSample {
    double time = 0.0;
    double p99_congestion = 0.0;   ///< over nodes, instantaneous.
    double mean_congestion = 0.0;
    std::size_t heavy_nodes = 0;   ///< nodes with g > gamma_l right now.
    double mean_indegree = 0.0;    ///< over alive overlay nodes.
    std::size_t in_flight = 0;     ///< lookups issued but not finished.
  };
  std::vector<PeriodSample> timeline;

  // Bookkeeping.
  std::size_t completed_lookups = 0;
  /// Total drops = dropped_overload + dropped_fault (kept as the sum so
  /// existing consumers keep reading one number).
  std::size_t dropped_lookups = 0;
  /// Routing-capacity drops: hop budget exhausted or no candidate left.
  /// This is the Figure-4 congestion path; injected faults never land here.
  std::size_t dropped_overload = 0;
  /// Lookups failed by the fault layer: a hop's retries were exhausted.
  std::size_t dropped_fault = 0;
  double sim_duration = 0.0;
  std::size_t final_nodes = 0;  ///< real nodes alive at the end.

  // Fault-injection accounting (zero in fault-free runs).
  metrics::FaultCounters faults;

  // Elastic-table adaptation work (Algorithm 3): shed actions executed and
  // grow attempts that gained at least one link. Averaged over seeds like
  // the other counters.
  std::size_t adapt_sheds = 0;
  std::size_t adapt_grows = 0;

  // Invariant-audit report (empty unless options.audit.enabled). Under
  // run_averaged / run_sweep, sweeps and violations sum over seeds and
  // records concatenate in seed order. `audit_waived_sweeps` counts ticks
  // skipped inside a scenario partition's waiver window (also summed).
  std::size_t audit_sweeps = 0;
  std::size_t audit_waived_sweeps = 0;
  std::size_t audit_violations = 0;
  std::vector<InvariantViolation> audit_records;

  // Structured trace (empty unless options.trace.enabled). Under
  // run_averaged / run_sweep the per-seed streams concatenate in seed
  // order and the counters sum, so the trace is byte-identical for any
  // thread count. `trace_dropped` counts records evicted by ring wrap.
  std::vector<trace::Record> trace_records;
  std::size_t trace_emitted = 0;
  std::size_t trace_dropped = 0;

  // Wire byte accounting (all-zero unless options.wire.bytes). Under
  // run_averaged / run_sweep the counters average over seeds like every
  // other counter; in_flight_bytes is the end-of-run gauge (normally 0).
  metrics::ByteTotals bytes;
  /// Serialized message stream as "<type> <hex>" lines when
  /// options.wire.capture is set (golden wire traces); per-seed streams
  /// concatenate in seed order.
  std::string wire_capture;
};

/// Runs one simulation. Deterministic for a given (params.seed, protocol,
/// substrate, options) — including faulted runs: the fault stream has its
/// own seeded Rng. VS and NS require the Cycloid substrate.
ExperimentResult run_experiment(const SimParams& params, Protocol protocol);
ExperimentResult run_experiment(const SimParams& params, Protocol protocol,
                                SubstrateKind substrate);
ExperimentResult run_experiment(const SimParams& params, Protocol protocol,
                                SubstrateKind substrate,
                                const ExperimentOptions& options);

/// Averages scalar metrics over `seeds` runs with seeds params.seed,
/// params.seed + 1, ... (percentile summaries are averaged element-wise;
/// counters are averaged in double and rounded once at the end).
///
/// Seeds fan out across `threads` worker threads (0 = default_threads());
/// each run owns an independent Simulator, and the reduction happens
/// sequentially in seed order after all runs finish, so the result is
/// bit-identical whatever the thread count or completion order.
ExperimentResult run_averaged(const SimParams& params, Protocol protocol,
                              int seeds);
ExperimentResult run_averaged(const SimParams& params, Protocol protocol,
                              int seeds, SubstrateKind substrate,
                              int threads = 0);
ExperimentResult run_averaged(const SimParams& params, Protocol protocol,
                              int seeds, SubstrateKind substrate, int threads,
                              const ExperimentOptions& options);

/// One point of a parameter sweep: an averaged experiment.
struct SweepJob {
  SimParams params;
  Protocol protocol = Protocol::kErtAF;
  SubstrateKind substrate = SubstrateKind::kCycloid;
  int seeds = 1;
  ExperimentOptions options;  ///< per-job fault plan + audit config.
};

/// Runs every job (each averaged over its seeds) and returns results in job
/// order. The (job, seed) pairs are flattened into unit tasks before
/// fan-out, so the pool stays saturated even when jobs.size() is small.
/// Deterministic for fixed job parameters regardless of `threads`.
std::vector<ExperimentResult> run_sweep(const std::vector<SweepJob>& jobs,
                                        int threads = 0);

/// Smallest Cycloid dimension whose id space holds `ids_needed` ids.
int fit_dimension(std::size_t ids_needed);

/// What run_build_only measured: the constructed network's shape plus the
/// wall-clock cost of building it. No workload is issued and no simulated
/// time elapses.
struct BuildReport {
  std::size_t real_nodes = 0;     ///< physical nodes constructed.
  std::size_t overlay_slots = 0;  ///< overlay slots (> real_nodes under VS).
  double build_seconds = 0.0;     ///< wall-clock time inside build_network.
  std::size_t peak_rss_kb = 0;    ///< process peak RSS after the build.
};

/// Constructs the network exactly as run_experiment would (same Rng draw
/// sequence) and stops before issuing any workload. Used by the scale
/// benchmarks and `ertsim --build-only`.
BuildReport run_build_only(const SimParams& params, Protocol protocol,
                           SubstrateKind substrate);

}  // namespace ert::harness
