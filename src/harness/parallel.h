// Thread-pool primitive for the experiment harness.
//
// Experiments are embarrassingly parallel at seed granularity: each run owns
// its Simulator, Rng, and network, so fanning seeds across threads needs no
// synchronization beyond handing out indices. Results are written to
// pre-sized slots and reduced sequentially in seed order afterwards, which
// makes every aggregate independent of thread scheduling.
#pragma once

#include <cstddef>
#include <functional>

namespace ert::harness {

/// Worker count used when a caller passes threads == 0: the ERT_THREADS
/// environment variable if set (>= 1), else std::thread::hardware_concurrency.
int default_threads();

/// Invokes body(0) .. body(n-1), distributing indices across up to `threads`
/// workers via an atomic counter (threads == 0 means default_threads()).
/// With one worker everything runs inline on the calling thread. body must
/// not throw and must only touch disjoint state per index.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace ert::harness
