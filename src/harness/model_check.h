// Analytical hop-count validation (ISSUE 7 tentpole).
//
// Runs the plain (kBase) protocol on a substrate with query/hop tracing on,
// reconstructs the empirical hop-count distribution and the per-node
// arrival-load distribution from the trace stream, and compares the
// hop CDF against the substrate's closed-form prediction:
//
//  - Kademlia: the Roos/Salah-style recursion over XOR-msb states. The
//    bucket at msb(cur ^ key) covers exactly the radius-2^m ball around the
//    key, its contacts approximate a uniform k-subset of the ball's
//    occupants, and the greedy hop either lands on the owner (when it is
//    among the k) or on the sampled minimum, whose distance msb gives the
//    next state. See kademlia_hop_pmf below.
//  - Chord: Binomial(ceil(log2 n), 1/2) — each finger hop clears the top
//    set bit of the clockwise distance with probability 1/2 per bit (Kong
//    et al.'s mean-field model of strict Chord). Loose fingers and the
//    successor list shorten real paths, so this check carries a wider
//    tolerance than Kademlia's (see docs/SUBSTRATES.md).
//  - D1HT: degenerate — P(H = 0) = 1/n, else one hop. The gate is that at
//    least 99% of churn-free lookups resolve in <= 1 hop.
//
// The comparison statistic is the Kolmogorov (sup) distance between the
// empirical and predicted CDFs. Tolerances are pinned per substrate in
// default_model_tolerance and documented with their measured headroom in
// docs/SUBSTRATES.md; tests/model_check_test.cpp enforces them at n = 2048
// and n = 2^14.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/config.h"
#include "harness/substrate.h"

namespace ert::harness {

struct ModelCheckResult {
  SubstrateKind kind = SubstrateKind::kChord;
  std::size_t nodes = 0;
  std::size_t lookups = 0;  ///< completed lookups the CDF is built from.

  /// P(H <= h) for h = 0 .. max_hops, padded to a common length.
  std::vector<double> empirical_cdf;
  std::vector<double> predicted_cdf;
  double sup_deviation = 0.0;  ///< Kolmogorov distance between the two.
  double tolerance = 0.0;      ///< pass threshold for sup_deviation.

  double mean_hops_empirical = 0.0;
  double mean_hops_predicted = 0.0;
  /// Empirical P(H <= 1) — the D1HT single-hop gate reads this.
  double one_hop_fraction = 0.0;

  // Per-node arrival load (query receipts per node, from the hop trace).
  double load_mean = 0.0;
  double load_max = 0.0;
  double load_cv = 0.0;  ///< coefficient of variation across alive nodes.
  /// Total arrivals over all nodes; equals the total hop count, so the
  /// trace reconstruction is self-checking (conservation).
  std::size_t load_total = 0;

  bool pass = false;
};

/// Closed-form hop-count pmf for a Kademlia network of `n` uniform ids in a
/// 2^bits space with bucket size `k`. Entry h is P(H = h); the vector sums
/// to ~1 (truncated at bits + 2 hops).
std::vector<double> kademlia_hop_pmf(std::size_t n, int bits, std::size_t k);

/// Closed-form hop-count pmf for strict Chord: Binomial(ceil(log2 n), 1/2).
std::vector<double> chord_hop_pmf(std::size_t n);

/// Pinned pass tolerance (sup CDF deviation) per substrate.
double default_model_tolerance(SubstrateKind kind);

/// Runs kBase on `kind` with `params` (churn-free; asserts no drops) and
/// compares against the substrate's model. Supported kinds: kChord,
/// kKademlia, kD1ht.
ModelCheckResult model_check(SubstrateKind kind, const SimParams& params);

/// Serializes a result as a single JSON object (ertsim --model-check-json).
std::string model_check_json(const ModelCheckResult& r);

}  // namespace ert::harness
