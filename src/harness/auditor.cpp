#include "harness/auditor.h"

#include <cmath>
#include <cstdio>

#include "ert/capacity.h"
#include "harness/substrate.h"

namespace ert::harness {

std::string to_string(const InvariantViolation& v) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "t=%.3f %s node=%zu observed=%g bound=%g%s%s", v.time,
                v.invariant.c_str(), static_cast<std::size_t>(v.node),
                v.observed, v.bound, v.detail.empty() ? "" : " ",
                v.detail.c_str());
  return buf;
}

void InvariantAuditor::report(const char* invariant, dht::NodeIndex node,
                              double observed, double bound,
                              std::string detail) {
  ++total_;
  if (records_.size() >= opts_.max_records) return;
  InvariantViolation v;
  v.time = now_;
  v.invariant = invariant;
  v.node = node;
  v.observed = observed;
  v.bound = bound;
  v.detail = std::move(detail);
  records_.push_back(std::move(v));
}

void InvariantAuditor::expect_le(const char* invariant, dht::NodeIndex node,
                                 double observed, double bound,
                                 const char* what) {
  if (observed <= bound) return;
  report(invariant, node, observed, bound, what);
}

void InvariantAuditor::expect_eq(const char* invariant, dht::NodeIndex node,
                                 double observed, double bound,
                                 const char* what) {
  if (observed == bound) return;
  report(invariant, node, observed, bound, what);
}

void audit_substrate(InvariantAuditor& auditor, SubstrateOps& sub,
                     bool bounds_enforced, bool adaptive, double alpha,
                     double gamma_c,
                     const std::function<double(dht::NodeIndex)>& capacity_of) {
  const std::size_t slack = auditor.options().indegree_slack;
  for (dht::NodeIndex v = 0; v < sub.num_slots(); ++v) {
    if (!sub.alive(v)) continue;

    const LinkAuditCounts links = sub.audit_links(v);
    auditor.expect_eq("links.symmetry", v,
                      static_cast<double>(links.missing_backward), 0.0,
                      "outlink without matching backward finger");
    auditor.expect_eq("links.symmetry", v,
                      static_cast<double>(links.missing_forward), 0.0,
                      "backward finger without matching outlink");

    const auto& budget = sub.budget(v);
    const double d = static_cast<double>(links.inlinks);
    auditor.expect_eq("indegree.budget-sync", v,
                      static_cast<double>(budget.indegree()), d,
                      "budget degree vs backward-finger count");

    if (!bounds_enforced) continue;
    const double dinf = budget.max_indegree();
    auditor.expect_le("indegree.bound-floor", v, 1.0, dinf,
                      "d_inf fell below 1");
    // Every inlink beyond d_inf must be accounted for by an emergency
    // accept (link with respect_budget=false): d <= d_inf + forced.
    auditor.expect_le(
        "indegree.bound", v, d,
        dinf + static_cast<double>(budget.forced_accepts()) +
            static_cast<double>(slack),
        "inlinks exceed d_inf + emergency accepts");
    // Theorem 3.1: d_inf was assigned as floor(0.5 + alpha * c_est) with
    // c_est <= gamma_c * c-hat, so it can never exceed the gamma_c-inflated
    // capacity bound. Under adaptation (Theorem 3.2) the bound moves, but
    // every raise is backed by really-gained inlinks and every shed lowers
    // it by exactly the links lost, so the bound-over-degree gap never
    // grows past the initial assignment's: d_inf <= d + theorem31 bound.
    const double d31 = static_cast<double>(
        core::max_indegree(alpha, gamma_c * capacity_of(v)));
    if (adaptive) {
      auditor.expect_le("theorem3.2", v, dinf, d + d31,
                        "adapted d_inf outgrew its capacity window");
    } else {
      auditor.expect_le("theorem3.1", v, dinf, d31,
                        "initial d_inf exceeds alpha*gamma_c*c-hat");
    }
  }
  // Structural self-check (assert-based; no-op under NDEBUG).
  sub.check_structure();
}

}  // namespace ert::harness
