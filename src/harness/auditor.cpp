#include "harness/auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "ert/capacity.h"
#include "harness/substrate.h"

namespace ert::harness {

std::string to_string(const InvariantViolation& v) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "t=%.3f %s node=%zu observed=%g bound=%g%s%s", v.time,
                v.invariant.c_str(), static_cast<std::size_t>(v.node),
                v.observed, v.bound, v.detail.empty() ? "" : " ",
                v.detail.c_str());
  return buf;
}

void InvariantAuditor::report(const char* invariant, dht::NodeIndex node,
                              double observed, double bound,
                              std::string detail) {
  ++total_;
  if (records_.size() >= opts_.max_records) return;
  InvariantViolation v;
  v.time = now_;
  v.invariant = invariant;
  v.node = node;
  v.observed = observed;
  v.bound = bound;
  v.detail = std::move(detail);
  records_.push_back(std::move(v));
}

void InvariantAuditor::expect_le(const char* invariant, dht::NodeIndex node,
                                 double observed, double bound,
                                 const char* what) {
  if (observed <= bound) return;
  report(invariant, node, observed, bound, what);
}

void InvariantAuditor::expect_eq(const char* invariant, dht::NodeIndex node,
                                 double observed, double bound,
                                 const char* what) {
  if (observed == bound) return;
  report(invariant, node, observed, bound, what);
}

const std::vector<std::uint32_t>* InvariantAuditor::sample_population(
    std::size_t population) {
  const std::size_t k = opts_.sample;
  if (k == 0 || population <= k) return nullptr;
  // Partial Fisher-Yates over a reusable index pool, then sort so callers
  // visit sampled nodes in ascending order (stable record ordering).
  perm_scratch_.resize(population);
  for (std::size_t i = 0; i < population; ++i)
    perm_scratch_[i] = static_cast<std::uint32_t>(i);
  sample_out_.clear();
  sample_out_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng_.index(population - i);
    std::swap(perm_scratch_[i], perm_scratch_[j]);
    sample_out_.push_back(perm_scratch_[i]);
  }
  std::sort(sample_out_.begin(), sample_out_.end());
  return &sample_out_;
}

void audit_substrate(InvariantAuditor& auditor, SubstrateOps& sub,
                     bool bounds_enforced, bool adaptive, double alpha,
                     double gamma_c,
                     const std::function<double(dht::NodeIndex)>& capacity_of) {
  const std::size_t slack = auditor.options().indegree_slack;
  const auto audit_one = [&](dht::NodeIndex v) {
    if (!sub.alive(v)) return;

    const LinkAuditCounts links = sub.audit_links(v);
    auditor.expect_eq("links.symmetry", v,
                      static_cast<double>(links.missing_backward), 0.0,
                      "outlink without matching backward finger");
    auditor.expect_eq("links.symmetry", v,
                      static_cast<double>(links.missing_forward), 0.0,
                      "backward finger without matching outlink");

    const auto& budget = sub.budget(v);
    const double d = static_cast<double>(links.inlinks);
    auditor.expect_eq("indegree.budget-sync", v,
                      static_cast<double>(budget.indegree()), d,
                      "budget degree vs backward-finger count");

    if (!bounds_enforced) return;
    const double dinf = budget.max_indegree();
    auditor.expect_le("indegree.bound-floor", v, 1.0, dinf,
                      "d_inf fell below 1");
    // Every inlink beyond d_inf must be accounted for by an emergency
    // accept (link with respect_budget=false): d <= d_inf + forced.
    auditor.expect_le(
        "indegree.bound", v, d,
        dinf + static_cast<double>(budget.forced_accepts()) +
            static_cast<double>(slack),
        "inlinks exceed d_inf + emergency accepts");
    // Theorem 3.1: d_inf was assigned as floor(0.5 + alpha * c_est) with
    // c_est <= gamma_c * c-hat, so it can never exceed the gamma_c-inflated
    // capacity bound. Under adaptation (Theorem 3.2) the bound moves, but
    // every raise is backed by really-gained inlinks and every shed lowers
    // it by exactly the links lost, so the bound-over-degree gap never
    // grows past the initial assignment's: d_inf <= d + theorem31 bound.
    const double d31 = static_cast<double>(
        core::max_indegree(alpha, gamma_c * capacity_of(v)));
    if (adaptive) {
      auditor.expect_le("theorem3.2", v, dinf, d + d31,
                        "adapted d_inf outgrew its capacity window");
    } else {
      auditor.expect_le("theorem3.1", v, dinf, d31,
                        "initial d_inf exceeds alpha*gamma_c*c-hat");
    }
  };
  if (const auto* sample = auditor.sample_population(sub.num_slots())) {
    for (const std::uint32_t v : *sample) audit_one(v);
  } else {
    for (dht::NodeIndex v = 0; v < sub.num_slots(); ++v) audit_one(v);
  }
  // Structural self-check (assert-based; no-op under NDEBUG).
  sub.check_structure();
}

}  // namespace ert::harness
