#include "harness/pdes_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "cycloid/overlay.h"
#include "ert/adaptation.h"
#include "ert/capacity.h"
#include "ert/forwarding.h"
#include "ert/load_tracker.h"
#include "harness/engine_detail.h"
#include "harness/substrate.h"
#include "metrics/metrics.h"
#include "net/bandwidth.h"
#include "net/proximity.h"
#include "sim/sharded.h"
#include "trace/trace.h"
#include "wire/meter.h"
#include "workload/workload.h"

namespace ert::harness {

bool pdes_supported(const SimParams& params, Protocol protocol,
                    SubstrateKind substrate, const ExperimentOptions& options) {
  (void)substrate;  // every non-VS substrate routes through RouteCtxBlob.
  if (uses_virtual_servers(protocol)) return false;
  if (params.impulse_nodes > 0) return false;
  if (!options.scenario.inert()) return false;
  // Message duplication breaks the single-handler ownership model (two
  // copies of one query would execute on two shards at once).
  if (options.faults.dup_prob > 0.0) return false;
  // Too few nodes per shard: windowing overhead dominates and a shard can
  // plausibly end up empty.
  if (params.num_nodes < 8 * static_cast<std::size_t>(params.sim_threads))
    return false;
  return true;
}

namespace {

using dht::NodeIndex;
using detail::Query;

/// Packed cross-shard query reference: owner shard << 32 | pool slot.
using QueryRef = std::uint64_t;

constexpr QueryRef pack_ref(int shard, std::uint32_t slot) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(shard))
          << 32) |
         slot;
}
constexpr int ref_shard(QueryRef ref) { return static_cast<int>(ref >> 32); }
constexpr std::uint32_t ref_slot(QueryRef ref) {
  return static_cast<std::uint32_t>(ref);
}

using RealNode = detail::RealNodeT<QueryRef>;

/// SplitMix64 finalizer: the shard-assignment hash (ISSUE 9's "hash of
/// NodeIndex32"), chosen so shard populations are balanced independently of
/// any structure in the join order.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Chunked, reference-stable query storage for one shard.
///
/// Cross-shard safety: only the owner shard (or the quiescent coordinator)
/// claims and releases slots, but any shard may dereference a ref it was
/// handed. Chunks never move once allocated, and the chunk index is
/// reserved up front so push_back never reallocates it — a remote shard
/// walking chunks_[i] can race only with the append of a *new* pointer at a
/// higher index, never with relocation of the ones it reads. A ref reaches
/// a remote shard only through a window barrier, which orders the owner's
/// chunk append before the remote dereference.
class QueryPool {
 public:
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  void init(std::size_t max_queries) {
    chunks_.reserve(max_queries / kChunkSize + 2);
  }

  Query& at(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t claim(std::uint64_t id, bool recycle) {
    if (recycle && !free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      at(slot).reset(id);
      return slot;
    }
    if (size_ == chunks_.size() * kChunkSize) {
      assert(chunks_.size() < chunks_.capacity() &&
             "QueryPool::init sized the chunk index too small");
      chunks_.push_back(std::make_unique<Query[]>(kChunkSize));
    }
    const std::uint32_t slot = size_++;
    at(slot).id = id;
    return slot;
  }

  void release(std::uint32_t slot) { free_.push_back(slot); }

 private:
  std::vector<std::unique_ptr<Query[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t size_ = 0;
};

class ShardedEngine {
 public:
  ShardedEngine(const SimParams& params, Protocol proto, SubstrateKind kind,
                const ExperimentOptions& options)
      : params_(params),
        proto_(proto),
        kind_(kind),
        rng_(params.seed),
        S_(params.sim_threads),
        driver_(params.sim_threads, net::kDefaultBaseLatency) {
    if (options.faults.enabled()) {
      // Crash scheduling stays on the serial engine's injector stream; the
      // per-shard injectors own domain-separated message-fate streams.
      global_faults_ =
          std::make_unique<FaultInjector>(options.faults, params.seed);
    }
    if (options.audit.enabled)
      auditor_ = std::make_unique<InvariantAuditor>(
          options.audit, params.seed ^ 0xa0d17'5a3b1eULL);
    if (options.trace.enabled) {
      global_trace_ = std::make_unique<trace::TraceSink>(
          options.trace, [this] { return driver_.global().now(); });
    }
    if (options.wire.bytes) {
      // One LinkModel shared by every meter: a physical node has one egress
      // bucket no matter which clock observes it. The coordinator meter
      // serves global events (adaptation, churn, relocation); each shard
      // gets its own meter below, mirroring the tracer's sink-per-shard
      // pattern.
      links_ = std::make_unique<net::LinkModel>(
          net::BandwidthParams{options.wire.link_rate,
                               options.wire.link_burst});
      global_meter_ = std::make_unique<wire::ByteMeter>(
          options.wire, [this] { return driver_.global().now(); },
          links_.get());
    }
    shards_.reserve(static_cast<std::size_t>(S_));
    const std::size_t per = params.num_lookups / static_cast<std::size_t>(S_);
    const std::size_t rem = params.num_lookups % static_cast<std::size_t>(S_);
    for (int s = 0; s < S_; ++s) {
      auto sh = std::make_unique<Shard>();
      sh->rng = Rng(params.seed ^
                    (0xd1b54a32d192ed03ULL *
                     (static_cast<std::uint64_t>(s) + 1)));
      // Exact quota split: the union of per-shard arrival processes issues
      // exactly num_lookups lookups (model-check requires equality).
      sh->quota = per + (static_cast<std::size_t>(s) < rem ? 1 : 0);
      if (options.faults.enabled())
        sh->faults = std::make_unique<FaultInjector>(
            options.faults,
            params.seed ^ (0x9e3779b97f4a7c15ULL *
                           (static_cast<std::uint64_t>(s) + 1)));
      if (options.trace.enabled) {
        // Each shard ring gets the full configured capacity, so a stream
        // that fits the serial ring cannot wrap a shard ring either.
        sim::Simulator* clock = &driver_.shard(s);
        sh->trace = std::make_unique<trace::TraceSink>(
            options.trace, [clock] { return clock->now(); });
        if (sh->faults) sh->faults->set_trace(sh->trace.get());
      }
      if (options.wire.bytes) {
        sim::Simulator* clock = &driver_.shard(s);
        sh->meter = std::make_unique<wire::ByteMeter>(
            options.wire, [clock] { return clock->now(); }, links_.get());
        // A shard may serialize a frame whose nominal sender lives on
        // another shard (a remote probe reply); it still counts in the
        // totals, but only the owner shard may charge the shared bucket.
        sh->meter->set_bucket_filter(
            [this, s](std::size_t link) { return shard_of_real(link) == s; });
      }
      sh->pool.init(params.num_lookups);
      shards_.push_back(std::move(sh));
    }
  }

  ExperimentResult run() {
    if (gtracing(trace::Category::kRun))
      global_trace_->emit(trace::EventType::kRunBegin, params_.num_nodes,
                          params_.seed, static_cast<std::int64_t>(proto_),
                          static_cast<std::int64_t>(kind_));
    build_network();
    if (global_meter_) {
      // Attached after construction, like the serial engine: only
      // steady-state traffic is billed, not the bulk-join link setup. The
      // eager pre-size (to the churn headroom reals_ was reserved with)
      // keeps shard-side sends from ever growing the shared bucket vector.
      substrate_->set_meter(global_meter_.get());
      global_meter_->set_link_map([this](std::size_t v) { return real_of(v); });
      global_meter_->reserve_links(reals_.capacity());
      for (auto& sh : shards_) sh->meter->reserve_links(reals_.capacity());
    }
    assign_shards();
    if (params_.zipf_catalog > 0) {
      zipf_ = std::make_unique<workload::ZipfKeys>(
          substrate_->key_space(), params_.zipf_catalog,
          params_.zipf_exponent, rng_);
      if (params_.zipf_drift_period > 0) schedule_zipf_drift();
    }
    if (uses_adaptation(proto_)) schedule_adaptation();
    if (params_.churn_interarrival > 0) schedule_churn();
    if (params_.trace_timeline) schedule_trace();
    if (global_faults_) schedule_crash_waves();
    if (auditor_) schedule_audit();
    for (int s = 0; s < S_; ++s) schedule_next_lookup(s);
    driver_.reserve_mailboxes(256);
    sim::ShardedSimulator::BarrierHooks hooks;
    hooks.pre_global = [this](sim::Time t) { barrier_apply(t); };
    hooks.post_global = [this](sim::Time t) { barrier_refresh(t); };
    driver_.set_hooks(std::move(hooks));
    driver_.run();
    return finalize();
  }

 private:
  struct RepairRec {
    NodeIndex at;
    NodeIndex dead;
    std::size_t slot;  ///< kNoSlot for a purge with no entry repair.
  };

  /// Everything owned by (or single-writer from) one shard.
  struct Shard {
    Rng rng;  ///< domain-separated workload stream.
    QueryPool pool;
    std::vector<NodeIndex> members;  ///< overlay slots this shard owns.
    std::size_t alive_members = 0;   ///< maintained at global time.
    std::size_t quota = 0;           ///< lookups this shard must issue.
    std::size_t issued = 0;
    std::size_t completed = 0;
    std::size_t dropped_overload = 0;
    std::size_t dropped_fault = 0;
    std::uint64_t next_seq = 0;  ///< per-shard issue counter (id = seq*S+s).
    bool arrival_idle = true;    ///< no pending arrival event.
    metrics::LookupStats lookups;
    metrics::FaultCounters fstats;
    std::unique_ptr<FaultInjector> faults;      ///< message fates only.
    std::unique_ptr<trace::TraceSink> trace;    ///< shard-clock sink.
    std::unique_ptr<wire::ByteMeter> meter;     ///< shard-clock byte meter.
    dht::RouteScratch route_scratch;
    core::ForwardScratch fwd_scratch;
    std::vector<RepairRec> repairs;  ///< deferred purge/repair, barrier-run.
    std::vector<std::uint32_t> dirty;  ///< reals with changed queue length.
  };

  sim::Simulator& sim(int s) { return driver_.shard(s); }
  sim::Simulator& global() { return driver_.global(); }
  Shard& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }

  Query& query(QueryRef ref) {
    return shard(ref_shard(ref)).pool.at(ref_slot(ref));
  }

  bool gtracing(trace::Category c) const {
    return global_trace_ && global_trace_->wants(c);
  }
  bool stracing(int s, trace::Category c) const {
    const auto& t = shards_[static_cast<std::size_t>(s)]->trace;
    return t && t->wants(c);
  }
  trace::TraceSink& strace(int s) {
    return *shards_[static_cast<std::size_t>(s)]->trace;
  }

  std::size_t real_of(NodeIndex v) const { return real_of_overlay_.at(v); }
  int shard_of_real(std::size_t r) const {
    return static_cast<int>(shard_of_real_[r]);
  }
  int shard_of(NodeIndex v) const { return shard_of_real(real_of(v)); }

  bool done() const {
    std::size_t issued = 0, settled = 0, quota = 0;
    for (const auto& sh : shards_) {
      issued += sh->issued;
      quota += sh->quota;
      settled += sh->completed + sh->dropped_overload + sh->dropped_fault;
    }
    return issued >= quota && settled >= issued;
  }

  // Queue-length views. A node's queue is mutated only by its owner shard
  // inside windows (and by the quiescent coordinator), so the owner reads
  // it live; every other shard reads the barrier-published snapshot.
  double queue_len_seen_by(int h, std::size_t r) const {
    return shard_of_real(r) == h
               ? static_cast<double>(reals_[r].tracker.queue_length())
               : static_cast<double>(snap_queue_[r]);
  }
  bool is_heavy_live(std::size_t r) const {
    return static_cast<double>(reals_[r].tracker.queue_length()) >
           params_.gamma_l * reals_[r].cap;
  }
  double congestion_live(std::size_t r) const {
    return static_cast<double>(reals_[r].tracker.queue_length()) /
           reals_[r].cap;
  }

  void mark_dirty(int h, std::size_t r) {
    if (dirty_epoch_[r] == window_id_) return;
    dirty_epoch_[r] = window_id_;
    shard(h).dirty.push_back(static_cast<std::uint32_t>(r));
  }

  // --- network construction (identical Rng draw sequence to the serial
  // engine's non-VS path, so both engines simulate the same network) -----

  void build_network() {
    const std::size_t n = params_.num_nodes;
    caps_ = core::CapacityModel::generate(n, params_, rng_);
    prox_ = net::ProximityMap(n, rng_);

    std::size_t ids_needed = n;
    const bool membership_churn = params_.churn_interarrival > 0;
    if (membership_churn) ids_needed = std::max(ids_needed, 2 * n);
    assert(proto_ != Protocol::kNS || kind_ == SubstrateKind::kCycloid ||
           kind_ == SubstrateKind::kKademlia);
    substrate_ = make_substrate(
        kind_, params_, /*capacity_biased=*/proto_ == Protocol::kNS,
        /*enforce_bounds=*/proto_ == Protocol::kNS || is_ert(proto_),
        ids_needed, [this](NodeIndex a, NodeIndex b) {
          return prox_.distance(real_of(a), real_of(b));
        });
    // Overlay-side link.adopt/shed records come from construction,
    // adaptation sweeps, joins, and barrier repairs — all coordinator-side
    // — so the substrate emits into the global sink.
    substrate_->set_trace(global_trace_.get());

    const std::size_t headroom = membership_churn ? n + n / 2 : n;
    overlay_of_real_.reserve(headroom);
    real_of_overlay_.reserve(headroom);
    reals_.reserve(headroom);
    prox_.reserve(headroom);

    substrate_->begin_bulk_join(n);
    for (std::size_t r = 0; r < n; ++r) {
      const int dinf = node_max_indegree(r, rng_);
      const NodeIndex v =
          substrate_->add_node(rng_, caps_.normalized(r), dinf, params_.beta);
      overlay_of_real_.push_back(v);
      real_of_overlay_.push_back(r);
    }
    substrate_->end_bulk_join();
    for (NodeIndex v = 0; v < substrate_->num_slots(); ++v)
      substrate_->build_table(v, rng_);
    if (is_ert(proto_)) initial_indegree_assignment();

    reals_.resize(n);
    for (std::size_t r = 0; r < n; ++r) reals_[r].cap = caps_.normalized(r);
    degrees_ = std::make_unique<metrics::DegreeTracker>(n);
    observe_degrees();
  }

  int node_max_indegree(std::size_t r, Rng& rng) {
    if (is_ert(proto_) || proto_ == Protocol::kNS) {
      const double est = caps_.estimated(r, params_.gamma_c, rng);
      return core::max_indegree(params_.alpha(), est);
    }
    return 1 << 20;  // Base: no indegree control.
  }

  void initial_indegree_assignment() {
    std::vector<NodeIndex> order(substrate_->num_slots());
    for (NodeIndex v = 0; v < order.size(); ++v) order[v] = v;
    rng_.shuffle(order);
    for (NodeIndex v : order) {
      const auto& budget = substrate_->budget(v);
      const int want = budget.initial_target() - budget.indegree();
      if (want > 0) substrate_->expand_indegree(v, want, 256);
    }
  }

  void assign_shards() {
    const std::size_t n = reals_.size();
    shard_of_real_.resize(n);
    snap_queue_.assign(n, 0);
    dirty_epoch_.assign(n, 0);
    for (std::size_t r = 0; r < n; ++r) {
      const int s = static_cast<int>(
          mix64(r) % static_cast<std::uint64_t>(S_));
      shard_of_real_[r] = static_cast<std::uint32_t>(s);
      const NodeIndex v = overlay_of_real_[r];
      if (v == dht::kNoNode) continue;
      shard(s).members.push_back(v);
      if (reals_[r].alive) {
        ++shard(s).alive_members;
        ++alive_total_;
      }
    }
  }

  // --- per-shard workload ------------------------------------------------

  void schedule_next_lookup(int s) {
    Shard& sh = shard(s);
    if (sh.issued >= sh.quota || sh.alive_members == 0) {
      sh.arrival_idle = true;
      return;
    }
    // Per-shard Poisson thinning: rate_s = rate * alive_s / alive_total
    // with uniform shard-local sources. The superposition over shards is
    // exactly a Poisson(rate) process with uniform alive sources — the
    // serial workload in law, issued without any cross-shard coordination.
    const double rate = params_.lookup_rate *
                        static_cast<double>(sh.alive_members) /
                        static_cast<double>(alive_total_);
    sh.arrival_idle = false;
    sim(s).schedule(sh.rng.exponential(rate), [this, s] {
      issue_lookup(s);
      schedule_next_lookup(s);
    });
  }

  NodeIndex pick_alive_member(int s) {
    Shard& sh = shard(s);
    for (;;) {
      const NodeIndex v = sh.members[sh.rng.index(sh.members.size())];
      if (substrate_->alive(v)) return v;
    }
  }

  void issue_lookup(int s) {
    Shard& sh = shard(s);
    if (sh.alive_members == 0) return;  // barrier fixup reassigns the quota
    ++sh.issued;
    const std::uint64_t id =
        sh.next_seq++ * static_cast<std::uint64_t>(S_) +
        static_cast<std::uint64_t>(s);
    const std::uint32_t slot = sh.pool.claim(id, /*recycle=*/!sh.faults);
    const QueryRef ref = pack_ref(s, slot);
    Query& q = sh.pool.at(slot);
    q.start_time = sim(s).now();
    const NodeIndex src = pick_alive_member(s);
    q.key = zipf_ ? zipf_->pick(sh.rng)
                  : sh.rng.bits() % substrate_->key_space();
    q.cur = src;
    if (params_.data_forwarding) q.path.push_back(src);
    if (stracing(s, trace::Category::kQuery))
      strace(s).emit(trace::EventType::kQueryBegin, src, q.id,
                     static_cast<std::int64_t>(q.key));
    arrive(s, ref, src);
  }

  // --- message transport -------------------------------------------------

  /// Delivers `ref` to overlay node `to` after `delay` seconds, crossing
  /// shards through the mailbox when needed. Every delay on this path is
  /// >= the lookahead floor (link latency >= base latency; timeout penalty
  /// and retry timeouts are 0.5 s), which is what licenses the windows.
  void deliver(int h, QueryRef ref, NodeIndex to, double delay) {
    const int t = shard_of(to);
    if (t == h) {
      sim(h).schedule(delay, [this, t, ref, to] { arrive(t, ref, to); });
    } else {
      driver_.post(h, t, sim(h).now() + delay,
                   [this, t, ref, to] { arrive(t, ref, to); });
    }
  }

  /// Serializes and accounts one Forward transmission of `ref` toward `to`,
  /// charged to the handling shard's meter. The in-flight gauge is tracked
  /// only for intra-shard deliveries: the arrival-side decrement runs on
  /// the receiver's meter, and touching another shard's meter would race.
  /// Cross-shard frames still count fully in the byte totals.
  void account_forward(int h, QueryRef ref, NodeIndex to, bool track) {
    Query& q = query(ref);
    const wire::Forward m{q.id,        q.key,
                          q.cur,       to,
                          q.hops,      q.returning,
                          static_cast<std::uint32_t>(q.overloaded.size()),
                          q.overloaded.entries()};
    const std::uint32_t size = shard(h).meter->send(m, real_of(q.cur));
    if (track && shard_of(to) == h) {
      q.wire_bytes = size;
      shard(h).meter->in_flight_add(size);
    }
  }

  void send_hop(int h, QueryRef ref, NodeIndex to, double latency) {
    Shard& sh = shard(h);
    if (!sh.faults || !sh.faults->plan().message_faults()) {
      if (sh.meter) account_forward(h, ref, to, /*track=*/true);
      deliver(h, ref, to, latency);
      return;
    }
    attempt_send(h, ref, to, latency, 0);
  }

  void attempt_send(int h, QueryRef ref, NodeIndex to, double latency,
                    int attempt) {
    Shard& sh = shard(h);
    Query& q = query(ref);
    if (q.done) return;
    const MessageFate f = sh.faults->fate();
    // Dropped frames still burn sender bandwidth; only delivered frames
    // enter the in-flight gauge.
    if (sh.meter) account_forward(h, ref, to, /*track=*/!f.dropped);
    if (f.dropped) {
      ++sh.fstats.timed_out;
      q.fault_hit = true;
      if (stracing(h, trace::Category::kFault))
        strace(h).emit(trace::EventType::kFaultTimeout, to, q.id, attempt);
      if (sh.faults->retries_exhausted(attempt + 1)) {
        fail_lookup_fault(h, ref);
        return;
      }
      ++sh.fstats.retried;
      if (stracing(h, trace::Category::kFault))
        strace(h).emit(trace::EventType::kFaultRetry, to, q.id, attempt + 1);
      sim(h).schedule(sh.faults->retry_delay(attempt),
                      [this, h, ref, to, latency, attempt] {
                        attempt_send(h, ref, to, latency, attempt + 1);
                      });
      return;
    }
    // Duplication is gated off by pdes_supported, so a non-dropped message
    // is delivered exactly once.
    deliver(h, ref, to, latency + f.extra_delay);
  }

  // --- queueing (runs on the owner shard of the node) ---------------------

  void arrive(int h, QueryRef ref, NodeIndex v) {
    Query& q = query(ref);
    if (auto* m = shard(h).meter.get(); m && q.wire_bytes) {
      m->in_flight_sub(q.wire_bytes);
      q.wire_bytes = 0;
    }
    if (q.done) return;  // settled while a retry/timeout copy was in flight
    if (!substrate_->alive(v)) {
      ++q.timeouts;
      if (stracing(h, trace::Category::kHop))
        strace(h).emit(trace::EventType::kQueryTimeout, v, q.id, 0, 0,
                       /*site=*/0);
      const NodeIndex sub = substrate_->live_successor(v);
      ++q.hops;
      if (shard(h).meter) account_forward(h, ref, sub, /*track=*/true);
      deliver(h, ref, sub, params_.timeout_penalty);
      return;
    }
    q.cur = v;
    const std::size_t r = real_of(v);
    RealNode& rn = reals_[r];
    if (params_.queue_cap != 0 &&
        rn.tracker.queue_length() >= params_.queue_cap) {
      drop_lookup(h, ref);
      return;
    }
    if (is_heavy_live(r)) {
      ++q.heavy_met;
      if (stracing(h, trace::Category::kOverload))
        strace(h).emit(
            trace::EventType::kQueryOverload, v, q.id,
            static_cast<std::int64_t>(rn.tracker.queue_length()),
            std::llround(congestion_live(r) * 1000.0));
    }
    rn.tracker.on_enqueue();
    mark_dirty(h, r);
    rn.peak_congestion = std::max(rn.peak_congestion, congestion_live(r));
    if (rn.in_service == 0) {
      begin_service(h, r, ref);
    } else {
      rn.waiting.push_back(ref);
    }
  }

  void begin_service(int h, std::size_t r, QueryRef ref) {
    RealNode& rn = reals_[r];
    ++rn.in_service;
    rn.serving.push_back(ref);
    const double base = is_heavy_live(r) ? params_.heavy_service_time
                                         : params_.light_service_time;
    const double service = base / rn.cap;
    rn.service_ev = sim(h).schedule(
        service, [this, h, r, ref] { complete_service(h, r, ref); });
  }

  void complete_service(int h, std::size_t r, QueryRef ref) {
    RealNode& rn = reals_[r];
    --rn.in_service;
    std::erase(rn.serving, ref);
    rn.tracker.on_dequeue();
    mark_dirty(h, r);
    if (!rn.waiting.empty()) {
      const QueryRef next_ref = rn.waiting.front();
      rn.waiting.pop_front();
      begin_service(h, r, next_ref);
    }
    if (query(ref).done) return;
    if (query(ref).returning) {
      forward_response(h, ref);
    } else {
      forward(h, ref);
    }
  }

  // --- routing + forwarding ----------------------------------------------

  void forward(int h, QueryRef ref) {
    Shard& sh = shard(h);
    Query& q = query(ref);
    NodeIndex v = q.cur;
    for (int guard = 0; guard < 4096; ++guard) {
      if (q.hops > hop_cap()) {
        drop_lookup(h, ref);
        return;
      }
      const HopStep step =
          substrate_->route_step(v, q.key, q.rctx, sh.route_scratch);
      if (step.arrived) {
        finish_lookup(h, ref);
        return;
      }
      auto& cands = sh.route_scratch.candidates;
      assert(!cands.empty());
      if (is_ert(proto_) && cands.size() > 1) {
        // Dead candidates are skipped in place; the purge itself mutates
        // the dead node's inlink set (shared across shards), so it is
        // deferred to the window barrier instead of applied here.
        std::size_t live = 0;
        for (std::size_t i = 0; i < cands.size(); ++i) {
          const NodeIndex c = cands[i];
          if (substrate_->alive(c)) {
            cands[live++] = c;
          } else {
            sh.repairs.push_back(RepairRec{v, c, kNoSlot});
          }
        }
        if (live > 0) cands.resize(live);
      }
      int probes = 0;
      const NodeIndex next = select_next(h, ref, v, step, probes);
      if (next == dht::kNoNode) {
        drop_lookup(h, ref);
        return;
      }
      if (!substrate_->alive(next)) {
        // Timeout on a dead neighbor. The serial engine purges, repairs,
        // and retries inline, folding the penalty into the next hop's
        // latency; here the repair is deferred to the barrier, so the
        // penalty is spent as a real wait (same total latency) and routing
        // resumes at v after the repair has been applied.
        ++q.timeouts;
        if (stracing(h, trace::Category::kHop))
          strace(h).emit(trace::EventType::kQueryTimeout, next, q.id, 0, 0,
                         /*site=*/1);
        sh.repairs.push_back(RepairRec{v, next, step.slot});
        q.cur = v;
        sim(h).schedule(params_.timeout_penalty,
                        [this, h, ref] { resume_forward(h, ref); });
        return;
      }
      ++q.hops;
      if (stracing(h, trace::Category::kHop))
        strace(h).emit(trace::EventType::kQueryHop, v, q.id,
                       static_cast<std::int64_t>(next),
                       static_cast<std::int64_t>(q.overloaded.size()),
                       static_cast<std::uint32_t>(cands.size()));
      if (params_.data_forwarding) q.path.push_back(next);
      if (real_of(next) == real_of(v)) {
        v = next;
        q.cur = next;
        continue;
      }
      const double latency = prox_.latency(real_of(v), real_of(next)) +
                             q.penalty + params_.probe_cost * probes;
      q.penalty = 0.0;
      send_hop(h, ref, next, latency);
      return;
    }
    drop_lookup(h, ref);
  }

  /// Re-enters the hop loop after a dead-neighbor timeout wait (>= one
  /// window, so the recorded repair has been applied).
  void resume_forward(int h, QueryRef ref) {
    Query& q = query(ref);
    if (q.done) return;
    if (!substrate_->alive(q.cur)) {
      // The holding node itself departed during the wait.
      ++q.timeouts;
      if (stracing(h, trace::Category::kHop))
        strace(h).emit(trace::EventType::kQueryTimeout, q.cur, q.id, 0, 0,
                       /*site=*/0);
      const NodeIndex sub = substrate_->live_successor(q.cur);
      ++q.hops;
      if (shard(h).meter) account_forward(h, ref, sub, /*track=*/true);
      deliver(h, ref, sub, params_.timeout_penalty);
      return;
    }
    forward(h, ref);
  }

  void forward_response(int h, QueryRef ref) {
    Query& q = query(ref);
    while (!q.path.empty() && (q.path.back() == q.cur ||
                               !substrate_->alive(q.path.back()))) {
      q.path.pop_back();
    }
    if (q.path.empty()) {
      complete_query(h, ref);
      return;
    }
    const NodeIndex next = q.path.back();
    q.path.pop_back();
    ++q.hops;
    if (stracing(h, trace::Category::kHop))
      strace(h).emit(trace::EventType::kQueryHop, q.cur, q.id,
                     static_cast<std::int64_t>(next),
                     static_cast<std::int64_t>(q.overloaded.size()), 0);
    const double latency = prox_.latency(real_of(q.cur), real_of(next));
    send_hop(h, ref, next, latency);
  }

  NodeIndex select_next(int h, QueryRef ref, NodeIndex v, const HopStep& step,
                        int& probes) {
    Shard& sh = shard(h);
    Query& q = query(ref);
    const auto& cands = sh.route_scratch.candidates;
    if (!uses_forwarding(proto_)) {
      if (is_ert(proto_)) return cands[sh.rng.index(cands.size())];
      return cands.front();
    }
    core::TopoForwardOptions opts;
    opts.poll_size = params_.poll_size;
    opts.use_memory = params_.use_memory;
    opts.track_overloaded = params_.propagate_overloaded;
    const auto probe = [&](NodeIndex c) {
      core::ProbeResult pr;
      const std::size_t r = real_of(c);
      // Load probes of nodes on other shards read the barrier-published
      // queue snapshot — at most one window (10 ms) stale, the price of
      // running probes without cross-shard synchronization.
      const double qlen = queue_len_seen_by(h, r);
      pr.load = qlen / reals_[r].cap;
      pr.heavy = qlen > params_.gamma_l * reals_[r].cap;
      pr.logical_distance = substrate_->logical_distance_to_key(c, q.key);
      pr.physical_distance = prox_.distance(real_of(v), r);
      pr.unit_load = 1.0 / reals_[r].cap;
      if (sh.meter) {
        // The probe leaves v's egress; the reply leaves the probed node's —
        // which may live on another shard, where the bucket filter skips
        // the charge (the totals still count both frames).
        const auto ql = static_cast<std::uint64_t>(qlen);
        sh.meter->send(wire::Probe{q.id, v, c, ql}, real_of(v));
        sh.meter->send(wire::ProbeReply{q.id, c, v, ql}, r);
      }
      return pr;
    };
    if (dht::RoutingEntry* entry = substrate_->entry(v, step.slot)) {
      const core::ForwardStep dec = core::forward_topology_aware(
          *entry, cands, q.overloaded, opts, probe, sh.rng, sh.fwd_scratch);
      probes = dec.probes;
      for (NodeIndex o : sh.fwd_scratch.newly_overloaded) {
        if (q.overloaded.size() < core::kOverloadedSetCap)
          q.overloaded.insert(o);
      }
      return dec.next;
    }
    return cands.empty() ? dht::kNoNode : cands[sh.rng.index(cands.size())];
  }

  std::size_t hop_cap() const { return 64 + substrate_->num_slots() / 2; }

  // --- lookup settlement --------------------------------------------------

  void finish_lookup(int h, QueryRef ref) {
    Query& q = query(ref);
    if (q.done) return;
    if (params_.data_forwarding && !q.returning) {
      q.returning = true;
      forward_response(h, ref);
      return;
    }
    complete_query(h, ref);
  }

  /// Returns the settled query's slot to its owner pool. A remote handler
  /// cannot touch the owner's free list directly, so it posts the retire
  /// through the mailbox at the lookahead horizon.
  void retire_slot(int h, QueryRef ref) {
    const int owner = ref_shard(ref);
    if (shard(owner).faults) return;  // faulted runs never recycle slots
    if (owner == h) {
      shard(owner).pool.release(ref_slot(ref));
    } else {
      driver_.post(h, owner, sim(h).now() + driver_.lookahead(),
                   [this, owner, slot = ref_slot(ref)] {
                     shard(owner).pool.release(slot);
                   });
    }
  }

  void complete_query(int h, QueryRef ref) {
    Shard& sh = shard(h);
    Query& q = query(ref);
    if (q.done) return;
    q.done = true;
    if (q.fault_hit) ++sh.fstats.recovered;
    if (stracing(h, trace::Category::kQuery))
      strace(h).emit(trace::EventType::kQueryEnd, q.cur, q.id,
                     static_cast<std::int64_t>(q.hops),
                     static_cast<std::int64_t>(q.heavy_met));
    metrics::LookupRecord rec;
    rec.latency = sim(h).now() - q.start_time;
    rec.path_len = q.hops;
    rec.heavy_met = q.heavy_met;
    rec.timeouts = q.timeouts;
    sh.lookups.add(rec);
    ++sh.completed;
    retire_slot(h, ref);
  }

  void drop_lookup(int h, QueryRef ref) {
    Shard& sh = shard(h);
    Query& q = query(ref);
    if (q.done) return;
    q.done = true;
    if (stracing(h, trace::Category::kQuery))
      strace(h).emit(trace::EventType::kQueryDrop, q.cur, q.id,
                     static_cast<std::int64_t>(q.hops), 0, /*cause=*/0);
    ++sh.dropped_overload;
    retire_slot(h, ref);
  }

  void fail_lookup_fault(int h, QueryRef ref) {
    Shard& sh = shard(h);
    Query& q = query(ref);
    if (q.done) return;
    q.done = true;
    if (stracing(h, trace::Category::kQuery))
      strace(h).emit(trace::EventType::kQueryDrop, q.cur, q.id,
                     static_cast<std::int64_t>(q.hops), 0, /*cause=*/1);
    ++sh.dropped_fault;
    retire_slot(h, ref);
  }

  // --- barrier hooks ------------------------------------------------------

  /// pre_global: runs after every window's mailbox drain. Applies the
  /// deferred table repairs in shard order (deterministic: each shard's
  /// list is a pure function of its single-threaded window execution) and
  /// publishes fresh queue-length snapshots for the dirtied nodes.
  void barrier_apply(sim::Time) {
    for (auto& shp : shards_) {
      for (const RepairRec& rec : shp->repairs) {
        substrate_->purge_dead(rec.at, rec.dead);
        if (rec.slot != kNoSlot && substrate_->alive(rec.at))
          substrate_->repair_entry(rec.at, rec.slot);
      }
      shp->repairs.clear();
      for (const std::uint32_t r : shp->dirty)
        snap_queue_[r] = static_cast<std::uint32_t>(
            reals_[r].tracker.queue_length());
      shp->dirty.clear();
    }
  }

  /// post_global: runs after every window barrier and after every global
  /// event batch. Advances the dirty-dedup epoch, restarts arrival chains
  /// after membership changes, and cancels the periodic audit/timeline
  /// chains once the workload has settled (the serial engine cancels them
  /// at settlement; one barrier of slack is covered by the metric bands).
  void barrier_refresh(sim::Time t) {
    ++window_id_;
    if (membership_dirty_) {
      membership_dirty_ = false;
      arrival_fixup(t);
    }
    if (!workload_settled_ && done()) {
      workload_settled_ = true;
      audit_ev_.cancel();
      timeline_ev_.cancel();
    }
  }

  /// Restarts idle arrival chains after membership changed, reassigning the
  /// quota of a shard whose population died out entirely (possible only
  /// under extreme churn; the survival floor makes it rare).
  void arrival_fixup(sim::Time t) {
    for (int s = 0; s < S_; ++s) {
      Shard& sh = shard(s);
      if (sh.issued >= sh.quota || !sh.arrival_idle) continue;
      if (sh.alive_members > 0) {
        restart_arrivals(s, t);
        continue;
      }
      for (int o = 1; o < S_; ++o) {
        Shard& other = shard((s + o) % S_);
        if (other.alive_members == 0) continue;
        other.quota += sh.quota - sh.issued;
        sh.quota = sh.issued;
        if (other.arrival_idle && other.issued < other.quota)
          restart_arrivals((s + o) % S_, t);
        break;
      }
    }
  }

  void restart_arrivals(int s, sim::Time t) {
    Shard& sh = shard(s);
    const double rate = params_.lookup_rate *
                        static_cast<double>(sh.alive_members) /
                        static_cast<double>(alive_total_);
    sh.arrival_idle = false;
    sim(s).schedule_at(t + sh.rng.exponential(rate), [this, s] {
      issue_lookup(s);
      schedule_next_lookup(s);
    });
  }

  // --- global events (coordinator-side, all shards quiescent) -------------

  void schedule_zipf_drift() {
    if (done()) return;
    global().schedule(params_.zipf_drift_period, [this] {
      zipf_->reshuffle(rng_);
      schedule_zipf_drift();
    });
  }

  void schedule_adaptation() {
    if (done()) return;
    global().schedule(params_.adapt_period, [this] {
      adaptation_sweep();
      schedule_adaptation();
    });
  }

  void adaptation_sweep() {
    for (NodeIndex v = 0; v < substrate_->num_slots(); ++v) {
      if (!substrate_->alive(v)) continue;
      const std::size_t r = real_of(v);
      RealNode& rn = reals_[r];
      const auto peak = static_cast<double>(rn.tracker.end_period());
      const auto dec =
          core::decide_adaptation(peak, rn.cap, params_.gamma_l, params_.mu);
      auto& budget = substrate_->budget(v);
      const bool trace_adapt = gtracing(trace::Category::kAdapt) &&
                               dec.action != core::AdaptAction::kNone;
      const std::size_t ind_before =
          trace_adapt ? substrate_->indegree(v) : 0;
      if (dec.action == core::AdaptAction::kShed) {
        const int before = budget.max_indegree();
        budget.lower_bound_by(dec.delta);
        const int shed = substrate_->shed_indegree(v, dec.delta);
        const int target = std::max(1, before - shed);
        budget.raise_bound_by(target - budget.max_indegree());
        rn.grow_backoff = 0;
        rn.grow_wait = 0;
        ++adapt_sheds_;
        if (trace_adapt)
          global_trace_->emit(trace::EventType::kAdaptShed, v, 0,
                              static_cast<std::int64_t>(ind_before),
                              static_cast<std::int64_t>(substrate_->indegree(v)),
                              static_cast<std::uint32_t>(dec.delta));
        if (global_meter_)
          global_meter_->send(
              wire::AdaptShed{v, static_cast<std::uint64_t>(dec.delta)},
              real_of(v));
      } else if (dec.action == core::AdaptAction::kGrow) {
        if (rn.grow_wait > 0) {
          --rn.grow_wait;
          continue;
        }
        budget.raise_bound_by(dec.delta);
        const int gained = substrate_->expand_indegree(
            v, dec.delta,
            std::min<std::size_t>(
                256, 16 + 4 * static_cast<std::size_t>(dec.delta)));
        if (gained < dec.delta) budget.lower_bound_by(dec.delta - gained);
        if (gained == 0) {
          rn.grow_backoff = std::min(512, std::max(8, rn.grow_backoff * 2));
          rn.grow_wait = rn.grow_backoff;
        } else {
          rn.grow_backoff = 0;
          ++adapt_grows_;
        }
        if (trace_adapt)
          global_trace_->emit(trace::EventType::kAdaptGrow, v, 0,
                              static_cast<std::int64_t>(ind_before),
                              static_cast<std::int64_t>(substrate_->indegree(v)),
                              static_cast<std::uint32_t>(dec.delta));
        if (global_meter_)
          global_meter_->send(
              wire::AdaptGrow{v, static_cast<std::uint64_t>(dec.delta)},
              real_of(v));
      }
    }
    observe_degrees();
  }

  void schedule_trace() {
    if (done()) return;
    timeline_ev_ = global().schedule(params_.adapt_period, [this] {
      sample_timeline();
      schedule_trace();
    });
  }

  void sample_timeline() {
    ExperimentResult::PeriodSample s;
    s.time = global().now();
    Percentiles g;
    for (std::size_t r = 0; r < reals_.size(); ++r) {
      if (!reals_[r].alive) continue;
      const double gr = congestion_live(r);
      g.add(gr);
      if (is_heavy_live(r)) ++s.heavy_nodes;
    }
    if (!g.empty()) {
      s.p99_congestion = g.percentile(99);
      s.mean_congestion = g.mean();
    }
    std::size_t indeg = 0, alive_nodes = 0;
    for (NodeIndex v = 0; v < substrate_->num_slots(); ++v) {
      if (!substrate_->alive(v)) continue;
      indeg += substrate_->indegree(v);
      ++alive_nodes;
    }
    s.mean_indegree = alive_nodes ? static_cast<double>(indeg) /
                                        static_cast<double>(alive_nodes)
                                  : 0.0;
    std::size_t issued = 0, settled = 0;
    for (const auto& sh : shards_) {
      issued += sh->issued;
      settled += sh->completed + sh->dropped_overload + sh->dropped_fault;
    }
    s.in_flight = issued - settled;
    timeline_.push_back(s);
  }

  void observe_degrees() {
    for (std::size_t r = 0; r < reals_.size(); ++r) {
      if (!reals_[r].alive) continue;
      std::size_t in = 0, out = 0;
      const NodeIndex v = overlay_of_real_[r];
      if (v != dht::kNoNode && substrate_->alive(v)) {
        in = substrate_->indegree(v);
        out = substrate_->outdegree(v);
      }
      degrees_->observe(r, in, out);
    }
  }

  // --- churn + crash waves (global events) --------------------------------

  void schedule_churn() {
    const double rate = 1.0 / params_.churn_interarrival;
    if (done()) return;
    global().schedule(rng_.exponential(rate), [this] {
      churn_join();
      schedule_churn();
    });
    global().schedule(rng_.exponential(rate), [this] { churn_depart(); });
  }

  void churn_join() {
    if (done()) return;
    join_real(rng_);
  }

  void join_real(Rng& rng) {
    const double raw = rng.bounded_pareto(
        params_.pareto_shape, params_.capacity_lo, params_.capacity_hi);
    const std::size_t r = caps_.add_node(raw);
    prox_.add_node(rng);
    RealNode rn;
    rn.cap = caps_.normalized(r);
    reals_.push_back(std::move(rn));
    const int s = static_cast<int>(mix64(r) % static_cast<std::uint64_t>(S_));
    shard_of_real_.push_back(static_cast<std::uint32_t>(s));
    snap_queue_.push_back(0);
    dirty_epoch_.push_back(0);
    // Coordinator-quiescent: safe to grow the shared bucket vector here,
    // and it must happen here so shard-side sends never do.
    if (links_) links_->ensure_size(reals_.size());
    membership_dirty_ = true;
    std::int64_t overlay_slot = -1;
    if (substrate_->id_space_full()) {
      reals_[r].alive = false;
      overlay_of_real_.push_back(dht::kNoNode);
      if (gtracing(trace::Category::kChurn))
        global_trace_->emit(trace::EventType::kChurnJoin, r, 0, -1);
      return;
    }
    const NodeIndex v = substrate_->add_node(
        rng, caps_.normalized(r), node_max_indegree(r, rng), params_.beta);
    overlay_slot = static_cast<std::int64_t>(v);
    overlay_of_real_.push_back(v);
    real_of_overlay_.push_back(r);
    substrate_->build_table(v, rng);
    if (is_ert(proto_)) {
      const auto& budget = substrate_->budget(v);
      const int want = budget.initial_target() - budget.indegree();
      if (want > 0) substrate_->expand_indegree(v, want, 256);
    }
    shard(s).members.push_back(v);
    ++shard(s).alive_members;
    ++alive_total_;
    if (gtracing(trace::Category::kChurn))
      global_trace_->emit(trace::EventType::kChurnJoin, r, 0, overlay_slot);
    if (global_meter_)
      global_meter_->send(
          wire::Join{r, static_cast<std::uint64_t>(overlay_slot)}, r);
    degrees_->ensure_size(reals_.size());
  }

  void churn_depart() {
    if (done()) return;
    if (alive_reals() < std::max<std::size_t>(16, params_.num_nodes / 4))
      return;
    for (int tries = 0; tries < 64; ++tries) {
      const std::size_t r = rng_.index(reals_.size());
      if (!reals_[r].alive) continue;
      depart_real(r);
      return;
    }
  }

  std::size_t alive_reals() const { return alive_total_; }

  void depart_real(std::size_t r, bool crash = false) {
    RealNode& rn = reals_[r];
    rn.alive = false;
    --shard(shard_of_real(r)).alive_members;
    --alive_total_;
    membership_dirty_ = true;
    if (gtracing(trace::Category::kChurn))
      global_trace_->emit(crash ? trace::EventType::kCrash
                                : trace::EventType::kChurnDepart,
                          r);
    // A crash is silent on the wire; a graceful departure announces itself.
    if (global_meter_ && !crash) global_meter_->send(wire::Leave{r}, r);
    if (overlay_of_real_[r] != dht::kNoNode)
      substrate_->fail(overlay_of_real_[r]);
    relocate_queries_from(r, crash);
  }

  void relocate_queries_from(std::size_t r, bool crash) {
    RealNode& rn = reals_[r];
    rn.service_ev.cancel();
    std::vector<QueryRef> displaced;
    displaced.reserve(rn.waiting.size() + rn.serving.size());
    rn.waiting.for_each([&](QueryRef ref) { displaced.push_back(ref); });
    for (QueryRef ref : rn.serving) displaced.push_back(ref);
    rn.waiting.clear();
    rn.serving.clear();
    rn.in_service = 0;
    for (std::size_t i = 0; i < displaced.size(); ++i) rn.tracker.on_dequeue();
    snap_queue_[r] = 0;
    const double tnow = global().now();
    for (QueryRef ref : displaced) {
      Query& q = query(ref);
      if (q.done) continue;
      ++q.timeouts;
      ++q.hops;
      if (gtracing(trace::Category::kHop))
        global_trace_->emit(trace::EventType::kQueryTimeout, q.cur, q.id, 0, 0,
                            /*site=*/2);
      if (crash) {
        q.fault_hit = true;
        ++gstats_.timed_out;
      }
      const NodeIndex sub = substrate_->live_successor(q.cur);
      if (global_meter_) {
        // Handoff of a displaced query: billed on the coordinator meter
        // (relocation is a global event); untracked in the gauge because
        // the arrival-side decrement belongs to the receiving shard.
        const wire::Forward m{q.id,        q.key,
                              q.cur,       sub,
                              q.hops,      q.returning,
                              static_cast<std::uint32_t>(q.overloaded.size()),
                              q.overloaded.entries()};
        global_meter_->send(m, real_of(q.cur));
      }
      const int t = shard_of(sub);
      sim(t).schedule_at(tnow + params_.timeout_penalty,
                         [this, t, ref, sub] { arrive(t, ref, sub); });
    }
  }

  void schedule_crash_waves() {
    for (const CrashWave& wave : global_faults_->plan().crash_waves) {
      global().schedule(wave.time,
                        [this, count = wave.count] { crash_wave(count); });
    }
  }

  void crash_wave(std::size_t count) {
    if (done()) return;
    Rng& rng = global_faults_->crash_rng();
    for (std::size_t k = 0; k < count; ++k) {
      if (alive_reals() <= std::max<std::size_t>(16, params_.num_nodes / 4))
        return;
      for (int tries = 0; tries < 256; ++tries) {
        const std::size_t r = rng.index(reals_.size());
        if (!reals_[r].alive) continue;
        ++gstats_.crashed_nodes;
        depart_real(r, /*crash=*/true);
        break;
      }
    }
  }

  // --- invariant auditing (global events) ---------------------------------

  void schedule_audit() {
    if (done()) return;
    const double period = auditor_->options().period > 0.0
                              ? auditor_->options().period
                              : params_.adapt_period;
    audit_ev_ = global().schedule(period, [this] {
      audit_sweep();
      schedule_audit();
    });
  }

  void audit_sweep() {
    auditor_->begin_sweep(global().now());
    const auto check_queue = [&](std::size_t r) {
      const RealNode& rn = reals_[r];
      if (!rn.alive) return;
      auditor_->expect_eq(
          "queue.consistency", static_cast<NodeIndex>(r),
          static_cast<double>(rn.tracker.queue_length()),
          static_cast<double>(rn.waiting.size() + rn.in_service),
          "LoadTracker queue vs waiting + in-service");
    };
    if (const auto* sample = auditor_->sample_population(reals_.size())) {
      for (const std::uint32_t r : *sample) check_queue(r);
    } else {
      for (std::size_t r = 0; r < reals_.size(); ++r) check_queue(r);
    }
    const bool bounds = proto_ == Protocol::kNS || is_ert(proto_);
    audit_substrate(*auditor_, *substrate_, bounds, uses_adaptation(proto_),
                    params_.alpha(), params_.gamma_c,
                    [this](NodeIndex v) { return reals_[real_of(v)].cap; });
  }

  // --- results ------------------------------------------------------------

  ExperimentResult finalize() {
    observe_degrees();
    ExperimentResult res;
    Percentiles peak;
    std::size_t min_cap_node = 0;
    for (std::size_t r = 0; r < reals_.size(); ++r) {
      peak.add(reals_[r].peak_congestion);
      if (caps_.raw(r) < caps_.raw(min_cap_node)) min_cap_node = r;
    }
    res.p99_max_congestion = peak.percentile(99);
    res.mean_max_congestion = peak.mean();
    res.min_cap_node_congestion = reals_[min_cap_node].peak_congestion;

    std::vector<double> load(reals_.size()), cap(reals_.size());
    for (std::size_t r = 0; r < reals_.size(); ++r) {
      load[r] = static_cast<double>(reals_[r].tracker.cumulative_handled());
      cap[r] = caps_.raw(r);
    }
    Percentiles shares;
    for (double s : metrics::compute_shares(load, cap)) shares.add(s);
    res.p99_share = shares.percentile(99);

    // Handler-side per-shard collectors, merged in shard order so the
    // result is a pure function of (seed, sim_threads).
    metrics::LookupStats lookups;
    metrics::FaultCounters fstats = gstats_;
    for (const auto& sh : shards_) {
      lookups.merge(sh->lookups);
      fstats.merge(sh->fstats);
      res.completed_lookups += sh->completed;
      res.dropped_overload += sh->dropped_overload;
      res.dropped_fault += sh->dropped_fault;
    }
    res.dropped_lookups = res.dropped_overload + res.dropped_fault;
    res.heavy_encounters = lookups.total_heavy_encounters();
    res.avg_path_length = lookups.avg_path_length();
    res.lookup_time = lookups.latency_summary();
    res.avg_timeouts = lookups.avg_timeouts();
    res.max_indegree = degrees_->indegree_summary();
    res.max_outdegree = degrees_->outdegree_summary();
    res.timeline = std::move(timeline_);
    res.sim_duration = driver_.now_max();
    res.final_nodes = alive_reals();
    res.faults = fstats;
    res.adapt_sheds = adapt_sheds_;
    res.adapt_grows = adapt_grows_;
    if (auditor_) {
      res.audit_sweeps = auditor_->sweeps();
      res.audit_violations = auditor_->total_violations();
      res.audit_records = auditor_->records();
    }
    if (global_meter_) {
      // Coordinator totals first, then shards in shard order — a pure
      // function of (seed, sim_threads), like the trace merge below. The
      // concatenated capture stream is likewise coordinator-first; for
      // sim_threads > 1 its interleaving differs from the serial engine's
      // (golden wire streams pin scenario runs, which fall back to the
      // serial engine and are therefore --sim-threads invariant).
      res.bytes = global_meter_->totals();
      for (const auto& sh : shards_) res.bytes.merge(sh->meter->totals());
      if (global_meter_->capturing()) {
        res.wire_capture = global_meter_->capture();
        for (const auto& sh : shards_) res.wire_capture += sh->meter->capture();
      }
    }
    if (global_trace_) {
      if (global_trace_->wants(trace::Category::kRun))
        global_trace_->emit(trace::EventType::kRunEnd, 0, params_.seed,
                            static_cast<std::int64_t>(res.completed_lookups),
                            static_cast<std::int64_t>(res.dropped_lookups));
      // Coordinator records first, then shards in shard order.
      res.trace_records = global_trace_->snapshot();
      res.trace_emitted = global_trace_->emitted();
      res.trace_dropped = global_trace_->dropped();
      for (const auto& sh : shards_) {
        if (!sh->trace) continue;
        const auto recs = sh->trace->snapshot();
        res.trace_records.insert(res.trace_records.end(), recs.begin(),
                                 recs.end());
        res.trace_emitted += sh->trace->emitted();
        res.trace_dropped += sh->trace->dropped();
      }
    }
    return res;
  }

  SimParams params_;
  Protocol proto_;
  SubstrateKind kind_;
  Rng rng_;  ///< construction + churn stream (the serial workload stream).
  int S_;
  sim::ShardedSimulator driver_;
  core::CapacityModel caps_;
  net::ProximityMap prox_;
  std::unique_ptr<SubstrateOps> substrate_;
  std::unique_ptr<workload::ZipfKeys> zipf_;
  std::vector<RealNode> reals_;
  std::vector<NodeIndex> overlay_of_real_;
  std::vector<std::size_t> real_of_overlay_;
  std::vector<std::uint32_t> shard_of_real_;
  /// Barrier-published queue lengths (remote load probes read these).
  std::vector<std::uint32_t> snap_queue_;
  /// Last window id that queued real r into its shard's dirty list.
  std::vector<std::uint32_t> dirty_epoch_;
  std::uint32_t window_id_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t alive_total_ = 0;
  bool membership_dirty_ = false;
  bool workload_settled_ = false;
  std::vector<ExperimentResult::PeriodSample> timeline_;
  std::unique_ptr<metrics::DegreeTracker> degrees_;
  std::unique_ptr<FaultInjector> global_faults_;  ///< crash stream only.
  metrics::FaultCounters gstats_;  ///< crash-side counters (global events).
  std::size_t adapt_sheds_ = 0;
  std::size_t adapt_grows_ = 0;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::unique_ptr<trace::TraceSink> global_trace_;
  /// Shared egress buckets (one per real node) + the coordinator-side
  /// meter; shard meters live in Shard and borrow links_.
  std::unique_ptr<net::LinkModel> links_;
  std::unique_ptr<wire::ByteMeter> global_meter_;
  sim::EventHandle audit_ev_;
  sim::EventHandle timeline_ev_;
};

}  // namespace

ExperimentResult run_experiment_sharded(const SimParams& params,
                                        Protocol protocol,
                                        SubstrateKind substrate,
                                        const ExperimentOptions& options) {
  assert(params.sim_threads > 1 &&
         pdes_supported(params, protocol, substrate, options));
  ShardedEngine engine(params, protocol, substrate, options);
  return engine.run();
}

}  // namespace ert::harness
