// Sharded parallel experiment engine (docs/PDES.md).
//
// run_experiment dispatches here when params.sim_threads > 1 and
// pdes_supported() accepts the workload. The engine partitions the physical
// nodes into sim_threads shards (hash of the real-node index), runs each
// shard's queueing and routing on its own pooled event queue under the
// ShardedSimulator's conservative windowing (lookahead = the latency floor,
// net::kDefaultBaseLatency), and executes everything that must observe
// cross-shard state — churn, crash waves, adaptation sweeps, invariant
// audits, timeline samples — as coordinator-side global events with every
// shard quiescent.
//
// Determinism: for a fixed (seed, sim_threads) the run is bit-identical
// regardless of how many OS threads actually execute the windows. Results
// are NOT bit-identical to the serial engine (per-shard Rng streams replace
// the single workload stream); equivalence to it is statistical, gated by
// --model-check and the invariant auditor (tests/pdes_equivalence_test.cpp).
#pragma once

#include "common/config.h"
#include "harness/experiment.h"
#include "harness/protocol.h"
#include "harness/substrate.h"

namespace ert::harness {

/// True when the sharded engine supports this workload. Unsupported (serial
/// fallback): virtual-server protocols, impulse workloads, non-inert
/// scenarios, message duplication (breaks the single-handler ownership
/// model), and networks too small to shard (n < 8 * sim_threads).
bool pdes_supported(const SimParams& params, Protocol protocol,
                    SubstrateKind substrate, const ExperimentOptions& options);

/// Runs one experiment on the sharded engine. Call through run_experiment —
/// it performs the pdes_supported gate and the sim_threads dispatch.
ExperimentResult run_experiment_sharded(const SimParams& params,
                                        Protocol protocol,
                                        SubstrateKind substrate,
                                        const ExperimentOptions& options);

}  // namespace ert::harness
