// Queueing and per-lookup state shared by the two experiment engines: the
// serial single-queue Engine (experiment.cpp) and the sharded conservative
// PDES engine (pdes_engine.cpp). The structures are templatized on the
// query-slot type: the serial engine indexes its recycled query vector with
// 32-bit slots (the historical layout, kept bit-identical), while the
// sharded engine threads 64-bit packed QueryRefs (owner shard << 32 | slot)
// through the same queues.
#pragma once

#include <cstdint>
#include <vector>

#include "dht/types.h"
#include "ert/forwarding.h"
#include "ert/load_tracker.h"
#include "harness/substrate.h"
#include "sim/simulator.h"

namespace ert::harness::detail {

/// A lookup in flight. Lives in a recycled slot of the engine's queries_
/// vector (fault-free runs), so the storage scales with peak concurrency,
/// not total lookups issued; `id` is the lookup's stable monotonic identity
/// for traces and the substrate's per-query context.
struct Query {
  std::uint64_t id = 0;   ///< monotonic issue number, never reused.
  std::uint64_t key = 0;
  dht::NodeIndex cur = dht::kNoNode;  ///< overlay node currently holding it.
  double start_time = 0.0;
  double penalty = 0.0;  ///< timeout penalty to fold into the next hop.
  std::size_t hops = 0;
  std::size_t heavy_met = 0;
  std::size_t timeouts = 0;
  core::OverloadedSet overloaded;  ///< the A set of Algorithm 4.
  /// Substrate routing context carried with the query (sharded engine; the
  /// serial engine uses the adapter's qid-keyed context instead).
  SubstrateOps::RouteCtxBlob rctx;
  bool done = false;
  bool returning = false;  ///< data-forwarding mode: response leg.
  bool fault_hit = false;  ///< saw an injected fault (drop/crash) en route.
  /// Encoded size of the in-flight tracked frame carrying this query
  /// (bytes accounting only; 0 whenever the query is not on the wire).
  std::uint32_t wire_bytes = 0;
  std::vector<dht::NodeIndex> path;  ///< recorded when data forwarding is on.

  /// Readies a recycled slot for a fresh lookup: scalar state zeroed,
  /// the overloaded set's spill and the path vector keep their capacity.
  void reset(std::uint64_t new_id) {
    id = new_id;
    key = 0;
    cur = dht::kNoNode;
    start_time = 0.0;
    penalty = 0.0;
    hops = 0;
    heavy_met = 0;
    timeouts = 0;
    overloaded.clear();
    rctx = SubstrateOps::RouteCtxBlob{};
    done = false;
    returning = false;
    fault_hit = false;
    wire_bytes = 0;
    path.clear();
  }
};

/// FIFO of waiting query slots: a ring over a lazily grown power-of-two
/// vector. An idle node costs 32 bytes here where libstdc++'s std::deque
/// eagerly allocates a ~500-byte chunk map per instance — at 2^20 nodes
/// that difference alone is half a gigabyte.
template <typename Slot>
class MiniQueueT {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  void push_back(Slot v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = v;
    ++size_;
  }
  Slot front() const { return buf_[head_]; }
  void pop_front() {
    head_ = (head_ + 1) & (static_cast<std::uint32_t>(buf_.size()) - 1);
    --size_;
  }
  void clear() {
    head_ = 0;
    size_ = 0;
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {  // FIFO order
    for (std::uint32_t i = 0; i < size_; ++i)
      fn(buf_[(head_ + i) & (buf_.size() - 1)]);
  }

 private:
  void grow() {
    std::vector<Slot> bigger(buf_.empty() ? 4 : buf_.size() * 2);
    for (std::uint32_t i = 0; i < size_; ++i)
      bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<Slot> buf_;  ///< capacity always a power of two.
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
};

/// Per physical node queueing and accounting state.
template <typename Slot>
struct RealNodeT {
  /// Normalized capacity c-hat: queries the node can handle per unit
  /// period (mean 1 across the network). Congestion g = queue / c-hat, so
  /// "ideally g stays around 1" (Sec. 5) holds when each node has about
  /// its fair backlog. The indegree bound floor(0.5 + alpha*c-hat) is a
  /// separate quantity (see ert::core::max_indegree).
  double cap = 1.0;
  bool alive = true;
  core::LoadTracker tracker;
  std::size_t in_service = 0;
  MiniQueueT<Slot> waiting;        ///< queued query slots.
  std::vector<Slot> serving;       ///< query slots in service.
  double peak_congestion = 0.0;
  int grow_backoff = 0;  ///< expansion backoff after fruitless probes.
  int grow_wait = 0;
  /// Pending completion of the single FIFO server (cancelled when the node
  /// departs or crashes with a query in service). Node-level rather than
  /// per-query: under message duplication one query id can be in service at
  /// two nodes at once, and each node must only ever cancel its own event.
  sim::EventHandle service_ev;
};

/// The serial engine's historical instantiations.
using MiniQueue = MiniQueueT<std::uint32_t>;
using RealNode = RealNodeT<std::uint32_t>;

}  // namespace ert::harness::detail
