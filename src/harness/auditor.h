// Continuous invariant auditing for the experiment engine.
//
// The paper's central claims are *provable bounds*: Theorem 3.1 bounds the
// indegree a node accepts at assignment time by its (estimated) capacity,
// and Theorem 3.2 keeps the adapted indegree inside a capacity window.
// This auditor turns those theorems — plus the structural invariants every
// substrate must maintain — into executable checks that run on the
// simulator clock, every adaptation period, over all live nodes:
//
//   indegree.budget-sync   backward-finger count == budget's indegree
//   indegree.bound         elastic inlinks <= d_inf + forced accepts:
//                          build/repair may bypass the budget to keep the
//                          network routable (link with
//                          respect_budget=false), and every such accept is
//                          counted, so any excess over d_inf must be
//                          backed by one — see docs/FAULTS.md
//   indegree.bound-floor   d_inf >= 1 (Sec. 3.3: the bound never drops
//                          below one, keys must stay reachable)
//   theorem3.1             static-bound protocols (ERT/F, NS): d_inf <=
//                          floor(0.5 + alpha * gamma_c * c-hat)
//   theorem3.2             adaptive protocols (ERT/A, ERT/AF): d_inf <=
//                          d + floor(0.5 + alpha * gamma_c * c-hat); the
//                          bound-over-degree gap never exceeds the initial
//                          assignment's, so growth is always backed by
//                          real inlinks (the executable form of the
//                          theorem's capacity window)
//   links.symmetry         every outlink candidate is mirrored by a
//                          backward finger at its target and vice versa
//   queue.consistency      LoadTracker queue length == waiting + in
//                          service at the engine's queues
//
// Violations are recorded as structured records (first-violation time,
// node, bound, observed value) that `ertsim --audit` prints and tests
// consume; the sweep never mutates the network, so enabling the auditor
// leaves results bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dht/types.h"

namespace ert::harness {

class SubstrateOps;

struct AuditorOptions {
  bool enabled = false;
  /// Sweep period in seconds; 0 means "use the adaptation period T".
  double period = 0.0;
  /// Cap on stored violation records (counters keep counting past it).
  std::size_t max_records = 256;
  /// Inlinks over d_inf tolerated before indegree.bound fires. Emergency
  /// repairs (link with respect_budget=false) may overshoot the budget to
  /// keep a partition-free table; 0 makes the check strict.
  std::size_t indegree_slack = 0;
  /// 0 audits every live node each sweep. k > 0 audits a fresh seeded
  /// k-subset per sweep, making the audit cost O(k) instead of O(n) — the
  /// only way to keep continuous auditing on at 2^17+ nodes. The subset is
  /// drawn from the auditor's own Rng stream, never the simulation's, so
  /// results stay bit-identical at any sample size.
  std::size_t sample = 0;
};

/// One invariant violation, first observed at `time`.
struct InvariantViolation {
  double time = 0.0;
  std::string invariant;  ///< e.g. "theorem3.2", "links.symmetry".
  dht::NodeIndex node = dht::kNoNode;  ///< overlay node (or real id).
  double observed = 0.0;
  double bound = 0.0;
  std::string detail;
};

std::string to_string(const InvariantViolation& v);

class InvariantAuditor {
 public:
  /// `seed` feeds the auditor's private sampling stream (see
  /// AuditorOptions::sample); callers domain-separate it from the
  /// simulation seed. Unsampled audits never draw from it.
  explicit InvariantAuditor(AuditorOptions opts, std::uint64_t seed = 0)
      : opts_(opts), rng_(seed) {}

  const AuditorOptions& options() const { return opts_; }

  /// Draws this sweep's audit subset from [0, population). Returns nullptr
  /// when sampling is off or the whole population fits within the sample
  /// size (callers then audit everything); otherwise a sorted list of
  /// `options().sample` distinct indices. Each call consumes auditor Rng
  /// draws, so callers within one sweep get independent subsets in a
  /// deterministic sequence.
  const std::vector<std::uint32_t>* sample_population(std::size_t population);

  void begin_sweep(double time) {
    now_ = time;
    ++sweeps_;
  }

  /// Records a violation (subject to the record cap).
  void report(const char* invariant, dht::NodeIndex node, double observed,
              double bound, std::string detail = {});

  /// observed <= bound, else a violation.
  void expect_le(const char* invariant, dht::NodeIndex node, double observed,
                 double bound, const char* what = "");

  /// observed == bound, else a violation.
  void expect_eq(const char* invariant, dht::NodeIndex node, double observed,
                 double bound, const char* what = "");

  std::size_t sweeps() const { return sweeps_; }
  std::size_t total_violations() const { return total_; }
  bool clean() const { return total_ == 0; }
  const std::vector<InvariantViolation>& records() const { return records_; }

 private:
  AuditorOptions opts_;
  Rng rng_;  ///< sampling-only stream; the simulation never shares it.
  double now_ = 0.0;
  std::size_t sweeps_ = 0;
  std::size_t total_ = 0;
  std::vector<InvariantViolation> records_;
  std::vector<std::uint32_t> perm_scratch_;  ///< partial Fisher-Yates pool.
  std::vector<std::uint32_t> sample_out_;    ///< the sweep's chosen subset.
};

/// Sweeps every live overlay node of `sub`, checking budget consistency,
/// link symmetry, and the theorem bound windows. `capacity_of` maps an
/// overlay node to the normalized capacity of its physical host;
/// `bounds_enforced` / `adaptive` select which theorem applies (Base/VS
/// enforce no bound, ERT/F and NS keep the initial one, ERT/A and ERT/AF
/// adapt it). Also runs the overlay's own check_invariants() (assert-based,
/// active in Debug/sanitizer builds).
void audit_substrate(InvariantAuditor& auditor, SubstrateOps& sub,
                     bool bounds_enforced, bool adaptive, double alpha,
                     double gamma_c,
                     const std::function<double(dht::NodeIndex)>& capacity_of);

}  // namespace ert::harness
