#include "harness/model_check.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "harness/experiment.h"
#include "kademlia/overlay.h"

namespace ert::harness {
namespace {

/// P(owner among the k bucket contacts | msb state m), where M ~ Bin(N, p)
/// models the non-owner occupants of the radius-R ball around the key.
/// With M + 1 total occupants the bucket holds everyone when M <= k - 1;
/// otherwise it is a uniform k-subset, so the owner is present with
/// probability k / (M + 1).
double arrival_probability(std::size_t N, double p, std::size_t k) {
  if (N == 0 || p <= 0.0) return 1.0;
  assert(p < 1.0);
  // Iterate the Bin(N, p) pmf until the tail is negligible.
  double pmf = std::exp(static_cast<double>(N) * std::log1p(-p));
  const double ratio = p / (1.0 - p);
  double pa = 0.0;
  double cum = 0.0;
  for (std::size_t M = 0; M <= N; ++M) {
    const double w =
        M < k ? 1.0
              : static_cast<double>(k) / static_cast<double>(M + 1);
    pa += pmf * w;
    cum += pmf;
    if (cum > 1.0 - 1e-13) break;
    pmf *= (static_cast<double>(N - M) / static_cast<double>(M + 1)) * ratio;
  }
  return std::min(pa, 1.0);
}

std::vector<double> cdf_of(const std::vector<double>& pmf) {
  std::vector<double> cdf(pmf.size(), 0.0);
  double c = 0.0;
  for (std::size_t h = 0; h < pmf.size(); ++h) {
    c += pmf[h];
    cdf[h] = std::min(c, 1.0);
  }
  return cdf;
}

double mean_of(const std::vector<double>& pmf) {
  double m = 0.0;
  for (std::size_t h = 0; h < pmf.size(); ++h)
    m += static_cast<double>(h) * pmf[h];
  return m;
}

void append_json_array(std::string& out, const std::vector<double>& v) {
  out += '[';
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof buf, "%.6g", v[i]);
    out += buf;
  }
  out += ']';
}

}  // namespace

std::vector<double> kademlia_hop_pmf(std::size_t n, int bits, std::size_t k) {
  assert(n >= 2 && bits > 0 && k >= 1);
  const int B = bits;
  const double space = std::ldexp(1.0, B);
  const std::size_t H = static_cast<std::size_t>(B) + 2;

  // State m = msb(cur ^ key). The bucket at m covers the radius-2^m ball
  // around the key.
  std::vector<double> pa(B, 1.0);
  std::vector<std::vector<double>> q(
      B, std::vector<double>(B, 0.0));  // q[m][j]: miss -> state j
  for (int m = 0; m < B; ++m) {
    const double R = std::ldexp(1.0, m);
    pa[m] = arrival_probability(n - 2, R / space, k);
    if (R < 2.0) continue;  // no non-owner position closer than the owner
    // On a miss the hop lands on the minimum of k uniform distinct
    // distances from {1 .. R-1}; S(y) = P(min >= y).
    const auto surv = [&](double y) {
      const int kk = static_cast<int>(std::min<double>(
          static_cast<double>(k), R - 1.0));
      double s = 1.0;
      for (int i = 0; i < kk; ++i) {
        const double den = R - 1.0 - static_cast<double>(i);
        if (den <= 0.0) return 0.0;
        s *= std::max(0.0, R - y - static_cast<double>(i)) / den;
      }
      return s;
    };
    for (int j = 0; j < m; ++j)
      q[m][j] = std::max(
          0.0, surv(std::ldexp(1.0, j)) - surv(std::ldexp(1.0, j + 1)));
  }

  // g[m][h] = P(exactly h further hops | state m).
  std::vector<std::vector<double>> g(B, std::vector<double>(H, 0.0));
  for (std::size_t h = 1; h < H; ++h)
    for (int m = 0; m < B; ++m) {
      double miss = 0.0;
      for (int j = 0; j < m; ++j) miss += q[m][j] * g[j][h - 1];
      g[m][h] = (h == 1 ? pa[m] : 0.0) + (1.0 - pa[m]) * miss;
    }

  // Source and key are independent and uniform: msb(src ^ key) = m with
  // probability 2^m / (2^B - 1) given src != owner; P(H = 0) = 1/n.
  std::vector<double> pmf(H, 0.0);
  pmf[0] = 1.0 / static_cast<double>(n);
  const double norm = space - 1.0;
  for (int m = 0; m < B; ++m) {
    const double pi0 = std::ldexp(1.0, m) / norm;
    for (std::size_t h = 1; h < H; ++h)
      pmf[h] += (1.0 - pmf[0]) * pi0 * g[m][h];
  }
  return pmf;
}

std::vector<double> chord_hop_pmf(std::size_t n) {
  assert(n >= 2);
  const int b = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(n))));
  // Binomial(b, 1/2): each of the b distance bits is set with probability
  // 1/2 and costs one finger hop.
  std::vector<double> pmf(static_cast<std::size_t>(b) + 1, 0.0);
  double c = std::ldexp(1.0, -b);  // C(b, 0) / 2^b
  for (int h = 0; h <= b; ++h) {
    pmf[static_cast<std::size_t>(h)] = c;
    c *= static_cast<double>(b - h) / static_cast<double>(h + 1);
  }
  return pmf;
}

double default_model_tolerance(SubstrateKind kind) {
  switch (kind) {
    case SubstrateKind::kKademlia:
      // Measured sup deviation: 0.042 at n = 2048, 0.037 at n = 2^14
      // (20k lookups; docs/SUBSTRATES.md); the slack covers the model's
      // mean-field approximations (owner-in-ball conditioning, uniform
      // k-subsets).
      return 0.08;
    case SubstrateKind::kChord:
      // Strict-Chord binomial vs the loose-finger overlay: real paths are
      // systematically shorter (measured sup deviation 0.21 at n = 2048),
      // so this is a sanity envelope, not a tight fit.
      return 0.25;
    case SubstrateKind::kD1ht:
      return 0.02;
    default:
      return 0.0;
  }
}

ModelCheckResult model_check(SubstrateKind kind, const SimParams& params) {
  assert(kind == SubstrateKind::kChord || kind == SubstrateKind::kKademlia ||
         kind == SubstrateKind::kD1ht);
  assert(params.churn_interarrival <= 0.0 &&
         "the analytical models assume a churn-free network");

  ExperimentOptions opt;
  opt.trace.enabled = true;
  opt.trace.categories = static_cast<std::uint32_t>(trace::Category::kQuery) |
                         static_cast<std::uint32_t>(trace::Category::kHop);
  // Size the ring so it never wraps: begin + end + one record per hop,
  // with generous headroom for long-tail walks.
  opt.trace.capacity = params.num_lookups * 48 + 4096;
  const ExperimentResult r =
      run_experiment(params, Protocol::kBase, kind, opt);

  ModelCheckResult out;
  out.kind = kind;
  out.nodes = params.num_nodes;
  out.tolerance = default_model_tolerance(kind);

  std::vector<std::size_t> hist;
  std::vector<std::size_t> load(params.num_nodes, 0);
  for (const trace::Record& rec : r.trace_records) {
    if (rec.type == trace::EventType::kQueryEnd) {
      const auto h = static_cast<std::size_t>(rec.a);
      if (hist.size() <= h) hist.resize(h + 1, 0);
      ++hist[h];
      ++out.lookups;
    } else if (rec.type == trace::EventType::kQueryHop) {
      const auto to = static_cast<std::size_t>(rec.a);
      if (load.size() <= to) load.resize(to + 1, 0);
      ++load[to];
      ++out.load_total;
    }
  }

  std::vector<double> emp_pmf(hist.size(), 0.0);
  std::size_t total_hops = 0;
  for (std::size_t h = 0; h < hist.size(); ++h) {
    emp_pmf[h] =
        static_cast<double>(hist[h]) / static_cast<double>(out.lookups);
    total_hops += h * hist[h];
  }

  std::vector<double> pred_pmf;
  switch (kind) {
    case SubstrateKind::kKademlia: {
      const kademlia::KademliaOptions defaults;
      pred_pmf = kademlia_hop_pmf(params.num_nodes,
                                  substrate_ring_bits(params.num_nodes),
                                  defaults.bucket_size);
      break;
    }
    case SubstrateKind::kChord:
      pred_pmf = chord_hop_pmf(params.num_nodes);
      break;
    default:  // kD1ht
      pred_pmf = {1.0 / static_cast<double>(params.num_nodes),
                  1.0 - 1.0 / static_cast<double>(params.num_nodes)};
      break;
  }

  out.empirical_cdf = cdf_of(emp_pmf);
  out.predicted_cdf = cdf_of(pred_pmf);
  const std::size_t len =
      std::max(out.empirical_cdf.size(), out.predicted_cdf.size());
  out.empirical_cdf.resize(len, 1.0);
  out.predicted_cdf.resize(len, 1.0);
  for (std::size_t h = 0; h < len; ++h)
    out.sup_deviation =
        std::max(out.sup_deviation,
                 std::abs(out.empirical_cdf[h] - out.predicted_cdf[h]));

  out.mean_hops_empirical =
      static_cast<double>(total_hops) / static_cast<double>(out.lookups);
  out.mean_hops_predicted = mean_of(pred_pmf);
  out.one_hop_fraction = len > 1 ? out.empirical_cdf[1] : 1.0;

  double sum = 0.0, sq = 0.0;
  for (const std::size_t l : load) {
    const auto d = static_cast<double>(l);
    sum += d;
    sq += d * d;
    out.load_max = std::max(out.load_max, d);
  }
  const auto nn = static_cast<double>(load.size());
  out.load_mean = sum / nn;
  const double var = sq / nn - out.load_mean * out.load_mean;
  out.load_cv =
      out.load_mean > 0.0 ? std::sqrt(std::max(0.0, var)) / out.load_mean : 0.0;

  // A clean run is a precondition for the comparison, not part of it.
  const bool clean = r.dropped_lookups == 0 && r.trace_dropped == 0 &&
                     out.lookups == params.num_lookups &&
                     out.load_total == total_hops;
  out.pass = clean && out.sup_deviation <= out.tolerance &&
             (kind != SubstrateKind::kD1ht || out.one_hop_fraction >= 0.99);
  return out;
}

std::string model_check_json(const ModelCheckResult& r) {
  std::string out = "{";
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "\"substrate\":\"%s\",\"nodes\":%zu,\"lookups\":%zu,"
      "\"sup_deviation\":%.6g,\"tolerance\":%.6g,",
      to_string(r.kind), r.nodes, r.lookups, r.sup_deviation, r.tolerance);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"mean_hops_empirical\":%.6g,\"mean_hops_predicted\":%.6g,"
      "\"one_hop_fraction\":%.6g,",
      r.mean_hops_empirical, r.mean_hops_predicted, r.one_hop_fraction);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"load_mean\":%.6g,\"load_max\":%.6g,\"load_cv\":%.6g,"
                "\"load_total\":%zu,",
                r.load_mean, r.load_max, r.load_cv, r.load_total);
  out += buf;
  out += "\"empirical_cdf\":";
  append_json_array(out, r.empirical_cdf);
  out += ",\"predicted_cdf\":";
  append_json_array(out, r.predicted_cdf);
  out += ",\"pass\":";
  out += r.pass ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace ert::harness
