// The protocol matrix of Sec. 5: Cycloid without congestion control (Base),
// the capacity-biased neighbor-selection baseline (NS, Castro et al. [7]),
// the virtual-server baseline (VS, Godfrey & Stoica [12]), and the ERT
// protocol with its two components toggled individually (ERT/A adaptation
// only, ERT/F forwarding only, ERT/AF both).
#pragma once

#include <array>
#include <string_view>

namespace ert::harness {

enum class Protocol { kBase, kNS, kVS, kErtA, kErtF, kErtAF };

inline constexpr std::array<Protocol, 6> kAllProtocols = {
    Protocol::kBase, Protocol::kNS,   Protocol::kVS,
    Protocol::kErtA, Protocol::kErtF, Protocol::kErtAF,
};

constexpr std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kBase:  return "Base";
    case Protocol::kNS:    return "NS";
    case Protocol::kVS:    return "VS";
    case Protocol::kErtA:  return "ERT/A";
    case Protocol::kErtF:  return "ERT/F";
    case Protocol::kErtAF: return "ERT/AF";
  }
  return "?";
}

/// ERT protocols build capacity-bounded elastic tables and run initial
/// indegree assignment.
constexpr bool is_ert(Protocol p) {
  return p == Protocol::kErtA || p == Protocol::kErtF ||
         p == Protocol::kErtAF;
}

/// Periodic indegree adaptation (Algorithm 3).
constexpr bool uses_adaptation(Protocol p) {
  return p == Protocol::kErtA || p == Protocol::kErtAF;
}

/// Topology-aware randomized query forwarding (Algorithm 4).
constexpr bool uses_forwarding(Protocol p) {
  return p == Protocol::kErtF || p == Protocol::kErtAF;
}

constexpr bool uses_virtual_servers(Protocol p) { return p == Protocol::kVS; }

}  // namespace ert::harness
